module mds2

go 1.22
