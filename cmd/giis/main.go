// Command giis runs a standalone Grid Index Information Service: an
// aggregate directory accepting GRRP registrations (carried as LDAP add
// operations, the MDS-2.1 binding) and answering GRIP searches with a
// selectable strategy. It can register itself with a parent directory to
// form a hierarchy.
//
// Example:
//
//	giis -name giis.vo -suffix vo=alliance -listen :2136 -strategy chain
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"mds2/internal/giis"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/persist"
	"mds2/internal/shard"
	"mds2/internal/softstate"
)

func main() {
	var (
		name     = flag.String("name", "giis", "directory name")
		suffix   = flag.String("suffix", "vo=grid", "namespace suffix")
		listen   = flag.String("listen", ":2136", "LDAP listen address")
		strategy = flag.String("strategy", "chain", "search strategy: chain | cache | referral | bloom | sharded")
		ringSpec = flag.String("shard-ring", "", "sharded strategy: ring members as id=url,id=url,...")
		shardID  = flag.String("shard-id", "", "sharded strategy: this node's member ID in -shard-ring")
		replicas = flag.Int("replicas", 2, "sharded strategy: owners per registration (K)")
		shardMod = flag.String("shard-mode", "proxy", "sharded strategy: proxy | referral")
		cacheTTL = flag.Duration("cache-ttl", 30*time.Second, "index freshness for cache/bloom strategies")
		fanout   = flag.Int("max-fanout", giis.DefaultMaxFanout, "chain strategy: max concurrent child searches")
		hedge    = flag.Duration("hedge", 0, "chain strategy: return partial results after this deadline (0 = wait for all children)")
		parent   = flag.String("parent", "", "parent GIIS address to register with")
		vo       = flag.String("vo", "", "VO name for admission and upward registration")
		interval = flag.Duration("interval", 30*time.Second, "upward registration interval")
		ttl      = flag.Duration("ttl", 2*time.Minute, "upward registration TTL")
		keysPath = flag.String("keys", "", "GSI key file (see gridproxy); enables SASL binds and -auth-children")
		anchor   = flag.String("anchor", "", "trust anchor file (required with -keys)")
		authKids = flag.Bool("auth-children", false, "authenticate to providers when chaining")
		signed   = flag.Bool("require-signed", false, "refuse unsigned registrations")
		obsAddr  = flag.String("obs-addr", "", "HTTP introspection listen address (/metrics, /debug/traces, /debug/registry, /debug/qcache, /healthz); empty disables observability")
		obsSlow  = flag.Duration("obs-slow", 100*time.Millisecond, "slow-query log threshold (0 disables the slow ring)")
		qcOn     = flag.Bool("query-cache", false, "cache chained query results keyed by (child, base, scope, filter, attrs)")
		qcTTL    = flag.Duration("query-cache-ttl", 15*time.Second, "query cache TTL ceiling (results also expire with the child registration)")
		qcMax    = flag.Int("query-cache-max", 4096, "query cache capacity in result sets")

		dataDir   = flag.String("data-dir", "", "durability: data directory for the WAL-backed registration log (empty disables persistence)")
		walSync   = flag.String("wal-sync", "interval", "durability: WAL fsync policy: always | interval | none")
		snapEvery = flag.Duration("snapshot-every", 5*time.Minute, "durability: background snapshot cadence (0 disables)")
		recGrace  = flag.Duration("recovery-grace", 2*time.Minute, "durability: grace window granted to recovered registrations before soft state purges them")

		healthProbe = flag.String("health-probe", "anonymous", "healthz probe mode(s), comma-separated: anonymous | simple-bind | scoped-search")
		healthBind  = flag.String("health-bind-dn", "", "simple-bind probe: bind DN")
		healthPW    = flag.String("health-bind-pw", "", "simple-bind probe: bind password")
		healthBase  = flag.String("health-base", "", "scoped-search probe: base DN (default: the served suffix)")
		healthFilt  = flag.String("health-filter", "(objectclass=*)", "scoped-search probe: filter")
		healthMin   = flag.Int("health-min-entries", 1, "scoped-search probe: minimum entries required")

		maxWorkers  = flag.Int("max-workers", 0, "overload control: max concurrently dispatched operations (0 disables admission control)")
		maxQueue    = flag.Int("max-queue", 0, "overload control: ops queued behind the worker set before shedding unavailable")
		queueBudget = flag.Duration("queue-budget", 0, "overload control: shed busy when projected queue wait exceeds this")
		clientRate  = flag.Float64("client-rate", 0, "overload control: per-client admitted ops/second (0 disables throttling)")
		clientBurst = flag.Int("client-burst", 0, "overload control: per-client token-bucket burst (0 defaults to the rate)")
		maxConns    = flag.Int("max-conns", 0, "overload control: max concurrently served connections (0 unlimited)")
	)
	flag.Parse()

	dn, err := ldap.ParseDN(*suffix)
	if err != nil {
		log.Fatalf("giis: bad suffix: %v", err)
	}
	if *fanout < 1 {
		log.Fatalf("giis: -max-fanout must be >= 1, got %d", *fanout)
	}
	if *hedge < 0 {
		log.Fatalf("giis: -hedge must be >= 0, got %v", *hedge)
	}
	var strat giis.Strategy
	switch *strategy {
	case "chain":
		chain := giis.NewChaining()
		chain.MaxFanout = *fanout
		chain.HedgeDeadline = *hedge
		strat = chain
	case "cache":
		strat = giis.NewCachedIndex(*cacheTTL)
	case "referral":
		strat = giis.NewReferral()
	case "bloom":
		strat = giis.NewBloomRouted(*cacheTTL, 1<<16)
	case "sharded":
		if *ringSpec == "" || *shardID == "" {
			log.Fatal("giis: -strategy sharded requires -shard-ring and -shard-id")
		}
		members, err := shard.ParseRing(*ringSpec)
		if err != nil {
			log.Fatalf("giis: %v", err)
		}
		ring := shard.NewRing(members, 0)
		if _, ok := ring.Member(*shardID); !ok {
			log.Fatalf("giis: -shard-id %q is not in -shard-ring", *shardID)
		}
		sh := giis.NewSharded(ring, *shardID, *replicas)
		switch *shardMod {
		case "proxy":
			sh.Mode = giis.ShardProxy
		case "referral":
			sh.Mode = giis.ShardReferral
		default:
			log.Fatalf("giis: unknown -shard-mode %q", *shardMod)
		}
		sh.MaxFanout = *fanout
		sh.SummaryTTL = *cacheTTL
		strat = sh
	default:
		log.Fatalf("giis: unknown strategy %q", *strategy)
	}

	selfURL, err := ldap.ParseURL("ldap://" + advertised(*listen))
	if err != nil {
		log.Fatalf("giis: %v", err)
	}
	cfg := giis.Config{
		Name:          *name,
		Suffix:        dn,
		SelfURL:       selfURL,
		Strategy:      strat,
		AcceptVO:      *vo,
		QueryCache:    *qcOn,
		QueryCacheTTL: *qcTTL,
		QueryCacheMax: *qcMax,
	}
	var obsReg *obs.Registry
	var tracer *obs.Tracer
	if *obsAddr != "" {
		obsReg = obs.NewRegistry()
		tracer = obs.NewTracer(softstate.RealClock{}, *obsSlow)
		tracer.SlowLog = func(t *obs.TraceExport) {
			log.Printf("giis: slow query trace=%s op=%s peer=%s took=%v",
				t.ID, t.Op, t.Peer, time.Duration(t.DurNs))
		}
		cfg.Obs = obsReg
	}
	if *keysPath != "" {
		if *anchor == "" {
			log.Fatal("giis: -keys requires -anchor")
		}
		keys, err := gsi.LoadKeyPair(*keysPath)
		if err != nil {
			log.Fatalf("giis: %v", err)
		}
		trust, err := gsi.LoadAnchors(*anchor)
		if err != nil {
			log.Fatalf("giis: %v", err)
		}
		cfg.Keys = keys
		cfg.Trust = trust
		cfg.AuthChildren = *authKids
		cfg.RequireSignedRegistrations = *signed
		log.Printf("giis: GSI enabled as %q", keys.Credential.Subject)
	} else if *authKids || *signed {
		log.Fatal("giis: -auth-children and -require-signed need -keys/-anchor")
	}
	server := giis.New(cfg)
	defer server.Close()

	if *dataDir != "" {
		mode, err := persist.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("giis: %v", err)
		}
		pm, err := persist.Open(persist.Options{
			Dir:           *dataDir,
			Sync:          mode,
			SnapshotEvery: *snapEvery,
			RecoveryGrace: *recGrace,
			Codec: persist.PayloadCodec{
				Encode: grrp.EncodePayload,
				Decode: grrp.DecodePayload,
			},
			Obs:      obsReg,
			ErrorLog: log.Default(),
		})
		if err != nil {
			log.Fatalf("giis: %v", err)
		}
		reg := server.Receiver().Registry
		if pm.HasState() {
			stats, err := pm.Recover(nil, reg)
			if err != nil {
				log.Fatalf("giis: recovering %s: %v", *dataDir, err)
			}
			log.Printf("giis: recovered %d registrations from %s in %v (replayed %d records, grace %v)",
				stats.Registrations, *dataDir, stats.Duration, stats.RecordsReplayed, *recGrace)
		}
		if err := pm.Attach(nil, reg); err != nil {
			log.Fatalf("giis: %v", err)
		}
		defer pm.Close()
	}

	if *parent != "" {
		registrar := grrp.NewRegistrar(grrp.TransportFunc(func(to string, payload []byte) error {
			m, err := grrp.Unmarshal(payload)
			if err != nil {
				return err
			}
			c, err := ldap.Dial(to)
			if err != nil {
				return err
			}
			defer c.Close()
			return c.Add(m.ToEntry())
		}), nil)
		defer registrar.StopAll()
		registrar.Start(server.SelfRegistration(*parent, *vo, *interval, *ttl))
		log.Printf("giis: registering with parent %s", *parent)
	}

	srv := ldap.NewServer(server)
	srv.ErrorLog = log.Default()
	srv.Obs = obsReg
	srv.Tracer = tracer
	srv.Overload = ldap.OverloadConfig{
		MaxWorkers:  *maxWorkers,
		MaxQueue:    *maxQueue,
		QueueBudget: *queueBudget,
		ClientRate:  *clientRate,
		ClientBurst: *clientBurst,
		MaxConns:    *maxConns,
	}
	if *obsAddr != "" {
		h := obs.NewHandler(obsReg, tracer, softstate.RealClock{})
		for _, spec := range strings.Split(*healthProbe, ",") {
			mode, err := ldap.ParseProbeMode(spec)
			if err != nil {
				log.Fatalf("giis: %v", err)
			}
			hc := ldap.HealthCheck{
				Addr:         advertised(*listen),
				Mode:         mode,
				BindDN:       *healthBind,
				BindPassword: *healthPW,
				Base:         *healthBase,
				Scope:        ldap.ScopeWholeSubtree,
				Filter:       *healthFilt,
				MinEntries:   *healthMin,
			}
			if mode == ldap.ProbeScopedSearch && hc.Base == "" {
				hc.Base = dn.String()
			}
			h.AddHealthCheck("ldap-"+mode.String(), hc.Probe)
		}
		h.AddTable("children", server.Receiver().Registry)
		if qc := server.QueryCache(); qc != nil {
			h.AddCache("query", func() any { return qc.Debug() })
		}
		go func() {
			log.Printf("giis: observability on http://%s", *obsAddr)
			if err := http.ListenAndServe(*obsAddr, h); err != nil {
				log.Printf("giis: obs listener: %v", err)
			}
		}()
	}
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		log.Print("giis: shutting down")
		srv.Close()
	}()
	log.Printf("giis: %s serving %q on %s (strategy %s)", *name, dn, *listen, strat.Name())
	if err := srv.ListenAndServe(*listen); err != nil && err != ldap.ErrServerClosed {
		log.Fatalf("giis: %v", err)
	}
}

func advertised(listen string) string {
	if len(listen) > 0 && listen[0] == ':' {
		return "127.0.0.1" + listen
	}
	return listen
}
