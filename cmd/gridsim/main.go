// Command gridsim boots a complete simulated grid from a topology
// description (see internal/config for the format), advances simulated
// time, and answers queries — the lightweight VO-formation tool of §12.
//
// Example:
//
//	gridsim -topology vo.conf -advance 10m \
//	        -query "(objectclass=computer)" -base "vo=alliance" -at vo-dir
//
// With no -topology a built-in Figure 5 demo topology is used.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"mds2/internal/config"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
)

const demoTopology = `
# Built-in demo: Figure 5 — two centers and an individual under one VO.
seed 42

directory vo-dir {
  suffix vo=alliance
  strategy chain
}
directory center1 {
  suffix o=o1
  parent vo-dir
  vo alliance
}
directory center2 {
  suffix o=o2
  parent vo-dir
  vo alliance
}

host r1.o1 {
  org o1
  cpus 16
  register center1
  vo alliance
}
host r2.o1 {
  org o1
  cpus 32
  os mips irix
  register center1
  vo alliance
}
host r3.o1 {
  org o1
  register center1
  vo alliance
}
host r1.o2 {
  org o2
  cpus 8
  register center2
  vo alliance
}
host r2.o2 {
  org o2
  register center2
  vo alliance
}
host solo {
  org home
  register vo-dir
  vo alliance
}
`

func main() {
	var (
		topoPath = flag.String("topology", "", "topology file (empty: built-in Figure 5 demo)")
		advance  = flag.Duration("advance", time.Minute, "simulated time to advance after boot")
		at       = flag.String("at", "", "directory to query (default: first defined)")
		base     = flag.String("base", "", "query base DN (default: the directory suffix)")
		query    = flag.String("query", "(objectclass=computer)", "GRIP filter to run")
	)
	flag.Parse()

	var top *config.Topology
	var err error
	if *topoPath == "" {
		top, err = config.ParseString(demoTopology)
	} else {
		f, ferr := os.Open(*topoPath)
		if ferr != nil {
			log.Fatalf("gridsim: %v", ferr)
		}
		top, err = config.Parse(f)
		f.Close()
	}
	if err != nil {
		log.Fatalf("gridsim: %v", err)
	}
	built, err := top.Build()
	if err != nil {
		log.Fatalf("gridsim: %v", err)
	}
	defer built.Grid.Close()

	// Let registrations flow, then advance simulated time (hosts evolve).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, d := range built.Directories {
			total += len(d.GIIS.Children())
		}
		if total >= len(built.Hosts) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	steps := int(*advance / (10 * time.Second))
	for i := 0; i < steps; i++ {
		built.Grid.SimClock().Advance(10 * time.Second)
		for _, h := range built.Hosts {
			h.Host.Step(10 * time.Second)
		}
		time.Sleep(time.Millisecond)
	}

	fmt.Printf("grid: %d directories, %d hosts, advanced %v of simulated time\n\n",
		len(built.Directories), len(built.Hosts), *advance)
	var dirNames []string
	for name := range built.Directories {
		dirNames = append(dirNames, name)
	}
	sort.Strings(dirNames)
	for _, name := range dirNames {
		d := built.Directories[name]
		fmt.Printf("  %-12s suffix=%-14q children=%d registrations=%d searches=%d\n",
			name, d.GIIS.Suffix().String(), len(d.GIIS.Children()),
			d.GIIS.Registrations.Value(), d.GIIS.Searches.Value())
	}

	// Run the query.
	target := *at
	if target == "" {
		target = dirNames[0]
		if len(top.Directories) > 0 {
			target = top.Directories[0].Name
		}
	}
	dir, ok := built.Directories[target]
	if !ok {
		log.Fatalf("gridsim: no directory %q", target)
	}
	baseDN := dir.GIIS.Suffix()
	if *base != "" {
		baseDN, err = ldap.ParseDN(*base)
		if err != nil {
			log.Fatalf("gridsim: bad base: %v", err)
		}
	}
	client, err := dir.Client("gridsim-user")
	if err != nil {
		log.Fatalf("gridsim: %v", err)
	}
	defer client.Close()
	entries, err := client.Search(baseDN, *query)
	if err != nil {
		log.Fatalf("gridsim: query: %v", err)
	}
	fmt.Printf("\nquery %s at %s (base %q): %d entries\n\n", *query, target, baseDN, len(entries))
	fmt.Print(ldif.Marshal(entries))
}
