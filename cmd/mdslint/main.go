// Command mdslint runs the project's custom static analyzers over the
// tree and exits non-zero when any concurrency or determinism invariant
// is violated (see internal/mdslint and DESIGN.md "Static analysis &
// invariants").
//
// Usage:
//
//	go run ./cmd/mdslint ./...
//	go run ./cmd/mdslint -rules            # list analyzers
//	go run ./cmd/mdslint internal/gris     # one package directory
//
// Suppress a finding, with a reason, on the offending line or the line
// above:
//
//	//mdslint:ignore lockcheck send on buffered chan, cap 1, cannot block
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"

	"mds2/internal/mdslint"
)

func main() {
	rules := flag.Bool("rules", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mdslint [-rules] [pattern ...]\n\npatterns are directories, .go files, or dir/... walks (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := mdslint.Analyzers()
	if *rules {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	files, err := mdslint.Load(fset, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdslint:", err)
		os.Exit(2)
	}
	pass := &mdslint.Pass{Fset: fset, Files: files}
	findings := mdslint.RunAll(pass, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mdslint: %d finding(s) in %d file(s)\n", len(findings), len(files))
		os.Exit(1)
	}
}
