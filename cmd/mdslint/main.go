// Command mdslint runs the project's custom static analyzers over the
// tree and exits non-zero when any concurrency, determinism, or memory
// invariant is violated (see internal/mdslint and DESIGN.md "Static
// analysis & invariants" / "Invariant catalog").
//
// By default the whole module is type-checked (stdlib go/types, packages
// loaded in parallel) so the type-aware analyzers — snapshotcheck,
// poolcheck, berbalance — run alongside the syntax-only ones. Pass
// -syntax to skip type checking (fast, syntax-only rules), or explicit
// file/directory patterns to lint a subset syntax-only.
//
// Usage:
//
//	go run ./cmd/mdslint               # whole module, typed
//	go run ./cmd/mdslint -rules       # list analyzers
//	go run ./cmd/mdslint -json        # machine-readable findings
//	go run ./cmd/mdslint -github     # GitHub Actions ::error annotations
//	go run ./cmd/mdslint -syntax ./...  # syntax-only, pattern walk
//
// Suppress a finding, with a reason, on the offending line or the line
// above:
//
//	//mdslint:ignore lockcheck send on buffered chan, cap 1, cannot block
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"
	"time"

	"mds2/internal/mdslint"
)

type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	rules := flag.Bool("rules", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	syntax := flag.Bool("syntax", false, "skip type checking; run syntax-only analyzers")
	seq := flag.Bool("seq", false, "type-check packages sequentially (for timing comparison)")
	timing := flag.Bool("time", false, "report load+analysis wall clock to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mdslint [-rules] [-json|-github] [-syntax] [-seq] [-time] [pattern ...]\n\n"+
				"with no patterns the whole module is loaded and type-checked;\n"+
				"patterns (directories, .go files, dir/... walks) imply -syntax\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := mdslint.Analyzers()
	if *rules {
		for _, a := range analyzers {
			kind := "syntax"
			if a.NeedsTypes {
				kind = "typed"
			}
			fmt.Printf("%-16s %-6s %s\n", a.Name, kind, a.Doc)
		}
		return
	}

	fset := token.NewFileSet()
	var pass *mdslint.Pass
	start := time.Now()
	if patterns := flag.Args(); len(patterns) > 0 || *syntax {
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		files, err := mdslint.Load(fset, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdslint:", err)
			os.Exit(2)
		}
		pass = &mdslint.Pass{Fset: fset, Files: files}
	} else {
		wd, err := os.Getwd()
		if err == nil {
			var root string
			root, err = mdslint.FindModuleRoot(wd)
			if err == nil {
				pass, err = mdslint.LoadModule(fset, root, !*seq)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdslint:", err)
			os.Exit(2)
		}
	}
	loaded := time.Since(start)

	findings := mdslint.RunAll(pass, analyzers)
	if *timing {
		fmt.Fprintf(os.Stderr, "mdslint: load %v, analyze %v (%d files)\n",
			loaded.Round(time.Millisecond), (time.Since(start) - loaded).Round(time.Millisecond), len(pass.Files))
	}

	switch {
	case *asJSON:
		out := make([]jsonFinding, len(findings))
		for i, f := range findings {
			out[i] = jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column, Rule: f.Rule, Msg: f.Msg}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mdslint:", err)
			os.Exit(2)
		}
	case *github:
		for _, f := range findings {
			// ::error annotation values must not contain raw newlines.
			msg := strings.ReplaceAll(f.Msg, "\n", " ")
			fmt.Printf("::error file=%s,line=%d,col=%d,title=mdslint(%s)::%s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, msg)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mdslint: %d finding(s) in %d file(s)\n", len(findings), len(pass.Files))
		os.Exit(1)
	}
}
