// Command gridproxy manages the GSI single sign-on workflow: create a
// certificate authority, issue identity credentials, and derive the
// short-lived proxy credentials that tools present when authenticating
// (the grid-proxy-init equivalent for this reproduction).
//
// Examples:
//
//	gridproxy init-ca  -name "o=Demo CA" -ca ca.key -anchor ca.anchor
//	gridproxy issue    -ca ca.key -subject cn=alice -out alice.key
//	gridproxy proxy    -in alice.key -out alice.proxy -lifetime 12h
//	gridproxy show     -in alice.proxy
//	gridproxy verify   -in alice.proxy -anchor ca.anchor
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mds2/internal/gsi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridproxy: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "init-ca":
		initCA(args)
	case "issue":
		issue(args)
	case "proxy":
		proxy(args)
	case "show":
		show(args)
	case "verify":
		verify(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gridproxy {init-ca|issue|proxy|show|verify} [flags]")
	os.Exit(2)
}

func initCA(args []string) {
	fs := flag.NewFlagSet("init-ca", flag.ExitOnError)
	name := fs.String("name", "o=Grid CA", "authority name")
	caPath := fs.String("ca", "ca.key", "authority private key output")
	anchorPath := fs.String("anchor", "ca.anchor", "public trust anchor output")
	fs.Parse(args)
	ca, err := gsi.NewAuthority(*name)
	if err != nil {
		log.Fatal(err)
	}
	if err := gsi.SaveAuthority(*caPath, ca); err != nil {
		log.Fatal(err)
	}
	if err := gsi.SaveAnchor(*anchorPath, ca.Anchor()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created authority %q\n  private key: %s\n  trust anchor: %s\n",
		*name, *caPath, *anchorPath)
}

func issue(args []string) {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	caPath := fs.String("ca", "ca.key", "authority private key")
	subject := fs.String("subject", "", "credential subject, e.g. cn=alice")
	lifetime := fs.Duration("lifetime", 365*24*time.Hour, "credential lifetime")
	out := fs.String("out", "", "identity key output (default <subject>.key)")
	caps := fs.String("capabilities", "", "comma-separated capabilities")
	fs.Parse(args)
	if *subject == "" {
		log.Fatal("issue: -subject required")
	}
	ca, err := gsi.LoadAuthority(*caPath)
	if err != nil {
		log.Fatal(err)
	}
	var capList []string
	if *caps != "" {
		capList = splitComma(*caps)
	}
	keys, err := ca.Issue(*subject, *lifetime, time.Now(), capList...)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = sanitize(*subject) + ".key"
	}
	if err := gsi.SaveKeyPair(path, keys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("issued %q (valid %v): %s\n", *subject, *lifetime, path)
}

func proxy(args []string) {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	in := fs.String("in", "", "identity key file")
	out := fs.String("out", "", "proxy output (default <in>.proxy)")
	lifetime := fs.Duration("lifetime", 12*time.Hour, "proxy lifetime")
	caps := fs.String("capabilities", "", "comma-separated capabilities to assert")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("proxy: -in required")
	}
	keys, err := gsi.LoadKeyPair(*in)
	if err != nil {
		log.Fatal(err)
	}
	var capList []string
	if *caps != "" {
		capList = splitComma(*caps)
	}
	proxy, err := keys.Delegate(*lifetime, time.Now(), capList...)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = *in + ".proxy"
	}
	if err := gsi.SaveKeyPair(path, proxy); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delegated proxy for %q (valid %v): %s\n",
		proxy.Credential.EndEntity(), *lifetime, path)
}

func show(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("in", "", "key or proxy file")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("show: -in required")
	}
	keys, err := gsi.LoadKeyPair(*in)
	if err != nil {
		log.Fatal(err)
	}
	for c := keys.Credential; c != nil; c = c.Chain {
		kind := "identity"
		if c.IsProxy {
			kind = "proxy"
		}
		fmt.Printf("%-8s subject=%q issuer=%q valid %s .. %s",
			kind, c.Subject, c.Issuer,
			c.NotBefore.Format(time.RFC3339), c.NotAfter.Format(time.RFC3339))
		if len(c.Capabilities) > 0 {
			fmt.Printf(" capabilities=%v", c.Capabilities)
		}
		fmt.Println()
	}
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "key or proxy file")
	anchor := fs.String("anchor", "ca.anchor", "trust anchor file")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("verify: -in required")
	}
	keys, err := gsi.LoadKeyPair(*in)
	if err != nil {
		log.Fatal(err)
	}
	trust, err := gsi.LoadAnchors(*anchor)
	if err != nil {
		log.Fatal(err)
	}
	if err := trust.Verify(keys.Credential, time.Now()); err != nil {
		log.Fatalf("INVALID: %v", err)
	}
	fmt.Printf("valid: %q (end entity %q)\n",
		keys.Credential.Subject, keys.Credential.EndEntity())
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch c {
		case '/', '=', ' ', ',':
			b[i] = '_'
		}
	}
	return string(b)
}
