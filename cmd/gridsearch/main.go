// Command gridsearch is the query tool (the grid-info-search equivalent):
// it runs a GRIP enquiry or discovery against a GRIS or GIIS and prints the
// results as LDIF.
//
// Examples:
//
//	gridsearch -server 127.0.0.1:2136 -base "vo=alliance" "(objectclass=computer)"
//	gridsearch -server 127.0.0.1:2135 -base "hn=hostX, o=grid" -scope base "(objectclass=*)"
//	gridsearch -server 127.0.0.1:2135 -subscribe "(objectclass=loadaverage)"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"mds2/internal/grip"
	"mds2/internal/gsi"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
	"mds2/internal/obs"
)

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:2135", "LDAP server address")
		base      = flag.String("base", "", "search base DN")
		scope     = flag.String("scope", "sub", "scope: base | one | sub")
		subscribe = flag.Bool("subscribe", false, "persistent search: stream changes until interrupted")
		limit     = flag.Int64("limit", 0, "size limit (0 = unlimited)")
		proxyPath = flag.String("proxy", "", "GSI proxy/key file for mutual authentication (see gridproxy)")
		anchor    = flag.String("anchor", "", "trust anchor file (required with -proxy)")
		trace     = flag.Bool("trace", false, "request a server-side trace and print the span tree to stderr")
	)
	flag.Parse()
	filter := "(objectclass=*)"
	if flag.NArg() > 0 {
		filter = flag.Arg(0)
	}
	attrs := flag.Args()
	if len(attrs) > 0 {
		attrs = attrs[1:]
	}

	baseDN, err := ldap.ParseDN(*base)
	if err != nil {
		log.Fatalf("gridsearch: bad base DN: %v", err)
	}
	f, err := ldap.ParseFilter(filter)
	if err != nil {
		log.Fatalf("gridsearch: bad filter: %v", err)
	}
	var sc ldap.Scope
	switch *scope {
	case "base":
		sc = ldap.ScopeBaseObject
	case "one":
		sc = ldap.ScopeSingleLevel
	case "sub":
		sc = ldap.ScopeWholeSubtree
	default:
		log.Fatalf("gridsearch: bad scope %q", *scope)
	}

	c, err := grip.Dial(*server)
	if err != nil {
		log.Fatalf("gridsearch: %v", err)
	}
	defer c.Close()

	if *proxyPath != "" {
		if *anchor == "" {
			log.Fatal("gridsearch: -proxy requires -anchor")
		}
		keys, err := gsi.LoadKeyPair(*proxyPath)
		if err != nil {
			log.Fatalf("gridsearch: %v", err)
		}
		trust, err := gsi.LoadAnchors(*anchor)
		if err != nil {
			log.Fatalf("gridsearch: %v", err)
		}
		serverCred, err := c.Authenticate(keys, trust)
		if err != nil {
			log.Fatalf("gridsearch: authentication: %v", err)
		}
		fmt.Fprintf(os.Stderr, "gridsearch: authenticated; server is %q\n", serverCred.EndEntity())
	}

	if *subscribe {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
			cancel()
		}()
		err := c.Subscribe(ctx, baseDN, filter, false, func(u grip.Update) error {
			fmt.Printf("# change type %d\n%s\n", u.ChangeType, ldif.Marshal([]*ldap.Entry{u.Entry}))
			return nil
		})
		if err != nil && err != context.Canceled {
			log.Fatalf("gridsearch: %v", err)
		}
		return
	}

	var ctls []ldap.Control
	if *trace {
		ctls = append(ctls, ldap.NewTraceControl("", 0))
	}
	res, err := c.Raw().SearchWith(&ldap.SearchRequest{
		BaseDN:     baseDN.String(),
		Scope:      sc,
		Filter:     f,
		Attributes: attrs,
		SizeLimit:  *limit,
	}, ctls)
	if err != nil && !ldap.IsCode(err, ldap.ResultSizeLimitExceeded) {
		log.Fatalf("gridsearch: %v", err)
	}
	if *trace {
		if t, ok := ldap.TraceSpans(res.DoneControls); ok {
			fmt.Fprintf(os.Stderr, "# trace %s op=%s took=%v\n%s",
				t.ID, t.Op, time.Duration(t.DurNs), obs.FormatSpanTree(t.Spans))
		} else {
			fmt.Fprintln(os.Stderr, "# trace requested but the server returned no spans")
		}
	}
	fmt.Print(ldif.Marshal(res.Entries))
	for _, ref := range res.Referrals {
		fmt.Printf("# referral: %s\n", ref)
	}
	if res.Result.Message != "" {
		fmt.Fprintf(os.Stderr, "gridsearch: %s\n", res.Result.Message)
	}
}
