// Command mdsbench regenerates the paper's figures and the quantitative
// claims of its prose as text tables (see DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for expected shapes).
//
// Usage:
//
//	mdsbench -list
//	mdsbench -exp fig4
//	mdsbench -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mds2/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment to run (see -list)")
		all  = flag.Bool("all", false, "run every experiment")
		list = flag.Bool("list", false, "list experiments")
	)
	flag.IntVar(&experiments.WireOptions.Entries,
		"wire-entries", 0, "wire experiment: entries per topology (0 = default sweep)")
	flag.IntVar(&experiments.WireOptions.Concurrency,
		"wire-conc", 0, "wire experiment: concurrent clients (0 = default sweep)")
	flag.DurationVar(&experiments.WireOptions.Duration,
		"wire-duration", time.Second, "wire experiment: measurement window per cell")
	flag.StringVar(&experiments.WireOptions.ObsAddr,
		"wire-obs", "", "wire experiment: serve the root GIIS introspection endpoint here and print a chained trace")
	flag.IntVar(&experiments.QCacheOptions.Entries,
		"cache-entries", 0, "cache experiment: entries per query (0 = 200)")
	flag.IntVar(&experiments.QCacheOptions.Concurrency,
		"cache-conc", 0, "cache experiment: concurrent clients (0 = sweep 1, 8, 32)")
	flag.DurationVar(&experiments.QCacheOptions.Duration,
		"cache-duration", time.Second, "cache experiment: measurement window per cell")
	flag.DurationVar(&experiments.QCacheOptions.TTL,
		"cache-ttl", 15*time.Second, "cache experiment: query-cache TTL for the cached topology")
	flag.DurationVar(&experiments.QCacheOptions.ProviderCost,
		"cache-provider-cost", experiments.QCacheOptions.ProviderCost,
		"cache experiment: leaf provider execution cost per uncached invocation")
	flag.IntVar(&experiments.ShardOptions.PerShard,
		"shard-pershard", experiments.ShardOptions.PerShard, "shard experiment: resident registrations per shard (250000 with -shard-rings 1,2,4,8 is the 1M-provider headline run)")
	flag.StringVar(&experiments.ShardOptions.Rings,
		"shard-rings", experiments.ShardOptions.Rings, "shard experiment: comma-separated ring sizes to sweep")
	flag.IntVar(&experiments.ShardOptions.Replicas,
		"shard-replicas", experiments.ShardOptions.Replicas, "shard experiment: owners per registration (K)")
	flag.IntVar(&experiments.ShardOptions.Queries,
		"shard-queries", experiments.ShardOptions.Queries, "shard experiment: routed lookups timed per ring size")
	flag.IntVar(&experiments.RecoverOptions.Registrations,
		"recover-regs", experiments.RecoverOptions.Registrations,
		"recover experiment: provider registrations before the crash")
	flag.DurationVar(&experiments.RecoverOptions.RefreshInterval,
		"recover-interval", experiments.RecoverOptions.RefreshInterval,
		"recover experiment: provider soft-state refresh interval (the cold-restart bound)")
	flag.StringVar(&experiments.RecoverOptions.Sync,
		"recover-sync", experiments.RecoverOptions.Sync,
		"recover experiment: WAL fsync policy for the child server (always | interval | none)")
	flag.StringVar(&experiments.RecoverOptions.JSON,
		"recover-json", "", "recover experiment: also write measurements to this JSON file")
	// Hidden child mode: the recover experiment re-executes this binary as
	// the directory server it crashes.
	var (
		recoverServe  = flag.Bool("recover-serve", false, "internal: run as the recover experiment's directory server")
		recoverDir    = flag.String("recover-dir", "", "internal: child data directory")
		recoverListen = flag.String("recover-listen", "", "internal: child listen address")
	)
	flag.Parse()

	if *recoverServe {
		if err := experiments.RecoverServe(*recoverDir, *recoverListen,
			experiments.RecoverOptions.Sync); err != nil {
			log.Fatalf("mdsbench: %v", err)
		}
		return
	}
	if bin, err := os.Executable(); err == nil {
		experiments.RecoverOptions.Bin = bin
	}

	switch {
	case *list:
		for _, name := range experiments.Names() {
			fmt.Printf("%-10s %s\n", name, experiments.Describe(name))
		}
	case *all:
		if err := experiments.RunAll(os.Stdout); err != nil {
			log.Fatalf("mdsbench: %v", err)
		}
	case *exp != "":
		if err := experiments.Run(*exp, os.Stdout); err != nil {
			log.Fatalf("mdsbench: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
