// Command gris runs a standalone Grid Resource Information Service: an
// LDAP server publishing a (synthetic) host's static, dynamic, storage,
// queue, and network information, optionally sustaining a GRRP
// registration stream to an aggregate directory.
//
// Example:
//
//	gris -host hostX -org center1 -listen :2135 -register 127.0.0.1:2136 -vo alliance
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/nws"
	"mds2/internal/obs"
	"mds2/internal/persist"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

func main() {
	var (
		hostName = flag.String("host", "hostX", "host name to publish")
		org      = flag.String("org", "grid", "organization component of the namespace")
		listen   = flag.String("listen", ":2135", "LDAP listen address")
		register = flag.String("register", "", "GIIS address(es) to register with, comma-separated (host:port; GRRP carried as LDAP add — list every owner shard of a sharded ring)")
		vo       = flag.String("vo", "", "VO name for registrations")
		interval = flag.Duration("interval", 30*time.Second, "registration refresh interval")
		ttl      = flag.Duration("ttl", 2*time.Minute, "registration TTL")
		cpus     = flag.Int("cpus", 4, "simulated CPU count")
		osName   = flag.String("os", "linux redhat", "simulated operating system")
		seed     = flag.Int64("seed", 1, "simulation seed")
		stepSim  = flag.Duration("step", time.Minute, "how often simulated host state advances")
		keysPath = flag.String("keys", "", "GSI key file for this service (see gridproxy); enables SASL/GSI binds")
		anchor   = flag.String("anchor", "", "trust anchor file (required with -keys)")
		trustDir = flag.String("trusted-dir", "", "subject granted the trusted-directory role")
		obsAddr  = flag.String("obs-addr", "", "HTTP introspection listen address (/metrics, /debug/traces, /healthz); empty disables observability")
		obsSlow  = flag.Duration("obs-slow", 100*time.Millisecond, "slow-query log threshold (0 disables the slow ring)")

		dataDir   = flag.String("data-dir", "", "durability: data directory for the WAL-backed warm cache store (empty disables persistence)")
		walSync   = flag.String("wal-sync", "interval", "durability: WAL fsync policy: always | interval | none")
		snapEvery = flag.Duration("snapshot-every", 5*time.Minute, "durability: background snapshot cadence (0 disables)")
		warmGrace = flag.Duration("warm-grace", 30*time.Second, "durability: how long restored provider results may serve before a live invocation is forced")

		healthProbe = flag.String("health-probe", "anonymous", "healthz probe mode(s), comma-separated: anonymous | simple-bind | scoped-search")
		healthBind  = flag.String("health-bind-dn", "", "simple-bind probe: bind DN")
		healthPW    = flag.String("health-bind-pw", "", "simple-bind probe: bind password")
		healthBase  = flag.String("health-base", "", "scoped-search probe: base DN (default: the served suffix)")
		healthFilt  = flag.String("health-filter", "(objectclass=*)", "scoped-search probe: filter")
		healthMin   = flag.Int("health-min-entries", 1, "scoped-search probe: minimum entries required")

		maxWorkers  = flag.Int("max-workers", 0, "overload control: max concurrently dispatched operations (0 disables admission control)")
		maxQueue    = flag.Int("max-queue", 0, "overload control: ops queued behind the worker set before shedding unavailable")
		queueBudget = flag.Duration("queue-budget", 0, "overload control: shed busy when projected queue wait exceeds this")
		clientRate  = flag.Float64("client-rate", 0, "overload control: per-client admitted ops/second (0 disables throttling)")
		clientBurst = flag.Int("client-burst", 0, "overload control: per-client token-bucket burst (0 defaults to the rate)")
		maxConns    = flag.Int("max-conns", 0, "overload control: max concurrently served connections (0 unlimited)")
	)
	flag.Parse()

	suffix, err := ldap.ParseDN(fmt.Sprintf("hn=%s, o=%s", *hostName, *org))
	if err != nil {
		log.Fatalf("gris: bad namespace: %v", err)
	}
	host := hostinfo.New(*hostName, hostinfo.Spec{
		OS: *osName, OSVer: "6.2", CPUType: "ia32", CPUCount: *cpus, MemoryMB: 512 * *cpus,
	}, *seed)
	go func() {
		for range time.Tick(*stepSim) {
			host.Step(*stepSim)
		}
	}()

	cfg := gris.Config{Suffix: suffix}
	var obsReg *obs.Registry
	var tracer *obs.Tracer
	if *obsAddr != "" {
		obsReg = obs.NewRegistry()
		tracer = obs.NewTracer(softstate.RealClock{}, *obsSlow)
		tracer.SlowLog = func(t *obs.TraceExport) {
			log.Printf("gris: slow query trace=%s op=%s peer=%s took=%v",
				t.ID, t.Op, t.Peer, time.Duration(t.DurNs))
		}
		cfg.Obs = obsReg
	}
	var keys *gsi.KeyPair
	if *keysPath != "" {
		if *anchor == "" {
			log.Fatal("gris: -keys requires -anchor")
		}
		var err error
		if keys, err = gsi.LoadKeyPair(*keysPath); err != nil {
			log.Fatalf("gris: %v", err)
		}
		trust, err := gsi.LoadAnchors(*anchor)
		if err != nil {
			log.Fatalf("gris: %v", err)
		}
		cfg.Keys = keys
		cfg.Trust = trust
		if *trustDir != "" {
			cfg.TrustedDirectories = []string{*trustDir}
		}
		log.Printf("gris: GSI enabled as %q", keys.Credential.Subject)
	}
	if *dataDir != "" {
		mode, err := persist.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("gris: %v", err)
		}
		warm := ldap.NewStore()
		pm, err := persist.Open(persist.Options{
			Dir:           *dataDir,
			Sync:          mode,
			SnapshotEvery: *snapEvery,
			Obs:           obsReg,
			ErrorLog:      log.Default(),
		})
		if err != nil {
			log.Fatalf("gris: %v", err)
		}
		if pm.HasState() {
			stats, err := pm.Recover(warm, nil)
			if err != nil {
				log.Fatalf("gris: recovering %s: %v", *dataDir, err)
			}
			log.Printf("gris: recovered %d warm entries from %s in %v (replayed %d records)",
				stats.Entries, *dataDir, stats.Duration, stats.RecordsReplayed)
		}
		if err := pm.Attach(warm, nil); err != nil {
			log.Fatalf("gris: %v", err)
		}
		defer pm.Close()
		cfg.WarmStore = warm
		cfg.WarmGrace = *warmGrace
	}
	server := gris.New(cfg)
	for _, b := range providers.HostBackends(host, suffix) {
		server.Register(b)
	}
	server.Register(&providers.Network{Service: nws.NewService(),
		Base: suffix.ChildAVA("net", "links")})
	if cfg.WarmStore != nil {
		if n := server.WarmRestore(); n > 0 {
			log.Printf("gris: warm cache restored with %d entries (grace %v)", n, *warmGrace)
		}
	}

	if *register != "" {
		registrar := grrp.NewRegistrar(grrp.TransportFunc(func(to string, payload []byte) error {
			m, err := grrp.Unmarshal(payload)
			if err != nil {
				return err
			}
			c, err := ldap.Dial(to)
			if err != nil {
				return err
			}
			defer c.Close()
			return c.Add(m.ToEntry())
		}), nil)
		defer registrar.StopAll()
		targets := strings.Split(*register, ",")
		for i := range targets {
			targets[i] = strings.TrimSpace(targets[i])
		}
		registrar.StartFanout(grrp.Registration{
			Message: grrp.Message{
				Type:       grrp.TypeRegister,
				ServiceURL: fmt.Sprintf("ldap://%s", listenAddr(*listen)),
				MDSType:    "gris",
				VO:         *vo,
				SuffixDN:   suffix.String(),
			},
			Interval: *interval,
			TTL:      *ttl,
			Keys:     keys, // nil means unsigned registrations
		}, targets)
		log.Printf("gris: registering with %s every %v (ttl %v)", *register, *interval, *ttl)
	}

	srv := ldap.NewServer(server)
	srv.ErrorLog = log.Default()
	srv.Obs = obsReg
	srv.Tracer = tracer
	srv.Overload = ldap.OverloadConfig{
		MaxWorkers:  *maxWorkers,
		MaxQueue:    *maxQueue,
		QueueBudget: *queueBudget,
		ClientRate:  *clientRate,
		ClientBurst: *clientBurst,
		MaxConns:    *maxConns,
	}
	if *obsAddr != "" {
		h := obs.NewHandler(obsReg, tracer, softstate.RealClock{})
		for _, spec := range strings.Split(*healthProbe, ",") {
			mode, err := ldap.ParseProbeMode(spec)
			if err != nil {
				log.Fatalf("gris: %v", err)
			}
			hc := ldap.HealthCheck{
				Addr:         listenAddr(*listen),
				Mode:         mode,
				BindDN:       *healthBind,
				BindPassword: *healthPW,
				Base:         *healthBase,
				Scope:        ldap.ScopeWholeSubtree,
				Filter:       *healthFilt,
				MinEntries:   *healthMin,
			}
			if mode == ldap.ProbeScopedSearch && hc.Base == "" {
				hc.Base = suffix.String()
			}
			h.AddHealthCheck("ldap-"+mode.String(), hc.Probe)
		}
		go func() {
			log.Printf("gris: observability on http://%s", *obsAddr)
			if err := http.ListenAndServe(*obsAddr, h); err != nil {
				log.Printf("gris: obs listener: %v", err)
			}
		}()
	}
	go handleSignals(srv)
	log.Printf("gris: serving %q on %s", suffix, *listen)
	if err := srv.ListenAndServe(*listen); err != nil && err != ldap.ErrServerClosed {
		log.Fatalf("gris: %v", err)
	}
}

// listenAddr renders the advertised address: ":2135" becomes
// "127.0.0.1:2135" so registrations carry a dialable URL.
func listenAddr(listen string) string {
	if len(listen) > 0 && listen[0] == ':' {
		return "127.0.0.1" + listen
	}
	return listen
}

func handleSignals(srv *ldap.Server) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Print("gris: shutting down")
	srv.Close()
}
