// Command mdsload is the open-loop load driver for GRIS/GIIS servers: it
// offers operations at a fixed rate regardless of how the target is doing
// and reports coordinated-omission-corrected latency, so saturation shows
// up as growing p99 instead of politely shrinking throughput.
//
// Usage:
//
//	mdsload -list
//	mdsload -addr host:2135 -base "o=grid" -rate 1000 -duration 10s \
//	        -mix search=8,bind=1,register=2,churn=1 -subscribers 4
//	mdsload -scenario overload-shed
//	mdsload -gate slo.json              # run + check every gated scenario
//	mdsload -scenario chain -gate slo.json
//
// With -gate, every result is checked against the named JSON threshold
// file (scenario name -> SLO) and the exit status is nonzero on any
// violation — the CI hook.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mds2/internal/load"
	"mds2/internal/softstate"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list named scenarios")
		scenario = flag.String("scenario", "", "run a named scenario (see -list) instead of -addr")

		addr        = flag.String("addr", "", "target LDAP server (direct mode)")
		base        = flag.String("base", "o=grid", "search base DN")
		filter      = flag.String("filter", "(objectclass=*)", "search filter")
		rate        = flag.Float64("rate", 0, "offered rate, ops/second (scenario default when 0)")
		rateScale   = flag.Float64("rate-scale", 0, "scenario mode: multiply the scenario's default rate")
		duration    = flag.Duration("duration", 0, "offered window (scenario default / 5s when 0)")
		pacing      = flag.String("pacing", "poisson", "arrival pacing: poisson|uniform")
		seed        = flag.Int64("seed", 1, "PRNG seed for pacing and mix choices")
		conns       = flag.Int("conns", 8, "connection-pool size")
		workers     = flag.Int("workers", 0, "max in-flight ops client-side (0 = 16x conns)")
		mixSpec     = flag.String("mix", "search=1", "operation mix, e.g. search=8,bind=1,register=2,churn=1")
		subscribers = flag.Int("subscribers", 0, "persistent-search subscriptions held for the run")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-operation timeout")
		report      = flag.Duration("report", time.Second, "periodic progress interval (0 = off)")

		jsonOut  = flag.String("json", "", "write results as JSON to this file (- for stdout)")
		failCSV  = flag.String("failures", "", "write one CSV row per failed/shed op to this file")
		gatePath = flag.String("gate", "", "SLO threshold file; exit nonzero on any violation")
	)
	flag.Parse()

	if *list {
		for _, s := range load.Scenarios() {
			fmt.Printf("%-16s %s (default %.0f ops/s for %v)\n",
				s.Name, s.Description, s.DefaultRate, s.DefaultDuration)
		}
		return
	}

	var gate load.SLOFile
	if *gatePath != "" {
		var err error
		if gate, err = load.LoadSLOFile(*gatePath); err != nil {
			fatal("%v", err)
		}
	}

	var failW io.Writer
	if *failCSV != "" {
		f, err := os.Create(*failCSV)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		failW = f
	}

	ctx := context.Background()
	results := map[string]*load.Result{}

	switch {
	case *scenario != "":
		results[*scenario] = runScenario(ctx, *scenario, scenarioOpts(*rate, *rateScale, *duration, *seed, *report, failW))
	case *addr != "":
		pace, err := load.ParsePacing(*pacing)
		if err != nil {
			fatal("%v", err)
		}
		mix, err := load.ParseMix(*mixSpec)
		if err != nil {
			fatal("%v", err)
		}
		cfg := load.Config{
			Addr:        *addr,
			BaseDN:      *base,
			Filter:      *filter,
			Rate:        *rate,
			Duration:    *duration,
			Pacing:      pace,
			Seed:        *seed,
			Conns:       *conns,
			Workers:     *workers,
			Mix:         mix,
			Subscribers: *subscribers,
			Timeout:     *timeout,
			Clock:       softstate.RealClock{},
			ReportEvery: *report,
			ReportW:     os.Stderr,
			FailureW:    failW,
		}
		if cfg.Rate <= 0 {
			fatal("direct mode needs -rate > 0")
		}
		if cfg.Duration <= 0 {
			cfg.Duration = 5 * time.Second
		}
		res, err := load.Run(ctx, cfg)
		if err != nil {
			fatal("%v", err)
		}
		results["direct"] = res
	case gate != nil:
		// Gate-only mode: run every scenario the threshold file names.
		names := make([]string, 0, len(gate))
		for name := range gate {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			results[name] = runScenario(ctx, name, scenarioOpts(*rate, *rateScale, *duration, *seed, *report, failW))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal("%v", err)
		}
	}

	if gate != nil {
		failed := false
		names := make([]string, 0, len(results))
		for name := range results {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			slo, ok := gate[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "gate: %s: no thresholds in %s, skipped\n", name, *gatePath)
				continue
			}
			if violations := slo.Check(results[name]); len(violations) > 0 {
				failed = true
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "gate: %s: FAIL %s\n", name, v)
				}
			} else {
				fmt.Fprintf(os.Stderr, "gate: %s: ok\n", name)
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

func scenarioOpts(rate, scale float64, d time.Duration, seed int64,
	report time.Duration, failW io.Writer) load.ScenarioOpts {
	return load.ScenarioOpts{
		Rate:        rate,
		RateScale:   scale,
		Duration:    d,
		Seed:        seed,
		ReportEvery: report,
		ReportW:     os.Stderr,
		FailureW:    failW,
	}
}

func runScenario(ctx context.Context, name string, opts load.ScenarioOpts) *load.Result {
	s, ok := load.FindScenario(name)
	if !ok {
		fatal("unknown scenario %q (try -list)", name)
	}
	fmt.Fprintf(os.Stderr, "=== scenario %s: %s\n", s.Name, s.Description)
	res, err := s.Run(ctx, opts)
	if err != nil {
		fatal("scenario %s: %v", name, err)
	}
	return res
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mdsload: "+format+"\n", args...)
	os.Exit(1)
}
