// Top-level benchmark harness: one benchmark per experiment in DESIGN.md §4
// (figures F1–F5, claims E1–E10). Each measures the dominant operation of
// its experiment; `go test -bench=. -benchmem` regenerates the performance
// side of EXPERIMENTS.md, and the full scenario tables come from
// cmd/mdsbench.
package mds2_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"mds2/internal/bloom"
	"mds2/internal/core"
	"mds2/internal/detect"
	"mds2/internal/experiments"
	"mds2/internal/giis"
	"mds2/internal/grip"
	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/matchmake"
	"mds2/internal/mds1"
	"mds2/internal/nws"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

// buildGrid assembles a simulated grid with n registered hosts behind one
// directory using the given strategy.
func buildGrid(b *testing.B, n int, strategy giis.Strategy) (*core.Grid, *core.DirectoryNode) {
	b.Helper()
	g, err := core.NewSimGrid(1234)
	if err != nil {
		b.Fatal(err)
	}
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=v", Strategy: strategy})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h, err := g.AddHost(fmt.Sprintf("h%03d", i), core.HostOptions{Org: fmt.Sprintf("org%d", i%4)})
		if err != nil {
			b.Fatal(err)
		}
		h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(dir.GIIS.Children()) < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(dir.GIIS.Children()) != n {
		b.Fatalf("only %d/%d registrations settled", len(dir.GIIS.Children()), n)
	}
	return g, dir
}

// BenchmarkFig2DiscoveryLookup measures the Figure 2 end-to-end flow: one
// discovery at the directory plus one direct lookup at a provider, over
// real LDAP bytes.
func BenchmarkFig2DiscoveryLookup(b *testing.B) {
	g, dir := buildGrid(b, 8, nil)
	defer g.Close()
	user, err := dir.Client("user")
	if err != nil {
		b.Fatal(err)
	}
	defer user.Close()
	base := ldap.MustParseDN("vo=v")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		entries, err := user.Search(base, "(&(objectclass=computer)(hn=h003))")
		if err != nil || len(entries) != 1 {
			b.Fatalf("discovery: %v %d", err, len(entries))
		}
	}
}

// BenchmarkFig4RegistrationIngest measures the directory-side cost of the
// sustained GRRP streams that make Figure 4's convergence work.
func BenchmarkFig4RegistrationIngest(b *testing.B) {
	for _, signed := range []bool{false, true} {
		name := "unsigned"
		if signed {
			name = "signed"
		}
		b.Run(name, func(b *testing.B) {
			clock := softstate.NewFakeClock()
			ca, _ := gsi.NewAuthority("o=ca")
			trust := gsi.NewTrustStore()
			trust.TrustAuthority(ca)
			cfg := giis.Config{Name: "d", Suffix: ldap.MustParseDN("vo=v"),
				SelfURL: ldap.MustParseURL("sim://d:389"), Clock: clock,
				Dial: func(ldap.URL) (*ldap.Client, error) { return nil, io.EOF }}
			if signed {
				cfg.Trust = trust
				cfg.RequireSignedRegistrations = true
			}
			s := giis.New(cfg)
			defer s.Close()
			keys, _ := ca.Issue("cn=gris.h", 1000*time.Hour, clock.Now())
			now := clock.Now()
			msgs := make([][]byte, 64)
			for i := range msgs {
				gm := &grrp.Message{
					ServiceURL: fmt.Sprintf("sim://h%03d:389", i),
					SuffixDN:   fmt.Sprintf("hn=h%03d, o=g", i),
					IssuedAt:   now,
					ValidUntil: now.Add(time.Hour),
				}
				if signed {
					gm.Sign(keys)
				}
				msgs[i] = gm.Marshal()
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Receiver().HandleDatagram("h", msgs[i%len(msgs)])
			}
		})
	}
}

// BenchmarkE3ScopedSearch contrasts root and scoped query cost as provider
// count grows (experiment E3).
func BenchmarkE3ScopedSearch(b *testing.B) {
	for _, n := range []int{8, 32} {
		g, dir := buildGrid(b, n, nil)
		user, err := dir.Client("user")
		if err != nil {
			b.Fatal(err)
		}
		root := ldap.MustParseDN("vo=v")
		scoped := ldap.MustParseDN("hn=h001, o=org1, vo=v")
		b.Run(fmt.Sprintf("root/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := user.Search(root, "(objectclass=computer)"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scoped/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := user.Search(scoped, "(objectclass=computer)"); err != nil {
					b.Fatal(err)
				}
			}
		})
		user.Close()
		g.Close()
	}
}

// BenchmarkGIISStrategies is the DESIGN.md ablation: chaining vs cached
// index vs bloom-routed answering the same targeted query.
func BenchmarkGIISStrategies(b *testing.B) {
	cases := []struct {
		name     string
		strategy func() giis.Strategy
	}{
		{"chaining", func() giis.Strategy { return giis.NewChaining() }},
		{"cached-index", func() giis.Strategy { return giis.NewCachedIndex(time.Hour) }},
		{"bloom-routed", func() giis.Strategy { return giis.NewBloomRouted(time.Hour, 1<<14) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g, dir := buildGrid(b, 16, tc.strategy())
			defer g.Close()
			user, err := dir.Client("user")
			if err != nil {
				b.Fatal(err)
			}
			defer user.Close()
			base := ldap.MustParseDN("vo=v")
			// Warm caches/summaries.
			if _, err := user.Search(base, "(&(objectclass=computer)(hn=h005))"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := user.Search(base, "(&(objectclass=computer)(hn=h005))"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE1Detector measures detector throughput (experiment E1's inner
// loop): one observation plus a periodic sweep over 1000 producers.
func BenchmarkE1Detector(b *testing.B) {
	clock := softstate.NewFakeClock()
	d := detect.New(30*time.Second, clock)
	for i := 0; i < 1000; i++ {
		d.Observe(fmt.Sprintf("p%03d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(fmt.Sprintf("p%03d", i%1000))
		if i%1000 == 0 {
			clock.Advance(time.Second)
			d.Check()
		}
	}
}

// BenchmarkE2GRISCache contrasts cache-hit and cache-miss query paths at a
// GRIS (experiment E2).
func BenchmarkE2GRISCache(b *testing.B) {
	host := hostinfo.New("h", hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
		CPUCount: 4, MemoryMB: 1024}, 5)
	suffix := ldap.MustParseDN("hn=h, o=g")
	run := func(b *testing.B, ttl time.Duration) {
		srv := newGRIS(suffix, host, ttl)
		req := &ldap.SearchRequest{BaseDN: suffix.String(), Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter("(objectclass=loadaverage)")}
		r := &ldap.Request{State: &ldap.ConnState{}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := srv.Search(r, req, nullWriter{}); res.Code != ldap.ResultSuccess {
				b.Fatal(res)
			}
		}
	}
	b.Run("hit", func(b *testing.B) { run(b, time.Hour) })
	b.Run("miss", func(b *testing.B) { run(b, 0) })
}

// BenchmarkE4CentralVsFederated measures the MDS-1 push path against the
// MDS-2 chained query path (experiment E4).
func BenchmarkE4CentralVsFederated(b *testing.B) {
	b.Run("mds1-push", func(b *testing.B) {
		clock := softstate.NewFakeClock()
		central := mds1.New(clock)
		host := hostinfo.New("h", hostinfo.Spec{OS: "linux", OSVer: "1",
			CPUType: "ia32", CPUCount: 4, MemoryMB: 1024}, 3)
		suffix := ldap.MustParseDN("hn=h, o=g")
		p := mds1.NewPusher(suffix, providers.HostBackends(host, suffix), central, time.Minute, clock)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.PushOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mds2-chained-query", func(b *testing.B) {
		g, dir := buildGrid(b, 1, nil)
		defer g.Close()
		user, err := dir.Client("user")
		if err != nil {
			b.Fatal(err)
		}
		defer user.Close()
		base := ldap.MustParseDN("vo=v")
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := user.Search(base, "(objectclass=loadaverage)"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5BloomSummary measures summary construction and probing
// (experiment E5).
func BenchmarkE5BloomSummary(b *testing.B) {
	terms := make([]string, 200)
	for i := range terms {
		terms[i] = fmt.Sprintf("attr%d=value%d", i%20, i)
	}
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := bloom.New(1<<14, 4)
			for _, t := range terms {
				f.Add(t)
			}
		}
	})
	b.Run("probe", func(b *testing.B) {
		f := bloom.New(1<<14, 4)
		for _, t := range terms {
			f.Add(t)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Test("attr7=value87")
		}
	})
}

// BenchmarkE6Subscription measures push-mode delivery: one provider change
// propagated to a wire subscriber (experiment E6).
func BenchmarkE6Subscription(b *testing.B) {
	g, err := core.NewSimGrid(99)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	host, err := g.AddHost("h", core.HostOptions{DynamicTTL: -1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := host.Client("mon")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan struct{}, 1024)
	go c.Subscribe(ctx, host.Suffix, "(objectclass=loadaverage)", false,
		func(grip.Update) error {
			select {
			case got <- struct{}{}:
			default:
			}
			return nil
		})
	<-got // baseline
	awaitPush := func() bool {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			// The server re-evaluates on its poll interval of simulated
			// time; keep nudging the clock until the push lands.
			g.SimClock().Advance(3 * time.Second)
			select {
			case <-got:
				return true
			case <-time.After(2 * time.Millisecond):
			}
		}
		return false
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Force a decisive change each iteration: alternate injected demand
		// and let the load process converge toward it (a small single step
		// can round to the same published %.2f value — correctly no push).
		host.Host.SetDemand(float64((i%2)*20 + 1))
		host.Host.Step(10 * time.Minute)
		if !awaitPush() {
			b.Fatal("no push")
		}
	}
}

// BenchmarkE7GSIHandshake measures full mutual authentication (experiment
// E7's mechanism cost).
func BenchmarkE7GSIHandshake(b *testing.B) {
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	now := time.Now()
	client, _ := ca.Issue("cn=alice", 1000*time.Hour, now)
	server, _ := ca.Issue("cn=gris", 1000*time.Hour, now)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch := gsi.NewClientHandshake(client, trust, nil)
		sh := gsi.NewServerHandshake(server, trust, nil)
		hello, _ := ch.Hello()
		challenge, err := sh.Challenge(hello)
		if err != nil {
			b.Fatal(err)
		}
		proof, err := ch.Respond(challenge)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sh.Finish(proof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8NWSMeasure measures on-demand link measurement plus forecast
// (experiment E8).
func BenchmarkE8NWSMeasure(b *testing.B) {
	svc := nws.NewService()
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc.Measure("src", "dst", t0)
	}
}

// BenchmarkE9Matchmake measures a ranked matchmaking decision over a 64-ad
// corpus (experiment E9).
func BenchmarkE9Matchmake(b *testing.B) {
	var candidates []*matchmake.Ad
	for i := 0; i < 64; i++ {
		candidates = append(candidates, matchmake.NewAd().
			Set("dn", fmt.Sprintf("hn=h%d", i)).
			Set("cpucount", 2<<(i%6)).
			Set("load5", float64(i%8)).
			Set("arch", []string{"ia32", "mips"}[i%2]))
	}
	req := &matchmake.Ad{
		Attrs:        map[string]matchmake.Value{"need": 8.0},
		Requirements: `other.cpucount >= need && other.load5 < 4 && other.arch == "ia32"`,
		Rank:         "other.cpucount - other.load5",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := matchmake.MatchAll(req, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10ProviderVariants is covered in internal/providers
// (BenchmarkProviderInvocation: module vs script); here we measure the
// wire-vs-direct ablation from DESIGN.md §5.
func BenchmarkWireVsDirect(b *testing.B) {
	host := hostinfo.New("h", hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
		CPUCount: 4, MemoryMB: 1024}, 5)
	suffix := ldap.MustParseDN("hn=h, o=g")
	b.Run("direct-handler", func(b *testing.B) {
		srv := newGRIS(suffix, host, time.Hour)
		req := &ldap.SearchRequest{BaseDN: suffix.String(), Scope: ldap.ScopeWholeSubtree}
		r := &ldap.Request{State: &ldap.ConnState{}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			srv.Search(r, req, nullWriter{})
		}
	})
	b.Run("wire", func(b *testing.B) {
		g, err := core.NewSimGrid(7)
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		h, err := g.AddHost("wh", core.HostOptions{})
		if err != nil {
			b.Fatal(err)
		}
		c, err := h.Client("user")
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Search(h.Suffix, "(objectclass=*)"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBERCodec measures the wire codec on a realistic search message.
func BenchmarkBERCodec(b *testing.B) {
	msg := &ldap.Message{ID: 7, Op: &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=grid", Scope: ldap.ScopeWholeSubtree,
		Filter:     ldap.MustParseFilter("(&(objectclass=computer)(freecpus>=8))"),
		Attributes: []string{"hn", "load5"},
	}}
	enc := msg.Encode()
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			msg.Encode()
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ldap.ParseMessageBytes(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExperimentSuite regenerates every mdsbench scenario once per
// iteration — the cost of reproducing the whole paper.
func BenchmarkExperimentSuite(b *testing.B) {
	for _, name := range experiments.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.Run(name, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Helpers.

type nullWriter struct{}

func (nullWriter) SendEntry(*ldap.Entry, ...ldap.Control) error { return nil }
func (nullWriter) SendReferral(...string) error                 { return nil }

func newGRIS(suffix ldap.DN, host *hostinfo.Host, dynTTL time.Duration) *gris.Server {
	s := gris.New(gris.Config{Suffix: suffix})
	for _, be := range providers.HostBackends(host, suffix) {
		if d, ok := be.(*providers.DynamicHost); ok {
			d.TTL = dynTTL
		}
		s.Register(be)
	}
	return s
}
