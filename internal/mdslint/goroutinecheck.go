package mdslint

import (
	"go/ast"
	"go/token"
)

// GoroutineCheck flags `go` launches with no visible cancellation path. A
// goroutine that can neither be signalled (context, done channel, select)
// nor unblocked by closing the resource it reads from is a leak: under
// the GRRP soft-state model every long-lived activity must die when the
// state that spawned it expires.
//
// Accepted as cancellation evidence, anywhere in the goroutine body, the
// launch arguments, or (one level deep) the body of a same-repo function
// the statement calls:
//
//   - a select statement or any channel send/receive/close/range;
//   - a context mention (an identifier named ctx, the context package, or
//     a Done()/Err() call);
//   - Clock.After / timer waits (an After(...) call);
//   - sync waits (Wait());
//   - a blocking call that fails when its source closes — Accept, Read,
//     ReadFrom, ReadMessage, ReadFull, Recv, Scan — the idiomatic exit
//     path for connection readers and accept loops.
//
// cmd/, examples/, internal/experiments/, and tests are exempt: mains own
// process-lifetime goroutines, and harnesses are fire-and-forget by
// design.
const ruleGoroutine = "goroutinecheck"

var GoroutineCheck = &Analyzer{
	Name: ruleGoroutine,
	Doc:  "every goroutine needs a cancellation path (context, done channel, Clock.After, or closable blocking source)",
	Run:  runGoroutineCheck,
}

func goroutineCheckExempt(path string) bool {
	return isTestFile(path) ||
		pathHasDir(path, "internal/experiments") ||
		pathHasDir(path, "cmd") ||
		pathHasDir(path, "examples")
}

// cancellationCalls are method/function names whose invocation implies the
// goroutine can be released.
var cancellationCalls = map[string]bool{
	"Done": true, "Err": true, "After": true, "Wait": true,
	"Accept": true, "Read": true, "ReadFrom": true, "ReadMessage": true,
	"ReadFull": true, "Recv": true, "Scan": true,
}

func runGoroutineCheck(p *Pass) []Finding {
	// Index every function/method declaration in the pass by name so a
	// `go x.loop()` launch can be judged by loop's own body.
	decls := map[string][]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.AST.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				decls[fn.Name.Name] = append(decls[fn.Name.Name], fn)
			}
		}
	}
	var out []Finding
	for _, f := range p.Files {
		if goroutineCheckExempt(f.Path) {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtHasCancellation(g, decls) {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(g.Pos()),
				Rule: ruleGoroutine,
				Msg:  "goroutine has no cancellation path (no context, done channel, Clock.After, or closable blocking source in scope)",
			})
			return true
		})
	}
	return out
}

func goStmtHasCancellation(g *ast.GoStmt, decls map[string][]*ast.FuncDecl) bool {
	// The launch expression itself: a func literal body, plus arguments
	// (passing a ctx or a channel counts — the callee received the means).
	if hasCancellationEvidence(g.Call) {
		return true
	}
	// One level into same-repo callees, matched by name.
	var name string
	switch fun := g.Call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	for _, fn := range decls[name] {
		if hasCancellationEvidence(fn.Body) {
			return true
		}
	}
	return false
}

func hasCancellationEvidence(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch v := c.(type) {
		case *ast.SelectStmt, *ast.SendStmt, *ast.RangeStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.ChanType:
			found = true
		case *ast.Ident:
			if v.Name == "ctx" || v.Name == "context" || v.Name == "cancel" {
				found = true
			}
		case *ast.CallExpr:
			switch fun := v.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" || fun.Name == "cancel" {
					found = true
				}
			case *ast.SelectorExpr:
				if cancellationCalls[fun.Sel.Name] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
