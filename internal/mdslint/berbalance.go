package mdslint

// BerBalance verifies the direct-emit framing invariant (internal/ber
// emit.go): every Builder.Begin/BeginPrimitive must be matched by End on
// every control-flow path, including early error returns — an unmatched
// Begin leaves a placeholder length octet in the wire buffer and corrupts
// the protocol stream for every subsequent message on the connection.
//
// The analyzer interprets each function's structured control flow (if/else,
// for/range, switch, select), tracking the set of possible net Begin-End
// depths for every Builder-typed variable. Helpers get a per-parameter net
// delta fact — e.g. internal/ldap's beginResult legitimately opens one
// element (+1) for its caller to close — computed to a fixed point so
// recursion (appendFilter) converges. Local builders must be balanced at
// every exit; parameter builders must leave the same net delta on every
// path, with the divergent (usually early-return) paths flagged.
//
// Builders that escape the direct analysis — captured by closures, aliased
// into other variables, or passed to unresolvable callees — are skipped
// rather than guessed at.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const ruleBerBalance = "berbalance"

var BerBalance = &Analyzer{
	Name:       ruleBerBalance,
	Doc:        "every ber.Builder.Begin/BeginPrimitive is matched by End on all control-flow paths, early returns included",
	NeedsTypes: true,
	Run:        runBerBalance,
}

const factBerDelta = "berDelta" // on *types.Func: map[int]int input source → net delta

func isBuilderType(t types.Type) bool { return typeIs(t, pkgBer, "Builder") }

// deltaSet is the set of possible net depths of one builder variable.
type deltaSet map[int]bool

func singleton(d int) deltaSet { return deltaSet{d: true} }

func (s deltaSet) equal(o deltaSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

func (s deltaSet) String() string {
	ks := make([]int, 0, len(s))
	for k := range s {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = fmt.Sprint(k)
	}
	return strings.Join(parts, " or ")
}

type bbState map[types.Object]deltaSet

func (st bbState) clone() bbState {
	out := make(bbState, len(st))
	for k, v := range st {
		cp := make(deltaSet, len(v))
		for d := range v {
			cp[d] = true
		}
		out[k] = cp
	}
	return out
}

func (st bbState) get(obj types.Object) deltaSet {
	if s, ok := st[obj]; ok {
		return s
	}
	return singleton(0)
}

// merge unions o into st (branch join).
func (st bbState) merge(o bbState, vars map[types.Object]bool) {
	for obj := range vars {
		a, b := st.get(obj), o.get(obj)
		u := make(deltaSet, len(a)+len(b))
		for d := range a {
			u[d] = true
		}
		for d := range b {
			u[d] = true
		}
		st[obj] = u
	}
}

type bbExit struct {
	pos token.Pos
	st  bbState
}

type bbAnalysis struct {
	p      *Pass
	info   *types.Info
	decl   *ast.FuncDecl
	vars   map[types.Object]bool // tracked Builder variables
	local  map[types.Object]bool // declared inside the function
	inputs map[types.Object]int  // receiver/param object → source index
	opaque map[types.Object]bool // escaped; excluded from tracking
	exits  []bbExit
}

func newBBAnalysis(p *Pass, d declInfo) *bbAnalysis {
	a := &bbAnalysis{
		p: p, info: d.pkg.Info, decl: d.decl,
		vars:   map[types.Object]bool{},
		local:  map[types.Object]bool{},
		inputs: map[types.Object]int{},
		opaque: map[types.Object]bool{},
	}
	addInput := func(name *ast.Ident, src int) {
		if obj := a.info.Defs[name]; obj != nil && isBuilderType(obj.Type()) {
			a.vars[obj] = true
			a.inputs[obj] = src
		}
	}
	if d.decl.Recv != nil {
		for _, f := range d.decl.Recv.List {
			for _, name := range f.Names {
				addInput(name, -1)
			}
		}
	}
	idx := 0
	if d.decl.Type.Params != nil {
		for _, f := range d.decl.Type.Params.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				addInput(name, idx)
				idx++
			}
		}
	}
	// Locals and escapes.
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if obj := a.info.Defs[v]; obj != nil && isBuilderType(obj.Type()) {
				if !a.vars[obj] {
					a.vars[obj] = true
					a.local[obj] = true
				}
			}
		case *ast.FuncLit:
			// A builder referenced from a closure escapes direct tracking.
			ast.Inspect(v.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := a.info.Uses[id]; obj != nil && isBuilderType(obj.Type()) {
						a.opaque[obj] = true
					}
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			// Aliasing a builder into another variable defeats per-name
			// depth tracking; mark both sides opaque.
			for _, rhs := range v.Rhs {
				if obj, depth := rootObj(a.info, rhs); obj != nil && depth == 0 && a.vars[obj] {
					if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); !isCall {
						a.opaque[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if obj, _ := rootObj(a.info, r); obj != nil && a.vars[obj] {
					a.opaque[obj] = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if obj, _ := rootObj(a.info, el); obj != nil && a.vars[obj] {
					a.opaque[obj] = true
				}
			}
		}
		return true
	})
	return a
}

func (a *bbAnalysis) shift(st bbState, obj types.Object, d int) {
	if obj == nil || !a.vars[obj] || a.opaque[obj] || d == 0 {
		return
	}
	cur := st.get(obj)
	ns := make(deltaSet, len(cur))
	for k := range cur {
		ns[k+d] = true
	}
	st[obj] = ns
}

func (a *bbAnalysis) builderRoot(e ast.Expr) types.Object {
	obj, _ := rootObj(a.info, e)
	if obj != nil && a.vars[obj] {
		return obj
	}
	return nil
}

// callEffect applies one call's net effect on builder depths.
func (a *bbAnalysis) callEffect(call *ast.CallExpr, st bbState) {
	callee := calleeOf(a.info, call)
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if callee != nil && sel != nil {
		switch {
		case isMethod(callee, pkgBer, "Builder", "Begin"),
			isMethod(callee, pkgBer, "Builder", "BeginPrimitive"):
			a.shift(st, a.builderRoot(sel.X), +1)
			return
		case isMethod(callee, pkgBer, "Builder", "End"):
			a.shift(st, a.builderRoot(sel.X), -1)
			return
		case isMethod(callee, pkgBer, "Builder", "Reset"):
			if obj := a.builderRoot(sel.X); obj != nil && !a.opaque[obj] {
				st[obj] = singleton(0)
			}
			return
		}
	}
	var deltas map[int]int
	if callee != nil {
		if v, ok := a.p.Fact(callee, factBerDelta); ok {
			deltas = v.(map[int]int)
		}
	}
	var sig *types.Signature
	if callee != nil {
		sig, _ = callee.Type().(*types.Signature)
	}
	if sel != nil && sig != nil && sig.Recv() != nil {
		if obj := a.builderRoot(sel.X); obj != nil {
			a.shift(st, obj, deltas[-1])
		}
	}
	for i, arg := range call.Args {
		obj := a.builderRoot(arg)
		if obj == nil {
			continue
		}
		if callee == nil || sig == nil {
			// A builder passed through an unresolvable call cannot be
			// tracked; skip it rather than guess.
			a.opaque[obj] = true
			continue
		}
		pi := i
		if np := sig.Params().Len(); sig.Variadic() && pi >= np-1 {
			pi = np - 1
		} else if pi >= np {
			continue
		}
		a.shift(st, obj, deltas[pi])
	}
}

// effects applies every call effect inside a node (skipping closures).
func (a *bbAnalysis) effects(n ast.Node, st bbState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			a.callEffect(call, st)
		}
		return true
	})
}

// terminates reports whether a simple statement ends the path (panic, exit).
func (a *bbAnalysis) terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isB := a.info.Uses[fun].(*types.Builtin); isB && fun.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if callee := calleeOf(a.info, call); callee != nil {
			if isFunc(callee, "os", "Exit") || (callee.Pkg() != nil && callee.Pkg().Path() == "log" && strings.HasPrefix(callee.Name(), "Fatal")) {
				return true
			}
		}
	}
	return false
}

// exec interprets one statement; reports whether the path terminated.
func (a *bbAnalysis) exec(s ast.Stmt, st bbState, findings *[]Finding) bool {
	switch v := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return a.execList(v.List, st, findings)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			a.effects(r, st)
		}
		a.exits = append(a.exits, bbExit{pos: v.Pos(), st: st.clone()})
		return true
	case *ast.IfStmt:
		a.exec(v.Init, st, findings)
		a.effects(v.Cond, st)
		thenSt := st.clone()
		thenTerm := a.exec(v.Body, thenSt, findings)
		elseSt := st.clone()
		elseTerm := false
		if v.Else != nil {
			elseTerm = a.exec(v.Else, elseSt, findings)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			replace(st, thenSt)
			st.merge(elseSt, a.vars)
		}
		return false
	case *ast.ForStmt:
		a.exec(v.Init, st, findings)
		a.effects(v.Cond, st)
		a.loopBody(v.Body, v.Post, st, v.Pos(), findings)
		return false
	case *ast.RangeStmt:
		a.effects(v.X, st)
		a.loopBody(v.Body, nil, st, v.Pos(), findings)
		return false
	case *ast.SwitchStmt:
		a.exec(v.Init, st, findings)
		a.effects(v.Tag, st)
		return a.execCases(v.Body, st, findings, hasDefaultClause(v.Body))
	case *ast.TypeSwitchStmt:
		a.exec(v.Init, st, findings)
		a.exec(v.Assign, st, findings)
		return a.execCases(v.Body, st, findings, hasDefaultClause(v.Body))
	case *ast.SelectStmt:
		return a.execCases(v.Body, st, findings, true)
	case *ast.LabeledStmt:
		return a.exec(v.Stmt, st, findings)
	case *ast.BranchStmt:
		// break/continue/goto: approximate as path end (state dropped).
		return true
	case *ast.DeferStmt:
		// Deferred builder effects run at an unknowable point relative to
		// the returns; give up on any builder they touch.
		before := st.clone()
		a.callEffect(v.Call, st)
		for obj := range a.vars {
			if !st.get(obj).equal(before.get(obj)) {
				a.opaque[obj] = true
			}
		}
		replace(st, before)
		return false
	case *ast.GoStmt:
		for _, arg := range v.Call.Args {
			if obj := a.builderRoot(arg); obj != nil {
				a.opaque[obj] = true
			}
		}
		return false
	default:
		if a.terminates(s) {
			return true
		}
		a.effects(s, st)
		return false
	}
}

func replace(dst, src bbState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func (a *bbAnalysis) execList(list []ast.Stmt, st bbState, findings *[]Finding) bool {
	for _, s := range list {
		if a.exec(s, st, findings) {
			return true
		}
	}
	return false
}

// loopBody requires the body to be depth-neutral across one iteration;
// anything else is flagged, since the imbalance compounds per iteration.
func (a *bbAnalysis) loopBody(body *ast.BlockStmt, post ast.Stmt, st bbState, pos token.Pos, findings *[]Finding) {
	bodySt := st.clone()
	term := a.exec(body, bodySt, findings)
	if !term {
		a.exec(post, bodySt, findings)
		for obj := range a.vars {
			if a.opaque[obj] {
				continue
			}
			if !bodySt.get(obj).equal(st.get(obj)) {
				if findings != nil {
					*findings = append(*findings, Finding{
						Pos:  a.p.Fset.Position(pos),
						Rule: ruleBerBalance,
						Msg: "loop body leaves builder " + objName(obj) + " with a net Begin/End imbalance per iteration (depth " +
							bodySt.get(obj).String() + " vs " + st.get(obj).String() + " at entry)",
					})
				}
				// Keep the entry state to avoid cascading noise.
			}
		}
	}
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (a *bbAnalysis) execCases(body *ast.BlockStmt, st bbState, findings *[]Finding, exhaustive bool) bool {
	var merged bbState
	for _, c := range body.List {
		cs := st.clone()
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				a.effects(e, cs)
			}
			stmts = cc.Body
		case *ast.CommClause:
			a.exec(cc.Comm, cs, findings)
			stmts = cc.Body
		}
		if !a.execList(stmts, cs, findings) {
			if merged == nil {
				merged = cs
			} else {
				merged.merge(cs, a.vars)
			}
		}
	}
	if !exhaustive {
		if merged == nil {
			merged = st.clone()
		} else {
			merged.merge(st, a.vars)
		}
	}
	if merged == nil {
		return true
	}
	replace(st, merged)
	return false
}

func objName(obj types.Object) string { return obj.Name() }

// analyze runs the interpreter over one function, updating the delta fact
// and (when findings != nil) emitting diagnostics. Reports fact change.
func analyzeBuilderFunc(p *Pass, d declInfo, findings *[]Finding) bool {
	a := newBBAnalysis(p, d)
	if len(a.vars) == 0 {
		return false
	}
	st := bbState{}
	terminated := a.exec(d.decl.Body, st, findings)
	if !terminated {
		a.exits = append(a.exits, bbExit{pos: d.decl.Body.Rbrace, st: st.clone()})
	}
	if len(a.exits) == 0 {
		return false
	}

	newDeltas := map[int]int{}
	for obj := range a.vars {
		if a.opaque[obj] {
			continue
		}
		if a.local[obj] {
			if findings != nil {
				for _, ex := range a.exits {
					if ds := ex.st.get(obj); !ds.equal(singleton(0)) {
						*findings = append(*findings, Finding{
							Pos:  p.Fset.Position(ex.pos),
							Rule: ruleBerBalance,
							Msg:  "builder " + objName(obj) + " reaches this exit with unclosed Begin (net depth " + ds.String() + "); every Begin needs a matching End on this path",
						})
					}
				}
			}
			continue
		}
		// Parameter/receiver builder: every exit must agree on the net
		// delta; the agreed value becomes the function's fact.
		mode := exitMode(a.exits, obj)
		newDeltas[a.inputs[obj]] = mode
		if findings != nil {
			for _, ex := range a.exits {
				if ds := ex.st.get(obj); !ds.equal(singleton(mode)) {
					*findings = append(*findings, Finding{
						Pos:  p.Fset.Position(ex.pos),
						Rule: ruleBerBalance,
						Msg: "this exit leaves builder " + objName(obj) + " at net depth " + ds.String() +
							fmt.Sprintf(" but other paths leave %d; close (or open) the element on every path", mode),
					})
				}
			}
		}
	}

	old, had := p.Fact(d.obj, factBerDelta)
	if had && deltasEqual(old.(map[int]int), newDeltas) {
		return false
	}
	p.SetFact(d.obj, factBerDelta, newDeltas)
	return true
}

// exitMode picks the reference net delta for an input builder: the most
// common singleton exit depth, preferring the final exit on ties (the
// fall-through path is the intended shape; early returns are the suspects).
func exitMode(exits []bbExit, obj types.Object) int {
	counts := map[int]int{}
	for _, ex := range exits {
		if ds := ex.st.get(obj); len(ds) == 1 {
			for d := range ds {
				counts[d]++
			}
		}
	}
	best, bestN := 0, -1
	if ds := exits[len(exits)-1].st.get(obj); len(ds) == 1 {
		for d := range ds {
			best, bestN = d, counts[d]
		}
	}
	for d, n := range counts {
		if n > bestN {
			best, bestN = d, n
		}
	}
	return best
}

func deltasEqual(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runBerBalance(p *Pass) []Finding {
	decls := p.funcDecls()
	for range 5 {
		changed := false
		for _, d := range decls {
			if analyzeBuilderFunc(p, d, nil) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var out []Finding
	for _, d := range decls {
		analyzeBuilderFunc(p, d, &out)
	}
	return out
}
