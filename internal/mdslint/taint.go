package mdslint

// Flow-insensitive taint propagation over a single function body, shared by
// the typed analyzers (snapshotcheck, poolcheck) and the funcShape fact
// pass. Taint is tracked per source — source 0 is the analyzer's resource
// (a store snapshot, a frame-aliased buffer); further sources tag a
// function's receiver and parameters so the shape pass can discover which
// results alias which inputs.
//
// Each source carries a three-level lattice, because "touches a snapshot"
// is not one property:
//
//	self    — the value IS the source's own value (only used for input
//	          tags: the receiver/parameter as seeded);
//	elem    — a fresh local container whose elements or fields refer to
//	          source memory (out := append(nil, snapshots...)); writing
//	          the container's own top level mutates fresh memory and is
//	          safe, writing through it is not;
//	primary — the value aliases memory owned by (reachable through) the
//	          source; any write through it is a shared-state mutation.
//
// Reading through a value (field select, index, deref, channel receive)
// moves self/elem up to primary; building a container (composite literal,
// append) moves everything down to elem. This is the distinction that lets
// sorting a freshly built []*Entry of snapshots pass while flagging a
// write to one of the entries inside it.
//
// The engine deliberately trades precision for predictability: it iterates
// a statement sweep to a fixed point, propagates through assignments,
// ranges, type switches, composite literals and calls, and treats immutable
// types (strings, numerics) as never tainted. Calls resolve through the
// analyzer-supplied callTaint hook, which is where interprocedural facts
// plug in.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type taintBits uint64

// Each taint source owns a 3-bit group; source 0 (the analyzer resource)
// occupies the low group.
const (
	taintSelf    taintBits = 1 << 0
	taintElem    taintBits = 1 << 1
	taintPrimary taintBits = 1 << 2
	taintAny     taintBits = taintSelf | taintElem | taintPrimary

	// taintShared is what analyzers flag on: the value aliases or holds
	// source memory (self is only meaningful for shape-pass input tags).
	taintShared taintBits = taintElem | taintPrimary
)

// Every-third-bit masks selecting one lattice level across all sources.
const (
	selfMask taintBits = 0x9249249249249249 // bits 0, 3, 6, …
	elemMask taintBits = 0x2492492492492492 // bits 1, 4, 7, …
	primMask taintBits = 0x4924924924924924 // bits 2, 5, 8, …
)

// toPrimary models reading through a value: the result aliases memory
// reachable through whatever the operand referred to.
func toPrimary(b taintBits) taintBits {
	return (b&selfMask)<<2 | (b&elemMask)<<1 | b&primMask
}

// toElem models building a fresh container around a value: the container's
// own memory is new, but its contents refer to the operand's sources.
func toElem(b taintBits) taintBits {
	return (b&selfMask)<<1 | b&elemMask | (b&primMask)>>1
}

// groupShift returns the bit offset of a source's group: -1 is the
// receiver (group 1), i >= 0 the i'th parameter (group 2+i).
func groupShift(src int) uint { return uint(3 * (2 + src)) }

// tagFor returns the self bit tagging an input source. Sources whose group
// does not fit the word are untagged (invisible to the shape pass — fine
// in practice; it takes 19 parameters to get there).
func tagFor(src int) taintBits {
	g := groupShift(src)
	if g+2 >= 64 {
		return 0
	}
	return 1 << g
}

// tagSources decodes which input sources have any bit set.
func tagSources(b taintBits) []int {
	var out []int
	for g := uint(3); g+2 < 64; g += 3 {
		if b&(taintAny<<g) != 0 {
			out = append(out, int(g/3)-2)
		}
	}
	return out
}

type taintConfig struct {
	info *types.Info
	// taintable filters which types can carry taint; nil means pointerish.
	taintable func(types.Type) bool
	// callTaint returns per-result taint for a (possibly nil) resolved
	// callee. recv/args carry the taint of the receiver and arguments.
	// Returning nil means "no taint".
	callTaint func(call *ast.CallExpr, callee *types.Func, recv taintBits, args []taintBits, nres int) []taintBits
	// fieldRead returns extra taint conferred by reading the given struct
	// field, independent of the container's taint.
	fieldRead func(field *types.Var) taintBits
	// onFieldStore observes stores of tainted values into struct fields
	// (fired once per sweep; consumers must be idempotent).
	onFieldStore func(field *types.Var, bits taintBits)
	// seed taints objects (receiver/parameters) before the first sweep.
	seed map[types.Object]taintBits
}

type tengine struct {
	cfg     *taintConfig
	t       map[types.Object]taintBits
	changed bool
}

// pointerish reports whether a type can transitively reach mutable shared
// state: everything except basic types (strings included — immutable) and
// nil. Structs and interfaces count, since they may wrap pointers.
func pointerish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Basic:
		return false
	}
	return true
}

func newTaintEngine(cfg *taintConfig) *tengine {
	e := &tengine{cfg: cfg, t: map[types.Object]taintBits{}}
	for obj, b := range cfg.seed {
		e.t[obj] = b
	}
	return e
}

func (e *tengine) taintableType(t types.Type) bool {
	if e.cfg.taintable != nil {
		return e.cfg.taintable(t)
	}
	return pointerish(t)
}

func (e *tengine) objOf(id *ast.Ident) types.Object {
	if o := e.cfg.info.Defs[id]; o != nil {
		return o
	}
	return e.cfg.info.Uses[id]
}

func (e *tengine) addTaint(obj types.Object, b taintBits) {
	if obj == nil || b == 0 || !e.taintableType(obj.Type()) {
		return
	}
	if e.t[obj]&b != b {
		e.t[obj] |= b
		e.changed = true
	}
}

// run sweeps body until the taint map stops changing.
func (e *tengine) run(body *ast.BlockStmt) {
	for range 32 {
		e.changed = false
		e.sweep(body)
		if !e.changed {
			return
		}
	}
}

func (e *tengine) sweep(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			e.assignStmt(v)
		case *ast.ValueSpec:
			e.valueSpec(v)
		case *ast.RangeStmt:
			// Range elements are read out of the container.
			if b := toPrimary(e.taintOf(v.X)); b != 0 {
				if id, ok := v.Key.(*ast.Ident); ok {
					e.addTaint(e.objOf(id), b)
				}
				if id, ok := v.Value.(*ast.Ident); ok {
					e.addTaint(e.objOf(id), b)
				}
			}
		case *ast.TypeSwitchStmt:
			e.typeSwitch(v)
		}
		return true
	})
}

func (e *tengine) assignStmt(a *ast.AssignStmt) {
	switch {
	case len(a.Lhs) == len(a.Rhs):
		for i := range a.Lhs {
			e.assign(a.Lhs[i], e.taintOf(a.Rhs[i]))
		}
	case len(a.Rhs) == 1:
		bits := e.tupleTaint(a.Rhs[0], len(a.Lhs))
		for i := range a.Lhs {
			e.assign(a.Lhs[i], bits[i])
		}
	}
}

func (e *tengine) valueSpec(s *ast.ValueSpec) {
	switch {
	case len(s.Values) == len(s.Names):
		for i, name := range s.Names {
			e.addTaint(e.objOf(name), e.taintOf(s.Values[i]))
		}
	case len(s.Values) == 1:
		bits := e.tupleTaint(s.Values[0], len(s.Names))
		for i, name := range s.Names {
			e.addTaint(e.objOf(name), bits[i])
		}
	}
}

func (e *tengine) typeSwitch(s *ast.TypeSwitchStmt) {
	var operand ast.Expr
	switch st := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if ta, ok := st.Rhs[0].(*ast.TypeAssertExpr); ok {
				operand = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := st.X.(*ast.TypeAssertExpr); ok {
			operand = ta.X
		}
	}
	if operand == nil {
		return
	}
	b := e.taintOf(operand)
	if b == 0 {
		return
	}
	for _, cc := range s.Body.List {
		if obj := e.cfg.info.Implicits[cc]; obj != nil {
			e.addTaint(obj, b)
		}
	}
}

// assign propagates taint into an assignment target.
func (e *tengine) assign(lhs ast.Expr, bits taintBits) {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name != "_" {
			e.addTaint(e.objOf(v), bits)
		}
	case *ast.SelectorExpr:
		if bits == 0 || e.cfg.onFieldStore == nil {
			return
		}
		if field, ok := e.objOf(v.Sel).(*types.Var); ok && field.IsField() {
			e.cfg.onFieldStore(field, bits)
		}
	case *ast.IndexExpr:
		// a[i] = x: the container now holds x's sources.
		if bits != 0 {
			e.assign(v.X, toElem(bits))
		}
	case *ast.StarExpr:
		// *p = x: whatever p points at now holds x's sources.
		if bits != 0 {
			e.assign(v.X, toElem(bits))
		}
	}
}

// tupleTaint handles the 1:n assignment forms.
func (e *tengine) tupleTaint(rhs ast.Expr, n int) []taintBits {
	out := make([]taintBits, n)
	switch v := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		res := e.callTaints(v)
		copy(out, res)
	case *ast.TypeAssertExpr: // v, ok := x.(T)
		if n > 0 {
			out[0] = e.taintOf(v.X)
		}
	case *ast.IndexExpr: // v, ok := m[k]
		if n > 0 {
			out[0] = toPrimary(e.taintOf(v.X))
		}
	case *ast.UnaryExpr: // v, ok := <-ch
		if v.Op == token.ARROW && n > 0 {
			out[0] = toPrimary(e.taintOf(v.X))
		}
	}
	return out
}

// taintOf computes the taint carried by an expression under the current map.
func (e *tengine) taintOf(expr ast.Expr) taintBits {
	switch v := expr.(type) {
	case *ast.Ident:
		obj := e.objOf(v)
		if obj == nil {
			return 0
		}
		return e.t[obj]
	case *ast.SelectorExpr:
		var b taintBits
		// Skip package qualifiers: pkg.Var roots at the package-level
		// object, whose taint (if any) is in the map directly.
		if id, ok := v.X.(*ast.Ident); ok {
			if _, isPkg := e.cfg.info.Uses[id].(*types.PkgName); isPkg {
				if obj := e.cfg.info.Uses[v.Sel]; obj != nil {
					b = e.t[obj]
				}
				return b
			}
		}
		// A field read looks through the container.
		b = toPrimary(e.taintOf(v.X))
		if e.cfg.fieldRead != nil {
			if field, ok := e.cfg.info.Uses[v.Sel].(*types.Var); ok && field.IsField() {
				b |= e.cfg.fieldRead(field)
			}
		}
		return b
	case *ast.IndexExpr:
		return toPrimary(e.taintOf(v.X))
	case *ast.SliceExpr:
		// Reslicing shares the same backing at the same level.
		return e.taintOf(v.X)
	case *ast.StarExpr:
		return toPrimary(e.taintOf(v.X))
	case *ast.ParenExpr:
		return e.taintOf(v.X)
	case *ast.TypeAssertExpr:
		return e.taintOf(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return e.taintOf(v.X)
		}
		if v.Op == token.ARROW {
			return toPrimary(e.taintOf(v.X))
		}
		return 0
	case *ast.CallExpr:
		var b taintBits
		for _, r := range e.callTaints(v) {
			b |= r
		}
		return b
	case *ast.CompositeLit:
		// A literal is a fresh container holding its elements.
		var b taintBits
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			b |= e.taintOf(el)
		}
		return toElem(b)
	}
	return 0
}

// callTaints computes per-result taint for a call, handling conversions and
// builtins in the engine and delegating real calls to the config hook.
func (e *tengine) callTaints(call *ast.CallExpr) []taintBits {
	info := e.cfg.info
	nres := resultCount(info, call)
	out := make([]taintBits, max(nres, 1))

	// Conversions: string conversions copy (and strings are immutable
	// anyway); []byte("...") copies; other conversions alias their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && !isImmutableConversion(info, tv.Type, call.Args[0]) {
			out[0] = e.taintOf(call.Args[0])
		}
		return out
	}

	// Builtins: append is the interesting one — it copies element values
	// into the destination, so for immutable element types only the
	// destination's taint survives, while pointerish elements keep aliasing
	// what they point at.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			if id.Name == "append" && len(call.Args) > 0 {
				b := e.taintOf(call.Args[0])
				if appendElemPointerish(info, call) {
					for i, a := range call.Args[1:] {
						ab := e.taintOf(a)
						if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
							// append(dst, src...): elements are read out of
							// src, then held by the destination.
							ab = toPrimary(ab)
						}
						b |= toElem(ab)
					}
				}
				out[0] = b
			}
			return out
		}
	}

	callee := calleeOf(info, call)
	var recv taintBits
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = e.taintOf(sel.X)
		}
	}
	args := make([]taintBits, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.taintOf(a)
	}
	if e.cfg.callTaint != nil {
		if r := e.cfg.callTaint(call, callee, recv, args, nres); r != nil {
			copy(out, r)
		}
	}
	return out
}

// isImmutableConversion reports whether converting arg to typ yields a
// value that cannot alias mutable state: any string conversion, and
// []byte(string) (which copies).
func isImmutableConversion(info *types.Info, typ types.Type, arg ast.Expr) bool {
	if b, ok := typ.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsString != 0 || b.Info()&(types.IsNumeric|types.IsBoolean) != 0
	}
	if sl, ok := typ.Underlying().(*types.Slice); ok {
		if eb, ok := sl.Elem().Underlying().(*types.Basic); ok &&
			(eb.Kind() == types.Byte || eb.Kind() == types.Rune) {
			if at, ok := info.Types[arg]; ok && at.Type != nil {
				if ab, ok := at.Type.Underlying().(*types.Basic); ok && ab.Info()&types.IsString != 0 {
					return true
				}
			}
		}
	}
	return false
}

// appendElemPointerish reports whether append's element type can alias
// shared state (so appended values carry their taint into the result).
func appendElemPointerish(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return true
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return true
	}
	return pointerish(sl.Elem())
}

// resourceReturnLevels unions each result's resource-group taint across
// every return site; nil when no result carries resource taint.
func (e *tengine) resourceReturnLevels(sig *types.Signature, decl *ast.FuncDecl) map[int]taintBits {
	var out map[int]taintBits
	for _, ret := range collectReturns(decl.Body) {
		for i, b := range e.returnTaints(sig, decl, ret) {
			if b &= taintShared; b != 0 {
				if out == nil {
					out = map[int]taintBits{}
				}
				out[i] |= b
			}
		}
	}
	return out
}

// levelsEqual compares two result-level maps.
func levelsEqual(a, b map[int]taintBits) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// writeContainer returns the expression owning the memory an lvalue write
// lands in: the X of the outermost selector/index/star. A bare identifier
// returns nil — rebinding a variable mutates nothing shared.
func writeContainer(lhs ast.Expr) ast.Expr {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return v.X
	case *ast.IndexExpr:
		return v.X
	case *ast.StarExpr:
		return v.X
	}
	return nil
}

// collectReturns gathers the return statements of body that belong to the
// enclosing function (not to nested function literals).
func collectReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, v)
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// returnTaints computes the per-result taint of one return statement given
// the function's signature (handling `return f()` tuple forms and naked
// returns through named results).
func (e *tengine) returnTaints(sig *types.Signature, decl *ast.FuncDecl, ret *ast.ReturnStmt) []taintBits {
	n := sig.Results().Len()
	out := make([]taintBits, n)
	switch {
	case len(ret.Results) == n:
		for i, r := range ret.Results {
			out[i] = e.taintOf(r)
		}
	case len(ret.Results) == 1 && n > 1:
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			copy(out, e.callTaints(call))
		}
	case len(ret.Results) == 0 && n > 0:
		// Naked return: read the named result objects.
		if decl.Type.Results != nil {
			i := 0
			for _, f := range decl.Type.Results.List {
				for _, name := range f.Names {
					if i < n {
						out[i] = e.t[e.objOf(name)]
					}
					i++
				}
				if len(f.Names) == 0 {
					i++
				}
			}
		}
	}
	return out
}
