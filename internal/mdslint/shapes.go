package mdslint

// The funcShape fact pass: for every function in the module, discover
//
//   - aliases: which results alias which inputs (receiver/parameters)
//     without an intervening clone — e.g. Entry.Values returns a live view
//     of the receiver's attribute slice, so taint must flow through it;
//   - mutates: which inputs the function writes through — e.g. Entry.Add
//     assigns e.Attrs[i].Values, so calling Add on a snapshot is a
//     mutation even though the write happens two calls away.
//
// Facts are computed with the shared taint engine, seeding each input with
// its own tag bit and reading the tags back off return expressions and
// write targets. Packages arrive in dependency order, so callee facts are
// normally ready before callers; a short module-level fixed point handles
// recursion and same-package ordering.

import (
	"go/ast"
	"go/types"
)

// Mutation severities, from the caller's point of view: a shallow
// mutation writes the argument's own top-level memory (entries[i] = x in
// SortEntries) and only matters when the caller's value itself aliases
// shared memory; a deep mutation writes memory reachable through the
// argument (e.Attrs[i].Values = … in Entry.Add) and also matters when the
// caller passes a fresh container holding shared values.
const (
	mutShallow uint8 = 1 << iota
	mutDeep
)

// funcShape is the per-function fact record. Sources are -1 for the
// receiver and i >= 0 for the i'th parameter.
type funcShape struct {
	// aliases maps result index → a tag-space taint mask recording, per
	// input source, at which lattice level the result refers to it
	// (self = is the input, elem = fresh container holding it,
	// primary = aliases memory reachable through it).
	aliases map[int]taintBits
	// mutates maps input source → mutation severity bits.
	mutates map[int]uint8
}

const factShape = "shape"

func shapeOf(p *Pass, fn *types.Func) *funcShape {
	if v, ok := p.Fact(fn, factShape); ok {
		return v.(*funcShape)
	}
	return nil
}

// isCloneLaunder reports whether a call is a by-convention deep-copy whose
// result is safe to mutate: methods/functions named Clone or Select (the
// repo's entry-copy API) and the stdlib Clone helpers.
func isCloneLaunder(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Clone", "Select":
		return true
	}
	return false
}

// applyShapeAliases folds a callee's alias facts into per-result taint,
// given the taint of the call's receiver and arguments. The callee's
// per-source lattice level composes with the caller-side input taint:
// returning the input passes it through unchanged, returning a fresh
// container of it wraps it (toElem), returning a read-through of it
// dereferences it (toPrimary).
func applyShapeAliases(p *Pass, callee *types.Func, recv taintBits, args []taintBits, res []taintBits) {
	sh := shapeOf(p, callee)
	if sh == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	for ri, mask := range sh.aliases {
		if ri >= len(res) {
			continue
		}
		for _, src := range tagSources(mask) {
			in := inputTaint(sig, src, recv, args)
			if in == 0 {
				continue
			}
			g := groupShift(src)
			if mask&(taintSelf<<g) != 0 {
				res[ri] |= in
			}
			if mask&(taintElem<<g) != 0 {
				res[ri] |= toElem(in)
			}
			if mask&(taintPrimary<<g) != 0 {
				res[ri] |= toPrimary(in)
			}
		}
	}
}

// inputTaint returns the taint of the call input identified by src,
// accounting for variadic tails.
func inputTaint(sig *types.Signature, src int, recv taintBits, args []taintBits) taintBits {
	if src == -1 {
		return recv
	}
	np := sig.Params().Len()
	if sig.Variadic() && src == np-1 {
		var b taintBits
		for i := src; i < len(args); i++ {
			b |= args[i]
		}
		return b
	}
	if src >= 0 && src < len(args) {
		return args[src]
	}
	return 0
}

// shapeSeed builds the tag-seeded taint map for a function's inputs.
func shapeSeed(info *types.Info, decl *ast.FuncDecl) map[types.Object]taintBits {
	seed := map[types.Object]taintBits{}
	add := func(fl *ast.FieldList, start int) int {
		idx := start
		if fl == nil {
			return idx
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && pointerish(obj.Type()) {
					seed[obj] |= tagFor(idx)
				}
				idx++
			}
		}
		return idx
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && pointerish(obj.Type()) {
					seed[obj] |= tagFor(-1)
				}
			}
		}
	}
	add(decl.Type.Params, 0)
	return seed
}

// ensureShapes computes funcShape facts for every function in the module.
func (p *Pass) ensureShapes() {
	if p.shapes || p.Pkgs == nil {
		return
	}
	p.shapes = true
	decls := p.funcDecls()
	for range 4 {
		changed := false
		for _, d := range decls {
			if p.computeShape(d) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (p *Pass) computeShape(d declInfo) bool {
	info := d.pkg.Info
	cfg := &taintConfig{
		info: info,
		seed: shapeSeed(info, d.decl),
		callTaint: func(call *ast.CallExpr, callee *types.Func, recv taintBits, args []taintBits, nres int) []taintBits {
			if callee == nil || isCloneLaunder(callee) {
				return nil
			}
			res := make([]taintBits, nres)
			applyShapeAliases(p, callee, recv, args, res)
			return res
		},
	}
	en := newTaintEngine(cfg)
	en.run(d.decl.Body)

	sh := &funcShape{aliases: map[int]taintBits{}, mutates: map[int]uint8{}}
	sig := d.obj.Type().(*types.Signature)

	// Aliases: union tag-space bits over every return site (the resource
	// group is never seeded here, so the mask is pure tag space).
	for _, ret := range collectReturns(d.decl.Body) {
		for i, b := range en.returnTaints(sig, d.decl, ret) {
			if b &^= taintAny; b != 0 {
				sh.aliases[i] |= b
			}
		}
	}
	// Mutations: the severity is read off the taint level of the memory
	// the write lands in — the container one step in from the lvalue.
	markWrite := func(c ast.Expr) {
		bits := en.taintOf(c)
		for _, src := range tagSources(bits) {
			g := groupShift(src)
			if bits&(taintSelf<<g) != 0 {
				sh.mutates[src] |= mutShallow
			}
			if bits&(taintPrimary<<g) != 0 {
				sh.mutates[src] |= mutDeep
			}
		}
	}
	markCalleeMutation := func(sev uint8, in taintBits) {
		for _, s := range tagSources(in) {
			g := groupShift(s)
			if sev&mutShallow != 0 {
				if in&(taintSelf<<g) != 0 {
					sh.mutates[s] |= mutShallow
				}
				if in&(taintPrimary<<g) != 0 {
					sh.mutates[s] |= mutDeep
				}
			}
			if sev&mutDeep != 0 {
				sh.mutates[s] |= mutDeep
			}
		}
	}
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if c := writeContainer(lhs); c != nil {
					markWrite(c)
				}
			}
		case *ast.IncDecStmt:
			if c := writeContainer(v.X); c != nil {
				markWrite(c)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if _, isB := info.Uses[id].(*types.Builtin); isB {
					if (id.Name == "copy" || id.Name == "delete" || id.Name == "clear") && len(v.Args) > 0 {
						markWrite(v.Args[0])
					}
					return true
				}
			}
			callee := calleeOf(info, v)
			if callee != nil && isCloneLaunder(callee) {
				// Clone-by-convention writes only its own fresh result;
				// whatever its body looks like to the field-insensitive
				// engine, calling it mutates nothing the caller shares.
				return true
			}
			csh := shapeOf(p, callee)
			if csh == nil {
				return true
			}
			csig, ok := callee.Type().(*types.Signature)
			if !ok {
				return true
			}
			var recv taintBits
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && csig.Recv() != nil {
				recv = en.taintOf(sel.X)
			}
			args := make([]taintBits, len(v.Args))
			for i, a := range v.Args {
				args[i] = en.taintOf(a)
			}
			for src, sev := range csh.mutates {
				markCalleeMutation(sev, inputTaint(csig, src, recv, args))
			}
		}
		return true
	})

	old := shapeOf(p, d.obj)
	if old != nil && shapeEqual(old, sh) {
		return false
	}
	p.SetFact(d.obj, factShape, sh)
	return true
}

func shapeEqual(a, b *funcShape) bool {
	if len(a.aliases) != len(b.aliases) || len(a.mutates) != len(b.mutates) {
		return false
	}
	for i, am := range a.aliases {
		if b.aliases[i] != am {
			return false
		}
	}
	for s, sev := range a.mutates {
		if b.mutates[s] != sev {
			return false
		}
	}
	return true
}
