package mdslint

// SnapshotCheck enforces the store's copy-on-write contract (DESIGN.md §5,
// internal/ldap/store.go): entries handed out by Store.Find / FindLimit /
// All / findScan and delivered in ChangeEvents are shared immutable
// snapshots. Mutating one corrupts every concurrent reader and the store's
// indexes — silently, until the mdsdebug seal sanitizer (or production)
// catches it. The analyzer taints snapshot-returning calls and every value
// that aliases them (including through helper functions via funcShape
// alias facts and through struct fields via holdsSnapshot facts), then
// flags field writes, element writes, mutating method calls (Add, Set,
// Delete, SortAttrs — anything with a mutates fact), and mutating builtins
// (copy/delete/clear) on tainted values. Clone and Select launder: their
// results are private copies and may be mutated freely.

import (
	"go/ast"
	"go/types"
)

const ruleSnapshot = "snapshotcheck"

var SnapshotCheck = &Analyzer{
	Name:       ruleSnapshot,
	Doc:        "entries from Store.Find/FindLimit/ChangeEvent are immutable snapshots; Clone/Select before mutating",
	NeedsTypes: true,
	Run:        runSnapshotCheck,
}

const (
	factSnapshotResults = "snapshotResults" // on *types.Func: map[int]taintBits result → resource level
	factHoldsSnapshot   = "holdsSnapshot"   // on field *types.Var: taintBits (elem and/or primary)
)

// isSnapshotSource reports whether fn is one of the snapshot hand-out
// entry points: the store's Find family, and the qcache result cache,
// whose hits share the same sealed entries with every caller.
func isSnapshotSource(fn *types.Func) bool {
	switch {
	case isMethod(fn, pkgLdap, "Store", "Find"),
		isMethod(fn, pkgLdap, "Store", "FindLimit"),
		isMethod(fn, pkgLdap, "Store", "All"),
		isMethod(fn, pkgLdap, "Store", "findScan"),
		isMethod(fn, pkgQcache, "Cache", "Get"),
		isMethod(fn, pkgQcache, "Cache", "GetOrFill"),
		isMethod(fn, pkgQcache, "Cache", "Entries"):
		return true
	}
	return false
}

// sourceLevel maps a snapshot source to the lattice level of its first
// result: slice results are fresh containers of shared entries (elem);
// anything else hands out the shared memory itself (primary).
func sourceLevel(fn *types.Func) taintBits {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
		if _, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice); isSlice {
			return taintElem
		}
	}
	return taintPrimary
}

// seedSnapshotFields marks ldap.ChangeEvent.Entry as snapshot-holding: the
// delivery path shares the store's snapshot without cloning.
func seedSnapshotFields(p *Pass) {
	for _, pkg := range p.Pkgs {
		if pkg.Path != pkgLdap {
			continue
		}
		obj := pkg.Types.Scope().Lookup("ChangeEvent")
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := range st.NumFields() {
			if f := st.Field(i); f.Name() == "Entry" {
				p.SetFact(f, factHoldsSnapshot, taintPrimary)
			}
		}
	}
}

func snapshotTaintConfig(p *Pass, pkg *Package, changed *bool) *taintConfig {
	return &taintConfig{
		info: pkg.Info,
		callTaint: func(call *ast.CallExpr, callee *types.Func, recv taintBits, args []taintBits, nres int) []taintBits {
			if callee == nil || isCloneLaunder(callee) {
				return nil
			}
			res := make([]taintBits, nres)
			if nres > 0 && isSnapshotSource(callee) {
				// The Find family returns a fresh slice whose elements are
				// shared snapshots: elem for slice results, primary if a
				// source ever hands out an entry directly.
				res[0] |= sourceLevel(callee)
			}
			if v, ok := p.Fact(callee, factSnapshotResults); ok {
				for i, b := range v.(map[int]taintBits) {
					if i < nres {
						res[i] |= b
					}
				}
			}
			applyShapeAliases(p, callee, recv, args, res)
			return res
		},
		// The field fact is level-aware: a field holding a fresh container of
		// snapshots (elem — e.g. a reply struct carrying a cache hand-out)
		// reads back as elem, so sorting or compacting that container stays
		// legal; only fields aliasing snapshot memory itself (primary, like
		// ChangeEvent.Entry) make every write through them a finding.
		fieldRead: func(field *types.Var) taintBits {
			if v, ok := p.Fact(field, factHoldsSnapshot); ok {
				return v.(taintBits)
			}
			return 0
		},
		onFieldStore: func(field *types.Var, bits taintBits) {
			bits &= taintShared
			if bits == 0 {
				return
			}
			var old taintBits
			if v, ok := p.Fact(field, factHoldsSnapshot); ok {
				old = v.(taintBits)
			}
			if old|bits != old {
				p.SetFact(field, factHoldsSnapshot, old|bits)
				if changed != nil {
					*changed = true
				}
			}
		},
	}
}

func runSnapshotCheck(p *Pass) []Finding {
	p.ensureShapes()
	seedSnapshotFields(p)
	decls := p.funcDecls()

	// Fact fixed point: discover functions that return snapshots and
	// fields that hold them, module-wide.
	for range 4 {
		changed := false
		for _, d := range decls {
			en := newTaintEngine(snapshotTaintConfig(p, d.pkg, &changed))
			en.run(d.decl.Body)
			sig := d.obj.Type().(*types.Signature)
			levels := en.resourceReturnLevels(sig, d.decl)
			if levels != nil {
				if v, ok := p.Fact(d.obj, factSnapshotResults); !ok || !levelsEqual(v.(map[int]taintBits), levels) {
					p.SetFact(d.obj, factSnapshotResults, levels)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Findings pass.
	var out []Finding
	for _, d := range decls {
		info := d.pkg.Info
		en := newTaintEngine(snapshotTaintConfig(p, d.pkg, nil))
		en.run(d.decl.Body)
		report := func(n ast.Node, msg string) {
			out = append(out, Finding{Pos: p.Fset.Position(n.Pos()), Rule: ruleSnapshot, Msg: msg})
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					// primary only: writing the top level of a fresh
					// container of snapshots (elem) touches no shared memory.
					if c := writeContainer(lhs); c != nil && en.taintOf(c)&taintPrimary != 0 {
						report(lhs, "write to "+exprString(lhs)+" mutates a shared store snapshot; Clone or Select a private copy first")
					}
				}
			case *ast.IncDecStmt:
				if c := writeContainer(v.X); c != nil && en.taintOf(c)&taintPrimary != 0 {
					report(v.X, "write to "+exprString(v.X)+" mutates a shared store snapshot; Clone or Select a private copy first")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
					if _, isB := info.Uses[id].(*types.Builtin); isB {
						if (id.Name == "copy" || id.Name == "delete" || id.Name == "clear") && len(v.Args) > 0 &&
							en.taintOf(v.Args[0])&taintPrimary != 0 {
							report(v, id.Name+" on "+exprString(v.Args[0])+" mutates a shared store snapshot; Clone or Select a private copy first")
						}
						return true
					}
				}
				callee := calleeOf(info, v)
				if callee != nil && isCloneLaunder(callee) {
					return true
				}
				sh := shapeOf(p, callee)
				if sh == nil || len(sh.mutates) == 0 {
					return true
				}
				sig, ok := callee.Type().(*types.Signature)
				if !ok {
					return true
				}
				var recv taintBits
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sig.Recv() != nil {
					recv = en.taintOf(sel.X)
				}
				args := make([]taintBits, len(v.Args))
				for i, a := range v.Args {
					args[i] = en.taintOf(a)
				}
				for src, sev := range sh.mutates {
					in := inputTaint(sig, src, recv, args)
					// A shallow callee write hits the argument's own memory
					// (dangerous iff that IS snapshot memory); a deep write
					// follows references, so a fresh container of snapshots
					// is enough to corrupt shared state.
					hit := sev&mutShallow != 0 && in&taintPrimary != 0 ||
						sev&mutDeep != 0 && in&taintShared != 0
					if hit {
						report(v, callee.Name()+" mutates its "+srcName(src)+", and the value passed reaches a shared store snapshot; Clone or Select a private copy first")
					}
				}
			}
			return true
		})
	}
	return out
}

func srcName(src int) string {
	if src == -1 {
		return "receiver"
	}
	return "argument"
}
