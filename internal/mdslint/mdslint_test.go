package mdslint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// lint parses the given path->source fixtures and runs the analyzers,
// returning findings as "path:line:rule" strings for compact assertions.
func lint(t *testing.T, analyzers []*Analyzer, files map[string]string) []string {
	t.Helper()
	fset := token.NewFileSet()
	var paths []string
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var fs []*File
	for _, p := range paths {
		f, err := ParseSource(fset, p, files[p])
		if err != nil {
			t.Fatalf("parse fixture %s: %v", p, err)
		}
		fs = append(fs, f)
	}
	var out []string
	for _, fd := range RunAll(&Pass{Fset: fset, Files: fs}, analyzers) {
		out = append(out, fmt.Sprintf("%s:%d:%s", fd.Pos.Filename, fd.Pos.Line, fd.Rule))
	}
	return out
}

func wantFindings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding[%d] = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// --- clockcheck -------------------------------------------------------------

func TestClockCheck(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string // line:rule within that file
	}{
		{
			name: "time.Now in internal package is flagged",
			path: "internal/foo/foo.go",
			src: `package foo
import "time"
func f() time.Time { return time.Now() }
`,
			want: []string{"3:clockcheck"},
		},
		{
			name: "Sleep, After, Tick, NewTimer each flagged",
			path: "internal/foo/foo.go",
			src: `package foo
import "time"
func f() {
	time.Sleep(time.Second)
	<-time.After(time.Second)
	_ = time.Tick(time.Second)
	_ = time.NewTimer(time.Second)
}
`,
			want: []string{"4:clockcheck", "5:clockcheck", "6:clockcheck", "7:clockcheck"},
		},
		{
			name: "aliased time import is still caught",
			path: "internal/foo/foo.go",
			src: `package foo
import stdtime "time"
func f() stdtime.Time { return stdtime.Now() }
`,
			want: []string{"3:clockcheck"},
		},
		{
			name: "pure constructors and arithmetic are fine",
			path: "internal/foo/foo.go",
			src: `package foo
import "time"
var epoch = time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)
func f(d time.Duration) time.Time { return epoch.Add(d) }
`,
			want: nil,
		},
		{
			name: "locally shadowed identifier is not the time package",
			path: "internal/foo/foo.go",
			src: `package foo
type clockish struct{}
func (clockish) Now() int { return 0 }
func f() int {
	time := clockish{}
	return time.Now()
}
`,
			want: nil,
		},
		{
			name: "softstate clock.go itself is exempt",
			path: "internal/softstate/clock.go",
			src: `package softstate
import "time"
func now() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "test files are exempt",
			path: "internal/foo/foo_test.go",
			src: `package foo
import "time"
func helper() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "experiments are exempt",
			path: "internal/experiments/run.go",
			src: `package experiments
import "time"
func f() { time.Sleep(time.Second) }
`,
			want: nil,
		},
		{
			name: "cmd mains are exempt",
			path: "cmd/gris/main.go",
			src: `package main
import "time"
func f() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "examples are exempt",
			path: "examples/quickstart/main.go",
			src: `package main
import "time"
func f() time.Time { return time.Now() }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lint(t, []*Analyzer{ClockCheck}, map[string]string{tc.path: tc.src})
			var want []string
			for _, w := range tc.want {
				want = append(want, tc.path+":"+w)
			}
			wantFindings(t, got, want)
		})
	}
}

// TestClockCheckCatchesOriginalGripLeak replays the pre-PR-2 body of
// grip.AuthenticateLDAP (the time.Now handed to the GSI handshake at what
// was grip.go line 59) and proves clockcheck rejects it.
func TestClockCheckCatchesOriginalGripLeak(t *testing.T) {
	src := `package grip
import (
	"time"

	"mds2/internal/gsi"
	"mds2/internal/ldap"
)
func AuthenticateLDAP(c *ldap.Client, keys *gsi.KeyPair, trust *gsi.TrustStore) (*gsi.Credential, error) {
	hs := gsi.NewClientHandshake(keys, trust, time.Now)
	hello, err := hs.Hello()
	if err != nil {
		return nil, err
	}
	_ = hello
	return hs.Server(), nil
}
`
	got := lint(t, []*Analyzer{ClockCheck}, map[string]string{"internal/grip/grip.go": src})
	wantFindings(t, got, []string{"internal/grip/grip.go:9:clockcheck"})
}

// --- lockcheck --------------------------------------------------------------

func TestLockCheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "send while holding lock",
			src: `package foo
import "sync"
func f(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`,
			want: []string{"5:lockcheck"},
		},
		{
			name: "receive under deferred unlock",
			src: `package foo
import "sync"
func f(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch
}
`,
			want: []string{"6:lockcheck"},
		},
		{
			name: "select while locked",
			src: `package foo
import "sync"
func f(mu *sync.Mutex, a, b chan int) {
	mu.Lock()
	select {
	case <-a:
	case <-b:
	}
	mu.Unlock()
}
`,
			want: []string{"5:lockcheck"},
		},
		{
			name: "WaitGroup wait while locked",
			src: `package foo
import "sync"
func f(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait()
	mu.Unlock()
}
`,
			want: []string{"5:lockcheck"},
		},
		{
			name: "unlock before send is clean (the FakeClock.Advance shape)",
			src: `package foo
import "sync"
func f(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	v := 1
	mu.Unlock()
	ch <- v
}
`,
			want: nil,
		},
		{
			name: "send inside func literal is not under the caller's lock",
			src: `package foo
import "sync"
func f(mu *sync.Mutex, ch chan int) func() {
	mu.Lock()
	defer mu.Unlock()
	return func() { ch <- 1 }
}
`,
			want: nil,
		},
		{
			name: "goroutine launched under lock runs without it",
			src: `package foo
import "sync"
func f(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	go func() { ch <- 1 }()
	mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "RLock across receive flagged, nested block honored",
			src: `package foo
import "sync"
func f(mu *sync.RWMutex, ch chan int, cond bool) {
	mu.RLock()
	if cond {
		<-ch
	}
	mu.RUnlock()
}
`,
			want: []string{"6:lockcheck"},
		},
		{
			name: "different mutexes tracked independently",
			src: `package foo
import "sync"
func f(a, b *sync.Mutex, ch chan int) {
	a.Lock()
	a.Unlock()
	b.Lock()
	defer b.Unlock()
	ch <- 1
}
`,
			want: []string{"8:lockcheck"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const path = "internal/foo/foo.go"
			got := lint(t, []*Analyzer{LockCheck}, map[string]string{path: tc.src})
			var want []string
			for _, w := range tc.want {
				want = append(want, path+":"+w)
			}
			wantFindings(t, got, want)
		})
	}
}

// --- errchecklite -----------------------------------------------------------

// berFixture declares a slice of the real internal/ber surface so the
// index sees error-returning functions and methods.
const berFixture = `package ber
type Packet struct{}
func Append(dst []byte, p *Packet) error { return nil }
func Decode(b []byte) (*Packet, error) { return nil, nil }
func Length(b []byte) int { return 0 }
type Writer struct{}
func (w *Writer) WriteTo(b []byte) error { return nil }
`

func TestErrCheckLite(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "bare package call dropping error",
			src: `package foo
import "mds2/internal/ber"
func f(b []byte) {
	ber.Append(b, nil)
}
`,
			want: []string{"4:errchecklite"},
		},
		{
			name: "checked and blanked calls are fine",
			src: `package foo
import "mds2/internal/ber"
func f(b []byte) error {
	if err := ber.Append(b, nil); err != nil {
		return err
	}
	_ = ber.Append(b, nil)
	return nil
}
`,
			want: nil,
		},
		{
			name: "non-error function is fine",
			src: `package foo
import "mds2/internal/ber"
func f(b []byte) {
	ber.Length(b)
}
`,
			want: nil,
		},
		{
			name: "error-returning method with encode shape",
			src: `package foo
import "mds2/internal/ber"
func f(w *ber.Writer, b []byte) {
	w.WriteTo(b)
}
`,
			want: []string{"4:errchecklite"},
		},
		{
			name: "foreign package call with matching name is out of scope",
			src: `package foo
import "fmt"
type buf struct{}
func f(b []byte) {
	fmt.Println(string(b))
}
`,
			want: nil,
		},
		{
			name: "net.Conn write dropped",
			src: `package foo
import "net"
func f(conn net.Conn, b []byte) {
	conn.Write(b)
}
`,
			want: []string{"4:errchecklite"},
		},
		{
			name: "net.Conn write with handled error is fine",
			src: `package foo
import "net"
func f(conn net.Conn, b []byte) error {
	_, err := conn.Write(b)
	return err
}
`,
			want: nil,
		},
		{
			name: "go and defer forms also flagged",
			src: `package foo
import "mds2/internal/ber"
func f(b []byte) {
	go ber.Append(b, nil)
	defer ber.Append(b, nil)
}
`,
			want: []string{"4:errchecklite", "5:errchecklite"},
		},
		{
			name: "test files are exempt",
			src:  "", // path-driven case below
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{"internal/ber/ber.go": berFixture}
			path := "internal/foo/foo.go"
			src := tc.src
			if tc.name == "test files are exempt" {
				path = "internal/foo/foo_test.go"
				src = "package foo\nimport \"mds2/internal/ber\"\nfunc f(b []byte) {\n\tber.Append(b, nil)\n}\n"
			}
			files[path] = src
			got := lint(t, []*Analyzer{ErrCheckLite}, files)
			var want []string
			for _, w := range tc.want {
				want = append(want, path+":"+w)
			}
			wantFindings(t, got, want)
		})
	}
}

// --- goroutinecheck ---------------------------------------------------------

func TestGoroutineCheck(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "bare spin loop is flagged",
			path: "internal/foo/foo.go",
			src: `package foo
func work() {}
func f() {
	go func() {
		for {
			work()
		}
	}()
}
`,
			want: []string{"4:goroutinecheck"},
		},
		{
			name: "select on done channel is a cancellation path",
			path: "internal/foo/foo.go",
			src: `package foo
func f(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}
`,
			want: nil,
		},
		{
			name: "context parameter is a cancellation path",
			path: "internal/foo/foo.go",
			src: `package foo
import "context"
func f(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
`,
			want: nil,
		},
		{
			name: "result send is a release path",
			path: "internal/foo/foo.go",
			src: `package foo
func f(results chan int) {
	go func() {
		results <- 1
	}()
}
`,
			want: nil,
		},
		{
			name: "named callee judged by its own body",
			path: "internal/foo/foo.go",
			src: `package foo
type r struct{ done chan struct{} }
func (x *r) loop() {
	<-x.done
}
func (x *r) spin() {
	for {
	}
}
func f(x *r) {
	go x.loop()
	go x.spin()
}
`,
			want: []string{"12:goroutinecheck"},
		},
		{
			name: "reader unblocked by conn close is accepted",
			path: "internal/foo/foo.go",
			src: `package foo
import "net"
type c struct{ conn net.Conn }
func (x *c) readLoop() {
	buf := make([]byte, 64)
	for {
		if _, err := x.conn.Read(buf); err != nil {
			return
		}
	}
}
func f(x *c) {
	go x.readLoop()
}
`,
			want: nil,
		},
		{
			name: "cmd mains are exempt",
			path: "cmd/gris/main.go",
			src: `package main
func spin() {}
func f() {
	go func() {
		for {
			spin()
		}
	}()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lint(t, []*Analyzer{GoroutineCheck}, map[string]string{tc.path: tc.src})
			var want []string
			for _, w := range tc.want {
				want = append(want, tc.path+":"+w)
			}
			wantFindings(t, got, want)
		})
	}
}

// --- ignore directive -------------------------------------------------------

func TestIgnoreDirective(t *testing.T) {
	const path = "internal/foo/foo.go"

	t.Run("same-line directive suppresses its rule", func(t *testing.T) {
		src := `package foo
import "time"
func f() time.Time {
	return time.Now() //mdslint:ignore clockcheck wall clock wanted for log stamps
}
`
		wantFindings(t, lint(t, Analyzers(), map[string]string{path: src}), nil)
	})

	t.Run("line-above directive suppresses its rule", func(t *testing.T) {
		src := `package foo
import "time"
func f() time.Time {
	//mdslint:ignore clockcheck wall clock wanted for log stamps
	return time.Now()
}
`
		wantFindings(t, lint(t, Analyzers(), map[string]string{path: src}), nil)
	})

	t.Run("directive for one rule leaves others active", func(t *testing.T) {
		src := `package foo
import (
	"sync"
	"time"
)
func f(mu *sync.Mutex, ch chan time.Time) {
	mu.Lock()
	//mdslint:ignore clockcheck wrong rule named here
	ch <- time.Now()
	mu.Unlock()
}
`
		got := lint(t, Analyzers(), map[string]string{path: src})
		wantFindings(t, got, []string{path + ":9:lockcheck"})
	})

	t.Run("directive without reason is itself a finding", func(t *testing.T) {
		src := `package foo
import "time"
func f() time.Time {
	return time.Now() //mdslint:ignore clockcheck
}
`
		got := lint(t, Analyzers(), map[string]string{path: src})
		wantFindings(t, got, []string{path + ":4:clockcheck", path + ":4:directive"})
	})

	t.Run("directive does not leak to later lines", func(t *testing.T) {
		src := `package foo
import "time"
func f() (time.Time, time.Time) {
	a := time.Now() //mdslint:ignore clockcheck first call audited
	b := time.Now()
	return a, b
}
`
		got := lint(t, Analyzers(), map[string]string{path: src})
		wantFindings(t, got, []string{path + ":5:clockcheck"})
	})
}

// --- whole-repo gate --------------------------------------------------------

// TestRepoIsClean runs the full suite over the actual tree, mirroring the
// CI gate: the repo must stay free of findings (annotated exceptions
// aside). If this fails, either fix the code or add an
// //mdslint:ignore <rule> <reason> with a real justification.
func TestRepoIsClean(t *testing.T) {
	fset := token.NewFileSet()
	files, err := Load(fset, []string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 50 {
		t.Fatalf("suspiciously few files loaded: %d", len(files))
	}
	findings := RunAll(&Pass{Fset: fset, Files: files}, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the code or annotate with //mdslint:ignore <rule> <reason>")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Pos: token.Position{Filename: "a/b.go", Line: 3, Column: 7}, Rule: "clockcheck", Msg: "m"}
	if got := f.String(); !strings.Contains(got, "a/b.go:3:7") || !strings.Contains(got, "[clockcheck]") {
		t.Fatalf("String() = %q", got)
	}
}
