package mdslint

// Fixture tests for the typed analyzers. Each case type-checks a small
// in-memory module (CheckSources) whose file paths mirror the real tree —
// the analyzers key on the mds2/internal/ber and mds2/internal/ldap import
// paths — and asserts that findings appear exactly on the lines marked
// `// want`, and nowhere else.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// berStub mimics the parts of internal/ber the typed analyzers key on.
const berStub = `package ber

type Packet struct {
	Tag      int
	Value    []byte
	Children []*Packet
}

func (p *Packet) Str() string { return string(p.Value) }

func (p *Packet) Clone() *Packet {
	cp := &Packet{Tag: p.Tag, Value: append([]byte(nil), p.Value...)}
	for _, c := range p.Children {
		cp.Children = append(cp.Children, c.Clone())
	}
	return cp
}

func ReadPacketBuf(buf []byte) (*Packet, error) { return &Packet{Value: buf}, nil }

type Builder struct {
	buf   []byte
	stack []int
}

func (b *Builder) Begin(tag int)          { b.stack = append(b.stack, len(b.buf)) }
func (b *Builder) BeginPrimitive(tag int) { b.stack = append(b.stack, len(b.buf)) }
func (b *Builder) End()                   { b.stack = b.stack[:len(b.stack)-1] }
func (b *Builder) Reset()                 { b.buf, b.stack = b.buf[:0], b.stack[:0] }
func (b *Builder) Int(v int64)            {}
func (b *Builder) Bytes() []byte          { return b.buf }
`

// ldapStub mimics the parts of internal/ldap the typed analyzers key on.
const ldapStub = `package ldap

type Attribute struct {
	Name   string
	Values []string
}

type Entry struct {
	DN    string
	Attrs []Attribute
}

func (e *Entry) Clone() *Entry {
	out := &Entry{DN: e.DN, Attrs: make([]Attribute, len(e.Attrs))}
	for i, a := range e.Attrs {
		out.Attrs[i] = Attribute{Name: a.Name, Values: append([]string(nil), a.Values...)}
	}
	return out
}

func (e *Entry) Select(names []string) *Entry { return e.Clone() }

func (e *Entry) Values(name string) []string {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Values
		}
	}
	return nil
}

func (e *Entry) Add(name string, vals ...string) {
	e.Attrs = append(e.Attrs, Attribute{Name: name, Values: vals})
}

func (e *Entry) Set(name string, vals ...string) {
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			e.Attrs[i].Values = vals
			return
		}
	}
	e.Add(name, vals...)
}

type ChangeEvent struct {
	Type  int
	Entry *Entry
}

type Store struct{ entries []*Entry }

func (s *Store) Find(base string) []*Entry { return append([]*Entry(nil), s.entries...) }

func (s *Store) FindLimit(base string, n int) ([]*Entry, bool) { return s.Find(base), false }

func (s *Store) All() []*Entry { return s.Find("") }
`

// qcacheStub mimics the parts of internal/qcache that snapshotcheck keys
// on: the Cache hand-out methods whose hits share sealed entries across
// callers.
const qcacheStub = `package qcache

import (
	"time"

	"mds2/internal/ldap"
)

type Outcome int

type Region struct {
	Owner string
	Base  string
}

type Cache struct{ entries []*ldap.Entry }

func (c *Cache) Get(key string) ([]*ldap.Entry, bool) {
	return append([]*ldap.Entry(nil), c.entries...), len(c.entries) > 0
}

func (c *Cache) GetOrFill(key string, region Region, bound time.Time,
	fill func() ([]*ldap.Entry, error)) ([]*ldap.Entry, Outcome, error) {
	return append([]*ldap.Entry(nil), c.entries...), 0, nil
}

func (c *Cache) Entries() []*ldap.Entry {
	return append([]*ldap.Entry(nil), c.entries...)
}
`

// runTyped type-checks the fixture module and runs one analyzer.
func runTyped(t *testing.T, a *Analyzer, files map[string]string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	var fs []*File
	for p, src := range files {
		f, err := ParseSource(fset, p, src)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Path < fs[j].Path })
	pkgs, err := CheckSources(fset, fs)
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	pass := &Pass{Fset: fset, Files: fs, Pkgs: pkgs}
	return RunAll(pass, []*Analyzer{a})
}

// checkWants asserts findings appear exactly on `// want` lines.
func checkWants(t *testing.T, files map[string]string, findings []Finding) {
	t.Helper()
	want := map[string]bool{}
	for p, src := range files {
		for i, line := range strings.Split(src, "\n") {
			if strings.Contains(line, "// want") {
				want[fmt.Sprintf("%s:%d", p, i+1)] = true
			}
		}
	}
	got := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing finding at %s", k)
		}
	}
	for _, f := range findings {
		k := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if !want[k] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestSnapshotCheckFixtures(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"direct field write", `package app

import "mds2/internal/ldap"

func f(s *ldap.Store) {
	es := s.Find("o=grid")
	es[0].DN = "o=evil" // want
}
`},
		{"write through helper alias", `package app

import "mds2/internal/ldap"

func first(es []*ldap.Entry) *ldap.Entry { return es[0] }

func f(s *ldap.Store) {
	e := first(s.Find("o=grid"))
	e.Attrs[0].Values[0] = "x" // want
}
`},
		{"mutating method on ranged snapshot", `package app

import "mds2/internal/ldap"

func f(s *ldap.Store) {
	for _, e := range s.Find("o=grid") {
		e.Add("seen", "1") // want
	}
}
`},
		{"deep set through FindLimit", `package app

import "mds2/internal/ldap"

func f(s *ldap.Store) {
	es, _ := s.FindLimit("o=grid", 10)
	es[0].Set("hn", "x") // want
}
`},
		{"change event entry", `package app

import "mds2/internal/ldap"

func deliver(ev ldap.ChangeEvent) {
	ev.Entry.Add("seen", "1") // want
}
`},
		{"copy builtin onto attribute view", `package app

import "mds2/internal/ldap"

func f(s *ldap.Store) {
	vs := s.Find("o=grid")[0].Values("hn")
	copy(vs, []string{"x"}) // want
}
`},
		{"snapshot via field store and reload", `package app

import "mds2/internal/ldap"

type cache struct{ hot *ldap.Entry }

func fill(c *cache, s *ldap.Store) { c.hot = s.Find("o=grid")[0] }

func f(c *cache) {
	c.hot.DN = "o=evil" // want
}
`},
		{"clone launders", `package app

import "mds2/internal/ldap"

func f(s *ldap.Store) {
	c := s.Find("o=grid")[0].Clone()
	c.DN = "o=mine"
	c.Add("x", "y")
}
`},
		{"select launders", `package app

import "mds2/internal/ldap"

func f(s *ldap.Store) {
	c := s.Find("o=grid")[0].Select([]string{"hn"})
	c.Attrs[0].Values[0] = "x"
}
`},
		{"fresh container of snapshots is writable", `package app

import "mds2/internal/ldap"

func f(s *ldap.Store) {
	out := append([]*ldap.Entry(nil), s.Find("o=grid")...)
	out[0], out[1] = out[1], out[0]
	out = out[:1]
	_ = out
}
`},
		{"sorting a fresh result slice is fine", `package app

import "mds2/internal/ldap"

func reorder(es []*ldap.Entry) {
	for i := range es {
		es[i] = es[len(es)-1-i]
	}
}

func f(s *ldap.Store) {
	reorder(s.Find("o=grid"))
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{
				"internal/ldap/ldap.go": ldapStub,
				"internal/app/app.go":   tc.src,
			}
			checkWants(t, files, runTyped(t, SnapshotCheck, files))
		})
	}
}

// TestSnapshotCheckQcacheFixtures pins the query-cache contract: entries
// handed out by qcache.Cache are the same sealed snapshots every other
// cache hit sees, so mutating one is a finding, while reordering the fresh
// container they arrive in — or cloning first — is fine.
func TestSnapshotCheckQcacheFixtures(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"mutating a cache hit", `package app

import "mds2/internal/qcache"

func f(c *qcache.Cache) {
	es, _ := c.Get("k")
	es[0].DN = "o=evil" // want
}
`},
		{"mutating method on GetOrFill result", `package app

import (
	"time"

	"mds2/internal/ldap"
	"mds2/internal/qcache"
)

func f(c *qcache.Cache) {
	es, _, _ := c.GetOrFill("k", qcache.Region{}, time.Time{},
		func() ([]*ldap.Entry, error) { return nil, nil })
	for _, e := range es {
		e.Set("hn", "x") // want
	}
}
`},
		{"deep write through Entries", `package app

import "mds2/internal/qcache"

func f(c *qcache.Cache) {
	c.Entries()[0].Attrs[0].Values[0] = "x" // want
}
`},
		{"clone launders a cache hit", `package app

import "mds2/internal/qcache"

func f(c *qcache.Cache) {
	es, _ := c.Get("k")
	e := es[0].Clone()
	e.DN = "o=mine"
	e.Add("x", "y")
}
`},
		{"reordering the hand-out container is fine", `package app

import "mds2/internal/qcache"

func f(c *qcache.Cache) {
	es, _ := c.Get("k")
	es[0], es[len(es)-1] = es[len(es)-1], es[0]
	es = es[:1]
	_ = es
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{
				"internal/ldap/ldap.go":     ldapStub,
				"internal/qcache/qcache.go": qcacheStub,
				"internal/app/app.go":       tc.src,
			}
			checkWants(t, files, runTyped(t, SnapshotCheck, files))
		})
	}
}

func TestPoolCheckFixtures(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"field store escapes frame", `package app

import "mds2/internal/ber"

type conn struct{ last *ber.Packet }

func (c *conn) read(buf []byte) error {
	p, err := ber.ReadPacketBuf(buf)
	if err != nil {
		return err
	}
	c.last = p // want
	return nil
}
`},
		{"value slice store escapes frame", `package app

import "mds2/internal/ber"

type conn struct{ dn []byte }

func (c *conn) read(buf []byte) {
	p, _ := ber.ReadPacketBuf(buf)
	c.dn = p.Value // want
}
`},
		{"channel send escapes frame", `package app

import "mds2/internal/ber"

func f(buf []byte, ch chan *ber.Packet) {
	p, _ := ber.ReadPacketBuf(buf)
	ch <- p // want
}
`},
		{"goroutine capture races reuse", `package app

import "mds2/internal/ber"

func handle(p *ber.Packet) {}

func f(buf []byte) {
	p, _ := ber.ReadPacketBuf(buf)
	go func() { // want
		handle(p)
	}()
}
`},
		{"package-level store escapes frame", `package app

import "mds2/internal/ber"

var last *ber.Packet

func f(buf []byte) {
	p, _ := ber.ReadPacketBuf(buf)
	last = p // want
}
`},
		{"helper fact propagates the frame", `package app

import "mds2/internal/ber"

type conn struct{ last *ber.Packet }

func decode(buf []byte) *ber.Packet {
	p, _ := ber.ReadPacketBuf(buf)
	return p
}

func (c *conn) read(buf []byte) {
	c.last = decode(buf) // want
}
`},
		{"sync.Pool value escapes", `package app

import "sync"

type holder struct{ b []byte }

var pool sync.Pool

func f(h *holder) {
	b := pool.Get().([]byte)
	h.b = b // want
}
`},
		{"clone launders the frame", `package app

import "mds2/internal/ber"

type conn struct {
	last *ber.Packet
	dn   string
}

func (c *conn) read(buf []byte) {
	p, _ := ber.ReadPacketBuf(buf)
	c.last = p.Clone()
	c.dn = p.Str()
}
`},
		{"unsafe view minting outside ber", `package app

import "unsafe"

func view(b []byte) string {
	return unsafe.String(&b[0], len(b)) // want
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{
				"internal/ber/ber.go": berStub,
				"internal/app/app.go": tc.src,
			}
			checkWants(t, files, runTyped(t, PoolCheck, files))
		})
	}
}

func TestBerBalanceFixtures(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"early return with open element", `package app

import "mds2/internal/ber"

func enc(ok bool) []byte {
	var b ber.Builder
	b.Begin(0x30)
	if !ok {
		return nil // want
	}
	b.End()
	return b.Bytes()
}
`},
		{"fall-off with open element", `package app

import "mds2/internal/ber"

func enc() {
	var b ber.Builder
	b.Begin(0x30)
	b.Int(1)
} // want
`},
		{"loop body imbalance", `package app

import "mds2/internal/ber"

func enc(n int) {
	var b ber.Builder
	for i := 0; i < n; i++ { // want
		b.Begin(0x30)
	}
}
`},
		{"param builder inconsistent across paths", `package app

import "mds2/internal/ber"

func helper(b *ber.Builder, ok bool) {
	b.Begin(0x30)
	if !ok {
		return // want
	}
	b.End()
}
`},
		{"open helper fact reaches caller", `package app

import "mds2/internal/ber"

func begin(b *ber.Builder) { b.Begin(0x30) }

func enc() {
	var b ber.Builder
	begin(&b)
	b.Int(1)
} // want
`},
		{"balanced if else", `package app

import "mds2/internal/ber"

func enc(ok bool) {
	var b ber.Builder
	b.Begin(0x30)
	if ok {
		b.Int(1)
	} else {
		b.Int(2)
	}
	b.End()
}
`},
		{"balanced loop and switch", `package app

import "mds2/internal/ber"

func enc(vals []int64, mode int) {
	var b ber.Builder
	b.Begin(0x30)
	for _, v := range vals {
		b.BeginPrimitive(0x02)
		b.Int(v)
		b.End()
	}
	switch mode {
	case 1:
		b.Begin(0x31)
		b.End()
	default:
	}
	b.End()
}
`},
		{"reset clears depth", `package app

import "mds2/internal/ber"

func enc(bad bool) {
	var b ber.Builder
	b.Begin(0x30)
	if bad {
		b.Reset()
		return
	}
	b.End()
}
`},
		{"paired open close helper facts", `package app

import "mds2/internal/ber"

func open(b *ber.Builder)  { b.Begin(0x30) }
func close(b *ber.Builder) { b.End() }

func enc() {
	var b ber.Builder
	open(&b)
	b.Int(1)
	close(&b)
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{
				"internal/ber/ber.go": berStub,
				"internal/app/app.go": tc.src,
			}
			checkWants(t, files, runTyped(t, BerBalance, files))
		})
	}
}

// TestRepoCleanTyped is the whole-repo gate: the real module must produce
// zero typed-analyzer findings (suppressions included, of which there are
// currently none for the typed rules).
func TestRepoCleanTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("typed whole-module load is slow")
	}
	fset := token.NewFileSet()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pass, err := LoadModule(fset, root, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range RunAll(pass, Analyzers()) {
		t.Errorf("%s", f)
	}
}
