package mdslint

// PoolCheck enforces the pooled-buffer lifetime contract (internal/ber):
// values obtained from sync.Pool.Get and packets decoded by
// ber.ReadPacketBuf alias a frame buffer that will be recycled — they are
// only valid until the next Get/ReadPacketBuf on the same buffer. Such
// values (and everything reachable from them: Value slices, Children,
// Child(i) results, helpers that pass them through — discovered via
// funcShape alias facts) must not escape the frame: the analyzer flags
// storing them into struct fields or package-level variables, sending them
// on channels, and capturing them in go-launched goroutines.
//
// Laundering is explicit cloning, and the engine understands the idioms:
// string(b) and Packet.Str() produce immutable strings, []byte(nil)-append
// and copy produce fresh bytes, Clone-named helpers copy by convention.
// Returning a frame-aliased value is NOT an escape — that is how
// ReadPacketBuf's contract propagates — and instead gives the function a
// frameResults fact so its callers inherit the taint.
//
// A second discipline rides along: zero-copy view minting via
// unsafe.String/unsafe.Slice is internal/ber's privilege (the viewOK
// protocol); any use outside that package is flagged.

import (
	"go/ast"
	"go/types"
)

const rulePool = "poolcheck"

var PoolCheck = &Analyzer{
	Name:       rulePool,
	Doc:        "sync.Pool.Get and ber.ReadPacketBuf values must not outlive their frame: no field/global stores, channel sends, or goroutine capture without a clone",
	NeedsTypes: true,
	Run:        runPoolCheck,
}

const factFrameResults = "frameResults" // on *types.Func: map[int]taintBits result → resource level

// isFrameSource reports whether fn hands out frame-aliased memory.
func isFrameSource(fn *types.Func) bool {
	return isFunc(fn, pkgBer, "ReadPacketBuf") ||
		isMethod(fn, "sync", "Pool", "Get")
}

func poolTaintConfig(p *Pass, pkg *Package) *taintConfig {
	return &taintConfig{
		info: pkg.Info,
		callTaint: func(call *ast.CallExpr, callee *types.Func, recv taintBits, args []taintBits, nres int) []taintBits {
			if callee == nil || isCloneLaunder(callee) {
				return nil
			}
			res := make([]taintBits, nres)
			if nres > 0 && isFrameSource(callee) {
				res[0] |= taintPrimary
			}
			if v, ok := p.Fact(callee, factFrameResults); ok {
				for i, b := range v.(map[int]taintBits) {
					if i < nres {
						res[i] |= b
					}
				}
			}
			applyShapeAliases(p, callee, recv, args, res)
			return res
		},
	}
}

func runPoolCheck(p *Pass) []Finding {
	p.ensureShapes()
	decls := p.funcDecls()

	// Fact fixed point: functions whose results alias a frame source.
	for range 4 {
		changed := false
		for _, d := range decls {
			en := newTaintEngine(poolTaintConfig(p, d.pkg))
			en.run(d.decl.Body)
			sig := d.obj.Type().(*types.Signature)
			levels := en.resourceReturnLevels(sig, d.decl)
			if levels != nil {
				if v, ok := p.Fact(d.obj, factFrameResults); !ok || !levelsEqual(v.(map[int]taintBits), levels) {
					p.SetFact(d.obj, factFrameResults, levels)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	var out []Finding
	for _, d := range decls {
		info := d.pkg.Info
		en := newTaintEngine(poolTaintConfig(p, d.pkg))
		en.run(d.decl.Body)
		report := func(n ast.Node, msg string) {
			out = append(out, Finding{Pos: p.Fset.Position(n.Pos()), Rule: rulePool, Msg: msg})
		}
		isGlobal := func(obj types.Object) bool {
			v, ok := obj.(*types.Var)
			return ok && !v.IsField() && v.Parent() == d.pkg.Types.Scope()
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				if len(v.Lhs) != len(v.Rhs) {
					// Tuple assigns from source calls bind to plain idents
					// in practice; the escape forms below are all 1:1.
					return true
				}
				for i, lhs := range v.Lhs {
					rbits := en.taintOf(v.Rhs[i])
					if rbits&taintShared == 0 {
						continue
					}
					lhs = ast.Unparen(lhs)
					// Store into a struct field of something that is not
					// itself frame-aliased: the frame escapes its owner.
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						if field, okf := info.Uses[sel.Sel].(*types.Var); okf && field.IsField() &&
							en.taintOf(sel.X)&taintShared == 0 {
							report(v, "frame-aliased value stored in "+exprString(lhs)+" outlives its buffer; clone it (or copy with Str) before retaining")
							continue
						}
					}
					// Store into (or through) a package-level variable.
					if obj, _ := rootObj(info, lhs); obj != nil && isGlobal(obj) {
						report(v, "frame-aliased value stored in package-level "+exprString(lhs)+" outlives its buffer; clone it before retaining")
					}
				}
			case *ast.SendStmt:
				if en.taintOf(v.Value)&taintShared != 0 {
					report(v, "frame-aliased value sent on a channel escapes its buffer's lifetime; clone it before sending")
				}
			case *ast.GoStmt:
				for _, a := range v.Call.Args {
					if en.taintOf(a)&taintShared != 0 {
						report(v, "frame-aliased value passed to a goroutine races the buffer's next reuse; clone it first")
					}
				}
				if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
					reported := false
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						id, ok := m.(*ast.Ident)
						if !ok || reported {
							return !reported
						}
						obj := info.Uses[id]
						if obj == nil || en.t[obj]&taintShared == 0 {
							return true
						}
						// Captured only if declared outside the literal.
						if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
							report(v, "goroutine captures frame-aliased "+id.Name+", racing the buffer's next reuse; clone it first")
							reported = true
						}
						return !reported
					})
				}
			case *ast.CallExpr:
				// unsafe.String/unsafe.Slice outside internal/ber.
				if d.pkg.Path == pkgBer {
					return true
				}
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "unsafe" &&
							(sel.Sel.Name == "String" || sel.Sel.Name == "Slice" || sel.Sel.Name == "StringData" || sel.Sel.Name == "SliceData") {
							report(v, "zero-copy view minting with unsafe."+sel.Sel.Name+" is internal/ber's privilege (viewOK protocol); copy instead")
						}
					}
				}
			}
			return true
		})
	}
	return out
}
