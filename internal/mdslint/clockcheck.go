package mdslint

import (
	"go/ast"
)

// ClockCheck enforces the determinism invariant at the heart of the
// soft-state design (§4.3): every timing decision must flow through an
// injected softstate.Clock (or a `now func() time.Time`), never the wall
// clock directly. A single raw time.Now in a refresh/expiry path silently
// bypasses FakeClock tests — exactly what happened with the GSI handshake
// in internal/grip before PR 2.
//
// Exempt by construction:
//   - internal/softstate/clock.go — the one place RealClock touches time
//   - internal/experiments/ — wall-clock benchmark harnesses
//   - cmd/ and examples/ — process mains wire RealClock at the edge
//   - *_test.go — tests may use the wall clock for timeouts
const ruleClock = "clockcheck"

var ClockCheck = &Analyzer{
	Name: ruleClock,
	Doc:  "no raw time.Now/Sleep/After/Tick/NewTimer/NewTicker/Since/Until outside blessed files; inject softstate.Clock instead",
	Run:  runClockCheck,
}

// wallClockFuncs are the time package entry points that read or wait on
// the wall clock. Pure constructors (time.Date, time.Unix, time.Parse) and
// arithmetic stay legal everywhere.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

func clockCheckExempt(path string) bool {
	return isTestFile(path) ||
		pathIsFile(path, "internal/softstate/clock.go") ||
		pathHasDir(path, "internal/experiments") ||
		pathHasDir(path, "cmd") ||
		pathHasDir(path, "examples")
}

func runClockCheck(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if clockCheckExempt(f.Path) {
			continue
		}
		timeName, ok := importName(f.AST, "time")
		if !ok {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !isPkgIdent(id) {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				out = append(out, Finding{
					Pos:  p.Fset.Position(sel.Pos()),
					Rule: ruleClock,
					Msg: "raw time." + sel.Sel.Name +
						" bypasses the injected softstate.Clock; thread a Clock or now func() through",
				})
			}
			return true
		})
	}
	return out
}
