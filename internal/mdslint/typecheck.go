package mdslint

// This file is the type-aware half of the driver (PR 7): a shared
// type-checked load of the whole module built on nothing but the standard
// library (go/parser + go/types + go/importer's source importer — still no
// go/packages or x/tools), plus the per-package fact store the typed
// analyzers use to follow values across files and packages.
//
// The loader groups buildable non-test files by directory, derives each
// directory's import path from the module path in go.mod, and type-checks
// packages recursively: module-local imports resolve against our own parsed
// ASTs, everything else goes through a mutex-guarded importer — compiled
// export data via `go list -export` when the go tool is available (cheap:
// the build cache serves it), the source importer otherwise.
// Build constraints are honored with the default tag set, so files gated
// behind the mdsdebug sanitizer tag are excluded (their !mdsdebug
// counterparts are checked) and the load never sees duplicate declarations.
// Cgo is disabled up front: the source importer cannot process cgo files,
// and nothing in the analysis needs them.
//
// Packages come back in dependency order, which is what lets analyzers
// compute function facts bottom-up (a callee's facts exist before any
// caller is visited) with only a small fixed-point loop left for recursion.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string  // import path, e.g. "mds2/internal/ber"
	Files []*File // the buildable non-test files that were type-checked
	Types *types.Package
	Info  *types.Info
}

// Import paths of the packages whose invariants the typed analyzers encode.
// Fixture tests reconstruct stub packages under the same paths.
const (
	pkgBer    = "mds2/internal/ber"
	pkgLdap   = "mds2/internal/ldap"
	pkgQcache = "mds2/internal/qcache"
)

// disableCgo turns cgo off for the whole process before any typed load:
// the source importer cannot type-check cgo files (net's resolver, etc.),
// and with CgoEnabled=false go/build selects their pure-Go fallbacks.
var disableCgo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(p string) (*types.Package, error) { return f(p) }

// pkgGroup is one module-local package awaiting (or holding) its check.
type pkgGroup struct {
	path  string
	files []*File
	deps  []string // module-local imports only

	once sync.Once
	tpkg *types.Package
	info *types.Info
	err  error
}

type moduleLoader struct {
	fset     *token.FileSet
	groups   map[string]*pkgGroup
	std      types.Importer
	stdMu    sync.Mutex // the source importer is not safe for concurrent use
	parallel bool
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

func (l *moduleLoader) importPkg(p string) (*types.Package, error) {
	if p == "unsafe" {
		return types.Unsafe, nil
	}
	if g := l.groups[p]; g != nil {
		l.check(g)
		return g.tpkg, g.err
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(p)
}

// check type-checks g exactly once, after its module-local dependencies.
// In parallel mode the dependencies are kicked off concurrently; the
// per-group once makes racing ensure calls converge on a single check, and
// because the Go import graph is acyclic the recursion cannot deadlock.
func (l *moduleLoader) check(g *pkgGroup) {
	g.once.Do(func() {
		if l.parallel {
			var wg sync.WaitGroup
			for _, dep := range g.deps {
				dg := l.groups[dep]
				if dg == nil {
					continue
				}
				wg.Add(1)
				go func() { defer wg.Done(); l.check(dg) }()
			}
			wg.Wait()
		} else {
			for _, dep := range g.deps {
				if dg := l.groups[dep]; dg != nil {
					l.check(dg)
				}
			}
		}
		for _, dep := range g.deps {
			if dg := l.groups[dep]; dg != nil && dg.err != nil {
				g.err = fmt.Errorf("import %s: %w", dep, dg.err)
				return
			}
		}
		asts := make([]*ast.File, len(g.files))
		for i, f := range g.files {
			asts[i] = f.AST
		}
		info := newInfo()
		conf := types.Config{Importer: importerFunc(l.importPkg)}
		tpkg, err := conf.Check(g.path, l.fset, asts, info)
		g.tpkg, g.info, g.err = tpkg, info, err
	})
}

// checkAll runs every group to completion and returns the packages in
// dependency (topological) order, module-local edges only.
func (l *moduleLoader) checkAll() ([]*Package, error) {
	paths := make([]string, 0, len(l.groups))
	for p := range l.groups {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if l.parallel {
		var wg sync.WaitGroup
		for _, p := range paths {
			g := l.groups[p]
			wg.Add(1)
			go func() { defer wg.Done(); l.check(g) }()
		}
		wg.Wait()
	} else {
		for _, p := range paths {
			l.check(l.groups[p])
		}
	}
	var firstErr error
	for _, p := range paths {
		if err := l.groups[p].err; err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", p, err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Topological order by DFS over local deps, visiting roots in sorted
	// order so the result is deterministic.
	var out []*Package
	state := map[string]int{} // 0 new, 1 visiting, 2 done
	var visit func(p string)
	visit = func(p string) {
		g := l.groups[p]
		if g == nil || state[p] != 0 {
			return
		}
		state[p] = 1
		deps := append([]string(nil), g.deps...)
		sort.Strings(deps)
		for _, d := range deps {
			visit(d)
		}
		state[p] = 2
		out = append(out, &Package{Path: p, Files: g.files, Types: g.tpkg, Info: g.info})
	}
	for _, p := range paths {
		visit(p)
	}
	return out, nil
}

// stdImporter builds the importer used for packages outside the module.
// It prefers compiled export data: a single `go list -export -deps`
// invocation over the needed import paths makes the go tool hand back (via
// the build cache) one export file per package, and a gc-importer lookup
// reads those directly. That is orders of magnitude cheaper than
// re-type-checking the standard library from source, and it shrinks the
// mutex-guarded (serial) portion of a parallel load from seconds to
// milliseconds. If the go tool is unavailable or export data is
// incomplete, the source importer remains as the fallback.
func stdImporter(fset *token.FileSet, paths []string) types.Importer {
	if exp := exportData(paths); exp != nil {
		lookup := func(p string) (io.ReadCloser, error) {
			file, ok := exp[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		}
		return importer.ForCompiler(fset, "gc", lookup)
	}
	return importer.ForCompiler(fset, "source", nil)
}

// exportData maps each requested import path (and its transitive
// dependencies) to the path of its compiled export file, or nil if any
// requested package has none.
func exportData(paths []string) map[string]string {
	if len(paths) == 0 {
		return nil
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-f", "{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		return nil
	}
	exp := map[string]string{}
	for _, line := range strings.Split(string(out), "\n") {
		if i := strings.IndexByte(line, '='); i > 0 {
			exp[line[:i]] = line[i+1:]
		}
	}
	for _, p := range paths {
		if _, ok := exp[p]; !ok {
			return nil
		}
	}
	return exp
}

// stdDeps collects the non-module import paths referenced by the grouped
// (buildable) files — the roots the export-data importer must cover.
func stdDeps(groups map[string]*pkgGroup, module string) []string {
	set := map[string]bool{}
	for _, g := range groups {
		for _, f := range g.files {
			for _, imp := range f.AST.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "unsafe" || p == module || strings.HasPrefix(p, module+"/") {
					continue
				}
				set[p] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// localImports extracts the module-local import paths of a file.
func localImports(f *ast.File, module string) []string {
	var out []string
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p == module || strings.HasPrefix(p, module+"/") {
			out = append(out, p)
		}
	}
	return out
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// FindModuleRoot walks upward from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses every Go file under the module rooted at root and
// type-checks all buildable non-test packages, returning a Pass that
// carries both the full syntax-only file set (tests included, for the
// AST analyzers) and the typed packages in dependency order. File paths
// are reported relative to root. parallel enables concurrent package
// checking; sequential mode exists for benchmarking the difference.
func LoadModule(fset *token.FileSet, root string, parallel bool) (*Pass, error) {
	disableCgo()
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var rels []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			rel, err := filepath.Rel(root, p)
			if err != nil {
				return err
			}
			rels = append(rels, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)

	// Parse everything up front (concurrently in parallel mode): the same
	// ASTs serve the syntax analyzers and, where buildable, the checker.
	files := make([]*File, len(rels))
	errs := make([]error, len(rels))
	parseOne := func(i int) {
		rel := rels[i]
		src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel)))
		if err != nil {
			errs[i] = err
			return
		}
		af, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
		if err != nil {
			errs[i] = fmt.Errorf("parse %s: %w", rel, err)
			return
		}
		files[i] = &File{Path: rel, AST: af, Src: src}
	}
	if parallel {
		var wg sync.WaitGroup
		for i := range rels {
			wg.Add(1)
			go func() { defer wg.Done(); parseOne(i) }()
		}
		wg.Wait()
	} else {
		for i := range rels {
			parseOne(i)
		}
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	groups := map[string]*pkgGroup{}
	for _, f := range files {
		if isTestFile(f.Path) {
			continue
		}
		dir := path.Dir(f.Path)
		absDir := root
		if dir != "." {
			absDir = filepath.Join(root, filepath.FromSlash(dir))
		}
		// Honor build constraints with the default tag set: mdsdebug files
		// are excluded, their release twins included, so the checked
		// package matches what `go build` compiles.
		if ok, err := build.Default.MatchFile(absDir, path.Base(f.Path)); err != nil || !ok {
			continue
		}
		imp := module
		if dir != "." {
			imp = module + "/" + dir
		}
		g := groups[imp]
		if g == nil {
			g = &pkgGroup{path: imp}
			groups[imp] = g
		}
		g.files = append(g.files, f)
		for _, dep := range localImports(f.AST, module) {
			g.deps = append(g.deps, dep)
		}
	}
	for _, g := range groups {
		sort.Strings(g.deps)
		g.deps = dedupeSorted(g.deps)
	}

	ld := &moduleLoader{
		fset:     fset,
		groups:   groups,
		std:      stdImporter(fset, stdDeps(groups, module)),
		parallel: parallel,
	}
	pkgs, err := ld.checkAll()
	if err != nil {
		return nil, err
	}
	return &Pass{Fset: fset, Files: files, Pkgs: pkgs}, nil
}

// CheckSources type-checks in-memory fixture files as module "mds2": each
// file's slash path selects its package (the directory) and import path
// ("mds2/" + dir). This is the typed analyzers' test-fixture path — it
// performs no build-constraint or test-file filtering and resolves
// non-local imports through the source importer.
func CheckSources(fset *token.FileSet, files []*File) ([]*Package, error) {
	disableCgo()
	groups := map[string]*pkgGroup{}
	for _, f := range files {
		dir := path.Dir(f.Path)
		imp := "mds2"
		if dir != "." {
			imp = "mds2/" + dir
		}
		g := groups[imp]
		if g == nil {
			g = &pkgGroup{path: imp}
			groups[imp] = g
		}
		g.files = append(g.files, f)
		for _, dep := range localImports(f.AST, "mds2") {
			g.deps = append(g.deps, dep)
		}
	}
	for _, g := range groups {
		sort.Strings(g.deps)
		g.deps = dedupeSorted(g.deps)
	}
	ld := &moduleLoader{
		fset:   fset,
		groups: groups,
		std:    stdImporter(fset, stdDeps(groups, "mds2")),
	}
	return ld.checkAll()
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// --- fact store -------------------------------------------------------------

type factKey struct {
	obj types.Object
	key string
}

// SetFact records an analyzer fact about a typed object (a function's
// mutation/alias shape, a field that holds snapshots, a builder delta).
// Facts are how the typed analyzers follow values across package
// boundaries: packages are visited in dependency order, so callee facts
// exist by the time callers are analyzed.
func (p *Pass) SetFact(obj types.Object, key string, v any) {
	if p.facts == nil {
		p.facts = map[factKey]any{}
	}
	p.facts[factKey{obj, key}] = v
}

// Fact retrieves a fact set by SetFact.
func (p *Pass) Fact(obj types.Object, key string) (any, bool) {
	v, ok := p.facts[factKey{obj, key}]
	return v, ok
}

// --- typed helpers ----------------------------------------------------------

// calleeOf resolves the *types.Func a call statically invokes; nil for
// builtins, conversions, and calls through function-typed values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Alias:
			t = types.Unalias(v)
		case *types.Named:
			return v
		default:
			return nil
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isMethod reports whether fn is the method pkgPath.typeName.name
// (pointer or value receiver).
func isMethod(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), pkgPath, typeName)
}

// isFunc reports whether fn is the package-level function pkgPath.name.
func isFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// resultCount returns the number of results a call produces.
func resultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 0
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		return tup.Len()
	}
	if _, ok := tv.Type.(*types.Basic); ok && tv.Type.(*types.Basic).Kind() == types.Invalid {
		return 0
	}
	return 1
}

// rootObj descends selector/index/slice/star/paren/assert chains to the
// root identifier's object; depth counts the steps taken. A non-identifier
// root (call result, literal) yields nil.
func rootObj(info *types.Info, e ast.Expr) (obj types.Object, depth int) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o, depth
			}
			return info.Defs[v], depth
		case *ast.SelectorExpr:
			// A package-qualified name roots at the package-level object.
			if id, ok := v.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return info.Uses[v.Sel], depth
				}
			}
			e, depth = v.X, depth+1
		case *ast.IndexExpr:
			e, depth = v.X, depth+1
		case *ast.SliceExpr:
			e, depth = v.X, depth+1
		case *ast.StarExpr:
			e, depth = v.X, depth+1
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil, depth
		}
	}
}

// funcDecls yields every function declaration with a body across the typed
// packages, paired with its object and owning package, in package
// dependency order.
type declInfo struct {
	pkg  *Package
	file *File
	decl *ast.FuncDecl
	obj  *types.Func
}

func (p *Pass) funcDecls() []declInfo {
	var out []declInfo
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				out = append(out, declInfo{pkg: pkg, file: f, decl: fd, obj: obj})
			}
		}
	}
	return out
}
