package mdslint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// LockCheck flags a mutex held across a channel operation or another call
// that can block indefinitely (select, Wait, Sleep). Holding a lock while
// parked on a channel is the bug class behind the PR 1 GIIS pool
// use-after-close: every other goroutine needing the lock stalls behind a
// peer that may never be scheduled again.
//
// The analysis is syntactic and per-statement-list: x.Lock()/x.RLock()
// opens a critical section that x.Unlock()/x.RUnlock() closes; a deferred
// unlock keeps it open to the end of the enclosing list. Lock state does
// not escape the block it was taken in (conditional locking stays
// conservative), and function literals are not scanned under the caller's
// lock — they run on their own goroutine or after return.
//
// Sends on buffered channels that provably cannot block are invisible to
// a syntactic check; annotate those with //mdslint:ignore lockcheck and a
// reason stating the capacity argument.
const ruleLock = "lockcheck"

var LockCheck = &Analyzer{
	Name: ruleLock,
	Doc:  "no mutex held across channel send/receive, select, Wait, or Sleep",
	Run:  runLockCheck,
}

type heldLock struct {
	recv string
	pos  token.Pos
}

func runLockCheck(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if isTestFile(f.Path) {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanLockStmts(p, fn.Body.List, nil, &out)
				}
			case *ast.FuncLit:
				scanLockStmts(p, fn.Body.List, nil, &out)
			}
			return true
		})
	}
	return out
}

// lockKind classifies a call as acquiring or releasing a lock.
type lockKind int

const (
	notLock lockKind = iota
	acquires
	releases
)

func lockCall(e ast.Expr) (recv string, kind lockKind) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", notLock
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", notLock
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprString(sel.X), acquires
	case "Unlock", "RUnlock":
		return exprString(sel.X), releases
	}
	return "", notLock
}

func dropLock(held []heldLock, recv string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].recv == recv {
			return append(append([]heldLock{}, held[:i]...), held[i+1:]...)
		}
	}
	return held
}

// scanLockStmts walks one statement list in order, tracking which locks
// are held, recursing into nested blocks with a copy of the current state.
func scanLockStmts(p *Pass, stmts []ast.Stmt, held []heldLock, out *[]Finding) {
	held = append([]heldLock{}, held...)
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			recv, kind := lockCall(st.X)
			if kind == acquires {
				held = append(held, heldLock{recv: recv, pos: st.Pos()})
				continue
			}
			if kind == releases {
				held = dropLock(held, recv)
				continue
			}
			checkBlockingOps(p, st, held, out)
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held for the remainder of
			// this list; a deferred anything-else runs after the lock
			// region we can reason about, so it is not scanned.
		case *ast.GoStmt:
			// The spawned goroutine does not hold the caller's lock.
		case *ast.LabeledStmt:
			scanLockStmts(p, []ast.Stmt{st.Stmt}, held, out)
		case *ast.BlockStmt:
			scanLockStmts(p, st.List, held, out)
		case *ast.IfStmt:
			checkBlockingExpr(p, st.Init, held, out)
			checkBlockingExpr(p, st.Cond, held, out)
			scanLockStmts(p, st.Body.List, held, out)
			if st.Else != nil {
				scanLockStmts(p, []ast.Stmt{st.Else}, held, out)
			}
		case *ast.ForStmt:
			checkBlockingExpr(p, st.Init, held, out)
			checkBlockingExpr(p, st.Cond, held, out)
			checkBlockingExpr(p, st.Post, held, out)
			scanLockStmts(p, st.Body.List, held, out)
		case *ast.RangeStmt:
			checkBlockingExpr(p, st.X, held, out)
			scanLockStmts(p, st.Body.List, held, out)
		case *ast.SwitchStmt:
			checkBlockingExpr(p, st.Init, held, out)
			checkBlockingExpr(p, st.Tag, held, out)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockStmts(p, cc.Body, held, out)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockStmts(p, cc.Body, held, out)
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 {
				h := held[len(held)-1]
				*out = append(*out, Finding{
					Pos:  p.Fset.Position(st.Pos()),
					Rule: ruleLock,
					Msg: "select while holding " + h.recv +
						" (locked at line " + strconv.Itoa(p.Fset.Position(h.pos).Line) + "); release before blocking",
				})
			}
		default:
			checkBlockingOps(p, s, held, out)
		}
	}
}

func checkBlockingExpr(p *Pass, n ast.Node, held []heldLock, out *[]Finding) {
	if n == nil || len(held) == 0 {
		return
	}
	checkBlockingOps(p, n, held, out)
}

// checkBlockingOps inspects a simple statement or expression for
// operations that can block, skipping nested function literals.
func checkBlockingOps(p *Pass, n ast.Node, held []heldLock, out *[]Finding) {
	if len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	report := func(pos token.Pos, what string) {
		*out = append(*out, Finding{
			Pos:  p.Fset.Position(pos),
			Rule: ruleLock,
			Msg: what + " while holding " + h.recv +
				" (locked at line " + strconv.Itoa(p.Fset.Position(h.pos).Line) + "); release before blocking",
		})
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch v := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(v.Pos(), "channel send")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			report(v.Pos(), "select")
			return false
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Wait":
					report(v.Pos(), exprString(sel.X)+".Wait()")
				case "Sleep":
					report(v.Pos(), exprString(sel.X)+".Sleep()")
				}
			}
		}
		return true
	})
}
