// Package mdslint is the project's custom static-analysis driver. It
// enforces the concurrency and determinism invariants the soft-state design
// depends on (DESIGN.md "Static analysis & invariants"):
//
//   - clockcheck: all timing flows through softstate.Clock — no raw
//     time.Now / time.Sleep / time.After outside the blessed files, so
//     FakeClock tests exercise the same code paths production runs.
//   - lockcheck: no mutex held across a channel operation or other call
//     that can block (the class of bug behind the GIIS pool
//     use-after-close fixed in PR 1).
//   - errchecklite: no dropped error returns from ber/ldap encode/decode
//     paths or net.Conn writes — a silently failed write corrupts the
//     protocol stream.
//   - goroutinecheck: no goroutine launched without a cancellation path
//     (context, done channel, Clock.After, or a blocking call that fails
//     when its resource closes).
//
// The driver is deliberately dependency-free: stdlib go/parser + go/ast
// over a plain file walk, no go/packages or x/tools. Analysis is purely
// syntactic; each analyzer documents the heuristics it uses and the
// exemptions it grants. Findings are suppressed, one line at a time, with
//
//	//mdslint:ignore <rule> <reason>
//
// placed on the offending line or the line directly above it. A directive
// without a reason is itself a finding: exceptions must say why.
package mdslint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file.
type File struct {
	// Path is the slash-separated path as discovered (relative to the
	// lint root for ./... walks). Exemption rules match against it.
	Path string
	AST  *ast.File
	Src  []byte
}

// Pass hands every analyzer the full parsed file set so cross-file facts
// (like which ber/ldap functions return errors) are available. A Pass built
// by LoadModule additionally carries the type-checked packages (Pkgs, in
// dependency order) and the fact store the typed analyzers share; a
// syntax-only Pass leaves Pkgs nil and typed analyzers are skipped.
type Pass struct {
	Fset  *token.FileSet
	Files []*File
	Pkgs  []*Package // typed packages in dependency order; nil = syntax-only

	index  *declIndex // lazily built by Index()
	facts  map[factKey]any
	shapes bool // funcShape facts computed (see shapes.go)
}

// Finding is one diagnostic.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// NeedsTypes marks analyzers that require a type-checked Pass (built
	// by LoadModule); they are skipped on syntax-only passes.
	NeedsTypes bool
	Run        func(p *Pass) []Finding
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{ClockCheck, LockCheck, ErrCheckLite, GoroutineCheck,
		SnapshotCheck, PoolCheck, BerBalance}
}

// IgnoreDirective is the parsed form of //mdslint:ignore <rule> <reason>.
// A directive on a line of its own covers the line below it; a directive
// trailing code covers only that line.
type IgnoreDirective struct {
	Line   int // the line the directive applies to
	Rule   string
	Reason string
}

const directivePrefix = "mdslint:ignore"

// directives extracts every mdslint:ignore comment from a file, keyed by
// the line the comment sits on. Malformed directives (no rule, or no
// reason) are reported as findings so exceptions stay auditable.
func directives(fset *token.FileSet, f *File) (map[int][]IgnoreDirective, []Finding) {
	out := map[int][]IgnoreDirective{}
	var bad []Finding
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			rule, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if rule == "" || reason == "" {
				bad = append(bad, Finding{Pos: pos, Rule: "directive",
					Msg: "malformed //mdslint:ignore: want \"//mdslint:ignore <rule> <reason>\""})
				continue
			}
			line := pos.Line
			if ownLine(f.Src, pos.Offset) {
				line++
			}
			out[line] = append(out[line], IgnoreDirective{Line: line, Rule: rule, Reason: reason})
		}
	}
	return out, bad
}

// suppressed reports whether a finding at line is covered by a directive
// scoped to that line.
func suppressed(dirs map[int][]IgnoreDirective, rule string, line int) bool {
	for _, d := range dirs[line] {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

// ownLine reports whether only whitespace precedes offset on its line —
// i.e. the comment starting there stands alone.
func ownLine(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0 && src[i] != '\n'; i-- {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}

// RunAll executes every analyzer over the pass, applies ignore directives,
// and returns the surviving findings sorted by position.
func RunAll(p *Pass, analyzers []*Analyzer) []Finding {
	var all []Finding
	dirsByPath := map[string]map[int][]IgnoreDirective{}
	for _, f := range p.Files {
		d, bad := directives(p.Fset, f)
		dirsByPath[f.Path] = d
		all = append(all, bad...)
	}
	for _, a := range analyzers {
		if a.NeedsTypes && p.Pkgs == nil {
			continue
		}
		for _, fd := range a.Run(p) {
			dirs := dirsByPath[fd.Pos.Filename]
			if suppressed(dirs, fd.Rule, fd.Pos.Line) {
				continue
			}
			all = append(all, fd)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return all
}

// Load parses the Go files named by patterns. A pattern is either a
// directory, a single .go file, or a dir suffixed with /... for a
// recursive walk. Vendored, hidden, and testdata directories are skipped.
func Load(fset *token.FileSet, patterns []string) ([]*File, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		p = filepath.ToSlash(filepath.Clean(p))
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Clean(strings.TrimSuffix(pat, "/..."))
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, ".go"):
			add(pat)
		default:
			entries, err := os.ReadDir(pat)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(filepath.Join(pat, e.Name()))
				}
			}
		}
	}
	sort.Strings(paths)
	var files []*File
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		af, err := parser.ParseFile(fset, p, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", p, err)
		}
		files = append(files, &File{Path: p, AST: af, Src: src})
	}
	return files, nil
}

// ParseSource builds a File from in-memory source — the test fixture path.
func ParseSource(fset *token.FileSet, path, src string) (*File, error) {
	af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &File{Path: path, AST: af, Src: []byte(src)}, nil
}

// --- shared path predicates -------------------------------------------------

// isTestFile reports whether path is a Go test file.
func isTestFile(path string) bool { return strings.HasSuffix(path, "_test.go") }

// pathHasDir reports whether the slash path contains dir as a complete
// path segment sequence (e.g. pathHasDir("a/internal/experiments/x.go",
// "internal/experiments")).
func pathHasDir(path, dir string) bool {
	p := "/" + strings.Trim(filepath.ToSlash(path), "/") + "/"
	return strings.Contains(p, "/"+strings.Trim(dir, "/")+"/")
}

// pathIsFile reports whether the slash path ends with the given
// slash-separated suffix as complete segments.
func pathIsFile(path, suffix string) bool {
	p := "/" + strings.Trim(filepath.ToSlash(path), "/")
	return strings.HasSuffix(p, "/"+strings.Trim(suffix, "/"))
}

// importName returns the local name a file binds the given import path to,
// and whether the import exists. An unnamed import yields its base name.
func importName(f *ast.File, importPath string) (string, bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// isPkgIdent reports whether id plausibly refers to a package (it is not
// resolved to any local declaration by the parser).
func isPkgIdent(id *ast.Ident) bool { return id.Obj == nil }

// exprString renders a (small) expression for diagnostics and for matching
// lock/unlock receivers textually.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(…)"
	default:
		return fmt.Sprintf("%T", e)
	}
}
