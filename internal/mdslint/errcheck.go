package mdslint

import (
	"go/ast"
	"strings"
)

// ErrCheckLite flags dropped error returns on the protocol data path: a
// ber/ldap encode or decode that fails silently corrupts the wire stream,
// and an unchecked net.Conn write hides the exact disconnects the
// soft-state failure detector is supposed to observe.
//
// Scope is deliberately narrow (this is not a general errcheck):
//
//   - calls to package-level functions of internal/ber, internal/ldap, and
//     internal/ldap/ldif whose last result is error, used as a bare
//     statement (also behind go/defer);
//   - method calls with encode/decode-shaped names (Encode*, Decode*,
//     Append*, Write*, Read*, Marshal*, Unmarshal*, Flush*) that some type
//     in those packages defines with an error result;
//   - Write calls on identifiers declared as net.Conn in the enclosing
//     function's signature or var declarations.
//
// Assigning the error to _ is a visible, reviewable decision and is not
// flagged.
const ruleErr = "errchecklite"

var ErrCheckLite = &Analyzer{
	Name: ruleErr,
	Doc:  "no dropped errors from ber/ldap encode/decode or net.Conn writes",
	Run:  runErrCheckLite,
}

// errPkgPaths are the import paths whose error returns must be consumed.
var errPkgPaths = []string{
	"mds2/internal/ber",
	"mds2/internal/ldap",
	"mds2/internal/ldap/ldif",
}

// errMethodPrefixes limit the receiver-method heuristic to the
// encode/decode shape; generic names like Close stay out of scope.
var errMethodPrefixes = []string{
	"Encode", "Decode", "Append", "Write", "Read", "Marshal", "Unmarshal", "Flush",
}

func hasErrMethodPrefix(name string) bool {
	for _, p := range errMethodPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// declIndex records which functions and methods in the target packages
// return an error, built syntactically from the files in the pass.
type declIndex struct {
	pkgFuncs   map[string]map[string]bool // import path -> func name -> returns error
	errMethods map[string]bool            // method name (in a target pkg) -> returns error
}

// Index builds (once) the cross-file declaration index for the pass.
func (p *Pass) Index() *declIndex {
	if p.index != nil {
		return p.index
	}
	idx := &declIndex{
		pkgFuncs:   map[string]map[string]bool{},
		errMethods: map[string]bool{},
	}
	for _, f := range p.Files {
		path, ok := importPathForFile(f.Path)
		if !ok || !isErrPkg(path) {
			continue
		}
		for _, d := range f.AST.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || !lastResultIsError(fn) {
				continue
			}
			if fn.Recv == nil {
				m := idx.pkgFuncs[path]
				if m == nil {
					m = map[string]bool{}
					idx.pkgFuncs[path] = m
				}
				m[fn.Name.Name] = true
			} else {
				idx.errMethods[fn.Name.Name] = true
			}
		}
	}
	p.index = idx
	return idx
}

// importPathForFile maps a repo-relative file path to its module import
// path ("internal/ber/ber.go" -> "mds2/internal/ber").
func importPathForFile(path string) (string, bool) {
	p := filepathToSlashDir(path)
	i := strings.Index("/"+p+"/", "/internal/")
	if i < 0 {
		return "", false
	}
	return "mds2/" + strings.Trim(("/" + p + "/")[i:], "/"), true
}

func filepathToSlashDir(path string) string {
	p := strings.ReplaceAll(path, "\\", "/")
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[:i]
	}
	return ""
}

func isErrPkg(importPath string) bool {
	for _, p := range errPkgPaths {
		if importPath == p {
			return true
		}
	}
	return false
}

func lastResultIsError(fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
		return false
	}
	last := fn.Type.Results.List[len(fn.Type.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

func runErrCheckLite(p *Pass) []Finding {
	idx := p.Index()
	var out []Finding
	for _, f := range p.Files {
		if isTestFile(f.Path) {
			continue
		}
		// Local names this file binds the target packages to.
		pkgNames := map[string]string{} // local name -> import path
		for _, path := range errPkgPaths {
			if name, ok := importName(f.AST, path); ok {
				pkgNames[name] = path
			}
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			conns := connIdents(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = st.X.(*ast.CallExpr)
				case *ast.GoStmt:
					call = st.Call
				case *ast.DeferStmt:
					call = st.Call
				}
				if call == nil {
					return true
				}
				if fd, ok := droppedErrCall(p, idx, pkgNames, conns, call); ok {
					out = append(out, fd)
				}
				return true
			})
			return false
		})
	}
	return out
}

// droppedErrCall decides whether a bare call statement drops an error we
// care about.
func droppedErrCall(p *Pass, idx *declIndex, pkgNames map[string]string,
	conns map[string]bool, call *ast.CallExpr) (Finding, bool) {

	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Finding{}, false
	}
	pos := p.Fset.Position(call.Pos())
	if id, ok := sel.X.(*ast.Ident); ok && isPkgIdent(id) {
		if path, ok := pkgNames[id.Name]; ok && idx.pkgFuncs[path][sel.Sel.Name] {
			return Finding{Pos: pos, Rule: ruleErr,
				Msg: "dropped error from " + id.Name + "." + sel.Sel.Name}, true
		}
	}
	if id, ok := sel.X.(*ast.Ident); ok && conns[id.Name] && sel.Sel.Name == "Write" {
		return Finding{Pos: pos, Rule: ruleErr,
			Msg: "dropped error from net.Conn write on " + id.Name}, true
	}
	if hasErrMethodPrefix(sel.Sel.Name) && idx.errMethods[sel.Sel.Name] {
		// A package-qualified call (fmt.Appendf, …) is some other
		// package's function, not a method on a ber/ldap value.
		if id, ok := sel.X.(*ast.Ident); ok && isPkgIdent(id) {
			return Finding{}, false
		}
		return Finding{Pos: pos, Rule: ruleErr,
			Msg: "dropped error from " + exprString(sel.X) + "." + sel.Sel.Name}, true
	}
	return Finding{}, false
}

// connIdents collects identifiers declared as net.Conn in a function's
// parameters, results, or var declarations.
func connIdents(fn *ast.FuncDecl) map[string]bool {
	conns := map[string]bool{}
	collect := func(names []*ast.Ident, typ ast.Expr) {
		if !isNetConnType(typ) {
			return
		}
		for _, n := range names {
			conns[n.Name] = true
		}
	}
	for _, fl := range []*ast.FieldList{fn.Type.Params, fn.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			collect(field.Names, field.Type)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						collect(vs.Names, vs.Type)
					}
				}
			}
		case *ast.FuncLit:
			for _, field := range v.Type.Params.List {
				collect(field.Names, field.Type)
			}
		}
		return true
	})
	return conns
}

func isNetConnType(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "net" && sel.Sel.Name == "Conn"
}
