package gsi

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"
)

// Credential and key persistence: the GSI single sign-on workflow keeps an
// identity credential on disk and short-lived proxies in session files
// (grid-proxy-init). These helpers serialize key pairs, authorities, and
// trust anchors so the command-line tools can share a security domain
// across processes.

type keyPairFile struct {
	Credential json.RawMessage `json:"credential"`
	PrivateKey []byte          `json:"privateKey"` // ed25519 seed||public
}

// MarshalPrivate serializes the key pair including its private key. Treat
// the output like a private key file.
func (k *KeyPair) MarshalPrivate() []byte {
	b, err := json.Marshal(keyPairFile{
		Credential: k.Credential.Marshal(),
		PrivateKey: k.private,
	})
	if err != nil {
		panic(err) // flat JSON-safe struct
	}
	return b
}

// UnmarshalKeyPair parses a serialized key pair.
func UnmarshalKeyPair(b []byte) (*KeyPair, error) {
	var f keyPairFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("gsi: bad key pair encoding: %w", err)
	}
	cred, err := UnmarshalCredential(f.Credential)
	if err != nil {
		return nil, err
	}
	if len(f.PrivateKey) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("gsi: bad private key length %d", len(f.PrivateKey))
	}
	return &KeyPair{Credential: cred, private: ed25519.PrivateKey(f.PrivateKey)}, nil
}

// SaveKeyPair writes the key pair to path with owner-only permissions.
func SaveKeyPair(path string, k *KeyPair) error {
	return os.WriteFile(path, k.MarshalPrivate(), 0o600)
}

// LoadKeyPair reads a key pair written by SaveKeyPair.
func LoadKeyPair(path string) (*KeyPair, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalKeyPair(b)
}

type authorityFile struct {
	Name       string `json:"name"`
	PrivateKey []byte `json:"privateKey"`
}

// MarshalPrivate serializes the authority including its signing key.
func (a *Authority) MarshalPrivate() []byte {
	b, err := json.Marshal(authorityFile{Name: a.Name, PrivateKey: a.keyPair})
	if err != nil {
		panic(err)
	}
	return b
}

// UnmarshalAuthority parses a serialized authority.
func UnmarshalAuthority(b []byte) (*Authority, error) {
	var f authorityFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("gsi: bad authority encoding: %w", err)
	}
	if len(f.PrivateKey) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("gsi: bad authority key length %d", len(f.PrivateKey))
	}
	priv := ed25519.PrivateKey(f.PrivateKey)
	return &Authority{
		Name:    f.Name,
		keyPair: priv,
		public:  priv.Public().(ed25519.PublicKey),
	}, nil
}

// SaveAuthority writes the CA to path with owner-only permissions.
func SaveAuthority(path string, a *Authority) error {
	return os.WriteFile(path, a.MarshalPrivate(), 0o600)
}

// LoadAuthority reads a CA written by SaveAuthority.
func LoadAuthority(path string) (*Authority, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalAuthority(b)
}

// TrustAnchor is the public half of an authority, distributed to verifiers.
type TrustAnchor struct {
	Name      string `json:"name"`
	PublicKey []byte `json:"publicKey"`
}

// Anchor extracts the authority's trust anchor.
func (a *Authority) Anchor() TrustAnchor {
	return TrustAnchor{Name: a.Name, PublicKey: a.PublicKey()}
}

// SaveAnchor writes a trust anchor (world-readable: it is public).
func SaveAnchor(path string, anchor TrustAnchor) error {
	b, err := json.Marshal(anchor)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadAnchors reads trust anchors from paths into a trust store.
func LoadAnchors(paths ...string) (*TrustStore, error) {
	ts := NewTrustStore()
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var anchor TrustAnchor
		if err := json.Unmarshal(b, &anchor); err != nil {
			return nil, fmt.Errorf("gsi: bad trust anchor %s: %w", path, err)
		}
		if len(anchor.PublicKey) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("gsi: bad anchor key length in %s", path)
		}
		ts.Trust(anchor.Name, anchor.PublicKey)
	}
	return ts, nil
}
