package gsi

import (
	"strings"

	"mds2/internal/ldap"
)

// Posture enumerates the four provider/directory trust configurations
// enumerated in §7 of the paper.
type Posture int

// Postures, in the order the paper lists them.
const (
	// PostureTrustedDirectory: the provider answers any authenticated query
	// from the directory, trusting it to apply policy on the provider's
	// behalf.
	PostureTrustedDirectory Posture = iota
	// PostureRestricted: some attributes flow to the directory, others only
	// to specifically authorized users (forcing two-step query plans).
	PostureRestricted
	// PostureExistenceOnly: nothing beyond the entity's existence is
	// revealed; directories can enumerate but not index attributes.
	PostureExistenceOnly
	// PostureOpen: no restrictions; anonymous queries permitted.
	PostureOpen
)

func (p Posture) String() string {
	switch p {
	case PostureTrustedDirectory:
		return "trusted-directory"
	case PostureRestricted:
		return "restricted"
	case PostureExistenceOnly:
		return "existence-only"
	case PostureOpen:
		return "open"
	}
	return "unknown"
}

// Principal is the access-control view of an authenticated peer. A nil
// *Principal means anonymous.
type Principal struct {
	// Subject is the verified end-entity name.
	Subject string
	// Capabilities aggregates capabilities asserted along the chain.
	Capabilities []string
	// TrustedDirectory marks peers authorized to act as aggregate
	// directories applying policy on the provider's behalf.
	TrustedDirectory bool
}

// PrincipalFromCredential projects a verified credential chain into the
// policy domain. trusted lists directory subjects the provider trusts.
func PrincipalFromCredential(c *Credential, trustedDirectories []string) *Principal {
	p := &Principal{Subject: c.EndEntity()}
	for cur := c; cur != nil; cur = cur.Chain {
		p.Capabilities = append(p.Capabilities, cur.Capabilities...)
	}
	for _, d := range trustedDirectories {
		if d == p.Subject {
			p.TrustedDirectory = true
		}
	}
	return p
}

// HasCapability reports whether the principal holds the named capability.
func (p *Principal) HasCapability(cap string) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Capabilities {
		if c == cap {
			return true
		}
	}
	return false
}

// Rule grants access to a set of attributes when its subject condition
// matches. Subject forms:
//
//	"*"            any authenticated principal
//	"anonymous"    unauthenticated peers (and, implicitly, everyone else)
//	"cap:NAME"     principals holding capability NAME
//	anything else  exact end-entity subject match
//
// Attrs lists attribute names the rule reveals; "*" reveals all.
type Rule struct {
	Subject string
	Attrs   []string
}

func (r Rule) matches(p *Principal) bool {
	switch {
	case r.Subject == "anonymous":
		return true
	case p == nil:
		return false
	case r.Subject == "*":
		return true
	case strings.HasPrefix(r.Subject, "cap:"):
		return p.HasCapability(strings.TrimPrefix(r.Subject, "cap:"))
	default:
		return p.Subject == r.Subject
	}
}

// Policy decides which attributes of which entries a principal may see.
// The zero value denies everything; use NewPolicy.
type Policy struct {
	// Posture selects the §7 baseline behaviour.
	Posture Posture
	// Rules refine PostureRestricted: each grants attribute visibility.
	Rules []Rule
	// ExistenceAttrs are the attributes revealed under PostureExistenceOnly
	// (the naming attributes; defaults to objectclass only).
	ExistenceAttrs []string
}

// NewPolicy returns a policy with the given posture.
func NewPolicy(p Posture) *Policy {
	return &Policy{Posture: p, ExistenceAttrs: []string{"objectclass"}}
}

// Grant appends a rule.
func (pol *Policy) Grant(subject string, attrs ...string) *Policy {
	pol.Rules = append(pol.Rules, Rule{Subject: subject, Attrs: attrs})
	return pol
}

// VisibleAttrs computes the attribute names of e visible to p, or nil when
// the entry is entirely hidden. The boolean reports whether the entry's
// existence may be revealed at all.
func (pol *Policy) VisibleAttrs(p *Principal, e *ldap.Entry) ([]string, bool) {
	switch pol.Posture {
	case PostureOpen:
		return []string{"*"}, true
	case PostureTrustedDirectory:
		if p != nil && p.TrustedDirectory {
			return []string{"*"}, true
		}
		return pol.ruleAttrs(p)
	case PostureExistenceOnly:
		return pol.ExistenceAttrs, true
	case PostureRestricted:
		return pol.ruleAttrs(p)
	}
	return nil, false
}

func (pol *Policy) ruleAttrs(p *Principal) ([]string, bool) {
	var attrs []string
	seen := map[string]bool{}
	any := false
	for _, r := range pol.Rules {
		if !r.matches(p) {
			continue
		}
		any = true
		for _, a := range r.Attrs {
			if a == "*" {
				return []string{"*"}, true
			}
			key := strings.ToLower(a)
			if !seen[key] {
				seen[key] = true
				attrs = append(attrs, a)
			}
		}
	}
	return attrs, any
}

// Redact returns the view of e that p may see: the full entry, a reduced
// entry, or nil when even existence is hidden. The DN is always preserved
// on visible entries (it is the name).
func (pol *Policy) Redact(p *Principal, e *ldap.Entry) *ldap.Entry {
	attrs, visible := pol.VisibleAttrs(p, e)
	if !visible {
		return nil
	}
	if len(attrs) == 1 && attrs[0] == "*" {
		return e.Clone()
	}
	if len(attrs) == 0 {
		return nil
	}
	out := e.Select(attrs)
	if len(out.Attrs) == 0 {
		// Nothing the principal may see actually exists on this entry;
		// under restricted posture that hides the entry entirely.
		if pol.Posture == PostureRestricted {
			return nil
		}
	}
	return out
}

// FilterAuthorized reports whether p may evaluate the given search filter:
// a principal must be able to see every attribute the filter references,
// otherwise filter evaluation would leak restricted values through
// match/no-match behaviour.
func (pol *Policy) FilterAuthorized(p *Principal, f *ldap.Filter, sample *ldap.Entry) bool {
	if f == nil {
		return true
	}
	attrs, visible := pol.VisibleAttrs(p, sample)
	if !visible {
		return false
	}
	if len(attrs) == 1 && attrs[0] == "*" {
		return true
	}
	allowed := map[string]bool{"objectclass": true}
	for _, a := range attrs {
		allowed[strings.ToLower(a)] = true
	}
	for _, a := range f.Attributes() {
		if !allowed[a] {
			return false
		}
	}
	return true
}
