package gsi

import (
	"testing"
	"time"
)

func TestSASLBinderFullExchange(t *testing.T) {
	ca, ts := testCA(t)
	server, _ := ca.Issue("cn=server", time.Hour, testEpoch)
	client, _ := ca.Issue("cn=client", time.Hour, testEpoch)
	now := func() time.Time { return testEpoch }

	b := NewSASLBinder(server, ts, now, []string{"cn=client"})
	conn := new(int) // any stable pointer identifies the connection

	ch := NewClientHandshake(client, ts, now)
	hello, err := ch.Hello()
	if err != nil {
		t.Fatal(err)
	}
	step, err := b.Step(conn, hello)
	if err != nil {
		t.Fatal(err)
	}
	if step.Challenge == nil || step.Principal != nil {
		t.Fatalf("first step = %+v", step)
	}
	proof, err := ch.Respond(step.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	step, err = b.Step(conn, proof)
	if err != nil {
		t.Fatal(err)
	}
	if step.Principal == nil || step.Principal.Subject != "cn=client" || !step.Principal.TrustedDirectory {
		t.Fatalf("second step = %+v", step)
	}
}

func TestSASLBinderIndependentConnections(t *testing.T) {
	ca, ts := testCA(t)
	server, _ := ca.Issue("cn=server", time.Hour, testEpoch)
	alice, _ := ca.Issue("cn=alice", time.Hour, testEpoch)
	bob, _ := ca.Issue("cn=bob", time.Hour, testEpoch)
	now := func() time.Time { return testEpoch }
	b := NewSASLBinder(server, ts, now, nil)

	connA, connB := new(int), new(int)
	chA := NewClientHandshake(alice, ts, now)
	chB := NewClientHandshake(bob, ts, now)
	helloA, _ := chA.Hello()
	helloB, _ := chB.Hello()
	stepA, err := b.Step(connA, helloA)
	if err != nil {
		t.Fatal(err)
	}
	stepB, err := b.Step(connB, helloB)
	if err != nil {
		t.Fatal(err)
	}
	// Finish in reverse order: state is per connection.
	proofB, _ := chB.Respond(stepB.Challenge)
	proofA, _ := chA.Respond(stepA.Challenge)
	doneB, err := b.Step(connB, proofB)
	if err != nil || doneB.Principal.Subject != "cn=bob" {
		t.Fatalf("bob: %+v, %v", doneB, err)
	}
	doneA, err := b.Step(connA, proofA)
	if err != nil || doneA.Principal.Subject != "cn=alice" {
		t.Fatalf("alice: %+v, %v", doneA, err)
	}
}

func TestSASLBinderFailureResetsState(t *testing.T) {
	ca, ts := testCA(t)
	server, _ := ca.Issue("cn=server", time.Hour, testEpoch)
	client, _ := ca.Issue("cn=client", time.Hour, testEpoch)
	now := func() time.Time { return testEpoch }
	b := NewSASLBinder(server, ts, now, nil)
	conn := new(int)

	ch := NewClientHandshake(client, ts, now)
	hello, _ := ch.Hello()
	if _, err := b.Step(conn, hello); err != nil {
		t.Fatal(err)
	}
	// Garbage proof fails and discards the half-open exchange...
	if _, err := b.Step(conn, []byte("{}")); err == nil {
		t.Fatal("garbage proof should fail")
	}
	// ...so the client can start over cleanly.
	ch2 := NewClientHandshake(client, ts, now)
	hello2, _ := ch2.Hello()
	step, err := b.Step(conn, hello2)
	if err != nil || step.Challenge == nil {
		t.Fatalf("fresh exchange after failure: %+v, %v", step, err)
	}
	b.Forget(conn) // disconnect cleanup is safe mid-exchange
	if _, err := b.Step(conn, []byte("{}")); err == nil {
		t.Fatal("forgotten exchange must not complete")
	}
}

func TestSASLBinderNilRejects(t *testing.T) {
	var b *SASLBinder
	if _, err := b.Step(new(int), []byte("x")); err == nil {
		t.Fatal("nil binder should reject")
	}
	b.Forget(new(int)) // must not panic
}
