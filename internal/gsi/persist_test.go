package gsi

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestKeyPairPersistRoundTrip(t *testing.T) {
	ca, _ := NewAuthority("o=ca")
	keys, _ := ca.Issue("cn=alice", time.Hour, testEpoch, "vo:physics")
	dir := t.TempDir()
	path := filepath.Join(dir, "alice.key")
	if err := SaveKeyPair(path, keys); err != nil {
		t.Fatal(err)
	}
	// Private key files must be owner-only.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("permissions = %v", info.Mode().Perm())
	}
	back, err := LoadKeyPair(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Credential.Subject != "cn=alice" || !back.Credential.HasCapability("vo:physics") {
		t.Fatalf("credential = %+v", back.Credential)
	}
	// The restored private key signs verifiably.
	ts := NewTrustStore()
	ts.TrustAuthority(ca)
	sig := back.Sign([]byte("msg"))
	if err := VerifyMessage(ts, back.Credential, []byte("msg"), sig, testEpoch); err != nil {
		t.Fatalf("restored key signature: %v", err)
	}
	// A proxy delegated from the restored key verifies too.
	proxy, err := back.Delegate(30*time.Minute, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(proxy.Credential, testEpoch); err != nil {
		t.Fatalf("proxy from restored key: %v", err)
	}
}

func TestAuthorityPersistRoundTrip(t *testing.T) {
	ca, _ := NewAuthority("o=persisted")
	dir := t.TempDir()
	path := filepath.Join(dir, "ca.key")
	if err := SaveAuthority(path, ca); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAuthority(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "o=persisted" {
		t.Fatalf("name = %q", back.Name)
	}
	// Credentials issued by the restored CA verify against the original's
	// anchor, and vice versa.
	keys, err := back.Issue("cn=x", time.Hour, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore()
	ts.TrustAuthority(ca)
	if err := ts.Verify(keys.Credential, testEpoch); err != nil {
		t.Fatalf("cross verification: %v", err)
	}
}

func TestAnchorsRoundTrip(t *testing.T) {
	ca1, _ := NewAuthority("o=a")
	ca2, _ := NewAuthority("o=b")
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.anchor")
	p2 := filepath.Join(dir, "b.anchor")
	if err := SaveAnchor(p1, ca1.Anchor()); err != nil {
		t.Fatal(err)
	}
	if err := SaveAnchor(p2, ca2.Anchor()); err != nil {
		t.Fatal(err)
	}
	trust, err := LoadAnchors(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ca := range []*Authority{ca1, ca2} {
		keys, _ := ca.Issue("cn=x", time.Hour, testEpoch)
		if err := trust.Verify(keys.Credential, testEpoch); err != nil {
			t.Fatalf("anchor for %s: %v", ca.Name, err)
		}
	}
}

func TestPersistErrors(t *testing.T) {
	if _, err := LoadKeyPair("/nonexistent/path"); err == nil {
		t.Error("missing key file should fail")
	}
	if _, err := UnmarshalKeyPair([]byte("{bad")); err == nil {
		t.Error("bad key encoding should fail")
	}
	if _, err := UnmarshalKeyPair([]byte(`{"credential":{},"privateKey":"AAA="}`)); err == nil {
		t.Error("short private key should fail")
	}
	if _, err := UnmarshalAuthority([]byte("{bad")); err == nil {
		t.Error("bad authority encoding should fail")
	}
	if _, err := LoadAnchors("/nonexistent/anchor"); err == nil {
		t.Error("missing anchor should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.anchor")
	os.WriteFile(bad, []byte(`{"name":"x","publicKey":"AA=="}`), 0o644)
	if _, err := LoadAnchors(bad); err == nil {
		t.Error("short anchor key should fail")
	}
}
