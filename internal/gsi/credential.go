// Package gsi implements a simplified Grid Security Infrastructure: a
// certificate authority issuing identity and capability credentials,
// proxy-credential delegation chains, and a challenge–response mutual
// authentication handshake that binds into the LDAP SASL bind exchange.
//
// The paper integrates MDS-2 with GSI for "authentication and access
// control to information" (§7). The real GSI builds on X.509 and GSS-API;
// this reproduction substitutes an ed25519-based credential format with the
// same trust structure — CA → identity → proxy, verified bottom-up against
// a set of trusted authorities — so every policy decision point the paper
// describes is exercised by the same kind of evidence.
package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Credential is a signed statement binding a subject name to a public key,
// optionally carrying capabilities (for §7 group/capability policies).
// Chain holds the issuing credential for proxies; identity credentials are
// issued directly by an authority and have a nil Chain.
type Credential struct {
	Subject      string      `json:"subject"`
	Issuer       string      `json:"issuer"`
	PublicKey    []byte      `json:"publicKey"`
	NotBefore    time.Time   `json:"notBefore"`
	NotAfter     time.Time   `json:"notAfter"`
	Capabilities []string    `json:"capabilities,omitempty"`
	IsProxy      bool        `json:"isProxy,omitempty"`
	Signature    []byte      `json:"signature"`
	Chain        *Credential `json:"chain,omitempty"`
}

// signedBytes returns the canonical byte string covered by Signature.
func (c *Credential) signedBytes() []byte {
	caps := append([]string(nil), c.Capabilities...)
	sort.Strings(caps)
	payload := struct {
		Subject      string
		Issuer       string
		PublicKey    string
		NotBefore    int64
		NotAfter     int64
		Capabilities []string
		IsProxy      bool
	}{
		c.Subject, c.Issuer, base64.StdEncoding.EncodeToString(c.PublicKey),
		c.NotBefore.Unix(), c.NotAfter.Unix(), caps, c.IsProxy,
	}
	b, err := json.Marshal(payload)
	if err != nil {
		// Marshaling a flat struct of strings/ints cannot fail.
		panic(err)
	}
	return b
}

// HasCapability reports whether the credential (or any credential in its
// issuing chain) asserts the named capability.
func (c *Credential) HasCapability(cap string) bool {
	for cur := c; cur != nil; cur = cur.Chain {
		for _, have := range cur.Capabilities {
			if have == cap {
				return true
			}
		}
	}
	return false
}

// EndEntity returns the subject of the identity credential at the root of a
// proxy chain: proxies act on behalf of this identity.
func (c *Credential) EndEntity() string {
	cur := c
	for cur.Chain != nil {
		cur = cur.Chain
	}
	return cur.Subject
}

// KeyPair couples a credential with its private key, representing a
// principal able to sign proxies and authentication proofs.
type KeyPair struct {
	Credential *Credential
	private    ed25519.PrivateKey
}

// Sign signs msg with the principal's private key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Delegate issues a short-lived proxy credential chained to this principal,
// as GSI single sign-on does. The proxy inherits no capabilities implicitly;
// pass any to be asserted (they remain discoverable on the chain regardless).
func (k *KeyPair) Delegate(lifetime time.Duration, now time.Time, caps ...string) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	proxy := &Credential{
		Subject:      k.Credential.Subject + "/proxy",
		Issuer:       k.Credential.Subject,
		PublicKey:    pub,
		NotBefore:    now.Add(-time.Minute),
		NotAfter:     now.Add(lifetime),
		Capabilities: caps,
		IsProxy:      true,
		Chain:        k.Credential,
	}
	proxy.Signature = ed25519.Sign(k.private, proxy.signedBytes())
	return &KeyPair{Credential: proxy, private: priv}, nil
}

// Authority is a certificate authority trusted to issue identity and
// capability credentials.
type Authority struct {
	Name    string
	keyPair ed25519.PrivateKey
	public  ed25519.PublicKey
}

// NewAuthority creates a CA with a fresh key.
func NewAuthority(name string) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Authority{Name: name, keyPair: priv, public: pub}, nil
}

// PublicKey returns the CA verification key, distributed to verifiers.
func (a *Authority) PublicKey() []byte { return a.public }

// Issue creates an identity credential for subject, valid for lifetime from
// now, optionally asserting capabilities.
func (a *Authority) Issue(subject string, lifetime time.Duration, now time.Time, caps ...string) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	cred := &Credential{
		Subject:      subject,
		Issuer:       a.Name,
		PublicKey:    pub,
		NotBefore:    now.Add(-time.Minute),
		NotAfter:     now.Add(lifetime),
		Capabilities: caps,
	}
	cred.Signature = ed25519.Sign(a.keyPair, cred.signedBytes())
	return &KeyPair{Credential: cred, private: priv}, nil
}

// Verification errors.
var (
	ErrUntrustedIssuer = errors.New("gsi: credential issued by untrusted authority")
	ErrBadSignature    = errors.New("gsi: bad credential signature")
	ErrExpired         = errors.New("gsi: credential outside validity interval")
	ErrBadChain        = errors.New("gsi: malformed proxy chain")
)

// TrustStore verifies credential chains against a set of trusted CA keys.
type TrustStore struct {
	roots map[string]ed25519.PublicKey
}

// NewTrustStore returns an empty trust store.
func NewTrustStore() *TrustStore { return &TrustStore{roots: map[string]ed25519.PublicKey{}} }

// Trust adds a CA's verification key.
func (ts *TrustStore) Trust(name string, publicKey []byte) {
	ts.roots[name] = ed25519.PublicKey(publicKey)
}

// TrustAuthority is shorthand for Trust with an in-process Authority.
func (ts *TrustStore) TrustAuthority(a *Authority) { ts.Trust(a.Name, a.PublicKey()) }

// Verify walks the chain from the presented credential down to an identity
// credential issued by a trusted authority, checking signatures and
// validity intervals at every hop.
func (ts *TrustStore) Verify(c *Credential, now time.Time) error {
	const maxChain = 16
	for depth := 0; c != nil; depth++ {
		if depth > maxChain {
			return fmt.Errorf("%w: chain too long", ErrBadChain)
		}
		if now.Before(c.NotBefore) || now.After(c.NotAfter) {
			return fmt.Errorf("%w: %s valid %s..%s", ErrExpired, c.Subject, c.NotBefore, c.NotAfter)
		}
		if c.Chain != nil {
			// Proxy hop: signed by the parent credential's key.
			if !c.IsProxy {
				return fmt.Errorf("%w: non-proxy credential with chain", ErrBadChain)
			}
			if c.Issuer != c.Chain.Subject {
				return fmt.Errorf("%w: issuer %q != parent subject %q", ErrBadChain, c.Issuer, c.Chain.Subject)
			}
			parentKey := ed25519.PublicKey(c.Chain.PublicKey)
			if len(parentKey) != ed25519.PublicKeySize ||
				!ed25519.Verify(parentKey, c.signedBytes(), c.Signature) {
				return fmt.Errorf("%w: proxy %s", ErrBadSignature, c.Subject)
			}
			c = c.Chain
			continue
		}
		// Root hop: signed by a trusted authority.
		rootKey, ok := ts.roots[c.Issuer]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUntrustedIssuer, c.Issuer)
		}
		if !ed25519.Verify(rootKey, c.signedBytes(), c.Signature) {
			return fmt.Errorf("%w: identity %s", ErrBadSignature, c.Subject)
		}
		return nil
	}
	return ErrBadChain
}

// Marshal serializes a credential chain for transport.
func (c *Credential) Marshal() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		panic(err) // flat JSON-safe struct
	}
	return b
}

// UnmarshalCredential parses a credential chain.
func UnmarshalCredential(b []byte) (*Credential, error) {
	var c Credential
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("gsi: bad credential encoding: %w", err)
	}
	return &c, nil
}
