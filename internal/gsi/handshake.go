package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"mds2/internal/softstate"
)

// SASLMechanism is the mechanism name used in LDAP SASL binds.
const SASLMechanism = "GSI"

// The handshake is a two-round mutual authentication bound into the LDAP
// SASL bind exchange (§10.2: "GSI single sign-on authentication"):
//
//	client → server: hello{clientCredChain, clientNonce}
//	server → client: (saslBindInProgress) challenge{serverCredChain,
//	                  serverNonce, sig_server(clientNonce)}
//	client → server: proof{clientNonce, sig_client(serverNonce)}
//	server → client: success
//
// Each side verifies the peer's chain against its trust store and the
// peer's signature over its own fresh nonce, so both parties prove
// possession of the private key matching a trusted credential.

type helloToken struct {
	Credential  json.RawMessage `json:"credential"`
	ClientNonce []byte          `json:"clientNonce"`
}

type challengeToken struct {
	Credential  json.RawMessage `json:"credential"`
	ServerNonce []byte          `json:"serverNonce"`
	ClientSig   []byte          `json:"clientSig"` // server's signature over clientNonce
}

type proofToken struct {
	ClientNonce []byte `json:"clientNonce"`
	ServerSig   []byte `json:"serverSig"` // client's signature over serverNonce
}

// ErrHandshake reports a failed mutual authentication exchange.
var ErrHandshake = errors.New("gsi: handshake failed")

const nonceSize = 32

func newNonce() ([]byte, error) {
	n := make([]byte, nonceSize)
	if _, err := rand.Read(n); err != nil {
		return nil, err
	}
	return n, nil
}

// ClientHandshake drives the client side of the exchange. The transport
// sends the first token, relays the server's challenge back in, and sends
// the returned proof; on success it reports the verified server credential.
type ClientHandshake struct {
	keys   *KeyPair
	trust  *TrustStore
	now    func() time.Time
	nonce  []byte
	server *Credential
}

// NewClientHandshake prepares a client exchange.
func NewClientHandshake(keys *KeyPair, trust *TrustStore, now func() time.Time) *ClientHandshake {
	if now == nil {
		now = softstate.RealClock{}.Now
	}
	return &ClientHandshake{keys: keys, trust: trust, now: now}
}

// Hello produces the initial token.
func (h *ClientHandshake) Hello() ([]byte, error) {
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	h.nonce = nonce
	return json.Marshal(helloToken{Credential: h.keys.Credential.Marshal(), ClientNonce: nonce})
}

// Respond verifies the server challenge and produces the final proof token.
func (h *ClientHandshake) Respond(challenge []byte) ([]byte, error) {
	var tok challengeToken
	if err := json.Unmarshal(challenge, &tok); err != nil {
		return nil, fmt.Errorf("%w: bad challenge: %v", ErrHandshake, err)
	}
	serverCred, err := UnmarshalCredential(tok.Credential)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := h.trust.Verify(serverCred, h.now()); err != nil {
		return nil, fmt.Errorf("%w: server credential: %v", ErrHandshake, err)
	}
	key := ed25519.PublicKey(serverCred.PublicKey)
	if len(key) != ed25519.PublicKeySize || !ed25519.Verify(key, h.nonce, tok.ClientSig) {
		return nil, fmt.Errorf("%w: server failed proof of possession", ErrHandshake)
	}
	h.server = serverCred
	return json.Marshal(proofToken{ClientNonce: h.nonce, ServerSig: h.keys.Sign(tok.ServerNonce)})
}

// Server returns the verified server credential after Respond succeeds.
func (h *ClientHandshake) Server() *Credential { return h.server }

// ServerHandshake drives the server side across the two bind requests of
// one SASL session.
type ServerHandshake struct {
	keys  *KeyPair
	trust *TrustStore
	now   func() time.Time

	nonce       []byte
	clientCred  *Credential
	clientNonce []byte
	done        bool
}

// NewServerHandshake prepares a server exchange.
func NewServerHandshake(keys *KeyPair, trust *TrustStore, now func() time.Time) *ServerHandshake {
	if now == nil {
		now = softstate.RealClock{}.Now
	}
	return &ServerHandshake{keys: keys, trust: trust, now: now}
}

// Challenge processes the client hello and produces the server challenge.
func (s *ServerHandshake) Challenge(hello []byte) ([]byte, error) {
	var tok helloToken
	if err := json.Unmarshal(hello, &tok); err != nil {
		return nil, fmt.Errorf("%w: bad hello: %v", ErrHandshake, err)
	}
	cred, err := UnmarshalCredential(tok.Credential)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := s.trust.Verify(cred, s.now()); err != nil {
		return nil, fmt.Errorf("%w: client credential: %v", ErrHandshake, err)
	}
	if len(tok.ClientNonce) != nonceSize {
		return nil, fmt.Errorf("%w: bad client nonce", ErrHandshake)
	}
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	s.nonce = nonce
	s.clientCred = cred
	s.clientNonce = tok.ClientNonce
	return json.Marshal(challengeToken{
		Credential:  s.keys.Credential.Marshal(),
		ServerNonce: nonce,
		ClientSig:   s.keys.Sign(tok.ClientNonce),
	})
}

// Finish verifies the client's proof, completing mutual authentication and
// returning the client's verified credential.
func (s *ServerHandshake) Finish(proof []byte) (*Credential, error) {
	if s.clientCred == nil {
		return nil, fmt.Errorf("%w: proof before hello", ErrHandshake)
	}
	var tok proofToken
	if err := json.Unmarshal(proof, &tok); err != nil {
		return nil, fmt.Errorf("%w: bad proof: %v", ErrHandshake, err)
	}
	key := ed25519.PublicKey(s.clientCred.PublicKey)
	if !ed25519.Verify(key, s.nonce, tok.ServerSig) {
		return nil, fmt.Errorf("%w: client failed proof of possession", ErrHandshake)
	}
	s.done = true
	return s.clientCred, nil
}

// Done reports whether the exchange completed successfully.
func (s *ServerHandshake) Done() bool { return s.done }

// SignMessage produces a detached signature over a GRRP message body, the
// second integrity option of §7 ("cryptographically sign each GRRP message
// with the credentials of the registering entity").
func SignMessage(keys *KeyPair, body []byte) []byte {
	return keys.Sign(body)
}

// VerifyMessage checks a detached GRRP message signature against the
// sender's credential chain.
func VerifyMessage(trust *TrustStore, cred *Credential, body, sig []byte, now time.Time) error {
	if err := trust.Verify(cred, now); err != nil {
		return err
	}
	key := ed25519.PublicKey(cred.PublicKey)
	if len(key) != ed25519.PublicKeySize || !ed25519.Verify(key, body, sig) {
		return ErrBadSignature
	}
	return nil
}
