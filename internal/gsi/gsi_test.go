package gsi

import (
	"testing"
	"time"

	"mds2/internal/ldap"
)

var testEpoch = time.Date(2001, 6, 1, 12, 0, 0, 0, time.UTC)

func testCA(t *testing.T) (*Authority, *TrustStore) {
	t.Helper()
	ca, err := NewAuthority("o=Grid CA")
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore()
	ts.TrustAuthority(ca)
	return ca, ts
}

func TestIssueAndVerifyIdentity(t *testing.T) {
	ca, ts := testCA(t)
	alice, err := ca.Issue("cn=alice", time.Hour, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(alice.Credential, testEpoch); err != nil {
		t.Fatal(err)
	}
	if alice.Credential.EndEntity() != "cn=alice" {
		t.Errorf("end entity = %q", alice.Credential.EndEntity())
	}
}

func TestVerifyRejectsUntrustedCA(t *testing.T) {
	ca, _ := testCA(t)
	rogue, err := NewAuthority("o=Rogue CA")
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore()
	ts.TrustAuthority(rogue) // trusts rogue, not ca
	alice, _ := ca.Issue("cn=alice", time.Hour, testEpoch)
	if err := ts.Verify(alice.Credential, testEpoch); err == nil {
		t.Fatal("credential from untrusted CA should fail")
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	ca, ts := testCA(t)
	alice, _ := ca.Issue("cn=alice", time.Hour, testEpoch)
	if err := ts.Verify(alice.Credential, testEpoch.Add(2*time.Hour)); err == nil {
		t.Fatal("expired credential should fail")
	}
	if err := ts.Verify(alice.Credential, testEpoch.Add(-time.Hour)); err == nil {
		t.Fatal("not-yet-valid credential should fail")
	}
}

func TestVerifyRejectsTamperedCredential(t *testing.T) {
	ca, ts := testCA(t)
	alice, _ := ca.Issue("cn=alice", time.Hour, testEpoch)
	forged := *alice.Credential
	forged.Subject = "cn=mallory"
	if err := ts.Verify(&forged, testEpoch); err == nil {
		t.Fatal("tampered subject should fail verification")
	}
	forged2 := *alice.Credential
	forged2.Capabilities = []string{"vo:admin"}
	if err := ts.Verify(&forged2, testEpoch); err == nil {
		t.Fatal("tampered capabilities should fail verification")
	}
}

func TestProxyDelegationChain(t *testing.T) {
	ca, ts := testCA(t)
	alice, _ := ca.Issue("cn=alice", 10*time.Hour, testEpoch)
	proxy, err := alice.Delegate(time.Hour, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(proxy.Credential, testEpoch); err != nil {
		t.Fatal(err)
	}
	if proxy.Credential.EndEntity() != "cn=alice" {
		t.Errorf("proxy end entity = %q", proxy.Credential.EndEntity())
	}
	// Second-level delegation.
	proxy2, err := proxy.Delegate(30*time.Minute, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(proxy2.Credential, testEpoch); err != nil {
		t.Fatal(err)
	}
	// Proxy expiry is independent of identity expiry.
	if err := ts.Verify(proxy.Credential, testEpoch.Add(2*time.Hour)); err == nil {
		t.Fatal("expired proxy should fail even with live identity")
	}
}

func TestProxyCannotEscalate(t *testing.T) {
	ca, ts := testCA(t)
	alice, _ := ca.Issue("cn=alice", 10*time.Hour, testEpoch)
	proxy, _ := alice.Delegate(time.Hour, testEpoch)
	// Graft the proxy onto a different (trusted) identity: signature check
	// must fail because bob's key did not sign it.
	bob, _ := ca.Issue("cn=bob", 10*time.Hour, testEpoch)
	forged := *proxy.Credential
	forged.Chain = bob.Credential
	forged.Issuer = "cn=bob"
	if err := ts.Verify(&forged, testEpoch); err == nil {
		t.Fatal("regrafted proxy chain should fail")
	}
}

func TestCredentialMarshalRoundTrip(t *testing.T) {
	ca, ts := testCA(t)
	alice, _ := ca.Issue("cn=alice", time.Hour, testEpoch, "vo:physics")
	proxy, _ := alice.Delegate(time.Hour, testEpoch)
	b := proxy.Credential.Marshal()
	back, err := UnmarshalCredential(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(back, testEpoch); err != nil {
		t.Fatalf("round-tripped chain fails verification: %v", err)
	}
	if !back.HasCapability("vo:physics") {
		t.Error("capability lost in round trip")
	}
	if _, err := UnmarshalCredential([]byte("{garbage")); err == nil {
		t.Error("bad encoding should fail")
	}
}

func TestMutualHandshake(t *testing.T) {
	ca, ts := testCA(t)
	client, _ := ca.Issue("cn=alice", time.Hour, testEpoch)
	server, _ := ca.Issue("cn=gris.hostX", time.Hour, testEpoch)
	now := func() time.Time { return testEpoch }

	ch := NewClientHandshake(client, ts, now)
	sh := NewServerHandshake(server, ts, now)

	hello, err := ch.Hello()
	if err != nil {
		t.Fatal(err)
	}
	challenge, err := sh.Challenge(hello)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ch.Respond(challenge)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := sh.Finish(proof)
	if err != nil {
		t.Fatal(err)
	}
	if cred.EndEntity() != "cn=alice" {
		t.Errorf("server saw %q", cred.EndEntity())
	}
	if ch.Server().EndEntity() != "cn=gris.hostX" {
		t.Errorf("client saw %q", ch.Server().EndEntity())
	}
	if !sh.Done() {
		t.Error("server handshake should be done")
	}
}

func TestHandshakeRejectsUntrustedClient(t *testing.T) {
	ca, ts := testCA(t)
	rogueCA, _ := NewAuthority("o=Rogue")
	mallory, _ := rogueCA.Issue("cn=mallory", time.Hour, testEpoch)
	server, _ := ca.Issue("cn=gris", time.Hour, testEpoch)
	now := func() time.Time { return testEpoch }

	rogueTrust := NewTrustStore()
	rogueTrust.TrustAuthority(rogueCA)
	rogueTrust.TrustAuthority(ca)
	ch := NewClientHandshake(mallory, rogueTrust, now)
	sh := NewServerHandshake(server, ts, now)

	hello, _ := ch.Hello()
	if _, err := sh.Challenge(hello); err == nil {
		t.Fatal("untrusted client should be rejected at challenge")
	}
}

func TestHandshakeRejectsStolenCredential(t *testing.T) {
	// Mallory replays alice's public credential but lacks her private key.
	ca, ts := testCA(t)
	alice, _ := ca.Issue("cn=alice", time.Hour, testEpoch)
	malloryKeys, _ := ca.Issue("cn=mallory", time.Hour, testEpoch)
	server, _ := ca.Issue("cn=gris", time.Hour, testEpoch)
	now := func() time.Time { return testEpoch }

	// Client presents alice's credential but signs with mallory's key.
	imposter := &KeyPair{Credential: alice.Credential, private: malloryKeys.private}
	ch := NewClientHandshake(imposter, ts, now)
	sh := NewServerHandshake(server, ts, now)
	hello, _ := ch.Hello()
	challenge, err := sh.Challenge(hello)
	if err != nil {
		t.Fatal(err) // credential itself is genuine
	}
	proof, err := ch.Respond(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Finish(proof); err == nil {
		t.Fatal("imposter lacking the private key must fail the proof")
	}
}

func TestHandshakeProofBeforeHello(t *testing.T) {
	ca, ts := testCA(t)
	server, _ := ca.Issue("cn=gris", time.Hour, testEpoch)
	sh := NewServerHandshake(server, ts, func() time.Time { return testEpoch })
	if _, err := sh.Finish([]byte("{}")); err == nil {
		t.Fatal("proof before hello should fail")
	}
}

func TestSignedMessages(t *testing.T) {
	ca, ts := testCA(t)
	prov, _ := ca.Issue("cn=gris.hostX", time.Hour, testEpoch)
	body := []byte("GRRP registration body")
	sig := SignMessage(prov, body)
	if err := VerifyMessage(ts, prov.Credential, body, sig, testEpoch); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMessage(ts, prov.Credential, []byte("tampered"), sig, testEpoch); err == nil {
		t.Fatal("tampered body should fail")
	}
	if err := VerifyMessage(ts, prov.Credential, body, sig, testEpoch.Add(48*time.Hour)); err == nil {
		t.Fatal("expired credential should fail message verification")
	}
}

func policyEntry() *ldap.Entry {
	return ldap.NewEntry(ldap.MustParseDN("hn=hostX, o=grid")).
		Add("objectclass", "computer").
		Add("hn", "hostX").
		Add("system", "linux redhat 6.2").
		Add("load5", "0.7")
}

func TestPostureOpen(t *testing.T) {
	pol := NewPolicy(PostureOpen)
	got := pol.Redact(nil, policyEntry()) // anonymous
	if got == nil || len(got.Attrs) != 4 {
		t.Fatalf("open posture should reveal everything: %v", got)
	}
}

func TestPostureExistenceOnly(t *testing.T) {
	pol := NewPolicy(PostureExistenceOnly)
	got := pol.Redact(nil, policyEntry())
	if got == nil {
		t.Fatal("existence must be revealed")
	}
	if len(got.Attrs) != 1 || !got.Has("objectclass") {
		t.Fatalf("only objectclass should remain: %v", got.Attrs)
	}
	if got.Has("load5") {
		t.Error("load must be hidden")
	}
}

func TestPostureRestricted(t *testing.T) {
	// §7's worked example: OS type is public to the directory, load only
	// for specific users.
	pol := NewPolicy(PostureRestricted).
		Grant("anonymous", "objectclass", "system").
		Grant("cn=scheduler", "load5")

	anon := pol.Redact(nil, policyEntry())
	if anon == nil || !anon.Has("system") || anon.Has("load5") {
		t.Fatalf("anonymous view wrong: %v", anon)
	}
	sched := &Principal{Subject: "cn=scheduler"}
	view := pol.Redact(sched, policyEntry())
	if view == nil || !view.Has("load5") || !view.Has("system") {
		t.Fatalf("scheduler view wrong: %v", view)
	}
	other := &Principal{Subject: "cn=other"}
	oview := pol.Redact(other, policyEntry())
	if oview == nil || oview.Has("load5") {
		t.Fatalf("other view wrong: %v", oview)
	}
}

func TestPostureRestrictedHidesEntryWithoutRules(t *testing.T) {
	pol := NewPolicy(PostureRestricted) // no rules at all
	if got := pol.Redact(nil, policyEntry()); got != nil {
		t.Fatalf("no rules: entry should be hidden, got %v", got)
	}
}

func TestPostureTrustedDirectory(t *testing.T) {
	pol := NewPolicy(PostureTrustedDirectory).Grant("anonymous", "objectclass")
	dir := &Principal{Subject: "cn=giis.vo", TrustedDirectory: true}
	if got := pol.Redact(dir, policyEntry()); got == nil || len(got.Attrs) != 4 {
		t.Fatalf("trusted directory should see all: %v", got)
	}
	user := &Principal{Subject: "cn=user"}
	if got := pol.Redact(user, policyEntry()); got == nil || got.Has("load5") {
		t.Fatalf("non-directory falls back to rules: %v", got)
	}
}

func TestCapabilityRules(t *testing.T) {
	pol := NewPolicy(PostureRestricted).Grant("cap:vo:physics", "*")
	member := &Principal{Subject: "cn=x", Capabilities: []string{"vo:physics"}}
	if got := pol.Redact(member, policyEntry()); got == nil || len(got.Attrs) != 4 {
		t.Fatalf("capability holder should see all: %v", got)
	}
	outsider := &Principal{Subject: "cn=y"}
	if got := pol.Redact(outsider, policyEntry()); got != nil {
		t.Fatalf("outsider should see nothing: %v", got)
	}
}

func TestPrincipalFromCredential(t *testing.T) {
	ca, _ := testCA(t)
	alice, _ := ca.Issue("cn=alice", time.Hour, testEpoch, "vo:physics")
	proxy, _ := alice.Delegate(time.Hour, testEpoch, "session:tmp")
	p := PrincipalFromCredential(proxy.Credential, []string{"cn=alice"})
	if p.Subject != "cn=alice" {
		t.Errorf("subject = %q", p.Subject)
	}
	if !p.HasCapability("vo:physics") || !p.HasCapability("session:tmp") {
		t.Errorf("capabilities = %v", p.Capabilities)
	}
	if !p.TrustedDirectory {
		t.Error("trusted directory flag lost")
	}
	var nilP *Principal
	if nilP.HasCapability("x") {
		t.Error("nil principal has no capabilities")
	}
}

func TestFilterAuthorized(t *testing.T) {
	pol := NewPolicy(PostureRestricted).
		Grant("anonymous", "objectclass", "system").
		Grant("cn=scheduler", "load5", "system")
	sample := policyEntry()

	okFilter := ldap.MustParseFilter("(system=linux*)")
	loadFilter := ldap.MustParseFilter("(&(system=linux*)(load5<=1.0))")

	if !pol.FilterAuthorized(nil, okFilter, sample) {
		t.Error("anonymous may filter on system")
	}
	if pol.FilterAuthorized(nil, loadFilter, sample) {
		t.Error("anonymous must not filter on load5 (information leak)")
	}
	sched := &Principal{Subject: "cn=scheduler"}
	if !pol.FilterAuthorized(sched, loadFilter, sample) {
		t.Error("scheduler may filter on load5")
	}
	if !pol.FilterAuthorized(sched, nil, sample) {
		t.Error("nil filter is always authorized")
	}
}

func TestPostureStrings(t *testing.T) {
	for p := PostureTrustedDirectory; p <= PostureOpen; p++ {
		if p.String() == "unknown" {
			t.Errorf("posture %d has no name", p)
		}
	}
}

func BenchmarkVerifyProxyChain(b *testing.B) {
	ca, _ := NewAuthority("o=CA")
	ts := NewTrustStore()
	ts.TrustAuthority(ca)
	id, _ := ca.Issue("cn=alice", 10*time.Hour, testEpoch)
	proxy, _ := id.Delegate(time.Hour, testEpoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ts.Verify(proxy.Credential, testEpoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRedact(b *testing.B) {
	pol := NewPolicy(PostureRestricted).
		Grant("anonymous", "objectclass", "system").
		Grant("cn=scheduler", "load5")
	p := &Principal{Subject: "cn=scheduler"}
	e := policyEntry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.Redact(p, e)
	}
}
