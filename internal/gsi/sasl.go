package gsi

import (
	"sync"
	"time"

	"mds2/internal/softstate"
)

// SASLBinder manages the per-connection state of GSI SASL bind exchanges on
// the server side. GRIS and GIIS both embed one, mirroring how MDS-2 loads
// the same SASL/GSS bindings into every OpenLDAP front end (§10.2).
//
// The zero value is not usable; construct with NewSASLBinder. A nil
// *SASLBinder rejects every bind step, which lets servers leave GSI
// unconfigured.
type SASLBinder struct {
	keys  *KeyPair
	trust *TrustStore
	now   func() time.Time
	// trustedDirectories lists subjects granted the §7 directory role.
	trustedDirectories []string

	mu         sync.Mutex
	handshakes map[any]*ServerHandshake
}

// NewSASLBinder builds a binder for a service identity.
func NewSASLBinder(keys *KeyPair, trust *TrustStore, now func() time.Time,
	trustedDirectories []string) *SASLBinder {
	if now == nil {
		now = softstate.RealClock{}.Now
	}
	return &SASLBinder{
		keys: keys, trust: trust, now: now,
		trustedDirectories: trustedDirectories,
		handshakes:         map[any]*ServerHandshake{},
	}
}

// StepResult reports one bind step's outcome.
type StepResult struct {
	// Challenge is non-nil when the exchange continues (send
	// saslBindInProgress with these server creds).
	Challenge []byte
	// Principal is non-nil when the exchange completed successfully.
	Principal *Principal
}

// Step advances the exchange for a connection identified by connKey
// (any stable per-connection pointer). It returns a challenge, a completed
// principal, or an error; on error the connection's exchange state is
// discarded so the client may start over.
func (b *SASLBinder) Step(connKey any, creds []byte) (StepResult, error) {
	if b == nil || b.keys == nil || b.trust == nil {
		return StepResult{}, ErrHandshake
	}
	b.mu.Lock()
	hs, inProgress := b.handshakes[connKey]
	b.mu.Unlock()
	if !inProgress {
		hs = NewServerHandshake(b.keys, b.trust, b.now)
		challenge, err := hs.Challenge(creds)
		if err != nil {
			return StepResult{}, err
		}
		b.mu.Lock()
		b.handshakes[connKey] = hs
		b.mu.Unlock()
		return StepResult{Challenge: challenge}, nil
	}
	b.mu.Lock()
	delete(b.handshakes, connKey)
	b.mu.Unlock()
	cred, err := hs.Finish(creds)
	if err != nil {
		return StepResult{}, err
	}
	return StepResult{Principal: PrincipalFromCredential(cred, b.trustedDirectories)}, nil
}

// Forget discards any half-finished exchange for a connection (call on
// disconnect).
func (b *SASLBinder) Forget(connKey any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.handshakes, connKey)
	b.mu.Unlock()
}
