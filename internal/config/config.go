// Package config implements the lightweight VO-formation tooling the paper
// lists as future work (§12: "develop flexible configuration tools to
// enable lightweight VO formation"): a small declarative text format
// describing directories, hosts, and registration relationships, and a
// builder that instantiates the topology on a core.Grid.
//
// Format (line-oriented; '#' comments):
//
//	seed 42
//
//	directory vo-dir {
//	  suffix vo=alliance
//	  strategy chain            # chain | cache | referral | bloom
//	  cache-ttl 30s             # cache/bloom strategies
//	  accept-vo alliance        # admission policy
//	  parent other-dir          # register upward
//	  vo alliance               # VO named in upward registration
//	}
//
//	host r1 {
//	  org o1
//	  cpus 16
//	  memory-mb 4096
//	  os linux redhat
//	  register vo-dir           # repeatable
//	  vo alliance
//	  interval 10s
//	  ttl 60s
//	  nws                       # attach a network-weather provider
//	}
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mds2/internal/core"
	"mds2/internal/giis"
	"mds2/internal/hostinfo"
	"mds2/internal/nws"
)

// Topology is a parsed grid description.
type Topology struct {
	Seed        int64
	Directories []DirectorySpec
	Hosts       []HostSpec
}

// DirectorySpec describes one GIIS.
type DirectorySpec struct {
	Name     string
	Suffix   string
	Strategy string
	CacheTTL time.Duration
	AcceptVO string
	Parent   string
	VO       string
	Interval time.Duration
	TTL      time.Duration
}

// HostSpec describes one GRIS-fronted host.
type HostSpec struct {
	Name       string
	Org        string
	CPUs       int
	MemoryMB   int
	OS         string
	RegisterTo []string
	VO         string
	Interval   time.Duration
	TTL        time.Duration
	NWS        bool
	Seed       int64
}

// Parse reads a topology description.
func Parse(r io.Reader) (*Topology, error) {
	top := &Topology{Seed: 1}
	sc := bufio.NewScanner(r)
	lineNo := 0
	var block *blockState
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case block == nil && fields[0] == "seed" && len(fields) == 2:
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("config: line %d: bad seed: %v", lineNo, err)
			}
			top.Seed = v
		case block == nil && (fields[0] == "directory" || fields[0] == "host"):
			if len(fields) != 3 || fields[2] != "{" {
				return nil, fmt.Errorf("config: line %d: expected %q NAME {", lineNo, fields[0])
			}
			block = &blockState{kind: fields[0], name: fields[1], props: map[string][]string{}}
		case block != nil && line == "}":
			if err := top.finish(block, lineNo); err != nil {
				return nil, err
			}
			block = nil
		case block != nil:
			key := fields[0]
			block.props[key] = append(block.props[key], strings.TrimSpace(strings.TrimPrefix(line, key)))
		default:
			return nil, fmt.Errorf("config: line %d: unexpected %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if block != nil {
		return nil, fmt.Errorf("config: unterminated %s block %q", block.kind, block.name)
	}
	return top, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Topology, error) { return Parse(strings.NewReader(s)) }

type blockState struct {
	kind  string
	name  string
	props map[string][]string
}

func (b *blockState) one(key, def string) string {
	if vs := b.props[key]; len(vs) > 0 {
		return vs[len(vs)-1]
	}
	return def
}

func (b *blockState) duration(key string, def time.Duration) (time.Duration, error) {
	s := b.one(key, "")
	if s == "" {
		return def, nil
	}
	return time.ParseDuration(s)
}

func (b *blockState) intVal(key string, def int) (int, error) {
	s := b.one(key, "")
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func (t *Topology) finish(b *blockState, lineNo int) error {
	switch b.kind {
	case "directory":
		d := DirectorySpec{
			Name:     b.name,
			Suffix:   b.one("suffix", ""),
			Strategy: b.one("strategy", "chain"),
			AcceptVO: b.one("accept-vo", ""),
			Parent:   b.one("parent", ""),
			VO:       b.one("vo", ""),
		}
		if d.Suffix == "" {
			return fmt.Errorf("config: line %d: directory %q needs a suffix", lineNo, b.name)
		}
		var err error
		if d.CacheTTL, err = b.duration("cache-ttl", 30*time.Second); err != nil {
			return fmt.Errorf("config: directory %q: %v", b.name, err)
		}
		if d.Interval, err = b.duration("interval", 30*time.Second); err != nil {
			return err
		}
		if d.TTL, err = b.duration("ttl", 2*time.Minute); err != nil {
			return err
		}
		switch d.Strategy {
		case "chain", "cache", "referral", "bloom":
		default:
			return fmt.Errorf("config: directory %q: unknown strategy %q", b.name, d.Strategy)
		}
		t.Directories = append(t.Directories, d)
	case "host":
		h := HostSpec{
			Name:       b.name,
			Org:        b.one("org", "grid"),
			OS:         b.one("os", "linux redhat"),
			RegisterTo: b.props["register"],
			VO:         b.one("vo", ""),
			NWS:        len(b.props["nws"]) > 0 || b.one("nws", "") != "",
		}
		var err error
		if h.CPUs, err = b.intVal("cpus", 4); err != nil {
			return fmt.Errorf("config: host %q: %v", b.name, err)
		}
		if h.MemoryMB, err = b.intVal("memory-mb", 256*h.CPUs); err != nil {
			return err
		}
		if h.Interval, err = b.duration("interval", 10*time.Second); err != nil {
			return err
		}
		if h.TTL, err = b.duration("ttl", time.Minute); err != nil {
			return err
		}
		if seedStr := b.one("seed", ""); seedStr != "" {
			if h.Seed, err = strconv.ParseInt(seedStr, 10, 64); err != nil {
				return fmt.Errorf("config: host %q: bad seed: %v", b.name, err)
			}
		}
		t.Hosts = append(t.Hosts, h)
	default:
		return fmt.Errorf("config: unknown block kind %q", b.kind)
	}
	return nil
}

// Validate checks cross references before building.
func (t *Topology) Validate() error {
	dirs := map[string]bool{}
	for _, d := range t.Directories {
		if dirs[d.Name] {
			return fmt.Errorf("config: duplicate directory %q", d.Name)
		}
		dirs[d.Name] = true
	}
	for _, d := range t.Directories {
		if d.Parent != "" && !dirs[d.Parent] {
			return fmt.Errorf("config: directory %q: unknown parent %q", d.Name, d.Parent)
		}
		if d.Parent == d.Name {
			return fmt.Errorf("config: directory %q registers with itself", d.Name)
		}
	}
	hosts := map[string]bool{}
	for _, h := range t.Hosts {
		if hosts[h.Name] {
			return fmt.Errorf("config: duplicate host %q", h.Name)
		}
		hosts[h.Name] = true
		if dirs[h.Name] {
			return fmt.Errorf("config: name %q used for both host and directory", h.Name)
		}
		for _, target := range h.RegisterTo {
			if !dirs[target] {
				return fmt.Errorf("config: host %q: unknown directory %q", h.Name, target)
			}
		}
	}
	return nil
}

// Built is an instantiated topology.
type Built struct {
	Grid        *core.Grid
	Directories map[string]*core.DirectoryNode
	Hosts       map[string]*core.HostNode
	// Weather is the shared NWS service when any host enables nws.
	Weather *nws.Service
}

// Build instantiates the topology on a fresh simulated grid.
func (t *Topology) Build() (*Built, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	g, err := core.NewSimGrid(t.Seed)
	if err != nil {
		return nil, err
	}
	built := &Built{Grid: g, Directories: map[string]*core.DirectoryNode{},
		Hosts: map[string]*core.HostNode{}}
	fail := func(err error) (*Built, error) {
		g.Close()
		return nil, err
	}
	for _, d := range t.Directories {
		var strategy giis.Strategy
		switch d.Strategy {
		case "chain":
			strategy = giis.NewChaining()
		case "cache":
			strategy = giis.NewCachedIndex(d.CacheTTL)
		case "referral":
			strategy = giis.NewReferral()
		case "bloom":
			strategy = giis.NewBloomRouted(d.CacheTTL, 1<<14)
		}
		node, err := g.AddDirectory(d.Name, core.DirectoryOptions{
			Suffix: d.Suffix, Strategy: strategy, AcceptVO: d.AcceptVO})
		if err != nil {
			return fail(fmt.Errorf("config: directory %q: %w", d.Name, err))
		}
		built.Directories[d.Name] = node
	}
	// Wire the hierarchy after all directories exist.
	for _, d := range t.Directories {
		if d.Parent == "" {
			continue
		}
		built.Directories[d.Name].RegisterWith(built.Directories[d.Parent], d.VO, d.Interval, d.TTL)
	}
	for i, h := range t.Hosts {
		opts := core.HostOptions{
			Org: h.Org,
			Spec: hostinfo.Spec{OS: h.OS, OSVer: "1.0", CPUType: "ia32",
				CPUCount: h.CPUs, MemoryMB: h.MemoryMB},
			Seed: h.Seed,
		}
		if opts.Seed == 0 {
			opts.Seed = t.Seed + int64(i) + 1
		}
		if h.NWS {
			if built.Weather == nil {
				built.Weather = nws.NewService()
			}
			opts.WithNWS = built.Weather
		}
		node, err := g.AddHost(h.Name, opts)
		if err != nil {
			return fail(fmt.Errorf("config: host %q: %w", h.Name, err))
		}
		built.Hosts[h.Name] = node
		for _, target := range h.RegisterTo {
			node.RegisterWith(built.Directories[target], h.VO, h.Interval, h.TTL)
		}
	}
	return built, nil
}
