package config

import (
	"strings"
	"testing"
	"time"

	"mds2/internal/ldap"
)

const sampleTopology = `
# Figure 5 style topology
seed 7

directory vo-dir {
  suffix vo=alliance
  strategy chain
}

directory center1 {
  suffix o=o1
  strategy cache
  cache-ttl 45s
  parent vo-dir
  vo alliance
}

host r1 {
  org o1
  cpus 16
  os mips irix
  register center1
  vo alliance
  interval 10s
  ttl 60s
}

host r2 {
  org o1
  register center1
  vo alliance
}

host lonely {
  org home
  register vo-dir
  vo alliance
  nws
}
`

func TestParseSample(t *testing.T) {
	top, err := ParseString(sampleTopology)
	if err != nil {
		t.Fatal(err)
	}
	if top.Seed != 7 {
		t.Errorf("seed = %d", top.Seed)
	}
	if len(top.Directories) != 2 || len(top.Hosts) != 3 {
		t.Fatalf("parsed %d dirs, %d hosts", len(top.Directories), len(top.Hosts))
	}
	c1 := top.Directories[1]
	if c1.Name != "center1" || c1.Strategy != "cache" || c1.CacheTTL != 45*time.Second ||
		c1.Parent != "vo-dir" || c1.VO != "alliance" {
		t.Errorf("center1 = %+v", c1)
	}
	r1 := top.Hosts[0]
	if r1.CPUs != 16 || r1.OS != "mips irix" || r1.Interval != 10*time.Second ||
		r1.TTL != time.Minute || len(r1.RegisterTo) != 1 {
		t.Errorf("r1 = %+v", r1)
	}
	if !top.Hosts[2].NWS {
		t.Error("nws flag lost")
	}
	if top.Hosts[1].CPUs != 4 {
		t.Errorf("default cpus = %d", top.Hosts[1].CPUs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad seed":       "seed xyz\n",
		"unterminated":   "host a {\norg x\n",
		"stray line":     "what is this\n",
		"missing brace":  "directory d\n",
		"bad strategy":   "directory d {\nsuffix o=x\nstrategy teleport\n}\n",
		"missing suffix": "directory d {\nstrategy chain\n}\n",
		"bad duration":   "host h {\ninterval soon\n}\n",
		"bad cpus":       "host h {\ncpus many\n}\n",
	}
	for name, text := range cases {
		if _, err := ParseString(text); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestValidateCrossReferences(t *testing.T) {
	cases := map[string]string{
		"unknown register target": "host h {\nregister nowhere\n}\n",
		"unknown parent":          "directory d {\nsuffix o=x\nparent ghost\n}\n",
		"self parent":             "directory d {\nsuffix o=x\nparent d\n}\n",
		"duplicate dir":           "directory d {\nsuffix o=x\n}\ndirectory d {\nsuffix o=y\n}\n",
		"duplicate host":          "directory d {\nsuffix o=x\n}\nhost h {\nregister d\n}\nhost h {\nregister d\n}\n",
		"name collision":          "directory n {\nsuffix o=x\n}\nhost n {\nregister n\n}\n",
	}
	for name, text := range cases {
		top, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := top.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestBuildSampleTopology(t *testing.T) {
	top, err := ParseString(sampleTopology)
	if err != nil {
		t.Fatal(err)
	}
	built, err := top.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer built.Grid.Close()

	vo := built.Directories["vo-dir"]
	c1 := built.Directories["center1"]
	// center1 (self-registration) + lonely register with vo-dir; r1, r2
	// register with center1.
	waitFor(t, func() bool {
		return len(vo.GIIS.Children()) == 2 && len(c1.GIIS.Children()) == 2
	})
	user, err := vo.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()
	all, err := user.Search(ldap.MustParseDN("vo=alliance"), "(objectclass=computer)")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("computers across topology = %d", len(all))
	}
	// The mips host is reachable with its configured spec.
	mips, err := user.Search(ldap.MustParseDN("vo=alliance"), "(&(objectclass=computer)(system=mips*))")
	if err != nil {
		t.Fatal(err)
	}
	if len(mips) != 1 || mips[0].First("cpucount") != "16" {
		t.Fatalf("mips host = %v", mips)
	}
	if built.Weather == nil {
		t.Error("nws service should be shared when a host enables it")
	}
}

func TestBuildDeterministic(t *testing.T) {
	build := func() string {
		top, err := ParseString(sampleTopology)
		if err != nil {
			t.Fatal(err)
		}
		built, err := top.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer built.Grid.Close()
		h := built.Hosts["r1"].Host.Snapshot()
		return strings.Join([]string{h.Spec.OS, h.Name}, "/")
	}
	if build() != build() {
		t.Error("same topology built differently")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never settled")
}

func TestBuildReferralAndBloomStrategies(t *testing.T) {
	const topo = `
seed 3
directory refdir {
  suffix vo=r
  strategy referral
}
directory bloomdir {
  suffix vo=b
  strategy bloom
  cache-ttl 1m
}
host h1 {
  register refdir
  vo r
}
host h2 {
  register bloomdir
  vo b
}
`
	top, err := ParseString(topo)
	if err != nil {
		t.Fatal(err)
	}
	built, err := top.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer built.Grid.Close()
	waitFor(t, func() bool {
		return len(built.Directories["refdir"].GIIS.Children()) == 1 &&
			len(built.Directories["bloomdir"].GIIS.Children()) == 1
	})
	// The referral directory answers with continuation references.
	rc, err := built.Directories["refdir"].Client("u")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	entries, refs, err := rc.SearchReferrals(ldap.MustParseDN("vo=r"), "(objectclass=computer)")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("referrals = %v (entries %d)", refs, len(entries))
	}
	// The bloom directory answers data queries.
	bc, err := built.Directories["bloomdir"].Client("u")
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	got, err := bc.Search(ldap.MustParseDN("vo=b"), "(objectclass=computer)")
	if err != nil || len(got) != 1 {
		t.Fatalf("bloom search: %v, %d", err, len(got))
	}
}
