// Package qcache is the GIIS-tier query-result cache: a bounded,
// concurrency-safe map from normalized query regions to the immutable
// entry snapshots that answered them. The paper's aggregate directories
// exist precisely so discovery queries are answered from cached soft state
// instead of re-contacting every information provider (§3, §10.4), and the
// MDS2 performance studies identify caching as the dominant factor in
// throughput and response time under concurrent users.
//
// Freshness is two-tier: a cached result expires at
// min(now+TTL, contributing source's soft-state deadline), so a directory
// never serves a result that has outlived the registration that produced
// it. An invalidation path (Invalidate*, WatchStore) drops affected keys
// early when membership or store contents change, instead of waiting out
// the TTL. Concurrent identical misses collapse through singleflight, so a
// query stampede costs one upstream fan-out; empty results are cached
// negatively with a short TTL; eviction is size-bounded CLOCK.
//
// Cached entries are shared immutable snapshots, sealed under -tags
// mdsdebug exactly like store hand-outs: hits return a fresh []*ldap.Entry
// container (a pointer copy, never an entry clone) whose elements must be
// laundered with Clone or Select before mutation — the contract the
// snapshotcheck analyzer enforces statically.
package qcache

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultTTL bounds result freshness when Config.TTL is zero.
	DefaultTTL = 15 * time.Second
	// DefaultNegTTL bounds negative-result freshness when Config.NegTTL is
	// zero: an absent entry should reappear quickly once registered.
	DefaultNegTTL = 5 * time.Second
	// DefaultMax bounds the cached key count when Config.Max is zero.
	DefaultMax = 4096
)

// Config assembles a Cache.
type Config struct {
	// Name prefixes the cache's obs series and labels its debug snapshot
	// ("qcache" when empty). Non-alphanumeric runes become underscores in
	// metric names.
	Name string
	// Clock drives freshness; nil means wall clock.
	Clock softstate.Clock
	// TTL bounds result freshness (DefaultTTL when zero). A result
	// additionally expires at its soft-state bound (see GetOrFill).
	TTL time.Duration
	// NegTTL bounds negative (empty) result freshness (DefaultNegTTL when
	// zero, never longer than TTL).
	NegTTL time.Duration
	// Max bounds the number of cached keys (DefaultMax when zero); excess
	// inserts evict CLOCK-cold keys.
	Max int
	// ServeStale returns the expired result when a refill fails, instead
	// of the error — §2.2: "users should have as much partial or even
	// inconsistent information as is available".
	ServeStale bool
	// Obs, when non-nil, registers hit/miss/coalesced/evicted/invalidated/
	// stale-skip counters and a live key gauge under Name_*.
	Obs *obs.Registry
}

// Region describes what a cached result answers, for keying and for
// invalidation matching. Base and Scope are the query region in whatever
// namespace the caller resolves invalidation DNs against; Owner groups
// keys by their upstream source (e.g. a child's service key) so the whole
// group can be dropped when that source disappears.
type Region struct {
	Owner  string
	Base   ldap.DN
	Scope  ldap.Scope
	Filter *ldap.Filter
}

// Key renders the normalized cache key for this region plus the requested
// attribute set and size limit: DNs normalize per ldap.DN.Normalize, the
// filter renders case-folded (attribute names and values carry
// caseIgnoreMatch semantics), and attributes fold, sort and dedup — so
// `(CN=Foo)` and `(cn=foo)` share one key.
func (r Region) Key(attrs []string, sizeLimit int64) string {
	var b strings.Builder
	b.WriteString(r.Owner)
	b.WriteByte(0x1f)
	b.WriteString(r.Base.Normalize())
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(int(r.Scope)))
	b.WriteByte(0x1f)
	if r.Filter != nil {
		b.WriteString(strings.ToLower(r.Filter.String()))
	}
	b.WriteByte(0x1f)
	b.WriteString(normalizeAttrs(attrs))
	b.WriteByte(0x1f)
	b.WriteString(strconv.FormatInt(sizeLimit, 10))
	return b.String()
}

// normalizeAttrs folds the attribute selection to its semantic form: empty
// and "*" both select everything, names compare case-insensitively, and
// order is irrelevant.
func normalizeAttrs(attrs []string) string {
	if len(attrs) == 0 {
		return ""
	}
	folded := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if a == "*" || a == "" {
			return "" // selects all attributes, like an empty request
		}
		folded = append(folded, strings.ToLower(a))
	}
	sort.Strings(folded)
	out := folded[:1]
	for _, a := range folded[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return strings.Join(out, ",")
}

// Outcome reports how GetOrFill satisfied a lookup.
type Outcome int

// GetOrFill outcomes.
const (
	// OutcomeMiss: the fill function ran for this caller.
	OutcomeMiss Outcome = iota
	// OutcomeHit: served from a fresh cached result.
	OutcomeHit
	// OutcomeCoalesced: joined another caller's in-flight fill.
	OutcomeCoalesced
	// OutcomeStale: the fill failed and the expired result was served
	// (Config.ServeStale).
	OutcomeStale
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeStale:
		return "stale"
	default:
		return "miss"
	}
}

// item is one cached result. entries is the shared snapshot slice; every
// hand-out copies the container so callers may reorder or compact their
// copy without racing other readers.
type item struct {
	key      string
	owner    string
	base     ldap.DN
	scope    ldap.Scope
	cf       *ldap.Compiled
	entries  []*ldap.Entry
	expires  time.Time
	negative bool
	ref      bool // CLOCK reference bit
	slot     int  // position in the CLOCK ring
}

// flight is one in-progress fill that concurrent identical misses join.
type flight struct {
	done    chan struct{}
	entries []*ldap.Entry
	err     error
}

// Cache is a bounded query-result cache. The zero value is not usable;
// construct with New.
type Cache struct {
	cfg   Config
	clock softstate.Clock

	mu    sync.Mutex
	items map[string]*item
	ring  []*item // CLOCK ring; nil holes are free slots
	free  []int
	hand  int

	// flightMu guards the singleflight table. It is never held across a
	// channel operation or a fill.
	flightMu sync.Mutex
	flights  map[string]*flight

	// Counters (registered under Config.Obs when present; nil-safe no-ops
	// otherwise).
	Hits        obs.Counter
	Misses      obs.Counter
	Coalesced   obs.Counter
	Evicted     obs.Counter
	Invalidated obs.Counter
	StaleSkips  obs.Counter // expired results passed over on lookup
	StaleServed obs.Counter // expired results served after a failed refill
}

// New builds a cache.
func New(cfg Config) *Cache {
	if cfg.Clock == nil {
		cfg.Clock = softstate.RealClock{}
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.NegTTL <= 0 {
		cfg.NegTTL = DefaultNegTTL
	}
	if cfg.NegTTL > cfg.TTL {
		cfg.NegTTL = cfg.TTL
	}
	if cfg.Max <= 0 {
		cfg.Max = DefaultMax
	}
	if cfg.Name == "" {
		cfg.Name = "qcache"
	}
	c := &Cache{
		cfg:     cfg,
		clock:   cfg.Clock,
		items:   map[string]*item{},
		flights: map[string]*flight{},
	}
	if cfg.Obs != nil {
		p := metricPrefix(cfg.Name)
		cfg.Obs.RegisterCounter(p+"_hits_total", &c.Hits)
		cfg.Obs.RegisterCounter(p+"_misses_total", &c.Misses)
		cfg.Obs.RegisterCounter(p+"_coalesced_total", &c.Coalesced)
		cfg.Obs.RegisterCounter(p+"_evicted_total", &c.Evicted)
		cfg.Obs.RegisterCounter(p+"_invalidated_total", &c.Invalidated)
		cfg.Obs.RegisterCounter(p+"_stale_skips_total", &c.StaleSkips)
		cfg.Obs.RegisterCounter(p+"_stale_served_total", &c.StaleServed)
		cfg.Obs.GaugeFunc(p+"_keys", func() float64 { return float64(c.Len()) })
	}
	return c
}

func metricPrefix(name string) string {
	b := []byte(name)
	for i, r := range b {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// copyEntries hands out a fresh container over the shared snapshots:
// callers sort, compact and dedup their result sets in place, which must
// never touch the slice other readers share.
func copyEntries(entries []*ldap.Entry) []*ldap.Entry {
	if entries == nil {
		return nil
	}
	return append([]*ldap.Entry(nil), entries...)
}

// Get returns the cached result for key when fresh. The returned slice is
// a fresh container of shared immutable snapshot entries; Clone or Select
// an entry before mutating it. A cached negative result returns (nil,
// true).
func (c *Cache) Get(key string) ([]*ldap.Entry, bool) {
	entries, ok := c.lookup(key, c.clock.Now())
	if !ok {
		c.Misses.Inc()
	}
	return entries, ok
}

// lookup is the fresh-hit path; it counts hits and stale skips but leaves
// miss accounting to the caller (GetOrFill counts one miss per fill, not
// per probe).
func (c *Cache) lookup(key string, now time.Time) ([]*ldap.Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it := c.items[key]
	if it == nil {
		return nil, false
	}
	if !now.Before(it.expires) {
		c.StaleSkips.Inc()
		return nil, false
	}
	it.ref = true
	c.Hits.Inc()
	return copyEntries(it.entries), true
}

// stale returns the expired result for key, if one is still resident.
func (c *Cache) stale(key string) ([]*ldap.Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it := c.items[key]; it != nil {
		return copyEntries(it.entries), true
	}
	return nil, false
}

// GetOrFill returns the cached result for key, running fill on a miss and
// caching what it returns. Concurrent identical misses collapse: exactly
// one caller runs fill, the rest wait and share its result. bound, when
// non-zero, caps the result's freshness at that instant regardless of TTL
// — pass the contributing source's soft-state deadline so a cached result
// never outlives the registration it came from. The returned slice is a
// fresh container of shared immutable snapshot entries (see Get).
func (c *Cache) GetOrFill(key string, region Region, bound time.Time,
	fill func() ([]*ldap.Entry, error)) ([]*ldap.Entry, Outcome, error) {

	if entries, ok := c.lookup(key, c.clock.Now()); ok {
		return entries, OutcomeHit, nil
	}
	c.flightMu.Lock()
	if f := c.flights[key]; f != nil {
		c.flightMu.Unlock()
		c.Coalesced.Inc()
		<-f.done
		if f.err != nil {
			return nil, OutcomeCoalesced, f.err
		}
		return copyEntries(f.entries), OutcomeCoalesced, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.flightMu.Unlock()

	// A previous leader may have refilled between our miss and taking
	// flight leadership; re-check before paying for a fan-out.
	if entries, ok := c.lookup(key, c.clock.Now()); ok {
		c.finishFlight(key, f, entries, nil)
		return entries, OutcomeHit, nil
	}

	c.Misses.Inc()
	entries, err := fill()
	if err != nil {
		if c.cfg.ServeStale {
			if stale, ok := c.stale(key); ok {
				c.StaleServed.Inc()
				c.finishFlight(key, f, stale, nil)
				return stale, OutcomeStale, nil
			}
		}
		c.finishFlight(key, f, nil, err)
		return nil, OutcomeMiss, err
	}
	// The fill result becomes the shared snapshot: seal it (mdsdebug) so
	// any later in-place mutation of a cached entry panics at the write.
	ldap.SealSnapshots(entries)
	c.put(key, region, bound, entries)
	c.finishFlight(key, f, entries, nil)
	return copyEntries(entries), OutcomeMiss, err
}

// finishFlight publishes the flight result and retires it so the next miss
// starts a fresh fill. The flight channel closes outside every lock.
func (c *Cache) finishFlight(key string, f *flight, entries []*ldap.Entry, err error) {
	f.entries, f.err = entries, err
	c.flightMu.Lock()
	delete(c.flights, key)
	c.flightMu.Unlock()
	close(f.done)
}

// Put caches a result directly (GetOrFill is the usual path). See
// GetOrFill for bound semantics.
func (c *Cache) Put(key string, region Region, bound time.Time, entries []*ldap.Entry) {
	ldap.SealSnapshots(entries)
	c.put(key, region, bound, entries)
}

func (c *Cache) put(key string, region Region, bound time.Time, entries []*ldap.Entry) {
	now := c.clock.Now()
	negative := len(entries) == 0
	ttl := c.cfg.TTL
	if negative {
		ttl = c.cfg.NegTTL
	}
	expires := now.Add(ttl)
	if !bound.IsZero() && bound.Before(expires) {
		expires = bound
	}
	if !expires.After(now) {
		return // the soft-state bound already lapsed: born stale
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if it := c.items[key]; it != nil {
		it.owner, it.base, it.scope = region.Owner, region.Base, region.Scope
		it.cf = region.Filter.Compile()
		it.entries, it.expires, it.negative, it.ref = entries, expires, negative, true
		return
	}
	for len(c.items) >= c.cfg.Max {
		c.evictLocked()
	}
	it := &item{
		key:   key,
		owner: region.Owner, base: region.Base, scope: region.Scope,
		cf:      region.Filter.Compile(),
		entries: entries, expires: expires, negative: negative, ref: true,
	}
	c.items[key] = it
	if n := len(c.free); n > 0 {
		it.slot = c.free[n-1]
		c.free = c.free[:n-1]
		c.ring[it.slot] = it
	} else {
		it.slot = len(c.ring)
		c.ring = append(c.ring, it)
	}
}

// evictLocked runs one CLOCK sweep: referenced items get a second chance,
// the first cold item goes.
func (c *Cache) evictLocked() {
	n := len(c.ring)
	if n == 0 {
		return
	}
	for scanned := 0; scanned < 2*n; scanned++ {
		it := c.ring[c.hand]
		c.hand = (c.hand + 1) % n
		if it == nil {
			continue
		}
		if it.ref {
			it.ref = false
			continue
		}
		c.removeLocked(it)
		c.Evicted.Inc()
		return
	}
	// Every resident item was referenced twice around (possible only under
	// concurrent hit storms): evict the next resident regardless.
	for {
		it := c.ring[c.hand]
		c.hand = (c.hand + 1) % n
		if it != nil {
			c.removeLocked(it)
			c.Evicted.Inc()
			return
		}
	}
}

func (c *Cache) removeLocked(it *item) {
	delete(c.items, it.key)
	c.ring[it.slot] = nil
	c.free = append(c.free, it.slot)
}

// InvalidateDN drops every key whose region contains dn. Returns the
// number of keys dropped.
func (c *Cache) InvalidateDN(dn ldap.DN) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, it := range c.items {
		if dn.WithinScope(it.base, it.scope) {
			c.removeLocked(it)
			n++
		}
	}
	c.Invalidated.Add(int64(n))
	return n
}

// InvalidateEvent drops the keys a store change affects. Adds and deletes
// are precise: a cached result changes only if the event's entry — for
// deletes, the pre-delete snapshot the store attaches — falls in the key's
// region and matches its filter (this is also what flushes negative
// results when the missing entry appears). Modifies drop every in-region
// key, because the filter may have matched the pre-modify state the event
// no longer carries.
func (c *Cache) InvalidateEvent(ev ldap.ChangeEvent) int {
	if ev.Entry == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, it := range c.items {
		if !ev.Entry.DN.WithinScope(it.base, it.scope) {
			continue
		}
		switch ev.Type {
		case ldap.ChangeAdd, ldap.ChangeDelete:
			if !it.cf.Matches(ev.Entry) {
				continue
			}
		}
		c.removeLocked(it)
		n++
	}
	c.Invalidated.Add(int64(n))
	return n
}

// InvalidateOwner drops every key belonging to owner (or to an owner
// variant "owner|…"), the early-drop path when a registered source
// expires or is removed.
func (c *Cache) InvalidateOwner(owner string) int {
	if owner == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	prefix := owner + "|"
	for _, it := range c.items {
		if it.owner == owner || strings.HasPrefix(it.owner, prefix) {
			c.removeLocked(it)
			n++
		}
	}
	c.Invalidated.Add(int64(n))
	return n
}

// Flush drops everything (tests and failover drills).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = map[string]*item{}
	c.ring, c.free, c.hand = nil, nil, 0
}

// Len returns the resident key count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Entries returns every resident positive result concatenated — the corpus
// view specialized services (e.g. the matchmaker extension) evaluate
// against. The slice is a fresh container of shared immutable snapshots.
func (c *Cache) Entries() []*ldap.Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*ldap.Entry
	for _, it := range c.items {
		out = append(out, it.entries...)
	}
	return out
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Keys        int   `json:"keys"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	Evicted     int64 `json:"evicted"`
	Invalidated int64 `json:"invalidated"`
	StaleSkips  int64 `json:"stale_skips"`
	StaleServed int64 `json:"stale_served"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Keys:        c.Len(),
		Hits:        c.Hits.Value(),
		Misses:      c.Misses.Value(),
		Coalesced:   c.Coalesced.Value(),
		Evicted:     c.Evicted.Value(),
		Invalidated: c.Invalidated.Value(),
		StaleSkips:  c.StaleSkips.Value(),
		StaleServed: c.StaleServed.Value(),
	}
}

// DebugKey is one resident key in a debug snapshot.
type DebugKey struct {
	Key         string `json:"key"`
	Owner       string `json:"owner,omitempty"`
	Entries     int    `json:"entries"`
	Negative    bool   `json:"negative,omitempty"`
	ExpiresInMs int64  `json:"expires_in_ms"`
	Referenced  bool   `json:"referenced"`
}

// DebugSnapshot is the full cache state for /debug introspection.
type DebugSnapshot struct {
	Name  string     `json:"name"`
	TTLMs int64      `json:"ttl_ms"`
	Max   int        `json:"max"`
	Stats Stats      `json:"stats"`
	Keys  []DebugKey `json:"keys"`
}

// Debug renders the cache for a /debug endpoint: configuration, counters,
// and every resident key with its remaining freshness (negative once
// expired).
func (c *Cache) Debug() DebugSnapshot {
	stats := c.Stats()
	now := c.clock.Now()
	c.mu.Lock()
	keys := make([]DebugKey, 0, len(c.items))
	for _, it := range c.items {
		keys = append(keys, DebugKey{
			Key:         it.key,
			Owner:       it.owner,
			Entries:     len(it.entries),
			Negative:    it.negative,
			ExpiresInMs: it.expires.Sub(now).Milliseconds(),
			Referenced:  it.ref,
		})
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].Key < keys[j].Key })
	return DebugSnapshot{
		Name:  c.cfg.Name,
		TTLMs: c.cfg.TTL.Milliseconds(),
		Max:   c.cfg.Max,
		Stats: stats,
		Keys:  keys,
	}
}
