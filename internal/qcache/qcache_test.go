package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

func testEntries(n int) []*ldap.Entry {
	es := make([]*ldap.Entry, n)
	for i := range es {
		es[i] = ldap.NewEntry(ldap.MustParseDN(fmt.Sprintf("hn=h%d, ou=test, o=grid", i))).
			Add("objectclass", "computer").
			Add("idx", fmt.Sprint(i))
	}
	return es
}

func region(base, filter string) Region {
	r := Region{Base: ldap.MustParseDN(base), Scope: ldap.ScopeWholeSubtree}
	if filter != "" {
		f, err := ldap.ParseFilter(filter)
		if err != nil {
			panic(err)
		}
		r.Filter = f
	}
	return r
}

func TestKeyNormalization(t *testing.T) {
	a := Region{Base: ldap.MustParseDN("OU=Test, O=Grid"), Scope: ldap.ScopeWholeSubtree,
		Filter: mustFilter("(ObjectClass=Computer)")}
	b := Region{Base: ldap.MustParseDN("ou=test,o=grid"), Scope: ldap.ScopeWholeSubtree,
		Filter: mustFilter("(objectclass=computer)")}
	if a.Key([]string{"CN", "hn"}, 0) != b.Key([]string{"hn", "cn"}, 0) {
		t.Fatal("equivalent queries produced different keys")
	}
	if a.Key(nil, 0) != b.Key([]string{"*"}, 0) {
		t.Fatal("nil attrs and \"*\" should share a key")
	}
	if a.Key(nil, 0) == b.Key(nil, 10) {
		t.Fatal("size limit must distinguish keys")
	}
	if a.Key(nil, 0) == (Region{Base: a.Base, Scope: ldap.ScopeSingleLevel, Filter: a.Filter}).Key(nil, 0) {
		t.Fatal("scope must distinguish keys")
	}
	withOwner := a
	withOwner.Owner = "ldap://peer:389"
	if a.Key(nil, 0) == withOwner.Key(nil, 0) {
		t.Fatal("owner must distinguish keys")
	}
}

func mustFilter(s string) *ldap.Filter {
	f, err := ldap.ParseFilter(s)
	if err != nil {
		panic(err)
	}
	return f
}

func TestGetOrFillHitAndMiss(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	reg := region("ou=test, o=grid", "(objectclass=computer)")
	key := reg.Key(nil, 0)

	fills := 0
	fill := func() ([]*ldap.Entry, error) { fills++; return testEntries(3), nil }

	got, how, err := c.GetOrFill(key, reg, time.Time{}, fill)
	if err != nil || how != OutcomeMiss || len(got) != 3 {
		t.Fatalf("first call: got %d entries, outcome %v, err %v", len(got), how, err)
	}
	got, how, err = c.GetOrFill(key, reg, time.Time{}, fill)
	if err != nil || how != OutcomeHit || len(got) != 3 {
		t.Fatalf("second call: got %d entries, outcome %v, err %v", len(got), how, err)
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", s)
	}
}

func TestTTLExpiryExact(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: 10 * time.Second})
	reg := region("ou=test, o=grid", "")
	key := reg.Key(nil, 0)
	c.Put(key, reg, time.Time{}, testEntries(2))

	clk.Advance(10*time.Second - time.Nanosecond)
	if _, ok := c.Get(key); !ok {
		t.Fatal("result expired before its TTL")
	}
	clk.Advance(time.Nanosecond)
	if _, ok := c.Get(key); ok {
		t.Fatal("result served at exactly TTL — staler than the bound")
	}
	if s := c.Stats(); s.StaleSkips != 1 {
		t.Fatalf("stale skips = %d, want 1", s.StaleSkips)
	}
}

func TestSoftStateBoundCapsTTL(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	reg := region("ou=test, o=grid", "")
	key := reg.Key(nil, 0)

	// The contributing child's registration lapses in 5s: the cached result
	// must not outlive it even though the TTL is a minute.
	c.Put(key, reg, clk.Now().Add(5*time.Second), testEntries(1))
	clk.Advance(5 * time.Second)
	if _, ok := c.Get(key); ok {
		t.Fatal("result outlived its contributing soft-state deadline")
	}

	// A bound already in the past means the result is born stale: never cached.
	c.Put(key, reg, clk.Now().Add(-time.Second), testEntries(1))
	if _, ok := c.Get(key); ok {
		t.Fatal("born-stale result was cached")
	}
}

func TestNegativeCachingShortTTL(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute, NegTTL: 2 * time.Second})
	reg := region("ou=test, o=grid", "(hn=nope)")
	key := reg.Key(nil, 0)

	fills := 0
	fill := func() ([]*ldap.Entry, error) { fills++; return nil, nil }
	if _, how, _ := c.GetOrFill(key, reg, time.Time{}, fill); how != OutcomeMiss {
		t.Fatalf("outcome %v, want miss", how)
	}
	if got, how, _ := c.GetOrFill(key, reg, time.Time{}, fill); how != OutcomeHit || len(got) != 0 {
		t.Fatalf("negative result not served from cache (outcome %v)", how)
	}
	clk.Advance(2 * time.Second)
	if _, how, _ := c.GetOrFill(key, reg, time.Time{}, fill); how != OutcomeMiss {
		t.Fatalf("negative result outlived NegTTL (outcome %v)", how)
	}
	if fills != 2 {
		t.Fatalf("fill ran %d times, want 2", fills)
	}
}

// TestSingleflightStorm drives many concurrent identical misses through
// GetOrFill and asserts exactly one upstream fan-out happened: the leader
// runs fill while every other caller coalesces onto its flight.
func TestSingleflightStorm(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	reg := region("ou=test, o=grid", "(objectclass=computer)")
	key := reg.Key(nil, 0)

	const callers = 32
	var fills atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{}, callers)
	fill := func() ([]*ldap.Entry, error) {
		fills.Add(1)
		<-gate // hold the flight open until every caller has joined
		return testEntries(4), nil
	}

	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered <- struct{}{}
			got, _, err := c.GetOrFill(key, reg, time.Time{}, fill)
			if err != nil || len(got) != 4 {
				t.Errorf("got %d entries, err %v", len(got), err)
			}
		}()
	}
	for i := 0; i < callers; i++ {
		<-entered
	}
	// Wait until all non-leaders are parked on the flight before releasing.
	for {
		c.flightMu.Lock()
		f := c.flights[key]
		c.flightMu.Unlock()
		if f != nil && c.Coalesced.Value() >= callers-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("storm of %d identical queries caused %d fan-outs, want 1", callers, n)
	}
	if s := c.Stats(); s.Coalesced != callers-1 {
		t.Fatalf("coalesced = %d, want %d", s.Coalesced, callers-1)
	}
}

func TestHandOutsAreFreshContainers(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	reg := region("ou=test, o=grid", "")
	key := reg.Key(nil, 0)
	c.Put(key, reg, time.Time{}, testEntries(3))

	a, _ := c.Get(key)
	// Callers reorder and compact their result sets in place; that must not
	// leak into what other readers see.
	a[0], a[2] = a[2], a[0]
	a = a[:1]
	_ = a

	b, _ := c.Get(key)
	if len(b) != 3 {
		t.Fatalf("second hand-out has %d entries, want 3", len(b))
	}
	if b[0].First("idx") != "0" || b[2].First("idx") != "2" {
		t.Fatal("container mutation through one hand-out leaked into another")
	}
}

func TestClockEviction(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute, Max: 4})
	es := testEntries(1)
	for i := 0; i < 4; i++ {
		reg := region(fmt.Sprintf("ou=r%d, o=grid", i), "")
		c.Put(reg.Key(nil, 0), reg, time.Time{}, es)
	}
	// Touch keys 1..3 so key 0 is the cold one; one full CLOCK sweep clears
	// the insert-time ref bits, the second finds key 0 cold.
	for i := 1; i < 4; i++ {
		reg := region(fmt.Sprintf("ou=r%d, o=grid", i), "")
		if _, ok := c.Get(reg.Key(nil, 0)); !ok {
			t.Fatalf("warm key %d missing", i)
		}
	}
	reg4 := region("ou=r4, o=grid", "")
	c.Put(reg4.Key(nil, 0), reg4, time.Time{}, es)

	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4 (bounded)", c.Len())
	}
	if s := c.Stats(); s.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", s.Evicted)
	}
	if _, ok := c.Get(region("ou=r0, o=grid", "").Key(nil, 0)); ok {
		t.Fatal("cold key 0 should have been the CLOCK victim")
	}
	if _, ok := c.Get(reg4.Key(nil, 0)); !ok {
		t.Fatal("newly inserted key missing after eviction")
	}
}

func TestInvalidateDN(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	in := region("ou=test, o=grid", "")
	out := region("ou=other, o=grid", "")
	c.Put(in.Key(nil, 0), in, time.Time{}, testEntries(1))
	c.Put(out.Key(nil, 0), out, time.Time{}, testEntries(1))

	if n := c.InvalidateDN(ldap.MustParseDN("hn=h9, ou=test, o=grid")); n != 1 {
		t.Fatalf("invalidated %d keys, want 1", n)
	}
	if _, ok := c.Get(in.Key(nil, 0)); ok {
		t.Fatal("in-region key survived invalidation")
	}
	if _, ok := c.Get(out.Key(nil, 0)); !ok {
		t.Fatal("out-of-region key was dropped")
	}
}

// TestInvalidateEventDeleteUsesPreDeleteSnapshot is the regression test
// for delete-event invalidation: the store delivers ChangeDelete with the
// pre-delete entry snapshot, and the cache must match it against each
// key's filter so deletes of matching entries drop the cached result.
func TestInvalidateEventDeleteUsesPreDeleteSnapshot(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	computers := region("ou=test, o=grid", "(objectclass=computer)")
	people := region("ou=test, o=grid", "(objectclass=person)")
	c.Put(computers.Key(nil, 0), computers, time.Time{}, testEntries(2))
	c.Put(people.Key(nil, 0), people, time.Time{}, testEntries(1))

	// The deleted entry matches only the computer filter: precise
	// invalidation drops that key and keeps the person key.
	deleted := ldap.NewEntry(ldap.MustParseDN("hn=h0, ou=test, o=grid")).
		Add("objectclass", "computer")
	n := c.InvalidateEvent(ldap.ChangeEvent{Type: ldap.ChangeDelete, Entry: deleted})
	if n != 1 {
		t.Fatalf("delete event invalidated %d keys, want 1", n)
	}
	if _, ok := c.Get(computers.Key(nil, 0)); ok {
		t.Fatal("delete of a matching entry did not invalidate the cached result")
	}
	if _, ok := c.Get(people.Key(nil, 0)); !ok {
		t.Fatal("delete of a non-matching entry invalidated an unrelated key")
	}

	// Modify events no longer carry the pre-modify state, so every
	// in-region key drops regardless of filter match.
	c.Put(computers.Key(nil, 0), computers, time.Time{}, testEntries(2))
	mod := ldap.NewEntry(ldap.MustParseDN("hn=h0, ou=test, o=grid")).
		Add("objectclass", "person")
	if n := c.InvalidateEvent(ldap.ChangeEvent{Type: ldap.ChangeModify, Entry: mod}); n != 2 {
		t.Fatalf("modify event invalidated %d keys, want 2 (conservative)", n)
	}
}

func TestInvalidateOwner(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	mk := func(owner string) Region {
		r := region("ou=test, o=grid", "")
		r.Owner = owner
		return r
	}
	for _, o := range []string{"ldap://a:1", "ldap://a:1|ctl", "ldap://b:2"} {
		r := mk(o)
		c.Put(r.Key(nil, 0), r, time.Time{}, testEntries(1))
	}
	if n := c.InvalidateOwner("ldap://a:1"); n != 2 {
		t.Fatalf("invalidated %d keys, want 2 (exact + control variant)", n)
	}
	rb := mk("ldap://b:2")
	if _, ok := c.Get(rb.Key(nil, 0)); !ok {
		t.Fatal("unrelated owner's key was dropped")
	}
}

func TestServeStaleOnFillError(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: 5 * time.Second, ServeStale: true})
	reg := region("ou=test, o=grid", "")
	key := reg.Key(nil, 0)
	c.Put(key, reg, time.Time{}, testEntries(2))
	clk.Advance(10 * time.Second)

	boom := errors.New("child unreachable")
	got, how, err := c.GetOrFill(key, reg, time.Time{}, func() ([]*ldap.Entry, error) {
		return nil, boom
	})
	if err != nil || how != OutcomeStale || len(got) != 2 {
		t.Fatalf("stale serve: got %d entries, outcome %v, err %v", len(got), how, err)
	}

	// Without ServeStale the error surfaces.
	c2 := New(Config{Clock: clk, TTL: 5 * time.Second})
	c2.Put(key, reg, time.Time{}, testEntries(2))
	clk.Advance(10 * time.Second)
	if _, _, err := c2.GetOrFill(key, reg, time.Time{}, func() ([]*ldap.Entry, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fill error", err)
	}
}

func TestFlushAndEntries(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	a := region("ou=a, o=grid", "")
	b := region("ou=b, o=grid", "")
	c.Put(a.Key(nil, 0), a, time.Time{}, testEntries(2))
	c.Put(b.Key(nil, 0), b, time.Time{}, testEntries(3))

	if got := c.Entries(); len(got) != 5 {
		t.Fatalf("Entries() returned %d, want 5", len(got))
	}
	c.Flush()
	if c.Len() != 0 || len(c.Entries()) != 0 {
		t.Fatal("flush left residents behind")
	}
	// The ring resets too: reinsertion after flush must work.
	c.Put(a.Key(nil, 0), a, time.Time{}, testEntries(1))
	if c.Len() != 1 {
		t.Fatal("insert after flush failed")
	}
}

func TestWatchStoreInvalidates(t *testing.T) {
	st := ldap.NewStore()
	clk := softstate.NewFakeClock()
	c := New(Config{Clock: clk, TTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	WatchStore(ctx, st, c)

	reg := region("ou=test, o=grid", "(objectclass=computer)")
	key := reg.Key(nil, 0)
	c.Put(key, reg, time.Time{}, testEntries(1))

	e := ldap.NewEntry(ldap.MustParseDN("hn=h5, ou=test, o=grid")).
		Add("objectclass", "computer")
	if err := st.Put(e); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := c.Get(key); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store add never invalidated the cached result")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDebugSnapshot(t *testing.T) {
	clk := softstate.NewFakeClock()
	c := New(Config{Name: "test", Clock: clk, TTL: time.Minute, Max: 8})
	reg := region("ou=test, o=grid", "(objectclass=computer)")
	c.Put(reg.Key(nil, 0), reg, time.Time{}, testEntries(2))
	neg := region("ou=none, o=grid", "")
	c.Put(neg.Key(nil, 0), neg, time.Time{}, nil)

	d := c.Debug()
	if d.Name != "test" || d.Max != 8 || len(d.Keys) != 2 {
		t.Fatalf("snapshot = %+v", d)
	}
	var sawNeg, sawPos bool
	for _, k := range d.Keys {
		if k.Negative {
			sawNeg = true
		}
		if k.Entries == 2 {
			sawPos = true
			if k.ExpiresInMs != 60_000 {
				t.Fatalf("expires_in_ms = %d, want 60000", k.ExpiresInMs)
			}
		}
	}
	if !sawNeg || !sawPos {
		t.Fatalf("snapshot keys missing negative/positive rows: %+v", d.Keys)
	}
}
