package qcache

import (
	"context"

	"mds2/internal/ldap"
)

// WatchStore wires a store's change feed into the cache's early-drop path:
// every ChangeEvent the store publishes (including deletes, which carry
// the pre-delete snapshot) invalidates the cached results it affects,
// instead of waiting out their TTL. The watcher goroutine exits when ctx
// is cancelled (the store closes the subscription channel).
func WatchStore(ctx context.Context, st *ldap.Store, c *Cache) {
	ch := st.Subscribe(ctx, nil, ldap.ScopeWholeSubtree, nil)
	go func() {
		for ev := range ch {
			c.InvalidateEvent(ev)
		}
	}()
}
