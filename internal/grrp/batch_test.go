package grrp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/softstate"
)

func stormMessages(now time.Time, n int) []*Message {
	msgs := make([]*Message, n)
	for i := range msgs {
		msgs[i] = &Message{
			Type:       TypeRegister,
			ServiceURL: fmt.Sprintf("sim://h%06d-node:389", i),
			MDSType:    "gris",
			SuffixDN:   fmt.Sprintf("hn=h%06d, o=grid", i),
			IssuedAt:   now,
			ValidUntil: now.Add(time.Hour),
		}
	}
	return msgs
}

func TestIngestBatch(t *testing.T) {
	clock := softstate.NewFakeClock()
	r := NewReceiver(clock)
	defer r.Close()
	now := clock.Now()

	msgs := stormMessages(now, 10)
	// Poison two: one stale, one refused by policy.
	msgs[3].ValidUntil = now.Add(-time.Minute)
	r.Accept = func(m *Message, _ *gsi.Credential) bool { return m.ServiceURL != msgs[7].ServiceURL }

	if got := r.IngestBatch(msgs); got != 8 {
		t.Fatalf("accepted %d, want 8", got)
	}
	if r.Registry.Len() != 8 {
		t.Fatalf("live %d, want 8", r.Registry.Len())
	}
	if r.Rejected() != 2 {
		t.Fatalf("rejected %d, want 2", r.Rejected())
	}
	// Payloads round-trip like single ingest.
	it, ok := r.Registry.Get(msgs[0].ServiceURL)
	if !ok {
		t.Fatal("msg 0 missing")
	}
	if m := it.Payload.(*Message); m.SuffixDN != msgs[0].SuffixDN {
		t.Fatalf("payload suffix %q, want %q", m.SuffixDN, msgs[0].SuffixDN)
	}
}

// TestStartFanoutReplicates: one registration sustained toward K owner
// shards, each stream independently stoppable — the replication path of
// the sharded directory tier.
func TestStartFanoutReplicates(t *testing.T) {
	clock := softstate.NewFakeClock()
	var mu sync.Mutex
	counts := map[string]int{}
	g := NewRegistrar(TransportFunc(func(to string, _ []byte) error {
		mu.Lock()
		counts[to]++
		mu.Unlock()
		return nil
	}), clock)
	defer g.StopAll()

	reg := Registration{
		Message:  Message{Type: TypeRegister, ServiceURL: "sim://h0-node:389"},
		Interval: 10 * time.Second,
		TTL:      30 * time.Second,
	}
	owners := []string{"s1", "s4"}
	g.StartFanout(reg, owners)
	waitFor(t, func() bool { return g.Sent() >= 2 })
	mu.Lock()
	if counts["s1"] < 1 || counts["s4"] < 1 {
		t.Fatalf("fan-out did not reach both owners: %v", counts)
	}
	mu.Unlock()

	g.StopFanout(reg, owners)
	base := g.Sent()
	clock.Advance(time.Minute)
	time.Sleep(20 * time.Millisecond)
	if g.Sent() != base {
		t.Error("streams kept sending after StopFanout")
	}
}

// The before/after numbers for BENCH_shard.json: one-at-a-time Ingest pays
// a registry transaction (version bump, cache invalidation, sweep
// reschedule) per message; IngestBatch pays one per storm.
func BenchmarkIngestStorm(b *testing.B) {
	const storm = 1000
	run := func(b *testing.B, batched bool) {
		clock := softstate.NewFakeClock()
		r := NewReceiver(clock)
		defer r.Close()
		msgs := stormMessages(clock.Now(), storm)
		b.ResetTimer()
		for i := 0; i < b.N; i += storm {
			if batched {
				r.IngestBatch(msgs)
			} else {
				for _, m := range msgs {
					r.Ingest(m)
				}
			}
			// Touch the live view like a directory serving queries between
			// storms: the sequential path re-sorts it per message epoch.
			r.Registry.Live()
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, false) })
	b.Run("batched", func(b *testing.B) { run(b, true) })
}
