package grrp

import (
	"net"
	"sync"
)

// UDPTransport sends GRRP datagrams over real UDP, the deployment binding
// for hosts on an actual network. One socket is cached per destination.
type UDPTransport struct {
	mu    sync.Mutex
	conns map[string]*net.UDPConn
}

// NewUDPTransport returns an empty transport.
func NewUDPTransport() *UDPTransport { return &UDPTransport{conns: map[string]*net.UDPConn{}} }

// Send transmits one datagram to a host:port address.
func (t *UDPTransport) Send(to string, payload []byte) error {
	t.mu.Lock()
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		addr, err := net.ResolveUDPAddr("udp", to)
		if err != nil {
			return err
		}
		c, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			return err
		}
		t.mu.Lock()
		if existing := t.conns[to]; existing != nil {
			c.Close()
			conn = existing
		} else {
			t.conns[to] = c
			conn = c
		}
		t.mu.Unlock()
	}
	_, err := conn.Write(payload)
	return err
}

// Close releases all cached sockets.
func (t *UDPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, c := range t.conns {
		c.Close()
		delete(t.conns, k)
	}
}

// ServeUDP reads datagrams from conn into the receiver until the connection
// is closed. It is intended to run as a goroutine:
//
//	pc, _ := net.ListenPacket("udp", ":2119")
//	go grrp.ServeUDP(pc, receiver)
func ServeUDP(conn net.PacketConn, r *Receiver) {
	buf := make([]byte, 64<<10)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			return
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		fromAddr := ""
		if from != nil {
			fromAddr = from.String()
		}
		r.HandleDatagram(fromAddr, payload)
	}
}
