// Package grrp implements the Grid Registration Protocol of §4.3: a
// soft-state notification protocol with which one service component pushes
// simple existence information to another. Each message names the described
// service (a URL to which GRIP messages can be directed), the notification
// type, and timestamps bounding the interval over which the notification
// holds. GRRP does not specify its transport: this package provides an
// unreliable datagram binding (the protocol's design point), and a mapping
// onto LDAP add operations, which is the transport MDS-2.1 adopts (§10.1).
//
// Messages may be authenticated by either of the §7 options: delivery over
// an authenticated channel, or a detached signature with the registering
// entity's credential carried in the message.
package grrp

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/ldap"
)

// NotificationType distinguishes registration from invitation (§10.4:
// "GRRP can be used for both registration and invitation").
type NotificationType int

// Notification types.
const (
	// TypeRegister announces the sender's availability for indexing.
	TypeRegister NotificationType = iota
	// TypeInvite asks the receiving service to join a VO by registering
	// back with the named directory.
	TypeInvite
)

func (t NotificationType) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeInvite:
		return "invite"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Message is one GRRP notification.
type Message struct {
	Type NotificationType `json:"type"`
	// ServiceURL names the service being described: a URL to which GRIP
	// messages can be directed (for TypeInvite, the directory to register
	// with).
	ServiceURL string `json:"serviceURL"`
	// MDSType describes the service's role ("gris" or "giis"), letting a
	// directory classify children.
	MDSType string `json:"mdsType,omitempty"`
	// VO optionally names the virtual organization this registration is
	// intended for; directories may enforce membership policy on it.
	VO string `json:"vo,omitempty"`
	// SuffixDN is the namespace suffix the registering provider serves,
	// letting the directory scope chained searches.
	SuffixDN string `json:"suffixDN,omitempty"`
	// IssuedAt and ValidUntil bound the interval over which the
	// notification should be considered to hold.
	IssuedAt   time.Time `json:"issuedAt"`
	ValidUntil time.Time `json:"validUntil"`

	// Credential and Signature optionally authenticate the message
	// (detached signature over Canonical()).
	Credential json.RawMessage `json:"credential,omitempty"`
	Signature  []byte          `json:"signature,omitempty"`
}

// Validation errors.
var (
	ErrBadEncoding = errors.New("grrp: malformed message")
	ErrStale       = errors.New("grrp: message validity interval has passed")
	ErrNotYetValid = errors.New("grrp: message not yet valid")
	ErrUnsigned    = errors.New("grrp: unsigned message where signature required")
)

// TTL returns the message's remaining validity from now.
func (m *Message) TTL(now time.Time) time.Duration { return m.ValidUntil.Sub(now) }

// CheckTimes validates the message's interval against now, with a small
// tolerance for clock skew.
func (m *Message) CheckTimes(now time.Time) error {
	const skew = 30 * time.Second
	if now.Add(skew).Before(m.IssuedAt) {
		return fmt.Errorf("%w: issued %s, now %s", ErrNotYetValid, m.IssuedAt, now)
	}
	if now.After(m.ValidUntil.Add(skew)) {
		return fmt.Errorf("%w: until %s, now %s", ErrStale, m.ValidUntil, now)
	}
	return nil
}

// Canonical returns the byte string covered by the signature: the message
// with signature fields cleared, in deterministic JSON.
func (m *Message) Canonical() []byte {
	cp := *m
	cp.Credential = nil
	cp.Signature = nil
	b, err := json.Marshal(&cp)
	if err != nil {
		panic(err) // flat struct of marshalable fields
	}
	return b
}

// Sign attaches the sender's credential and a detached signature.
func (m *Message) Sign(keys *gsi.KeyPair) {
	m.Credential = keys.Credential.Marshal()
	m.Signature = gsi.SignMessage(keys, m.Canonical())
}

// VerifySignature checks the attached credential chain and signature.
// It returns the verified credential for policy decisions.
func (m *Message) VerifySignature(trust *gsi.TrustStore, now time.Time) (*gsi.Credential, error) {
	if len(m.Signature) == 0 || len(m.Credential) == 0 {
		return nil, ErrUnsigned
	}
	cred, err := gsi.UnmarshalCredential(m.Credential)
	if err != nil {
		return nil, err
	}
	if err := gsi.VerifyMessage(trust, cred, m.Canonical(), m.Signature, now); err != nil {
		return nil, err
	}
	return cred, nil
}

// Marshal encodes the message for datagram transport.
func (m *Message) Marshal() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return b
}

// Unmarshal decodes a datagram payload.
func Unmarshal(b []byte) (*Message, error) {
	var m Message
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	if m.ServiceURL == "" {
		return nil, fmt.Errorf("%w: missing serviceURL", ErrBadEncoding)
	}
	return &m, nil
}

// EncodePayload serializes a registry payload holding a *Message — the
// shape Receiver.Ingest stores — for durability (internal/persist wires
// these two as its PayloadCodec). Non-Message payloads are refused so the
// WAL never persists state it could not decode back.
func EncodePayload(p any) ([]byte, error) {
	m, ok := p.(*Message)
	if !ok {
		return nil, fmt.Errorf("grrp: payload is %T, not *Message", p)
	}
	return m.Marshal(), nil
}

// DecodePayload is the inverse of EncodePayload.
func DecodePayload(b []byte) (any, error) {
	m, err := Unmarshal(b)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// The LDAP binding maps a GRRP message onto an add operation (§10.1:
// "GRRP messages mapped onto LDAP add operations and then carried via the
// normal LDAP protocol"). The entry's DN names the registration under the
// directory's registration suffix.

// RegistrationSuffix is the DN under which GRRP-carried adds are placed.
var RegistrationSuffix = ldap.MustParseDN("mds-vo-op=register")

// ToEntry renders the message as the LDAP entry carried by an add.
func (m *Message) ToEntry() *ldap.Entry {
	dn := RegistrationSuffix.ChildAVA("grrp", m.ServiceURL)
	e := ldap.NewEntry(dn).
		Add("objectclass", "mdsregistration").
		Add("grrp", m.ServiceURL).
		Add("grrptype", m.Type.String()).
		Add("issuedat", m.IssuedAt.UTC().Format(time.RFC3339Nano)).
		Add("validuntil", m.ValidUntil.UTC().Format(time.RFC3339Nano))
	if m.MDSType != "" {
		e.Add("mdstype", m.MDSType)
	}
	if m.VO != "" {
		e.Add("vo", m.VO)
	}
	if m.SuffixDN != "" {
		e.Add("suffixdn", m.SuffixDN)
	}
	if len(m.Credential) > 0 {
		e.Add("credential", string(m.Credential))
	}
	if len(m.Signature) > 0 {
		e.Add("signature", encodeB64(m.Signature))
	}
	return e
}

// FromEntry decodes an LDAP-carried registration; it reports ErrBadEncoding
// for adds that are not GRRP messages.
func FromEntry(e *ldap.Entry) (*Message, error) {
	if !e.IsA("mdsregistration") {
		return nil, fmt.Errorf("%w: not a registration entry", ErrBadEncoding)
	}
	m := &Message{
		ServiceURL: e.First("grrp"),
		MDSType:    e.First("mdstype"),
		VO:         e.First("vo"),
		SuffixDN:   e.First("suffixdn"),
	}
	if m.ServiceURL == "" {
		return nil, fmt.Errorf("%w: missing grrp attribute", ErrBadEncoding)
	}
	switch e.First("grrptype") {
	case "register", "":
		m.Type = TypeRegister
	case "invite":
		m.Type = TypeInvite
	default:
		return nil, fmt.Errorf("%w: bad grrptype %q", ErrBadEncoding, e.First("grrptype"))
	}
	var err error
	if m.IssuedAt, err = time.Parse(time.RFC3339Nano, e.First("issuedat")); err != nil {
		return nil, fmt.Errorf("%w: issuedat: %v", ErrBadEncoding, err)
	}
	if m.ValidUntil, err = time.Parse(time.RFC3339Nano, e.First("validuntil")); err != nil {
		return nil, fmt.Errorf("%w: validuntil: %v", ErrBadEncoding, err)
	}
	if c := e.First("credential"); c != "" {
		m.Credential = json.RawMessage(c)
	}
	if s := e.First("signature"); s != "" {
		if m.Signature, err = decodeB64(s); err != nil {
			return nil, fmt.Errorf("%w: signature: %v", ErrBadEncoding, err)
		}
	}
	return m, nil
}
