package grrp

import (
	"encoding/base64"
	"sync"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/softstate"
)

func encodeB64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

func decodeB64(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }

// Transport delivers an encoded GRRP message toward a destination address.
// Implementations may silently lose messages; GRRP is designed for that.
type Transport interface {
	Send(to string, payload []byte) error
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(to string, payload []byte) error

// Send invokes the function.
func (f TransportFunc) Send(to string, payload []byte) error { return f(to, payload) }

// Registration configures one sustained registration stream from a service
// to a directory (§4.3: "the provider then sustains a stream of
// registration messages to each directory").
type Registration struct {
	// Target is the transport address of the directory.
	Target string
	// Message template; IssuedAt/ValidUntil are stamped per send.
	Message Message
	// Interval between refresh messages.
	Interval time.Duration
	// TTL each message asserts; resilience to loss requires TTL > Interval
	// (several missed refreshes must elapse before expiry).
	TTL time.Duration
	// Keys, when non-nil, signs each message.
	Keys *gsi.KeyPair
}

// Registrar sustains registration streams. It is the sender half of GRRP.
type Registrar struct {
	transport Transport
	clock     softstate.Clock

	mu      sync.Mutex
	streams map[string]chan struct{} // key -> stop channel
	paused  map[string]bool
	sent    int
	wg      sync.WaitGroup
}

// NewRegistrar returns a registrar sending over the given transport.
func NewRegistrar(transport Transport, clock softstate.Clock) *Registrar {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Registrar{
		transport: transport,
		clock:     clock,
		streams:   map[string]chan struct{}{},
		paused:    map[string]bool{},
	}
}

func streamKey(r Registration) string { return r.Target + "|" + r.Message.ServiceURL }

// Start begins (or restarts) a registration stream, sending immediately and
// then on every Interval tick until Stop or StopAll.
func (g *Registrar) Start(r Registration) {
	key := streamKey(r)
	g.mu.Lock()
	if old, ok := g.streams[key]; ok {
		close(old)
	}
	stop := make(chan struct{})
	g.streams[key] = stop
	g.mu.Unlock()

	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for {
			g.sendOnce(r, key)
			select {
			case <-stop:
				return
			case <-g.clock.After(r.Interval):
			}
		}
	}()
}

func (g *Registrar) sendOnce(r Registration, key string) {
	g.mu.Lock()
	paused := g.paused[key]
	if !paused {
		g.sent++
	}
	g.mu.Unlock()
	if paused {
		return
	}
	now := g.clock.Now()
	msg := r.Message
	msg.IssuedAt = now
	msg.ValidUntil = now.Add(r.TTL)
	if r.Keys != nil {
		msg.Sign(r.Keys)
	}
	// Send errors are deliberately ignored: lost registrations are the
	// normal case the soft-state design absorbs.
	_ = g.transport.Send(r.Target, msg.Marshal())
}

// StartFanout begins one registration stream per target: the K-way
// replication path of a sharded directory tier, where a provider sustains
// its soft-state registration at every shard that owns its key. Each
// stream is independent — a partitioned owner misses refreshes and expires
// the registration there while the surviving owners stay fresh, which is
// exactly the per-directory soft-state semantics of §4.3 applied per
// replica.
func (g *Registrar) StartFanout(r Registration, targets []string) {
	for _, t := range targets {
		fr := r
		fr.Target = t
		g.Start(fr)
	}
}

// StopFanout ends the streams StartFanout began toward targets.
func (g *Registrar) StopFanout(r Registration, targets []string) {
	for _, t := range targets {
		fr := r
		fr.Target = t
		g.Stop(fr)
	}
}

// Pause suppresses sends for a stream without tearing it down, simulating a
// silent provider (used by failure-injection experiments).
func (g *Registrar) Pause(r Registration) { g.setPaused(streamKey(r), true) }

// Resume re-enables a paused stream.
func (g *Registrar) Resume(r Registration) { g.setPaused(streamKey(r), false) }

func (g *Registrar) setPaused(key string, v bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.paused[key] = v
}

// Stop ends one registration stream. No de-registration message is sent:
// soft state at the directory simply expires (§4.3: "no reliable
// de-notify protocol message is required").
func (g *Registrar) Stop(r Registration) {
	key := streamKey(r)
	g.mu.Lock()
	if stop, ok := g.streams[key]; ok {
		close(stop)
		delete(g.streams, key)
	}
	g.mu.Unlock()
}

// StopAll ends every stream and waits for senders to exit.
func (g *Registrar) StopAll() {
	g.mu.Lock()
	for key, stop := range g.streams {
		close(stop)
		delete(g.streams, key)
	}
	g.mu.Unlock()
	g.wg.Wait()
}

// Sent returns the cumulative number of messages sent (unpaused ticks).
func (g *Registrar) Sent() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sent
}

// Receiver is the accepting half of GRRP: it validates incoming messages
// and maintains the soft-state registry that directories index from.
type Receiver struct {
	// Registry holds live registrations keyed by ServiceURL; payloads are
	// *Message values.
	Registry *softstate.Registry

	clock softstate.Clock

	// Trust, when non-nil, requires a valid signature on every message
	// (§7 registration security). Unsigned or badly signed messages are
	// rejected.
	Trust *gsi.TrustStore

	// Accept, when non-nil, applies admission policy after authentication:
	// it receives the message and its verified credential (nil when Trust
	// is nil) and reports whether the registration is accepted. This is
	// where a directory controls VO membership (§2.3).
	Accept func(*Message, *gsi.Credential) bool

	mu       sync.Mutex
	rejected int
}

// NewReceiver builds a receiver with its own registry.
func NewReceiver(clock softstate.Clock) *Receiver {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Receiver{Registry: softstate.NewRegistry(clock), clock: clock}
}

// HandleDatagram ingests one datagram payload; it is shaped to plug
// directly into simnet.HandleDatagrams or a UDP read loop.
func (r *Receiver) HandleDatagram(from string, payload []byte) {
	msg, err := Unmarshal(payload)
	if err != nil {
		r.reject()
		return
	}
	r.Ingest(msg)
}

// Ingest validates and applies one message, reporting whether it was
// accepted into the registry.
func (r *Receiver) Ingest(msg *Message) bool {
	now := r.clock.Now()
	if err := msg.CheckTimes(now); err != nil {
		r.reject()
		return false
	}
	var cred *gsi.Credential
	if r.Trust != nil {
		var err error
		if cred, err = msg.VerifySignature(r.Trust, now); err != nil {
			r.reject()
			return false
		}
	}
	if r.Accept != nil && !r.Accept(msg, cred) {
		r.reject()
		return false
	}
	ttl := msg.TTL(now)
	if ttl <= 0 {
		r.reject()
		return false
	}
	r.Registry.Refresh(msg.ServiceURL, msg, ttl)
	return true
}

// IngestBatch validates a refresh storm's worth of messages and applies the
// accepted ones through one softstate.RefreshBatch — one lock acquisition,
// one expiry pass, and one version bump for the whole batch, so directory
// caches derived from the registry version (child sets, shard routing
// tables) rebuild once instead of once per message. It returns the number
// accepted.
func (r *Receiver) IngestBatch(msgs []*Message) int {
	now := r.clock.Now()
	batch := make([]softstate.Refreshment, 0, len(msgs))
	for _, msg := range msgs {
		if err := msg.CheckTimes(now); err != nil {
			r.reject()
			continue
		}
		var cred *gsi.Credential
		if r.Trust != nil {
			var err error
			if cred, err = msg.VerifySignature(r.Trust, now); err != nil {
				r.reject()
				continue
			}
		}
		if r.Accept != nil && !r.Accept(msg, cred) {
			r.reject()
			continue
		}
		ttl := msg.TTL(now)
		if ttl <= 0 {
			r.reject()
			continue
		}
		batch = append(batch, softstate.Refreshment{Key: msg.ServiceURL, Payload: msg, TTL: ttl})
	}
	return r.Registry.RefreshBatch(batch)
}

func (r *Receiver) reject() {
	r.mu.Lock()
	r.rejected++
	r.mu.Unlock()
}

// Rejected returns the count of messages refused for any reason.
func (r *Receiver) Rejected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rejected
}

// Close shuts down the underlying registry.
func (r *Receiver) Close() { r.Registry.Close() }
