package grrp

import (
	"net"
	"sync"
	"testing"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

var epoch = time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)

func TestMessageMarshalRoundTrip(t *testing.T) {
	m := &Message{
		Type:       TypeRegister,
		ServiceURL: "ldap://gris.hostX:2135/hn=hostX",
		MDSType:    "gris",
		VO:         "vo-a",
		SuffixDN:   "hn=hostX",
		IssuedAt:   epoch,
		ValidUntil: epoch.Add(time.Minute),
	}
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.ServiceURL != m.ServiceURL || back.VO != "vo-a" || back.Type != TypeRegister ||
		!back.ValidUntil.Equal(m.ValidUntil) {
		t.Fatalf("round trip %+v", back)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := Unmarshal([]byte("{}")); err == nil {
		t.Error("missing serviceURL should fail")
	}
}

func TestCheckTimes(t *testing.T) {
	m := &Message{ServiceURL: "x", IssuedAt: epoch, ValidUntil: epoch.Add(time.Minute)}
	if err := m.CheckTimes(epoch.Add(30 * time.Second)); err != nil {
		t.Errorf("in-interval: %v", err)
	}
	if err := m.CheckTimes(epoch.Add(5 * time.Minute)); err == nil {
		t.Error("stale message should fail")
	}
	if err := m.CheckTimes(epoch.Add(-5 * time.Minute)); err == nil {
		t.Error("future message should fail")
	}
	// Small skew is tolerated.
	if err := m.CheckTimes(epoch.Add(-10 * time.Second)); err != nil {
		t.Errorf("skew tolerance: %v", err)
	}
}

func TestLDAPEntryMapping(t *testing.T) {
	ca, _ := gsi.NewAuthority("o=ca")
	keys, _ := ca.Issue("cn=gris", time.Hour, epoch)
	m := &Message{
		Type:       TypeInvite,
		ServiceURL: "ldap://giis.vo:2135/vo=alliance",
		MDSType:    "giis",
		VO:         "alliance",
		SuffixDN:   "vo=alliance",
		IssuedAt:   epoch,
		ValidUntil: epoch.Add(2 * time.Minute),
	}
	m.Sign(keys)
	e := m.ToEntry()
	if !e.DN.IsDescendantOf(RegistrationSuffix) {
		t.Errorf("dn = %q", e.DN)
	}
	back, err := FromEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != TypeInvite || back.ServiceURL != m.ServiceURL || back.VO != "alliance" ||
		back.SuffixDN != "vo=alliance" || !back.ValidUntil.Equal(m.ValidUntil) {
		t.Fatalf("round trip %+v", back)
	}
	// Signature survives the mapping.
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	if _, err := back.VerifySignature(trust, epoch); err != nil {
		t.Fatalf("signature through LDAP mapping: %v", err)
	}
}

func TestFromEntryErrors(t *testing.T) {
	m := &Message{ServiceURL: "ldap://x", IssuedAt: epoch, ValidUntil: epoch.Add(time.Minute)}
	good := m.ToEntry()

	notReg := good.Clone()
	notReg.Set("objectclass", "computer")
	if _, err := FromEntry(notReg); err == nil {
		t.Error("non-registration entry should fail")
	}
	noURL := good.Clone()
	noURL.Delete("grrp")
	if _, err := FromEntry(noURL); err == nil {
		t.Error("missing grrp should fail")
	}
	badType := good.Clone()
	badType.Set("grrptype", "bogus")
	if _, err := FromEntry(badType); err == nil {
		t.Error("bad type should fail")
	}
	badTime := good.Clone()
	badTime.Set("issuedat", "not-a-time")
	if _, err := FromEntry(badTime); err == nil {
		t.Error("bad time should fail")
	}
}

func TestSignatureVerification(t *testing.T) {
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	keys, _ := ca.Issue("cn=gris.hostX", time.Hour, epoch)

	m := &Message{ServiceURL: "ldap://x", IssuedAt: epoch, ValidUntil: epoch.Add(time.Minute)}
	m.Sign(keys)
	cred, err := m.VerifySignature(trust, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if cred.EndEntity() != "cn=gris.hostX" {
		t.Errorf("signer = %q", cred.EndEntity())
	}
	// Tampering after signing invalidates.
	m.VO = "hijacked"
	if _, err := m.VerifySignature(trust, epoch); err == nil {
		t.Error("tampered message should fail")
	}
	// Unsigned messages are detectable.
	un := &Message{ServiceURL: "ldap://y"}
	if _, err := un.VerifySignature(trust, epoch); err != ErrUnsigned {
		t.Errorf("unsigned: %v", err)
	}
}

func TestRegistrarSustainsStream(t *testing.T) {
	clock := softstate.NewFakeClock()
	var mu sync.Mutex
	var sent []string
	tr := TransportFunc(func(to string, payload []byte) error {
		mu.Lock()
		sent = append(sent, to)
		mu.Unlock()
		return nil
	})
	g := NewRegistrar(tr, clock)
	defer g.StopAll()
	reg := Registration{
		Target:   "giis",
		Message:  Message{Type: TypeRegister, ServiceURL: "ldap://gris:1"},
		Interval: 10 * time.Second,
		TTL:      30 * time.Second,
	}
	g.Start(reg)
	waitFor(t, func() bool { return g.Sent() >= 1 })
	for i := 0; i < 3; i++ {
		clock.Advance(10 * time.Second)
		want := i + 2
		waitFor(t, func() bool { return g.Sent() >= want })
	}
	g.Stop(reg)
	base := g.Sent()
	clock.Advance(time.Minute)
	time.Sleep(20 * time.Millisecond)
	if g.Sent() != base {
		t.Error("stream kept sending after Stop")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sent) < 4 || sent[0] != "giis" {
		t.Errorf("sent = %v", sent)
	}
}

func TestRegistrarPauseResume(t *testing.T) {
	clock := softstate.NewFakeClock()
	g := NewRegistrar(TransportFunc(func(string, []byte) error { return nil }), clock)
	defer g.StopAll()
	reg := Registration{Target: "d", Message: Message{ServiceURL: "s"},
		Interval: time.Second, TTL: 3 * time.Second}
	g.Start(reg)
	waitFor(t, func() bool { return g.Sent() == 1 })
	g.Pause(reg)
	clock.Advance(time.Second)
	time.Sleep(20 * time.Millisecond)
	if g.Sent() != 1 {
		t.Fatalf("paused stream sent %d", g.Sent())
	}
	g.Resume(reg)
	clock.Advance(time.Second)
	waitFor(t, func() bool { return g.Sent() >= 2 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestReceiverIngest(t *testing.T) {
	clock := softstate.NewFakeClock()
	r := NewReceiver(clock)
	defer r.Close()
	m := &Message{ServiceURL: "ldap://gris:1", IssuedAt: clock.Now(),
		ValidUntil: clock.Now().Add(30 * time.Second)}
	if !r.Ingest(m) {
		t.Fatal("valid message rejected")
	}
	if _, ok := r.Registry.Get("ldap://gris:1"); !ok {
		t.Fatal("registry entry missing")
	}
	clock.Advance(31 * time.Second)
	if _, ok := r.Registry.Get("ldap://gris:1"); ok {
		t.Fatal("entry should expire with message TTL")
	}
	// Stale message rejected.
	if r.Ingest(m) {
		t.Error("stale message accepted")
	}
	if r.Rejected() == 0 {
		t.Error("rejections not counted")
	}
}

func TestReceiverRequiresSignature(t *testing.T) {
	clock := softstate.NewFakeClock()
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	r := NewReceiver(clock)
	defer r.Close()
	r.Trust = trust

	unsigned := &Message{ServiceURL: "ldap://x", IssuedAt: clock.Now(),
		ValidUntil: clock.Now().Add(time.Minute)}
	if r.Ingest(unsigned) {
		t.Fatal("unsigned message accepted by authenticating receiver")
	}
	keys, _ := ca.Issue("cn=gris", time.Hour, clock.Now())
	signed := &Message{ServiceURL: "ldap://x", IssuedAt: clock.Now(),
		ValidUntil: clock.Now().Add(time.Minute)}
	signed.Sign(keys)
	if !r.Ingest(signed) {
		t.Fatal("signed message rejected")
	}
}

func TestReceiverAdmissionPolicy(t *testing.T) {
	clock := softstate.NewFakeClock()
	r := NewReceiver(clock)
	defer r.Close()
	r.Accept = func(m *Message, _ *gsi.Credential) bool { return m.VO == "alliance" }

	in := &Message{ServiceURL: "a", VO: "alliance", IssuedAt: clock.Now(), ValidUntil: clock.Now().Add(time.Minute)}
	out := &Message{ServiceURL: "b", VO: "other", IssuedAt: clock.Now(), ValidUntil: clock.Now().Add(time.Minute)}
	if !r.Ingest(in) || r.Ingest(out) {
		t.Fatal("VO admission policy not enforced")
	}
	if r.Registry.Len() != 1 {
		t.Fatalf("registry = %d", r.Registry.Len())
	}
}

func TestEndToEndOverSimnet(t *testing.T) {
	clock := softstate.NewFakeClock()
	network := simnet.New(3)
	recv := NewReceiver(clock)
	defer recv.Close()
	network.HandleDatagrams("giis", recv.HandleDatagram)

	tr := TransportFunc(func(to string, payload []byte) error {
		network.SendDatagram("gris-node", to, payload)
		return nil
	})
	g := NewRegistrar(tr, clock)
	defer g.StopAll()
	g.Start(Registration{
		Target:   "giis",
		Message:  Message{Type: TypeRegister, ServiceURL: "sim://gris-node:389/hn=hostX", MDSType: "gris"},
		Interval: 10 * time.Second,
		TTL:      35 * time.Second,
	})
	waitFor(t, func() bool { return recv.Registry.Len() == 1 })

	// Partition: refreshes stop arriving, entry expires.
	network.SetPartitions([]string{"gris-node"}, []string{"giis"})
	for i := 0; i < 6; i++ {
		clock.Advance(10 * time.Second)
		time.Sleep(5 * time.Millisecond)
	}
	if recv.Registry.Len() != 0 {
		t.Fatal("registration should expire during partition")
	}
	// Heal: the sustained stream re-establishes state without any explicit
	// recovery action (Figure 4 convergence).
	network.Heal()
	clock.Advance(10 * time.Second)
	waitFor(t, func() bool { return recv.Registry.Len() == 1 })
}

func TestEndToEndOverUDP(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	recv := NewReceiver(softstate.RealClock{})
	defer recv.Close()
	go ServeUDP(pc, recv)

	tr := NewUDPTransport()
	defer tr.Close()
	now := time.Now()
	m := &Message{ServiceURL: "ldap://real:1", IssuedAt: now, ValidUntil: now.Add(time.Minute)}
	if err := tr.Send(pc.LocalAddr().String(), m.Marshal()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return recv.Registry.Len() == 1 })
}

func BenchmarkIngest(b *testing.B) {
	clock := softstate.NewFakeClock()
	r := NewReceiver(clock)
	defer r.Close()
	m := &Message{ServiceURL: "ldap://gris:1", IssuedAt: clock.Now(),
		ValidUntil: clock.Now().Add(time.Hour)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Ingest(m)
	}
}

func BenchmarkIngestSigned(b *testing.B) {
	clock := softstate.NewFakeClock()
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	keys, _ := ca.Issue("cn=gris", 100*time.Hour, clock.Now())
	r := NewReceiver(clock)
	defer r.Close()
	r.Trust = trust
	m := &Message{ServiceURL: "ldap://gris:1", IssuedAt: clock.Now(),
		ValidUntil: clock.Now().Add(time.Hour)}
	m.Sign(keys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Ingest(m) {
			b.Fatal("rejected")
		}
	}
}
