package softstate

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRefreshBatch(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()

	events, cancel := r.Subscribe()
	defer cancel()

	v0 := r.Version()
	batch := []Refreshment{
		{Key: "a", Payload: 1, TTL: time.Minute},
		{Key: "b", Payload: 2, TTL: time.Minute},
		{Key: "bad", Payload: 3, TTL: 0}, // non-positive TTL skipped
		{Key: "c", Payload: 4, TTL: 2 * time.Minute},
	}
	if got := r.RefreshBatch(batch); got != 3 {
		t.Fatalf("accepted %d, want 3", got)
	}
	if r.Len() != 3 {
		t.Fatalf("live %d, want 3", r.Len())
	}
	// One version bump for the whole batch: derived caches rebuild once.
	if v1 := r.Version(); v1 != v0+1 {
		t.Fatalf("version moved %d times, want 1", v1-v0)
	}
	// Per-item events still fire.
	joined := 0
	for i := 0; i < 3; i++ {
		ev := <-events
		if ev.Type == EventJoined {
			joined++
		}
	}
	if joined != 3 {
		t.Fatalf("joined events %d, want 3", joined)
	}

	// TTLs are honoured per item.
	clock.Advance(90 * time.Second)
	r.Sweep()
	if r.Len() != 1 {
		t.Fatalf("after 90s: live %d, want 1 (only c)", r.Len())
	}
	if _, ok := r.Get("c"); !ok {
		t.Fatal("c should survive")
	}
}

func TestSetOwnsFiltersRefreshes(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()
	r.SetOwns(func(key string, _ any) bool { return strings.HasPrefix(key, "mine") })

	if r.Refresh("theirs-1", nil, time.Minute) {
		t.Fatal("unowned key accepted by Refresh")
	}
	if !r.Refresh("mine-1", nil, time.Minute) {
		t.Fatal("owned key refused")
	}
	n := r.RefreshBatch([]Refreshment{
		{Key: "mine-2", TTL: time.Minute},
		{Key: "theirs-2", TTL: time.Minute},
	})
	if n != 1 || r.Len() != 2 {
		t.Fatalf("batch accepted %d (live %d), want 1 (live 2)", n, r.Len())
	}
	if got := r.NotOwnedTotal(); got != 2 {
		t.Fatalf("NotOwnedTotal = %d, want 2", got)
	}
}

// TestEarliestExpiryCache drives the cached-bound fast path through the
// cases that could go stale: extension of the earliest item, removal of the
// earliest item, and re-population after full expiry.
func TestEarliestExpiryCache(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()

	r.Refresh("a", nil, 10*time.Second)
	r.Refresh("b", nil, 20*time.Second)

	// Extend the earliest item: the bound is now conservative but must not
	// expire anything early.
	r.Refresh("a", nil, time.Minute)
	clock.Advance(15 * time.Second)
	r.Sweep()
	if r.Len() != 2 {
		t.Fatalf("nothing should expire at 15s, live=%d", r.Len())
	}
	clock.Advance(10 * time.Second) // t=25s: b (expires t=20s) goes
	r.Sweep()
	if _, ok := r.Get("b"); ok {
		t.Fatal("b should have expired")
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("a should be live until t=60s")
	}

	// Remove the only item; an empty table must not hold a stale bound.
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatal("registry should be empty")
	}
	r.Refresh("c", nil, 5*time.Second)
	clock.Advance(6 * time.Second)
	if r.Len() != 0 {
		t.Fatal("c should expire on schedule after repopulation")
	}
}

// BenchmarkRefreshStorm measures per-refresh cost with a large live table —
// the case the cached earliest bound converts from O(n) scans per call to
// O(1).
func BenchmarkRefreshStorm(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("live=%d", n), func(b *testing.B) {
			clock := NewFakeClock()
			r := NewRegistry(clock)
			defer r.Close()
			for i := 0; i < n; i++ {
				r.Refresh(fmt.Sprintf("k%06d", i), nil, time.Hour)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Refresh(fmt.Sprintf("k%06d", i%n), nil, time.Hour)
			}
		})
	}
}

// BenchmarkRefreshBatch compares one-at-a-time refreshes against the
// batched path for a storm of distinct keys (the directory ingest case).
func BenchmarkRefreshBatch(b *testing.B) {
	const storm = 1000
	keys := make([]string, storm)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%06d", i)
	}
	b.Run("sequential", func(b *testing.B) {
		clock := NewFakeClock()
		r := NewRegistry(clock)
		defer r.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Refresh(keys[i%storm], nil, time.Hour)
		}
	})
	b.Run("batched", func(b *testing.B) {
		clock := NewFakeClock()
		r := NewRegistry(clock)
		defer r.Close()
		batch := make([]Refreshment, storm)
		for i, k := range keys {
			batch[i] = Refreshment{Key: k, TTL: time.Hour}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i += storm {
			r.RefreshBatch(batch)
		}
	})
}
