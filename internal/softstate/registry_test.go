package softstate

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRefreshEstablishesAndExpires(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()

	if joined := r.Refresh("p1", "payload", 30*time.Second); !joined {
		t.Error("first refresh should report joined")
	}
	if joined := r.Refresh("p1", "payload", 30*time.Second); joined {
		t.Error("second refresh should not report joined")
	}
	if it, ok := r.Get("p1"); !ok || it.Payload != "payload" || it.Refreshes != 2 {
		t.Fatalf("get = %+v, %v", it, ok)
	}
	clock.Advance(29 * time.Second)
	if _, ok := r.Get("p1"); !ok {
		t.Fatal("should survive until TTL")
	}
	clock.Advance(2 * time.Second)
	if _, ok := r.Get("p1"); ok {
		t.Fatal("should expire after TTL")
	}
	// Re-registration after expiry counts as a fresh join.
	if joined := r.Refresh("p1", "v2", 30*time.Second); !joined {
		t.Error("post-expiry refresh should report joined")
	}
}

func TestRefreshExtendsLifetime(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()
	r.Refresh("p", nil, 10*time.Second)
	for i := 0; i < 10; i++ {
		clock.Advance(8 * time.Second)
		r.Refresh("p", nil, 10*time.Second)
	}
	if _, ok := r.Get("p"); !ok {
		t.Fatal("steady refresh stream should keep entry alive")
	}
	clock.Advance(11 * time.Second)
	if _, ok := r.Get("p"); ok {
		t.Fatal("stopping the stream should expire the entry")
	}
}

func TestZeroTTLRejected(t *testing.T) {
	r := NewRegistry(NewFakeClock())
	defer r.Close()
	if r.Refresh("p", nil, 0) {
		t.Error("zero TTL should be rejected")
	}
	if r.Len() != 0 {
		t.Error("no state should be established")
	}
}

func TestRemove(t *testing.T) {
	r := NewRegistry(NewFakeClock())
	defer r.Close()
	r.Refresh("p", nil, time.Minute)
	if !r.Remove("p") {
		t.Error("remove live entry")
	}
	if r.Remove("p") {
		t.Error("remove absent entry")
	}
}

func TestLiveSnapshotSorted(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()
	for _, k := range []string{"c", "a", "b"} {
		r.Refresh(k, nil, time.Minute)
	}
	r.Refresh("dead", nil, time.Second)
	clock.Advance(2 * time.Second)
	live := r.Live()
	if len(live) != 3 {
		t.Fatalf("live = %d", len(live))
	}
	for i, want := range []string{"a", "b", "c"} {
		if live[i].Key != want {
			t.Errorf("live[%d] = %q", i, live[i].Key)
		}
	}
}

func TestEvents(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()
	events, cancel := r.Subscribe()
	defer cancel()

	r.Refresh("p", 1, time.Second)
	r.Refresh("p", 2, time.Second)
	clock.Advance(2 * time.Second)
	r.Sweep()
	r.Refresh("q", 3, time.Minute)
	r.Remove("q")

	want := []struct {
		key string
		typ EventType
	}{
		{"p", EventJoined}, {"p", EventRefreshed}, {"p", EventExpired},
		{"q", EventJoined}, {"q", EventRemoved},
	}
	for i, w := range want {
		select {
		case ev := <-events:
			if ev.Key != w.key || ev.Type != w.typ {
				t.Fatalf("event %d = %s/%s, want %s/%s", i, ev.Key, ev.Type, w.key, w.typ)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("missing event %d (%s/%s)", i, w.key, w.typ)
		}
	}
}

func TestBackgroundSweepWithFakeClock(t *testing.T) {
	clock := NewFakeClock()
	r := NewRegistry(clock)
	defer r.Close()
	events, cancel := r.Subscribe()
	defer cancel()
	r.Refresh("p", nil, 5*time.Second)
	// Advance past expiry; the scheduled background sweep should fire the
	// expiry event without anyone calling Get/Sweep.
	clock.Advance(6 * time.Second)
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Type == EventExpired && ev.Key == "p" {
				return
			}
		case <-deadline:
			t.Fatal("background sweep did not fire")
		}
	}
}

func TestBackgroundSweepRealClock(t *testing.T) {
	r := NewRegistry(RealClock{})
	defer r.Close()
	events, cancel := r.Subscribe()
	defer cancel()
	r.Refresh("p", nil, 30*time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Type == EventExpired && ev.Key == "p" {
				return
			}
		case <-deadline:
			t.Fatal("real-clock sweep did not fire")
		}
	}
}

func TestConcurrentRefreshers(t *testing.T) {
	r := NewRegistry(RealClock{})
	defer r.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("p%d", g%4)
			for i := 0; i < 200; i++ {
				r.Refresh(key, g, time.Minute)
				r.Get(key)
				r.Live()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 4 {
		t.Errorf("live = %d, want 4", r.Len())
	}
}

func TestCloseStopsEverything(t *testing.T) {
	r := NewRegistry(NewFakeClock())
	events, cancel := r.Subscribe()
	defer cancel()
	r.Refresh("p", nil, time.Minute)
	r.Close()
	r.Close() // idempotent
	if r.Refresh("q", nil, time.Minute) {
		t.Error("refresh after close should fail")
	}
	// Subscription channel closes.
	for {
		if _, ok := <-events; !ok {
			break
		}
	}
}

// TestExpiryMonotonicityProperty: for any TTL and any advance pattern, an
// entry is live iff the sum of advances since its last refresh is < TTL.
func TestExpiryMonotonicityProperty(t *testing.T) {
	f := func(ttlSec uint8, steps []uint8) bool {
		ttl := time.Duration(ttlSec%60+1) * time.Second
		clock := NewFakeClock()
		r := NewRegistry(clock)
		defer r.Close()
		r.Refresh("k", nil, ttl)
		var since time.Duration
		for _, s := range steps {
			step := time.Duration(s%10) * time.Second
			clock.Advance(step)
			since += step
			_, live := r.Get("k")
			if want := since < ttl; live != want {
				return false
			}
			if !live {
				return true // expired stays expired; done
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFakeClockAfter(t *testing.T) {
	c := NewFakeClock()
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before advance")
	default:
	}
	c.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	c.Advance(5 * time.Second)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("timer did not fire")
	}
	// Non-positive durations fire immediately.
	select {
	case <-c.After(0):
	default:
		t.Fatal("zero-duration timer should be ready")
	}
}

func BenchmarkRefresh(b *testing.B) {
	r := NewRegistry(RealClock{})
	defer r.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Refresh("provider-42", nil, time.Minute)
	}
}

func BenchmarkRefreshManyKeys(b *testing.B) {
	r := NewRegistry(RealClock{})
	defer r.Close()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("provider-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Refresh(keys[i%len(keys)], nil, time.Minute)
	}
}
