package softstate

import "time"

// JournalOp enumerates registry lifecycle transitions worth persisting.
type JournalOp int

// Registry journal operations.
const (
	// JournalRefresh carries the item's full absolute state after a refresh
	// (deadline, counters, payload) — replayable idempotently.
	JournalRefresh JournalOp = iota
	// JournalRemove records an explicit removal; only Item.Key is meaningful.
	JournalRemove
	// JournalExpire records a TTL expiry the registry observed; only
	// Item.Key is meaningful. Persisting expiries keeps a recovered image
	// from resurrecting providers that were already declared dead.
	JournalExpire
)

// JournalRecord is one journaled transition.
type JournalRecord struct {
	Op   JournalOp
	Item Item
}

// Journal receives registry transitions for durability. Calls are made
// under the registry lock, immediately after the state change, with each
// batch in apply order: implementations must only encode and enqueue —
// never block, never call back into the registry. Registration durability
// is deliberately asynchronous (no ack): a lost tail re-converges through
// the protocol's own refresh cycle.
type Journal interface {
	JournalRegistry(recs []JournalRecord)
}

// SetJournal installs j as the registry's durability hook. Install at
// boot, after Restore and before traffic.
func (r *Registry) SetJournal(j Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = j
}

// journalLocked forwards a batch to the journal, if any. Caller holds r.mu.
func (r *Registry) journalLocked(recs []JournalRecord) {
	if r.journal == nil || len(recs) == 0 {
		return
	}
	r.journal.JournalRegistry(recs)
}

// Restore installs recovered items in bulk: no events, no journaling, no
// per-item locking — boot time only, before traffic. Each item keeps its
// persisted state but its deadline is raised to at least now+grace, giving
// the provider one refresh interval to confirm liveness before soft state
// purges it (the recovery grace window); items already lapsed past both
// bounds are dropped. Restored items are marked Recovered until their
// first post-boot refresh. Keys already present (a refresh beat the
// restore) are left alone. Returns the number of items restored live.
func (r *Registry) Restore(items []Item, grace time.Duration) int {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0
	}
	restored := 0
	for _, it := range items {
		if _, exists := r.items[it.Key]; exists {
			continue
		}
		deadline := it.ExpiresAt
		if g := now.Add(grace); grace > 0 && g.After(deadline) {
			deadline = g
		}
		if !deadline.After(now) {
			continue
		}
		cp := it
		cp.ExpiresAt = deadline
		cp.Recovered = true
		r.items[cp.Key] = &cp
		if r.earliest.IsZero() || deadline.Before(r.earliest) {
			r.earliest = deadline
		}
		restored++
	}
	if restored > 0 {
		r.bumpLocked()
		r.scheduleSweepLocked()
	}
	return restored
}

// RecoveredLive returns how many live items are still in the recovered-
// but-unconfirmed state (no refresh since Restore).
func (r *Registry) RecoveredLive() int {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	n := 0
	for _, it := range r.items {
		if it.Recovered {
			n++
		}
	}
	return n
}
