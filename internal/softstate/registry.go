package softstate

import (
	"sort"
	"sync"
	"time"
)

// Event describes a registry membership change.
type Event struct {
	Key     string
	Type    EventType
	Payload any
	At      time.Time
}

// EventType enumerates registry transitions.
type EventType int

// Registry transitions.
const (
	// EventJoined fires when a key first appears (or reappears after expiry).
	EventJoined EventType = iota
	// EventRefreshed fires on every refresh of a live key.
	EventRefreshed
	// EventExpired fires when a key's TTL elapses without refresh.
	EventExpired
	// EventRemoved fires on explicit removal.
	EventRemoved
)

func (t EventType) String() string {
	switch t {
	case EventJoined:
		return "joined"
	case EventRefreshed:
		return "refreshed"
	case EventExpired:
		return "expired"
	case EventRemoved:
		return "removed"
	}
	return "unknown"
}

// Item is a live registry entry.
type Item struct {
	Key       string
	Payload   any
	ExpiresAt time.Time
	// Refreshes counts notifications received for this key since it joined.
	Refreshes int
	// JoinedAt records when the key last transitioned to live.
	JoinedAt time.Time
	// LastRefresh records when the most recent refresh arrived.
	LastRefresh time.Time
	// Recovered marks an item restored from persistence and not yet
	// confirmed by a post-boot refresh; cleared on the first refresh.
	Recovered bool
}

// Registry is a TTL-keyed soft-state table. Entries are established and kept
// alive solely by Refresh calls; once a TTL elapses without refresh the
// entry expires and observers are notified. This is exactly the directory
// behaviour of §4.3: "after some time without a refresh, the directory can
// assume the provider has become unavailable, and purge knowledge of it".
type Registry struct {
	clock Clock

	mu      sync.Mutex
	items   map[string]*Item
	subs    map[int]chan Event
	nextSub int
	// version counts membership/content mutations; live caches the sorted
	// Live() snapshot until the next mutation invalidates it.
	version uint64
	live    []Item
	// sweepGen invalidates scheduled sweeps that have been superseded;
	// sweepAt is when the currently scheduled sweep fires (zero: none).
	sweepGen uint64
	sweepAt  time.Time
	closed   bool
	// expiredTotal counts entries that have ever expired (monotonic; the
	// obs registry samples it as a counter without importing this package's
	// consumers into a cycle).
	expiredTotal uint64
	// earliest is a lower bound on every live item's ExpiresAt (zero:
	// unknown, recompute on next expiry pass). It lets expireLocked answer
	// "nothing can have expired yet" without scanning the table, which turns
	// a refresh storm from O(n) scans per refresh — O(n²) overall — into
	// O(1) per refresh.
	earliest time.Time
	// owns, when set, is the shard-ownership admission check: refreshes for
	// keys this node does not own are refused and counted in notOwned.
	owns     func(key string, payload any) bool
	notOwned uint64
	// journal, when set, receives every transition for durability (see
	// Journal); invoked under mu, enqueue-only.
	journal Journal
}

// NewRegistry returns a registry driven by the given clock.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = RealClock{}
	}
	return &Registry{clock: clock, items: map[string]*Item{}, subs: map[int]chan Event{}}
}

// SetOwns installs a shard-ownership admission check: Refresh and
// RefreshBatch refuse (and count) keys for which owns reports false. A nil
// check accepts everything. Install before the registry receives traffic.
func (r *Registry) SetOwns(owns func(key string, payload any) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.owns = owns
}

// NotOwnedTotal returns the number of refreshes refused by the SetOwns
// check.
func (r *Registry) NotOwnedTotal() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notOwned
}

// Refresh establishes or renews key with the given TTL and payload,
// returning true if the key newly joined (was absent or expired).
// A non-positive TTL is rejected, returning false without establishing
// state, because it could never be observed live.
func (r *Registry) Refresh(key string, payload any, ttl time.Duration) bool {
	if ttl <= 0 {
		return false
	}
	now := r.clock.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	if r.owns != nil && !r.owns(key, payload) {
		r.notOwned++
		r.mu.Unlock()
		return false
	}
	r.expireLocked(now)
	joined := r.refreshLocked(key, payload, ttl, now)
	if r.journal != nil {
		r.journalLocked([]JournalRecord{{Op: JournalRefresh, Item: *r.items[key]}})
	}
	r.bumpLocked()
	r.scheduleSweepLocked()
	r.mu.Unlock()
	return joined
}

// refreshLocked applies one refresh and emits its event; the caller bumps
// the version and schedules the sweep (batched across a RefreshBatch).
func (r *Registry) refreshLocked(key string, payload any, ttl time.Duration, now time.Time) bool {
	it, exists := r.items[key]
	joined := !exists
	if joined {
		it = &Item{Key: key, JoinedAt: now}
		r.items[key] = it
	}
	it.Payload = payload
	it.ExpiresAt = now.Add(ttl)
	it.Refreshes++
	it.LastRefresh = now
	it.Recovered = false // first post-boot refresh confirms a recovered item
	if r.earliest.IsZero() || it.ExpiresAt.Before(r.earliest) {
		r.earliest = it.ExpiresAt
	}
	typ := EventRefreshed
	if joined {
		typ = EventJoined
	}
	r.notifyLocked(Event{Key: key, Type: typ, Payload: payload, At: now})
	return joined
}

// Refreshment is one element of a RefreshBatch.
type Refreshment struct {
	Key     string
	Payload any
	TTL     time.Duration
}

// RefreshBatch applies a batch of refreshes under one lock acquisition,
// one expiry pass, one version bump, and one sweep reschedule — the
// amortization that keeps a registration storm from invalidating derived
// caches (and rescanning the table) once per message. It returns the
// number of accepted refreshes. Per-item events still fire so observers
// see every membership change.
func (r *Registry) RefreshBatch(batch []Refreshment) int {
	now := r.clock.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0
	}
	r.expireLocked(now)
	accepted := 0
	var journaled []JournalRecord
	for _, b := range batch {
		if b.TTL <= 0 {
			continue
		}
		if r.owns != nil && !r.owns(b.Key, b.Payload) {
			r.notOwned++
			continue
		}
		r.refreshLocked(b.Key, b.Payload, b.TTL, now)
		if r.journal != nil {
			journaled = append(journaled, JournalRecord{Op: JournalRefresh, Item: *r.items[b.Key]})
		}
		accepted++
	}
	r.journalLocked(journaled)
	if accepted > 0 {
		r.bumpLocked()
		r.scheduleSweepLocked()
	}
	r.mu.Unlock()
	return accepted
}

// Remove explicitly deletes a key (soft-state protocols do not require
// this — expiry handles the common case — but invitation revocation and
// administrative removal use it).
func (r *Registry) Remove(key string) bool {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	it, ok := r.items[key]
	if !ok {
		return false
	}
	delete(r.items, key)
	if len(r.items) == 0 {
		// Keep the "zero earliest ⇔ empty table" shape; a stale non-zero
		// bound over an empty table would schedule pointless sweeps.
		r.earliest = time.Time{}
	}
	if r.journal != nil {
		r.journalLocked([]JournalRecord{{Op: JournalRemove, Item: Item{Key: key}}})
	}
	r.bumpLocked()
	r.notifyLocked(Event{Key: key, Type: EventRemoved, Payload: it.Payload, At: now})
	return true
}

// Get returns the live item for key, if present and unexpired.
func (r *Registry) Get(key string) (Item, bool) {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	it, ok := r.items[key]
	if !ok {
		return Item{}, false
	}
	return *it, true
}

// Live returns a snapshot of all unexpired items, sorted by key. The slice
// is cached and shared between calls until the next mutation; callers must
// treat it as read-only.
func (r *Registry) Live() []Item {
	now := r.clock.Now()
	r.mu.Lock()
	r.expireLocked(now)
	if r.live == nil {
		out := make([]Item, 0, len(r.items))
		for _, it := range r.items {
			out = append(out, *it)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		r.live = out
	}
	out := r.live
	r.mu.Unlock()
	return out
}

// Version returns a counter that advances on every membership or payload
// mutation (refresh, removal, expiry). Callers deriving data structures
// from Live() can use it as a cheap cache-invalidation key.
func (r *Registry) Version() uint64 {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	return r.version
}

// bumpLocked records a mutation: it advances the version and drops the
// cached Live snapshot.
func (r *Registry) bumpLocked() {
	r.version++
	r.live = nil
}

// Len returns the number of live entries.
func (r *Registry) Len() int {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	return len(r.items)
}

// Sweep forces expiry processing now; callers using a FakeClock invoke it
// after advancing time. It returns the keys expired by this call.
func (r *Registry) Sweep() []string {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expireLocked(now)
}

// Subscribe returns a channel of registry events and a cancel function.
// Delivery is best-effort: a full subscriber buffer drops events, because
// soft-state observers recover current truth from Live() at any time.
func (r *Registry) Subscribe() (<-chan Event, func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextSub
	r.nextSub++
	ch := make(chan Event, 256)
	r.subs[id] = ch
	cancel := func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if c, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

// Close expires nothing further and closes all subscriptions.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.sweepGen++
	for id, ch := range r.subs {
		delete(r.subs, id)
		close(ch)
	}
}

func (r *Registry) notifyLocked(ev Event) {
	for _, ch := range r.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (r *Registry) expireLocked(now time.Time) []string {
	// Fast path: earliest is a lower bound on all expiries, so nothing can
	// have expired before it. This is what every read and refresh hits in
	// steady state.
	if !r.earliest.IsZero() && now.Before(r.earliest) {
		return nil
	}
	var expired []string
	var nextEarliest time.Time
	for key, it := range r.items {
		if !it.ExpiresAt.After(now) {
			expired = append(expired, key)
			continue
		}
		if nextEarliest.IsZero() || it.ExpiresAt.Before(nextEarliest) {
			nextEarliest = it.ExpiresAt
		}
	}
	r.earliest = nextEarliest
	sort.Strings(expired)
	if r.journal != nil && len(expired) > 0 {
		recs := make([]JournalRecord, len(expired))
		for i, key := range expired {
			recs[i] = JournalRecord{Op: JournalExpire, Item: Item{Key: key}}
		}
		r.journalLocked(recs)
	}
	for _, key := range expired {
		it := r.items[key]
		delete(r.items, key)
		r.expiredTotal++
		r.bumpLocked()
		r.notifyLocked(Event{Key: key, Type: EventExpired, Payload: it.Payload, At: now})
	}
	return expired
}

// ExpiredTotal returns the number of entries that have ever expired.
func (r *Registry) ExpiredTotal() uint64 {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	return r.expiredTotal
}

// scheduleSweepLocked arranges a background sweep at the earliest expiry so
// that expiry events fire promptly even when nobody polls. Each call
// supersedes prior schedules. The cached earliest bound replaces the old
// full-table scan: it may be conservative (earlier than the true minimum
// after an item's expiry was extended), in which case the sweep fires,
// expires nothing, and reschedules at the recomputed bound.
func (r *Registry) scheduleSweepLocked() {
	earliest := r.earliest
	if earliest.IsZero() {
		return
	}
	// If a sweep is already scheduled at or before the new earliest expiry,
	// it will run first and reschedule; spawning another would only leak
	// timer goroutines under high refresh rates.
	if !r.sweepAt.IsZero() && !earliest.Before(r.sweepAt) {
		return
	}
	r.sweepGen++
	gen := r.sweepGen
	r.sweepAt = earliest
	wait := earliest.Sub(r.clock.Now())
	if wait < 0 {
		wait = 0
	}
	timer := r.clock.After(wait)
	go func() {
		<-timer
		r.mu.Lock()
		if r.sweepGen != gen || r.closed {
			r.mu.Unlock()
			return
		}
		r.sweepAt = time.Time{}
		r.expireLocked(r.clock.Now())
		r.scheduleSweepLocked()
		r.mu.Unlock()
	}()
}
