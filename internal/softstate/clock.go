// Package softstate implements the time-to-live registry semantics at the
// heart of GRRP (§4.3 of the paper): state established by a notification is
// discarded unless refreshed by a stream of subsequent notifications. The
// registry is the building block for GIIS provider indices, GRIS caches,
// and the unreliable failure detector.
//
// All timing flows through the Clock interface so that simulations and
// tests drive expiry deterministically; production code passes RealClock.
package softstate

import (
	"sync"
	"time"
)

// Clock supplies current time and timer channels. Implementations must be
// safe for concurrent use.
type Clock interface {
	Now() time.Time
	// After behaves like time.After.
	After(d time.Duration) <-chan time.Time
}

// RealClock adapts the wall clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// After defers to time.After.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced clock for deterministic tests and
// discrete-time simulations.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a fake clock starting at a fixed, arbitrary epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires once Advance moves the clock past d.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now //mdslint:ignore lockcheck send on buffered chan, cap 1, freshly made: cannot block
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward, firing any timers that come due.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var remaining []fakeWaiter
	var due []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	now := c.now
	c.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}
