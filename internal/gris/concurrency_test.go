package gris

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

// countingBackend is a cacheable backend safe for concurrent invocation,
// counting provider executions and optionally charging a fixed cost.
type countingBackend struct {
	suffix ldap.DN
	ttl    time.Duration
	cost   time.Duration
	calls  atomic.Int64
}

func (b *countingBackend) Name() string            { return "counting" }
func (b *countingBackend) Suffix() ldap.DN         { return b.suffix }
func (b *countingBackend) Attributes() []string    { return nil }
func (b *countingBackend) CacheTTL() time.Duration { return b.ttl }
func (b *countingBackend) Entries(*Query) ([]*ldap.Entry, error) {
	b.calls.Add(1)
	if b.cost > 0 {
		time.Sleep(b.cost)
	}
	return []*ldap.Entry{ldap.NewEntry(b.suffix).
		Add("objectclass", "computer").
		Add("hn", "hostX")}, nil
}

// nullSink discards entries; safe for concurrent use.
type nullSink struct{}

func (nullSink) SendEntry(*ldap.Entry, ...ldap.Control) error { return nil }
func (nullSink) SendReferral(...string) error                 { return nil }

// TestCacheStampedeCoalesced is the regression test for the TTL-boundary
// stampede: N concurrent queries against an expired cacheable backend must
// produce exactly one provider invocation, with every waiter sharing the
// leader's result.
func TestCacheStampedeCoalesced(t *testing.T) {
	const clients = 32
	backend := &countingBackend{suffix: hostDN(), ttl: time.Hour, cost: 20 * time.Millisecond}
	s := New(Config{Suffix: hostDN(), Clock: softstate.NewFakeClock()})
	s.Register(backend)

	req := &ldap.SearchRequest{BaseDN: hostDN().String(), Scope: ldap.ScopeWholeSubtree}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	counts := make(chan int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			w := &sink{}
			res := s.Search(anonReq(), req, w)
			errs <- res.Err()
			counts <- len(w.entries)
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent search failed: %v", err)
		}
	}
	for n := range counts {
		if n != 1 {
			t.Fatalf("waiter saw %d entries, want 1", n)
		}
	}
	if got := backend.calls.Load(); got != 1 {
		t.Errorf("backend executed %d times under stampede, want 1", got)
	}
	if got := s.Invocations.Value(); got != 1 {
		t.Errorf("Invocations = %d, want 1", got)
	}
	// All queries are accounted for: one invocation, the rest served from
	// the shared flight or the refilled cache.
	if hits := s.CacheHits.Value(); hits != clients-1 {
		t.Errorf("CacheHits = %d, want %d", hits, clients-1)
	}
}

// TestCacheExpiryReinvokes makes sure coalescing does not turn into
// serving-stale-forever: after the TTL passes, the next query invokes the
// provider again.
func TestCacheExpiryReinvokes(t *testing.T) {
	clock := softstate.NewFakeClock()
	backend := &countingBackend{suffix: hostDN(), ttl: 10 * time.Second}
	s := New(Config{Suffix: hostDN(), Clock: clock})
	s.Register(backend)
	req := &ldap.SearchRequest{BaseDN: hostDN().String(), Scope: ldap.ScopeWholeSubtree}

	s.Search(anonReq(), req, nullSink{})
	s.Search(anonReq(), req, nullSink{})
	if got := backend.calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (second query cached)", got)
	}
	clock.Advance(11 * time.Second)
	s.Search(anonReq(), req, nullSink{})
	if got := backend.calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2 after TTL expiry", got)
	}
}

// BenchmarkCacheStampede drives parallel queries whose TTL keeps expiring
// under a provider charging a real execution cost: with singleflight each
// expiry costs one invocation; without it, every concurrent miss would pay
// (and queue behind) the provider.
func BenchmarkCacheStampede(b *testing.B) {
	backend := &countingBackend{suffix: hostDN(), ttl: 10 * time.Millisecond, cost: time.Millisecond}
	s := New(Config{Suffix: hostDN()})
	s.Register(backend)
	req := &ldap.SearchRequest{BaseDN: hostDN().String(), Scope: ldap.ScopeWholeSubtree}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if res := s.Search(anonReq(), req, nullSink{}); res.Code != ldap.ResultSuccess {
				b.Fatal(res)
			}
		}
	})
	b.ReportMetric(float64(backend.calls.Load()), "invocations")
}
