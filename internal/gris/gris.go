// Package gris implements the Grid Resource Information Service of §10.3:
// the standard, configurable information-provider framework. A GRIS owns a
// namespace suffix, authenticates and parses each incoming GRIP request,
// dispatches it to the local information providers whose namespaces
// intersect the query scope, merges and filters their results, and returns
// them to the client. Per-provider caching with configurable TTL bounds
// intrusiveness; filtering happens in the GRIS — never in the provider —
// so cached supersets can serve narrower queries correctly.
package gris

import (
	"errors"
	"strings"
	"sync"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// Query carries the evaluated search parameters to a backend. Base/Scope
// describe the region of the GRIS namespace being searched; Filter may be
// used by backends with non-enumerable namespaces to direct generation
// (e.g. the NWS backend extracts endpoint names from it).
type Query struct {
	Base   ldap.DN
	Scope  ldap.Scope
	Filter *ldap.Filter
	Now    time.Time
	// Span, when the originating request is traced, is the parent span for
	// per-backend fetch spans. Nil (the common case) disables span
	// recording; all span operations are no-ops on nil.
	Span *obs.Span
}

// ErrScopeTooWide is returned by backends over non-enumerable namespaces
// when the query does not pin down the parameters needed to generate
// entries (§4.1: such providers "might signal an error and/or return
// partial results for searches that use too wide a scope").
var ErrScopeTooWide = errors.New("gris: query scope too wide for parametric namespace")

// Backend is one pluggable information source (§10.3's provider API). All
// DNs a backend returns are absolute (under the GRIS suffix).
type Backend interface {
	// Name identifies the backend in configuration and statistics.
	Name() string
	// Suffix is the subtree (absolute DN) this backend serves.
	Suffix() ldap.DN
	// Attributes enumerates the attribute names this backend can produce,
	// used for search pruning; nil means unknown (never pruned).
	Attributes() []string
	// CacheTTL is how long this backend's results stay fresh; zero
	// disables caching (each query invokes the provider).
	CacheTTL() time.Duration
	// Entries produces the backend's current objects. Implementations may
	// return a superset of what matches (the GRIS re-filters) but must
	// cover the query. They must not mutate returned entries afterward.
	Entries(q *Query) ([]*ldap.Entry, error)
}

// Config assembles a Server.
type Config struct {
	// Suffix is the GRIS's namespace root, e.g. "hn=hostX, o=center1".
	Suffix ldap.DN
	// Clock drives caching and subscriptions; nil means wall clock.
	Clock softstate.Clock
	// Policy controls information visibility (nil: everything open).
	Policy *gsi.Policy
	// Keys + Trust enable GSI mutual authentication on SASL binds; nil
	// Trust accepts only anonymous/simple binds.
	Keys  *gsi.KeyPair
	Trust *gsi.TrustStore
	// TrustedDirectories lists subjects granted the §7 trusted-directory
	// role.
	TrustedDirectories []string
	// PollInterval paces persistent-search re-evaluation (push mode);
	// zero defaults to 2s.
	PollInterval time.Duration
	// Extensions maps extended-operation OIDs to handlers — the §6 "GRIP
	// extension" point ("an information provider that interfaces to a
	// large archive might implement protocol extensions to support richer
	// relational queries").
	Extensions map[string]Extension
	// Obs, when non-nil, surfaces the server's counters (queries,
	// invocations, cache hit/miss/coalesce) under gris_* series.
	Obs *obs.Registry
	// WarmStore, when non-nil, makes the per-provider cache durable: every
	// full-subtree provider invocation is written through to this store
	// (replacing that backend's `mds-warm=<name>` namespace), and
	// WarmRestore refills the cache from it after a restart — a recovering
	// GRIS answers immediately from
	// its last known-good results instead of stalling on a cold stampede of
	// provider invocations. Wire the store to internal/persist for
	// crash-safe durability.
	WarmStore *ldap.Store
	// WarmGrace bounds how long restored results may serve before the
	// normal cache TTL forces a live provider invocation; zero (or a value
	// above the backend TTL) grants the full TTL from restore time.
	WarmGrace time.Duration
}

// Extension handles one GRIP extended operation.
type Extension func(req *ldap.Request, value []byte) ([]byte, error)

// Server is a GRIS: an ldap.Handler wired to a set of backends.
type Server struct {
	ldap.BaseHandler

	cfg   Config
	clock softstate.Clock

	mu       sync.Mutex
	backends []Backend

	// cacheMu is a read-write lock so concurrent cache hits — the common
	// case on the query hot path — never contend on a writer lock.
	cacheMu sync.RWMutex
	cache   map[string]*cacheEntry // backend name -> cached results

	// flightMu guards the singleflight table coalescing concurrent misses.
	flightMu sync.Mutex
	flights  map[string]*flight // backend name -> in-progress invocation

	// Stats
	Queries     obs.Counter
	Invocations obs.Counter // provider executions
	CacheHits   obs.Counter
	CacheMisses obs.Counter // lookups that found no fresh cache entry
	// Coalesced counts queries that joined an in-progress provider
	// invocation instead of stampeding the backend.
	Coalesced obs.Counter

	sasl *gsi.SASLBinder
}

type cacheEntry struct {
	entries   []*ldap.Entry
	fetchedAt time.Time
}

// flight is one in-progress backend invocation that concurrent cache misses
// share: the first miss runs the provider, later arrivals wait on done and
// reuse its result instead of stampeding the backend.
type flight struct {
	done    chan struct{}
	entries []*ldap.Entry
	err     error
}

// New creates a GRIS.
func New(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = softstate.RealClock{}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	s := &Server{cfg: cfg, clock: cfg.Clock,
		cache: map[string]*cacheEntry{}, flights: map[string]*flight{}}
	if cfg.Keys != nil && cfg.Trust != nil {
		s.sasl = gsi.NewSASLBinder(cfg.Keys, cfg.Trust, cfg.Clock.Now, cfg.TrustedDirectories)
	}
	if cfg.Obs != nil {
		cfg.Obs.RegisterCounter("gris_queries_total", &s.Queries)
		cfg.Obs.RegisterCounter("gris_provider_invocations_total", &s.Invocations)
		cfg.Obs.RegisterCounter("gris_cache_hits_total", &s.CacheHits)
		cfg.Obs.RegisterCounter("gris_cache_misses_total", &s.CacheMisses)
		cfg.Obs.RegisterCounter("gris_stampede_coalesced_total", &s.Coalesced)
	}
	return s
}

// Suffix returns the namespace root this GRIS serves.
func (s *Server) Suffix() ldap.DN { return s.cfg.Suffix }

// Register plugs a backend into the GRIS (configuration "can be done
// either dynamically or statically", §10.3).
func (s *Server) Register(b Backend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backends = append(s.backends, b)
}

// Backends returns the registered backend names.
func (s *Server) Backends() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.backends))
	for i, b := range s.backends {
		out[i] = b.Name()
	}
	return out
}

// warmRoot is the warm-store namespace root for one backend: its results
// are re-rooted under it so each warm entry stays attributable to the
// backend that produced it (suffixes may be shared across backends).
func warmRoot(name string) ldap.DN {
	return ldap.DN{ldap.RDN{{Attr: "mds-warm", Value: name}}}
}

// WarmRestore prefills the per-provider cache from the warm store — call it
// after persist.Manager.Recover has rebuilt the store and before serving.
// Each cacheable backend whose warm namespace has entries starts with those
// entries already cached; fetchedAt is back-dated so they stay fresh for
// min(WarmGrace, TTL) and then roll over to a live invocation on the normal
// expiry path. It returns the number of entries restored.
func (s *Server) WarmRestore() int {
	ws := s.cfg.WarmStore
	if ws == nil {
		return 0
	}
	now := s.clock.Now()
	s.mu.Lock()
	backends := append([]Backend(nil), s.backends...)
	s.mu.Unlock()
	all := ws.All()
	total := 0
	for _, b := range backends {
		ttl := b.CacheTTL()
		if ttl <= 0 {
			continue // uncacheable backends are always invoked live
		}
		root := warmRoot(b.Name())
		var entries []*ldap.Entry
		for _, e := range all {
			if e.DN.IsDescendantOf(root) {
				c := e.Clone()
				c.DN = c.DN[:len(c.DN)-1] // strip the namespace root
				entries = append(entries, c)
			}
		}
		if len(entries) == 0 {
			continue
		}
		ldap.SortEntries(entries)
		grace := s.cfg.WarmGrace
		if grace <= 0 || grace > ttl {
			grace = ttl
		}
		s.cacheMu.Lock()
		s.cache[b.Name()] = &cacheEntry{entries: entries, fetchedAt: now.Add(grace - ttl)}
		s.cacheMu.Unlock()
		total += len(entries)
	}
	return total
}

// FlushCache drops all cached provider results.
func (s *Server) FlushCache() {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.cache = map[string]*cacheEntry{}
}

// principal extracts the policy principal recorded at bind time.
func principal(req *ldap.Request) *gsi.Principal {
	if req == nil || req.State == nil {
		return nil
	}
	p, _ := req.State.Identity().(*gsi.Principal)
	return p
}

// Bind implements anonymous, simple-refused, and GSI SASL binds.
func (s *Server) Bind(req *ldap.Request, op *ldap.BindRequest) *ldap.BindResponse {
	switch {
	case op.SASLMech == "" && op.Name == "" && op.Password == "":
		return &ldap.BindResponse{Result: ldap.Result{Code: ldap.ResultSuccess}}
	case op.SASLMech == gsi.SASLMechanism:
		return s.bindGSI(req, op)
	default:
		return &ldap.BindResponse{Result: ldap.Result{
			Code:    ldap.ResultAuthMethodNotSupported,
			Message: "GRIS supports anonymous or SASL/GSI binds",
		}}
	}
}

func (s *Server) bindGSI(req *ldap.Request, op *ldap.BindRequest) *ldap.BindResponse {
	if s.sasl == nil {
		return &ldap.BindResponse{Result: ldap.Result{
			Code: ldap.ResultAuthMethodNotSupported, Message: "GSI not configured"}}
	}
	step, err := s.sasl.Step(req.State, op.SASLCreds)
	if err != nil {
		return &ldap.BindResponse{Result: ldap.Result{
			Code: ldap.ResultInvalidCredentials, Message: err.Error()}}
	}
	if step.Challenge != nil {
		return &ldap.BindResponse{
			Result:      ldap.Result{Code: ldap.ResultSaslBindInProgress},
			ServerCreds: step.Challenge,
		}
	}
	req.State.SetIdentity(step.Principal.Subject, step.Principal)
	return &ldap.BindResponse{Result: ldap.Result{Code: ldap.ResultSuccess}}
}

// Extended dispatches configured GRIP extension operations.
func (s *Server) Extended(req *ldap.Request, op *ldap.ExtendedRequest) *ldap.ExtendedResponse {
	handler, ok := s.cfg.Extensions[op.OID]
	if !ok {
		return &ldap.ExtendedResponse{Result: ldap.Result{Code: ldap.ResultProtocolError,
			Message: "unsupported extended operation " + op.OID}}
	}
	out, err := handler(req, op.Value)
	if err != nil {
		return &ldap.ExtendedResponse{OID: op.OID, Result: ldap.Result{
			Code: ldap.ResultUnwillingToPerform, Message: err.Error()}}
	}
	return &ldap.ExtendedResponse{OID: op.OID, Value: out,
		Result: ldap.Result{Code: ldap.ResultSuccess}}
}

// rootDSE is the server's self-description, served for a base search at the
// empty DN as real LDAP servers do. It advertises the namespace suffix and
// every supported protocol extension — the §6 "service publication"
// mechanism by which a provider "can indicate that this protocol is
// supported".
func (s *Server) rootDSE() *ldap.Entry {
	e := ldap.NewEntry(ldap.DN{}).
		Add("objectclass", "top").
		Add("vendorname", "mds2").
		Add("mdstype", "gris").
		Add("namingcontexts", s.cfg.Suffix.String()).
		Add("supportedcontrol", ldap.OIDPersistentSearch).
		Add("supportedsaslmechanisms", gsi.SASLMechanism)
	for oid := range s.cfg.Extensions {
		e.Add("supportedextension", oid)
	}
	return e
}

// Search implements GRIP enquiry, discovery, and (with the persistent
// search control) subscription.
func (s *Server) Search(req *ldap.Request, op *ldap.SearchRequest, w ldap.SearchWriter) ldap.Result {
	s.Queries.Inc()
	base, err := ldap.ParseDN(op.BaseDN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultProtocolError, Message: err.Error()}
	}
	if base.IsZero() && op.Scope == ldap.ScopeBaseObject {
		dse := s.rootDSE()
		if op.Filter == nil || op.Filter.Matches(dse) {
			if err := w.SendEntry(dse.Select(op.Attributes)); err != nil {
				return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
			}
		}
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	// The searched region must intersect our suffix.
	if !regionsIntersect(base, op.Scope, s.cfg.Suffix) {
		return ldap.Result{Code: ldap.ResultNoSuchObject, MatchedDN: s.cfg.Suffix.String()}
	}
	p := principal(req)
	if s.cfg.Policy != nil {
		sample := ldap.NewEntry(s.cfg.Suffix)
		if !s.cfg.Policy.FilterAuthorized(p, op.Filter, sample) {
			return ldap.Result{Code: ldap.ResultInsufficientAccessRights,
				Message: "filter references restricted attributes"}
		}
	}
	if _, isPS := ldap.FindControl(req.Controls, ldap.OIDPersistentSearch); isPS {
		return s.persistentSearch(req, op, base, w, p)
	}
	entries, partial := s.evaluate(&Query{Base: base, Scope: op.Scope, Filter: op.Filter,
		Now: s.clock.Now(), Span: req.Span})
	sent := int64(0)
	for _, e := range entries {
		visible := s.redact(p, e, op)
		if visible == nil {
			continue
		}
		if op.SizeLimit > 0 && sent >= op.SizeLimit {
			return ldap.Result{Code: ldap.ResultSizeLimitExceeded}
		}
		if err := w.SendEntry(visible); err != nil {
			return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
		}
		sent++
	}
	res := ldap.Result{Code: ldap.ResultSuccess}
	if partial {
		res.Message = "partial results: some providers require narrower scope"
	}
	return res
}

// redact applies policy and attribute selection, returning nil when the
// entry is hidden from this principal.
func (s *Server) redact(p *gsi.Principal, e *ldap.Entry, op *ldap.SearchRequest) *ldap.Entry {
	visible := e
	if s.cfg.Policy != nil {
		visible = s.cfg.Policy.Redact(p, e)
		if visible == nil {
			return nil
		}
	}
	out := visible.Select(op.Attributes)
	if op.TypesOnly {
		for i := range out.Attrs {
			out.Attrs[i].Values = nil
		}
	}
	return out
}

// evaluate runs the query against all intersecting backends, merging
// results. It reports whether any backend declined for scope reasons.
func (s *Server) evaluate(q *Query) ([]*ldap.Entry, bool) {
	s.mu.Lock()
	backends := append([]Backend(nil), s.backends...)
	s.mu.Unlock()

	var out []*ldap.Entry
	partial := false
	// Compile once per query: cached backends return supersets that are
	// re-filtered per entry here, so the per-entry match must not re-fold.
	cf := q.Filter.Compile()
	for _, b := range backends {
		if !regionsIntersect(q.Base, q.Scope, b.Suffix()) {
			continue
		}
		if pruneByAttributes(q.Filter, b.Attributes()) {
			continue
		}
		sp := q.Span.Child("backend:" + b.Name())
		entries, err := s.fetch(b, q, sp)
		sp.End()
		if err != nil {
			if errors.Is(err, ErrScopeTooWide) {
				partial = true
				continue
			}
			// A failed provider must not prevent results from others
			// (§2.2 robustness requirement).
			partial = true
			continue
		}
		for _, e := range entries {
			if !e.DN.WithinScope(q.Base, q.Scope) {
				continue
			}
			if !cf.Matches(e) {
				continue
			}
			out = append(out, e)
		}
	}
	ldap.SortEntries(out)
	return out, partial
}

// fetch returns backend results through the per-provider cache. Cached
// results are supersets processed per-request ("cached providers can
// maximize their performance by returning a superset of results that are
// then processed out of the cache", §10.3). Backends with zero TTL, or
// parametric backends (whose output depends on the filter), are invoked
// every time. Concurrent queries that miss an expired TTL are coalesced
// into a single provider invocation: without that, every TTL boundary
// under load turns into an N× stampede on the backend.
func (s *Server) fetch(b Backend, q *Query, sp *obs.Span) ([]*ldap.Entry, error) {
	ttl := b.CacheTTL()
	if ttl <= 0 {
		s.Invocations.Inc()
		sp.SetNote("invoke")
		return b.Entries(q)
	}
	if entries, ok := s.cached(b.Name(), q.Now, ttl); ok {
		s.CacheHits.Inc()
		sp.SetNote("hit")
		return entries, nil
	}
	s.CacheMisses.Inc()
	return s.refresh(b, q.Now, ttl, sp)
}

// cached returns the fresh cache contents for a backend, if any. Reads take
// only the shared lock, so cache hits never serialize behind each other.
func (s *Server) cached(name string, now time.Time, ttl time.Duration) ([]*ldap.Entry, bool) {
	s.cacheMu.RLock()
	defer s.cacheMu.RUnlock()
	if ce := s.cache[name]; ce != nil && now.Sub(ce.fetchedAt) < ttl {
		return ce.entries, true
	}
	return nil, false
}

// refresh invokes the backend once per expiry, no matter how many queries
// miss concurrently: the first miss becomes the flight leader and runs the
// provider; the rest wait on the flight and share its result.
func (s *Server) refresh(b Backend, now time.Time, ttl time.Duration, sp *obs.Span) ([]*ldap.Entry, error) {
	name := b.Name()
	s.flightMu.Lock()
	if f := s.flights[name]; f != nil {
		s.flightMu.Unlock()
		s.Coalesced.Inc()
		sp.SetNote("miss,coalesced")
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		s.CacheHits.Inc()
		return f.entries, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[name] = f
	s.flightMu.Unlock()

	// A previous leader may have refilled the cache between our miss and
	// taking flight leadership; re-check before paying for an invocation.
	if entries, ok := s.cached(name, now, ttl); ok {
		f.entries = entries
		s.finishFlight(name, f)
		s.CacheHits.Inc()
		sp.SetNote("hit")
		return entries, nil
	}

	s.Invocations.Inc()
	sp.SetNote("miss,invoke")
	// Cacheable backends are queried for their full subtree so the cache
	// is a superset serving any narrower query.
	full := &Query{Base: b.Suffix(), Scope: ldap.ScopeWholeSubtree, Now: now}
	entries, err := b.Entries(full)
	if err == nil {
		s.cacheMu.Lock()
		s.cache[name] = &cacheEntry{entries: entries, fetchedAt: now}
		s.cacheMu.Unlock()
		if ws := s.cfg.WarmStore; ws != nil {
			// Write-through: replace the backend's warm subtree with the
			// fresh superset so a post-crash WarmRestore sees the last
			// completed invocation, never a blend of two rounds. Entries are
			// re-rooted under a per-backend namespace so that backends
			// sharing a suffix never wipe each other's warm state and
			// restore attributes each entry to the backend that produced it.
			// A warm-store write failure (sticky WAL error) must not fail
			// the query — the live result is still correct; durability
			// degrades to the previous round.
			root := warmRoot(name)
			ws.RemoveSubtree(root)
			warm := make([]*ldap.Entry, 0, len(entries))
			for _, e := range entries {
				c := e.Clone()
				c.DN = append(c.DN, root[0])
				warm = append(warm, c)
			}
			_ = ws.PutAll(warm)
		}
	}
	f.entries, f.err = entries, err
	s.finishFlight(name, f)
	return entries, err
}

// finishFlight publishes the flight result and retires it so the next
// expiry starts a fresh invocation.
func (s *Server) finishFlight(name string, f *flight) {
	s.flightMu.Lock()
	delete(s.flights, name)
	s.flightMu.Unlock()
	close(f.done)
}

// persistentSearch implements push-mode GRIP on a GRIS by periodic
// re-evaluation: entries whose content changed (or appeared) since the last
// round are streamed to the subscriber. This supplies the §6 "push mode"
// delivery model.
func (s *Server) persistentSearch(req *ldap.Request, op *ldap.SearchRequest,
	base ldap.DN, w ldap.SearchWriter, p *gsi.Principal) ldap.Result {

	psCtl, _ := ldap.FindControl(req.Controls, ldap.OIDPersistentSearch)
	ps, err := ldap.ParsePersistentSearch(psCtl)
	if err != nil {
		return ldap.Result{Code: ldap.ResultProtocolError, Message: err.Error()}
	}
	last := map[string]string{} // normalized DN -> content fingerprint
	send := func(e *ldap.Entry, changeType int64) error {
		visible := s.redact(p, e, op)
		if visible == nil {
			return nil
		}
		var controls []ldap.Control
		if ps.ReturnECs {
			controls = append(controls, ldap.NewEntryChangeControl(changeType))
		}
		return w.SendEntry(visible, controls...)
	}
	first := true
	for {
		entries, _ := s.evaluate(&Query{Base: base, Scope: op.Scope, Filter: op.Filter, Now: s.clock.Now()})
		seen := map[string]bool{}
		for _, e := range entries {
			key := e.DN.Normalize()
			seen[key] = true
			fp := fingerprint(e)
			prev, existed := last[key]
			if existed && prev == fp {
				continue
			}
			last[key] = fp
			changeType := ldap.ChangeModify
			if !existed {
				changeType = ldap.ChangeAdd
			}
			if first && ps.ChangesOnly {
				continue // baseline suppressed; only subsequent changes flow
			}
			if ps.ChangeTypes&changeType == 0 {
				continue
			}
			if err := send(e, changeType); err != nil {
				return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
			}
		}
		for key := range last {
			if !seen[key] {
				delete(last, key)
			}
		}
		first = false
		select {
		case <-req.Ctx.Done():
			return ldap.Result{Code: ldap.ResultSuccess, Message: "subscription abandoned"}
		case <-s.clock.After(s.cfg.PollInterval):
		}
	}
}

func fingerprint(e *ldap.Entry) string {
	cp := e.Clone()
	cp.SortAttrs()
	var b strings.Builder
	for _, a := range cp.Attrs {
		b.WriteString(strings.ToLower(a.Name))
		b.WriteByte('=')
		for _, v := range a.Values {
			b.WriteString(v)
			b.WriteByte('|')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// regionsIntersect reports whether a search region (base+scope) can contain
// entries under suffix. True when suffix lies inside the region or the base
// lies inside suffix's subtree.
func regionsIntersect(base ldap.DN, scope ldap.Scope, suffix ldap.DN) bool {
	if base.Equal(suffix) || base.IsDescendantOf(suffix) {
		return true
	}
	switch scope {
	case ldap.ScopeBaseObject:
		return false
	case ldap.ScopeSingleLevel:
		return suffix.Depth() == base.Depth()+1 && suffix.IsDescendantOf(base)
	default: // whole subtree
		return suffix.IsDescendantOf(base)
	}
}

// pruneByAttributes reports whether the filter provably cannot match any
// entry this backend produces: it requires (conjunctively) an attribute the
// backend never emits. Backends advertising nil attributes are never pruned.
func pruneByAttributes(f *ldap.Filter, backendAttrs []string) bool {
	if f == nil || backendAttrs == nil {
		return false
	}
	have := map[string]bool{"objectclass": true}
	for _, a := range backendAttrs {
		have[strings.ToLower(a)] = true
	}
	return !satisfiable(f, have)
}

// satisfiable conservatively decides whether f could match an entry whose
// attributes come only from `have`. Negations are treated as always
// satisfiable (an absent attribute satisfies them).
func satisfiable(f *ldap.Filter, have map[string]bool) bool {
	switch f.Kind {
	case ldap.FilterAnd:
		for _, sub := range f.Subs {
			if !satisfiable(sub, have) {
				return false
			}
		}
		return true
	case ldap.FilterOr:
		for _, sub := range f.Subs {
			if satisfiable(sub, have) {
				return true
			}
		}
		return false
	case ldap.FilterNot:
		return true
	default:
		return have[strings.ToLower(f.Attr)]
	}
}
