package gris

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

// fakeBackend is a scriptable backend for unit tests.
type fakeBackend struct {
	name    string
	suffix  ldap.DN
	attrs   []string
	ttl     time.Duration
	entries []*ldap.Entry
	err     error
	calls   int
}

func (b *fakeBackend) Name() string            { return b.name }
func (b *fakeBackend) Suffix() ldap.DN         { return b.suffix }
func (b *fakeBackend) Attributes() []string    { return b.attrs }
func (b *fakeBackend) CacheTTL() time.Duration { return b.ttl }
func (b *fakeBackend) Entries(*Query) ([]*ldap.Entry, error) {
	b.calls++
	if b.err != nil {
		return nil, b.err
	}
	return b.entries, nil
}

type sink struct {
	entries []*ldap.Entry
	ctls    [][]ldap.Control
}

func (s *sink) SendEntry(e *ldap.Entry, cs ...ldap.Control) error {
	s.entries = append(s.entries, e)
	s.ctls = append(s.ctls, cs)
	return nil
}
func (s *sink) SendReferral(...string) error { return nil }

func hostDN() ldap.DN { return ldap.MustParseDN("hn=hostX, o=center1") }

func anonReq() *ldap.Request {
	return &ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}}
}

func newTestGRIS(clock softstate.Clock) (*Server, *fakeBackend, *fakeBackend) {
	s := New(Config{Suffix: hostDN(), Clock: clock})
	static := &fakeBackend{
		name: "static", suffix: hostDN(),
		attrs: []string{"hn", "system", "cpucount"},
		ttl:   time.Hour,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN()).
			Add("objectclass", "computer").
			Add("hn", "hostX").
			Add("system", "linux").
			Add("cpucount", "8")},
	}
	dynamic := &fakeBackend{
		name: "dynamic", suffix: hostDN(),
		attrs: []string{"perf", "load5"},
		ttl:   10 * time.Second,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN().ChildAVA("perf", "load")).
			Add("objectclass", "perf", "loadaverage").
			Add("perf", "load").
			Add("load5", "1.5")},
	}
	s.Register(static)
	s.Register(dynamic)
	return s, static, dynamic
}

func TestSearchMergesBackends(t *testing.T) {
	s, _, _ := newTestGRIS(softstate.NewFakeClock())
	w := &sink{}
	res := s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree}, w)
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("result %+v", res)
	}
	if len(w.entries) != 2 {
		t.Fatalf("entries = %d", len(w.entries))
	}
	// Deterministic order: parent before child.
	if !w.entries[0].DN.Equal(hostDN()) {
		t.Errorf("order: first = %q", w.entries[0].DN)
	}
}

func TestSearchFiltersServerSide(t *testing.T) {
	s, _, _ := newTestGRIS(softstate.NewFakeClock())
	w := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=loadaverage)")}, w)
	if len(w.entries) != 1 || w.entries[0].First("load5") != "1.5" {
		t.Fatalf("entries = %v", w.entries)
	}
}

func TestSearchScopePruning(t *testing.T) {
	s, static, dynamic := newTestGRIS(softstate.NewFakeClock())
	w := &sink{}
	// Base search on the host entry itself must not consult the dynamic
	// backend's child entries... both backends share the suffix, so both
	// are consulted, but only the host entry is returned.
	res := s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeBaseObject}, w)
	if res.Code != ldap.ResultSuccess || len(w.entries) != 1 {
		t.Fatalf("base search: %+v, %d entries", res, len(w.entries))
	}
	_ = static
	_ = dynamic
	// A search rooted elsewhere entirely is noSuchObject.
	res = s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "o=elsewhere", Scope: ldap.ScopeWholeSubtree}, &sink{})
	if res.Code != ldap.ResultNoSuchObject {
		t.Fatalf("foreign base: %+v", res)
	}
	// A subtree search above the suffix reaches us.
	w2 := &sink{}
	res = s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "o=center1", Scope: ldap.ScopeWholeSubtree}, w2)
	if res.Code != ldap.ResultSuccess || len(w2.entries) != 2 {
		t.Fatalf("parent subtree: %+v, %d", res, len(w2.entries))
	}
}

func TestAttributePruningSkipsBackend(t *testing.T) {
	s, static, dynamic := newTestGRIS(softstate.NewFakeClock())
	// Uncached path so calls are observable.
	static.ttl = 0
	dynamic.ttl = 0
	w := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(objectclass=computer)(cpucount>=4))")}, w)
	if static.calls != 1 {
		t.Errorf("static calls = %d", static.calls)
	}
	if dynamic.calls != 0 {
		t.Errorf("dynamic should be pruned (cpucount not in its attrs), calls = %d", dynamic.calls)
	}
	// Disjunctive filters cannot prune unless all branches are foreign.
	w2 := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(|(cpucount>=4)(load5<=9))")}, w2)
	if dynamic.calls != 1 {
		t.Errorf("dynamic should run for disjunction, calls = %d", dynamic.calls)
	}
}

func TestCacheServesRepeatQueries(t *testing.T) {
	clock := softstate.NewFakeClock()
	s, static, _ := newTestGRIS(clock)
	req := &ldap.SearchRequest{BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")}
	for i := 0; i < 5; i++ {
		s.Search(anonReq(), req, &sink{})
	}
	if static.calls != 1 {
		t.Fatalf("static invoked %d times, want 1 (cached)", static.calls)
	}
	if s.CacheHits.Value() == 0 {
		t.Error("cache hits not counted")
	}
	// TTL expiry triggers re-invocation.
	clock.Advance(2 * time.Hour)
	s.Search(anonReq(), req, &sink{})
	if static.calls != 2 {
		t.Fatalf("static invoked %d times after TTL, want 2", static.calls)
	}
	// FlushCache forces invocation.
	s.FlushCache()
	s.Search(anonReq(), req, &sink{})
	if static.calls != 3 {
		t.Fatalf("static invoked %d times after flush, want 3", static.calls)
	}
}

func TestCachedSupersetServesNarrowQueries(t *testing.T) {
	clock := softstate.NewFakeClock()
	s, _, dynamic := newTestGRIS(clock)
	// Wide query populates the cache.
	s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree}, &sink{})
	// Narrow query with a filter is served from the cached superset.
	w := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "perf=load, hn=hostX, o=center1", Scope: ldap.ScopeBaseObject,
		Filter: ldap.MustParseFilter("(load5>=1.0)")}, w)
	if len(w.entries) != 1 {
		t.Fatalf("narrow query entries = %d", len(w.entries))
	}
	if dynamic.calls != 1 {
		t.Fatalf("dynamic invoked %d times, want 1", dynamic.calls)
	}
}

func TestFailedBackendDoesNotPreventOthers(t *testing.T) {
	s, static, _ := newTestGRIS(softstate.NewFakeClock())
	static.err = errors.New("provider crashed")
	static.ttl = 0
	w := &sink{}
	res := s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree}, w)
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("result %+v", res)
	}
	if len(w.entries) != 1 || w.entries[0].First("load5") != "1.5" {
		t.Fatalf("surviving backend results = %v", w.entries)
	}
	if res.Message == "" {
		t.Error("partial results should be flagged")
	}
}

func TestScopeTooWideYieldsPartial(t *testing.T) {
	s, _, _ := newTestGRIS(softstate.NewFakeClock())
	parametric := &fakeBackend{name: "param", suffix: hostDN().ChildAVA("net", "links"),
		ttl: 0, err: ErrScopeTooWide}
	s.Register(parametric)
	w := &sink{}
	res := s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree}, w)
	if res.Code != ldap.ResultSuccess || res.Message == "" {
		t.Fatalf("res = %+v", res)
	}
	if len(w.entries) != 2 {
		t.Fatalf("other backends still answer: %d", len(w.entries))
	}
}

func TestAttributeSelectionAndTypesOnly(t *testing.T) {
	s, _, _ := newTestGRIS(softstate.NewFakeClock())
	w := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeBaseObject,
		Attributes: []string{"system"}}, w)
	if len(w.entries) != 1 || len(w.entries[0].Attrs) != 1 || !w.entries[0].Has("system") {
		t.Fatalf("selection: %v", w.entries[0])
	}
	w2 := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeBaseObject,
		TypesOnly: true}, w2)
	for _, a := range w2.entries[0].Attrs {
		if len(a.Values) != 0 {
			t.Fatalf("typesOnly leaked values: %+v", a)
		}
	}
}

func TestSizeLimit(t *testing.T) {
	s, _, _ := newTestGRIS(softstate.NewFakeClock())
	w := &sink{}
	res := s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree, SizeLimit: 1}, w)
	if res.Code != ldap.ResultSizeLimitExceeded || len(w.entries) != 1 {
		t.Fatalf("res=%+v n=%d", res, len(w.entries))
	}
}

func TestPolicyEnforcement(t *testing.T) {
	clock := softstate.NewFakeClock()
	policy := gsi.NewPolicy(gsi.PostureRestricted).
		Grant("anonymous", "objectclass", "hn", "system").
		Grant("cn=broker", "*")
	s := New(Config{Suffix: hostDN(), Clock: clock, Policy: policy})
	s.Register(&fakeBackend{
		name: "b", suffix: hostDN(), ttl: time.Hour,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN()).
			Add("objectclass", "computer").
			Add("hn", "hostX").
			Add("system", "linux").
			Add("load5", "0.2")},
	})
	// Anonymous sees redacted view.
	w := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeBaseObject}, w)
	if len(w.entries) != 1 || w.entries[0].Has("load5") {
		t.Fatalf("anonymous view: %v", w.entries)
	}
	// Anonymous may not filter on restricted attributes.
	res := s.Search(anonReq(), &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(load5<=1.0)")}, &sink{})
	if res.Code != ldap.ResultInsufficientAccessRights {
		t.Fatalf("restricted filter: %+v", res)
	}
	// The broker principal sees everything.
	req := anonReq()
	req.State.SetIdentity("cn=broker", &gsi.Principal{Subject: "cn=broker"})
	w2 := &sink{}
	res = s.Search(req, &ldap.SearchRequest{
		BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(load5<=1.0)")}, w2)
	if res.Code != ldap.ResultSuccess || len(w2.entries) != 1 || !w2.entries[0].Has("load5") {
		t.Fatalf("broker view: %+v %v", res, w2.entries)
	}
}

func TestBindPolicies(t *testing.T) {
	s, _, _ := newTestGRIS(softstate.NewFakeClock())
	if r := s.Bind(anonReq(), &ldap.BindRequest{Version: 3}); r.Code != ldap.ResultSuccess {
		t.Errorf("anonymous: %+v", r)
	}
	if r := s.Bind(anonReq(), &ldap.BindRequest{Version: 3, Name: "x", Password: "y"}); r.Code != ldap.ResultAuthMethodNotSupported {
		t.Errorf("simple w/ password: %+v", r)
	}
	if r := s.Bind(anonReq(), &ldap.BindRequest{Version: 3, SASLMech: "GSI"}); r.Code != ldap.ResultAuthMethodNotSupported {
		t.Errorf("GSI unconfigured: %+v", r)
	}
}

func TestGSIBindHandshake(t *testing.T) {
	clock := softstate.NewFakeClock()
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	serverKeys, _ := ca.Issue("cn=gris.hostX", time.Hour, clock.Now())
	clientKeys, _ := ca.Issue("cn=alice", time.Hour, clock.Now())

	s := New(Config{Suffix: hostDN(), Clock: clock, Keys: serverKeys, Trust: trust,
		TrustedDirectories: []string{"cn=alice"}})

	state := &ldap.ConnState{}
	req := &ldap.Request{Ctx: context.Background(), State: state}
	hs := gsi.NewClientHandshake(clientKeys, trust, clock.Now)
	hello, err := hs.Hello()
	if err != nil {
		t.Fatal(err)
	}
	resp := s.Bind(req, &ldap.BindRequest{Version: 3, SASLMech: gsi.SASLMechanism, SASLCreds: hello})
	if resp.Code != ldap.ResultSaslBindInProgress {
		t.Fatalf("first bind: %+v", resp)
	}
	proof, err := hs.Respond(resp.ServerCreds)
	if err != nil {
		t.Fatal(err)
	}
	resp = s.Bind(req, &ldap.BindRequest{Version: 3, SASLMech: gsi.SASLMechanism, SASLCreds: proof})
	if resp.Code != ldap.ResultSuccess {
		t.Fatalf("second bind: %+v", resp)
	}
	p, _ := state.Identity().(*gsi.Principal)
	if p == nil || p.Subject != "cn=alice" || !p.TrustedDirectory {
		t.Fatalf("principal = %+v", p)
	}
}

func TestGSIBindRejectsBadProof(t *testing.T) {
	clock := softstate.NewFakeClock()
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	serverKeys, _ := ca.Issue("cn=gris", time.Hour, clock.Now())
	clientKeys, _ := ca.Issue("cn=alice", time.Hour, clock.Now())
	s := New(Config{Suffix: hostDN(), Clock: clock, Keys: serverKeys, Trust: trust})

	state := &ldap.ConnState{}
	req := &ldap.Request{Ctx: context.Background(), State: state}
	hs := gsi.NewClientHandshake(clientKeys, trust, clock.Now)
	hello, _ := hs.Hello()
	resp := s.Bind(req, &ldap.BindRequest{SASLMech: gsi.SASLMechanism, SASLCreds: hello})
	if resp.Code != ldap.ResultSaslBindInProgress {
		t.Fatal(resp)
	}
	resp = s.Bind(req, &ldap.BindRequest{SASLMech: gsi.SASLMechanism, SASLCreds: []byte("{}")})
	if resp.Code != ldap.ResultInvalidCredentials {
		t.Fatalf("bad proof: %+v", resp)
	}
	if state.Identity() != nil {
		t.Error("identity must not be set after failed handshake")
	}
}

func TestPersistentSearchPushesChanges(t *testing.T) {
	clock := softstate.NewFakeClock()
	s := New(Config{Suffix: hostDN(), Clock: clock, PollInterval: time.Second})
	value := "1.0"
	s.Register(&fakeBackend{name: "dyn", suffix: hostDN(), ttl: 0})
	dyn := &fakeBackend{name: "dyn2", suffix: hostDN(), ttl: 0}
	s.Register(dyn)
	makeEntry := func(v string) []*ldap.Entry {
		return []*ldap.Entry{ldap.NewEntry(hostDN().ChildAVA("perf", "load")).
			Add("objectclass", "loadaverage").Add("perf", "load").Add("load5", v)}
	}
	dyn.entries = makeEntry(value)

	ctx, cancel := context.WithCancel(context.Background())
	req := &ldap.Request{Ctx: ctx, State: &ldap.ConnState{},
		Controls: []ldap.Control{ldap.NewPersistentSearchControl(ldap.PersistentSearch{
			ChangeTypes: ldap.ChangeAll, ChangesOnly: false, ReturnECs: true})}}
	got := make(chan *ldap.Entry, 16)
	w := pushSink{got: got}
	done := make(chan ldap.Result, 1)
	go func() {
		done <- s.Search(req, &ldap.SearchRequest{
			BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree}, w)
	}()
	// Baseline entry arrives.
	e := <-got
	if e.First("load5") != "1.0" {
		t.Fatalf("baseline = %v", e)
	}
	// Change the value; next poll pushes an update.
	dyn.entries = makeEntry("2.0")
	clock.Advance(time.Second)
	select {
	case e := <-got:
		if e.First("load5") != "2.0" {
			t.Fatalf("update = %v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no push on change")
	}
	// Unchanged value: no extra push.
	clock.Advance(time.Second)
	select {
	case e := <-got:
		t.Fatalf("unexpected push %v", e)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case res := <-done:
		if res.Code != ldap.ResultSuccess {
			t.Fatalf("final = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("persistent search did not exit")
	}
}

type pushSink struct{ got chan *ldap.Entry }

func (p pushSink) SendEntry(e *ldap.Entry, _ ...ldap.Control) error {
	p.got <- e
	return nil
}
func (p pushSink) SendReferral(...string) error { return nil }

func TestRegionsIntersect(t *testing.T) {
	suffix := ldap.MustParseDN("hn=h, o=c")
	cases := []struct {
		base  string
		scope ldap.Scope
		want  bool
	}{
		{"hn=h, o=c", ldap.ScopeBaseObject, true},
		{"perf=l, hn=h, o=c", ldap.ScopeBaseObject, true},
		{"o=c", ldap.ScopeBaseObject, false},
		{"o=c", ldap.ScopeSingleLevel, true},
		{"", ldap.ScopeSingleLevel, false},
		{"o=c", ldap.ScopeWholeSubtree, true},
		{"", ldap.ScopeWholeSubtree, true},
		{"o=other", ldap.ScopeWholeSubtree, false},
	}
	for _, tc := range cases {
		if got := regionsIntersect(ldap.MustParseDN(tc.base), tc.scope, suffix); got != tc.want {
			t.Errorf("regionsIntersect(%q, %v) = %v, want %v", tc.base, tc.scope, got, tc.want)
		}
	}
}

func TestBackendsListing(t *testing.T) {
	s, _, _ := newTestGRIS(softstate.NewFakeClock())
	names := s.Backends()
	if len(names) != 2 || names[0] != "static" {
		t.Errorf("backends = %v", names)
	}
	if !s.Suffix().Equal(hostDN()) {
		t.Error("suffix accessor")
	}
}

func BenchmarkSearchCached(b *testing.B) {
	s, _, _ := newTestGRIS(softstate.RealClock{})
	req := &ldap.SearchRequest{BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")}
	r := anonReq()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Search(r, req, &sink{})
	}
}

func BenchmarkSearchUncached(b *testing.B) {
	s := New(Config{Suffix: hostDN(), Clock: softstate.RealClock{}})
	s.Register(&fakeBackend{name: "b", suffix: hostDN(), ttl: 0,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN()).Add("objectclass", "computer").Add("hn", "x")}})
	req := &ldap.SearchRequest{BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree}
	r := anonReq()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Search(r, req, &sink{})
	}
}

func TestManyBackendsScale(t *testing.T) {
	clock := softstate.NewFakeClock()
	s := New(Config{Suffix: ldap.MustParseDN("o=center"), Clock: clock})
	for i := 0; i < 100; i++ {
		dn := ldap.MustParseDN(fmt.Sprintf("hn=h%d, o=center", i))
		s.Register(&fakeBackend{
			name: fmt.Sprintf("b%d", i), suffix: dn, ttl: time.Hour,
			entries: []*ldap.Entry{ldap.NewEntry(dn).Add("objectclass", "computer").Add("hn", fmt.Sprintf("h%d", i))},
		})
	}
	w := &sink{}
	res := s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "o=center", Scope: ldap.ScopeWholeSubtree}, w)
	if res.Code != ldap.ResultSuccess || len(w.entries) != 100 {
		t.Fatalf("res=%+v n=%d", res, len(w.entries))
	}
	// A scoped query touches only one backend's subtree.
	w2 := &sink{}
	s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "hn=h42, o=center", Scope: ldap.ScopeWholeSubtree}, w2)
	if len(w2.entries) != 1 {
		t.Fatalf("scoped = %d", len(w2.entries))
	}
}

// TestWarmRestoreRoundTrip: a query on one server writes through to the warm
// store; a second server sharing that store answers from WarmRestore without
// invoking any backend, and rolls over to a live invocation once the warm
// grace expires.
func TestWarmRestoreRoundTrip(t *testing.T) {
	clock := softstate.NewFakeClock()
	ws := ldap.NewStore()
	static := &fakeBackend{
		name: "static", suffix: hostDN(),
		attrs: []string{"hn", "system"},
		ttl:   time.Hour,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN()).
			Add("objectclass", "computer").
			Add("hn", "hostX").
			Add("system", "linux")},
	}
	s1 := New(Config{Suffix: hostDN(), Clock: clock, WarmStore: ws, WarmGrace: 30 * time.Minute})
	s1.Register(static)
	req := &ldap.SearchRequest{BaseDN: "hn=hostX, o=center1",
		Scope: ldap.ScopeWholeSubtree, Filter: ldap.MustParseFilter("(objectclass=computer)")}
	s1.Search(anonReq(), req, &sink{})
	if static.calls != 1 {
		t.Fatalf("static calls = %d, want 1", static.calls)
	}
	if len(ws.All()) == 0 {
		t.Fatal("query did not write through to the warm store")
	}

	// "Restart": a second server over the same warm store, fresh backend.
	static2 := &fakeBackend{name: "static", suffix: hostDN(),
		attrs: static.attrs, ttl: time.Hour, entries: static.entries}
	s2 := New(Config{Suffix: hostDN(), Clock: clock, WarmStore: ws, WarmGrace: 30 * time.Minute})
	s2.Register(static2)
	if n := s2.WarmRestore(); n == 0 {
		t.Fatal("WarmRestore restored nothing")
	}
	w := &sink{}
	s2.Search(anonReq(), req, w)
	if static2.calls != 0 {
		t.Fatalf("restored cache should serve without invocation, calls = %d", static2.calls)
	}
	if len(w.entries) != 1 || w.entries[0].First("hn") != "hostX" {
		t.Fatalf("restored answer wrong: %v", w.entries)
	}

	// Past the warm grace the restored entry expires and the backend runs.
	clock.Advance(31 * time.Minute)
	s2.Search(anonReq(), req, &sink{})
	if static2.calls != 1 {
		t.Fatalf("post-grace query should invoke live backend, calls = %d", static2.calls)
	}
}

// TestWarmRestoreSharedSuffix: two backends on the same suffix keep separate
// warm namespaces — a refresh of one never wipes the other's warm state, and
// restore attributes each entry to the backend that produced it, so a wide
// query after restart returns no duplicates.
func TestWarmRestoreSharedSuffix(t *testing.T) {
	clock := softstate.NewFakeClock()
	ws := ldap.NewStore()
	cfg := Config{Suffix: hostDN(), Clock: clock, WarmStore: ws, WarmGrace: time.Hour}
	s1 := New(cfg)
	static := &fakeBackend{name: "static", suffix: hostDN(),
		attrs: []string{"hn", "system"}, ttl: time.Hour,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN()).
			Add("objectclass", "computer").Add("hn", "hostX").Add("system", "linux")}}
	dynamic := &fakeBackend{name: "dynamic", suffix: hostDN(),
		attrs: []string{"perf", "load5"}, ttl: time.Hour,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN().ChildAVA("perf", "load")).
			Add("objectclass", "perf", "loadaverage").Add("perf", "load").Add("load5", "1.5")}}
	s1.Register(static)
	s1.Register(dynamic)
	wide := &ldap.SearchRequest{BaseDN: "hn=hostX, o=center1", Scope: ldap.ScopeWholeSubtree}
	s1.Search(anonReq(), wide, &sink{})
	if static.calls != 1 || dynamic.calls != 1 {
		t.Fatalf("live calls = %d/%d, want 1/1", static.calls, dynamic.calls)
	}

	s2 := New(cfg)
	static2 := &fakeBackend{name: "static", suffix: hostDN(), attrs: static.attrs,
		ttl: time.Hour, entries: static.entries}
	dynamic2 := &fakeBackend{name: "dynamic", suffix: hostDN(), attrs: dynamic.attrs,
		ttl: time.Hour, entries: dynamic.entries}
	s2.Register(static2)
	s2.Register(dynamic2)
	if n := s2.WarmRestore(); n != 2 {
		t.Fatalf("WarmRestore = %d entries, want 2 (one per backend, no cross-assignment)", n)
	}
	w := &sink{}
	s2.Search(anonReq(), wide, w)
	if static2.calls != 0 || dynamic2.calls != 0 {
		t.Fatalf("restored caches should serve without invocation, calls = %d/%d",
			static2.calls, dynamic2.calls)
	}
	if len(w.entries) != 2 {
		t.Fatalf("wide query after restore returned %d entries, want 2 (no duplicates): %v",
			len(w.entries), w.entries)
	}
	seen := map[string]bool{}
	for _, e := range w.entries {
		dn := e.DN.String()
		if seen[dn] {
			t.Fatalf("duplicate entry %q after warm restore", dn)
		}
		seen[dn] = true
	}
}
