package gris

import (
	"testing"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

func TestRootDSEAdvertisesCapabilities(t *testing.T) {
	s := New(Config{
		Suffix: hostDN(),
		Clock:  softstate.NewFakeClock(),
		Extensions: map[string]Extension{
			"1.2.3.4": func(*ldap.Request, []byte) ([]byte, error) { return nil, nil },
		},
	})
	s.Register(&fakeBackend{name: "b", suffix: hostDN(), ttl: time.Hour,
		entries: []*ldap.Entry{ldap.NewEntry(hostDN()).Add("objectclass", "computer").Add("hn", "x")}})

	w := &sink{}
	res := s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "", Scope: ldap.ScopeBaseObject}, w)
	if res.Code != ldap.ResultSuccess || len(w.entries) != 1 {
		t.Fatalf("dse search: %+v, %d entries", res, len(w.entries))
	}
	dse := w.entries[0]
	if !dse.DN.IsZero() {
		t.Errorf("dse dn = %q", dse.DN)
	}
	if dse.First("namingcontexts") != hostDN().String() {
		t.Errorf("namingcontexts = %q", dse.First("namingcontexts"))
	}
	if !dse.HasValue("supportedextension", "1.2.3.4") {
		t.Errorf("extensions = %v", dse.Values("supportedextension"))
	}
	if !dse.HasValue("supportedcontrol", ldap.OIDPersistentSearch) {
		t.Errorf("controls = %v", dse.Values("supportedcontrol"))
	}
	if dse.First("mdstype") != "gris" {
		t.Errorf("mdstype = %q", dse.First("mdstype"))
	}
	// The DSE honours filters: a non-matching filter yields nothing.
	w2 := &sink{}
	res = s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "", Scope: ldap.ScopeBaseObject,
		Filter: ldap.MustParseFilter("(mdstype=giis)")}, w2)
	if res.Code != ldap.ResultSuccess || len(w2.entries) != 0 {
		t.Fatalf("filtered dse: %+v, %d", res, len(w2.entries))
	}
	// A subtree search at the root is not a DSE request; it falls through
	// to namespace handling (and reaches our suffix).
	w3 := &sink{}
	res = s.Search(anonReq(), &ldap.SearchRequest{BaseDN: "", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")}, w3)
	if res.Code != ldap.ResultSuccess || len(w3.entries) != 1 {
		t.Fatalf("root subtree: %+v, %d", res, len(w3.entries))
	}
}
