// Package mds1 implements the centralized baseline the paper supersedes
// (§11.1): the MDS-1 strategy of "collecting all information into a
// database", against which the distributed MDS-2 architecture is compared.
// Every resource runs a pusher that periodically uploads its complete
// description to one central directory; queries are answered entirely from
// that database. The design "inevitably limited scalability and
// reliability": experiment E4 measures its update load and staleness
// against federated MDS-2 as provider count grows.
package mds1

import (
	"fmt"
	"sync"
	"time"

	"mds2/internal/gris"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// Central is the single directory holding everyone's information. It
// serves LDAP directly (its Store is an ldap.Handler) and accepts pushes
// in-process or over the wire.
type Central struct {
	Store *ldap.Store
	clock softstate.Clock

	// Updates counts push operations; EntriesPushed counts entries
	// uploaded (the update-load metric of E4).
	Updates       obs.Counter
	EntriesPushed obs.Counter
}

// New creates an empty central directory.
func New(clock softstate.Clock) *Central {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Central{Store: ldap.NewStore(), clock: clock}
}

// Handler exposes the directory as an LDAP server handler.
func (c *Central) Handler() ldap.Handler { return c.Store }

// Apply replaces the subtree rooted at suffix with the pushed entries.
// Each entry is stamped with its upload time so staleness is measurable.
func (c *Central) Apply(suffix ldap.DN, entries []*ldap.Entry) error {
	now := c.clock.Now()
	stamp := now.UTC().Format(time.RFC3339Nano)
	stamped := make([]*ldap.Entry, len(entries))
	for i, e := range entries {
		cp := e.Clone()
		cp.Set("pushedat", stamp)
		stamped[i] = cp
	}
	c.Store.RemoveSubtree(suffix)
	if err := c.Store.PutAll(stamped); err != nil {
		return err
	}
	c.Updates.Inc()
	c.EntriesPushed.Add(int64(len(entries)))
	return nil
}

// Search queries the central database.
func (c *Central) Search(base ldap.DN, scope ldap.Scope, filter *ldap.Filter) []*ldap.Entry {
	return c.Store.Find(base, scope, filter)
}

// Staleness returns the age of an entry's data at query time, parsed from
// its push stamp.
func (c *Central) Staleness(e *ldap.Entry) (time.Duration, bool) {
	s := e.First("pushedat")
	if s == "" {
		return 0, false
	}
	at, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return 0, false
	}
	return c.clock.Now().Sub(at), true
}

// Pusher periodically collects a resource's complete description from its
// provider backends and uploads it — the MDS-1 per-resource agent.
type Pusher struct {
	Suffix   ldap.DN
	Backends []gris.Backend
	Target   *Central
	Interval time.Duration

	clock softstate.Clock

	mu      sync.Mutex
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// NewPusher builds a pusher for one resource.
func NewPusher(suffix ldap.DN, backends []gris.Backend, target *Central,
	interval time.Duration, clock softstate.Clock) *Pusher {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Pusher{Suffix: suffix, Backends: backends, Target: target,
		Interval: interval, clock: clock, stop: make(chan struct{})}
}

// PushOnce collects and uploads immediately.
func (p *Pusher) PushOnce() error {
	q := &gris.Query{Base: p.Suffix, Scope: ldap.ScopeWholeSubtree, Now: p.clock.Now()}
	var all []*ldap.Entry
	for _, b := range p.Backends {
		entries, err := b.Entries(q)
		if err != nil {
			// Skip failed providers; push what is available.
			continue
		}
		all = append(all, entries...)
	}
	if len(all) == 0 {
		return fmt.Errorf("mds1: resource %q produced no entries", p.Suffix)
	}
	return p.Target.Apply(p.Suffix, all)
}

// Start launches the periodic push loop (first push immediate).
func (p *Pusher) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			_ = p.PushOnce() // a failed push is retried next interval
			select {
			case <-p.stop:
				return
			case <-p.clock.After(p.Interval):
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit.
func (p *Pusher) Stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.stop)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
