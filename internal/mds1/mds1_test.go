package mds1

import (
	"fmt"
	"testing"
	"time"

	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

func newHostPusher(name string, central *Central, clock softstate.Clock, interval time.Duration) (*Pusher, *hostinfo.Host) {
	h := hostinfo.New(name, hostinfo.Spec{
		OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 4, MemoryMB: 1024,
	}, 1)
	suffix := ldap.MustParseDN("hn=" + name + ", o=grid")
	return NewPusher(suffix, providers.HostBackends(h, suffix), central, interval, clock), h
}

func TestPushOnceAndSearch(t *testing.T) {
	clock := softstate.NewFakeClock()
	central := New(clock)
	p, _ := newHostPusher("hostA", central, clock, time.Minute)
	if err := p.PushOnce(); err != nil {
		t.Fatal(err)
	}
	got := central.Search(ldap.MustParseDN("o=grid"), ldap.ScopeWholeSubtree,
		ldap.MustParseFilter("(objectclass=computer)"))
	if len(got) != 1 || got[0].First("hn") != "hostA" {
		t.Fatalf("search = %v", got)
	}
	if central.Updates.Value() != 1 {
		t.Errorf("updates = %d", central.Updates.Value())
	}
	if central.EntriesPushed.Value() < 5 {
		t.Errorf("entries pushed = %d", central.EntriesPushed.Value())
	}
}

func TestPushReplacesSubtree(t *testing.T) {
	clock := softstate.NewFakeClock()
	central := New(clock)
	p, h := newHostPusher("hostA", central, clock, time.Minute)
	if err := p.PushOnce(); err != nil {
		t.Fatal(err)
	}
	before := central.Search(ldap.MustParseDN("o=grid"), ldap.ScopeWholeSubtree,
		ldap.MustParseFilter("(objectclass=loadaverage)"))
	h.Step(3 * time.Hour)
	if err := p.PushOnce(); err != nil {
		t.Fatal(err)
	}
	after := central.Search(ldap.MustParseDN("o=grid"), ldap.ScopeWholeSubtree,
		ldap.MustParseFilter("(objectclass=loadaverage)"))
	if len(before) != 1 || len(after) != 1 {
		t.Fatalf("load entries before=%d after=%d (replacement failed)", len(before), len(after))
	}
	if before[0].First("load5") == after[0].First("load5") {
		t.Error("second push should carry updated dynamics")
	}
}

func TestStalenessMeasurement(t *testing.T) {
	clock := softstate.NewFakeClock()
	central := New(clock)
	p, _ := newHostPusher("hostA", central, clock, time.Minute)
	if err := p.PushOnce(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(42 * time.Second)
	got := central.Search(ldap.MustParseDN("o=grid"), ldap.ScopeWholeSubtree,
		ldap.MustParseFilter("(objectclass=computer)"))
	age, ok := central.Staleness(got[0])
	if !ok || age != 42*time.Second {
		t.Fatalf("staleness = %v, %v", age, ok)
	}
	if _, ok := central.Staleness(ldap.NewEntry(ldap.MustParseDN("x=1"))); ok {
		t.Error("unstamped entry should report !ok")
	}
}

func TestPeriodicPushLoop(t *testing.T) {
	clock := softstate.NewFakeClock()
	central := New(clock)
	p, _ := newHostPusher("hostA", central, clock, time.Minute)
	p.Start()
	defer p.Stop()
	waitFor(t, func() bool { return central.Updates.Value() >= 1 })
	for i := 0; i < 3; i++ {
		clock.Advance(time.Minute)
		want := int64(i + 2)
		waitFor(t, func() bool { return central.Updates.Value() >= want })
	}
	p.Stop() // idempotent with deferred Stop
	base := central.Updates.Value()
	clock.Advance(10 * time.Minute)
	time.Sleep(20 * time.Millisecond)
	if central.Updates.Value() != base {
		t.Error("pusher kept running after Stop")
	}
}

func TestManyPushersScale(t *testing.T) {
	clock := softstate.NewFakeClock()
	central := New(clock)
	const n = 30
	for i := 0; i < n; i++ {
		p, _ := newHostPusher(fmt.Sprintf("host%02d", i), central, clock, time.Minute)
		if err := p.PushOnce(); err != nil {
			t.Fatal(err)
		}
	}
	got := central.Search(ldap.MustParseDN("o=grid"), ldap.ScopeWholeSubtree,
		ldap.MustParseFilter("(objectclass=computer)"))
	if len(got) != n {
		t.Fatalf("computers = %d", len(got))
	}
	// Update load grows linearly with resources — the E4 claim.
	if central.Updates.Value() != n {
		t.Errorf("updates = %d", central.Updates.Value())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
