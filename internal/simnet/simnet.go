// Package simnet provides an in-process network simulator used to reproduce
// the paper's wide-area failure scenarios deterministically: Figure 1 and
// Figure 4 partition virtual organizations into disconnected fragments, and
// §4.3 discusses failure detection under lossy links.
//
// The simulator offers two transports mirroring what GRRP is specified
// against: a lossy datagram service (GRRP "is designed to run over an
// unreliable transport") and a reliable stream service carrying real LDAP
// bytes between in-process endpoints ("a reliable transport can also be
// used"). Partitions affect both: datagrams across a partition are dropped
// silently, new dials fail, and established streams are severed.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Addr is a simulated network address ("node" or "node:port").
type Addr string

// Network returns the address's network name.
func (Addr) Network() string { return "sim" }

// String returns the address text.
func (a Addr) String() string { return string(a) }

// DatagramHandler receives datagrams addressed to a node.
type DatagramHandler func(from string, payload []byte)

// Network simulates a set of named nodes with controllable partitions and
// per-link datagram loss. The zero value is not usable; call New.
type Network struct {
	mu sync.Mutex

	rng *rand.Rand

	// partition maps node -> partition ID; nodes in different partitions
	// cannot communicate. Unlisted nodes are in partition 0.
	partition map[string]int

	// defaultLoss is the datagram loss probability applied to every link
	// without a specific override.
	defaultLoss float64
	linkLoss    map[linkKey]float64

	listeners map[string]*listener // "node:port" -> listener
	conns     map[*pipeConn]struct{}
	handlers  map[string]DatagramHandler

	// Stats
	datagramsSent    int
	datagramsDropped int
}

type linkKey struct{ a, b string }

func normLink(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// New returns a network with deterministic randomness from seed.
func New(seed int64) *Network {
	return &Network{
		rng:       rand.New(rand.NewSource(seed)),
		partition: map[string]int{},
		linkLoss:  map[linkKey]float64{},
		listeners: map[string]*listener{},
		conns:     map[*pipeConn]struct{}{},
		handlers:  map[string]DatagramHandler{},
	}
}

// Errors.
var (
	ErrUnreachable   = errors.New("simnet: destination unreachable (partitioned)")
	ErrNoListener    = errors.New("simnet: connection refused")
	ErrListenerInUse = errors.New("simnet: address already in use")
)

// SetPartitions divides the network: each group becomes one partition, and
// any node not listed joins partition 0 alongside group zero. Established
// stream connections crossing a partition boundary are severed immediately,
// modeling Figure 4's "fault-partition".
func (n *Network) SetPartitions(groups ...[]string) {
	n.mu.Lock()
	n.partition = map[string]int{}
	for i, g := range groups {
		for _, node := range g {
			n.partition[node] = i
		}
	}
	var severed []*pipeConn
	for c := range n.conns {
		if !n.connectedLocked(c.local, c.remote) {
			severed = append(severed, c)
			delete(n.conns, c)
		}
	}
	n.mu.Unlock()
	for _, c := range severed {
		c.sever()
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.SetPartitions() }

// Connected reports whether two nodes can currently communicate.
func (n *Network) Connected(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.connectedLocked(a, b)
}

func (n *Network) connectedLocked(a, b string) bool {
	return n.partition[a] == n.partition[b]
}

// SetLoss sets the default datagram loss probability for all links.
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultLoss = p
}

// SetLinkLoss overrides the loss probability between two nodes
// (direction-independent).
func (n *Network) SetLinkLoss(a, b string, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLoss[normLink(a, b)] = p
}

// Stats returns cumulative datagram counts (sent includes dropped).
func (n *Network) Stats() (sent, dropped int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.datagramsSent, n.datagramsDropped
}

// HandleDatagrams registers the datagram receiver for a node, replacing any
// prior handler. A nil handler unregisters.
func (n *Network) HandleDatagrams(node string, h DatagramHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.handlers, node)
		return
	}
	n.handlers[node] = h
}

// SendDatagram delivers payload from one node to another, subject to
// partition and loss. It reports whether the datagram was delivered to a
// handler; callers implementing soft-state protocols ignore the result —
// that is the point — but experiments use it for ground truth.
func (n *Network) SendDatagram(from, to string, payload []byte) bool {
	n.mu.Lock()
	n.datagramsSent++
	if !n.connectedLocked(from, to) {
		n.datagramsDropped++
		n.mu.Unlock()
		return false
	}
	loss := n.defaultLoss
	if p, ok := n.linkLoss[normLink(from, to)]; ok {
		loss = p
	}
	if loss > 0 && n.rng.Float64() < loss {
		n.datagramsDropped++
		n.mu.Unlock()
		return false
	}
	h := n.handlers[to]
	if h == nil {
		n.datagramsDropped++
		n.mu.Unlock()
		return false
	}
	n.mu.Unlock()
	// Deliver synchronously: datagram handlers are required to be fast and
	// non-blocking, which keeps simulations deterministic.
	cp := append([]byte(nil), payload...)
	h(from, cp)
	return true
}

// Listen opens a stream listener at node:port.
func (n *Network) Listen(node, port string) (net.Listener, error) {
	addr := node + ":" + port
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("%w: %s", ErrListenerInUse, addr)
	}
	l := &listener{net: n, node: node, addr: addr, accept: make(chan net.Conn, 16)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects from a node to a listener address ("node:port"), failing if
// the nodes are partitioned or nothing listens there.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	toNode, _, err := net.SplitHostPort(to)
	if err != nil {
		toNode = to
	}
	n.mu.Lock()
	if !n.connectedLocked(from, toNode) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	l, ok := n.listeners[to]
	if !ok || l.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoListener, to)
	}
	c1, c2 := net.Pipe()
	clientConn := &pipeConn{Conn: c1, net: n, local: from, remote: toNode,
		localAddr: Addr(from), remoteAddr: Addr(to)}
	serverConn := &pipeConn{Conn: c2, net: n, local: toNode, remote: from,
		localAddr: Addr(to), remoteAddr: Addr(from)}
	clientConn.peer, serverConn.peer = serverConn, clientConn
	n.conns[clientConn] = struct{}{}
	n.conns[serverConn] = struct{}{}
	n.mu.Unlock()

	select {
	case l.accept <- serverConn:
		return clientConn, nil
	// mdslint:ignore clockcheck real-time backstop for a wedged accept queue; a simulated clock may never advance while dial is parked here
	case <-time.After(5 * time.Second):
		clientConn.Close()
		return nil, fmt.Errorf("%w: accept queue full at %s", ErrNoListener, to)
	}
}

type listener struct {
	net    *Network
	node   string
	addr   string
	accept chan net.Conn
	mu     sync.Mutex
	closed bool
}

func (l *listener) Accept() (net.Conn, error) {
	c, ok := <-l.accept
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (l *listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	close(l.accept)
	return nil
}

func (l *listener) Addr() net.Addr { return Addr(l.addr) }

// pipeConn wraps one end of a net.Pipe with simulated addresses and
// partition-severing support.
type pipeConn struct {
	net.Conn
	net        *Network
	peer       *pipeConn
	local      string
	remote     string
	localAddr  Addr
	remoteAddr Addr

	once sync.Once
}

func (c *pipeConn) LocalAddr() net.Addr  { return c.localAddr }
func (c *pipeConn) RemoteAddr() net.Addr { return c.remoteAddr }

func (c *pipeConn) Close() error {
	var err error
	c.once.Do(func() {
		c.net.mu.Lock()
		delete(c.net.conns, c)
		delete(c.net.conns, c.peer)
		c.net.mu.Unlock()
		err = c.Conn.Close()
		c.peer.Conn.Close()
	})
	return err
}

// sever closes both pipe halves without lock re-entry (caller already
// removed the conn from the registry).
func (c *pipeConn) sever() {
	c.once.Do(func() {
		c.Conn.Close()
		c.peer.Conn.Close()
	})
}
