package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestDatagramDelivery(t *testing.T) {
	n := New(1)
	var mu sync.Mutex
	var got []string
	n.HandleDatagrams("b", func(from string, payload []byte) {
		mu.Lock()
		got = append(got, from+":"+string(payload))
		mu.Unlock()
	})
	if !n.SendDatagram("a", "b", []byte("hello")) {
		t.Fatal("delivery failed")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "a:hello" {
		t.Fatalf("got %v", got)
	}
}

func TestDatagramToUnhandledNodeDropped(t *testing.T) {
	n := New(1)
	if n.SendDatagram("a", "nobody", []byte("x")) {
		t.Error("delivery to unhandled node should fail")
	}
	sent, dropped := n.Stats()
	if sent != 1 || dropped != 1 {
		t.Errorf("stats = %d, %d", sent, dropped)
	}
}

func TestDatagramPayloadIsolated(t *testing.T) {
	n := New(1)
	var captured []byte
	n.HandleDatagrams("b", func(_ string, p []byte) { captured = p })
	buf := []byte("orig")
	n.SendDatagram("a", "b", buf)
	buf[0] = 'X'
	if string(captured) != "orig" {
		t.Error("handler payload aliases sender buffer")
	}
}

func TestPartitionBlocksDatagrams(t *testing.T) {
	n := New(1)
	delivered := 0
	n.HandleDatagrams("b", func(string, []byte) { delivered++ })
	n.SetPartitions([]string{"a"}, []string{"b"})
	if n.SendDatagram("a", "b", nil) {
		t.Error("cross-partition datagram should drop")
	}
	if n.Connected("a", "b") {
		t.Error("Connected should report false")
	}
	n.Heal()
	if !n.SendDatagram("a", "b", nil) {
		t.Error("post-heal datagram should deliver")
	}
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestLossRates(t *testing.T) {
	n := New(42)
	n.HandleDatagrams("b", func(string, []byte) {})
	n.SetLoss(0.5)
	delivered := 0
	const total = 2000
	for i := 0; i < total; i++ {
		if n.SendDatagram("a", "b", nil) {
			delivered++
		}
	}
	frac := float64(delivered) / total
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("delivery fraction %f, want ~0.5", frac)
	}
}

func TestLinkLossOverride(t *testing.T) {
	n := New(42)
	n.HandleDatagrams("b", func(string, []byte) {})
	n.HandleDatagrams("c", func(string, []byte) {})
	n.SetLoss(0)
	n.SetLinkLoss("a", "b", 1.0) // a<->b always drops
	if n.SendDatagram("a", "b", nil) {
		t.Error("lossy link should drop")
	}
	if n.SendDatagram("b", "a", nil) == true {
		// direction independent; b has no handler for a either way
		t.Error("lossy link should drop in both directions")
	}
	if !n.SendDatagram("a", "c", nil) {
		t.Error("other link should deliver")
	}
}

func TestStreamDialListen(t *testing.T) {
	n := New(1)
	l, err := n.Listen("server", "389")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan string, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- "accept: " + err.Error()
			return
		}
		defer c.Close()
		buf := make([]byte, 16)
		k, err := c.Read(buf)
		if err != nil {
			done <- "read: " + err.Error()
			return
		}
		c.Write([]byte("pong"))
		done <- string(buf[:k])
	}()
	c, err := n.Dial("client", "server:389")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	k, err := c.Read(buf)
	if err != nil || string(buf[:k]) != "pong" {
		t.Fatalf("read %q, %v", buf[:k], err)
	}
	if got := <-done; got != "ping" {
		t.Fatalf("server saw %q", got)
	}
	if c.LocalAddr().String() != "client" || c.RemoteAddr().String() != "server:389" {
		t.Errorf("addrs %v %v", c.LocalAddr(), c.RemoteAddr())
	}
	if c.LocalAddr().Network() != "sim" {
		t.Error("network name")
	}
}

func TestDialErrors(t *testing.T) {
	n := New(1)
	if _, err := n.Dial("a", "nowhere:1"); err == nil {
		t.Error("dial to nothing should fail")
	}
	l, _ := n.Listen("s", "1")
	n.SetPartitions([]string{"a"}, []string{"s"})
	if _, err := n.Dial("a", "s:1"); err == nil {
		t.Error("cross-partition dial should fail")
	}
	l.Close()
	n.Heal()
	if _, err := n.Dial("a", "s:1"); err == nil {
		t.Error("dial to closed listener should fail")
	}
	if _, err := n.Listen("s", "1"); err != nil {
		t.Errorf("relisten after close: %v", err)
	}
}

func TestListenConflict(t *testing.T) {
	n := New(1)
	if _, err := n.Listen("s", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("s", "1"); err == nil {
		t.Error("duplicate listen should fail")
	}
}

func TestPartitionSeversEstablishedConns(t *testing.T) {
	n := New(1)
	l, err := n.Listen("s", "1")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err == nil {
			close(accepted)
			buf := make([]byte, 1)
			c.Read(buf) // wait for sever
		}
	}()
	c, err := n.Dial("a", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	n.SetPartitions([]string{"a"}, []string{"s"})
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("read on severed conn should fail")
	}
}

func TestPartitionLeavesIntraPartitionConnsAlive(t *testing.T) {
	n := New(1)
	l, _ := n.Listen("s", "1")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4)
				k, _ := c.Read(buf)
				c.Write(buf[:k])
			}()
		}
	}()
	c, err := n.Dial("a", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	// a and s stay together; z is isolated.
	n.SetPartitions([]string{"a", "s"}, []string{"z"})
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if k, err := c.Read(buf); err != nil || string(buf[:k]) != "ok" {
		t.Fatalf("intra-partition conn broken: %q %v", buf[:k], err)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	n := New(1)
	l, _ := n.Listen("s", "1")
	go l.Accept()
	c, err := n.Dial("a", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	l.Close()
	l.Close()
}

func TestDeterministicLossSequence(t *testing.T) {
	run := func() []bool {
		n := New(99)
		n.HandleDatagrams("b", func(string, []byte) {})
		n.SetLoss(0.3)
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, n.SendDatagram("a", "b", nil))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}
