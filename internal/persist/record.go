// Package persist implements write-ahead-log + snapshot durability for the
// in-memory directory store (ldap.Store) and the soft-state registration
// registry (softstate.Registry).
//
// The paper's design is all soft state: a restarted GRIS or GIIS forgets
// every entry and registration and must wait out a full re-upload storm —
// the dominant cold-start cost the MDS performance studies identify. This
// package bounds recovery by snapshot size plus WAL tail instead:
//
//   - Mutations (Put/PutAll/Modify/Delete on the store; register,
//     refresh-batch, expire, remove on the registry) append checksummed,
//     length-prefixed records to a group-committed, segment-rotated WAL.
//     Appends enqueue under the caller's lock and never block; a single
//     flusher goroutine writes and fsyncs whole batches, so one fsync
//     acknowledges every mutation queued behind it.
//   - A background snapshotter serializes the store's sealed copy-on-write
//     entry snapshots plus the registry's live items, then truncates the
//     WAL segments the snapshot supersedes.
//   - Boot is snapshot-load + tail-replay: the DN tree, attribute indexes,
//     and soft-state deadlines rebuild from disk, with recovered
//     registrations served under a grace window until their first
//     post-boot refresh or TTL lapse.
//
// Every record carries absolute values (entries are full upserts; registry
// records carry absolute deadlines and counters), which makes tail replay
// over a newer snapshot idempotent: the snapshot watermark is read before
// state capture, so a record may be both inside the snapshot and replayed,
// and converges either way.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"mds2/internal/ldap"
)

// Record types. WAL segments and snapshot bodies share one framing.
const (
	recPut       byte = 1 // batch of full entry upserts (Put/PutAll/Modify)
	recRemove    byte = 2 // one DN removal, optionally its whole subtree
	recRefresh   byte = 3 // batch of absolute-state registration refreshes
	recRegRemove byte = 4 // explicit registration removals (keys)
	recRegExpire byte = 5 // TTL expirations observed by the registry (keys)
	recSnapEnd   byte = 6 // snapshot end marker: counts prove completeness
)

// Framing: u32le body length | u32le CRC-32C of the body | body.
// Body: u8 type | u64le LSN | u64le unix-nano timestamp | payload.
const (
	frameHeader = 8
	bodyHeader  = 17
	// maxRecordBytes bounds a single record (a decode-side sanity check so
	// a corrupt length prefix cannot drive a giant allocation). The largest
	// legitimate producer is a snapshot entry batch, far below this.
	maxRecordBytes = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt reports a structurally invalid record payload. The framing
// CRC catches torn or bit-rotted frames; this catches records whose frame
// verified but whose payload does not parse (a version skew or a bug).
var errCorrupt = errors.New("persist: corrupt record payload")

// record is one decoded WAL or snapshot record. payload aliases the scan
// buffer and must be consumed before the next scan step.
type record struct {
	typ     byte
	lsn     uint64
	ts      int64 // injected-clock unix nanoseconds at append time
	payload []byte
}

// appendRecord frames one record onto buf.
func appendRecord(buf []byte, typ byte, lsn uint64, ts int64, payload []byte) []byte {
	bodyLen := bodyHeader + len(payload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	crcAt := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	bodyAt := len(buf)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.Checksum(buf[bodyAt:], castagnoli))
	return buf
}

// scanRecords iterates the framed records in b in order, stopping at the
// first torn or corrupt frame. It returns the byte offset of the valid
// prefix (len(b) when fully consumed): recovery truncates there rather
// than trusting anything past the damage. A non-nil error from fn aborts
// the scan and is returned.
func scanRecords(b []byte, fn func(rec record) error) (int, error) {
	off := 0
	for {
		rest := b[off:]
		if len(rest) < frameHeader {
			return off, nil
		}
		bodyLen := int(binary.LittleEndian.Uint32(rest))
		if bodyLen < bodyHeader || bodyLen > maxRecordBytes || bodyLen > len(rest)-frameHeader {
			return off, nil
		}
		body := rest[frameHeader : frameHeader+bodyLen]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return off, nil
		}
		rec := record{
			typ:     body[0],
			lsn:     binary.LittleEndian.Uint64(body[1:]),
			ts:      int64(binary.LittleEndian.Uint64(body[9:])),
			payload: body[bodyHeader:],
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += frameHeader + bodyLen
	}
}

// reader is a bounds-checked cursor over a record payload: decode reports
// errCorrupt on any overrun, never panics, and never allocates more than
// the bytes actually present.
type reader struct {
	b   []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.off += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, errCorrupt
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) i64() (int64, error) {
	if len(r.b)-r.off < 8 {
		return 0, errCorrupt
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errCorrupt
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendSlice(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// capHint bounds a count-prefix-driven preallocation: trust small counts,
// cap large ones so a corrupt prefix cannot balloon memory before the
// element decode fails naturally.
func capHint(n uint64, max int) int {
	if n > uint64(max) {
		return max
	}
	return int(n)
}

// encodeEntries renders a put batch: each entry as its DN string plus its
// attributes. The entries are the store's sealed snapshots — read here,
// never retained or mutated.
func encodeEntries(buf []byte, entries []*ldap.Entry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.DN.String())
		buf = binary.AppendUvarint(buf, uint64(len(e.Attrs)))
		for _, a := range e.Attrs {
			buf = appendString(buf, a.Name)
			buf = binary.AppendUvarint(buf, uint64(len(a.Values)))
			for _, v := range a.Values {
				buf = appendString(buf, v)
			}
		}
	}
	return buf
}

func decodeEntries(payload []byte) ([]*ldap.Entry, error) {
	r := &reader{b: payload}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	entries := make([]*ldap.Entry, 0, capHint(n, 1024))
	for i := uint64(0); i < n; i++ {
		dnStr, err := r.str()
		if err != nil {
			return nil, err
		}
		dn, err := ldap.ParseDN(dnStr)
		if err != nil {
			return nil, fmt.Errorf("%w: bad DN %q: %v", errCorrupt, dnStr, err)
		}
		na, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		attrs := make([]ldap.Attribute, 0, capHint(na, 256))
		for j := uint64(0); j < na; j++ {
			name, err := r.str()
			if err != nil {
				return nil, err
			}
			nv, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			vals := make([]string, 0, capHint(nv, 256))
			for k := uint64(0); k < nv; k++ {
				v, err := r.str()
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			attrs = append(attrs, ldap.Attribute{Name: name, Values: vals})
		}
		entries = append(entries, &ldap.Entry{DN: dn, Attrs: attrs})
	}
	if r.off != len(r.b) {
		return nil, errCorrupt
	}
	return entries, nil
}

func encodeRemove(buf []byte, dn string, subtree bool) []byte {
	buf = appendString(buf, dn)
	if subtree {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeRemove(payload []byte) (string, bool, error) {
	r := &reader{b: payload}
	dn, err := r.str()
	if err != nil {
		return "", false, err
	}
	sub, err := r.byte()
	if err != nil {
		return "", false, err
	}
	if r.off != len(r.b) || sub > 1 {
		return "", false, errCorrupt
	}
	return dn, sub == 1, nil
}

// regItem is the journaled absolute state of one registration. Every field
// is an absolute value (deadline timestamps, the running refresh count),
// not a delta — replaying a suffix of records over a snapshot that already
// contains them lands on the same state.
type regItem struct {
	key         string
	expiresAt   int64 // unix nanoseconds
	joinedAt    int64
	lastRefresh int64
	refreshes   uint64
	payload     []byte // codec-encoded; nil when absent or not encodable
}

func encodeRegItems(buf []byte, items []regItem) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = appendString(buf, it.key)
		buf = appendI64(buf, it.expiresAt)
		buf = appendI64(buf, it.joinedAt)
		buf = appendI64(buf, it.lastRefresh)
		buf = binary.AppendUvarint(buf, it.refreshes)
		if it.payload == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			buf = appendSlice(buf, it.payload)
		}
	}
	return buf
}

func decodeRegItems(payload []byte) ([]regItem, error) {
	r := &reader{b: payload}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	items := make([]regItem, 0, capHint(n, 1024))
	for i := uint64(0); i < n; i++ {
		var it regItem
		if it.key, err = r.str(); err != nil {
			return nil, err
		}
		if it.expiresAt, err = r.i64(); err != nil {
			return nil, err
		}
		if it.joinedAt, err = r.i64(); err != nil {
			return nil, err
		}
		if it.lastRefresh, err = r.i64(); err != nil {
			return nil, err
		}
		if it.refreshes, err = r.uvarint(); err != nil {
			return nil, err
		}
		tag, err := r.byte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case 0:
		case 1:
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			// The scan buffer is transient; the payload outlives it.
			it.payload = append([]byte(nil), b...)
		default:
			return nil, errCorrupt
		}
		items = append(items, it)
	}
	if r.off != len(r.b) {
		return nil, errCorrupt
	}
	return items, nil
}

func encodeKeys(buf []byte, keys []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
	}
	return buf
}

func decodeKeys(payload []byte) ([]string, error) {
	r := &reader{b: payload}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, capHint(n, 1024))
	for i := uint64(0); i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	if r.off != len(r.b) {
		return nil, errCorrupt
	}
	return keys, nil
}

// encodeSnapEnd seals a snapshot body: the counts double as a completeness
// proof (a partially written snapshot cannot end with a valid marker whose
// counts match what was read).
func encodeSnapEnd(buf []byte, entries, items int) []byte {
	buf = binary.AppendUvarint(buf, uint64(entries))
	return binary.AppendUvarint(buf, uint64(items))
}

func decodeSnapEnd(payload []byte) (entries, items uint64, err error) {
	r := &reader{b: payload}
	if entries, err = r.uvarint(); err != nil {
		return 0, 0, err
	}
	if items, err = r.uvarint(); err != nil {
		return 0, 0, err
	}
	if r.off != len(r.b) {
		return 0, 0, errCorrupt
	}
	return entries, items, nil
}
