package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mds2/internal/ldap"
)

// Snapshot files are named snap-%016x.snap, the hex digits being the WAL
// watermark the snapshot captured: every record with LSN ≤ watermark is
// reflected in the snapshot body, so recovery replays only the tail past
// it. The body reuses the WAL record framing (recPut / recRefresh batches,
// LSN field zero) and ends with a recSnapEnd marker whose entry/item
// counts prove the file was written to completion — a truncated snapshot
// fails validation and recovery falls back to the previous one.
const (
	snapHeader    = len(snapMagic) + 8 // magic + u64le watermark
	snapBatchSize = 256                // entries or registry items per record
)

func snapshotName(watermark uint64) string {
	return fmt.Sprintf("snap-%016x.snap", watermark)
}

// snapInfo describes one snapshot file found on disk.
type snapInfo struct {
	watermark uint64
	path      string
}

// listSnapshots enumerates snap-*.snap files in dir, oldest watermark
// first.
func listSnapshots(dir string) ([]snapInfo, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []snapInfo
	for _, de := range names {
		name := de.Name()
		var wm uint64
		if _, err := fmt.Sscanf(name, "snap-%016x.snap", &wm); err != nil ||
			name != snapshotName(wm) {
			continue
		}
		out = append(out, snapInfo{watermark: wm, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].watermark < out[j].watermark })
	return out, nil
}

// writeSnapshot serializes the captured state to a temp file, fsyncs it,
// and renames it into place (then fsyncs the directory) so a crash leaves
// either the complete new snapshot or none of it. Returns the final path
// and the serialized size.
func writeSnapshot(dir string, watermark uint64, entries []*ldap.Entry, items []regItem) (string, int64, error) {
	buf := make([]byte, 0, snapHeader+len(entries)*256+len(items)*128)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, watermark)
	var payload []byte
	for i := 0; i < len(entries); i += snapBatchSize {
		end := i + snapBatchSize
		if end > len(entries) {
			end = len(entries)
		}
		payload = encodeEntries(payload[:0], entries[i:end])
		buf = appendRecord(buf, recPut, 0, 0, payload)
	}
	for i := 0; i < len(items); i += snapBatchSize {
		end := i + snapBatchSize
		if end > len(items) {
			end = len(items)
		}
		payload = encodeRegItems(payload[:0], items[i:end])
		buf = appendRecord(buf, recRefresh, 0, 0, payload)
	}
	payload = encodeSnapEnd(payload[:0], len(entries), len(items))
	buf = appendRecord(buf, recSnapEnd, 0, 0, payload)

	tmp, err := os.CreateTemp(dir, "tmp-snap-*")
	if err != nil {
		return "", 0, fmt.Errorf("persist: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		cleanup()
		return "", 0, fmt.Errorf("persist: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return "", 0, fmt.Errorf("persist: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return "", 0, fmt.Errorf("persist: snapshot close: %w", err)
	}
	final := filepath.Join(dir, snapshotName(watermark))
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return "", 0, fmt.Errorf("persist: snapshot rename: %w", err)
	}
	syncDir(dir)
	return final, int64(len(buf)), nil
}

// syncDir fsyncs a directory so a just-renamed file's name is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// loadSnapshot reads and validates one snapshot file: header magic, clean
// record scan to exactly the end, a final recSnapEnd whose counts match
// what was decoded. Any deviation returns an error and the caller tries an
// older snapshot.
func loadSnapshot(path string) (watermark uint64, entries []*ldap.Entry, items []regItem, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(b) < snapHeader || string(b[:len(snapMagic)]) != snapMagic {
		return 0, nil, nil, fmt.Errorf("persist: %s: bad snapshot header", path)
	}
	watermark = binary.LittleEndian.Uint64(b[len(snapMagic):])
	body := b[snapHeader:]
	sealed := false
	off, err := scanRecords(body, func(rec record) error {
		if sealed {
			return fmt.Errorf("persist: %s: record after end marker", path)
		}
		switch rec.typ {
		case recPut:
			es, err := decodeEntries(rec.payload)
			if err != nil {
				return err
			}
			entries = append(entries, es...)
		case recRefresh:
			is, err := decodeRegItems(rec.payload)
			if err != nil {
				return err
			}
			items = append(items, is...)
		case recSnapEnd:
			ne, ni, err := decodeSnapEnd(rec.payload)
			if err != nil {
				return err
			}
			if ne != uint64(len(entries)) || ni != uint64(len(items)) {
				return fmt.Errorf("persist: %s: snapshot counts mismatch", path)
			}
			sealed = true
		default:
			return fmt.Errorf("persist: %s: unexpected record type %d in snapshot", path, rec.typ)
		}
		return nil
	})
	if err != nil {
		return 0, nil, nil, err
	}
	if !sealed || off != len(body) {
		return 0, nil, nil, fmt.Errorf("persist: %s: truncated snapshot", path)
	}
	return watermark, entries, items, nil
}
