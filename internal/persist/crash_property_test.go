package persist

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

// stringCodec persists string payloads verbatim — enough structure for the
// property test to verify payload round-trips.
var stringCodec = PayloadCodec{
	Encode: func(p any) ([]byte, error) {
		s, ok := p.(string)
		if !ok {
			return nil, fmt.Errorf("not a string: %T", p)
		}
		return []byte(s), nil
	},
	Decode: func(b []byte) (any, error) { return string(b), nil },
}

// TestCrashConsistencyProperty drives randomized mutation storms against a
// persisted store+registry, crashes without warning, recovers into fresh
// instances, and requires replay(snapshot+WAL) ≡ the pre-crash state. Under
// SyncAlways every store mutation was acknowledged durable, and a barrier
// covers the asynchronous registry journal, so equality is exact.
func TestCrashConsistencyProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashStorm(t, rand.New(rand.NewSource(seed)))
		})
	}
}

func runCrashStorm(t *testing.T, rng *rand.Rand) {
	dir := t.TempDir()
	clock := softstate.NewFakeClock()
	store := ldap.NewStore()
	reg := softstate.NewRegistry(clock)
	m, err := Open(Options{Dir: dir, Clock: clock, Sync: SyncAlways,
		SegmentBytes: 4096, Codec: stringCodec})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.Attach(store, reg); err != nil {
		t.Fatalf("Attach: %v", err)
	}

	dnPool := make([]string, 24)
	for i := range dnPool {
		dnPool[i] = fmt.Sprintf("hn=h%d, ou=res, o=grid", i)
	}
	keyPool := make([]string, 16)
	for i := range keyPool {
		keyPool[i] = fmt.Sprintf("ldap://provider-%d:2135", i)
	}
	randEntry := func() *ldap.Entry {
		e := ldap.NewEntry(mustDN(t, dnPool[rng.Intn(len(dnPool))]))
		e.Add("objectclass", "computer")
		e.Add("load5", fmt.Sprintf("%.2f", rng.Float64()*8))
		if rng.Intn(2) == 0 {
			e.Add("memsize", fmt.Sprintf("%d", 1<<uint(rng.Intn(8))))
		}
		return e
	}

	steps := 150 + rng.Intn(150)
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // single put (insert or overwrite)
			if err := store.Put(randEntry()); err != nil {
				t.Fatalf("Put: %v", err)
			}
		case 3: // batch put
			batch := make([]*ldap.Entry, 1+rng.Intn(5))
			for j := range batch {
				batch[j] = randEntry()
			}
			if err := store.PutAll(batch); err != nil {
				t.Fatalf("PutAll: %v", err)
			}
		case 4: // remove
			store.Remove(mustDN(t, dnPool[rng.Intn(len(dnPool))]))
		case 5: // subtree remove of a parent
			store.RemoveSubtree(mustDN(t, "ou=res, o=grid"))
		case 6, 7: // registration refreshes
			if rng.Intn(2) == 0 {
				key := keyPool[rng.Intn(len(keyPool))]
				reg.Refresh(key, "payload-"+key, time.Duration(1+rng.Intn(90))*time.Second)
			} else {
				batch := make([]softstate.Refreshment, 1+rng.Intn(6))
				for j := range batch {
					key := keyPool[rng.Intn(len(keyPool))]
					batch[j] = softstate.Refreshment{Key: key, Payload: "payload-" + key,
						TTL: time.Duration(1+rng.Intn(90)) * time.Second}
				}
				reg.RefreshBatch(batch)
			}
		case 8: // registration removal or expiry pressure
			if rng.Intn(2) == 0 {
				reg.Remove(keyPool[rng.Intn(len(keyPool))])
			} else {
				clock.Advance(time.Duration(rng.Intn(30)) * time.Second)
				reg.Sweep()
			}
		case 9: // occasional mid-storm snapshot
			if rng.Intn(4) == 0 {
				if err := m.Snapshot(); err != nil {
					t.Fatalf("Snapshot: %v", err)
				}
			}
		}
	}
	if err := m.Barrier(); err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	wantStore := storeImage(store)
	wantReg := reg.Live()
	m.Crash()

	freshStore := ldap.NewStore()
	freshReg := softstate.NewRegistry(clock)
	m2, err := Open(Options{Dir: dir, Clock: clock, Sync: SyncAlways, Codec: stringCodec})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := m2.Recover(freshStore, freshReg); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := m2.Attach(freshStore, freshReg); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	defer m2.Close()

	sameImage(t, wantStore, storeImage(freshStore))
	gotReg := freshReg.Live()
	if len(gotReg) != len(wantReg) {
		t.Fatalf("registrations: want %d, got %d", len(wantReg), len(gotReg))
	}
	for i, want := range wantReg { // Live() is key-sorted on both sides
		got := gotReg[i]
		if got.Key != want.Key {
			t.Fatalf("registration %d: want key %q, got %q", i, want.Key, got.Key)
		}
		if !got.ExpiresAt.Equal(want.ExpiresAt) {
			t.Fatalf("%q ExpiresAt: want %v, got %v", want.Key, want.ExpiresAt, got.ExpiresAt)
		}
		if got.Refreshes != want.Refreshes {
			t.Fatalf("%q Refreshes: want %d, got %d", want.Key, want.Refreshes, got.Refreshes)
		}
		if !got.LastRefresh.Equal(want.LastRefresh) {
			t.Fatalf("%q LastRefresh: want %v, got %v", want.Key, want.LastRefresh, got.LastRefresh)
		}
		if got.Payload != want.Payload {
			t.Fatalf("%q Payload: want %v, got %v", want.Key, want.Payload, got.Payload)
		}
		if !got.Recovered {
			t.Fatalf("%q should carry the Recovered mark after restore", want.Key)
		}
	}
}
