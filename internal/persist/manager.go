package persist

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// PayloadCodec serializes registration payloads (the `any` carried by
// softstate items) for the WAL. Both funcs are optional: without Encode,
// registrations persist their deadlines but recover with a nil payload;
// without Decode, recovered payloads stay nil. Encode runs under the
// registry lock and must be CPU-only.
type PayloadCodec struct {
	Encode func(payload any) ([]byte, error)
	Decode func(b []byte) (any, error)
}

// Options configures a Manager.
type Options struct {
	// Dir is the data directory. Created if missing; owned exclusively by
	// one Manager at a time.
	Dir string
	// Clock drives timestamps, sync intervals, and the snapshot cadence.
	// Nil means the real clock.
	Clock softstate.Clock
	// Sync selects the durability/latency trade (see SyncMode). Default
	// SyncAlways.
	Sync SyncMode
	// SyncEvery is the SyncInterval fsync cadence. Default 100ms.
	SyncEvery time.Duration
	// SegmentBytes rotates the WAL once a segment reaches this size.
	// Default 16 MiB.
	SegmentBytes int64
	// SnapshotEvery runs the background snapshotter at this cadence;
	// 0 disables it (snapshots then happen only via explicit Snapshot).
	SnapshotEvery time.Duration
	// RecoveryGrace extends recovered registrations' deadlines to at least
	// now+grace, giving providers one refresh interval to confirm before
	// soft state purges them. 0 trusts the persisted deadlines as-is.
	RecoveryGrace time.Duration
	// Codec persists registration payloads; see PayloadCodec.
	Codec PayloadCodec
	// Obs, when non-nil, receives the persist metrics.
	Obs *obs.Registry
	// ErrorLog, when non-nil, reports the first persistence failure.
	ErrorLog *log.Logger
}

// RecoverStats summarizes one recovery pass.
type RecoverStats struct {
	SnapshotPath     string // "" when booting from WAL alone
	SnapshotLSN      uint64 // watermark of the loaded snapshot
	Entries          int    // directory entries restored (snapshot + tail replay)
	Registrations    int    // registrations restored live
	SegmentsReplayed int
	RecordsReplayed  int   // tail records applied (LSN past the watermark)
	TornBytes        int64 // bytes discarded past the last valid record
	Duration         time.Duration
}

// Manager owns one data directory: the WAL, its snapshots, and the wiring
// into a store and/or registry. Lifecycle: Open → (Recover) → Attach →
// traffic → Close. Recover is mandatory when the directory holds prior
// state; Attach on a dirty directory without it fails rather than
// silently forking history.
//
// Manager implements ldap.Persister and softstate.Journal. Both are
// invoked under their caller's lock and only enqueue; fsync waiting
// happens in the ack the store runs after unlocking.
type Manager struct {
	opts  Options
	clock softstate.Clock
	wal   *wal

	store *ldap.Store
	reg   *softstate.Registry

	// Directory scan from Open, consumed by Recover/Attach.
	scanSegs  []segInfo
	scanSnaps []snapInfo
	recovered bool
	attached  bool
	closed    bool
	stats     RecoverStats
	maxLSN    uint64 // highest LSN seen across snapshot + segments

	snapMu   sync.Mutex // serializes Snapshot passes
	stateMu  sync.Mutex // guards lifecycle flags above
	errOnce  atomic.Bool
	stop     chan struct{}
	snapDone chan struct{}

	snapshotsTotal *obs.Counter
	snapLastBytes  *obs.Gauge
}

// Open prepares a Manager over dir, creating it if needed and scanning for
// prior state. No files are written yet.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	if opts.Clock == nil {
		opts.Clock = softstate.RealClock{}
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 16 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	snaps, err := listSnapshots(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	// Leftover temp files are incomplete snapshots from a crashed writer.
	if names, err := os.ReadDir(opts.Dir); err == nil {
		for _, de := range names {
			if isTmpName(de.Name()) {
				os.Remove(filepath.Join(opts.Dir, de.Name()))
			}
		}
	}
	return &Manager{
		opts:      opts,
		clock:     opts.Clock,
		scanSegs:  segs,
		scanSnaps: snaps,
	}, nil
}

// HasState reports whether Open found prior segments or snapshots — i.e.
// whether Recover is required before Attach.
func (m *Manager) HasState() bool {
	return len(m.scanSegs) > 0 || len(m.scanSnaps) > 0
}

// Recover rebuilds store and registry state from the newest valid snapshot
// plus the WAL tail. Either target may be nil when this directory persists
// only the other. Must run before Attach; the targets must be otherwise
// idle (boot time).
func (m *Manager) Recover(store *ldap.Store, reg *softstate.Registry) (RecoverStats, error) {
	start := m.clock.Now()
	var stats RecoverStats

	// Newest snapshot that validates wins; damaged ones fall back.
	var snapEntries []*ldap.Entry
	regState := map[string]regItem{}
	for i := len(m.scanSnaps) - 1; i >= 0; i-- {
		wm, entries, items, err := loadSnapshot(m.scanSnaps[i].path)
		if err != nil {
			if m.opts.ErrorLog != nil {
				m.opts.ErrorLog.Printf("persist: skipping snapshot: %v", err)
			}
			continue
		}
		stats.SnapshotPath = m.scanSnaps[i].path
		stats.SnapshotLSN = wm
		snapEntries = entries
		for _, it := range items {
			regState[it.key] = it
		}
		break
	}
	if store != nil && len(snapEntries) > 0 {
		if err := store.PutAll(snapEntries); err != nil {
			return stats, fmt.Errorf("persist: restoring snapshot entries: %w", err)
		}
		stats.Entries = len(snapEntries)
	}
	maxLSN := stats.SnapshotLSN

	// Replay the tail: only records past the snapshot watermark mutate
	// state, but every record advances the LSN horizon so new appends
	// never reuse a number. Replay stops entirely at the first torn frame —
	// nothing after damage can be trusted to be ordered.
	torn := false
	for si := range m.scanSegs {
		seg := &m.scanSegs[si]
		if torn {
			stats.TornBytes += segmentDataLen(seg.path)
			continue
		}
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return stats, fmt.Errorf("persist: %w", err)
		}
		if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
			return stats, fmt.Errorf("persist: %s: bad segment header", seg.path)
		}
		body := b[len(segMagic):]
		off, err := scanRecords(body, func(rec record) error {
			if rec.lsn > maxLSN {
				maxLSN = rec.lsn
			}
			seg.lastLSN = rec.lsn
			if rec.lsn <= stats.SnapshotLSN {
				return nil
			}
			stats.RecordsReplayed++
			return m.applyRecord(rec, store, regState)
		})
		if err != nil {
			return stats, err
		}
		stats.SegmentsReplayed++
		if off != len(body) {
			torn = true
			stats.TornBytes += int64(len(body) - off)
		}
	}
	if store != nil {
		// Count what the store actually holds, not just the snapshot's
		// share: before the first snapshot every entry arrives via tail
		// replay and would otherwise report as zero.
		stats.Entries = len(store.All())
	}

	stats.Registrations = len(regState)
	if reg != nil && len(regState) > 0 {
		items := make([]softstate.Item, 0, len(regState))
		for _, ri := range regState {
			items = append(items, m.fromRegItem(ri))
		}
		stats.Registrations = reg.Restore(items, m.opts.RecoveryGrace)
	}
	stats.Duration = m.clock.Now().Sub(start)

	m.stateMu.Lock()
	m.recovered = true
	m.stats = stats
	m.maxLSN = maxLSN
	m.stateMu.Unlock()
	return stats, nil
}

// applyRecord replays one tail record into the store / registry state map.
func (m *Manager) applyRecord(rec record, store *ldap.Store, regState map[string]regItem) error {
	switch rec.typ {
	case recPut:
		entries, err := decodeEntries(rec.payload)
		if err != nil {
			return fmt.Errorf("persist: replay at LSN %d: %w", rec.lsn, err)
		}
		if store != nil {
			if err := store.PutAll(entries); err != nil {
				return fmt.Errorf("persist: replay at LSN %d: %w", rec.lsn, err)
			}
		}
	case recRemove:
		dnStr, subtree, err := decodeRemove(rec.payload)
		if err != nil {
			return fmt.Errorf("persist: replay at LSN %d: %w", rec.lsn, err)
		}
		if store != nil {
			dn, err := ldap.ParseDN(dnStr)
			if err != nil {
				return fmt.Errorf("persist: replay at LSN %d: bad DN %q", rec.lsn, dnStr)
			}
			if subtree {
				store.RemoveSubtree(dn)
			} else {
				store.Remove(dn)
			}
		}
	case recRefresh:
		items, err := decodeRegItems(rec.payload)
		if err != nil {
			return fmt.Errorf("persist: replay at LSN %d: %w", rec.lsn, err)
		}
		for _, it := range items {
			regState[it.key] = it
		}
	case recRegRemove, recRegExpire:
		keys, err := decodeKeys(rec.payload)
		if err != nil {
			return fmt.Errorf("persist: replay at LSN %d: %w", rec.lsn, err)
		}
		for _, k := range keys {
			delete(regState, k)
		}
	default:
		return fmt.Errorf("persist: replay at LSN %d: unknown record type %d", rec.lsn, rec.typ)
	}
	return nil
}

func segmentDataLen(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	n := fi.Size() - int64(len(segMagic))
	if n < 0 {
		return 0
	}
	return n
}

// Attach opens a fresh WAL segment after the recovered history, installs
// the Manager as the store's Persister and the registry's Journal, and
// starts the background snapshotter. Either target may be nil.
func (m *Manager) Attach(store *ldap.Store, reg *softstate.Registry) error {
	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	if m.attached {
		return errors.New("persist: already attached")
	}
	if m.HasState() && !m.recovered {
		return errors.New("persist: data directory has prior state; call Recover before Attach")
	}
	nextIndex := 1
	if n := len(m.scanSegs); n > 0 {
		nextIndex = m.scanSegs[n-1].index + 1
	}
	w, err := newWAL(m.opts.Dir, m.clock, m.opts.Sync, m.opts.SyncEvery,
		m.opts.SegmentBytes, m.scanSegs, nextIndex, m.maxLSN+1)
	if err != nil {
		return err
	}
	m.wal = w
	m.store = store
	m.reg = reg
	if o := m.opts.Obs; o != nil {
		w.fsyncNs = o.Histogram("persist_fsync_ns")
		w.bytesTotal = o.Counter("persist_wal_bytes_total")
		w.recordsTotal = o.Counter("persist_wal_records_total")
		w.errorsTotal = o.Counter("persist_wal_errors_total")
		m.snapshotsTotal = o.Counter("persist_snapshots_total")
		m.snapLastBytes = o.Gauge("persist_snapshot_last_bytes")
		o.GaugeFunc("persist_wal_segments", func() float64 { return float64(w.segmentCount()) })
		o.Gauge("persist_replay_ns").Set(int64(m.stats.Duration))
		o.Gauge("persist_recovered_entries").Set(int64(m.stats.Entries))
		o.Gauge("persist_recovered_registrations").Set(int64(m.stats.Registrations))
	}
	w.start()
	if store != nil {
		store.SetPersister(m)
	}
	if reg != nil {
		reg.SetJournal(m)
	}
	if m.opts.SnapshotEvery > 0 {
		m.stop = make(chan struct{})
		m.snapDone = make(chan struct{})
		go m.snapshotLoop()
	}
	m.attached = true
	return nil
}

// Stats returns the recovery statistics (zero before Recover).
func (m *Manager) Stats() RecoverStats {
	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	return m.stats
}

// noteErr logs the first persistence failure; the WAL's sticky error keeps
// reporting it to callers without re-logging every mutation.
func (m *Manager) noteErr(err error) {
	if err == nil {
		return
	}
	if m.errOnce.CompareAndSwap(false, true) && m.opts.ErrorLog != nil {
		m.opts.ErrorLog.Printf("persist: %v", err)
	}
}

// ackFor wraps a WAL batch into the ack contract: nil when the caller need
// not wait (non-SyncAlways modes ride the flusher), else a func that blocks
// until the batch is on disk and reports the sticky error.
func (m *Manager) ackFor(done <-chan struct{}, err error) func() error {
	if err != nil {
		m.noteErr(err)
		return func() error { return err }
	}
	if m.opts.Sync != SyncAlways {
		return nil
	}
	return func() error {
		<-done
		serr := m.wal.stickyErr()
		m.noteErr(serr)
		return serr
	}
}

// PersistPut implements ldap.Persister. Runs under the store lock:
// encode + enqueue only.
func (m *Manager) PersistPut(entries []*ldap.Entry) func() error {
	_, done, err := m.wal.append(recPut, m.clock.Now().UnixNano(), encodeEntries(nil, entries))
	return m.ackFor(done, err)
}

// PersistRemove implements ldap.Persister.
func (m *Manager) PersistRemove(dn ldap.DN, subtree bool) func() error {
	_, done, err := m.wal.append(recRemove, m.clock.Now().UnixNano(),
		encodeRemove(nil, dn.String(), subtree))
	return m.ackFor(done, err)
}

// JournalRegistry implements softstate.Journal. Runs under the registry
// lock: encode + enqueue, never wait — registration durability is
// asynchronous by design (a lost tail re-converges via the next refresh,
// the soft-state contract).
func (m *Manager) JournalRegistry(recs []softstate.JournalRecord) {
	ts := m.clock.Now().UnixNano()
	// Emit contiguous same-op runs as one record each, preserving order.
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].Op == recs[i].Op {
			j++
		}
		run := recs[i:j]
		var payload []byte
		typ := byte(0)
		switch recs[i].Op {
		case softstate.JournalRefresh:
			items := make([]regItem, len(run))
			for k, rec := range run {
				items[k] = m.toRegItem(rec.Item)
			}
			typ, payload = recRefresh, encodeRegItems(nil, items)
		case softstate.JournalRemove, softstate.JournalExpire:
			keys := make([]string, len(run))
			for k, rec := range run {
				keys[k] = rec.Item.Key
			}
			typ = recRegRemove
			if recs[i].Op == softstate.JournalExpire {
				typ = recRegExpire
			}
			payload = encodeKeys(nil, keys)
		}
		if typ != 0 {
			_, _, err := m.wal.append(typ, ts, payload)
			m.noteErr(err)
		}
		i = j
	}
}

func (m *Manager) toRegItem(it softstate.Item) regItem {
	ri := regItem{
		key:         it.Key,
		expiresAt:   it.ExpiresAt.UnixNano(),
		joinedAt:    it.JoinedAt.UnixNano(),
		lastRefresh: it.LastRefresh.UnixNano(),
		refreshes:   uint64(it.Refreshes),
	}
	if m.opts.Codec.Encode != nil && it.Payload != nil {
		if b, err := m.opts.Codec.Encode(it.Payload); err == nil {
			ri.payload = b
		}
	}
	return ri
}

func (m *Manager) fromRegItem(ri regItem) softstate.Item {
	it := softstate.Item{
		Key:         ri.key,
		ExpiresAt:   time.Unix(0, ri.expiresAt),
		JoinedAt:    time.Unix(0, ri.joinedAt),
		LastRefresh: time.Unix(0, ri.lastRefresh),
		Refreshes:   int(ri.refreshes),
	}
	if m.opts.Codec.Decode != nil && ri.payload != nil {
		if p, err := m.opts.Codec.Decode(ri.payload); err == nil {
			it.Payload = p
		}
	}
	return it
}

// Barrier appends a no-op record (an empty expiry batch) and waits for its
// batch to flush: every mutation enqueued before the call has reached the
// file when Barrier returns (and the disk, under SyncAlways). Used by the
// crash tests and the recover benchmark to draw a durability line.
func (m *Manager) Barrier() error {
	_, done, err := m.wal.append(recRegExpire, m.clock.Now().UnixNano(), encodeKeys(nil, nil))
	if err != nil {
		return err
	}
	<-done
	return m.wal.stickyErr()
}

// Snapshot captures the attached store and registry to a new snapshot file
// and truncates the WAL segments it supersedes. Safe to call concurrently
// with traffic: the watermark is read BEFORE state capture, so any
// mutation racing the capture either made it into the captured state
// (and replays idempotently from the tail) or has an LSN past the
// watermark and survives truncation.
func (m *Manager) Snapshot() error {
	m.stateMu.Lock()
	attached := m.attached
	m.stateMu.Unlock()
	if !attached {
		return errors.New("persist: Snapshot before Attach")
	}
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	watermark := m.wal.lastAssigned()
	var entries []*ldap.Entry
	if m.store != nil {
		entries = m.store.All()
	}
	var items []regItem
	if m.reg != nil {
		live := m.reg.Live()
		items = make([]regItem, len(live))
		for i, it := range live {
			items[i] = m.toRegItem(it)
		}
	}
	_, size, err := writeSnapshot(m.opts.Dir, watermark, entries, items)
	if err != nil {
		m.noteErr(err)
		return err
	}
	m.snapshotsTotal.Inc()
	m.snapLastBytes.Set(size)
	m.wal.truncateThrough(watermark)
	if snaps, err := listSnapshots(m.opts.Dir); err == nil {
		for _, sn := range snaps {
			if sn.watermark < watermark {
				os.Remove(sn.path)
			}
		}
	}
	return nil
}

func (m *Manager) snapshotLoop() {
	defer close(m.snapDone)
	for {
		select {
		case <-m.stop:
			return
		case <-m.clock.After(m.opts.SnapshotEvery):
			if err := m.Snapshot(); err != nil {
				m.noteErr(err)
			}
		}
	}
}

func (m *Manager) stopLoops() {
	if m.stop != nil {
		close(m.stop)
		<-m.snapDone
		m.stop = nil
	}
}

// Close flushes and seals the WAL. It does not snapshot: boot replays the
// tail either way, and crash and clean shutdown should exercise one path.
func (m *Manager) Close() error {
	m.stateMu.Lock()
	if m.closed || !m.attached {
		m.closed = true
		m.stateMu.Unlock()
		return nil
	}
	m.closed = true
	m.stateMu.Unlock()
	m.stopLoops()
	err := m.wal.close()
	m.noteErr(err)
	return err
}

// Crash abandons the WAL without flushing — the test hook standing in for
// kill -9. State acknowledged under SyncAlways is on disk; everything
// pending is lost, exactly as a real crash would lose it.
func (m *Manager) Crash() {
	m.stateMu.Lock()
	if m.closed || !m.attached {
		m.closed = true
		m.stateMu.Unlock()
		return
	}
	m.closed = true
	m.stateMu.Unlock()
	m.stopLoops()
	m.wal.crash()
}
