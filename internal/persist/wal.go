package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// SyncMode selects when the WAL fsyncs relative to acknowledging mutations.
type SyncMode int

const (
	// SyncAlways fsyncs before any mutation in the batch is acknowledged:
	// every acknowledged write survives kill -9. Group commit keeps this
	// affordable — one fsync covers the whole batch queued behind it.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery. A crash can
	// lose the unsynced tail, never corrupt it: the checksummed framing
	// truncates cleanly at the tear.
	SyncInterval
	// SyncNone leaves flushing to the OS page cache (still safe against
	// process death, not against power loss).
	SyncNone
)

// ParseSyncMode maps the -wal-sync flag vocabulary onto SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("persist: unknown sync mode %q (want always, interval, or none)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("syncmode(%d)", int(m))
}

// segMagic heads every WAL segment; snapMagic heads every snapshot. The
// trailing byte is the format version.
const (
	segMagic  = "MDS2WAL\x01"
	snapMagic = "MDS2SNP\x01"
)

func segmentName(index int) string { return fmt.Sprintf("wal-%08d.log", index) }

// segInfo describes one sealed (no longer appended) segment on disk.
type segInfo struct {
	index   int
	path    string
	lastLSN uint64 // highest LSN the segment holds; 0 when it holds none
}

// listSegments enumerates wal-*.log files in dir in index order.
func listSegments(dir string) ([]segInfo, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []segInfo
	for _, de := range names {
		name := de.Name()
		var idx int
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &idx); err != nil ||
			name != segmentName(idx) {
			continue
		}
		out = append(out, segInfo{index: idx, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out, nil
}

// wal is the group-committed, segment-rotated log. append frames records
// into a pending buffer under mu and never blocks; the single flusher
// goroutine swaps the buffer out, writes it in one syscall, fsyncs per the
// sync mode, and closes the batch's done channel — so one fsync
// acknowledges every mutation that queued behind it.
//
// Failures are fail-stop: the first write or fsync error sticks, every
// subsequent append and ack reports it, and nothing further reaches disk.
type wal struct {
	dir       string
	clock     softstate.Clock
	mode      SyncMode
	syncEvery time.Duration
	segBytes  int64

	// Metrics; all nil-safe no-ops without an obs registry.
	fsyncNs      *obs.Histogram
	bytesTotal   *obs.Counter
	recordsTotal *obs.Counter
	errorsTotal  *obs.Counter

	mu          sync.Mutex
	nextLSN     uint64
	pending     []byte
	pendingDone chan struct{}
	pendingLast uint64
	sealed      []segInfo
	err         error

	// Fields below mu are touched only by the flusher goroutine (and by
	// close/crash after the flusher has exited).
	seg      *os.File
	segIndex int
	segSize  int64
	segLast  uint64
	needSync bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// createSegment creates and heads the segment file for index.
func createSegment(dir string, index int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segmentName(index)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// newWAL opens a fresh append segment after the sealed history and starts
// the flusher. sealed lists the pre-existing segments (recovery input);
// nextLSN continues the numbering past everything recovered.
func newWAL(dir string, clock softstate.Clock, mode SyncMode, syncEvery time.Duration,
	segBytes int64, sealed []segInfo, nextIndex int, nextLSN uint64) (*wal, error) {

	f, err := createSegment(dir, nextIndex)
	if err != nil {
		return nil, fmt.Errorf("persist: creating segment: %w", err)
	}
	w := &wal{
		dir:       dir,
		clock:     clock,
		mode:      mode,
		syncEvery: syncEvery,
		segBytes:  segBytes,
		nextLSN:   nextLSN,
		sealed:    sealed,
		seg:       f,
		segIndex:  nextIndex,
		segSize:   int64(len(segMagic)),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	return w, nil
}

// start launches the flusher. Separate from newWAL so the caller can
// install metrics first without racing the goroutine.
func (w *wal) start() { go w.flushLoop() }

// append frames one record, assigns its LSN, and queues it for the
// flusher. Callers hold their own data-structure lock across append — that
// is what makes LSN order equal apply order — so nothing here may block:
// the kick is a non-blocking send on a buffered channel after w.mu is
// released. The returned channel closes when the batch reaches disk (per
// the sync mode); err is the sticky failure, if the log has already died.
func (w *wal) append(typ byte, ts int64, payload []byte) (lsn uint64, done <-chan struct{}, err error) {
	w.mu.Lock()
	if w.err != nil {
		err = w.err
		w.mu.Unlock()
		return 0, nil, err
	}
	lsn = w.nextLSN
	w.nextLSN++
	w.pending = appendRecord(w.pending, typ, lsn, ts, payload)
	w.pendingLast = lsn
	if w.pendingDone == nil {
		w.pendingDone = make(chan struct{})
	}
	d := w.pendingDone
	w.mu.Unlock()
	w.recordsTotal.Inc()
	select {
	case w.kick <- struct{}{}:
	default:
		// A kick is already queued; the flusher will pick this batch up.
	}
	return lsn, d, nil
}

// lastAssigned returns the highest LSN handed out so far (0: none). The
// snapshotter reads this BEFORE capturing state: every mutation at or
// below the watermark is visible in the captured state (its data-structure
// update happens before its append, under the same lock), so truncating
// segments at the watermark after a durable snapshot never loses history.
func (w *wal) lastAssigned() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// stickyErr returns the first write/fsync failure, if any.
func (w *wal) stickyErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *wal) fail(err error) {
	w.errorsTotal.Inc()
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// flushLoop is the single writer: it drains everything queued since its
// last pass into one write and at most one fsync (group commit), rotating
// segments as they fill. It exits on stop after a final flush.
func (w *wal) flushLoop() {
	defer close(w.done)
	var syncTimer <-chan time.Time
	for {
		select {
		case <-w.stop:
			w.flush(w.mode != SyncNone)
			return
		case <-syncTimer:
			syncTimer = nil
			w.flush(true)
			continue
		case <-w.kick:
		}
		w.flush(w.mode == SyncAlways)
		if w.mode == SyncInterval && w.needSync && syncTimer == nil {
			syncTimer = w.clock.After(w.syncEvery)
		}
	}
}

// flush writes the pending batch, optionally fsyncs, wakes the batch's
// waiters, and rotates a full segment. Flusher goroutine only.
func (w *wal) flush(sync bool) {
	w.mu.Lock()
	buf := w.pending
	done := w.pendingDone
	last := w.pendingLast
	w.pending = nil
	w.pendingDone = nil
	failed := w.err
	w.mu.Unlock()

	if failed == nil && len(buf) > 0 {
		if _, err := w.seg.Write(buf); err != nil {
			w.fail(fmt.Errorf("persist: wal write: %w", err))
			failed = err
		} else {
			w.segSize += int64(len(buf))
			w.segLast = last
			w.needSync = true
			w.bytesTotal.Add(int64(len(buf)))
		}
	}
	if failed == nil && sync && w.needSync {
		start := w.clock.Now()
		if err := w.seg.Sync(); err != nil {
			w.fail(fmt.Errorf("persist: wal fsync: %w", err))
			failed = err
		} else {
			w.fsyncNs.Observe(w.clock.Now().Sub(start))
			w.needSync = false
		}
	}
	if done != nil {
		// Wakes even on failure: waiters re-check stickyErr after the wait.
		close(done)
	}
	if failed == nil && w.segSize >= w.segBytes {
		w.rotate()
	}
}

// rotate seals the open segment (fsyncing it so the sealed list only ever
// names durable files) and opens the next one.
func (w *wal) rotate() {
	if err := w.seg.Sync(); err != nil {
		w.fail(fmt.Errorf("persist: wal fsync at rotation: %w", err))
		return
	}
	w.needSync = false
	if err := w.seg.Close(); err != nil {
		w.fail(fmt.Errorf("persist: wal close at rotation: %w", err))
		return
	}
	info := segInfo{index: w.segIndex, path: filepath.Join(w.dir, segmentName(w.segIndex)),
		lastLSN: w.segLast}
	f, err := createSegment(w.dir, w.segIndex+1)
	if err != nil {
		w.fail(fmt.Errorf("persist: rotating segment: %w", err))
		return
	}
	w.mu.Lock()
	w.sealed = append(w.sealed, info)
	w.mu.Unlock()
	w.seg = f
	w.segIndex++
	w.segSize = int64(len(segMagic))
	w.segLast = 0
}

// segmentCount returns sealed segments plus the open one (a gauge).
func (w *wal) segmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// truncateThrough deletes sealed segments wholly covered by a durable
// snapshot at watermark. The open segment is never touched. Returns the
// number of segments removed.
func (w *wal) truncateThrough(watermark uint64) int {
	w.mu.Lock()
	keep := w.sealed[:0]
	var dead []segInfo
	for _, s := range w.sealed {
		if s.lastLSN <= watermark {
			dead = append(dead, s)
		} else {
			keep = append(keep, s)
		}
	}
	w.sealed = keep
	w.mu.Unlock()
	removed := 0
	for _, s := range dead {
		if err := os.Remove(s.path); err == nil {
			removed++
		}
	}
	return removed
}

// close stops the flusher (flushing what remains), seals the open segment,
// and reports the sticky error if the log failed at any point.
func (w *wal) close() error {
	close(w.stop)
	<-w.done
	var err error
	if w.seg != nil {
		if w.mode != SyncNone {
			err = w.seg.Sync()
		}
		if cerr := w.seg.Close(); err == nil {
			err = cerr
		}
		w.seg = nil
	}
	if serr := w.stickyErr(); err == nil {
		err = serr
	}
	return err
}

// crash abandons the log without flushing the pending buffer — the test
// hook simulating an abrupt kill. Acknowledged SyncAlways batches are
// already on disk; everything still pending is deliberately dropped.
func (w *wal) crash() {
	w.mu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("persist: crashed")
	}
	w.pending = nil
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	if w.seg != nil {
		w.seg.Close() // no sync: whatever the OS kept is what recovery sees
		w.seg = nil
	}
}

// isTmpName reports scratch files (in-progress snapshots) that recovery
// and truncation must ignore.
func isTmpName(name string) bool { return strings.HasPrefix(name, "tmp-") }
