package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

func mustDN(t *testing.T, s string) ldap.DN {
	t.Helper()
	dn, err := ldap.ParseDN(s)
	if err != nil {
		t.Fatalf("ParseDN(%q): %v", s, err)
	}
	return dn
}

func testEntry(t *testing.T, dn string, attrs ...string) *ldap.Entry {
	t.Helper()
	e := ldap.NewEntry(mustDN(t, dn))
	e.Add("objectclass", "computer")
	for i := 0; i+1 < len(attrs); i += 2 {
		e.Add(attrs[i], attrs[i+1])
	}
	return e
}

// storeImage flattens a store for comparison: DN → rendered attributes.
func storeImage(s *ldap.Store) map[string]string {
	out := map[string]string{}
	for _, e := range s.All() {
		img := ""
		for _, a := range e.Attrs {
			img += a.Name + "="
			for _, v := range a.Values {
				img += v + ","
			}
			img += ";"
		}
		out[e.DN.Normalize()] = img
	}
	return out
}

func sameImage(t *testing.T, want, got map[string]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("entry count: want %d, got %d", len(want), len(got))
	}
	for dn, img := range want {
		if got[dn] != img {
			t.Fatalf("entry %q: want %q, got %q", dn, img, got[dn])
		}
	}
}

func openAttached(t *testing.T, dir string, clock softstate.Clock, mode SyncMode,
	store *ldap.Store, reg *softstate.Registry) *Manager {
	t.Helper()
	m, err := Open(Options{Dir: dir, Clock: clock, Sync: mode})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if m.HasState() {
		if _, err := m.Recover(store, reg); err != nil {
			t.Fatalf("Recover: %v", err)
		}
	}
	if err := m.Attach(store, reg); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return m
}

func TestStoreRecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	clock := softstate.NewFakeClock()

	store := ldap.NewStore()
	m := openAttached(t, dir, clock, SyncAlways, store, nil)
	for i := 0; i < 20; i++ {
		dn := fmt.Sprintf("hn=h%d, ou=res, o=grid", i)
		if err := store.Put(testEntry(t, dn, "load5", fmt.Sprintf("%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if !store.Remove(mustDN(t, "hn=h3, ou=res, o=grid")) {
		t.Fatal("Remove: not found")
	}
	if err := store.Put(testEntry(t, "hn=h5, ou=res, o=grid", "load5", "99")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	want := storeImage(store)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fresh := ldap.NewStore()
	m2, err := Open(Options{Dir: dir, Clock: clock, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !m2.HasState() {
		t.Fatal("HasState: want true after writes")
	}
	stats, err := m2.Recover(fresh, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.RecordsReplayed == 0 {
		t.Fatal("Recover replayed no records")
	}
	sameImage(t, want, storeImage(fresh))
	if err := m2.Attach(fresh, nil); err != nil {
		t.Fatalf("re-Attach: %v", err)
	}
	// The recovered instance keeps logging past the old history.
	if err := fresh.Put(testEntry(t, "hn=h100, ou=res, o=grid")); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSnapshotBoundsReplayAndTruncates(t *testing.T) {
	dir := t.TempDir()
	clock := softstate.NewFakeClock()
	store := ldap.NewStore()
	m, err := Open(Options{Dir: dir, Clock: clock, Sync: SyncAlways, SegmentBytes: 2048})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.Attach(store, nil); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for i := 0; i < 200; i++ {
		dn := fmt.Sprintf("hn=h%d, ou=res, o=grid", i)
		if err := store.Put(testEntry(t, dn)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	segsBefore, _ := listSegments(dir)
	if len(segsBefore) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segsBefore))
	}
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("snapshot did not truncate segments: %d -> %d", len(segsBefore), len(segsAfter))
	}
	// Tail writes after the snapshot land in the surviving segments.
	if err := store.Put(testEntry(t, "hn=tail, ou=res, o=grid")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	want := storeImage(store)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fresh := ldap.NewStore()
	m2, err := Open(Options{Dir: dir, Clock: clock, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stats, err := m2.Recover(fresh, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.SnapshotPath == "" {
		t.Fatal("Recover ignored the snapshot")
	}
	// 200 from the snapshot plus the tail write replayed past the watermark.
	if stats.Entries != 201 {
		t.Fatalf("restored entries: want 201, got %d", stats.Entries)
	}
	sameImage(t, want, storeImage(fresh))
	if err := m2.Attach(fresh, nil); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	m2.Close()
}

func TestRegistryRecoveryGraceWindow(t *testing.T) {
	dir := t.TempDir()
	clock := softstate.NewFakeClock()
	reg := softstate.NewRegistry(clock)
	m := openAttached(t, dir, clock, SyncAlways, nil, reg)
	if !reg.Refresh("ldap://p1", nil, time.Minute) {
		t.Fatal("Refresh p1")
	}
	if !reg.Refresh("ldap://p2", nil, 10*time.Second) {
		t.Fatal("Refresh p2")
	}
	// Registry journaling is asynchronous; draw the durability line before
	// crashing so the test is deterministic.
	if err := m.Barrier(); err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	m.Crash()

	// Restart far enough in the future that both TTLs have lapsed on the
	// wall: the grace window must still serve them briefly.
	clock.Advance(2 * time.Minute)
	reg2 := softstate.NewRegistry(clock)
	m2, err := Open(Options{Dir: dir, Clock: clock, Sync: SyncAlways,
		RecoveryGrace: 30 * time.Second})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stats, err := m2.Recover(nil, reg2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := m2.Attach(nil, reg2); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if stats.Registrations != 2 {
		t.Fatalf("recovered registrations: want 2, got %d", stats.Registrations)
	}
	if got := reg2.RecoveredLive(); got != 2 {
		t.Fatalf("RecoveredLive: want 2, got %d", got)
	}
	it, ok := reg2.Get("ldap://p1")
	if !ok || !it.Recovered {
		t.Fatalf("p1 not recovered-live: ok=%v item=%+v", ok, it)
	}
	// A confirming refresh clears the recovered mark...
	if reg2.Refresh("ldap://p1", nil, time.Minute) {
		t.Fatal("p1 should refresh as existing, not newly joined")
	}
	if got := reg2.RecoveredLive(); got != 1 {
		t.Fatalf("RecoveredLive after confirm: want 1, got %d", got)
	}
	// ...and the unconfirmed one lapses when the grace window closes.
	clock.Advance(31 * time.Second)
	reg2.Sweep()
	if _, ok := reg2.Get("ldap://p2"); ok {
		t.Fatal("p2 should have expired at the end of its grace window")
	}
	if _, ok := reg2.Get("ldap://p1"); !ok {
		t.Fatal("p1 should still be live after its confirming refresh")
	}
	m2.Close()
}

func TestTornTailTruncatesCleanly(t *testing.T) {
	dir := t.TempDir()
	clock := softstate.NewFakeClock()
	store := ldap.NewStore()
	m := openAttached(t, dir, clock, SyncAlways, store, nil)
	for i := 0; i < 10; i++ {
		dn := fmt.Sprintf("hn=h%d, ou=res, o=grid", i)
		if err := store.Put(testEntry(t, dn)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	want := storeImage(store)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the live segment: chop bytes off the end and append garbage —
	// what a crash mid-write leaves behind.
	segs, _ := listSegments(dir)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[len(segs)-1].path
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b[:len(b)-7], 0xde, 0xad, 0xbe)
	if err := os.WriteFile(last, b, 0o644); err != nil {
		t.Fatal(err)
	}
	delete(want, mustDN(t, "hn=h9, ou=res, o=grid").Normalize()) // the torn record

	fresh := ldap.NewStore()
	m2, err := Open(Options{Dir: dir, Clock: clock, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stats, err := m2.Recover(fresh, nil)
	if err != nil {
		t.Fatalf("Recover over torn tail: %v", err)
	}
	if stats.TornBytes == 0 {
		t.Fatal("TornBytes: want > 0")
	}
	sameImage(t, want, storeImage(fresh))
	if err := m2.Attach(fresh, nil); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	m2.Close()
}

func TestAttachRefusesDirtyDirWithoutRecover(t *testing.T) {
	dir := t.TempDir()
	clock := softstate.NewFakeClock()
	store := ldap.NewStore()
	m := openAttached(t, dir, clock, SyncAlways, store, nil)
	if err := store.Put(testEntry(t, "hn=h0, ou=res, o=grid")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	m.Close()

	m2, err := Open(Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m2.Attach(ldap.NewStore(), nil); err == nil {
		t.Fatal("Attach on dirty dir without Recover: want error")
	}
}

func TestSnapshotSkippedWhenDamaged(t *testing.T) {
	dir := t.TempDir()
	clock := softstate.NewFakeClock()
	store := ldap.NewStore()
	m := openAttached(t, dir, clock, SyncAlways, store, nil)
	for i := 0; i < 5; i++ {
		dn := fmt.Sprintf("hn=h%d, ou=res, o=grid", i)
		if err := store.Put(testEntry(t, dn)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	want := storeImage(store)
	m.Close()

	// Truncate the snapshot: the end marker disappears, so recovery must
	// reject it and rebuild from the WAL (which the snapshot truncated —
	// but only sealed segments are truncated, and these writes are in the
	// live segment, still present).
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots: want 1, got %d", len(snaps))
	}
	b, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0].path, b[:len(b)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := ldap.NewStore()
	m2, err := Open(Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stats, err := m2.Recover(fresh, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.SnapshotPath != "" {
		t.Fatal("damaged snapshot should have been skipped")
	}
	sameImage(t, want, storeImage(fresh))
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		err  bool
	}{
		{"always", SyncAlways, false},
		{"interval", SyncInterval, false},
		{"none", SyncNone, false},
		{"sometimes", 0, true},
	} {
		got, err := ParseSyncMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.err && got.String() != tc.in {
			t.Errorf("SyncMode.String() = %q, want %q", got.String(), tc.in)
		}
	}
}

func TestSyncIntervalFlushesOnTimer(t *testing.T) {
	dir := t.TempDir()
	store := ldap.NewStore()
	// Real clock: the interval timer must actually fire.
	m, err := Open(Options{Dir: dir, Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.Attach(store, nil); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := store.Put(testEntry(t, "hn=h0, ou=res, o=grid")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		segs, _ := listSegments(dir)
		if len(segs) > 0 {
			if fi, err := os.Stat(segs[len(segs)-1].path); err == nil && fi.Size() > int64(len(segMagic)) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flush never wrote the record")
		}
		time.Sleep(time.Millisecond)
	}
	m.Close()
}

func TestTmpFilesCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "tmp-snap-123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file survived Open: %v", err)
	}
}
