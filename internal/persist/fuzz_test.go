package persist

import (
	"testing"

	"mds2/internal/ldap"
)

// FuzzWALDecode throws arbitrary bytes at the record scanner and every
// payload decoder. The contract under fire: torn or corrupt input truncates
// (scan stops at the damage, decoders return errCorrupt) — never panics,
// never over-allocates off a corrupt count prefix.
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed frames so mutation explores near-valid space.
	dn, _ := ldap.ParseDN("hn=h1, ou=res, o=grid")
	e := ldap.NewEntry(dn)
	e.Add("objectclass", "computer")
	e.Add("load5", "0.25")
	var valid []byte
	valid = appendRecord(valid, recPut, 1, 991234, encodeEntries(nil, []*ldap.Entry{e}))
	valid = appendRecord(valid, recRemove, 2, 991235, encodeRemove(nil, "hn=h1, ou=res, o=grid", true))
	valid = appendRecord(valid, recRefresh, 3, 991236, encodeRegItems(nil, []regItem{{
		key: "ldap://p1", expiresAt: 1e9, joinedAt: 2e9, lastRefresh: 3e9,
		refreshes: 7, payload: []byte("x"),
	}}))
	valid = appendRecord(valid, recRegRemove, 4, 991237, encodeKeys(nil, []string{"ldap://p1"}))
	valid = appendRecord(valid, recSnapEnd, 5, 991238, encodeSnapEnd(nil, 3, 2))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                       // torn tail
	f.Add([]byte{})                                   //
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		off, err := scanRecords(data, func(rec record) error {
			// Whatever frames survive the CRC, the payload decoders must
			// fail gracefully, not panic.
			switch rec.typ {
			case recPut:
				_, _ = decodeEntries(rec.payload)
			case recRemove:
				_, _, _ = decodeRemove(rec.payload)
			case recRefresh:
				_, _ = decodeRegItems(rec.payload)
			case recRegRemove, recRegExpire:
				_, _ = decodeKeys(rec.payload)
			case recSnapEnd:
				_, _, _ = decodeSnapEnd(rec.payload)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan callback error: %v", err)
		}
		if off < 0 || off > len(data) {
			t.Fatalf("scan offset %d out of range [0,%d]", off, len(data))
		}
	})
}
