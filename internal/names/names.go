// Package names implements the naming approaches of §8 of the paper: a
// naming-authority service generating names unique within its scope
// (optionally organized hierarchically, mirroring the aggregate directory
// hierarchy of §5.1) and probabilistic globally unique identifiers (GUIDs).
package names

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math/big"
	mrand "math/rand"
	"strings"
	"sync"
)

// GUID is a 128-bit random identifier. Per §8, such names are highly likely
// unique but carry no structural information: they cannot scope searches,
// so systems combine them with hierarchical names when scoping is needed.
type GUID [16]byte

// NewGUID draws a GUID from crypto/rand.
func NewGUID() (GUID, error) {
	var g GUID
	if _, err := rand.Read(g[:]); err != nil {
		return GUID{}, err
	}
	return g, nil
}

// String renders the GUID as 32 hex digits.
func (g GUID) String() string { return hex.EncodeToString(g[:]) }

// ParseGUID parses the hex form.
func ParseGUID(s string) (GUID, error) {
	var g GUID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 16 {
		return g, fmt.Errorf("names: bad GUID %q", s)
	}
	copy(g[:], b)
	return g, nil
}

// GUIDSource generates GUIDs; the deterministic variant supports
// reproducible simulations.
type GUIDSource struct {
	mu  sync.Mutex
	rng *mrand.Rand // nil = crypto/rand
}

// NewGUIDSource returns a cryptographically random source.
func NewGUIDSource() *GUIDSource { return &GUIDSource{} }

// NewDeterministicGUIDSource returns a seeded source for simulations.
func NewDeterministicGUIDSource(seed int64) *GUIDSource {
	return &GUIDSource{rng: mrand.New(mrand.NewSource(seed))}
}

// Next returns a fresh GUID.
func (s *GUIDSource) Next() GUID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var g GUID
	if s.rng == nil {
		if _, err := rand.Read(g[:]); err != nil {
			// crypto/rand failure is unrecoverable for a naming service.
			panic(err)
		}
		return g
	}
	for i := 0; i < 16; i += 8 {
		v := s.rng.Uint64()
		for j := 0; j < 8; j++ {
			g[i+j] = byte(v >> (8 * j))
		}
	}
	return g
}

// CollisionProbability returns the birthday-bound estimate of at least one
// collision after n draws from a 2^128 space: ~ n(n-1)/2 / 2^128. Exposed
// so experiments can report why the probabilistic approach is "the
// preferred approach" (§8).
func CollisionProbability(n int64) *big.Float {
	if n < 2 {
		return big.NewFloat(0)
	}
	pairs := new(big.Float).SetInt64(n)
	pairs.Mul(pairs, new(big.Float).SetInt64(n-1))
	pairs.Quo(pairs, big.NewFloat(2))
	space := new(big.Float).SetInt(new(big.Int).Lsh(big.NewInt(1), 128))
	return pairs.Quo(pairs, space)
}

// Authority generates names guaranteed unique within its scope (§8's first
// approach). Authorities form a hierarchy: each child authority manages a
// sub-scope, so a VO can run one per aggregate directory with low
// administrative overhead — at the cost of names being only relatively
// unique across hierarchies.
type Authority struct {
	scope string

	mu       sync.Mutex
	issued   map[string]bool
	counter  uint64
	children map[string]*Authority
}

// NewAuthority creates a root authority for the given scope label.
func NewAuthority(scope string) *Authority {
	return &Authority{scope: scope, issued: map[string]bool{}, children: map[string]*Authority{}}
}

// Scope returns the authority's fully qualified scope.
func (a *Authority) Scope() string { return a.scope }

// Issue returns a name of the form scope/prefix-N guaranteed unique within
// this authority.
func (a *Authority) Issue(prefix string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		a.counter++
		name := fmt.Sprintf("%s/%s-%d", a.scope, prefix, a.counter)
		if !a.issued[name] {
			a.issued[name] = true
			return name
		}
	}
}

// Claim reserves an externally chosen name, reporting whether it was free.
func (a *Authority) Claim(name string) bool {
	full := a.scope + "/" + name
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.issued[full] {
		return false
	}
	a.issued[full] = true
	return true
}

// Child returns (creating on demand) the sub-authority for a label; its
// scope nests under this authority's scope.
func (a *Authority) Child(label string) *Authority {
	a.mu.Lock()
	defer a.mu.Unlock()
	if c, ok := a.children[label]; ok {
		return c
	}
	c := NewAuthority(a.scope + "/" + label)
	a.children[label] = c
	return c
}

// Within reports whether a name was issued under this authority's scope
// (itself or any descendant).
func (a *Authority) Within(name string) bool {
	return strings.HasPrefix(name, a.scope+"/")
}
