package names

import (
	"strings"
	"sync"
	"testing"
)

func TestGUIDStringRoundTrip(t *testing.T) {
	g, err := NewGUID()
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if len(s) != 32 {
		t.Fatalf("len = %d", len(s))
	}
	back, err := ParseGUID(s)
	if err != nil || back != g {
		t.Fatalf("round trip: %v %v", back, err)
	}
	if _, err := ParseGUID("zz"); err == nil {
		t.Error("bad hex should fail")
	}
	if _, err := ParseGUID("00"); err == nil {
		t.Error("short GUID should fail")
	}
}

func TestDeterministicGUIDSource(t *testing.T) {
	a, b := NewDeterministicGUIDSource(7), NewDeterministicGUIDSource(7)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewDeterministicGUIDSource(8)
	if a.Next() == c.Next() {
		t.Error("different seeds should differ")
	}
}

func TestGUIDUniquenessEmpirical(t *testing.T) {
	src := NewDeterministicGUIDSource(1)
	seen := map[GUID]bool{}
	for i := 0; i < 100000; i++ {
		g := src.Next()
		if seen[g] {
			t.Fatalf("collision at %d", i)
		}
		seen[g] = true
	}
}

func TestCryptoGUIDSource(t *testing.T) {
	src := NewGUIDSource()
	if src.Next() == src.Next() {
		t.Error("consecutive crypto GUIDs equal")
	}
}

func TestCollisionProbability(t *testing.T) {
	if p, _ := CollisionProbability(1).Float64(); p != 0 {
		t.Errorf("P(1) = %f", p)
	}
	p, _ := CollisionProbability(1 << 30).Float64() // a billion names
	if p > 1e-18 {
		t.Errorf("P(2^30) = %g, expected astronomically small", p)
	}
	big, _ := CollisionProbability(1 << 62).Float64()
	if big <= p {
		t.Error("collision probability should grow with n")
	}
}

func TestAuthorityIssueUnique(t *testing.T) {
	a := NewAuthority("vo=alliance")
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		n := a.Issue("res")
		if seen[n] {
			t.Fatalf("duplicate %q", n)
		}
		if !strings.HasPrefix(n, "vo=alliance/res-") {
			t.Fatalf("name form %q", n)
		}
		seen[n] = true
	}
}

func TestAuthorityClaim(t *testing.T) {
	a := NewAuthority("vo=x")
	if !a.Claim("hostA") {
		t.Fatal("first claim should succeed")
	}
	if a.Claim("hostA") {
		t.Fatal("second claim should fail")
	}
}

func TestAuthorityHierarchy(t *testing.T) {
	vo := NewAuthority("vo=alliance")
	c1 := vo.Child("center1")
	c1again := vo.Child("center1")
	if c1 != c1again {
		t.Error("child should be memoized")
	}
	n := c1.Issue("host")
	if !strings.HasPrefix(n, "vo=alliance/center1/host-") {
		t.Errorf("nested name %q", n)
	}
	if !vo.Within(n) {
		t.Error("vo should contain nested names")
	}
	c2 := vo.Child("center2")
	if c2.Within(n) {
		t.Error("sibling scope should not contain name")
	}
	// Relative uniqueness (§8): the same label can be claimed in two
	// different hierarchies — names are only unique within a scope.
	if !c1.Claim("dup") || !c2.Claim("dup") {
		t.Error("same leaf name must be claimable in sibling scopes")
	}
}

func TestAuthorityConcurrentIssue(t *testing.T) {
	a := NewAuthority("s")
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := a.Issue("x")
				mu.Lock()
				if seen[n] {
					t.Error("concurrent duplicate")
				}
				seen[n] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 1600 {
		t.Errorf("issued %d", len(seen))
	}
}
