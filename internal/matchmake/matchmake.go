// Package matchmake implements a classad-style matchmaking engine in the
// spirit of the Condor Matchmaker the paper cites as an alternative
// directory query mechanism (§5.3: "we can construct directories that
// employ the Condor matchmaking algorithm as a query evaluation
// mechanism"). Requests and resources are both described by attribute
// lists ("ads") carrying Requirements and Rank expressions that may
// reference the other party's attributes — expressing the join-like
// queries ("an idle computer connected to an idle network") that the
// basic GRIP filter language deliberately omits (§4.2).
package matchmake

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mds2/internal/ldap"
)

// Value is a classad value: string, float64, bool, or Undefined.
type Value any

// Undefined is the classad undefined value, produced by references to
// missing attributes. Comparisons against it yield Undefined; a
// Requirements expression evaluating to Undefined does not match.
type Undefined struct{}

// Ad is one advertisement: typed attributes plus the matching expressions.
type Ad struct {
	Attrs map[string]Value
	// Requirements must evaluate true against a candidate for this side
	// to accept the match; empty means "accept anything".
	Requirements string
	// Rank orders acceptable candidates (higher preferred); empty ranks
	// all candidates equally.
	Rank string
}

// NewAd returns an empty ad.
func NewAd() *Ad { return &Ad{Attrs: map[string]Value{}} }

// Set binds an attribute, coercing Go numerics to float64.
func (a *Ad) Set(name string, v Value) *Ad {
	switch n := v.(type) {
	case int:
		v = float64(n)
	case int64:
		v = float64(n)
	case float32:
		v = float64(n)
	}
	a.Attrs[strings.ToLower(name)] = v
	return a
}

// Get returns the named attribute or Undefined.
func (a *Ad) Get(name string) Value {
	if a == nil {
		return Undefined{}
	}
	if v, ok := a.Attrs[strings.ToLower(name)]; ok {
		return v
	}
	return Undefined{}
}

// FromEntry converts an LDAP entry into an ad: numeric-looking values
// become numbers, "true"/"false" become booleans, everything else strings.
// Multi-valued attributes keep their first value (ads are scalar); the
// entry's object classes are preserved as a space-joined string.
func FromEntry(e *ldap.Entry) *Ad {
	ad := NewAd()
	ad.Set("dn", e.DN.String())
	for _, attr := range e.Attrs {
		if len(attr.Values) == 0 {
			continue
		}
		if strings.EqualFold(attr.Name, "objectclass") {
			ad.Set("objectclass", strings.ToLower(strings.Join(attr.Values, " ")))
			continue
		}
		ad.Set(attr.Name, coerce(attr.Values[0]))
	}
	return ad
}

func coerce(s string) Value {
	t := strings.TrimSpace(s)
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return f
	}
	switch strings.ToLower(t) {
	case "true":
		return true
	case "false":
		return false
	}
	return s
}

// Match reports whether both ads' Requirements accept each other — the
// symmetric Condor matching rule.
func Match(a, b *Ad) (bool, error) {
	okA, err := Satisfies(a, b)
	if err != nil {
		return false, err
	}
	if !okA {
		return false, nil
	}
	return Satisfies(b, a)
}

// Satisfies evaluates self's Requirements with the given other side.
func Satisfies(self, other *Ad) (bool, error) {
	if strings.TrimSpace(self.Requirements) == "" {
		return true, nil
	}
	v, err := Eval(self.Requirements, self, other)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	return ok && b, nil
}

// RankOf evaluates self's Rank against a candidate; non-numeric or
// undefined ranks are 0.
func RankOf(self, other *Ad) float64 {
	if strings.TrimSpace(self.Rank) == "" {
		return 0
	}
	v, err := Eval(self.Rank, self, other)
	if err != nil {
		return 0
	}
	if f, ok := v.(float64); ok {
		return f
	}
	return 0
}

// MatchResult pairs a candidate with the requester's rank for it.
type MatchResult struct {
	Ad   *Ad
	Rank float64
}

// MatchAll returns the candidates matching request, ordered by descending
// request rank (ties broken by dn for determinism).
func MatchAll(request *Ad, candidates []*Ad) ([]MatchResult, error) {
	var out []MatchResult
	for _, c := range candidates {
		ok, err := Match(request, c)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, MatchResult{Ad: c, Rank: RankOf(request, c)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		di, _ := out[i].Ad.Get("dn").(string)
		dj, _ := out[j].Ad.Get("dn").(string)
		return di < dj
	})
	return out, nil
}

// Eval evaluates a classad expression with self/other binding.
// Grammar (precedence low→high):
//
//	expr   := or
//	or     := and ("||" and)*
//	and    := not ("&&" not)*
//	not    := "!" not | cmp
//	cmp    := sum (("=="|"!="|"<="|">="|"<"|">") sum)?
//	sum    := prod (("+"|"-") prod)*
//	prod   := unary (("*"|"/") unary)*
//	unary  := "-" unary | primary
//	primary:= NUMBER | STRING | "true" | "false" | "undefined"
//	        | ("self."|"other.")? IDENT | "(" expr ")"
//
// Bare identifiers resolve against self. String comparison is
// case-insensitive (matching the LDAP caseIgnore convention). Any
// comparison or arithmetic over Undefined yields Undefined; && and ||
// use three-valued logic so partial information cannot fake a match.
func Eval(expr string, self, other *Ad) (Value, error) {
	p := &parser{in: expr, self: self, other: other}
	v, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("matchmake: trailing input %q", p.in[p.pos:])
	}
	return v, nil
}

type parser struct {
	in    string
	pos   int
	self  *Ad
	other *Ad
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) lit(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parseOr() (Value, error) {
	v, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.lit("||") {
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		v = or3(v, rhs)
	}
	return v, nil
}

func (p *parser) parseAnd() (Value, error) {
	v, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.lit("&&") {
		rhs, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		v = and3(v, rhs)
	}
	return v, nil
}

func (p *parser) parseNot() (Value, error) {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '!' && !strings.HasPrefix(p.in[p.pos:], "!=") {
		p.pos++
		v, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		if b, ok := v.(bool); ok {
			return !b, nil
		}
		return Undefined{}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Value, error) {
	lhs, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.lit(op) {
			rhs, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return compare(op, lhs, rhs), nil
		}
	}
	return lhs, nil
}

func (p *parser) parseSum() (Value, error) {
	v, err := p.parseProd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.lit("+"):
			rhs, err := p.parseProd()
			if err != nil {
				return nil, err
			}
			v = arith("+", v, rhs)
		case p.lit("-"):
			rhs, err := p.parseProd()
			if err != nil {
				return nil, err
			}
			v = arith("-", v, rhs)
		default:
			return v, nil
		}
	}
}

func (p *parser) parseProd() (Value, error) {
	v, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.lit("*"):
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			v = arith("*", v, rhs)
		case p.lit("/"):
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			v = arith("/", v, rhs)
		default:
			return v, nil
		}
	}
}

func (p *parser) parseUnary() (Value, error) {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '-' {
		p.pos++
		v, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if f, ok := v.(float64); ok {
			return -f, nil
		}
		return Undefined{}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Value, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("matchmake: unexpected end of expression")
	}
	c := p.in[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.lit(")") {
			return nil, fmt.Errorf("matchmake: missing ')' at %d", p.pos)
		}
		return v, nil
	case c == '"':
		return p.parseString()
	case c >= '0' && c <= '9' || c == '.':
		return p.parseNumber()
	default:
		return p.parseIdent()
	}
}

func (p *parser) parseString() (Value, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '\\' && p.pos+1 < len(p.in) {
			p.pos++
			b.WriteByte(p.in[p.pos])
			p.pos++
			continue
		}
		if c == '"' {
			p.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return nil, fmt.Errorf("matchmake: unterminated string")
}

func (p *parser) parseNumber() (Value, error) {
	start := p.pos
	for p.pos < len(p.in) && (p.in[p.pos] >= '0' && p.in[p.pos] <= '9' || p.in[p.pos] == '.') {
		p.pos++
	}
	f, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return nil, fmt.Errorf("matchmake: bad number %q", p.in[start:p.pos])
	}
	return f, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.'
}

func (p *parser) parseIdent() (Value, error) {
	start := p.pos
	for p.pos < len(p.in) && isIdentChar(p.in[p.pos]) {
		p.pos++
	}
	word := p.in[start:p.pos]
	if word == "" {
		return nil, fmt.Errorf("matchmake: unexpected character %q at %d", p.in[p.pos], p.pos)
	}
	switch strings.ToLower(word) {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "undefined":
		return Undefined{}, nil
	}
	lower := strings.ToLower(word)
	switch {
	case strings.HasPrefix(lower, "other."):
		return p.other.Get(lower[len("other."):]), nil
	case strings.HasPrefix(lower, "self."):
		return p.self.Get(lower[len("self."):]), nil
	default:
		return p.self.Get(lower), nil
	}
}

func isUndef(v Value) bool {
	_, ok := v.(Undefined)
	return ok
}

func and3(a, b Value) Value {
	if ab, ok := a.(bool); ok && !ab {
		return false
	}
	if bb, ok := b.(bool); ok && !bb {
		return false
	}
	ab, aok := a.(bool)
	bb, bok := b.(bool)
	if aok && bok {
		return ab && bb
	}
	return Undefined{}
}

func or3(a, b Value) Value {
	if ab, ok := a.(bool); ok && ab {
		return true
	}
	if bb, ok := b.(bool); ok && bb {
		return true
	}
	ab, aok := a.(bool)
	bb, bok := b.(bool)
	if aok && bok {
		return ab || bb
	}
	return Undefined{}
}

func compare(op string, a, b Value) Value {
	if isUndef(a) || isUndef(b) {
		return Undefined{}
	}
	switch av := a.(type) {
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return Undefined{}
		}
		switch op {
		case "==":
			return av == bv
		case "!=":
			return av != bv
		case "<":
			return av < bv
		case ">":
			return av > bv
		case "<=":
			return av <= bv
		case ">=":
			return av >= bv
		}
	case string:
		bv, ok := b.(string)
		if !ok {
			return Undefined{}
		}
		cmp := strings.Compare(strings.ToLower(av), strings.ToLower(bv))
		switch op {
		case "==":
			return cmp == 0
		case "!=":
			return cmp != 0
		case "<":
			return cmp < 0
		case ">":
			return cmp > 0
		case "<=":
			return cmp <= 0
		case ">=":
			return cmp >= 0
		}
	case bool:
		bv, ok := b.(bool)
		if !ok {
			return Undefined{}
		}
		switch op {
		case "==":
			return av == bv
		case "!=":
			return av != bv
		}
		return Undefined{}
	}
	return Undefined{}
}

func arith(op string, a, b Value) Value {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if !aok || !bok {
		return Undefined{}
	}
	switch op {
	case "+":
		return af + bf
	case "-":
		return af - bf
	case "*":
		return af * bf
	case "/":
		if bf == 0 {
			return Undefined{}
		}
		return af / bf
	}
	return Undefined{}
}
