package matchmake

import (
	"testing"

	"mds2/internal/ldap"
)

func evalOK(t *testing.T, expr string, self, other *Ad) Value {
	t.Helper()
	v, err := Eval(expr, self, other)
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	return v
}

func TestEvalLiterals(t *testing.T) {
	self := NewAd()
	cases := map[string]Value{
		"42":            42.0,
		"3.5":           3.5,
		`"hello"`:       "hello",
		"true":          true,
		"false":         false,
		"-7":            -7.0,
		"2 + 3 * 4":     14.0,
		"(2 + 3) * 4":   20.0,
		"10 / 4":        2.5,
		"7 - 2 - 1":     4.0,
		"1 < 2":         true,
		"2 <= 2":        true,
		"3 != 3":        false,
		`"a" == "A"`:    true, // caseIgnore
		`"abc" < "abd"`: true,
		"true && false": false,
		"true || false": true,
		"!false":        true,
		"!(1 > 2)":      true,
	}
	for expr, want := range cases {
		if got := evalOK(t, expr, self, nil); got != want {
			t.Errorf("%q = %v (%T), want %v", expr, got, got, want)
		}
	}
}

func TestEvalReferences(t *testing.T) {
	self := NewAd().Set("memory", 2048).Set("os", "linux")
	other := NewAd().Set("imagesize", 512).Set("arch", "ia32")
	if got := evalOK(t, "memory > other.imagesize", self, other); got != true {
		t.Errorf("cross reference = %v", got)
	}
	if got := evalOK(t, "self.memory / 2", self, other); got != 1024.0 {
		t.Errorf("self reference = %v", got)
	}
	if got := evalOK(t, `os == "LINUX"`, self, other); got != true {
		t.Errorf("bare reference = %v", got)
	}
}

func TestUndefinedSemantics(t *testing.T) {
	self := NewAd().Set("x", 1)
	// Missing attribute comparisons are Undefined, not false/true.
	v := evalOK(t, "missing > 5", self, nil)
	if !isUndef(v) {
		t.Errorf("missing comparison = %v", v)
	}
	// Three-valued logic: undefined && false == false; undefined || true == true.
	if got := evalOK(t, "(missing > 5) && false", self, nil); got != false {
		t.Errorf("undef && false = %v", got)
	}
	if got := evalOK(t, "(missing > 5) || true", self, nil); got != true {
		t.Errorf("undef || true = %v", got)
	}
	if !isUndef(evalOK(t, "(missing > 5) && true", self, nil)) {
		t.Error("undef && true should stay undefined")
	}
	// Undefined requirements never satisfy.
	req := &Ad{Attrs: map[string]Value{}, Requirements: "other.ghost == 1"}
	ok, err := Satisfies(req, NewAd())
	if err != nil || ok {
		t.Errorf("undefined requirements matched: %v %v", ok, err)
	}
	// Division by zero is undefined.
	if !isUndef(evalOK(t, "1 / 0", self, nil)) {
		t.Error("division by zero should be undefined")
	}
	// Type mismatches are undefined.
	if !isUndef(evalOK(t, `1 == "one"`, self, nil)) {
		t.Error("cross-type comparison should be undefined")
	}
}

func TestEvalErrors(t *testing.T) {
	for _, bad := range []string{"", "1 +", "(1", `"unterminated`, "1 2", "&&", "@#$"} {
		if _, err := Eval(bad, NewAd(), nil); err == nil {
			t.Errorf("Eval(%q): expected error", bad)
		}
	}
}

func TestSymmetricMatch(t *testing.T) {
	// The paper's §5.3 example: "find me an idle computer".
	job := &Ad{
		Attrs:        map[string]Value{"imagesize": 512.0, "owner": "alice"},
		Requirements: `other.arch == "ia32" && other.memory >= imagesize && other.load5 < 1.0`,
		Rank:         "other.freecpus",
	}
	idle := NewAd().Set("arch", "ia32").Set("memory", 2048).
		Set("load5", 0.3).Set("freecpus", 4)
	idle.Requirements = `other.owner != "mallory"`
	busy := NewAd().Set("arch", "ia32").Set("memory", 2048).
		Set("load5", 5.0).Set("freecpus", 0)

	if ok, err := Match(job, idle); err != nil || !ok {
		t.Fatalf("idle should match: %v %v", ok, err)
	}
	if ok, _ := Match(job, busy); ok {
		t.Fatal("busy should not match")
	}
	// Symmetry: the resource's requirements also bind.
	malloryJob := &Ad{
		Attrs:        map[string]Value{"imagesize": 1.0, "owner": "mallory"},
		Requirements: "true",
	}
	if ok, _ := Match(malloryJob, idle); ok {
		t.Fatal("resource requirements must also hold")
	}
}

func TestMatchAllRanked(t *testing.T) {
	req := &Ad{
		Attrs:        map[string]Value{},
		Requirements: "other.freecpus >= 1",
		Rank:         "other.freecpus",
	}
	var candidates []*Ad
	for i, free := range []float64{2, 8, 0, 4} {
		c := NewAd().Set("freecpus", free).Set("dn", string(rune('a'+i)))
		candidates = append(candidates, c)
	}
	got, err := MatchAll(req, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("matches = %d", len(got))
	}
	if got[0].Rank != 8 || got[1].Rank != 4 || got[2].Rank != 2 {
		t.Errorf("rank order = %v %v %v", got[0].Rank, got[1].Rank, got[2].Rank)
	}
}

func TestFromEntry(t *testing.T) {
	e := ldap.NewEntry(ldap.MustParseDN("hn=hostX, o=grid")).
		Add("objectclass", "computer", "top").
		Add("hn", "hostX").
		Add("cpucount", "64").
		Add("load5", "3.2").
		Add("online", "true")
	ad := FromEntry(e)
	if ad.Get("cpucount") != 64.0 {
		t.Errorf("cpucount = %v", ad.Get("cpucount"))
	}
	if ad.Get("load5") != 3.2 {
		t.Errorf("load5 = %v", ad.Get("load5"))
	}
	if ad.Get("online") != true {
		t.Errorf("online = %v", ad.Get("online"))
	}
	if ad.Get("hn") != "hostX" {
		t.Errorf("hn = %v", ad.Get("hn"))
	}
	if ad.Get("objectclass") != "computer top" {
		t.Errorf("objectclass = %v", ad.Get("objectclass"))
	}
	if ad.Get("dn") != "hn=hostX, o=grid" {
		t.Errorf("dn = %v", ad.Get("dn"))
	}
	// The join-like query of §5.3 works over converted entries.
	req := &Ad{
		Attrs:        map[string]Value{"needcpus": 32.0},
		Requirements: "other.cpucount >= needcpus && other.load5 <= 4.0",
	}
	if ok, err := Match(req, ad); err != nil || !ok {
		t.Errorf("entry-backed match: %v %v", ok, err)
	}
}

func TestNilOtherAd(t *testing.T) {
	v := evalOK(t, "other.x == 1", NewAd(), nil)
	if !isUndef(v) {
		t.Errorf("nil other should be undefined: %v", v)
	}
}

func BenchmarkMatch(b *testing.B) {
	job := &Ad{
		Attrs:        map[string]Value{"imagesize": 512.0},
		Requirements: `other.arch == "ia32" && other.memory >= imagesize && other.load5 < 1.0`,
	}
	host := NewAd().Set("arch", "ia32").Set("memory", 2048).Set("load5", 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, err := Match(job, host); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}
