package giis

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mds2/internal/grrp"
	"mds2/internal/ldap"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

// concGauge tracks how many searches are in flight across ALL children of a
// rig, and the peak that number ever reached — the observable effect of the
// fan-out bound.
type concGauge struct {
	running atomic.Int64
	peak    atomic.Int64
}

func (g *concGauge) enter() {
	n := g.running.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

func (g *concGauge) exit() { g.running.Add(-1) }

// laggyChild is a minimal information provider whose Search sleeps for a
// configurable delay before answering — the slow or half-partitioned child
// the hedge deadline is designed to cut off.
type laggyChild struct {
	ldap.BaseHandler
	name   string
	suffix ldap.DN
	delay  time.Duration
	gauge  *concGauge
}

func (h *laggyChild) Search(req *ldap.Request, op *ldap.SearchRequest, w ldap.SearchWriter) ldap.Result {
	if h.gauge != nil {
		h.gauge.enter()
		defer h.gauge.exit()
	}
	if h.delay > 0 {
		select {
		case <-time.After(h.delay):
		case <-req.Ctx.Done():
			return ldap.Result{Code: ldap.ResultUnavailable, Message: "abandoned"}
		}
	}
	e := ldap.NewEntry(h.suffix).
		Add("objectclass", "computer").
		Add("hn", h.name)
	if op.Filter == nil || op.Filter.Matches(e) {
		if err := w.SendEntry(e.Select(op.Attributes)); err != nil {
			return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
		}
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// fanoutRig is a wall-clock grid for concurrency tests and benchmarks:
// `fast` instant children plus `slow` children delayed by slowDelay, all
// registered with one chaining GIIS.
type fanoutRig struct {
	giis     *Server
	gauge    concGauge
	children []*laggyChild
}

func newFanoutRig(t testing.TB, strategy *Chaining, fast, slow int, slowDelay time.Duration) *fanoutRig {
	t.Helper()
	network := simnet.New(1)
	g := New(Config{
		Name:     "giis.vo",
		Suffix:   ldap.MustParseDN("vo=v"),
		SelfURL:  ldap.MustParseURL("sim://giis-node:389"),
		Clock:    softstate.RealClock{},
		Strategy: strategy,
		Dial: func(url ldap.URL) (*ldap.Client, error) {
			conn, err := network.Dial("giis-node", url.Address())
			if err != nil {
				return nil, err
			}
			return ldap.NewClient(conn), nil
		},
	})
	t.Cleanup(g.Close)
	rig := &fanoutRig{giis: g}
	addChild := func(i int, delay time.Duration) {
		name := fmt.Sprintf("h%03d", i)
		suffix := ldap.MustParseDN("hn=" + name + ", o=c")
		child := &laggyChild{name: name, suffix: suffix, delay: delay, gauge: &rig.gauge}
		srv := ldap.NewServer(child)
		l, err := network.Listen(name+"-node", "389")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		now := time.Now()
		if !g.Ingest(&grrp.Message{
			Type:       grrp.TypeRegister,
			ServiceURL: fmt.Sprintf("sim://%s-node:389", name),
			MDSType:    "gris",
			SuffixDN:   suffix.String(),
			IssuedAt:   now,
			ValidUntil: now.Add(time.Hour),
		}) {
			t.Fatalf("registration for %s refused", name)
		}
		rig.children = append(rig.children, child)
	}
	for i := 0; i < fast; i++ {
		addChild(i, 0)
	}
	for i := 0; i < slow; i++ {
		addChild(fast+i, slowDelay)
	}
	return rig
}

func (r *fanoutRig) search(tb testing.TB) ([]*ldap.Entry, ldap.Result) {
	tb.Helper()
	w := &sink{}
	res := r.giis.Search(
		&ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}},
		&ldap.SearchRequest{BaseDN: "vo=v", Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter("(objectclass=computer)")}, w)
	return w.entries, res
}

// TestHedgeDeadlineBoundsSlowChild: with one child delayed far past the
// hedge deadline, the search returns the fast children's entries within
// roughly the deadline and flags the result partial.
func TestHedgeDeadlineBoundsSlowChild(t *testing.T) {
	const (
		fast  = 4
		hedge = 100 * time.Millisecond
		delay = 2 * time.Second
	)
	r := newFanoutRig(t, &Chaining{Parallel: true, HedgeDeadline: hedge}, fast, 1, delay)
	start := time.Now()
	entries, res := r.search(t)
	took := time.Since(start)
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(res.Message, "hedge") {
		t.Errorf("hedged search not flagged partial: %q", res.Message)
	}
	if len(entries) != fast {
		t.Errorf("entries = %d, want %d (slow child cut off)", len(entries), fast)
	}
	if took >= delay {
		t.Errorf("search took %v — blocked on the slow child instead of hedging", took)
	}
}

// TestNoHedgeWaitsForAllChildren pins the pre-hedge semantics: with a zero
// deadline the search waits out every child, slow ones included.
func TestNoHedgeWaitsForAllChildren(t *testing.T) {
	const delay = 50 * time.Millisecond
	r := newFanoutRig(t, &Chaining{Parallel: true}, 3, 1, delay)
	start := time.Now()
	entries, res := r.search(t)
	took := time.Since(start)
	if res.Code != ldap.ResultSuccess || res.Message != "" {
		t.Fatalf("res = %+v", res)
	}
	if len(entries) != 4 {
		t.Errorf("entries = %d, want 4", len(entries))
	}
	if took < delay {
		t.Errorf("search took %v, should have waited out the %v child", took, delay)
	}
}

// TestMaxFanoutBoundsConcurrency: with MaxFanout 2 and children that stall
// briefly, no more than 2 chained searches ever run at once.
func TestMaxFanoutBoundsConcurrency(t *testing.T) {
	r := newFanoutRig(t, &Chaining{Parallel: true, MaxFanout: 2}, 0, 8, 10*time.Millisecond)
	entries, res := r.search(t)
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if len(entries) != 8 {
		t.Errorf("entries = %d, want 8", len(entries))
	}
	if peak := r.gauge.peak.Load(); peak > 2 {
		t.Errorf("peak concurrent chained searches = %d, want <= MaxFanout (2)", peak)
	}
	if running := r.gauge.running.Load(); running != 0 {
		t.Errorf("children still running after search: %d", running)
	}
}

// TestConcurrentSearchStress hammers one GIIS from many clients while one
// child lags: designed to run clean under -race, covering the worker pool,
// the hedge cutoff, streamed sends, and the refcounted connection pool.
func TestConcurrentSearchStress(t *testing.T) {
	const (
		fast    = 12
		clients = 8
		rounds  = 3
		hedge   = 25 * time.Millisecond
	)
	r := newFanoutRig(t, &Chaining{Parallel: true, MaxFanout: 4, HedgeDeadline: hedge},
		fast, 1, 300*time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan string, clients*rounds)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				entries, res := r.search(t)
				if res.Code != ldap.ResultSuccess {
					errs <- fmt.Sprintf("res = %+v", res)
					return
				}
				if len(entries) > fast+1 {
					errs <- fmt.Sprintf("entries = %d", len(entries))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentSearchSurvivesEviction overlaps fan-out searches with pool
// evictions caused by severed connections: the refcounted pool must never
// close a client another chain is mid-Search on (the old dropClient race),
// and healed partitions must be re-dialed transparently.
func TestConcurrentSearchSurvivesEviction(t *testing.T) {
	network := simnet.New(1)
	g := New(Config{
		Name:    "giis.vo",
		Suffix:  ldap.MustParseDN("vo=v"),
		SelfURL: ldap.MustParseURL("sim://giis-node:389"),
		Clock:   softstate.RealClock{},
		Dial: func(url ldap.URL) (*ldap.Client, error) {
			conn, err := network.Dial("giis-node", url.Address())
			if err != nil {
				return nil, err
			}
			c := ldap.NewClient(conn)
			c.Timeout = 2 * time.Second
			return c, nil
		},
	})
	t.Cleanup(g.Close)
	var nodes []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("h%03d", i)
		suffix := ldap.MustParseDN("hn=" + name + ", o=c")
		child := &laggyChild{name: name, suffix: suffix, delay: time.Millisecond}
		srv := ldap.NewServer(child)
		l, err := network.Listen(name+"-node", "389")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		now := time.Now()
		if !g.Ingest(&grrp.Message{Type: grrp.TypeRegister,
			ServiceURL: fmt.Sprintf("sim://%s-node:389", name), MDSType: "gris",
			SuffixDN: suffix.String(), IssuedAt: now, ValidUntil: now.Add(time.Hour)}) {
			t.Fatal("registration refused")
		}
		nodes = append(nodes, name+"-node")
	}
	done := make(chan struct{})
	go func() {
		// Keep severing and healing the links while searches run, forcing
		// connection-level failures, retries, and evictions.
		for i := 0; i < 20; i++ {
			network.SetPartitions(append([]string{"giis-node"}, nodes[:2]...), nodes[2:])
			time.Sleep(2 * time.Millisecond)
			network.Heal()
			time.Sleep(2 * time.Millisecond)
		}
		close(done)
	}()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				w := &sink{}
				res := g.Search(&ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}},
					&ldap.SearchRequest{BaseDN: "vo=v", Scope: ldap.ScopeWholeSubtree,
						Filter: ldap.MustParseFilter("(objectclass=computer)")}, w)
				if res.Code != ldap.ResultSuccess {
					// Severed links legitimately yield unavailable children;
					// only the result code matters for pool integrity.
					continue
				}
			}
		}()
	}
	wg.Wait()
}
