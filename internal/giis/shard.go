package giis

import (
	"sync"
	"time"

	"mds2/internal/bloom"
	"mds2/internal/grrp"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/shard"
)

// ShardMode selects how a sharded directory involves its peers in a search.
type ShardMode int

// Shard modes.
const (
	// ShardProxy chains sub-queries to the owning peers and merges their
	// replies — the client sees one directory.
	ShardProxy ShardMode = iota
	// ShardReferral returns the owning peers as LDAP referrals; the client
	// walks them with grip.Client.SearchFollowingReferrals.
	ShardReferral
)

// Sharded is the partitioned directory tier: this GIIS is one member of a
// consistent-hash ring that splits the registration namespace, each
// registration replicated to Replicas owners. The strategy answers from
// the local partition and involves exactly the owning peers when the query
// names a partition key, falling back to scatter-gather (with Bloom
// pre-filtering and DN dedup) when it does not. Registrations for keys
// this shard does not own are refused at the soft-state registry, which is
// what bounds per-node resident entries near N·Replicas/shards.
type Sharded struct {
	// Ring is the shared shard configuration; Self is this node's member
	// ID on it.
	Ring *shard.Ring
	Self string
	// Replicas is K, the number of owners per registration key (default 2).
	Replicas int
	// KeyAttrs are the partition-key attribute types
	// (shard.DefaultKeyAttrs when empty).
	KeyAttrs []string
	// Mode selects proxy (default) or referral peer involvement.
	Mode ShardMode
	// MaxFanout bounds concurrent chained requests per search; zero means
	// DefaultMaxFanout.
	MaxFanout int
	// SummaryTTL bounds peer-summary staleness (default 30s); SummaryAttrs
	// is the testable vocabulary (shard.DefaultSummaryAttrs when empty).
	SummaryTTL   time.Duration
	SummaryAttrs []string

	s       *Server
	planner *shard.Planner

	mu sync.Mutex
	// Routing index over the local child set, cached against the registry
	// version like Server.Children.
	idxVer   uint64
	idxOK    bool
	byKey    map[string][]Child
	wildcard []Child
	// localSummary caches this shard's own Bloom summary (served to peers
	// over the shard-summary extended operation), also version-keyed.
	localSummary    []byte
	localSummaryVer uint64
	localSummaryOK  bool
	// summaries caches peer summaries by member ID.
	summaries map[string]*peerSummary

	// Stats, registered under giis_shard_* when the server has an obs
	// registry.
	RoutableSearches obs.Counter // searches routed to owners only
	ScatterSearches  obs.Counter // searches scattered ring-wide
	PeerQueries      obs.Counter // chained sub-queries sent to peers
	PeerFailovers    obs.Counter // owner failures absorbed by a replica
	PeerReferrals    obs.Counter // referral URLs returned to clients
	BloomSkipped     obs.Counter // scatter fan-outs skipped by summaries
	DupDropped       obs.Counter // duplicate entries dropped by DN dedup
}

type peerSummary struct {
	filter    *bloom.Filter
	fetchedAt time.Time
	// failed records an unreachable fetch so the next attempt waits for
	// the TTL instead of re-dialing a down peer on every search.
	failed bool
}

// DefaultShardSummaryTTL bounds peer-summary staleness when unset.
const DefaultShardSummaryTTL = 30 * time.Second

// NewSharded builds the sharded strategy for one ring member.
func NewSharded(ring *shard.Ring, self string, replicas int) *Sharded {
	return &Sharded{Ring: ring, Self: self, Replicas: replicas}
}

// Name implements Strategy.
func (sh *Sharded) Name() string { return "sharded" }

// Planner exposes the routing decisions (registrars and experiments place
// registrations with it).
func (sh *Sharded) Planner() *shard.Planner { return sh.planner }

func (sh *Sharded) attach(s *Server) {
	sh.s = s
	if sh.Replicas < 1 {
		sh.Replicas = 2
	}
	if sh.SummaryTTL <= 0 {
		sh.SummaryTTL = DefaultShardSummaryTTL
	}
	if len(sh.SummaryAttrs) == 0 {
		sh.SummaryAttrs = shard.DefaultSummaryAttrs
	}
	sh.summaries = map[string]*peerSummary{}
	sh.planner = shard.NewPlanner(sh.Ring, sh.Self, sh.Replicas, s.cfg.Suffix, sh.KeyAttrs)

	// Ownership enforcement: registrations hashing to other shards are
	// refused at the registry, so a misdirected (or broadcast-storm) stream
	// cannot inflate this node's resident set.
	s.receiver.Registry.SetOwns(func(_ string, payload any) bool {
		m, ok := payload.(*grrp.Message)
		if !ok {
			return false
		}
		return sh.planner.OwnsRegistration(m.SuffixDN)
	})

	// The shard-summary extended operation serves this shard's Bloom
	// summary to peers.
	if s.cfg.Extensions == nil {
		s.cfg.Extensions = map[string]Extension{}
	}
	s.cfg.Extensions[shard.OIDShardSummary] = func(*ldap.Request, []byte) ([]byte, error) {
		return sh.localSummaryBytes(), nil
	}

	if s.cfg.Obs != nil {
		s.cfg.Obs.RegisterCounter("giis_shard_routable_total", &sh.RoutableSearches)
		s.cfg.Obs.RegisterCounter("giis_shard_scatter_total", &sh.ScatterSearches)
		s.cfg.Obs.RegisterCounter("giis_shard_peer_queries_total", &sh.PeerQueries)
		s.cfg.Obs.RegisterCounter("giis_shard_peer_failovers_total", &sh.PeerFailovers)
		s.cfg.Obs.RegisterCounter("giis_shard_peer_referrals_total", &sh.PeerReferrals)
		s.cfg.Obs.RegisterCounter("giis_shard_bloom_skipped_total", &sh.BloomSkipped)
		s.cfg.Obs.RegisterCounter("giis_shard_dup_dropped_total", &sh.DupDropped)
		reg := s.receiver.Registry
		s.cfg.Obs.CounterFunc("giis_shard_not_owned_total", func() int64 {
			return int64(reg.NotOwnedTotal())
		})
	}
}

// index returns the key-routed view of the local child set, rebuilt only
// when the registry version moves.
func (sh *Sharded) index(children []Child) (map[string][]Child, []Child) {
	ver := sh.s.receiver.Registry.Version()
	sh.mu.Lock()
	if sh.idxOK && sh.idxVer == ver {
		byKey, wildcard := sh.byKey, sh.wildcard
		sh.mu.Unlock()
		return byKey, wildcard
	}
	sh.mu.Unlock()
	byKey := map[string][]Child{}
	var wildcard []Child
	for _, c := range children {
		if key, keyed := sh.planner.RegistrationKeyDN(c.Suffix); keyed {
			byKey[key] = append(byKey[key], c)
		} else {
			wildcard = append(wildcard, c)
		}
	}
	sh.mu.Lock()
	sh.byKey, sh.wildcard, sh.idxVer, sh.idxOK = byKey, wildcard, ver, true
	sh.mu.Unlock()
	return byKey, wildcard
}

// peerChild wraps a ring member as a chain target. Peers share this
// directory's suffix, so region translation and DN grafting are identity.
func (sh *Sharded) peerChild(m shard.Member) Child {
	return Child{URL: m.URL, Suffix: sh.s.cfg.Suffix, ViewSuffix: sh.s.cfg.Suffix, MDSType: "giis"}
}

var shardLocalControl = ldap.Control{OID: shard.OIDShardLocal}

// Search implements Strategy.
func (sh *Sharded) Search(ctx *SearchContext) ldap.Result {
	// A peer's sub-query carries the shard-local control: answer from the
	// local partition only, never fan out again — this one-hop rule is what
	// terminates proxy chains on a ring.
	localOnly := false
	if ctx.Req != nil {
		_, localOnly = ldap.FindControl(ctx.Req.Controls, shard.OIDShardLocal)
	}

	plan := sh.planner.Plan(ctx.Base, ctx.Op.Filter)

	// Select the local children the region can touch. Routable regions —
	// whether the query arrived from a client or as a peer's sub-query —
	// read the key index instead of scanning the whole partition: an
	// owner holding hundreds of thousands of residents must not pay a
	// per-child region check for a lookup that names one key.
	var local []Child
	if plan.Routable {
		byKey, wildcard := sh.index(ctx.Children)
		for _, k := range plan.Keys {
			local = append(local, byKey[k]...)
		}
		local = append(local, wildcard...)
	} else {
		// Scatter consults the whole local partition; translateRegion
		// below still prunes children outside the region.
		local = ctx.Children
	}

	if localOnly {
		return sh.searchLocal(ctx, local)
	}
	if plan.Routable {
		sh.RoutableSearches.Inc()
	} else {
		sh.ScatterSearches.Inc()
	}
	if sh.Mode == ShardReferral {
		return sh.searchReferral(ctx, local, &plan)
	}
	return sh.searchProxy(ctx, local, &plan)
}

// dedupSender streams entries to the client exactly once per DN. When the
// search carries a size limit, entries buffer and sort globally first (the
// limit imposes an order on which survive); otherwise each batch streams
// as it arrives, sorted within itself.
type dedupSender struct {
	ctx      *SearchContext
	sh       *Sharded
	seen     map[string]struct{}
	ordered  bool
	buffered []*ldap.Entry
}

func (d *dedupSender) add(entries []*ldap.Entry) error {
	fresh := entries[:0]
	for _, e := range entries {
		k := e.DN.Normalize()
		if _, dup := d.seen[k]; dup {
			d.sh.DupDropped.Inc()
			continue
		}
		d.seen[k] = struct{}{}
		fresh = append(fresh, e)
	}
	if d.ordered {
		d.buffered = append(d.buffered, fresh...)
		return nil
	}
	ldap.SortEntries(fresh)
	for _, e := range fresh {
		if err := d.ctx.send(e); err != nil {
			return err
		}
	}
	return nil
}

func (d *dedupSender) flush() error {
	if !d.ordered {
		return nil
	}
	ldap.SortEntries(d.buffered)
	for _, e := range d.buffered {
		if err := d.ctx.send(e); err != nil {
			return err
		}
	}
	return nil
}

func (sh *Sharded) newSender(ctx *SearchContext) *dedupSender {
	return &dedupSender{ctx: ctx, sh: sh, seen: map[string]struct{}{}, ordered: ctx.Op.SizeLimit > 0}
}

// searchLocal answers entirely from the local partition (peer sub-queries
// and the local half of every mode).
func (sh *Sharded) searchLocal(ctx *SearchContext, local []Child) ldap.Result {
	replies, n := sh.fanout(ctx, sh.localJobs(ctx, local))
	sender := sh.newSender(ctx)
	partial := false
	for done := 0; done < n; done++ {
		r := <-replies
		if r.err != nil {
			partial = true
			continue
		}
		if err := sender.add(r.entries); err != nil {
			return sizeOrUnavailable(err)
		}
	}
	if err := sender.flush(); err != nil {
		return sizeOrUnavailable(err)
	}
	res := ldap.Result{Code: ldap.ResultSuccess}
	if partial {
		res.Message = "partial results: some providers unreachable"
	}
	return res
}

type shardReply struct {
	entries []*ldap.Entry
	err     error
}

// localJobs builds one chained sub-query per relevant local child.
func (sh *Sharded) localJobs(ctx *SearchContext, local []Child) []func() shardReply {
	jobs := make([]func() shardReply, 0, len(local))
	for _, child := range local {
		if _, _, ok := translateRegion(ctx.Base, ctx.Op.Scope, child); !ok {
			continue
		}
		child := child
		jobs = append(jobs, func() shardReply {
			entries, err := sh.s.chain(ctx.Req, child, ctx.Base, ctx.Op.Scope, ctx.Op.Filter,
				ctx.Op.Attributes, ctx.Op.SizeLimit)
			return shardReply{entries, err}
		})
	}
	return jobs
}

// fanout runs jobs on a bounded worker pool (the Chaining pattern: closed
// job channel, fully buffered replies so no worker ever blocks).
func (sh *Sharded) fanout(ctx *SearchContext, fns []func() shardReply) (<-chan shardReply, int) {
	jobs := make(chan func() shardReply, len(fns))
	for _, fn := range fns {
		jobs <- fn
	}
	close(jobs)
	replies := make(chan shardReply, len(fns))
	workers := sh.MaxFanout
	if workers <= 0 {
		workers = DefaultMaxFanout
	}
	if workers > len(fns) {
		workers = len(fns)
	}
	for i := 0; i < workers; i++ {
		go func() {
			for fn := range jobs {
				replies <- fn()
			}
		}()
	}
	if len(fns) > 0 {
		sh.s.hFanout.ObserveValue(int64(len(fns)))
	}
	return replies, len(fns)
}

// searchProxy merges the local partition with chained peer sub-queries.
func (sh *Sharded) searchProxy(ctx *SearchContext, local []Child, plan *shard.Plan) ldap.Result {
	fns := sh.localJobs(ctx, local)

	if plan.Routable {
		// One job per key, failing over through the key's owners in ring
		// order: if the primary is down its replica still answers, which is
		// the K-replication availability argument.
		for _, key := range plan.Keys {
			owners := plan.OwnersFor(key)
			if len(owners) == 0 {
				continue
			}
			fns = append(fns, func() shardReply {
				var lastErr error
				for i, owner := range owners {
					if i > 0 {
						sh.PeerFailovers.Inc()
					}
					sh.PeerQueries.Inc()
					entries, err := sh.s.chainWith(ctx.Req, sh.peerChild(owner), ctx.Base,
						ctx.Op.Scope, ctx.Op.Filter, ctx.Op.Attributes, ctx.Op.SizeLimit,
						[]ldap.Control{shardLocalControl})
					if err == nil {
						return shardReply{entries, nil}
					}
					lastErr = err
				}
				return shardReply{nil, lastErr}
			})
		}
	} else {
		// Scatter: every other ring member, minus those whose Bloom summary
		// proves they cannot match.
		terms := shard.QueryTerms(ctx.Op.Filter, sh.SummaryAttrs)
		now := sh.s.clock.Now()
		for _, m := range plan.Remote {
			if len(terms) > 0 {
				if f := sh.peerSummaryFor(m, now); f != nil && !summaryMayMatch(f, terms) {
					sh.BloomSkipped.Inc()
					continue
				}
			}
			m := m
			fns = append(fns, func() shardReply {
				sh.PeerQueries.Inc()
				entries, err := sh.s.chainWith(ctx.Req, sh.peerChild(m), ctx.Base,
					ctx.Op.Scope, ctx.Op.Filter, ctx.Op.Attributes, ctx.Op.SizeLimit,
					[]ldap.Control{shardLocalControl})
				return shardReply{entries, err}
			})
		}
	}

	replies, n := sh.fanout(ctx, fns)
	sender := sh.newSender(ctx)
	partial := false
	for done := 0; done < n; done++ {
		r := <-replies
		if r.err != nil {
			partial = true
			continue
		}
		if err := sender.add(r.entries); err != nil {
			return sizeOrUnavailable(err)
		}
	}
	if err := sender.flush(); err != nil {
		return sizeOrUnavailable(err)
	}
	res := ldap.Result{Code: ldap.ResultSuccess}
	if partial {
		res.Message = "partial results: some shards unreachable"
	}
	return res
}

// searchReferral serves the local partition and refers the client to the
// peers that may hold the rest; grip.Client.SearchFollowingReferrals walks
// them with loop and duplicate protection.
func (sh *Sharded) searchReferral(ctx *SearchContext, local []Child, plan *shard.Plan) ldap.Result {
	res := sh.searchLocal(ctx, local)
	if res.Code != ldap.ResultSuccess {
		return res
	}
	var urls []string
	if plan.Routable {
		// Refer to every owner of every remote key: the client dedups
		// replicated entries and an unreachable primary is covered by its
		// replica.
		for _, key := range plan.Keys {
			for _, m := range plan.OwnersFor(key) {
				urls = append(urls, m.URL.WithDN(ctx.Base).String())
			}
		}
	} else {
		for _, m := range plan.Remote {
			urls = append(urls, m.URL.WithDN(ctx.Base).String())
		}
	}
	urls = dedupSorted(urls)
	if len(urls) > 0 {
		sh.PeerReferrals.Add(int64(len(urls)))
		if err := ctx.W.SendReferral(urls...); err != nil {
			return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
		}
	}
	res.Referrals = urls
	return res
}

func dedupSorted(in []string) []string {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]struct{}, len(in))
	out := in[:0]
	for _, s := range in {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// localSummaryBytes renders this shard's Bloom summary of its children's
// namespace terms, cached against the registry version.
func (sh *Sharded) localSummaryBytes() []byte {
	ver := sh.s.receiver.Registry.Version()
	sh.mu.Lock()
	if sh.localSummaryOK && sh.localSummaryVer == ver {
		b := sh.localSummary
		sh.mu.Unlock()
		return b
	}
	sh.mu.Unlock()
	children := sh.s.Children()
	var terms []string
	for _, c := range children {
		terms = append(terms, shard.SuffixTerms(c.Suffix)...)
	}
	f := bloom.NewForCapacity(len(terms), 0.01)
	for _, t := range terms {
		f.Add(t)
	}
	b, err := f.MarshalBinary()
	if err != nil {
		return nil
	}
	sh.mu.Lock()
	sh.localSummary, sh.localSummaryVer, sh.localSummaryOK = b, ver, true
	sh.mu.Unlock()
	return b
}

// peerSummaryFor returns the cached Bloom summary for a peer, fetching over
// the shard-summary extended operation when stale. Unavailable summaries
// fail open (nil): the peer is queried anyway, and the failure is cached
// for a TTL so a down peer is not re-dialed per search.
func (sh *Sharded) peerSummaryFor(m shard.Member, now time.Time) *bloom.Filter {
	sh.mu.Lock()
	ps, ok := sh.summaries[m.ID]
	if ok && now.Sub(ps.fetchedAt) < sh.SummaryTTL {
		sh.mu.Unlock()
		if ps.failed {
			return nil
		}
		return ps.filter
	}
	sh.mu.Unlock()
	f := sh.fetchSummary(m)
	sh.mu.Lock()
	sh.summaries[m.ID] = &peerSummary{filter: f, fetchedAt: now, failed: f == nil}
	sh.mu.Unlock()
	return f
}

func (sh *Sharded) fetchSummary(m shard.Member) *bloom.Filter {
	pe, err := sh.s.acquire(m.URL)
	if err != nil {
		return nil
	}
	resp, err := pe.c.Extended(shard.OIDShardSummary, nil)
	if err != nil {
		sh.s.evict(pe)
		sh.s.release(pe)
		return nil
	}
	sh.s.release(pe)
	if err := resp.Result.Err(); err != nil {
		return nil
	}
	f, err := bloom.UnmarshalBinary(resp.Value)
	if err != nil {
		return nil
	}
	return f
}
