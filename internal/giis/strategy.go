package giis

import (
	"sync"
	"time"

	"mds2/internal/bloom"
	"mds2/internal/ldap"
	"mds2/internal/qcache"
)

// SearchContext carries one data search through a strategy.
type SearchContext struct {
	Server   *Server
	Req      *ldap.Request
	Op       *ldap.SearchRequest
	W        ldap.SearchWriter
	Base     ldap.DN
	Children []Child

	sent *int64 // shared with the local-entry sender for SizeLimit
}

// send streams one translated entry, honouring the size limit.
func (c *SearchContext) send(e *ldap.Entry) error {
	if c.Op.SizeLimit > 0 && *c.sent >= c.Op.SizeLimit {
		return errSizeLimit
	}
	*c.sent++
	return c.W.SendEntry(e.Select(c.Op.Attributes))
}

// Strategy is the pluggable search handling of §10.4.
type Strategy interface {
	// Name identifies the strategy in configuration and experiments.
	Name() string
	// Search answers the data portion of a query.
	Search(ctx *SearchContext) ldap.Result
	// attach gives the strategy its owning server before first use.
	attach(s *Server)
}

// Chaining forwards requests to every live child whose namespace
// intersects the query region and merges results — the simple aggregate
// directory MDS-2.1 ships (§10.4: "GRIP requests directed to the GIIS are
// simply forwarded on to the appropriate information provider").
//
// The fan-out is bounded and hedged: at most MaxFanout chained requests run
// concurrently, child replies stream to the client as they arrive (no
// full-barrier merge), and an optional hedge deadline cuts the search off
// at a bounded latency with whatever has arrived rather than waiting on
// the slowest or partitioned child.
type Chaining struct {
	// Parallel fans chained requests out concurrently.
	Parallel bool
	// MaxFanout bounds concurrent chained requests per search; zero means
	// DefaultMaxFanout. Excess children queue for a free worker, so a
	// directory with hundreds of children no longer spawns a goroutine and
	// connection burst per query.
	MaxFanout int
	// HedgeDeadline is the soft deadline for child replies, measured on
	// the directory's clock: when it expires, the replies received so far
	// are returned and the result is marked partial, instead of the whole
	// search blocking on a slow or partitioned child. Zero waits for every
	// child (the pre-hedge behaviour).
	HedgeDeadline time.Duration
	s             *Server
}

// DefaultMaxFanout bounds chained concurrency when MaxFanout is unset.
const DefaultMaxFanout = 16

// NewChaining returns the default strategy (parallel bounded fan-out, no
// hedge deadline).
func NewChaining() *Chaining { return &Chaining{Parallel: true} }

// Name implements Strategy.
func (c *Chaining) Name() string { return "chaining" }

func (c *Chaining) attach(s *Server) { c.s = s }

// Search implements Strategy.
func (c *Chaining) Search(ctx *SearchContext) ldap.Result {
	relevant := make([]Child, 0, len(ctx.Children))
	for _, child := range ctx.Children {
		if _, _, ok := translateRegion(ctx.Base, ctx.Op.Scope, child); ok {
			relevant = append(relevant, child)
		}
	}
	if len(relevant) == 0 {
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	c.s.hFanout.ObserveValue(int64(len(relevant)))

	type reply struct {
		entries []*ldap.Entry
		err     error
	}
	// Both channels are buffered for the full fan-out so workers never
	// block: after a hedge cutoff the search returns immediately and any
	// straggling worker finishes into the buffer and exits.
	jobs := make(chan Child, len(relevant))
	for _, child := range relevant {
		jobs <- child
	}
	close(jobs)
	replies := make(chan reply, len(relevant))
	workers := c.MaxFanout
	if workers <= 0 {
		workers = DefaultMaxFanout
	}
	if !c.Parallel {
		workers = 1
	}
	if workers > len(relevant) {
		workers = len(relevant)
	}
	for i := 0; i < workers; i++ {
		go func() {
			for child := range jobs {
				entries, err := c.s.chain(ctx.Req, child, ctx.Base, ctx.Op.Scope, ctx.Op.Filter,
					ctx.Op.Attributes, ctx.Op.SizeLimit)
				replies <- reply{entries, err}
			}
		}()
	}

	var hedge <-chan time.Time
	if c.HedgeDeadline > 0 {
		hedge = c.s.clock.After(c.HedgeDeadline)
	}
	// A size limit imposes a global order on which entries are kept, so
	// replies buffer and sort before streaming; otherwise each child's
	// reply streams to the client the moment it arrives (sorted within the
	// child for determinism).
	ordered := ctx.Op.SizeLimit > 0
	var buffered []*ldap.Entry
	unreachable, hedged := false, false

collect:
	for done := 0; done < len(relevant); done++ {
		select {
		case r := <-replies:
			if r.err != nil {
				// A failed or partitioned child must not block the others
				// (§2.2); we return what is reachable.
				unreachable = true
				continue
			}
			if ordered {
				buffered = append(buffered, r.entries...)
				continue
			}
			ldap.SortEntries(r.entries)
			for _, e := range r.entries {
				if err := ctx.send(e); err != nil {
					return sizeOrUnavailable(err)
				}
			}
		case <-hedge:
			hedged = true
			c.s.HedgeFired.Inc()
			break collect
		}
	}
	if ordered {
		ldap.SortEntries(buffered)
		for _, e := range buffered {
			if err := ctx.send(e); err != nil {
				return sizeOrUnavailable(err)
			}
		}
	}
	res := ldap.Result{Code: ldap.ResultSuccess}
	switch {
	case hedged:
		res.Message = "partial results: hedge deadline expired before all providers replied"
	case unreachable:
		res.Message = "partial results: some providers unreachable"
	}
	return res
}

// CachedIndex maintains a local copy of each child's entries, refreshed
// through GRIP when stale — the §3 "relational aggregate directory" that
// "follows up each registration with a GRIP query to determine its
// properties". Queries are answered entirely from the index, trading
// freshness for query cost (experiment E4/E6 territory: "tradeoffs between
// the power of an index, the cost associated with maintaining it, and its
// freshness").
type CachedIndex struct {
	// TTL bounds index staleness; stale children are re-fetched on demand.
	TTL time.Duration

	s *Server
	// qc is the per-child entry-set cache. The strategy predates the qcache
	// core and used to carry its own TTL map; it now rides the shared
	// implementation (one freshness/singleflight/eviction path in the tree)
	// with ServeStale on, preserving the §2.2 partition behaviour.
	qc *qcache.Cache
}

// NewCachedIndex returns a cached-index strategy with the given freshness
// bound.
func NewCachedIndex(ttl time.Duration) *CachedIndex {
	return &CachedIndex{TTL: ttl}
}

// Name implements Strategy.
func (c *CachedIndex) Name() string { return "cached-index" }

func (c *CachedIndex) attach(s *Server) {
	c.s = s
	c.qc = qcache.New(qcache.Config{
		Name:  "giis_index",
		Clock: s.clock,
		TTL:   c.TTL,
		// An empty child subtree is as expensive to re-fetch as a full one:
		// negative results keep the full index TTL.
		NegTTL:     c.TTL,
		ServeStale: true,
		Obs:        s.cfg.Obs,
	})
}

// Search implements Strategy.
func (c *CachedIndex) Search(ctx *SearchContext) ldap.Result {
	partial := false
	// Filter before sorting: the index holds every child's full subtree,
	// and sorting the (usually small) matching subset is far cheaper than
	// sorting the corpus. The filter compiles once per search so the
	// per-entry match over the whole corpus stays allocation-free.
	cf := ctx.Op.Filter.Compile()
	var matched []*ldap.Entry
	for _, child := range ctx.Children {
		entries, err := c.childEntries(ctx.Req, child)
		if err != nil {
			partial = true
			continue
		}
		for _, e := range entries {
			if !e.DN.WithinScope(ctx.Base, ctx.Op.Scope) {
				continue
			}
			if !cf.Matches(e) {
				continue
			}
			matched = append(matched, e)
		}
	}
	ldap.SortEntries(matched)
	for _, e := range matched {
		if err := ctx.send(e); err != nil {
			return sizeOrUnavailable(err)
		}
	}
	res := ldap.Result{Code: ldap.ResultSuccess}
	if partial {
		res.Message = "partial results: some providers unreachable"
	}
	return res
}

// childEntries returns the indexed entry set for one child, re-fetching
// the child's whole subtree when the cached copy has expired. The fetch
// bypasses the server-level query cache (chainUncached) so an entry set is
// never cached twice at different TTLs; ServeStale on the index cache
// keeps serving stale data when the authoritative source is unreachable:
// "users should have as much partial or even inconsistent information as
// is available" (§2.2).
func (c *CachedIndex) childEntries(req *ldap.Request, child Child) ([]*ldap.Entry, error) {
	reg := qcache.Region{
		Owner: child.URL.ServiceKey(),
		Base:  child.ViewSuffix,
		Scope: ldap.ScopeWholeSubtree,
	}
	entries, _, err := c.qc.GetOrFill(reg.Key(nil, 0), reg, child.ExpiresAt,
		func() ([]*ldap.Entry, error) {
			return c.s.chainUncached(req, child, child.ViewSuffix, ldap.ScopeWholeSubtree, nil, nil, 0)
		})
	return entries, err
}

// Flush drops the index (tests and failover drills).
func (c *CachedIndex) Flush() { c.qc.Flush() }

// Entries returns a snapshot of every indexed entry across all children,
// the corpus specialized services (e.g. the matchmaker extension) evaluate
// against.
func (c *CachedIndex) Entries() []*ldap.Entry {
	out := c.qc.Entries()
	ldap.SortEntries(out)
	return out
}

// Referral returns continuation references instead of data: the client is
// redirected to the authoritative GRIS, which is how a GIIS serves data it
// is not allowed to cache or proxy (§10.4: "we can return the name of the
// information provider directly to the client in the form of a LDAP URL
// using the referral mechanisms").
type Referral struct {
	s *Server
}

// NewReferral returns the referral strategy.
func NewReferral() *Referral { return &Referral{} }

// Name implements Strategy.
func (r *Referral) Name() string { return "referral" }

func (r *Referral) attach(s *Server) { r.s = s }

// Search implements Strategy.
func (r *Referral) Search(ctx *SearchContext) ldap.Result {
	var urls []string
	for _, child := range ctx.Children {
		if base, _, ok := translateRegion(ctx.Base, ctx.Op.Scope, child); ok {
			urls = append(urls, child.URL.WithDN(base).String())
		}
	}
	if len(urls) > 0 {
		if err := ctx.W.SendReferral(urls...); err != nil {
			return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
		}
	}
	return ldap.Result{Code: ldap.ResultSuccess, Referrals: urls}
}

// BloomRouted chains like Chaining but first consults per-child Bloom
// summaries of the child's attribute terms, skipping children that provably
// cannot match conjunctive equality terms of the filter — the §5.1 lossy
// aggregation alternative (after the Service Discovery Service). False
// positives cost a wasted chained query; false negatives cannot occur.
type BloomRouted struct {
	// TTL bounds summary staleness.
	TTL time.Duration
	// Bits sizes each summary (experiment E5 sweeps this).
	Bits uint64

	s  *Server
	mu sync.Mutex
	// summaries maps child service keys to their term filters.
	summaries map[string]*summary

	// SkippedChildren counts chains avoided by summary misses.
	SkippedChildren int
}

type summary struct {
	filter    *bloom.Filter
	fetchedAt time.Time
}

// NewBloomRouted returns the Bloom-routed chaining strategy.
func NewBloomRouted(ttl time.Duration, bits uint64) *BloomRouted {
	return &BloomRouted{TTL: ttl, Bits: bits, summaries: map[string]*summary{}}
}

// Name implements Strategy.
func (b *BloomRouted) Name() string { return "bloom-routed" }

func (b *BloomRouted) attach(s *Server) { b.s = s }

// Search implements Strategy.
func (b *BloomRouted) Search(ctx *SearchContext) ldap.Result {
	terms := lowerTerms(ctx.Op.Filter)
	now := b.s.clock.Now()
	partial := false
	var all []*ldap.Entry
	for _, child := range ctx.Children {
		if _, _, ok := translateRegion(ctx.Base, ctx.Op.Scope, child); !ok {
			continue
		}
		if len(terms) > 0 {
			if sm := b.summaryFor(child, now); sm != nil && !summaryMayMatch(sm.filter, terms) {
				b.mu.Lock()
				b.SkippedChildren++
				b.mu.Unlock()
				continue
			}
		}
		entries, err := b.s.chain(ctx.Req, child, ctx.Base, ctx.Op.Scope, ctx.Op.Filter,
			ctx.Op.Attributes, ctx.Op.SizeLimit)
		if err != nil {
			partial = true
			continue
		}
		all = append(all, entries...)
	}
	ldap.SortEntries(all)
	for _, e := range all {
		if err := ctx.send(e); err != nil {
			return sizeOrUnavailable(err)
		}
	}
	res := ldap.Result{Code: ldap.ResultSuccess}
	if partial {
		res.Message = "partial results: some providers unreachable"
	}
	return res
}

// summaryMayMatch: a conjunctive query can match only if every equality
// term is (possibly) present.
func summaryMayMatch(f *bloom.Filter, terms []string) bool {
	for _, t := range terms {
		if !f.Test(t) {
			return false
		}
	}
	return true
}

func (b *BloomRouted) summaryFor(child Child, now time.Time) *summary {
	key := child.URL.ServiceKey()
	b.mu.Lock()
	sm, ok := b.summaries[key]
	if ok && now.Sub(sm.fetchedAt) < b.TTL {
		b.mu.Unlock()
		return sm
	}
	b.mu.Unlock()
	entries, err := b.s.chain(nil, child, child.ViewSuffix, ldap.ScopeWholeSubtree, nil, nil, 0)
	if err != nil {
		return nil // no summary: fail open (chain anyway)
	}
	f := bloom.New(b.Bits, 4)
	for _, e := range entries {
		for _, t := range EntryTerms(e) {
			f.Add(t)
		}
	}
	sm = &summary{filter: f, fetchedAt: now}
	b.mu.Lock()
	b.summaries[key] = sm
	b.mu.Unlock()
	return sm
}

// EntryTerms enumerates the lowercase attr=value terms of an entry, the
// vocabulary Bloom summaries index.
func EntryTerms(e *ldap.Entry) []string {
	var out []string
	for _, a := range e.Attrs {
		for _, v := range a.Values {
			out = append(out, lower(a.Name)+"="+lower(v))
		}
	}
	return out
}

func lower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return lowerSlow(s)
		}
	}
	return s
}

func lowerSlow(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
