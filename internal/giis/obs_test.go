package giis

import (
	"strings"
	"testing"
	"time"

	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/providers"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

// TestChainedSearchTracePropagates drives a traced GRIP search through a
// served GIIS into a GRIS child over simulated wire, and checks the root
// trace shows both hops: the chain span at the GIIS and the grafted remote
// search span the GRIS reported back via the trace control.
func TestChainedSearchTracePropagates(t *testing.T) {
	clock := softstate.NewFakeClock()
	network := simnet.New(1)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(clock, 0)

	d := New(Config{
		Name:    "giis.vo",
		Suffix:  ldap.MustParseDN("vo=alliance"),
		SelfURL: ldap.MustParseURL("sim://giis-node:389"),
		Clock:   clock,
		Obs:     reg,
		Dial: func(url ldap.URL) (*ldap.Client, error) {
			conn, err := network.Dial("giis-node", url.Address())
			if err != nil {
				return nil, err
			}
			return ldap.NewClient(conn), nil
		},
	})
	defer d.Close()

	// One GRIS child on its own node.
	h := hostinfo.New("hostA", hostinfo.Spec{
		OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 4, MemoryMB: 1024,
	}, 1)
	suffix := ldap.MustParseDN("hn=hostA, o=center1")
	g := gris.New(gris.Config{Suffix: suffix, Clock: clock})
	for _, b := range providers.HostBackends(h, suffix) {
		g.Register(b)
	}
	leafSrv := ldap.NewServer(g)
	ll, err := network.Listen("hostA-node", "389")
	if err != nil {
		t.Fatal(err)
	}
	go leafSrv.Serve(ll)
	defer leafSrv.Close()

	now := clock.Now()
	if !d.Ingest(&grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: "sim://hostA-node:389",
		MDSType:    "gris",
		SuffixDN:   suffix.String(),
		IssuedAt:   now,
		ValidUntil: now.Add(time.Hour),
	}) {
		t.Fatal("registration refused")
	}

	// Serve the GIIS itself so the trace control crosses real protocol code.
	srv := ldap.NewServer(d)
	srv.Clock = clock
	srv.Obs = reg
	srv.Tracer = tracer
	gl, err := network.Listen("giis-node", "389")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(gl)
	defer srv.Close()

	conn, err := network.Dial("client-node", "giis-node:389")
	if err != nil {
		t.Fatal(err)
	}
	c := ldap.NewClient(conn)
	defer c.Close()

	res, err := c.SearchWith(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)"),
	}, []ldap.Control{ldap.NewTraceControl("", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("chained search returned nothing")
	}

	ex, ok := ldap.TraceSpans(res.DoneControls)
	if !ok {
		t.Fatal("no trace-spans control on the chained search")
	}
	var chain *obs.SpanNode
	for _, ch := range ex.Spans.Children {
		if strings.HasPrefix(ch.Name, "chain:sim://hostA-node:389") {
			chain = ch
		}
	}
	if chain == nil {
		t.Fatalf("no chain span in root trace:\n%s", obs.FormatSpanTree(ex.Spans))
	}
	var remote *obs.SpanNode
	for _, ch := range chain.Children {
		if ch.Remote && ch.Name == "search" {
			remote = ch
		}
	}
	if remote == nil {
		t.Fatalf("chain span has no grafted remote hop:\n%s", obs.FormatSpanTree(ex.Spans))
	}
	foundBackend := false
	for _, ch := range remote.Children {
		if strings.HasPrefix(ch.Name, "backend:") {
			foundBackend = true
		}
	}
	if !foundBackend {
		t.Errorf("remote hop shows no GRIS backend span:\n%s", obs.FormatSpanTree(ex.Spans))
	}

	// The tracer recorded the root trace, and the chain instruments moved.
	recent := tracer.Recent()
	if len(recent) != 1 || recent[0].ID != ex.ID {
		t.Errorf("recent = %+v", recent)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"giis_searches_total 1",
		"giis_chained_ops_total 1",
		"giis_chain_child_ns_count 1",
		"giis_chain_fanout_width_count 1",
		"giis_registry_live 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestPoolMetricsSurviveChurn checks eviction/close counters and the
// pool-wide unknown-response aggregate keep counting across connection
// churn.
func TestPoolMetricsSurviveChurn(t *testing.T) {
	clock := softstate.NewFakeClock()
	network := simnet.New(1)
	reg := obs.NewRegistry()
	d := New(Config{
		Name:    "giis.vo",
		Suffix:  ldap.MustParseDN("vo=alliance"),
		SelfURL: ldap.MustParseURL("sim://giis-node:389"),
		Clock:   clock,
		Obs:     reg,
		Dial: func(url ldap.URL) (*ldap.Client, error) {
			conn, err := network.Dial("giis-node", url.Address())
			if err != nil {
				return nil, err
			}
			return ldap.NewClient(conn), nil
		},
	})

	// A child that immediately closes connections: every chained search
	// fails, killing the pooled client (a dead-client close, not an evict).
	l, err := network.Listen("dead-node", "389")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	defer l.Close()

	now := clock.Now()
	if !d.Ingest(&grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: "sim://dead-node:389",
		MDSType:    "gris",
		SuffixDN:   "o=center1",
		IssuedAt:   now,
		ValidUntil: now.Add(time.Hour),
	}) {
		t.Fatal("registration refused")
	}
	for i := 0; i < 3; i++ {
		r := &rig{t: t, clock: clock, network: network, giis: d}
		_, _ = r.search(&ldap.SearchRequest{
			BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter("(objectclass=computer)"),
		})
	}
	d.Close()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "giis_pool_closes_total") {
		t.Fatalf("no pool close series:\n%s", out)
	}
	if d.PoolCloses.Value() == 0 {
		t.Errorf("pool closes = 0 after churn\n%s", out)
	}
	// The aggregate unknown-responses series exists (zero is fine: a closed
	// conn yields dial/IO errors, not unknown message IDs).
	if !strings.Contains(out, "ldap_client_unknown_responses_total") {
		t.Errorf("missing pool-wide unknown responses series:\n%s", out)
	}
}
