package giis

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mds2/internal/grip"
	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/shard"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

// shardRig is a ring of sharded GIIS replicas plus GRIS hosts on one
// simulated network.
type shardRig struct {
	t       *testing.T
	clock   *softstate.FakeClock
	network *simnet.Network
	ring    *shard.Ring
	shards  map[string]*Server
	strats  map[string]*Sharded
	// hostSuffix maps host name -> registration suffix.
	hostSuffix map[string]ldap.DN
}

func shardNode(id string) string { return id + "-node" }

func newShardRig(t *testing.T, n, k int, mode ShardMode) *shardRig {
	t.Helper()
	r := &shardRig{
		t:          t,
		clock:      softstate.NewFakeClock(),
		network:    simnet.New(1),
		shards:     map[string]*Server{},
		strats:     map[string]*Sharded{},
		hostSuffix: map[string]ldap.DN{},
	}
	members := make([]shard.Member, n)
	for i := range members {
		id := fmt.Sprintf("s%d", i)
		members[i] = shard.Member{ID: id,
			URL: ldap.MustParseURL(fmt.Sprintf("sim://%s:389", shardNode(id)))}
	}
	r.ring = shard.NewRing(members, 0)
	for _, m := range members {
		m := m
		st := NewSharded(r.ring, m.ID, k)
		st.Mode = mode
		s := New(Config{
			Name:     "giis." + m.ID,
			Suffix:   ldap.MustParseDN("o=grid"),
			SelfURL:  m.URL,
			Clock:    r.clock,
			Strategy: st,
			Dial: func(url ldap.URL) (*ldap.Client, error) {
				conn, err := r.network.Dial(shardNode(m.ID), url.Address())
				if err != nil {
					return nil, err
				}
				return ldap.NewClient(conn), nil
			},
		})
		t.Cleanup(s.Close)
		srv := ldap.NewServer(s)
		l, err := r.network.Listen(shardNode(m.ID), "389")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		r.shards[m.ID] = s
		r.strats[m.ID] = st
	}
	return r
}

// addHost starts a GRIS under "hn=<name>, o=<site>, o=grid" and offers its
// registration to every shard — the ownership check at each registry admits
// only the owners.
func (r *shardRig) addHost(name, site string, seed int64) {
	r.t.Helper()
	h := hostinfo.New(name, hostinfo.Spec{
		OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 4, MemoryMB: 1024,
	}, seed)
	suffix := ldap.MustParseDN(fmt.Sprintf("hn=%s, o=%s, o=grid", name, site))
	g := gris.New(gris.Config{Suffix: suffix, Clock: r.clock})
	for _, b := range providers.HostBackends(h, suffix) {
		g.Register(b)
	}
	srv := ldap.NewServer(g)
	l, err := r.network.Listen(name+"-node", "389")
	if err != nil {
		r.t.Fatal(err)
	}
	go srv.Serve(l)
	r.t.Cleanup(func() { srv.Close() })
	r.hostSuffix[name] = suffix

	for _, s := range r.shards {
		s.Ingest(r.registration(name))
	}
}

func (r *shardRig) registration(name string) *grrp.Message {
	now := r.clock.Now()
	return &grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: fmt.Sprintf("sim://%s-node:389", name),
		MDSType:    "gris",
		SuffixDN:   r.hostSuffix[name].String(),
		IssuedAt:   now,
		ValidUntil: now.Add(time.Hour),
	}
}

// owners returns the shard IDs owning a host's registration.
func (r *shardRig) owners(name string) []string {
	var out []string
	for _, m := range r.strats["s0"].Planner().Owners(r.hostSuffix[name].String()) {
		out = append(out, m.ID)
	}
	return out
}

// coordinator picks a shard that does NOT own the host, so queries must
// cross shard boundaries.
func (r *shardRig) coordinator(name string) string {
	owned := map[string]bool{}
	for _, id := range r.owners(name) {
		owned[id] = true
	}
	for id := range r.shards {
		if !owned[id] {
			return id
		}
	}
	r.t.Fatalf("no non-owner shard for %s", name)
	return ""
}

func (r *shardRig) search(id string, req *ldap.SearchRequest) ([]*ldap.Entry, ldap.Result) {
	r.t.Helper()
	w := &sink{}
	res := r.shards[id].Search(&ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}}, req, w)
	return w.entries, res
}

func TestShardedOwnershipBoundsResidency(t *testing.T) {
	const hosts, k, shards = 40, 2, 4
	r := newShardRig(t, shards, k, ShardProxy)
	for i := 0; i < hosts; i++ {
		r.addHost(fmt.Sprintf("h%03d", i), fmt.Sprintf("site%d", i%4), int64(i))
	}
	total := 0
	bound := int(1.25 * float64(hosts*k) / shards)
	for id, s := range r.shards {
		n := s.Receiver().Registry.Len()
		total += n
		if n > bound {
			t.Errorf("shard %s holds %d registrations, above bound %d", id, n, bound)
		}
		if got := s.Receiver().Registry.NotOwnedTotal(); got == 0 {
			t.Errorf("shard %s refused no registrations; ownership check inactive?", id)
		}
	}
	if total != hosts*k {
		t.Fatalf("total resident registrations = %d, want N*K = %d", total, hosts*k)
	}
}

func TestShardedRoutableQuery(t *testing.T) {
	r := newShardRig(t, 4, 2, ShardProxy)
	for i := 0; i < 8; i++ {
		r.addHost(fmt.Sprintf("h%03d", i), "site0", int64(i))
	}
	co := r.coordinator("h003")
	entries, res := r.search(co, &ldap.SearchRequest{
		BaseDN: "o=grid", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(objectclass=computer)(hn=h003))")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if len(entries) != 1 || entries[0].First("hn") != "h003" {
		t.Fatalf("entries = %v", entries)
	}
	st := r.strats[co]
	if st.RoutableSearches.Value() != 1 || st.ScatterSearches.Value() != 0 {
		t.Errorf("routable=%d scatter=%d, want 1/0",
			st.RoutableSearches.Value(), st.ScatterSearches.Value())
	}
	if st.PeerQueries.Value() == 0 {
		t.Error("routable query from non-owner should hit a peer")
	}
	// The owners were queried, not the whole ring.
	if st.PeerQueries.Value() > 2 {
		t.Errorf("peer queries = %d, want <= K", st.PeerQueries.Value())
	}
}

func TestShardedBaseRoutedQuery(t *testing.T) {
	r := newShardRig(t, 4, 2, ShardProxy)
	r.addHost("h000", "site0", 1)
	co := r.coordinator("h000")
	entries, res := r.search(co, &ldap.SearchRequest{
		BaseDN: r.hostSuffix["h000"].String(), Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if res.Code != ldap.ResultSuccess || len(entries) != 1 {
		t.Fatalf("res=%+v n=%d", res, len(entries))
	}
	if !r.strats[co].Planner().Plan(r.hostSuffix["h000"], nil).Routable {
		t.Error("base naming a host should be routable")
	}
}

func TestShardedScatterDedup(t *testing.T) {
	const hosts = 6
	r := newShardRig(t, 4, 2, ShardProxy)
	for i := 0; i < hosts; i++ {
		r.addHost(fmt.Sprintf("h%03d", i), "site0", int64(i))
	}
	entries, res := r.search("s0", &ldap.SearchRequest{
		BaseDN: "o=grid", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	// Every host exactly once, despite each living on K=2 shards.
	seen := map[string]int{}
	for _, e := range entries {
		seen[e.First("hn")]++
	}
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("h%03d", i)
		if seen[name] != 1 {
			t.Errorf("host %s appeared %d times, want 1", name, seen[name])
		}
	}
	st := r.strats["s0"]
	if st.ScatterSearches.Value() != 1 {
		t.Errorf("scatter searches = %d, want 1", st.ScatterSearches.Value())
	}
	if st.DupDropped.Value() == 0 {
		t.Error("K=2 replication should produce duplicates for the dedup to drop")
	}
}

func TestShardedFailoverToReplica(t *testing.T) {
	r := newShardRig(t, 4, 2, ShardProxy)
	for i := 0; i < 8; i++ {
		r.addHost(fmt.Sprintf("h%03d", i), "site0", int64(i))
	}
	name := "h005"
	owners := r.owners(name)
	co := r.coordinator(name)
	// Kill the primary owner: isolate its node (streams severed, dials
	// refused).
	r.network.SetPartitions([]string{}, []string{shardNode(owners[0])})

	entries, res := r.search(co, &ldap.SearchRequest{
		BaseDN: "o=grid", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(objectclass=computer)(hn=" + name + "))")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if len(entries) != 1 || entries[0].First("hn") != name {
		t.Fatalf("surviving replica should answer, got %v", entries)
	}
	if r.strats[co].PeerFailovers.Value() == 0 {
		t.Error("failover counter should record the dead primary")
	}
}

func TestShardedReferralModeFollowedByClient(t *testing.T) {
	const hosts = 6
	r := newShardRig(t, 3, 2, ShardReferral)
	for i := 0; i < hosts; i++ {
		r.addHost(fmt.Sprintf("h%03d", i), "site0", int64(i))
	}
	dial := func(url ldap.URL) (*grip.Client, error) {
		conn, err := r.network.Dial("client-node", url.Address())
		if err != nil {
			return nil, err
		}
		return grip.NewClient(conn), nil
	}
	co, err := dial(ldap.MustParseURL("sim://s0-node:389"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Routable: the coordinator serves its partition and refers to the
	// key's owners.
	entries, err := co.SearchFollowingReferrals(ldap.MustParseDN("o=grid"),
		"(&(objectclass=computer)(hn=h004))", dial, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].First("hn") != "h004" {
		t.Fatalf("referral follow-up = %v", entries)
	}

	// Scatter: referrals to the whole ring; entries still deduped.
	entries, err = co.SearchFollowingReferrals(ldap.MustParseDN("o=grid"),
		"(objectclass=computer)", dial, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, e := range entries {
		seen[e.First("hn")]++
	}
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("h%03d", i)
		if seen[name] != 1 {
			t.Fatalf("host %s appeared %d times, want 1", name, seen[name])
		}
	}
}

func TestShardedBloomSkipsHopelessPeers(t *testing.T) {
	r := newShardRig(t, 4, 2, ShardProxy)
	for i := 0; i < 8; i++ {
		r.addHost(fmt.Sprintf("h%03d", i), fmt.Sprintf("site%d", i%2), int64(i))
	}
	// Unroutable (o is not a key attribute) with a summary-attr term no
	// shard's namespace contains: every peer is provably hopeless.
	entries, res := r.search("s0", &ldap.SearchRequest{
		BaseDN: "o=grid", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(objectclass=computer)(o=nowhere))")})
	if res.Code != ldap.ResultSuccess || len(entries) != 0 {
		t.Fatalf("res=%+v n=%d", res, len(entries))
	}
	st := r.strats["s0"]
	if st.BloomSkipped.Value() != 3 {
		t.Errorf("bloom skipped = %d, want all 3 peers", st.BloomSkipped.Value())
	}

	// A namespace term that does exist must not suppress fan-out (the
	// summary is a pre-filter, never a false negative): peers holding site1
	// hosts get queried.
	skippedBefore := st.BloomSkipped.Value()
	queriesBefore := st.PeerQueries.Value()
	_, res = r.search("s0", &ldap.SearchRequest{
		BaseDN: "o=grid", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(objectclass=computer)(o=site1))")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if skipped := st.BloomSkipped.Value() - skippedBefore; skipped == 3 {
		t.Error("present term suppressed every peer: summary is lying")
	}
	if st.PeerQueries.Value() == queriesBefore {
		t.Error("present term should reach at least one peer")
	}
}

func TestShardedConcurrentSearches(t *testing.T) {
	r := newShardRig(t, 3, 2, ShardProxy)
	for i := 0; i < 6; i++ {
		r.addHost(fmt.Sprintf("h%03d", i), "site0", int64(i))
	}
	done := make(chan error, 12)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for q := 0; q < 3; q++ {
				name := fmt.Sprintf("h%03d", (g+q)%6)
				entries, res := r.search(fmt.Sprintf("s%d", g%3), &ldap.SearchRequest{
					BaseDN: "o=grid", Scope: ldap.ScopeWholeSubtree,
					Filter: ldap.MustParseFilter("(&(objectclass=computer)(hn=" + name + "))")})
				if res.Code != ldap.ResultSuccess || len(entries) != 1 {
					done <- fmt.Errorf("g%d q%d: res=%+v n=%d", g, q, res, len(entries))
					continue
				}
				done <- nil
			}
		}()
	}
	for i := 0; i < 12; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
