package giis

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

// rig is a little test grid: a simulated network carrying real LDAP bytes,
// N GRIS nodes, and one GIIS.
type rig struct {
	t       *testing.T
	clock   *softstate.FakeClock
	network *simnet.Network
	giis    *Server
	grises  map[string]*gris.Server
	servers []*ldap.Server
}

func newRig(t *testing.T, strategy Strategy, mods ...func(*Config)) *rig {
	t.Helper()
	r := &rig{
		t:       t,
		clock:   softstate.NewFakeClock(),
		network: simnet.New(1),
		grises:  map[string]*gris.Server{},
	}
	cfg := Config{
		Name:     "giis.vo",
		Suffix:   ldap.MustParseDN("vo=alliance"),
		SelfURL:  ldap.MustParseURL("sim://giis-node:389"),
		Clock:    r.clock,
		Strategy: strategy,
		Dial: func(url ldap.URL) (*ldap.Client, error) {
			conn, err := r.network.Dial("giis-node", url.Address())
			if err != nil {
				return nil, err
			}
			return ldap.NewClient(conn), nil
		},
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	r.giis = New(cfg)
	t.Cleanup(r.giis.Close)
	return r
}

// addHost starts a GRIS for a fresh host on its own simnet node and
// registers it with the GIIS (directly, bypassing the datagram path —
// that path is exercised separately).
func (r *rig) addHost(name string, seed int64) *hostinfo.Host {
	r.t.Helper()
	h := hostinfo.New(name, hostinfo.Spec{
		OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 4, MemoryMB: 1024,
	}, seed)
	suffix := ldap.MustParseDN("hn=" + name + ", o=center1")
	g := gris.New(gris.Config{Suffix: suffix, Clock: r.clock})
	for _, b := range providers.HostBackends(h, suffix) {
		g.Register(b)
	}
	srv := ldap.NewServer(g)
	l, err := r.network.Listen(name+"-node", "389")
	if err != nil {
		r.t.Fatal(err)
	}
	go srv.Serve(l)
	r.t.Cleanup(func() { srv.Close() })
	r.grises[name] = g
	r.servers = append(r.servers, srv)

	now := r.clock.Now()
	msg := &grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: fmt.Sprintf("sim://%s-node:389", name),
		MDSType:    "gris",
		SuffixDN:   suffix.String(),
		IssuedAt:   now,
		ValidUntil: now.Add(time.Hour),
	}
	if !r.giis.Ingest(msg) {
		r.t.Fatalf("registration for %s refused", name)
	}
	return h
}

func (r *rig) search(req *ldap.SearchRequest) ([]*ldap.Entry, ldap.Result) {
	r.t.Helper()
	w := &sink{}
	res := r.giis.Search(&ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}}, req, w)
	return w.entries, res
}

type sink struct {
	entries   []*ldap.Entry
	referrals [][]string
}

func (s *sink) SendEntry(e *ldap.Entry, _ ...ldap.Control) error {
	s.entries = append(s.entries, e)
	return nil
}
func (s *sink) SendReferral(urls ...string) error {
	s.referrals = append(s.referrals, urls)
	return nil
}

func TestChainingMergesChildren(t *testing.T) {
	r := newRig(t, NewChaining())
	r.addHost("hostA", 1)
	r.addHost("hostB", 2)

	entries, res := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if len(entries) != 2 {
		t.Fatalf("computers = %d", len(entries))
	}
	// DNs are translated into the VO view namespace. Child replies stream
	// in arrival order, so check membership rather than position.
	want := "hn=hostA, o=center1, vo=alliance"
	found := false
	for _, e := range entries {
		if e.DN.String() == want {
			found = true
		}
	}
	if !found {
		t.Errorf("missing %q in %v", want, entries)
	}
}

func TestScopedSearchChainsOnlyRelevantChild(t *testing.T) {
	r := newRig(t, NewChaining())
	r.addHost("hostA", 1)
	r.addHost("hostB", 2)

	entries, res := r.search(&ldap.SearchRequest{
		BaseDN: "hn=hostB, o=center1, vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if res.Code != ldap.ResultSuccess || len(entries) != 1 {
		t.Fatalf("res=%+v n=%d", res, len(entries))
	}
	if r.giis.ChainedOps.Value() != 1 {
		t.Errorf("chained ops = %d, want 1 (scoping)", r.giis.ChainedOps.Value())
	}
	if hn := entries[0].First("hn"); hn != "hostB" {
		t.Errorf("hn = %q", hn)
	}
}

func TestNameIndexServedLocally(t *testing.T) {
	r := newRig(t, NewChaining())
	r.addHost("hostA", 1)
	r.addHost("hostB", 2)

	entries, res := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeSingleLevel,
		Filter: ldap.MustParseFilter("(objectclass=mdsservice)")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	// Self entry + 2 child index entries; no chained operations at all.
	if len(entries) != 3 {
		t.Fatalf("index entries = %d", len(entries))
	}
	if r.giis.ChainedOps.Value() != 0 {
		t.Errorf("name index should not chain, ops = %d", r.giis.ChainedOps.Value())
	}
}

func TestSoftStateExpiryRemovesChild(t *testing.T) {
	r := newRig(t, NewChaining())
	r.addHost("hostA", 1)
	if len(r.giis.Children()) != 1 {
		t.Fatal("child missing")
	}
	r.clock.Advance(2 * time.Hour) // past the 1h registration TTL
	if len(r.giis.Children()) != 0 {
		t.Fatal("child should expire without refresh")
	}
	entries, _ := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if len(entries) != 0 {
		t.Fatalf("expired child still answered: %d", len(entries))
	}
}

func TestPartitionedChildYieldsPartialResults(t *testing.T) {
	r := newRig(t, NewChaining())
	r.addHost("hostA", 1)
	r.addHost("hostB", 2)
	// Partition hostB away from the GIIS.
	r.network.SetPartitions(
		[]string{"giis-node", "hostA-node"},
		[]string{"hostB-node"},
	)
	entries, res := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if len(entries) != 1 || entries[0].First("hn") != "hostA" {
		t.Fatalf("reachable subset = %v", entries)
	}
	if res.Message == "" {
		t.Error("partial results should be flagged")
	}
}

func TestLDAPAddCarriesRegistration(t *testing.T) {
	r := newRig(t, NewChaining())
	now := r.clock.Now()
	msg := &grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: "sim://late-node:389",
		MDSType:    "gris",
		SuffixDN:   "hn=late, o=center1",
		IssuedAt:   now,
		ValidUntil: now.Add(time.Hour),
	}
	req := &ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}}
	res := r.giis.Add(req, &ldap.AddRequest{Entry: msg.ToEntry()})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("add = %+v", res)
	}
	if len(r.giis.Children()) != 1 {
		t.Fatal("registration not applied")
	}
	// Non-registration adds are refused.
	res = r.giis.Add(req, &ldap.AddRequest{Entry: ldap.NewEntry(ldap.MustParseDN("x=1")).
		Add("objectclass", "computer")})
	if res.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("bogus add = %+v", res)
	}
}

func TestVOAdmissionPolicy(t *testing.T) {
	clock := softstate.NewFakeClock()
	s := New(Config{
		Name: "giis", Suffix: ldap.MustParseDN("vo=alliance"),
		SelfURL: ldap.MustParseURL("sim://g:389"), Clock: clock,
		AcceptVO: "alliance",
		Dial:     func(ldap.URL) (*ldap.Client, error) { return nil, fmt.Errorf("no dial") },
	})
	defer s.Close()
	now := clock.Now()
	mk := func(vo string) *grrp.Message {
		return &grrp.Message{Type: grrp.TypeRegister, ServiceURL: "sim://x:1/" + vo,
			VO: vo, SuffixDN: "hn=x", IssuedAt: now, ValidUntil: now.Add(time.Hour)}
	}
	if !s.Ingest(mk("alliance")) {
		t.Error("member VO refused")
	}
	if s.Ingest(mk("other")) {
		t.Error("foreign VO accepted")
	}
	if s.Registrations.Value() != 1 {
		t.Errorf("registrations = %d", s.Registrations.Value())
	}
}

func TestSignedRegistrationRequired(t *testing.T) {
	clock := softstate.NewFakeClock()
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	s := New(Config{
		Name: "giis", Suffix: ldap.MustParseDN("vo=v"),
		SelfURL: ldap.MustParseURL("sim://g:389"), Clock: clock,
		Trust: trust, RequireSignedRegistrations: true,
		Dial: func(ldap.URL) (*ldap.Client, error) { return nil, fmt.Errorf("no dial") },
	})
	defer s.Close()
	now := clock.Now()
	unsigned := &grrp.Message{Type: grrp.TypeRegister, ServiceURL: "sim://u:1",
		SuffixDN: "hn=u", IssuedAt: now, ValidUntil: now.Add(time.Hour)}
	if s.Ingest(unsigned) {
		t.Error("unsigned registration accepted")
	}
	keys, _ := ca.Issue("cn=gris.x", time.Hour, now)
	signed := &grrp.Message{Type: grrp.TypeRegister, ServiceURL: "sim://s:1",
		SuffixDN: "hn=s", IssuedAt: now, ValidUntil: now.Add(time.Hour)}
	signed.Sign(keys)
	if !s.Ingest(signed) {
		t.Error("signed registration refused")
	}
}

func TestCachedIndexServesWithoutChaining(t *testing.T) {
	strategy := NewCachedIndex(10 * time.Minute)
	r := newRig(t, strategy)
	r.addHost("hostA", 1)

	// First query populates the index (one chain).
	if entries, _ := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")}); len(entries) != 1 {
		t.Fatalf("first query = %d", len(entries))
	}
	before := r.giis.ChainedOps.Value()
	// Repeat queries are served locally.
	for i := 0; i < 5; i++ {
		if entries, _ := r.search(&ldap.SearchRequest{
			BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter("(objectclass=computer)")}); len(entries) != 1 {
			t.Fatalf("cached query = %d", len(entries))
		}
	}
	if r.giis.ChainedOps.Value() != before {
		t.Errorf("cached index chained %d extra times", r.giis.ChainedOps.Value()-before)
	}
	// After TTL the index refreshes.
	r.clock.Advance(11 * time.Minute)
	r.search(&ldap.SearchRequest{BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if r.giis.ChainedOps.Value() <= before {
		t.Error("stale index should refresh")
	}
}

func TestCachedIndexServesStaleDuringPartition(t *testing.T) {
	strategy := NewCachedIndex(time.Minute)
	r := newRig(t, strategy)
	r.addHost("hostA", 1)
	// Populate.
	r.search(&ldap.SearchRequest{BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	// Partition the child, expire the index.
	r.network.SetPartitions([]string{"giis-node"}, []string{"hostA-node"})
	r.clock.Advance(2 * time.Minute)
	entries, res := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if res.Code != ldap.ResultSuccess || len(entries) != 1 {
		t.Fatalf("stale service failed: %+v, %d", res, len(entries))
	}
}

func TestReferralStrategy(t *testing.T) {
	r := newRig(t, NewReferral())
	r.addHost("hostA", 1)
	w := &sink{}
	res := r.giis.Search(&ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}},
		&ldap.SearchRequest{BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter("(objectclass=computer)")}, w)
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if len(w.referrals) != 1 || len(w.referrals[0]) != 1 {
		t.Fatalf("referrals = %v", w.referrals)
	}
	url := w.referrals[0][0]
	if url != "sim://hostA-node:389/hn=hostA, o=center1" {
		t.Errorf("referral = %q", url)
	}
	if r.giis.ChainedOps.Value() != 0 {
		t.Error("referral strategy must not chain")
	}
}

func TestBloomRoutedSkipsNonMatchingChildren(t *testing.T) {
	strategy := NewBloomRouted(time.Hour, 1<<14)
	r := newRig(t, strategy)
	r.addHost("hostA", 1) // both hosts are linux/ia32 in the rig
	r.addHost("hostB", 2)

	// Warm the summaries.
	r.search(&ldap.SearchRequest{BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(hn=hostA)")})
	base := r.giis.ChainedOps.Value()
	// A query for a host neither child has: both summaries miss, no chains.
	entries, _ := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(objectclass=computer)(hn=nonexistent))")})
	if len(entries) != 0 {
		t.Fatalf("ghost host found: %v", entries)
	}
	if r.giis.ChainedOps.Value() != base {
		t.Errorf("bloom routing should skip all children, chains = %d", r.giis.ChainedOps.Value()-base)
	}
	if strategy.SkippedChildren < 2 {
		t.Errorf("skipped = %d", strategy.SkippedChildren)
	}
	// A query matching one host chains only there.
	entries, _ = r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(objectclass=computer)(hn=hostB))")})
	if len(entries) != 1 || entries[0].First("hn") != "hostB" {
		t.Fatalf("bloom-routed query = %v", entries)
	}
	if r.giis.ChainedOps.Value() != base+1 {
		t.Errorf("chains = %d, want exactly one", r.giis.ChainedOps.Value()-base)
	}
}

func TestHierarchyTwoLevels(t *testing.T) {
	// Figure 5: a center GIIS aggregates its hosts and registers with the
	// VO GIIS; searches at the VO root traverse both levels.
	r := newRig(t, NewChaining())

	clock := r.clock
	center := New(Config{
		Name: "giis.center2", Suffix: ldap.MustParseDN("o=center2"),
		SelfURL: ldap.MustParseURL("sim://center2-node:389"), Clock: clock,
		Dial: func(url ldap.URL) (*ldap.Client, error) {
			conn, err := r.network.Dial("center2-node", url.Address())
			if err != nil {
				return nil, err
			}
			return ldap.NewClient(conn), nil
		},
	})
	defer center.Close()
	centerSrv := ldap.NewServer(center)
	l, err := r.network.Listen("center2-node", "389")
	if err != nil {
		t.Fatal(err)
	}
	go centerSrv.Serve(l)
	defer centerSrv.Close()

	// A GRIS under center2.
	h := hostinfo.New("hostC", hostinfo.Spec{OS: "mips irix", OSVer: "6.5",
		CPUType: "mips", CPUCount: 64, MemoryMB: 8192}, 3)
	suffix := ldap.MustParseDN("hn=hostC, o=center2")
	g := gris.New(gris.Config{Suffix: suffix, Clock: clock})
	for _, b := range providers.HostBackends(h, suffix) {
		g.Register(b)
	}
	gSrv := ldap.NewServer(g)
	gl, err := r.network.Listen("hostC-node", "389")
	if err != nil {
		t.Fatal(err)
	}
	go gSrv.Serve(gl)
	defer gSrv.Close()

	now := clock.Now()
	// hostC registers with center2.
	if !center.Ingest(&grrp.Message{Type: grrp.TypeRegister,
		ServiceURL: "sim://hostC-node:389", MDSType: "gris", SuffixDN: suffix.String(),
		IssuedAt: now, ValidUntil: now.Add(time.Hour)}) {
		t.Fatal("hostC registration refused")
	}
	// center2 registers with the VO GIIS using its self-registration.
	reg := center.SelfRegistration("giis-node", "alliance", time.Minute, time.Hour)
	reg.Message.IssuedAt = now
	reg.Message.ValidUntil = now.Add(time.Hour)
	if !r.giis.Ingest(&reg.Message) {
		t.Fatal("center registration refused")
	}
	// Also a direct host at center1.
	r.addHost("hostA", 1)

	// VO-wide search finds hosts at both levels.
	entries, res := r.search(&ldap.SearchRequest{
		BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("res = %+v", res)
	}
	if len(entries) != 2 {
		t.Fatalf("hosts across hierarchy = %d", len(entries))
	}
	var dns []string
	for _, e := range entries {
		dns = append(dns, e.DN.String())
	}
	wantC := "hn=hostC, o=center2, vo=alliance"
	found := false
	for _, dn := range dns {
		if dn == wantC {
			found = true
		}
	}
	if !found {
		t.Errorf("missing %q in %v", wantC, dns)
	}
	// Scoped search to center2 only (Figure 5: "resource names can be used
	// to scope searches to particular organizations").
	entries, _ = r.search(&ldap.SearchRequest{
		BaseDN: "o=center2, vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")})
	if len(entries) != 1 || entries[0].First("hn") != "hostC" {
		t.Fatalf("scoped = %v", entries)
	}
}

func TestInvitationFlow(t *testing.T) {
	r := newRig(t, NewChaining())
	var invited *grrp.Message
	r.network.HandleDatagrams("gris-node", func(from string, payload []byte) {
		m, err := grrp.Unmarshal(payload)
		if err == nil && m.Type == grrp.TypeInvite {
			invited = m
		}
	})
	tr := grrp.TransportFunc(func(to string, payload []byte) error {
		r.network.SendDatagram("giis-node", to, payload)
		return nil
	})
	if err := r.giis.Invite(tr, "gris-node", "alliance", time.Minute); err != nil {
		t.Fatal(err)
	}
	if invited == nil {
		t.Fatal("invitation not delivered")
	}
	if invited.ServiceURL != "sim://giis-node:389" || invited.VO != "alliance" {
		t.Fatalf("invitation = %+v", invited)
	}
}

func TestSizeLimitAcrossLocalAndChained(t *testing.T) {
	r := newRig(t, NewChaining())
	r.addHost("hostA", 1)
	r.addHost("hostB", 2)
	w := &sink{}
	res := r.giis.Search(&ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}},
		&ldap.SearchRequest{BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree, SizeLimit: 3}, w)
	if res.Code != ldap.ResultSizeLimitExceeded {
		t.Fatalf("res = %+v", res)
	}
	if len(w.entries) != 3 {
		t.Fatalf("entries = %d", len(w.entries))
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{NewChaining(), NewCachedIndex(time.Minute),
		NewReferral(), NewBloomRouted(time.Minute, 1024)} {
		if s.Name() == "" {
			t.Error("empty strategy name")
		}
	}
}
