package giis

import (
	"strings"
	"testing"
	"time"

	"mds2/internal/ldap"
)

// BenchmarkFanoutSlowChild measures an aggregate search over 8 fast children
// plus one child delayed 500 ms — the paper's "one site behind a congested
// link" scenario.
//
//   - wait-all pins the pre-hedge behaviour: latency ≈ the slowest child.
//   - hedge-50ms shows the hedged fan-out: latency is bounded by the hedge
//     deadline (≤ ~2× 50 ms) and the result is flagged partial, with the
//     fast children's entries intact.
//
// partial-entries/op counts entries streamed per search (8 fast children ⇒ 8
// when the slow child is cut off, 9 when waited for).
func BenchmarkFanoutSlowChild(b *testing.B) {
	const (
		fastChildren = 8
		slowDelay    = 500 * time.Millisecond
		hedge        = 50 * time.Millisecond
	)
	run := func(b *testing.B, strategy *Chaining, wantHedged bool) {
		r := newFanoutRig(b, strategy, fastChildren, 1, slowDelay)
		total := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entries, res := r.search(b)
			if res.Code != ldap.ResultSuccess {
				b.Fatalf("res = %+v", res)
			}
			if hedged := strings.Contains(res.Message, "hedge"); hedged != wantHedged {
				b.Fatalf("hedged = %v, want %v (message %q)", hedged, wantHedged, res.Message)
			}
			if len(entries) < fastChildren {
				b.Fatalf("entries = %d, want >= %d", len(entries), fastChildren)
			}
			total += len(entries)
		}
		b.ReportMetric(float64(total)/float64(b.N), "entries/op")
	}
	b.Run("wait-all", func(b *testing.B) {
		run(b, &Chaining{Parallel: true}, false)
	})
	b.Run("hedge-50ms", func(b *testing.B) {
		run(b, &Chaining{Parallel: true, HedgeDeadline: hedge}, true)
	})
}
