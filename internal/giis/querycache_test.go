package giis

import (
	"context"
	"testing"
	"time"

	"mds2/internal/grrp"
	"mds2/internal/ldap"
)

func withQueryCache(ttl time.Duration) func(*Config) {
	return func(c *Config) {
		c.QueryCache = true
		c.QueryCacheTTL = ttl
	}
}

func computerQuery() *ldap.SearchRequest {
	return &ldap.SearchRequest{BaseDN: "vo=alliance", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)")}
}

func TestQueryCacheHitSkipsChain(t *testing.T) {
	r := newRig(t, NewChaining(), withQueryCache(time.Minute))
	r.addHost("hostA", 1)
	r.addHost("hostB", 2)

	first, res := r.search(computerQuery())
	if res.Code != ldap.ResultSuccess || len(first) != 2 {
		t.Fatalf("prime: %d entries, res %+v", len(first), res)
	}
	chained := r.giis.ChainedOps.Value()
	if chained == 0 {
		t.Fatal("prime query did not chain")
	}

	second, res := r.search(computerQuery())
	if res.Code != ldap.ResultSuccess || len(second) != 2 {
		t.Fatalf("hit: %d entries, res %+v", len(second), res)
	}
	if got := r.giis.ChainedOps.Value(); got != chained {
		t.Fatalf("identical query re-chained: %d ops, want %d", got, chained)
	}

	// Normalization: a semantically equal query (case-folded filter) shares
	// the key and also hits.
	eq := computerQuery()
	eq.Filter = ldap.MustParseFilter("(ObjectClass=COMPUTER)")
	if _, res := r.search(eq); res.Code != ldap.ResultSuccess {
		t.Fatalf("equivalent query failed: %+v", res)
	}
	if got := r.giis.ChainedOps.Value(); got != chained {
		t.Fatalf("equivalent query re-chained: %d ops, want %d", got, chained)
	}
	if s := r.giis.QueryCache().Stats(); s.Hits == 0 {
		t.Fatalf("cache stats show no hits: %+v", s)
	}
}

// TestPersistentSearchBypassesQueryCache is the regression test for the
// subscriber bug: a persistent-search request answered from the result
// cache would silently freeze the subscription at the cached snapshot, so
// those requests must always chain to the authoritative provider even when
// an identical plain query was just cached.
func TestPersistentSearchBypassesQueryCache(t *testing.T) {
	r := newRig(t, NewChaining(), withQueryCache(time.Minute))
	r.addHost("hostA", 1)

	if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
		t.Fatalf("prime failed: %+v", res)
	}
	chained := r.giis.ChainedOps.Value()

	w := &sink{}
	psReq := &ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{},
		Controls: []ldap.Control{ldap.NewPersistentSearchControl(
			ldap.PersistentSearch{ChangeTypes: ldap.ChangeAll})}}
	if res := r.giis.Search(psReq, computerQuery(), w); res.Code != ldap.ResultSuccess {
		t.Fatalf("persistent search failed: %+v", res)
	}
	if got := r.giis.ChainedOps.Value(); got == chained {
		t.Fatal("persistent search was answered from the query cache instead of chaining")
	}
}

// TestQueryCacheBoundedByChildSoftState pins the two-tier freshness rule:
// even with a long cache TTL, a cached result expires when the child
// registration that produced it would have — a refresh that extends the
// registration does not resurrect results cached under the old deadline.
func TestQueryCacheBoundedByChildSoftState(t *testing.T) {
	r := newRig(t, NewChaining(), withQueryCache(time.Hour))
	r.addHost("hostA", 1)

	// Shrink hostA's registration to 30s from now.
	reingest := func(ttl time.Duration) {
		now := r.clock.Now()
		if !r.giis.Ingest(&grrp.Message{
			Type: grrp.TypeRegister, ServiceURL: "sim://hostA-node:389",
			MDSType: "gris", SuffixDN: "hn=hostA, o=center1",
			IssuedAt: now, ValidUntil: now.Add(ttl),
		}) {
			t.Fatal("re-registration refused")
		}
	}
	reingest(30 * time.Second)

	if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
		t.Fatalf("prime failed: %+v", res)
	}
	chained := r.giis.ChainedOps.Value()

	// Still inside the registration window: served from cache.
	r.clock.Advance(10 * time.Second)
	if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
		t.Fatalf("in-window query failed: %+v", res)
	}
	if got := r.giis.ChainedOps.Value(); got != chained {
		t.Fatalf("in-window query re-chained: %d ops, want %d", got, chained)
	}

	// Extend the registration, then cross the ORIGINAL deadline. The child
	// is alive, but the cached result was produced under the old
	// registration and must not be served past it.
	reingest(time.Hour)
	r.clock.Advance(25 * time.Second)
	if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
		t.Fatalf("post-deadline query failed: %+v", res)
	}
	if got := r.giis.ChainedOps.Value(); got == chained {
		t.Fatal("result cached under the lapsed registration was served past its soft-state bound")
	}
}

// TestRegistryExpiryInvalidatesQueryCache pins the early-invalidation
// path: when a child's registration expires, its cached results drop via
// the registry event subscription instead of lingering until their TTL.
func TestRegistryExpiryInvalidatesQueryCache(t *testing.T) {
	r := newRig(t, NewChaining(), withQueryCache(24*time.Hour))
	r.addHost("hostA", 1) // registration valid for one hour

	if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
		t.Fatalf("prime failed: %+v", res)
	}
	if n := r.giis.QueryCache().Len(); n == 0 {
		t.Fatal("prime query left nothing in the cache")
	}

	// Cross the registration deadline; the sweep fires EventExpired and the
	// invalidation goroutine drops the child's keys (asynchronously).
	r.clock.Advance(time.Hour + time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for r.giis.QueryCache().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("expired child's cached results never invalidated (stats %+v)",
				r.giis.QueryCache().Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if s := r.giis.QueryCache().Stats(); s.Invalidated == 0 {
		t.Fatalf("invalidation counter did not move: %+v", s)
	}
}

// TestCachedIndexSingleFetchPerChild verifies the rebased CachedIndex
// still fetches each child's subtree once per TTL window and serves
// queries from the index in between.
func TestCachedIndexSingleFetchPerChild(t *testing.T) {
	r := newRig(t, NewCachedIndex(time.Minute))
	r.addHost("hostA", 1)

	if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
		t.Fatalf("prime failed: %+v", res)
	}
	chained := r.giis.ChainedOps.Value()
	for i := 0; i < 3; i++ {
		if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
			t.Fatalf("indexed query failed: %+v", res)
		}
	}
	if got := r.giis.ChainedOps.Value(); got != chained {
		t.Fatalf("indexed queries re-fetched the child: %d ops, want %d", got, chained)
	}
	r.clock.Advance(time.Minute)
	if _, res := r.search(computerQuery()); res.Code != ldap.ResultSuccess {
		t.Fatalf("post-TTL query failed: %+v", res)
	}
	if got := r.giis.ChainedOps.Value(); got == chained {
		t.Fatal("index never refreshed after its TTL")
	}
}
