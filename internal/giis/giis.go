// Package giis implements the Grid Index Information Service of §10.4: the
// configurable aggregate directory framework. A GIIS accepts GRRP
// registrations (over datagrams or mapped onto LDAP add operations, as in
// MDS-2.1), maintains a soft-state index of child information providers,
// and answers GRIP searches through a pluggable search strategy — chaining
// requests to the authoritative providers, serving a locally maintained
// cache index, routing via lossy Bloom summaries, or returning referrals.
//
// A GIIS is itself an information provider: it publishes its own service
// entry and the name index of its children, and registers up a hierarchy
// with GRRP to form the Figure 5 discovery tree.
package giis

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"mds2/internal/grip"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/qcache"
	"mds2/internal/softstate"
)

// Dialer opens a GRIP connection to a child service. Deployments use TCP;
// simulations inject simnet dials.
type Dialer func(url ldap.URL) (*ldap.Client, error)

// TCPDialer dials ldap:// URLs over TCP.
func TCPDialer(url ldap.URL) (*ldap.Client, error) {
	conn, err := net.Dial("tcp", url.Address())
	if err != nil {
		return nil, err
	}
	return ldap.NewClient(conn), nil
}

// Child is one live registered information provider (GRIS or subordinate
// GIIS).
type Child struct {
	// URL is the GRIP endpoint from the registration.
	URL ldap.URL
	// Suffix is the child's own namespace root.
	Suffix ldap.DN
	// ViewSuffix is where the child's namespace appears in this
	// directory's view (Suffix grafted under the GIIS suffix).
	ViewSuffix ldap.DN
	// MDSType is "gris" or "giis".
	MDSType string
	// VO is the VO named in the registration.
	VO string
	// ExpiresAt is the soft-state deadline.
	ExpiresAt time.Time
	// LastRefresh is when the registration was last confirmed by the child
	// (or restored from the durability log — see Recovered).
	LastRefresh time.Time
	// Recovered marks a registration rebuilt from the persistence log after
	// a restart and not yet reconfirmed by a live refresh. The directory
	// serves it within the recovery grace window, but operators can
	// distinguish recovered-but-unconfirmed children on the metrics surface.
	Recovered bool
}

// Config assembles a GIIS.
type Config struct {
	// Name identifies this directory (used in its service entry and
	// self-registration), e.g. "giis.center1".
	Name string
	// Suffix is the directory's namespace root ("o=center1" or
	// "vo=alliance"); children appear grafted beneath it.
	Suffix ldap.DN
	// SelfURL is the GRIP URL other services use to reach this GIIS.
	SelfURL ldap.URL
	// Clock drives soft state; nil means wall clock.
	Clock softstate.Clock
	// Dial opens connections for chained searches; nil means TCP.
	Dial Dialer
	// Strategy answers data searches; nil means Chaining.
	Strategy Strategy
	// Trust is the directory's trust store: with Keys it enables GSI SASL
	// binds from clients and authenticated chaining; with
	// RequireSignedRegistrations it verifies registration signatures.
	Trust *gsi.TrustStore
	// RequireSignedRegistrations refuses GRRP messages lacking a valid
	// signature chained to Trust (§7 registration security).
	RequireSignedRegistrations bool
	// Keys is the directory's own GSI identity: it enables GSI binds from
	// clients and, with AuthChildren, authenticated chaining to providers
	// ("the GIIS can also bind using a trusted server credential", §10.4).
	Keys *gsi.KeyPair
	// TrustedDirectories grants the §7 directory role to authenticated
	// peers (e.g. a parent GIIS chaining through this one).
	TrustedDirectories []string
	// AuthChildren makes every chained connection authenticate with Keys
	// before searching, so providers can apply directory-grade policy.
	AuthChildren bool
	// AcceptVO, when non-empty, admits only registrations naming this VO
	// (§2.3 membership policy).
	AcceptVO string
	// Accept, when set, refines admission after signature checks.
	Accept func(*grrp.Message, *gsi.Credential) bool
	// Extensions maps extended-operation OIDs to handlers, the §6 "GRIP
	// extension" mechanism ("resources may offer additional information
	// delivery capabilities beyond those provided by GRIP"). The bundled
	// matchmaker service plugs in here.
	Extensions map[string]Extension
	// Obs, when non-nil, surfaces directory metrics under giis_* series:
	// search/registration/chain counters, pool evict/close counts, chain
	// fan-out width and per-child latency histograms, hedge fires, and
	// soft-state registry live/expired series. The pooled LDAP clients'
	// UnknownResponses counters aggregate here too.
	Obs *obs.Registry
	// QueryCache enables the per-child-hop query-result cache: chained
	// search results are kept (keyed per child, so one slow or hedged child
	// never poisons another's key) and served to identical queries until
	// min(QueryCacheTTL, the child's soft-state deadline), with early
	// invalidation when a child registration expires or is removed.
	// Persistent-search subscriptions always bypass the cache.
	QueryCache bool
	// QueryCacheTTL bounds cached result freshness (qcache.DefaultTTL when
	// zero).
	QueryCacheTTL time.Duration
	// QueryCacheMax bounds the number of cached keys (qcache.DefaultMax
	// when zero).
	QueryCacheMax int
}

// Extension handles one GRIP extended operation: it receives the request
// value and returns the response value.
type Extension func(req *ldap.Request, value []byte) ([]byte, error)

// Server is a GIIS.
type Server struct {
	ldap.BaseHandler

	cfg      Config
	clock    softstate.Clock
	receiver *grrp.Receiver
	strategy Strategy

	poolMu sync.Mutex
	pool   map[string]*poolEntry
	closed bool

	// childMu guards the parsed child-set cache, rebuilt only when the
	// registry version moves (registrations churn far slower than queries).
	childMu    sync.Mutex
	childCache []Child
	childVer   uint64
	childOK    bool

	// Stats
	Registrations obs.Counter // accepted GRRP messages
	Searches      obs.Counter
	ChainedOps    obs.Counter
	// PoolEvictions counts broken child connections unlinked from the pool;
	// PoolCloses counts pooled connections actually closed.
	PoolEvictions obs.Counter
	PoolCloses    obs.Counter
	// HedgeFired counts searches cut off by the chaining hedge deadline.
	HedgeFired obs.Counter

	// unknownClosed accumulates UnknownResponses from pooled clients that
	// have been closed, so the aggregate across the pool's lifetime survives
	// connection churn.
	unknownClosed obs.Counter

	// hChainChild and hFanout are registry-backed histograms (nil — no-op —
	// without Config.Obs): per-child chained search latency and chain
	// fan-out width per search.
	hChainChild *obs.Histogram
	hFanout     *obs.Histogram

	// qc is the per-child-hop query-result cache (nil unless
	// Config.QueryCache); qcStop cancels its registry-event subscription.
	qc     *qcache.Cache
	qcStop func()

	sasl *gsi.SASLBinder
}

// New creates a GIIS.
func New(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = softstate.RealClock{}
	}
	if cfg.Dial == nil {
		cfg.Dial = TCPDialer
	}
	s := &Server{
		cfg:   cfg,
		clock: cfg.Clock,
		pool:  map[string]*poolEntry{},
	}
	if cfg.Keys != nil && cfg.Trust != nil {
		s.sasl = gsi.NewSASLBinder(cfg.Keys, cfg.Trust, cfg.Clock.Now, cfg.TrustedDirectories)
	}
	s.receiver = grrp.NewReceiver(cfg.Clock)
	if cfg.RequireSignedRegistrations {
		s.receiver.Trust = cfg.Trust
	}
	s.receiver.Accept = func(m *grrp.Message, cred *gsi.Credential) bool {
		if m.Type != grrp.TypeRegister {
			return false
		}
		if cfg.AcceptVO != "" && m.VO != cfg.AcceptVO {
			return false
		}
		if cfg.Accept != nil && !cfg.Accept(m, cred) {
			return false
		}
		return true
	}
	if cfg.QueryCache {
		s.qc = qcache.New(qcache.Config{
			Name:  "giis_query",
			Clock: cfg.Clock,
			TTL:   cfg.QueryCacheTTL,
			Max:   cfg.QueryCacheMax,
			Obs:   cfg.Obs,
		})
		// Registry churn is the version-invalidation path: when a child's
		// registration lapses or is withdrawn, its cached results drop
		// immediately instead of waiting out their TTL. Joins and refreshes
		// need nothing — keys are per child, so a new child is simply a
		// future miss.
		ch, cancel := s.receiver.Registry.Subscribe()
		s.qcStop = cancel
		go func() {
			for ev := range ch {
				if ev.Type != softstate.EventExpired && ev.Type != softstate.EventRemoved {
					continue
				}
				owner := ev.Key
				if url, err := ldap.ParseURL(ev.Key); err == nil {
					owner = url.ServiceKey()
				}
				s.qc.InvalidateOwner(owner)
			}
		}()
	}
	if cfg.Strategy == nil {
		cfg.Strategy = NewChaining()
	}
	s.strategy = cfg.Strategy
	s.strategy.attach(s)
	if cfg.Obs != nil {
		cfg.Obs.RegisterCounter("giis_registrations_total", &s.Registrations)
		cfg.Obs.RegisterCounter("giis_searches_total", &s.Searches)
		cfg.Obs.RegisterCounter("giis_chained_ops_total", &s.ChainedOps)
		cfg.Obs.RegisterCounter("giis_pool_evictions_total", &s.PoolEvictions)
		cfg.Obs.RegisterCounter("giis_pool_closes_total", &s.PoolCloses)
		cfg.Obs.RegisterCounter("giis_hedge_fired_total", &s.HedgeFired)
		s.hChainChild = cfg.Obs.Histogram("giis_chain_child_ns")
		s.hFanout = cfg.Obs.Histogram("giis_chain_fanout_width")
		reg := s.receiver.Registry
		cfg.Obs.GaugeFunc("giis_registry_live", func() float64 { return float64(reg.Len()) })
		cfg.Obs.CounterFunc("giis_registry_expired_total", func() int64 {
			return int64(reg.ExpiredTotal())
		})
		// Per-child dependency gauges (one sample per live registration,
		// labelled by the child's service URL): up distinguishes confirmed
		// children (1) from recovered-but-unconfirmed ones (0); the age gauge
		// shows how long since each child last refreshed; recovered flags the
		// restart-restored set explicitly so a post-crash dashboard can watch
		// it drain as children reconfirm.
		cfg.Obs.LabeledGaugeFunc("giis_child_up", "child", func() []obs.LabeledValue {
			children := s.Children()
			out := make([]obs.LabeledValue, len(children))
			for i, c := range children {
				v := 1.0
				if c.Recovered {
					v = 0
				}
				out[i] = obs.LabeledValue{Label: c.URL.String(), Value: v}
			}
			return out
		})
		cfg.Obs.LabeledGaugeFunc("giis_child_last_refresh_age_seconds", "child",
			func() []obs.LabeledValue {
				now := s.clock.Now()
				children := s.Children()
				out := make([]obs.LabeledValue, len(children))
				for i, c := range children {
					out[i] = obs.LabeledValue{Label: c.URL.String(),
						Value: now.Sub(c.LastRefresh).Seconds()}
				}
				return out
			})
		cfg.Obs.LabeledGaugeFunc("giis_child_recovered", "child", func() []obs.LabeledValue {
			children := s.Children()
			out := make([]obs.LabeledValue, len(children))
			for i, c := range children {
				v := 0.0
				if c.Recovered {
					v = 1
				}
				out[i] = obs.LabeledValue{Label: c.URL.String(), Value: v}
			}
			return out
		})
		cfg.Obs.GaugeFunc("giis_pool_size", func() float64 {
			s.poolMu.Lock()
			n := len(s.pool)
			s.poolMu.Unlock()
			return float64(n)
		})
		// PR 4's per-client UnknownResponses counter, aggregated across the
		// whole pool (live connections plus everything already closed).
		cfg.Obs.CounterFunc("ldap_client_unknown_responses_total", func() int64 {
			s.poolMu.Lock()
			total := s.unknownClosed.Value()
			for _, pe := range s.pool {
				total += pe.c.UnknownResponses.Value()
			}
			s.poolMu.Unlock()
			return total
		})
	}
	return s
}

// Suffix returns the directory's namespace root.
func (s *Server) Suffix() ldap.DN { return s.cfg.Suffix }

// Name returns the directory's configured name.
func (s *Server) Name() string { return s.cfg.Name }

// Receiver exposes the GRRP ingest point for datagram transports:
// network.HandleDatagrams(node, giis.Receiver().HandleDatagram).
func (s *Server) Receiver() *grrp.Receiver { return s.receiver }

// Ingest validates and applies one GRRP message (any transport).
func (s *Server) Ingest(m *grrp.Message) bool {
	ok := s.receiver.Ingest(m)
	if ok {
		s.Registrations.Inc()
	}
	return ok
}

// IngestBatch validates and applies a batch of GRRP messages through one
// registry transaction (one lock pass, one version bump), returning the
// number accepted. Bulk loaders and refresh-storm absorbers use it to keep
// the child-set cache from rebuilding per message.
func (s *Server) IngestBatch(msgs []*grrp.Message) int {
	n := s.receiver.IngestBatch(msgs)
	s.Registrations.Add(int64(n))
	return n
}

// HandleDatagram ingests one datagram-carried GRRP payload; wire it into
// simnet.HandleDatagrams or a UDP read loop.
func (s *Server) HandleDatagram(_ string, payload []byte) {
	m, err := grrp.Unmarshal(payload)
	if err != nil {
		return
	}
	s.Ingest(m)
}

// Children returns the live child set, sorted by service URL. The parsed
// set is cached against the registry version, so steady-state searches
// reuse it instead of re-parsing every registration; the returned slice is
// shared and must be treated as read-only.
func (s *Server) Children() []Child {
	ver := s.receiver.Registry.Version()
	s.childMu.Lock()
	if s.childOK && s.childVer == ver {
		out := s.childCache
		s.childMu.Unlock()
		return out
	}
	s.childMu.Unlock()
	out := s.buildChildren()
	s.childMu.Lock()
	s.childCache, s.childVer, s.childOK = out, ver, true
	s.childMu.Unlock()
	return out
}

// buildChildren parses the live registry into the sorted child set.
func (s *Server) buildChildren() []Child {
	items := s.receiver.Registry.Live()
	out := make([]Child, 0, len(items))
	for _, it := range items {
		m, ok := it.Payload.(*grrp.Message)
		if !ok {
			continue
		}
		url, err := ldap.ParseURL(m.ServiceURL)
		if err != nil {
			continue
		}
		suffix, err := ldap.ParseDN(m.SuffixDN)
		if err != nil {
			continue
		}
		// A child whose namespace already sits under this directory's
		// suffix keeps its name; foreign namespaces are grafted beneath
		// the suffix (the Figure 5 VO view).
		view := suffix
		if !suffix.Equal(s.cfg.Suffix) && !suffix.IsDescendantOf(s.cfg.Suffix) {
			view = suffix.Under(s.cfg.Suffix)
		}
		out = append(out, Child{
			URL:         url,
			Suffix:      suffix,
			ViewSuffix:  view,
			MDSType:     m.MDSType,
			VO:          m.VO,
			ExpiresAt:   it.ExpiresAt,
			LastRefresh: it.LastRefresh,
			Recovered:   it.Recovered,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL.String() < out[j].URL.String() })
	return out
}

// poolEntry is one pooled child connection plus a reference count. Fan-out
// goroutines borrow entries with acquire and return them with release;
// evicting a broken entry only removes it from the pool — the connection is
// closed when the last borrower releases it, never out from under a
// concurrent chained Search (the old dropClient use-after-close race).
type poolEntry struct {
	c       *ldap.Client
	key     string
	refs    int
	evicted bool
}

// QueryCache returns the query-result cache, or nil when disabled — the
// /debug introspection mount point.
func (s *Server) QueryCache() *qcache.Cache { return s.qc }

// Close releases pooled connections and the registry. Connections still
// borrowed by in-flight chains close on their final release.
func (s *Server) Close() {
	if s.qcStop != nil {
		s.qcStop()
	}
	s.receiver.Close()
	s.poolMu.Lock()
	s.closed = true
	var idle []*ldap.Client
	for k, pe := range s.pool {
		pe.evicted = true
		if pe.refs == 0 {
			idle = append(idle, pe.c)
		}
		delete(s.pool, k)
	}
	s.poolMu.Unlock()
	for _, c := range idle {
		s.closePooled(c)
	}
}

// closePooled closes a pooled child connection, folding its unknown-response
// count into the pool-lifetime aggregate first.
func (s *Server) closePooled(c *ldap.Client) {
	s.unknownClosed.Add(c.UnknownResponses.Value())
	s.PoolCloses.Inc()
	c.Close()
}

// acquire borrows a pooled connection to a child, dialing on demand. Every
// successful acquire must be paired with a release.
func (s *Server) acquire(url ldap.URL) (*poolEntry, error) {
	key := url.ServiceKey()
	s.poolMu.Lock()
	if s.closed {
		s.poolMu.Unlock()
		return nil, fmt.Errorf("giis: directory closed")
	}
	if pe := s.pool[key]; pe != nil {
		pe.refs++
		s.poolMu.Unlock()
		return pe, nil
	}
	s.poolMu.Unlock()
	c, err := s.cfg.Dial(url)
	if err != nil {
		return nil, err
	}
	if s.cfg.AuthChildren && s.cfg.Keys != nil && s.cfg.Trust != nil {
		if _, err := grip.AuthenticateLDAP(c, s.cfg.Keys, s.cfg.Trust, s.clock.Now); err != nil {
			c.Close()
			return nil, fmt.Errorf("giis: authenticating to %s: %w", url, err)
		}
	}
	pe := &poolEntry{c: c, key: key, refs: 1}
	s.poolMu.Lock()
	if existing := s.pool[key]; existing != nil {
		// Another chain won the dial race; use its connection.
		existing.refs++
		s.poolMu.Unlock()
		c.Close()
		return existing, nil
	}
	if s.closed {
		s.poolMu.Unlock()
		c.Close()
		return nil, fmt.Errorf("giis: directory closed")
	}
	s.pool[key] = pe
	s.poolMu.Unlock()
	return pe, nil
}

// release returns a borrowed entry, closing the connection if it was
// evicted and this was the last borrower.
func (s *Server) release(pe *poolEntry) {
	s.poolMu.Lock()
	pe.refs--
	dead := pe.evicted && pe.refs == 0
	s.poolMu.Unlock()
	if dead {
		s.closePooled(pe.c)
	}
}

// evict removes a broken entry from the pool so no future chain borrows
// it. The caller still holds its reference; the connection closes once all
// current borrowers release.
func (s *Server) evict(pe *poolEntry) {
	s.poolMu.Lock()
	if !pe.evicted {
		pe.evicted = true
		s.PoolEvictions.Inc()
		if s.pool[pe.key] == pe {
			delete(s.pool, pe.key)
		}
	}
	s.poolMu.Unlock()
}

// chain translates a view-namespace region into the child's namespace,
// runs the search there, and translates result DNs back into the view.
// When req carries a trace, the hop is recorded as a chain span, the trace
// identity propagates to the child via the trace-request control, and the
// span tree the child reports back is grafted under the chain span — so the
// root directory's trace shows every hop of a multi-level search.
func (s *Server) chain(req *ldap.Request, child Child, base ldap.DN, scope ldap.Scope,
	filter *ldap.Filter, attrs []string, sizeLimit int64) ([]*ldap.Entry, error) {
	return s.chainWith(req, child, base, scope, filter, attrs, sizeLimit, nil)
}

// chainUncached is chain with the query cache deliberately bypassed —
// strategies that maintain their own result cache (CachedIndex) fill
// through here so an entry set is never cached twice at different TTLs.
func (s *Server) chainUncached(req *ldap.Request, child Child, base ldap.DN, scope ldap.Scope,
	filter *ldap.Filter, attrs []string, sizeLimit int64) ([]*ldap.Entry, error) {
	childBase, childScope, ok := translateRegion(base, scope, child)
	if !ok {
		return nil, nil
	}
	return s.chainTranslated(req, child, childBase, childScope, filter, attrs, sizeLimit, nil)
}

// chainWith is chain with extra request controls attached — the sharded
// strategy rides its shard-local marker here so a peer shard answers from
// its own children without fanning out again.
//
// With the query cache enabled, the hop result is cached per child (the
// owner component of the key), so identical queries hit without re-fanning
// out and one slow or hedged child never poisons another child's key.
// Persistent-search subscriptions bypass the cache entirely: a subscriber
// wants the live change stream, and a cached snapshot answered in its
// place would silently go stale for the subscription's whole lifetime.
func (s *Server) chainWith(req *ldap.Request, child Child, base ldap.DN, scope ldap.Scope,
	filter *ldap.Filter, attrs []string, sizeLimit int64, extra []ldap.Control) ([]*ldap.Entry, error) {

	childBase, childScope, ok := translateRegion(base, scope, child)
	if !ok {
		return nil, nil
	}
	if s.qc == nil || isPersistentSearch(req) {
		return s.chainTranslated(req, child, childBase, childScope, filter, attrs, sizeLimit, extra)
	}
	region := qcache.Region{
		Owner:  chainOwner(child, extra),
		Base:   childBase,
		Scope:  childScope,
		Filter: filter,
	}
	key := region.Key(attrs, sizeLimit)
	// The child's soft-state deadline caps freshness: a cached result never
	// outlives the registration that produced it (two-tier expiry).
	entries, how, err := s.qc.GetOrFill(key, region, child.ExpiresAt, func() ([]*ldap.Entry, error) {
		return s.chainTranslated(req, child, childBase, childScope, filter, attrs, sizeLimit, extra)
	})
	if how != qcache.OutcomeMiss && req != nil && req.TraceID != "" {
		// The miss path records a real chain span inside chainTranslated;
		// hits record a zero-fan-out marker span so traces show where the
		// cache cut the chain short.
		sp := req.Span.Child("chain:" + child.URL.String())
		sp.SetNote("cache " + how.String())
		sp.End()
	}
	return entries, err
}

// chainOwner renders the cache-key owner for a hop: the child's service
// key, plus any extra control OIDs (a shard-local probe and a full chain to
// the same peer are different questions and must not share results).
func chainOwner(child Child, extra []ldap.Control) string {
	owner := child.URL.ServiceKey()
	for _, c := range extra {
		owner += "|" + c.OID
	}
	return owner
}

// isPersistentSearch reports whether the client request carries the
// persistent-search control.
func isPersistentSearch(req *ldap.Request) bool {
	if req == nil {
		return false
	}
	_, ok := ldap.FindControl(req.Controls, ldap.OIDPersistentSearch)
	return ok
}

// chainTranslated runs one uncached hop against a region already translated
// into the child's namespace (the fill path under the query cache).
func (s *Server) chainTranslated(req *ldap.Request, child Child, childBase ldap.DN,
	childScope ldap.Scope, filter *ldap.Filter, attrs []string, sizeLimit int64,
	extra []ldap.Control) ([]*ldap.Entry, error) {

	sreq := &ldap.SearchRequest{
		BaseDN:     childBase.String(),
		Scope:      childScope,
		Filter:     filter,
		Attributes: attrs,
		SizeLimit:  sizeLimit,
	}
	var sp *obs.Span
	ctls := extra
	traced := req != nil && req.TraceID != ""
	if traced {
		sp = req.Span.Child("chain:" + child.URL.String())
		ctls = append(append([]ldap.Control(nil), extra...),
			ldap.NewTraceControl(req.TraceID, req.TraceDepth+1))
	}
	var start time.Time
	if s.hChainChild != nil || traced {
		start = s.clock.Now()
	}
	entries, doneCtls, err := s.chainOnce(sreq, child, ctls)
	if s.hChainChild != nil {
		s.hChainChild.Observe(s.clock.Now().Sub(start))
	}
	if traced {
		if t, ok := ldap.TraceSpans(doneCtls); ok {
			sp.Graft(t.Spans)
		}
		if err != nil {
			sp.SetNote("error: " + err.Error())
		}
		sp.End()
	}
	return entries, err
}

// chainOnce runs the translated search against the child, retrying once on
// connection-level failure, and grafts result DNs back into the view. It
// also returns the controls from the child's final done message (the traced
// child's span tree rides there).
func (s *Server) chainOnce(sreq *ldap.SearchRequest, child Child, ctls []ldap.Control) ([]*ldap.Entry, []ldap.Control, error) {
	var res *ldap.SearchResult
	var err error
	// Pooled connections may have been severed by a partition that has
	// since healed; a connection-level failure is retried once on a fresh
	// dial before the child is reported unreachable.
	for attempt := 0; attempt < 2; attempt++ {
		var pe *poolEntry
		pe, err = s.acquire(child.URL)
		if err != nil {
			return nil, nil, err
		}
		s.ChainedOps.Inc()
		res, err = pe.c.SearchWith(sreq, ctls)
		if err == nil || (ldap.IsCode(err, ldap.ResultSizeLimitExceeded) && res != nil) {
			// Success, or the child truncated at its size limit — partial
			// entries still count.
			err = nil
			s.release(pe)
			break
		}
		if ldap.IsCode(err, ldap.ResultNoSuchObject) {
			s.release(pe)
			return nil, nil, nil
		}
		s.evict(pe)
		s.release(pe)
	}
	if err != nil {
		return nil, nil, err
	}
	// Entries decoded off this search are exclusively ours — nothing else
	// holds a reference — so the DN graft happens in place instead of deep
	// cloning every entry (which dominated chain cost on large result sets).
	for _, e := range res.Entries {
		if rel, ok := e.DN.RelativeTo(child.Suffix); ok {
			e.DN = rel.Under(child.ViewSuffix)
		}
	}
	return res.Entries, res.DoneControls, nil
}

// translateRegion maps a search region in the GIIS view into the child's
// namespace, returning ok=false when the region cannot contain the child's
// entries.
func translateRegion(base ldap.DN, scope ldap.Scope, child Child) (ldap.DN, ldap.Scope, bool) {
	v := child.ViewSuffix
	// Region rooted at or below the child's view subtree: translate base.
	if base.Equal(v) || base.IsDescendantOf(v) {
		rel, _ := base.RelativeTo(v)
		return rel.Under(child.Suffix), scope, true
	}
	// Region above the child: the child's whole subtree may participate if
	// the scope reaches it.
	switch scope {
	case ldap.ScopeWholeSubtree:
		if v.IsDescendantOf(base) {
			return child.Suffix, ldap.ScopeWholeSubtree, true
		}
	case ldap.ScopeSingleLevel:
		if v.Depth() == base.Depth()+1 && v.IsDescendantOf(base) {
			return child.Suffix, ldap.ScopeBaseObject, true
		}
	}
	return nil, 0, false
}

// Bind accepts anonymous binds always (directories commonly run open for
// discovery, per §7's common-policy observation) and GSI SASL binds when
// the directory is configured with keys and a trust store.
func (s *Server) Bind(req *ldap.Request, op *ldap.BindRequest) *ldap.BindResponse {
	switch {
	case op.SASLMech == "":
		return &ldap.BindResponse{Result: ldap.Result{Code: ldap.ResultSuccess}}
	case op.SASLMech == gsi.SASLMechanism && s.sasl != nil:
		step, err := s.sasl.Step(req.State, op.SASLCreds)
		if err != nil {
			return &ldap.BindResponse{Result: ldap.Result{
				Code: ldap.ResultInvalidCredentials, Message: err.Error()}}
		}
		if step.Challenge != nil {
			return &ldap.BindResponse{
				Result:      ldap.Result{Code: ldap.ResultSaslBindInProgress},
				ServerCreds: step.Challenge,
			}
		}
		req.State.SetIdentity(step.Principal.Subject, step.Principal)
		return &ldap.BindResponse{Result: ldap.Result{Code: ldap.ResultSuccess}}
	default:
		return &ldap.BindResponse{Result: ldap.Result{Code: ldap.ResultAuthMethodNotSupported,
			Message: "GIIS accepts anonymous or SASL/GSI binds"}}
	}
}

// Add implements the MDS-2.1 GRRP transport: registrations arrive as LDAP
// add operations (§10.1) and are decoded into GRRP messages.
func (s *Server) Add(_ *ldap.Request, op *ldap.AddRequest) ldap.Result {
	m, err := grrp.FromEntry(op.Entry)
	if err != nil {
		return ldap.Result{Code: ldap.ResultUnwillingToPerform,
			Message: "GIIS accepts only GRRP registration entries: " + err.Error()}
	}
	if !s.Ingest(m) {
		return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "registration refused"}
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// rootDSE advertises the directory's namespace, strategy, and supported
// extensions (the §6 service-publication mechanism).
func (s *Server) rootDSE() *ldap.Entry {
	e := ldap.NewEntry(ldap.DN{}).
		Add("objectclass", "top").
		Add("vendorname", "mds2").
		Add("mdstype", "giis").
		Add("namingcontexts", s.cfg.Suffix.String()).
		Add("searchstrategy", s.strategy.Name()).
		Add("supportedsaslmechanisms", gsi.SASLMechanism)
	for oid := range s.cfg.Extensions {
		e.Add("supportedextension", oid)
	}
	return e
}

// Search answers GRIP queries: service metadata and the name index are
// served locally; data queries go through the configured strategy.
func (s *Server) Search(req *ldap.Request, op *ldap.SearchRequest, w ldap.SearchWriter) ldap.Result {
	s.Searches.Inc()
	base, err := ldap.ParseDN(op.BaseDN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultProtocolError, Message: err.Error()}
	}
	if base.IsZero() && op.Scope == ldap.ScopeBaseObject {
		dse := s.rootDSE()
		if op.Filter == nil || op.Filter.Matches(dse) {
			if err := w.SendEntry(dse.Select(op.Attributes)); err != nil {
				return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
			}
		}
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	children := s.Children()

	// Serve local entries (self + name index) that fall in the region. The
	// mayContainLocal guard skips materializing the index entirely for
	// regions that provably cannot touch it — at shard scale the index is
	// hundreds of thousands of entries, and the common routed data query
	// ("hn=hostX, o=grid" subtree) never intersects it.
	sent := int64(0)
	if mayContainLocal(s.cfg.Suffix, base, op.Scope) {
		cf := op.Filter.Compile()
		sendLocal := func(e *ldap.Entry) error {
			if !e.DN.WithinScope(base, op.Scope) {
				return nil
			}
			if !cf.Matches(e) {
				return nil
			}
			if op.SizeLimit > 0 && sent >= op.SizeLimit {
				return errSizeLimit
			}
			sent++
			return w.SendEntry(e.Select(op.Attributes))
		}
		if err := sendLocal(s.selfEntry(children)); err != nil {
			return sizeOrUnavailable(err)
		}
		for _, c := range children {
			if err := sendLocal(s.childIndexEntry(c)); err != nil {
				return sizeOrUnavailable(err)
			}
		}
	}

	// Hand data queries to the strategy.
	res := s.strategy.Search(&SearchContext{
		Server: s, Req: req, Op: op, W: w,
		Base: base, Children: children, sent: &sent,
	})
	return res
}

// mayContainLocal reports whether a search region could include the
// directory's own service entry or any child index entry. All local entries
// live at exactly suffix.Depth()+1, directly under the suffix, so most data
// regions rule them out without touching the (potentially huge) child set.
func mayContainLocal(suffix, base ldap.DN, scope ldap.Scope) bool {
	level := suffix.Depth() + 1
	switch {
	case base.Depth() > level:
		// Local entries are shallower than the base; no scope reaches up.
		return false
	case base.Depth() == level:
		// Only the entry equal to base itself can match, and only for
		// scopes that include the base object.
		if scope == ldap.ScopeSingleLevel {
			return false
		}
		if !base.IsDescendantOf(suffix) {
			return false
		}
		leaf := base.Leaf()
		if len(leaf) != 1 {
			return false
		}
		switch strings.ToLower(leaf[0].Attr) {
		case "mds-service", "mds-child":
			return true
		}
		return false
	default:
		// Base is above the local level; the scope must reach down to it.
		switch scope {
		case ldap.ScopeBaseObject:
			return false
		case ldap.ScopeSingleLevel:
			return base.Equal(suffix)
		default:
			return base.Equal(suffix) || suffix.IsDescendantOf(base)
		}
	}
}

var errSizeLimit = fmt.Errorf("size limit")

func sizeOrUnavailable(err error) ldap.Result {
	if err == errSizeLimit {
		return ldap.Result{Code: ldap.ResultSizeLimitExceeded}
	}
	return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
}

// selfEntry is the directory's own service object.
func (s *Server) selfEntry(children []Child) *ldap.Entry {
	return ldap.NewEntry(s.cfg.Suffix.ChildAVA("mds-service", s.cfg.Name)).
		Add("objectclass", "mdsservice", "service").
		Add("url", s.cfg.SelfURL.String()).
		Add("mdstype", "giis").
		Add("provider", fmt.Sprintf("%d", len(children)))
}

// childIndexEntry is the name-index view of one registration (the §3
// "name-serving aggregate directory" behaviour, available from every GIIS).
func (s *Server) childIndexEntry(c Child) *ldap.Entry {
	e := ldap.NewEntry(s.cfg.Suffix.ChildAVA("mds-child", c.URL.String())).
		Add("objectclass", "mdsservice", "service").
		Add("url", c.URL.String()).
		Add("mdstype", c.MDSType).
		Add("vo", c.VO).
		Add("suffix", c.ViewSuffix.String()).
		Add("providersuffix", c.Suffix.String())
	if c.Recovered {
		// Restored from the durability log after a restart and not yet
		// reconfirmed; clients can weigh such children accordingly.
		e.Add("recovered", "TRUE")
	}
	return e
}

// Extended dispatches GRIP extension operations registered in the
// configuration.
func (s *Server) Extended(req *ldap.Request, op *ldap.ExtendedRequest) *ldap.ExtendedResponse {
	handler, ok := s.cfg.Extensions[op.OID]
	if !ok {
		return &ldap.ExtendedResponse{Result: ldap.Result{Code: ldap.ResultProtocolError,
			Message: "unsupported extended operation " + op.OID}}
	}
	out, err := handler(req, op.Value)
	if err != nil {
		return &ldap.ExtendedResponse{OID: op.OID, Result: ldap.Result{
			Code: ldap.ResultUnwillingToPerform, Message: err.Error()}}
	}
	return &ldap.ExtendedResponse{OID: op.OID, Value: out,
		Result: ldap.Result{Code: ldap.ResultSuccess}}
}

// SelfRegistration builds the GRRP registration this GIIS sustains toward a
// parent directory, forming the Figure 5 hierarchy.
func (s *Server) SelfRegistration(parentTarget string, vo string, interval, ttl time.Duration) grrp.Registration {
	return grrp.Registration{
		Target: parentTarget,
		Message: grrp.Message{
			Type:       grrp.TypeRegister,
			ServiceURL: s.cfg.SelfURL.String(),
			MDSType:    "giis",
			VO:         vo,
			SuffixDN:   s.cfg.Suffix.String(),
		},
		Interval: interval,
		TTL:      ttl,
	}
}

// Invite sends a GRRP invitation asking the service at targetAddr to join
// this directory (§10.4 invitation support). transport carries the
// datagram; the invited service registers back over its own stream. When
// the directory has keys, the invitation is signed so providers can apply
// the §7 registration-security checks to invitations too.
func (s *Server) Invite(transport grrp.Transport, targetAddr, vo string, ttl time.Duration) error {
	now := s.clock.Now()
	m := grrp.Message{
		Type:       grrp.TypeInvite,
		ServiceURL: s.cfg.SelfURL.String(),
		MDSType:    "giis",
		VO:         vo,
		SuffixDN:   s.cfg.Suffix.String(),
		IssuedAt:   now,
		ValidUntil: now.Add(ttl),
	}
	if s.cfg.Keys != nil {
		m.Sign(s.cfg.Keys)
	}
	return transport.Send(targetAddr, m.Marshal())
}

func lowerTerms(f *ldap.Filter) []string {
	var out []string
	var walk func(*ldap.Filter)
	walk = func(g *ldap.Filter) {
		switch g.Kind {
		case ldap.FilterAnd:
			for _, sub := range g.Subs {
				walk(sub)
			}
		case ldap.FilterEquality:
			out = append(out, strings.ToLower(g.Attr)+"="+strings.ToLower(g.Value))
		}
	}
	if f != nil {
		walk(f)
	}
	return out
}
