// Package providers supplies the concrete GRIS backends listed in §10.3:
// static host information (OS version, CPU type, number of processors),
// dynamic host information (load averages, queue entries), storage system
// information (free/total disk), and network information via the Network
// Weather Service. It also implements both provider API variants the paper
// describes: in-process "loadable module" backends and out-of-process
// "script" backends that emit LDIF.
package providers

import (
	"fmt"
	"os/exec"
	"strings"
	"time"

	"mds2/internal/gris"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
	"mds2/internal/nws"
)

// StaticHost publishes a host's static configuration as the computer object
// at the GRIS suffix. Static data gets a long cache TTL.
type StaticHost struct {
	Host *hostinfo.Host
	Base ldap.DN // the host entry DN (usually the GRIS suffix)
	TTL  time.Duration
}

// Name implements gris.Backend.
func (p *StaticHost) Name() string { return "static-host" }

// Suffix implements gris.Backend.
func (p *StaticHost) Suffix() ldap.DN { return p.Base }

// Attributes implements gris.Backend.
func (p *StaticHost) Attributes() []string {
	return []string{"hn", "system", "osversion", "cputype", "cpucount", "memorymb"}
}

// CacheTTL implements gris.Backend. A negative TTL disables caching
// entirely (every query invokes the provider).
func (p *StaticHost) CacheTTL() time.Duration {
	if p.TTL < 0 {
		return 0
	}
	if p.TTL > 0 {
		return p.TTL
	}
	return time.Hour
}

// Entries implements gris.Backend.
func (p *StaticHost) Entries(*gris.Query) ([]*ldap.Entry, error) {
	s := p.Host.Snapshot()
	e := ldap.NewEntry(p.Base).
		Add("objectclass", "computer").
		Add("hn", p.Host.Name).
		Add("system", s.Spec.OS).
		Add("osversion", s.Spec.OSVer).
		Add("cputype", s.Spec.CPUType).
		Add("cpucount", fmt.Sprintf("%d", s.Spec.CPUCount)).
		Add("memorymb", fmt.Sprintf("%d", s.Spec.MemoryMB))
	return []*ldap.Entry{e}, nil
}

// DynamicHost publishes load averages and free-CPU estimates as perf
// objects under the host entry; highly dynamic, short TTL.
type DynamicHost struct {
	Host *hostinfo.Host
	Base ldap.DN
	TTL  time.Duration
}

// Name implements gris.Backend.
func (p *DynamicHost) Name() string { return "dynamic-host" }

// Suffix implements gris.Backend.
func (p *DynamicHost) Suffix() ldap.DN { return p.Base }

// Attributes implements gris.Backend.
func (p *DynamicHost) Attributes() []string {
	return []string{"perf", "period", "load1", "load5", "load15", "freecpus"}
}

// CacheTTL implements gris.Backend. A negative TTL disables caching
// entirely (every query invokes the provider).
func (p *DynamicHost) CacheTTL() time.Duration {
	if p.TTL < 0 {
		return 0
	}
	if p.TTL > 0 {
		return p.TTL
	}
	return 10 * time.Second
}

// Entries implements gris.Backend.
func (p *DynamicHost) Entries(*gris.Query) ([]*ldap.Entry, error) {
	s := p.Host.Snapshot()
	load := ldap.NewEntry(p.Base.ChildAVA("perf", "load")).
		Add("objectclass", "perf", "loadaverage").
		Add("perf", "load").
		Add("period", "10").
		Add("load1", fmt.Sprintf("%.2f", s.Load1)).
		Add("load5", fmt.Sprintf("%.2f", s.Load5)).
		Add("load15", fmt.Sprintf("%.2f", s.Load15)).
		Add("freecpus", fmt.Sprintf("%d", s.FreeCPUs()))
	return []*ldap.Entry{load}, nil
}

// Storage publishes filesystem objects (free/total disk space).
type Storage struct {
	Host *hostinfo.Host
	Base ldap.DN
	TTL  time.Duration
}

// Name implements gris.Backend.
func (p *Storage) Name() string { return "storage" }

// Suffix implements gris.Backend.
func (p *Storage) Suffix() ldap.DN { return p.Base }

// Attributes implements gris.Backend.
func (p *Storage) Attributes() []string {
	return []string{"store", "path", "free", "total", "mounted"}
}

// CacheTTL implements gris.Backend. A negative TTL disables caching
// entirely (every query invokes the provider).
func (p *Storage) CacheTTL() time.Duration {
	if p.TTL < 0 {
		return 0
	}
	if p.TTL > 0 {
		return p.TTL
	}
	return time.Minute
}

// Entries implements gris.Backend.
func (p *Storage) Entries(*gris.Query) ([]*ldap.Entry, error) {
	s := p.Host.Snapshot()
	var out []*ldap.Entry
	for _, fs := range s.FS {
		out = append(out, ldap.NewEntry(p.Base.ChildAVA("store", fs.Name)).
			Add("objectclass", "storage", "filesystem").
			Add("store", fs.Name).
			Add("path", fs.Path).
			Add("free", fmt.Sprintf("%d", fs.FreeMB)).
			Add("total", fmt.Sprintf("%d", fs.TotalMB)))
	}
	return out, nil
}

// Queues publishes batch-queue service objects.
type Queues struct {
	Host *hostinfo.Host
	Base ldap.DN
	TTL  time.Duration
}

// Name implements gris.Backend.
func (p *Queues) Name() string { return "queues" }

// Suffix implements gris.Backend.
func (p *Queues) Suffix() ldap.DN { return p.Base }

// Attributes implements gris.Backend.
func (p *Queues) Attributes() []string {
	return []string{"queue", "url", "dispatchtype", "maxjobs", "runningjobs", "queuedjobs"}
}

// CacheTTL implements gris.Backend. A negative TTL disables caching
// entirely (every query invokes the provider).
func (p *Queues) CacheTTL() time.Duration {
	if p.TTL < 0 {
		return 0
	}
	if p.TTL > 0 {
		return p.TTL
	}
	return 30 * time.Second
}

// Entries implements gris.Backend.
func (p *Queues) Entries(*gris.Query) ([]*ldap.Entry, error) {
	s := p.Host.Snapshot()
	var out []*ldap.Entry
	for _, q := range s.Queues {
		out = append(out, ldap.NewEntry(p.Base.ChildAVA("queue", q.Name)).
			Add("objectclass", "service", "queue").
			Add("queue", q.Name).
			Add("url", fmt.Sprintf("gram://%s/%s", p.Host.Name, q.Name)).
			Add("dispatchtype", q.Dispatch).
			Add("maxjobs", fmt.Sprintf("%d", q.MaxJobs)).
			Add("runningjobs", fmt.Sprintf("%d", q.Running)).
			Add("queuedjobs", fmt.Sprintf("%d", q.Queued)))
	}
	return out, nil
}

// Network exposes the NWS link namespace (§4.1's worked example): entries
// describing bandwidth between specified endpoints, generated lazily. The
// namespace is parametric and non-enumerable, so queries must pin src and
// dst via equality terms in the filter; wider queries get ErrScopeTooWide.
// Results are never cached (CacheTTL 0): each query may trigger an
// experiment, exactly as the paper describes the NWS hand-off.
type Network struct {
	Service *nws.Service
	Base    ldap.DN // subtree root for link entries, e.g. "net=links, hn=h"
}

// Name implements gris.Backend.
func (p *Network) Name() string { return "nws-network" }

// Suffix implements gris.Backend.
func (p *Network) Suffix() ldap.DN { return p.Base }

// Attributes implements gris.Backend.
func (p *Network) Attributes() []string {
	return []string{"src", "dst", "bandwidthmbps", "latencyms",
		"predictedbandwidthmbps", "forecaster", "measuredat"}
}

// CacheTTL implements gris.Backend.
func (p *Network) CacheTTL() time.Duration { return 0 }

// Entries implements gris.Backend.
func (p *Network) Entries(q *gris.Query) ([]*ldap.Entry, error) {
	src, dst := extractEndpoints(q)
	if src == "" || dst == "" {
		return nil, gris.ErrScopeTooWide
	}
	m := p.Service.Measure(src, dst, q.Now)
	e := ldap.NewEntry(p.Base.Child(ldap.RDN{{Attr: "src", Value: src}, {Attr: "dst", Value: dst}})).
		Add("objectclass", "networklink").
		Add("src", src).
		Add("dst", dst).
		Add("bandwidthmbps", fmt.Sprintf("%.2f", m.BandwidthMbps)).
		Add("latencyms", fmt.Sprintf("%.2f", m.LatencyMs)).
		Add("measuredat", m.At.UTC().Format(time.RFC3339))
	if pred, name, ok := p.Service.Forecast(src, dst); ok {
		e.Add("predictedbandwidthmbps", fmt.Sprintf("%.2f", pred)).
			Add("forecaster", name)
	}
	return []*ldap.Entry{e}, nil
}

// extractEndpoints pulls src/dst from conjunctive equality terms of the
// filter, or from a base DN naming a specific link.
func extractEndpoints(q *gris.Query) (src, dst string) {
	if leaf := q.Base.Leaf(); leaf != nil {
		for _, ava := range leaf {
			switch strings.ToLower(ava.Attr) {
			case "src":
				src = ava.Value
			case "dst":
				dst = ava.Value
			}
		}
	}
	var walk func(*ldap.Filter)
	walk = func(f *ldap.Filter) {
		if f == nil {
			return
		}
		switch f.Kind {
		case ldap.FilterAnd:
			for _, sub := range f.Subs {
				walk(sub)
			}
		case ldap.FilterEquality:
			switch strings.ToLower(f.Attr) {
			case "src":
				src = f.Value
			case "dst":
				dst = f.Value
			}
		}
	}
	walk(q.Filter)
	return src, dst
}

// Script is the out-of-process provider variant (§10.3: "implemented via a
// set of scripts ... called by the back end"): each invocation runs a
// command whose stdout is parsed as LDIF. Entries with relative DNs are
// grafted under Base.
type Script struct {
	Label   string
	Base    ldap.DN
	Command []string // argv; run per invocation
	TTL     time.Duration
	Timeout time.Duration
}

// Name implements gris.Backend.
func (p *Script) Name() string { return "script:" + p.Label }

// Suffix implements gris.Backend.
func (p *Script) Suffix() ldap.DN { return p.Base }

// Attributes implements gris.Backend (unknown: scripts are opaque).
func (p *Script) Attributes() []string { return nil }

// CacheTTL implements gris.Backend.
func (p *Script) CacheTTL() time.Duration { return p.TTL }

// Entries implements gris.Backend.
func (p *Script) Entries(*gris.Query) ([]*ldap.Entry, error) {
	if len(p.Command) == 0 {
		return nil, fmt.Errorf("providers: script %q has no command", p.Label)
	}
	cmd := exec.Command(p.Command[0], p.Command[1:]...)
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("providers: script %q: %w", p.Label, err)
	}
	entries, err := ldif.ParseString(string(out))
	if err != nil {
		return nil, fmt.Errorf("providers: script %q output: %w", p.Label, err)
	}
	for _, e := range entries {
		if !e.DN.Equal(p.Base) && !e.DN.IsDescendantOf(p.Base) {
			e.DN = e.DN.Under(p.Base)
		}
	}
	return entries, nil
}

// Func adapts a closure to gris.Backend — the "loadable module" variant
// (§10.3), executing within the server without process-creation overhead.
type Func struct {
	Label     string
	Subtree   ldap.DN
	AttrNames []string
	TTL       time.Duration
	Generate  func(q *gris.Query) ([]*ldap.Entry, error)
}

// Name implements gris.Backend.
func (p *Func) Name() string { return p.Label }

// Suffix implements gris.Backend.
func (p *Func) Suffix() ldap.DN { return p.Subtree }

// Attributes implements gris.Backend.
func (p *Func) Attributes() []string { return p.AttrNames }

// CacheTTL implements gris.Backend.
func (p *Func) CacheTTL() time.Duration { return p.TTL }

// Entries implements gris.Backend.
func (p *Func) Entries(q *gris.Query) ([]*ldap.Entry, error) { return p.Generate(q) }

// HostBackends bundles the four standard backends for one host.
func HostBackends(h *hostinfo.Host, base ldap.DN) []gris.Backend {
	return []gris.Backend{
		&StaticHost{Host: h, Base: base},
		&DynamicHost{Host: h, Base: base},
		&Storage{Host: h, Base: base},
		&Queues{Host: h, Base: base},
	}
}
