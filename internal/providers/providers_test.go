package providers

import (
	"runtime"
	"testing"
	"time"

	"mds2/internal/gris"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/nws"
)

func testHost() *hostinfo.Host {
	return hostinfo.New("hostX", hostinfo.Spec{
		OS: "mips irix", OSVer: "6.5", CPUType: "mips", CPUCount: 64, MemoryMB: 16384,
	}, 42)
}

func base() ldap.DN { return ldap.MustParseDN("hn=hostX, o=center1") }

func TestStaticHostEntries(t *testing.T) {
	p := &StaticHost{Host: testHost(), Base: base()}
	entries, err := p.Entries(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if !e.IsA("computer") || e.First("system") != "mips irix" || e.First("cpucount") != "64" {
		t.Fatalf("entry = %s", e)
	}
	if !e.DN.Equal(base()) {
		t.Errorf("dn = %q", e.DN)
	}
	if p.CacheTTL() < time.Minute {
		t.Error("static data should have long TTL")
	}
	schema := ldap.NewGridSchema()
	if err := schema.Validate(e); err != nil {
		t.Errorf("schema: %v", err)
	}
}

func TestDynamicHostEntries(t *testing.T) {
	h := testHost()
	h.Step(30 * time.Minute)
	p := &DynamicHost{Host: h, Base: base()}
	entries, err := p.Entries(nil)
	if err != nil {
		t.Fatal(err)
	}
	e := entries[0]
	if !e.IsA("loadaverage") {
		t.Fatalf("entry = %s", e)
	}
	if _, ok := e.Float("load5"); !ok {
		t.Error("load5 not numeric")
	}
	if _, ok := e.Int("freecpus"); !ok {
		t.Error("freecpus not numeric")
	}
	if !e.DN.IsDescendantOf(base()) {
		t.Errorf("dn = %q", e.DN)
	}
	if p.CacheTTL() > time.Minute {
		t.Error("dynamic data should have short TTL")
	}
	if err := ldap.NewGridSchema().Validate(e); err != nil {
		t.Errorf("schema: %v", err)
	}
}

func TestStorageAndQueueEntries(t *testing.T) {
	h := testHost()
	schema := ldap.NewGridSchema()
	st := &Storage{Host: h, Base: base()}
	entries, err := st.Entries(nil)
	if err != nil || len(entries) != 2 {
		t.Fatalf("storage: %v %v", entries, err)
	}
	for _, e := range entries {
		if !e.IsA("filesystem") || !e.Has("free") || !e.Has("path") {
			t.Errorf("fs entry = %s", e)
		}
		if err := schema.Validate(e); err != nil {
			t.Errorf("schema: %v", err)
		}
	}
	q := &Queues{Host: h, Base: base()}
	qents, err := q.Entries(nil)
	if err != nil || len(qents) != 2 {
		t.Fatalf("queues: %v %v", qents, err)
	}
	for _, e := range qents {
		if !e.IsA("queue") || !e.Has("url") {
			t.Errorf("queue entry = %s", e)
		}
		if err := schema.Validate(e); err != nil {
			t.Errorf("schema: %v", err)
		}
	}
}

func TestNetworkBackendParametricNamespace(t *testing.T) {
	svc := nws.NewService()
	p := &Network{Service: svc, Base: base().ChildAVA("net", "links")}
	now := time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)

	// Wide query: scope too wide.
	_, err := p.Entries(&gris.Query{Base: p.Base, Scope: ldap.ScopeWholeSubtree, Now: now})
	if err != gris.ErrScopeTooWide {
		t.Fatalf("wide query err = %v", err)
	}
	// Filter pins endpoints: entry generated, experiment run.
	q := &gris.Query{Base: p.Base, Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(&(src=ufl.edu)(dst=anl.gov))"), Now: now}
	entries, err := p.Entries(q)
	if err != nil || len(entries) != 1 {
		t.Fatalf("pinned query: %v %v", entries, err)
	}
	e := entries[0]
	if !e.IsA("networklink") || e.First("src") != "ufl.edu" {
		t.Fatalf("entry = %s", e)
	}
	if svc.Measured() != 1 {
		t.Errorf("measured = %d, want on-demand experiment", svc.Measured())
	}
	if err := ldap.NewGridSchema().Validate(e); err != nil {
		t.Errorf("schema: %v", err)
	}
	// After some measurements a forecast appears.
	for i := 0; i < 30; i++ {
		entries, _ = p.Entries(q)
	}
	if !entries[0].Has("predictedbandwidthmbps") || !entries[0].Has("forecaster") {
		t.Errorf("no forecast after history: %s", entries[0])
	}
}

func TestNetworkEndpointFromBaseDN(t *testing.T) {
	svc := nws.NewService()
	linkBase := base().ChildAVA("net", "links")
	p := &Network{Service: svc, Base: linkBase}
	linkDN := linkBase.Child(ldap.RDN{{Attr: "src", Value: "a"}, {Attr: "dst", Value: "b"}})
	entries, err := p.Entries(&gris.Query{Base: linkDN, Scope: ldap.ScopeBaseObject,
		Now: time.Now()})
	if err != nil || len(entries) != 1 {
		t.Fatalf("base-DN query: %v %v", entries, err)
	}
	if entries[0].First("dst") != "b" {
		t.Errorf("entry = %s", entries[0])
	}
}

func TestScriptBackend(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("shell script provider requires a POSIX shell")
	}
	p := &Script{
		Label: "host-ldif",
		Base:  base(),
		Command: []string{"/bin/sh", "-c",
			`printf 'dn: app=sim\nobjectclass: application\napp: sim\nstatus: running\n'`},
	}
	entries, err := p.Entries(&gris.Query{Base: base(), Scope: ldap.ScopeWholeSubtree})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	// Relative DN grafted under the base.
	if e.DN.String() != "app=sim, hn=hostX, o=center1" {
		t.Errorf("dn = %q", e.DN)
	}
	if e.First("status") != "running" {
		t.Errorf("entry = %s", e)
	}
}

func TestScriptBackendErrors(t *testing.T) {
	empty := &Script{Label: "none", Base: base()}
	if _, err := empty.Entries(nil); err == nil {
		t.Error("missing command should fail")
	}
	bad := &Script{Label: "bad", Base: base(), Command: []string{"/bin/sh", "-c", "exit 3"}}
	if _, err := bad.Entries(nil); err == nil {
		t.Error("failing script should fail")
	}
	garbage := &Script{Label: "garbage", Base: base(),
		Command: []string{"/bin/sh", "-c", "echo 'not ldif at all'"}}
	if _, err := garbage.Entries(nil); err == nil {
		t.Error("non-LDIF output should fail")
	}
}

func TestFuncBackend(t *testing.T) {
	called := 0
	p := &Func{
		Label: "module", Subtree: base(), AttrNames: []string{"x"}, TTL: time.Minute,
		Generate: func(*gris.Query) ([]*ldap.Entry, error) {
			called++
			return []*ldap.Entry{ldap.NewEntry(base()).Add("objectclass", "top").Add("x", "1")}, nil
		},
	}
	if p.Name() != "module" || p.CacheTTL() != time.Minute || p.Attributes()[0] != "x" {
		t.Error("accessors wrong")
	}
	entries, err := p.Entries(nil)
	if err != nil || len(entries) != 1 || called != 1 {
		t.Fatalf("entries=%v err=%v called=%d", entries, err, called)
	}
}

func TestHostBackendsBundle(t *testing.T) {
	bs := HostBackends(testHost(), base())
	if len(bs) != 4 {
		t.Fatalf("backends = %d", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name()] = true
		if !b.Suffix().Equal(base()) {
			t.Errorf("%s suffix = %q", b.Name(), b.Suffix())
		}
	}
	for _, want := range []string{"static-host", "dynamic-host", "storage", "queues"} {
		if !names[want] {
			t.Errorf("missing backend %s", want)
		}
	}
}

// TestFullGRISIntegration mounts all providers on a GRIS and exercises the
// §10.3 flow end to end (in-process handler level).
func TestFullGRISIntegration(t *testing.T) {
	h := testHost()
	s := gris.New(gris.Config{Suffix: base()})
	for _, b := range HostBackends(h, base()) {
		s.Register(b)
	}
	s.Register(&Network{Service: nws.NewService(), Base: base().ChildAVA("net", "links")})

	search := func(filter string) []*ldap.Entry {
		t.Helper()
		w := &captureSink{}
		res := s.Search(reqNoAuth(), &ldap.SearchRequest{
			BaseDN: base().String(), Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter(filter)}, w)
		if res.Code != ldap.ResultSuccess {
			t.Fatalf("search %s: %+v", filter, res)
		}
		return w.entries
	}
	if got := search("(objectclass=computer)"); len(got) != 1 {
		t.Fatalf("computers = %d", len(got))
	}
	if got := search("(objectclass=filesystem)"); len(got) != 2 {
		t.Fatalf("filesystems = %d", len(got))
	}
	if got := search("(&(objectclass=networklink)(src=a)(dst=b))"); len(got) != 1 {
		t.Fatalf("links = %d", len(got))
	}
	// The whole namespace in one query.
	if got := search("(objectclass=*)"); len(got) < 5 {
		t.Fatalf("all = %d", len(got))
	}
}

type captureSink struct{ entries []*ldap.Entry }

func (c *captureSink) SendEntry(e *ldap.Entry, _ ...ldap.Control) error {
	c.entries = append(c.entries, e)
	return nil
}
func (c *captureSink) SendReferral(...string) error { return nil }

func reqNoAuth() *ldap.Request {
	return &ldap.Request{State: &ldap.ConnState{}}
}

// BenchmarkProviderInvocation compares the module-style (in-process) and
// script-style (fork/exec) provider variants — experiment E10.
func BenchmarkProviderInvocation(b *testing.B) {
	h := testHost()
	module := &DynamicHost{Host: h, Base: base()}
	b.Run("module", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := module.Entries(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	if runtime.GOOS != "windows" {
		script := &Script{Label: "bench", Base: base(),
			Command: []string{"/bin/sh", "-c",
				`printf 'dn: perf=load\nobjectclass: perf\nperf: load\n'`}}
		b.Run("script", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := script.Entries(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
