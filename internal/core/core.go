// Package core assembles complete MDS-2 deployments: hosts running GRIS
// servers, aggregate directories running GIIS servers, GRRP registration
// streams between them, and GRIP clients — over either a simulated
// wide-area network (deterministic clock, controllable partitions and
// loss) or real loopback TCP.
//
// It is the library's top-level public API: examples and the experiment
// harness build Figure 2 and Figure 5 topologies with a few calls.
package core

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mds2/internal/giis"
	"mds2/internal/grip"
	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/history"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/nws"
	"mds2/internal/providers"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

// Grid is a running deployment fabric.
type Grid struct {
	// Clock drives all soft state. Simulated grids expose a *FakeClock
	// via SimClock.
	Clock softstate.Clock
	// Net is non-nil for simulated grids.
	Net *simnet.Network
	// CA and Trust provide the grid's security domain.
	CA    *gsi.Authority
	Trust *gsi.TrustStore

	mu      sync.Mutex
	servers []*ldap.Server
	closers []func()
}

// NewSimGrid creates a deterministic simulated grid: fake clock, simulated
// network (seeded), one certificate authority.
func NewSimGrid(seed int64) (*Grid, error) {
	ca, err := gsi.NewAuthority("o=Grid CA")
	if err != nil {
		return nil, err
	}
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	return &Grid{
		Clock: softstate.NewFakeClock(),
		Net:   simnet.New(seed),
		CA:    ca,
		Trust: trust,
	}, nil
}

// NewLocalGrid creates a grid over real loopback TCP with the wall clock.
func NewLocalGrid() (*Grid, error) {
	ca, err := gsi.NewAuthority("o=Grid CA")
	if err != nil {
		return nil, err
	}
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	return &Grid{Clock: softstate.RealClock{}, CA: ca, Trust: trust}, nil
}

// SimClock returns the fake clock of a simulated grid (nil otherwise).
func (g *Grid) SimClock() *softstate.FakeClock {
	c, _ := g.Clock.(*softstate.FakeClock)
	return c
}

// Close shuts down every server and registration stream.
func (g *Grid) Close() {
	g.mu.Lock()
	closers := append([]func(){}, g.closers...)
	servers := append([]*ldap.Server{}, g.servers...)
	g.closers, g.servers = nil, nil
	g.mu.Unlock()
	for _, f := range closers {
		f()
	}
	for _, s := range servers {
		s.Close()
	}
}

func (g *Grid) track(s *ldap.Server, closer func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s != nil {
		g.servers = append(g.servers, s)
	}
	if closer != nil {
		g.closers = append(g.closers, closer)
	}
}

// listen opens the LDAP listener for a node.
func (g *Grid) listen(node string) (net.Listener, ldap.URL, error) {
	if g.Net != nil {
		l, err := g.Net.Listen(node, "389")
		if err != nil {
			return nil, ldap.URL{}, err
		}
		return l, ldap.MustParseURL("sim://" + node + ":389"), nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, ldap.URL{}, err
	}
	u, err := ldap.ParseURL("ldap://" + l.Addr().String())
	if err != nil {
		l.Close()
		return nil, ldap.URL{}, err
	}
	return l, u, nil
}

// dialer returns a GIIS dialer originating at the named node.
func (g *Grid) dialer(fromNode string) giis.Dialer {
	if g.Net == nil {
		return giis.TCPDialer
	}
	return func(url ldap.URL) (*ldap.Client, error) {
		conn, err := g.Net.Dial(fromNode, url.Address())
		if err != nil {
			return nil, err
		}
		return ldap.NewClient(conn), nil
	}
}

// Connect opens a GRIP client from a node to a service URL. For TCP grids
// fromNode is ignored.
func (g *Grid) Connect(fromNode string, url ldap.URL) (*grip.Client, error) {
	if g.Net == nil {
		return grip.Dial(url.Address())
	}
	conn, err := g.Net.Dial(fromNode, url.Address())
	if err != nil {
		return nil, err
	}
	return grip.NewClient(conn), nil
}

// grrpTransport carries registration datagrams from a node. Simulated
// grids use the lossy datagram fabric; TCP grids use the MDS-2.1 binding
// (registrations as LDAP add operations).
func (g *Grid) grrpTransport(fromNode string) grrp.Transport {
	if g.Net != nil {
		return grrp.TransportFunc(func(to string, payload []byte) error {
			g.Net.SendDatagram(fromNode, to, payload)
			return nil
		})
	}
	return grrp.TransportFunc(func(to string, payload []byte) error {
		m, err := grrp.Unmarshal(payload)
		if err != nil {
			return err
		}
		c, err := ldap.Dial(to)
		if err != nil {
			return err
		}
		defer c.Close()
		return c.Add(m.ToEntry())
	})
}

// HostNode is one grid resource: a simulated host, its GRIS, and its
// registration machinery.
type HostNode struct {
	Name string
	Host *hostinfo.Host
	GRIS *gris.Server
	// URL is the GRIP endpoint of the node's GRIS.
	URL ldap.URL
	// Suffix is the host's namespace root.
	Suffix ldap.DN
	// Keys is the node's GSI identity.
	Keys *gsi.KeyPair
	// Archive holds recorded history when HistoryInterval was set.
	Archive *history.Archive

	grid      *Grid
	registrar *grrp.Registrar
	invites   struct {
		sync.Mutex
		accept        bool
		vo            string
		interval      time.Duration
		ttl           time.Duration
		requireSigned bool
	}
}

// HostOptions configures AddHost.
type HostOptions struct {
	// Org places the host under "hn=<name>, o=<org>"; default "grid".
	Org string
	// Spec defaults to a 4-CPU Linux box.
	Spec hostinfo.Spec
	// Seed drives the host's load process; default derived from name.
	Seed int64
	// Policy applies GSI information policy to the GRIS (nil: open).
	Policy *gsi.Policy
	// TrustedDirectories per §7.
	TrustedDirectories []string
	// WithNWS attaches a network-link provider backed by this service.
	WithNWS *nws.Service
	// CacheTTLs override provider cache TTLs (zero values keep defaults).
	DynamicTTL time.Duration
	// HistoryInterval, when positive, records the host's dynamic state
	// into an archive at this cadence and mounts the §6 archival GRIP
	// extension (history.OIDHistory).
	HistoryInterval time.Duration
	// ExtraBackends are registered on the GRIS alongside the standard set.
	ExtraBackends []gris.Backend
}

// AddHost creates a host node, starts its GRIS server, and wires its
// invitation handler.
func (g *Grid) AddHost(name string, opts HostOptions) (*HostNode, error) {
	if opts.Org == "" {
		opts.Org = "grid"
	}
	if opts.Spec.CPUCount == 0 {
		opts.Spec = hostinfo.Spec{OS: "linux redhat", OSVer: "6.2",
			CPUType: "ia32", CPUCount: 4, MemoryMB: 1024}
	}
	if opts.Seed == 0 {
		for _, c := range name {
			opts.Seed = opts.Seed*131 + int64(c)
		}
	}
	suffix, err := ldap.ParseDN(fmt.Sprintf("hn=%s, o=%s", name, opts.Org))
	if err != nil {
		return nil, err
	}
	host := hostinfo.New(name, opts.Spec, opts.Seed)
	keys, err := g.CA.Issue("cn=gris."+name, 100*365*24*time.Hour, g.Clock.Now())
	if err != nil {
		return nil, err
	}
	cfg := gris.Config{
		Suffix:             suffix,
		Clock:              g.Clock,
		Policy:             opts.Policy,
		Keys:               keys,
		Trust:              g.Trust,
		TrustedDirectories: opts.TrustedDirectories,
	}
	var archive *history.Archive
	var recorder *history.Recorder
	backends := providers.HostBackends(host, suffix)
	if opts.HistoryInterval > 0 {
		archive = history.NewArchive()
		for _, b := range backends {
			if d, ok := b.(*providers.DynamicHost); ok {
				recorder = history.NewRecorder(archive, d, opts.HistoryInterval, g.Clock)
			}
		}
		cfg.Extensions = map[string]gris.Extension{history.OIDHistory: history.Extension(archive)}
	}
	gs := gris.New(cfg)
	for _, b := range backends {
		if d, ok := b.(*providers.DynamicHost); ok && opts.DynamicTTL != 0 {
			d.TTL = opts.DynamicTTL // negative disables caching
		}
		gs.Register(b)
	}
	if opts.WithNWS != nil {
		gs.Register(&providers.Network{Service: opts.WithNWS, Base: suffix.ChildAVA("net", "links")})
	}
	for _, b := range opts.ExtraBackends {
		gs.Register(b)
	}

	l, url, err := g.listen(name)
	if err != nil {
		return nil, err
	}
	srv := ldap.NewServer(gs)
	go srv.Serve(l)

	n := &HostNode{
		Name: name, Host: host, GRIS: gs, URL: url, Suffix: suffix, Keys: keys,
		Archive: archive,
		grid:    g, registrar: grrp.NewRegistrar(g.grrpTransport(name), g.Clock),
	}
	if g.Net != nil {
		g.Net.HandleDatagrams(name, n.handleDatagram)
	}
	closer := n.registrar.StopAll
	if recorder != nil {
		recorder.Start()
		stopReg := closer
		closer = func() {
			recorder.Stop()
			stopReg()
		}
	}
	g.track(srv, closer)
	return n, nil
}

// handleDatagram processes GRRP invitations: if accepting, the host turns
// around and registers with the inviting directory (§10.4: "if a GRIS
// agrees to join, it turns around and uses GRRP to register itself").
func (n *HostNode) handleDatagram(from string, payload []byte) {
	m, err := grrp.Unmarshal(payload)
	if err != nil || m.Type != grrp.TypeInvite {
		return
	}
	n.invites.Lock()
	accept := n.invites.accept && (n.invites.vo == "" || n.invites.vo == m.VO)
	interval, ttl := n.invites.interval, n.invites.ttl
	requireSigned := n.invites.requireSigned
	n.invites.Unlock()
	if !accept {
		return
	}
	if requireSigned {
		if _, err := m.VerifySignature(n.grid.Trust, n.grid.Clock.Now()); err != nil {
			return // forged or unsigned invitation
		}
	}
	url, err := ldap.ParseURL(m.ServiceURL)
	if err != nil {
		return
	}
	n.registrar.Start(grrp.Registration{
		Target: url.Host,
		Message: grrp.Message{
			Type:       grrp.TypeRegister,
			ServiceURL: n.URL.String(),
			MDSType:    "gris",
			VO:         m.VO,
			SuffixDN:   n.Suffix.String(),
		},
		Interval: interval,
		TTL:      ttl,
		Keys:     n.Keys,
	})
}

// AcceptInvitations arms the node's invitation policy: it will join
// directories inviting it for the given VO ("" = any).
func (n *HostNode) AcceptInvitations(vo string, interval, ttl time.Duration) {
	n.invites.Lock()
	n.invites.accept = true
	n.invites.vo = vo
	n.invites.interval = interval
	n.invites.ttl = ttl
	n.invites.Unlock()
}

// RequireSignedInvitations makes the node ignore invitations that are not
// signed by a credential chained to the grid's trust store — the "control
// which registration events are accepted" requirement of §7, applied to
// invitation.
func (n *HostNode) RequireSignedInvitations() {
	n.invites.Lock()
	n.invites.requireSigned = true
	n.invites.Unlock()
}

// RegisterWith starts a sustained GRRP stream to a directory.
func (n *HostNode) RegisterWith(d *DirectoryNode, vo string, interval, ttl time.Duration) grrp.Registration {
	reg := grrp.Registration{
		Target: d.GRRPTarget(),
		Message: grrp.Message{
			Type:       grrp.TypeRegister,
			ServiceURL: n.URL.String(),
			MDSType:    "gris",
			VO:         vo,
			SuffixDN:   n.Suffix.String(),
		},
		Interval: interval,
		TTL:      ttl,
		Keys:     n.Keys,
	}
	n.registrar.Start(reg)
	return reg
}

// Registrar exposes the node's registration machinery (pause/resume in
// failure-injection experiments).
func (n *HostNode) Registrar() *grrp.Registrar { return n.registrar }

// DirectoryNode is one aggregate directory.
type DirectoryNode struct {
	Name string
	GIIS *giis.Server
	URL  ldap.URL
	Keys *gsi.KeyPair

	grid      *Grid
	node      string
	registrar *grrp.Registrar
}

// DirectoryOptions configures AddDirectory.
type DirectoryOptions struct {
	// Suffix is the directory's namespace root (e.g. "vo=alliance").
	Suffix string
	// Strategy defaults to chaining.
	Strategy giis.Strategy
	// AcceptVO restricts admission (§2.3).
	AcceptVO string
	// RequireSigned demands signed registrations.
	RequireSigned bool
	// AuthChildren makes the directory authenticate to providers with its
	// own credential when chaining (§10.4 trusted server credential).
	AuthChildren bool
	// Extensions maps extended-operation OIDs to handlers (§6 GRIP
	// extension point).
	Extensions map[string]giis.Extension
}

// AddDirectory creates a directory node and starts its GIIS server.
func (g *Grid) AddDirectory(name string, opts DirectoryOptions) (*DirectoryNode, error) {
	suffix, err := ldap.ParseDN(opts.Suffix)
	if err != nil {
		return nil, err
	}
	l, url, err := g.listen(name)
	if err != nil {
		return nil, err
	}
	keys, err := g.CA.Issue("cn=giis."+name, 100*365*24*time.Hour, g.Clock.Now())
	if err != nil {
		l.Close()
		return nil, err
	}
	cfg := giis.Config{
		Name:         name,
		Suffix:       suffix,
		SelfURL:      url,
		Clock:        g.Clock,
		Dial:         g.dialer(name),
		Strategy:     opts.Strategy,
		AcceptVO:     opts.AcceptVO,
		Keys:         keys,
		AuthChildren: opts.AuthChildren,
		Extensions:   opts.Extensions,
	}
	cfg.Trust = g.Trust
	cfg.RequireSignedRegistrations = opts.RequireSigned
	gs := giis.New(cfg)
	srv := ldap.NewServer(gs)
	go srv.Serve(l)

	d := &DirectoryNode{
		Name: name, GIIS: gs, URL: url, Keys: keys,
		grid: g, node: name,
		registrar: grrp.NewRegistrar(g.grrpTransport(name), g.Clock),
	}
	if g.Net != nil {
		g.Net.HandleDatagrams(name, gs.HandleDatagram)
	}
	g.track(srv, func() {
		d.registrar.StopAll()
		gs.Close()
	})
	return d, nil
}

// GRRPTarget is the address registration streams send to: the node name on
// simulated grids (datagram fabric), the LDAP address on TCP grids
// (add-operation binding).
func (d *DirectoryNode) GRRPTarget() string {
	if d.grid.Net != nil {
		return d.node
	}
	return d.URL.Address()
}

// RegisterWith links directories into a hierarchy (Figure 5).
func (d *DirectoryNode) RegisterWith(parent *DirectoryNode, vo string, interval, ttl time.Duration) {
	reg := d.GIIS.SelfRegistration(parent.GRRPTarget(), vo, interval, ttl)
	reg.Keys = d.Keys
	d.registrar.Start(reg)
}

// Invite asks the service at a node/address to join this directory.
func (d *DirectoryNode) Invite(targetNode, vo string, ttl time.Duration) error {
	return d.GIIS.Invite(d.grid.grrpTransport(d.node), targetNode, vo, ttl)
}

// Registrar exposes the directory's own registration streams.
func (d *DirectoryNode) Registrar() *grrp.Registrar { return d.registrar }

// Client connects a GRIP client to this directory from a user node.
func (d *DirectoryNode) Client(fromNode string) (*grip.Client, error) {
	return d.grid.Connect(fromNode, d.URL)
}

// Client connects a GRIP client straight to this host's GRIS.
func (n *HostNode) Client(fromNode string) (*grip.Client, error) {
	return n.grid.Connect(fromNode, n.URL)
}
