package core

import (
	"context"
	"testing"
	"time"

	"mds2/internal/giis"
	"mds2/internal/grip"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
	"mds2/internal/nws"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + what)
}

// TestFigure2Flow reproduces the architecture overview: a user discovers
// entities through an aggregate directory, then looks one up directly at
// its information provider.
func TestFigure2Flow(t *testing.T) {
	g, err := NewSimGrid(1)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	dir, err := g.AddDirectory("giis-vo", DirectoryOptions{Suffix: "vo=alliance"})
	if err != nil {
		t.Fatal(err)
	}
	hostA, err := g.AddHost("hostA", HostOptions{Org: "center1"})
	if err != nil {
		t.Fatal(err)
	}
	hostB, err := g.AddHost("hostB", HostOptions{Org: "center1"})
	if err != nil {
		t.Fatal(err)
	}
	hostA.RegisterWith(dir, "alliance", 10*time.Second, time.Minute)
	hostB.RegisterWith(dir, "alliance", 10*time.Second, time.Minute)
	waitUntil(t, "registrations", func() bool { return len(dir.GIIS.Children()) == 2 })

	// Discovery (GRIP search at the directory).
	user, err := dir.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()
	computers, err := user.Search(ldap.MustParseDN("vo=alliance"), "(objectclass=computer)")
	if err != nil {
		t.Fatal(err)
	}
	if len(computers) != 2 {
		t.Fatalf("discovered %d computers", len(computers))
	}

	// Lookup (GRIP enquiry direct to the provider).
	direct, err := hostA.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	e, err := direct.Lookup(hostA.Suffix)
	if err != nil {
		t.Fatal(err)
	}
	if e.First("hn") != "hostA" {
		t.Fatalf("lookup = %s", e)
	}
}

func TestSoftStateExpiryOnSilence(t *testing.T) {
	g, _ := NewSimGrid(2)
	defer g.Close()
	dir, _ := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v"})
	host, _ := g.AddHost("h1", HostOptions{})
	reg := host.RegisterWith(dir, "v", 10*time.Second, 35*time.Second)
	waitUntil(t, "registration", func() bool { return len(dir.GIIS.Children()) == 1 })

	// Silence the provider; the directory purges it after the TTL.
	host.Registrar().Pause(reg)
	for i := 0; i < 5; i++ {
		g.SimClock().Advance(10 * time.Second)
		time.Sleep(5 * time.Millisecond)
	}
	if len(dir.GIIS.Children()) != 0 {
		t.Fatal("silent provider should expire")
	}
	// Resume: soft state re-establishes without recovery logic.
	host.Registrar().Resume(reg)
	g.SimClock().Advance(10 * time.Second)
	waitUntil(t, "re-registration", func() bool { return len(dir.GIIS.Children()) == 1 })
}

// TestFigure1Partition reproduces the paper's first figure: VO-B splits
// into two fragments that each keep operating with the resources on their
// side, then reconverge when the network heals.
func TestFigure1Partition(t *testing.T) {
	g, _ := NewSimGrid(3)
	defer g.Close()
	// VO-B runs two replicated directories on different sides.
	dirEast, _ := g.AddDirectory("dir-east", DirectoryOptions{Suffix: "vo=b"})
	dirWest, _ := g.AddDirectory("dir-west", DirectoryOptions{Suffix: "vo=b"})
	east, _ := g.AddHost("east1", HostOptions{Org: "east"})
	west, _ := g.AddHost("west1", HostOptions{Org: "west"})
	// Every host registers with both directories (replication).
	for _, h := range []*HostNode{east, west} {
		h.RegisterWith(dirEast, "b", 5*time.Second, 20*time.Second)
		h.RegisterWith(dirWest, "b", 5*time.Second, 20*time.Second)
	}
	waitUntil(t, "full registration", func() bool {
		return len(dirEast.GIIS.Children()) == 2 && len(dirWest.GIIS.Children()) == 2
	})

	// Partition east from west.
	g.Net.SetPartitions(
		[]string{"dir-east", "east1", "user-east"},
		[]string{"dir-west", "west1", "user-west"},
	)
	for i := 0; i < 6; i++ {
		g.SimClock().Advance(5 * time.Second)
		time.Sleep(5 * time.Millisecond)
	}
	// Each fragment sees exactly its own side (divergent directories,
	// Figure 4).
	if n := len(dirEast.GIIS.Children()); n != 1 {
		t.Fatalf("east children = %d", n)
	}
	if n := len(dirWest.GIIS.Children()); n != 1 {
		t.Fatalf("west children = %d", n)
	}
	// Users on each side still get answers from their fragment.
	eu, err := dirEast.Client("user-east")
	if err != nil {
		t.Fatal(err)
	}
	defer eu.Close()
	entries, err := eu.Search(ldap.MustParseDN("vo=b"), "(objectclass=computer)")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].First("hn") != "east1" {
		t.Fatalf("east fragment sees %v", entries)
	}

	// Heal: the sustained streams reconverge both directories.
	g.Net.Heal()
	g.SimClock().Advance(5 * time.Second)
	waitUntil(t, "reconvergence", func() bool {
		return len(dirEast.GIIS.Children()) == 2 && len(dirWest.GIIS.Children()) == 2
	})
}

// TestFigure5Hierarchy builds the two-center + individual topology and
// exercises scoped and root searches.
func TestFigure5Hierarchy(t *testing.T) {
	g, _ := NewSimGrid(4)
	defer g.Close()
	vo, _ := g.AddDirectory("vo-dir", DirectoryOptions{Suffix: "vo=alliance"})
	c1, _ := g.AddDirectory("center1-dir", DirectoryOptions{Suffix: "o=o1"})
	c2, _ := g.AddDirectory("center2-dir", DirectoryOptions{Suffix: "o=o2"})

	// Center 1 contributes R1..R3; center 2 contributes R1, R2 (same leaf
	// names, different scopes — §8 relative uniqueness).
	for _, r := range []string{"r1", "r2", "r3"} {
		h, err := g.AddHost(r+".o1", HostOptions{Org: "o1"})
		if err != nil {
			t.Fatal(err)
		}
		h.RegisterWith(c1, "alliance", 10*time.Second, time.Minute)
	}
	for _, r := range []string{"r1", "r2"} {
		h, err := g.AddHost(r+".o2", HostOptions{Org: "o2"})
		if err != nil {
			t.Fatal(err)
		}
		h.RegisterWith(c2, "alliance", 10*time.Second, time.Minute)
	}
	// One individual contributes a host directly to the VO.
	indiv, _ := g.AddHost("r1.individual", HostOptions{Org: "home"})
	indiv.RegisterWith(vo, "alliance", 10*time.Second, time.Minute)
	// Center directories register with the VO directory.
	c1.RegisterWith(vo, "alliance", 10*time.Second, time.Minute)
	c2.RegisterWith(vo, "alliance", 10*time.Second, time.Minute)

	waitUntil(t, "topology", func() bool {
		return len(vo.GIIS.Children()) == 3 &&
			len(c1.GIIS.Children()) == 3 && len(c2.GIIS.Children()) == 2
	})

	user, err := vo.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()
	// Root search sees all six hosts across the hierarchy.
	all, err := user.Search(ldap.MustParseDN("vo=alliance"), "(objectclass=computer)")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("root search = %d hosts", len(all))
	}
	// Scoped search to organization o2 sees exactly its two.
	scoped, err := user.Search(ldap.MustParseDN("o=o2, vo=alliance"), "(objectclass=computer)")
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped) != 2 {
		t.Fatalf("scoped search = %d hosts", len(scoped))
	}
}

func TestInvitationJoinsVO(t *testing.T) {
	g, _ := NewSimGrid(5)
	defer g.Close()
	dir, _ := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v"})
	host, _ := g.AddHost("h1", HostOptions{})
	host.AcceptInvitations("v", 10*time.Second, time.Minute)

	if err := dir.Invite("h1", "v", time.Minute); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "invited registration", func() bool { return len(dir.GIIS.Children()) == 1 })
	// The invited host declines foreign VOs.
	host2, _ := g.AddHost("h2", HostOptions{})
	host2.AcceptInvitations("other-vo", 10*time.Second, time.Minute)
	dir.Invite("h2", "v", time.Minute)
	time.Sleep(20 * time.Millisecond)
	if len(dir.GIIS.Children()) != 1 {
		t.Fatal("host should decline invitation for foreign VO")
	}
}

func TestSignedRegistrationsOnGrid(t *testing.T) {
	g, _ := NewSimGrid(6)
	defer g.Close()
	dir, _ := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v", RequireSigned: true})
	host, _ := g.AddHost("h1", HostOptions{})
	host.RegisterWith(dir, "v", 10*time.Second, time.Minute)
	waitUntil(t, "signed registration", func() bool { return len(dir.GIIS.Children()) == 1 })
	// An unsigned forgery is refused.
	now := g.Clock.Now()
	forged := &grrp.Message{Type: grrp.TypeRegister, ServiceURL: "sim://evil:389",
		SuffixDN: "hn=evil", IssuedAt: now, ValidUntil: now.Add(time.Hour)}
	g.Net.SendDatagram("evil", "dir", forged.Marshal())
	time.Sleep(10 * time.Millisecond)
	if len(dir.GIIS.Children()) != 1 {
		t.Fatal("unsigned registration accepted")
	}
}

func TestGSIAuthenticatedSearchOverWire(t *testing.T) {
	g, _ := NewSimGrid(7)
	defer g.Close()
	// Policy: anonymous sees nothing but existence; the scheduler subject
	// sees load (§7 worked example).
	pol := newRestrictedPolicy()
	host, err := g.AddHost("h1", HostOptions{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	schedKeys, err := g.CA.Issue("cn=scheduler", time.Hour, g.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	c, err := host.Client("sched")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Anonymous: restricted filter rejected.
	if _, err := c.Search(host.Suffix, "(load5<=99)"); err == nil {
		t.Fatal("anonymous restricted filter should fail")
	}
	// Authenticate; now the filter is allowed and values visible.
	serverCred, err := c.Authenticate(schedKeys, g.Trust)
	if err != nil {
		t.Fatal(err)
	}
	if serverCred.EndEntity() != "cn=gris.h1" {
		t.Fatalf("server identity = %q", serverCred.EndEntity())
	}
	entries, err := c.Search(host.Suffix, "(load5<=9999)")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Has("load5") {
		t.Fatalf("scheduler view = %v", entries)
	}
}

func newRestrictedPolicy() *gsi.Policy {
	return gsi.NewPolicy(gsi.PostureRestricted).
		Grant("anonymous", "objectclass", "hn", "system").
		Grant("cn=scheduler", "*")
}

func TestSubscriptionOverGrid(t *testing.T) {
	g, _ := NewSimGrid(8)
	defer g.Close()
	host, _ := g.AddHost("h1", HostOptions{DynamicTTL: time.Second})
	c, err := host.Client("monitor")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	updates := make(chan string, 64)
	go func() {
		c.Subscribe(ctx, host.Suffix, "(objectclass=loadaverage)", false,
			func(u grip.Update) error {
				updates <- u.Entry.First("load5")
				return nil
			})
	}()
	// Baseline arrives.
	select {
	case <-updates:
	case <-time.After(5 * time.Second):
		t.Fatal("no baseline update")
	}
	// Step the host so the load changes, advance past cache TTL + poll.
	host.Host.Step(30 * time.Minute)
	deadline := time.After(5 * time.Second)
	for {
		g.SimClock().Advance(2 * time.Second)
		select {
		case <-updates:
			return // got a pushed change
		case <-deadline:
			t.Fatal("no pushed update after change")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestMatchmakerExtension(t *testing.T) {
	g, _ := NewSimGrid(9)
	defer g.Close()
	// Directory with a cached index (the matchmaker needs a corpus) and
	// the matchmaker extension mounted.
	strategy := giis.NewCachedIndex(time.Hour)
	dir, err := g.AddDirectory("dir", DirectoryOptions{
		Suffix:   "vo=v",
		Strategy: strategy,
		Extensions: map[string]giis.Extension{
			OIDMatchmake: MatchmakeExtension(strategy),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	big, _ := g.AddHost("big", HostOptions{Spec: hostSpec(64, "mips irix", "mips")})
	small, _ := g.AddHost("small", HostOptions{Spec: hostSpec(2, "linux redhat", "ia32")})
	big.RegisterWith(dir, "v", 10*time.Second, time.Minute)
	small.RegisterWith(dir, "v", 10*time.Second, time.Minute)
	waitUntil(t, "registrations", func() bool { return len(dir.GIIS.Children()) == 2 })

	c, err := dir.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Warm the index.
	if _, err := c.Search(ldap.MustParseDN("vo=v"), "(objectclass=computer)"); err != nil {
		t.Fatal(err)
	}
	// The join-like request LDAP filters cannot express: rank by CPU count.
	req := "requirements: other.cpucount >= 32\nrank: other.cpucount\n"
	out, err := c.Extended(OIDMatchmake, []byte(req))
	if err != nil {
		t.Fatal(err)
	}
	matched, err := ldif.ParseString(string(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(matched) != 1 || matched[0].First("hn") != "big" {
		t.Fatalf("matchmaker results = %v", matched)
	}
}

func hostSpec(cpus int, os, arch string) hostinfo.Spec {
	return hostinfo.Spec{OS: os, OSVer: "1.0", CPUType: arch, CPUCount: cpus, MemoryMB: 1024 * cpus}
}

func TestLocalTCPGrid(t *testing.T) {
	g, err := NewLocalGrid()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	host, err := g.AddHost("h1", HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// TCP grids carry GRRP as LDAP adds (the MDS-2.1 binding).
	host.RegisterWith(dir, "v", 50*time.Millisecond, 10*time.Second)
	waitUntil(t, "tcp registration", func() bool { return len(dir.GIIS.Children()) == 1 })
	c, err := dir.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.Search(ldap.MustParseDN("vo=v"), "(objectclass=computer)")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("tcp search = %d", len(entries))
	}
}

func TestNWSProviderOnGrid(t *testing.T) {
	g, _ := NewSimGrid(10)
	defer g.Close()
	svc := nws.NewService()
	host, _ := g.AddHost("h1", HostOptions{WithNWS: svc})
	c, err := host.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.Search(host.Suffix, "(&(objectclass=networklink)(src=ufl.edu)(dst=anl.gov))")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Has("bandwidthmbps") {
		t.Fatalf("nws entries = %v", entries)
	}
	if svc.Measured() != 1 {
		t.Errorf("measured = %d (lazy generation expected)", svc.Measured())
	}
}
