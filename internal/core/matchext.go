package core

import (
	"bufio"
	"fmt"
	"strings"

	"mds2/internal/giis"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
	"mds2/internal/matchmake"
)

// OIDMatchmake identifies the matchmaking extended operation, the §5.3 /
// §6 demonstration that directories "can employ the Condor matchmaking
// algorithm as a query evaluation mechanism" behind the standard protocol's
// extension point.
const OIDMatchmake = "1.3.6.1.4.1.3536.2.1"

// MatchmakeExtension mounts a classad evaluator over a cached-index
// directory. The request value is a small text form:
//
//	requirements: other.cpucount >= 32 && other.load5 < 1.0
//	rank: other.freecpus
//	attr.imagesize: 512
//
// attr.* lines populate the request ad so resource-side requirements can
// reference them. The response is the LDIF of matching entries, best rank
// first.
func MatchmakeExtension(index *giis.CachedIndex) giis.Extension {
	return func(_ *ldap.Request, value []byte) ([]byte, error) {
		req, err := parseMatchRequest(string(value))
		if err != nil {
			return nil, err
		}
		// Fold sibling entries into per-resource ads: group by the top two
		// DN components so a host's load/storage children enrich its ad.
		corpus := index.Entries()
		byResource := map[string]*matchmake.Ad{}
		entryFor := map[string]*ldap.Entry{}
		for _, e := range corpus {
			key := resourceKey(e.DN)
			ad, ok := byResource[key]
			if !ok {
				ad = matchmake.NewAd()
				byResource[key] = ad
			}
			for name, v := range matchmake.FromEntry(e).Attrs {
				if name == "dn" {
					continue
				}
				ad.Set(name, v)
			}
			if e.IsA("computer") || entryFor[key] == nil {
				entryFor[key] = e
				ad.Set("dn", e.DN.String())
			}
		}
		var candidates []*matchmake.Ad
		for _, ad := range byResource {
			candidates = append(candidates, ad)
		}
		results, err := matchmake.MatchAll(req, candidates)
		if err != nil {
			return nil, err
		}
		var entries []*ldap.Entry
		for _, r := range results {
			dn, _ := r.Ad.Get("dn").(string)
			if e := entryFor[resourceKeyString(dn)]; e != nil {
				entries = append(entries, e)
			}
		}
		return []byte(ldif.Marshal(entries)), nil
	}
}

func resourceKey(dn ldap.DN) string {
	// A resource is identified by its host component: drop leaf RDNs until
	// an hn= component leads, else use the full DN.
	for i := 0; i < len(dn); i++ {
		if strings.EqualFold(dn[i][0].Attr, "hn") {
			return ldap.DN(dn[i:]).Normalize()
		}
	}
	return dn.Normalize()
}

func resourceKeyString(s string) string {
	dn, err := ldap.ParseDN(s)
	if err != nil {
		return s
	}
	return resourceKey(dn)
}

func parseMatchRequest(text string) (*matchmake.Ad, error) {
	ad := matchmake.NewAd()
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.Index(line, ":")
		if idx <= 0 {
			return nil, fmt.Errorf("core: bad matchmake request line %q", line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:idx]))
		val := strings.TrimSpace(line[idx+1:])
		switch {
		case key == "requirements":
			ad.Requirements = val
		case key == "rank":
			ad.Rank = val
		case strings.HasPrefix(key, "attr."):
			ad.Set(strings.TrimPrefix(key, "attr."), parseAdValue(val))
		default:
			return nil, fmt.Errorf("core: unknown matchmake request key %q", key)
		}
	}
	return ad, nil
}

func parseAdValue(s string) matchmake.Value {
	switch strings.ToLower(s) {
	case "true":
		return true
	case "false":
		return false
	}
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err == nil && fmt.Sprintf("%g", f) == s {
		return f
	}
	return s
}
