package core

import (
	"testing"
	"time"

	"mds2/internal/giis"
	"mds2/internal/grip"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/ldap"
)

func referralStrategy() giis.Strategy { return giis.NewReferral() }

// TestTrustedDirectoryChaining exercises the first §7 posture end to end:
// the provider trusts the directory, so an authenticated chaining directory
// retrieves everything, while an anonymous client asking the provider
// directly sees only the public subset.
func TestTrustedDirectoryChaining(t *testing.T) {
	g, err := NewSimGrid(70)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// The directory authenticates to children with its own credential.
	dir, err := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v", AuthChildren: true})
	if err != nil {
		t.Fatal(err)
	}
	// Provider policy: trusted directories see all; everyone else sees the
	// public attributes only.
	pol := gsi.NewPolicy(gsi.PostureTrustedDirectory).
		Grant("anonymous", "objectclass", "hn", "system")
	host, err := g.AddHost("h1", HostOptions{
		Policy:             pol,
		TrustedDirectories: []string{"cn=giis.dir"},
	})
	if err != nil {
		t.Fatal(err)
	}
	host.RegisterWith(dir, "v", 10*time.Second, time.Hour)
	waitUntil(t, "registration", func() bool { return len(dir.GIIS.Children()) == 1 })

	// Anonymous user via the directory: the directory's authenticated chain
	// retrieves the full entry, which it serves on the provider's behalf
	// ("the provider ... trusts the directory to apply its policy").
	user, err := dir.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()
	viaDir, err := user.Search(ldap.MustParseDN("vo=v"), "(objectclass=loadaverage)")
	if err != nil {
		t.Fatal(err)
	}
	if len(viaDir) != 1 || !viaDir[0].Has("load5") {
		t.Fatalf("directory view = %v (trusted chain should see load)", viaDir)
	}

	// The same anonymous user directly at the provider sees no load data.
	direct, err := host.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	raw, err := direct.Search(host.Suffix, "(objectclass=*)")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range raw {
		if e.Has("load5") {
			t.Fatalf("anonymous direct view leaked load: %s", e)
		}
	}
}

// TestReferralFollowWithReauthentication exercises §10.4's restricted-data
// flow: the directory cannot proxy the data, returns a referral, and the
// client follows it to the provider, re-authenticating there.
func TestReferralFollowWithReauthentication(t *testing.T) {
	g, err := NewSimGrid(71)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	dir, err := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v",
		Strategy: referralStrategy()})
	if err != nil {
		t.Fatal(err)
	}
	pol := gsi.NewPolicy(gsi.PostureRestricted).
		Grant("anonymous", "objectclass", "hn", "system").
		Grant("cn=scheduler", "*")
	host, err := g.AddHost("h1", HostOptions{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	host.RegisterWith(dir, "v", 10*time.Second, time.Hour)
	waitUntil(t, "registration", func() bool { return len(dir.GIIS.Children()) == 1 })

	schedKeys, err := g.CA.Issue("cn=scheduler", time.Hour, g.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	user, err := dir.Client("sched")
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()

	entries, err := user.SearchFollowing(ldap.MustParseDN("vo=v"), "(objectclass=loadaverage)",
		func(url ldap.URL) (*grip.Client, error) {
			return g.Connect("sched", url)
		},
		func(c *grip.Client) error {
			_, err := c.Authenticate(schedKeys, g.Trust)
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Has("load5") {
		t.Fatalf("followed referral entries = %v", entries)
	}
	// Without authentication the follow-up filter is refused at the
	// provider, so only public data (none matching the load filter) comes
	// back.
	entries, err = user.SearchFollowing(ldap.MustParseDN("vo=v"), "(objectclass=loadaverage)",
		func(url ldap.URL) (*grip.Client, error) {
			return g.Connect("anon", url)
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Has("load5") {
			t.Fatalf("anonymous follow leaked restricted data: %s", e)
		}
	}
	// The directory itself never chained (it only referred).
	if dir.GIIS.ChainedOps.Value() != 0 {
		t.Fatalf("referral directory chained %d times", dir.GIIS.ChainedOps.Value())
	}
}

// TestSignedInvitations: a host requiring signed invitations joins only on
// authentic invites; forged ones are ignored.
func TestSignedInvitations(t *testing.T) {
	g, err := NewSimGrid(75)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	host, err := g.AddHost("h1", HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	host.AcceptInvitations("v", 10*time.Second, time.Hour)
	host.RequireSignedInvitations()

	// A forged, unsigned invitation is ignored.
	forged := forgedInvite(g, dir)
	g.Net.SendDatagram("evil", "h1", forged)
	time.Sleep(20 * time.Millisecond)
	if len(dir.GIIS.Children()) != 0 {
		t.Fatal("forged invitation accepted")
	}
	// The directory's real (signed) invitation is honoured.
	if err := dir.Invite("h1", "v", time.Minute); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "invited registration", func() bool { return len(dir.GIIS.Children()) == 1 })
}

func forgedInvite(g *Grid, dir *DirectoryNode) []byte {
	now := g.Clock.Now()
	m := grrp.Message{
		Type:       grrp.TypeInvite,
		ServiceURL: dir.URL.String(),
		MDSType:    "giis",
		VO:         "v",
		SuffixDN:   "vo=v",
		IssuedAt:   now,
		ValidUntil: now.Add(time.Minute),
	}
	return m.Marshal()
}
