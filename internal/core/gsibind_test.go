package core

import (
	"testing"
	"time"

	"mds2/internal/ldap"
)

// TestGSIBindToDirectory authenticates a client to a GIIS over the wire:
// directories accept the same SASL/GSI exchange as providers.
func TestGSIBindToDirectory(t *testing.T) {
	g, err := NewSimGrid(72)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	userKeys, err := g.CA.Issue("cn=user", time.Hour, g.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	c, err := dir.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	serverCred, err := c.Authenticate(userKeys, g.Trust)
	if err != nil {
		t.Fatal(err)
	}
	if serverCred.EndEntity() != "cn=giis.dir" {
		t.Fatalf("directory identity = %q", serverCred.EndEntity())
	}
	// The authenticated session still serves searches.
	if _, err := c.Search(ldap.MustParseDN("vo=v"), "(objectclass=mdsservice)"); err != nil {
		t.Fatal(err)
	}
}

// TestGSIBindToDirectoryRejectsUntrusted: a credential from a foreign CA is
// refused by the directory.
func TestGSIBindToDirectoryRejectsUntrusted(t *testing.T) {
	g, err := NewSimGrid(73)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g2, err := NewSimGrid(74) // a different security domain
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()

	dir, err := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	foreignKeys, err := g2.CA.Issue("cn=mallory", time.Hour, g2.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	c, err := dir.Client("mallory")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Mallory trusts both CAs (so the client side accepts the server); the
	// directory must still refuse her foreign credential.
	trust := g2.Trust
	trust.TrustAuthority(g.CA)
	if _, err := c.Authenticate(foreignKeys, trust); err == nil {
		t.Fatal("foreign credential accepted by directory")
	}
}
