package core

import (
	"fmt"
	"testing"
	"time"

	"mds2/internal/grrp"
	"mds2/internal/ldap"
)

// TestLargeGridChurn soaks a 40-host, three-directory hierarchy through
// membership churn: waves of hosts fall silent and return while queries
// keep running. The invariants: queries never fail outright, the live set
// tracks the truly alive set once soft state settles, and nothing deadlocks.
func TestLargeGridChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		hostsPerCenter = 20
		refresh        = 5 * time.Second
		ttl            = 20 * time.Second
	)
	g, err := NewSimGrid(777)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	vo, err := g.AddDirectory("vo", DirectoryOptions{Suffix: "vo=big"})
	if err != nil {
		t.Fatal(err)
	}
	centers := make([]*DirectoryNode, 2)
	for i := range centers {
		c, err := g.AddDirectory(fmt.Sprintf("center%d", i), DirectoryOptions{
			Suffix: fmt.Sprintf("o=c%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		c.RegisterWith(vo, "big", refresh, ttl)
		centers[i] = c
	}
	type member struct {
		node *HostNode
		reg  grrp.Registration
	}
	var members []member
	for i := 0; i < 2*hostsPerCenter; i++ {
		h, err := g.AddHost(fmt.Sprintf("n%02d", i), HostOptions{Org: fmt.Sprintf("c%d", i%2)})
		if err != nil {
			t.Fatal(err)
		}
		reg := h.RegisterWith(centers[i%2], "big", refresh, ttl)
		members = append(members, member{h, reg})
	}
	settle := func(steps int) {
		for i := 0; i < steps; i++ {
			g.SimClock().Advance(refresh)
			time.Sleep(3 * time.Millisecond)
		}
	}
	waitUntil(t, "initial registration", func() bool {
		return len(centers[0].GIIS.Children()) == hostsPerCenter &&
			len(centers[1].GIIS.Children()) == hostsPerCenter &&
			len(vo.GIIS.Children()) == 2
	})

	user, err := vo.Client("user")
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()
	count := func() int {
		entries, err := user.Search(ldap.MustParseDN("vo=big"), "(objectclass=computer)")
		if err != nil {
			t.Fatalf("query failed mid-churn: %v", err)
		}
		return len(entries)
	}
	if got := count(); got != 2*hostsPerCenter {
		t.Fatalf("initial visible = %d", got)
	}

	// Churn waves: kill every 4th host, settle, verify, revive, verify.
	alive := 2 * hostsPerCenter
	for wave := 0; wave < 3; wave++ {
		var killed []member
		for i, m := range members {
			if i%4 == wave {
				m.node.Registrar().Pause(m.reg)
				killed = append(killed, m)
			}
		}
		settle(int(ttl/refresh) + 2)
		want := alive - len(killed)
		if got := count(); got != want {
			t.Fatalf("wave %d: visible = %d, want %d", wave, got, want)
		}
		for _, m := range killed {
			m.node.Registrar().Resume(m.reg)
		}
		settle(2)
		waitUntil(t, "wave recovery", func() bool { return count() == alive })
	}
}

// TestConcurrentQueriesDuringChurn hammers a directory with parallel
// queries while registrations expire and renew; no query may error.
func TestConcurrentQueriesDuringChurn(t *testing.T) {
	g, err := NewSimGrid(888)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	var regs []grrp.Registration
	var nodes []*HostNode
	for i := 0; i < 8; i++ {
		h, err := g.AddHost(fmt.Sprintf("q%d", i), HostOptions{})
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, h.RegisterWith(dir, "v", 5*time.Second, 20*time.Second))
		nodes = append(nodes, h)
	}
	waitUntil(t, "registration", func() bool { return len(dir.GIIS.Children()) == 8 })

	stop := make(chan struct{})
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			c, err := dir.Client(fmt.Sprintf("user%d", w))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				if _, err := c.Search(ldap.MustParseDN("vo=v"), "(objectclass=computer)"); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 10; round++ {
		nodes[round%8].Registrar().Pause(regs[round%8])
		g.SimClock().Advance(5 * time.Second)
		time.Sleep(3 * time.Millisecond)
		nodes[round%8].Registrar().Resume(regs[round%8])
	}
	close(stop)
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
