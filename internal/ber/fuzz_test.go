package ber

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics throws random byte soup at the decoder: every input
// must either parse or return an error — never panic, never hang. This is
// the property that matters for a server parsing hostile network input.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2001))
	buf := make([]byte, 0, 512)
	for i := 0; i < 50000; i++ {
		n := r.Intn(64)
		buf = buf[:0]
		for j := 0; j < n; j++ {
			buf = append(buf, byte(r.Intn(256)))
		}
		Decode(buf)     // must not panic
		DecodeFull(buf) // must not panic
	}
}

// TestDecodeMutatedValidMessages corrupts valid encodings byte by byte;
// the decoder must stay total.
func TestDecodeMutatedValidMessages(t *testing.T) {
	valid := Marshal(NewSequence().Append(
		NewInteger(7),
		NewConstructed(ClassApplication, 3).Append(
			NewOctetString("hn=hostX, o=grid"),
			NewEnumerated(2),
			NewSequence().Append(NewOctetString("cn"), NewOctetString("load5")),
		),
	))
	for pos := 0; pos < len(valid); pos++ {
		for _, delta := range []byte{0x01, 0x80, 0xff} {
			mutated := append([]byte(nil), valid...)
			mutated[pos] ^= delta
			DecodeFull(mutated) // must not panic
		}
	}
	// Truncations at every length.
	for cut := 0; cut <= len(valid); cut++ {
		DecodeFull(valid[:cut])
	}
}

// TestRoundTripAfterReencode: anything that decodes must re-encode and
// decode to the same tree (idempotence of the codec on its own output).
func TestRoundTripAfterReencode(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		n := 1 + r.Intn(48)
		buf := make([]byte, n)
		r.Read(buf)
		p, err := DecodeFull(buf)
		if err != nil {
			continue
		}
		re := Marshal(p)
		p2, err := DecodeFull(re)
		if err != nil {
			t.Fatalf("re-decode failed for % x -> % x: %v", buf, re, err)
		}
		if !packetsEqual(p, p2) {
			t.Fatalf("re-encode changed tree for % x", buf)
		}
	}
}
