package ber

import (
	"bytes"
	"strings"
	"testing"
)

// build runs fn against a fresh Builder and returns the encoding.
func build(fn func(*Builder)) []byte {
	var b Builder
	b.Reset(nil)
	fn(&b)
	return b.Bytes()
}

func TestBuilderMatchesMarshalPrimitives(t *testing.T) {
	cases := []struct {
		name string
		tree *Packet
		emit func(*Builder)
	}{
		{"int zero", NewInteger(0), func(b *Builder) { b.Int(0) }},
		{"int small", NewInteger(42), func(b *Builder) { b.Int(42) }},
		{"int byte boundary", NewInteger(127), func(b *Builder) { b.Int(127) }},
		{"int two octets", NewInteger(128), func(b *Builder) { b.Int(128) }},
		{"int large", NewInteger(1 << 40), func(b *Builder) { b.Int(1 << 40) }},
		{"int negative", NewInteger(-1), func(b *Builder) { b.Int(-1) }},
		{"int neg boundary", NewInteger(-128), func(b *Builder) { b.Int(-128) }},
		{"int neg two octets", NewInteger(-129), func(b *Builder) { b.Int(-129) }},
		{"enum", NewEnumerated(4), func(b *Builder) { b.Enum(4) }},
		{"bool true", NewBoolean(true), func(b *Builder) { b.Bool(true) }},
		{"bool false", NewBoolean(false), func(b *Builder) { b.Bool(false) }},
		{"null", NewNull(), func(b *Builder) { b.Null() }},
		{"octet empty", NewOctetString(""), func(b *Builder) { b.OctetString("") }},
		{"octet short", NewOctetString("o=grid"), func(b *Builder) { b.OctetString("o=grid") }},
		{"octet long form", NewOctetString(strings.Repeat("a", 200)),
			func(b *Builder) { b.OctetString(strings.Repeat("a", 200)) }},
		{"octet two length octets", NewOctetString(strings.Repeat("a", 300)),
			func(b *Builder) { b.OctetString(strings.Repeat("a", 300)) }},
		{"context string", NewContextString(7, "creds"), func(b *Builder) { b.ContextString(7, "creds") }},
		{"high tag", &Packet{Class: ClassContext, Tag: 1000, Value: []byte("hi")},
			func(b *Builder) { b.Primitive(ClassContext, 1000, []byte("hi")) }},
		{"implicit int", &Packet{Class: ClassApplication, Tag: 16, Value: AppendInt64(nil, 300)},
			func(b *Builder) { b.PrimitiveInt(ClassApplication, 16, 300) }},
	}
	for _, tc := range cases {
		want := Marshal(tc.tree)
		got := build(tc.emit)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: builder % x != marshal % x", tc.name, got, want)
		}
	}
}

// TestBuilderEndBackPatch covers the length back-patch across the
// short-form/long-form boundary, including bodies needing 2 and 3 length
// octets (the shift-right path).
func TestBuilderEndBackPatch(t *testing.T) {
	for _, n := range []int{0, 1, 125, 126, 127, 128, 129, 255, 256, 1000, 65535, 65536, 100000} {
		body := strings.Repeat("b", n)
		want := Marshal(NewSequence().Append(NewOctetString(body)))
		got := build(func(b *Builder) {
			b.Begin(ClassUniversal, TagSequence)
			b.OctetString(body)
			b.End()
		})
		if !bytes.Equal(got, want) {
			t.Errorf("body %d: builder encoding diverges from marshal (%d vs %d bytes)",
				n, len(got), len(want))
		}
	}
}

func TestBuilderNested(t *testing.T) {
	inner := strings.Repeat("deep", 50) // inner body > 128: nested back-patch
	want := Marshal(NewSequence().Append(
		NewInteger(7),
		NewConstructed(ClassApplication, 3).Append(
			NewOctetString("o=grid"),
			NewSequence().Append(NewOctetString(inner)),
			NewContextString(0, "ctx"),
		),
		NewBoolean(true),
	))
	got := build(func(b *Builder) {
		b.Begin(ClassUniversal, TagSequence)
		b.Int(7)
		b.Begin(ClassApplication, 3)
		b.OctetString("o=grid")
		b.Begin(ClassUniversal, TagSequence)
		b.OctetString(inner)
		b.End()
		b.ContextString(0, "ctx")
		b.End()
		b.Bool(true)
		b.End()
	})
	if !bytes.Equal(got, want) {
		t.Errorf("nested builder encoding diverges:\n got  % x\n want % x", got, want)
	}
}

// TestBuilderBeginPrimitive checks incremental primitive assembly
// (RawString/RawBytes) against the one-shot encoder, across the long-form
// length boundary.
func TestBuilderBeginPrimitive(t *testing.T) {
	pieces := []string{"hn=host", "X", ", ", "o=grid", strings.Repeat(".", 150)}
	whole := strings.Join(pieces, "")
	want := Marshal(NewOctetString(whole))
	got := build(func(b *Builder) {
		b.BeginPrimitive(ClassUniversal, TagOctetString)
		for _, p := range pieces {
			b.RawString(p)
		}
		b.End()
	})
	if !bytes.Equal(got, want) {
		t.Errorf("incremental primitive diverges:\n got  % x\n want % x", got, want)
	}
	got = build(func(b *Builder) {
		b.BeginPrimitive(ClassUniversal, TagOctetString)
		b.RawBytes([]byte(whole))
		b.End()
	})
	if !bytes.Equal(got, want) {
		t.Errorf("RawBytes primitive diverges from marshal")
	}
}

func TestBuilderPacketBridge(t *testing.T) {
	tree := NewSequence().Append(
		NewInteger(99),
		NewConstructed(ClassContext, 0).Append(NewOctetString("bridged")),
	)
	want := Marshal(NewSequence().Append(NewInteger(1), tree))
	got := build(func(b *Builder) {
		b.Begin(ClassUniversal, TagSequence)
		b.Int(1)
		b.Packet(tree)
		b.End()
	})
	if !bytes.Equal(got, want) {
		t.Errorf("Packet bridge diverges:\n got  % x\n want % x", got, want)
	}
}

func TestBuilderResetReusesBuffer(t *testing.T) {
	var b Builder
	b.Reset(make([]byte, 0, 256))
	b.Begin(ClassUniversal, TagSequence)
	b.OctetString("first")
	b.End()
	first := append([]byte(nil), b.Bytes()...)
	buf := b.Bytes()
	b.Reset(buf[:0])
	b.Begin(ClassUniversal, TagSequence)
	b.OctetString("first")
	b.End()
	if !bytes.Equal(first, b.Bytes()) {
		t.Error("re-encoding after Reset changed the output")
	}
	if &buf[0] != &b.Bytes()[0] {
		t.Error("Reset did not reuse the supplied buffer")
	}
}

// TestReadPacketBufReuse verifies the server-side framing contract: the
// frame buffer is recycled across messages once it has grown to the stream's
// working size, and each decode is correct despite the reuse.
func TestReadPacketBufReuse(t *testing.T) {
	var stream []byte
	const n = 8
	for i := 0; i < n; i++ {
		stream = Append(stream, NewSequence().Append(
			NewInteger(int64(i)),
			NewOctetString(strings.Repeat("v", 64)),
		))
	}
	r := bytes.NewReader(stream)
	var buf []byte
	var lastCap int
	for i := 0; i < n; i++ {
		var p *Packet
		var err error
		p, buf, err = ReadPacketBuf(r, buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		got, err := p.Child(0).Int64()
		if err != nil || got != int64(i) {
			t.Fatalf("message %d: decoded id %d, err %v", i, got, err)
		}
		if s := p.Child(1).Str(); s != strings.Repeat("v", 64) {
			t.Fatalf("message %d: bad payload %q", i, s)
		}
		if i > 0 && cap(buf) != lastCap {
			t.Fatalf("message %d: frame buffer reallocated (cap %d -> %d) for equal-size frames",
				i, lastCap, cap(buf))
		}
		lastCap = cap(buf)
	}
}

// TestReadPacketBufCopiesStrings pins the safety half of the reuse
// contract: Str on a reused-buffer packet must copy, so values survive the
// next frame overwriting the buffer.
func TestReadPacketBufCopiesStrings(t *testing.T) {
	var stream []byte
	stream = Append(stream, NewSequence().Append(NewOctetString("payload-one")))
	stream = Append(stream, NewSequence().Append(NewOctetString("payload-two!")))
	r := bytes.NewReader(stream)
	p1, buf, err := ReadPacketBuf(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := p1.Child(0).Str()
	if _, _, err := ReadPacketBuf(r, buf); err != nil {
		t.Fatal(err)
	}
	if s1 != "payload-one" {
		t.Errorf("string from reused buffer corrupted by next frame: %q", s1)
	}
}

// TestReadPacketStrView checks the zero-copy side: packets from ReadPacket
// own their frame and Str returns the right contents.
func TestReadPacketStrView(t *testing.T) {
	enc := Marshal(NewSequence().Append(NewOctetString("zero-copy"), NewOctetString("")))
	p, err := ReadPacket(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Child(0).Str(); s != "zero-copy" {
		t.Errorf("Str on owned frame: %q", s)
	}
	if s := p.Child(1).Str(); s != "" {
		t.Errorf("Str on empty value: %q", s)
	}
}

func BenchmarkBuilderSequence(b *testing.B) {
	b.ReportAllocs()
	var bld Builder
	var buf []byte
	for i := 0; i < b.N; i++ {
		bld.Reset(buf[:0])
		bld.Begin(ClassUniversal, TagSequence)
		bld.Int(7)
		bld.OctetString("hn=hostX, o=grid")
		bld.Begin(ClassUniversal, TagSequence)
		bld.OctetString("objectclass")
		bld.OctetString("computer")
		bld.End()
		bld.End()
		buf = bld.Bytes()
	}
}
