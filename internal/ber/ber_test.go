package ber

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntegerRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 1 << 20,
		-(1 << 20), 1<<62 - 1, -(1 << 62), 9223372036854775807, -9223372036854775808}
	for _, v := range cases {
		p := NewInteger(v)
		got, err := p.Int64()
		if err != nil {
			t.Fatalf("Int64(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d: got %d", v, got)
		}
	}
}

func TestIntegerMinimalEncoding(t *testing.T) {
	// X.690 8.3.2: the encoding must be as short as possible.
	cases := map[int64]int{0: 1, 1: 1, 127: 1, 128: 2, -128: 1, -129: 2, 255: 2, 65535: 3}
	for v, want := range cases {
		if got := len(AppendInt64(nil, v)); got != want {
			t.Errorf("AppendInt64(%d): %d octets, want %d", v, got, want)
		}
	}
}

func TestIntegerRoundTripQuick(t *testing.T) {
	f := func(v int64) bool {
		got, err := ParseInt64(AppendInt64(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBooleanRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		got, err := NewBoolean(v).Bool()
		if err != nil || got != v {
			t.Errorf("boolean %v: got %v err %v", v, got, err)
		}
	}
}

func TestMarshalDecodeSimple(t *testing.T) {
	seq := NewSequence().Append(
		NewInteger(5),
		NewOctetString("cn=test"),
		NewBoolean(true),
	)
	b := Marshal(seq)
	got, err := DecodeFull(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Constructed || got.Tag != TagSequence || len(got.Children) != 3 {
		t.Fatalf("decoded %s", got)
	}
	if v, _ := got.Child(0).Int64(); v != 5 {
		t.Errorf("child 0 = %d, want 5", v)
	}
	if got.Child(1).Str() != "cn=test" {
		t.Errorf("child 1 = %q", got.Child(1).Str())
	}
	if v, _ := got.Child(2).Bool(); !v {
		t.Error("child 2 = false, want true")
	}
}

func TestGoldenEncodings(t *testing.T) {
	// Known-good encodings checked against RFC 4511 examples and OpenLDAP.
	cases := []struct {
		name string
		p    *Packet
		want []byte
	}{
		{"int 0", NewInteger(0), []byte{0x02, 0x01, 0x00}},
		{"int 127", NewInteger(127), []byte{0x02, 0x01, 0x7f}},
		{"int 128", NewInteger(128), []byte{0x02, 0x02, 0x00, 0x80}},
		{"int -128", NewInteger(-128), []byte{0x02, 0x01, 0x80}},
		{"bool true", NewBoolean(true), []byte{0x01, 0x01, 0xff}},
		{"null", NewNull(), []byte{0x05, 0x00}},
		{"octets", NewOctetString("hi"), []byte{0x04, 0x02, 'h', 'i'}},
		{"empty seq", NewSequence(), []byte{0x30, 0x00}},
		{"ctx str", NewContextString(7, "x"), []byte{0x87, 0x01, 'x'}},
		{"appl constructed", NewConstructed(ClassApplication, 3).Append(NewNull()), []byte{0x63, 0x02, 0x05, 0x00}},
	}
	for _, tc := range cases {
		if got := Marshal(tc.p); !bytes.Equal(got, tc.want) {
			t.Errorf("%s: got % x, want % x", tc.name, got, tc.want)
		}
	}
}

func TestHighTagNumbers(t *testing.T) {
	for _, tag := range []uint32{31, 32, 127, 128, 16383, 16384, 1 << 20} {
		p := &Packet{Class: ClassContext, Tag: tag, Value: []byte("v")}
		got, err := DecodeFull(Marshal(p))
		if err != nil {
			t.Fatalf("tag %d: %v", tag, err)
		}
		if got.Tag != tag || got.Class != ClassContext || got.Str() != "v" {
			t.Errorf("tag %d: decoded %s", tag, got)
		}
	}
}

func TestLongFormLength(t *testing.T) {
	big := make([]byte, 300)
	for i := range big {
		big[i] = byte(i)
	}
	p := NewOctetStringBytes(big)
	enc := Marshal(p)
	// 300 > 127 so length must use the long form: 0x82 0x01 0x2c.
	if enc[1] != 0x82 || enc[2] != 0x01 || enc[3] != 0x2c {
		t.Fatalf("length encoding: % x", enc[:4])
	}
	got, err := DecodeFull(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, big) {
		t.Error("long-form payload mismatch")
	}
}

func TestNonMinimalLengthAccepted(t *testing.T) {
	// BER (unlike DER) permits non-minimal length octets; peers emit them.
	enc := []byte{0x04, 0x82, 0x00, 0x02, 'h', 'i'}
	got, err := DecodeFull(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Str() != "hi" {
		t.Errorf("got %q", got.Str())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"tag only", []byte{0x30}},
		{"truncated contents", []byte{0x04, 0x05, 'a'}},
		{"indefinite", []byte{0x30, 0x80, 0x00, 0x00}},
		{"huge length", []byte{0x04, 0x84, 0x7f, 0xff, 0xff, 0xff}},
		{"trailing garbage", []byte{0x05, 0x00, 0xff}},
		{"bad high tag", []byte{0x1f, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}},
	}
	for _, tc := range cases {
		if _, err := DecodeFull(tc.in); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDecodeDepthLimit(t *testing.T) {
	// Construct nesting deeper than MaxDepth by hand.
	b := []byte{0x05, 0x00}
	for i := 0; i < MaxDepth+2; i++ {
		inner := b
		b = append([]byte{0x30}, appendLength(nil, len(inner))...)
		b = append(b, inner...)
	}
	if _, err := DecodeFull(b); err != ErrTooDeep {
		t.Errorf("got %v, want ErrTooDeep", err)
	}
}

func TestReadPacketStream(t *testing.T) {
	var stream bytes.Buffer
	msgs := []*Packet{
		NewSequence().Append(NewInteger(1), NewOctetString("one")),
		NewSequence().Append(NewInteger(2), NewOctetString("two")),
		NewOctetStringBytes(make([]byte, 200)), // long-form length
	}
	for _, m := range msgs {
		stream.Write(Marshal(m))
	}
	for i, want := range msgs {
		got, err := ReadPacket(&stream)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !bytes.Equal(Marshal(got), Marshal(want)) {
			t.Errorf("msg %d: mismatch", i)
		}
	}
	if _, err := ReadPacket(&stream); err != io.EOF {
		t.Errorf("after stream end: %v, want EOF", err)
	}
}

func TestReadPacketHighTag(t *testing.T) {
	p := &Packet{Class: ClassContext, Tag: 500, Value: []byte("hello")}
	got, err := ReadPacket(bytes.NewReader(Marshal(p)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 500 || got.Str() != "hello" {
		t.Errorf("decoded %s %q", got, got.Str())
	}
}

func TestReadPacketTruncated(t *testing.T) {
	enc := Marshal(NewOctetString("hello world"))
	for cut := 1; cut < len(enc); cut++ {
		if _, err := ReadPacket(bytes.NewReader(enc[:cut])); err == nil {
			t.Errorf("cut at %d: expected error", cut)
		}
	}
}

// randomPacket builds a random element tree for the round-trip property.
func randomPacket(r *rand.Rand, depth int) *Packet {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return NewInteger(r.Int63() - r.Int63())
		case 1:
			b := make([]byte, r.Intn(40))
			r.Read(b)
			return NewOctetStringBytes(b)
		case 2:
			return NewBoolean(r.Intn(2) == 0)
		default:
			return &Packet{Class: Class(r.Intn(4)), Tag: uint32(r.Intn(1 << 14)), Value: []byte{byte(r.Intn(256))}}
		}
	}
	p := NewConstructed(Class(r.Intn(4)), uint32(r.Intn(200)))
	// Universal constructed elements keep standard composite tags to stay
	// well-formed; other classes may use any tag.
	if p.Class == ClassUniversal {
		p.Tag = TagSequence
	}
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		p.Append(randomPacket(r, depth-1))
	}
	return p
}

func packetsEqual(a, b *Packet) bool {
	if a.Class != b.Class || a.Constructed != b.Constructed || a.Tag != b.Tag {
		return false
	}
	if !a.Constructed {
		return bytes.Equal(a.Value, b.Value)
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !packetsEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := randomPacket(r, 5)
		got, err := DecodeFull(Marshal(p))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !packetsEqual(p, got) {
			t.Fatalf("iter %d: tree mismatch:\n in %v\nout %v", i, p, got)
		}
	}
}

func TestRoundTripQuickStrings(t *testing.T) {
	f := func(s string) bool {
		got, err := DecodeFull(Marshal(NewOctetString(s)))
		return err == nil && got.Str() == s
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPacketStringDiagnostics(t *testing.T) {
	if s := NewSequence().String(); s == "" {
		t.Error("empty diagnostic")
	}
	var nilP *Packet
	if nilP.String() != "<nil>" {
		t.Error("nil diagnostic")
	}
	if !reflect.DeepEqual(NewNull().Value, []byte(nil)) {
		t.Error("null has contents")
	}
}

func BenchmarkMarshalSearchLikeMessage(b *testing.B) {
	msg := NewSequence().Append(
		NewInteger(7),
		NewConstructed(ClassApplication, 3).Append(
			NewOctetString("hn=hostX, o=grid"),
			NewEnumerated(2),
			NewEnumerated(0),
			NewInteger(0),
			NewInteger(0),
			NewBoolean(false),
			NewConstructed(ClassContext, 3).Append(
				NewOctetString("objectclass"),
				NewOctetString("computer"),
			),
			NewSequence().Append(NewOctetString("cpu"), NewOctetString("load5")),
		),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(msg)
	}
}

func BenchmarkDecodeSearchLikeMessage(b *testing.B) {
	msg := Marshal(NewSequence().Append(
		NewInteger(7),
		NewConstructed(ClassApplication, 3).Append(
			NewOctetString("hn=hostX, o=grid"),
			NewEnumerated(2),
			NewConstructed(ClassContext, 3).Append(
				NewOctetString("objectclass"),
				NewOctetString("computer"),
			),
		),
	))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFull(msg); err != nil {
			b.Fatal(err)
		}
	}
}
