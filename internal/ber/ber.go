// Package ber implements the subset of ITU-T X.690 Basic Encoding Rules
// needed to carry LDAPv3 protocol messages (RFC 4511) over a byte stream.
//
// The standard library's encoding/asn1 package implements DER marshaling of
// Go structs, which is both too strict (LDAP peers may emit non-minimal BER
// lengths) and too rigid (LDAP messages are deeply tagged unions that do not
// map onto static struct types). This package instead models a BER element
// as an explicit tree of Packets that callers construct and inspect by hand,
// mirroring how the OpenLDAP codec that MDS-2 builds on works.
//
// Only definite-length encodings are supported; LDAP never uses the
// indefinite form.
package ber

import (
	"errors"
	"fmt"
	"io"
	"unsafe"
)

// Class is the 2-bit tag class of a BER identifier octet.
type Class uint8

// Tag classes.
const (
	ClassUniversal   Class = 0
	ClassApplication Class = 1
	ClassContext     Class = 2
	ClassPrivate     Class = 3
)

func (c Class) String() string {
	switch c {
	case ClassUniversal:
		return "universal"
	case ClassApplication:
		return "application"
	case ClassContext:
		return "context"
	case ClassPrivate:
		return "private"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Universal tag numbers used by LDAP.
const (
	TagBoolean     uint32 = 0x01
	TagInteger     uint32 = 0x02
	TagOctetString uint32 = 0x04
	TagNull        uint32 = 0x05
	TagEnumerated  uint32 = 0x0a
	TagSequence    uint32 = 0x10
	TagSet         uint32 = 0x11
)

// Limits protecting the decoder from hostile or corrupt input.
const (
	// MaxElementSize bounds the contents length of any single element.
	MaxElementSize = 16 << 20
	// MaxDepth bounds the nesting depth of constructed elements.
	MaxDepth = 64
)

// Decoding errors.
var (
	ErrTruncated  = errors.New("ber: truncated element")
	ErrTooLarge   = errors.New("ber: element exceeds size limit")
	ErrTooDeep    = errors.New("ber: nesting exceeds depth limit")
	ErrIndefinite = errors.New("ber: indefinite lengths are not supported")
	ErrBadTag     = errors.New("ber: malformed tag")
)

// Packet is one BER element: either a primitive holding raw contents bytes,
// or a constructed element holding child elements. The zero value is an
// empty universal primitive.
type Packet struct {
	Class       Class
	Constructed bool
	Tag         uint32
	Value       []byte    // contents when !Constructed
	Children    []*Packet // contents when Constructed
	// viewOK marks a packet decoded from a buffer the decoder owns outright
	// (ReadPacket): Str may then return a zero-copy view of Value, since the
	// backing array is immutable for as long as any view keeps it alive.
	// Packets decoded from caller-reused buffers (Decode, ReadPacketBuf)
	// leave it false and Str copies.
	viewOK bool
	// san tracks the reuse generation of the frame buffer this packet
	// aliases; zero-sized outside -tags mdsdebug builds.
	san packetSan
}

// NewSequence returns an empty universal SEQUENCE.
func NewSequence() *Packet {
	return &Packet{Class: ClassUniversal, Constructed: true, Tag: TagSequence}
}

// NewSet returns an empty universal SET.
func NewSet() *Packet {
	return &Packet{Class: ClassUniversal, Constructed: true, Tag: TagSet}
}

// NewConstructed returns an empty constructed element with the given class
// and tag, used for APPLICATION- and context-tagged LDAP composites.
func NewConstructed(class Class, tag uint32) *Packet {
	return &Packet{Class: class, Constructed: true, Tag: tag}
}

// NewBoolean returns a universal BOOLEAN element.
func NewBoolean(v bool) *Packet {
	b := byte(0x00)
	if v {
		b = 0xff
	}
	return &Packet{Class: ClassUniversal, Tag: TagBoolean, Value: []byte{b}}
}

// NewInteger returns a universal INTEGER element holding v in the minimal
// two's-complement form.
func NewInteger(v int64) *Packet {
	return &Packet{Class: ClassUniversal, Tag: TagInteger, Value: AppendInt64(nil, v)}
}

// NewEnumerated returns a universal ENUMERATED element.
func NewEnumerated(v int64) *Packet {
	return &Packet{Class: ClassUniversal, Tag: TagEnumerated, Value: AppendInt64(nil, v)}
}

// NewOctetString returns a universal OCTET STRING holding a copy of s.
func NewOctetString(s string) *Packet {
	return &Packet{Class: ClassUniversal, Tag: TagOctetString, Value: []byte(s)}
}

// NewOctetStringBytes returns a universal OCTET STRING holding b (not copied).
func NewOctetStringBytes(b []byte) *Packet {
	return &Packet{Class: ClassUniversal, Tag: TagOctetString, Value: b}
}

// NewNull returns a universal NULL element.
func NewNull() *Packet {
	return &Packet{Class: ClassUniversal, Tag: TagNull}
}

// NewContextString returns a context-tagged primitive holding s, the common
// LDAP idiom for IMPLICIT OCTET STRING fields.
func NewContextString(tag uint32, s string) *Packet {
	return &Packet{Class: ClassContext, Tag: tag, Value: []byte(s)}
}

// Append adds children to a constructed packet and returns it, enabling
// fluent message construction.
func (p *Packet) Append(children ...*Packet) *Packet {
	p.Children = append(p.Children, children...)
	return p
}

// Child returns the i'th child, or nil if out of range.
func (p *Packet) Child(i int) *Packet {
	if i < 0 || i >= len(p.Children) {
		return nil
	}
	return p.Children[i]
}

// Bool interprets a primitive contents as a BOOLEAN.
func (p *Packet) Bool() (bool, error) {
	p.san.check()
	if p.Constructed || len(p.Value) != 1 {
		return false, fmt.Errorf("ber: not a boolean: %s", p)
	}
	return p.Value[0] != 0, nil
}

// Int64 interprets a primitive contents as a two's-complement INTEGER or
// ENUMERATED of at most 8 octets.
func (p *Packet) Int64() (int64, error) {
	p.san.check()
	if p.Constructed {
		return 0, fmt.Errorf("ber: not an integer: constructed %s", p)
	}
	return ParseInt64(p.Value)
}

// Str returns the primitive contents as a string. For packets decoded by
// ReadPacket the string is a zero-copy view into the decoder-owned frame
// buffer; otherwise it is a copy.
func (p *Packet) Str() string {
	p.san.check()
	if p.viewOK && len(p.Value) > 0 {
		return unsafe.String(&p.Value[0], len(p.Value))
	}
	return string(p.Value)
}

// String renders a compact diagnostic form of the element tree.
func (p *Packet) String() string {
	if p == nil {
		return "<nil>"
	}
	if p.Constructed {
		return fmt.Sprintf("%s[%d]{%d children}", p.Class, p.Tag, len(p.Children))
	}
	return fmt.Sprintf("%s[%d](%d bytes)", p.Class, p.Tag, len(p.Value))
}

// AppendInt64 appends the minimal two's-complement encoding of v to dst.
func AppendInt64(dst []byte, v int64) []byte {
	n := 1
	for m := v; m > 127 || m < -128; m >>= 8 {
		n++
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(uint(i)*8)))
	}
	return dst
}

// ParseInt64 decodes a two's-complement integer of 1..8 octets.
func ParseInt64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, errors.New("ber: empty integer")
	}
	if len(b) > 8 {
		return 0, errors.New("ber: integer too large")
	}
	v := int64(0)
	if b[0]&0x80 != 0 {
		v = -1 // sign-extend
	}
	for _, c := range b {
		v = v<<8 | int64(c)
	}
	return v, nil
}

// Marshal serializes the element tree into a fresh byte slice.
func Marshal(p *Packet) []byte {
	return appendPacket(nil, p)
}

// Append serializes the element tree onto dst and returns the extended
// slice. Hot encode paths (the LDAP client and server write loops) use it
// with pooled buffers to avoid a fresh allocation per message.
func Append(dst []byte, p *Packet) []byte {
	return appendPacket(dst, p)
}

func appendPacket(dst []byte, p *Packet) []byte {
	dst = appendIdentifier(dst, p)
	if p.Constructed {
		var body []byte
		for _, c := range p.Children {
			body = appendPacket(body, c)
		}
		dst = appendLength(dst, len(body))
		return append(dst, body...)
	}
	dst = appendLength(dst, len(p.Value))
	return append(dst, p.Value...)
}

func appendIdentifier(dst []byte, p *Packet) []byte {
	return appendTag(dst, p.Class, p.Constructed, p.Tag)
}

func appendTag(dst []byte, class Class, constructed bool, tag uint32) []byte {
	first := byte(class) << 6
	if constructed {
		first |= 0x20
	}
	if tag < 0x1f {
		return append(dst, first|byte(tag))
	}
	dst = append(dst, first|0x1f)
	// High-tag-number form: base-128, most significant group first.
	var groups [5]byte
	n := 0
	for t := tag; ; t >>= 7 {
		groups[n] = byte(t & 0x7f)
		n++
		if t < 0x80 {
			break
		}
	}
	for i := n - 1; i > 0; i-- {
		dst = append(dst, groups[i]|0x80)
	}
	return append(dst, groups[0])
}

func appendLength(dst []byte, n int) []byte {
	if n < 0x80 {
		return append(dst, byte(n))
	}
	var tmp [8]byte
	k := 0
	for m := n; m > 0; m >>= 8 {
		tmp[k] = byte(m)
		k++
	}
	dst = append(dst, 0x80|byte(k))
	for i := k - 1; i >= 0; i-- {
		dst = append(dst, tmp[i])
	}
	return dst
}

// Decode parses exactly one element from the front of b, returning the
// element and any remaining bytes.
func Decode(b []byte) (*Packet, []byte, error) {
	var d decoder
	return d.decode(b, 0)
}

// DecodeFull parses exactly one element that must consume all of b.
func DecodeFull(b []byte) (*Packet, error) {
	var d decoder
	return d.decodeFull(b)
}

// decoder carries per-message decode state: a chunked arena so one frame's
// worth of Packet nodes costs a handful of allocations instead of one per
// element, and the ownership flag propagated onto every node. Arena chunks
// are never reallocated, so node pointers stay stable.
type decoder struct {
	arena  []Packet
	viewOK bool
	san    packetSan
}

func (d *decoder) node() *Packet {
	if len(d.arena) == 0 {
		d.arena = make([]Packet, 32)
	}
	p := &d.arena[0]
	d.arena = d.arena[1:]
	p.viewOK = d.viewOK
	p.san = d.san
	return p
}

func (d *decoder) decodeFull(b []byte) (*Packet, error) {
	p, rest, err := d.decode(b, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ber: %d trailing bytes after element", len(rest))
	}
	return p, nil
}

func (d *decoder) decode(b []byte, depth int) (*Packet, []byte, error) {
	if depth > MaxDepth {
		return nil, nil, ErrTooDeep
	}
	p := d.node()
	rest, err := parseIdentifier(b, p)
	if err != nil {
		return nil, nil, err
	}
	length, rest, err := parseLength(rest)
	if err != nil {
		return nil, nil, err
	}
	if length > len(rest) {
		return nil, nil, ErrTruncated
	}
	contents, rest := rest[:length], rest[length:]
	if !p.Constructed {
		p.Value = contents
		return p, rest, nil
	}
	for len(contents) > 0 {
		var child *Packet
		child, contents, err = d.decode(contents, depth+1)
		if err != nil {
			return nil, nil, err
		}
		p.Children = append(p.Children, child)
	}
	return p, rest, nil
}

func parseIdentifier(b []byte, p *Packet) ([]byte, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	first := b[0]
	p.Class = Class(first >> 6)
	p.Constructed = first&0x20 != 0
	tag := uint32(first & 0x1f)
	b = b[1:]
	if tag != 0x1f {
		p.Tag = tag
		return b, nil
	}
	// High-tag-number form.
	tag = 0
	for i := 0; ; i++ {
		if len(b) == 0 {
			return nil, ErrTruncated
		}
		if i >= 5 {
			return nil, ErrBadTag
		}
		c := b[0]
		b = b[1:]
		tag = tag<<7 | uint32(c&0x7f)
		if c&0x80 == 0 {
			break
		}
	}
	if tag < 0x1f {
		return nil, ErrBadTag // non-minimal high-tag form
	}
	p.Tag = tag
	return b, nil
}

func parseLength(b []byte) (int, []byte, error) {
	if len(b) == 0 {
		return 0, nil, ErrTruncated
	}
	first := b[0]
	b = b[1:]
	if first < 0x80 {
		return int(first), b, nil
	}
	n := int(first & 0x7f)
	if n == 0 {
		return 0, nil, ErrIndefinite
	}
	if n > 4 {
		return 0, nil, ErrTooLarge
	}
	if len(b) < n {
		return 0, nil, ErrTruncated
	}
	length := 0
	for i := 0; i < n; i++ {
		length = length<<8 | int(b[i])
	}
	if length > MaxElementSize {
		return 0, nil, ErrTooLarge
	}
	return length, b[n:], nil
}

// readFrameHeader reads the identifier and length octets of one element
// into hdr (a small stack buffer) and returns the header bytes and the
// contents length. Reads go through the caller's (typically buffered)
// reader one field at a time — length-prefix framing, no byte-at-a-time
// scan of the body.
func readFrameHeader(r io.Reader, hdr []byte) ([]byte, int, error) {
	hdr = hdr[:0]
	var one [1]byte
	readByte := func() (byte, error) {
		if br, ok := r.(io.ByteReader); ok {
			return br.ReadByte()
		}
		_, err := io.ReadFull(r, one[:])
		return one[0], err
	}
	first, err := readByte()
	if err != nil {
		return nil, 0, err
	}
	hdr = append(hdr, first)
	// Finish the identifier if it uses the high-tag-number form.
	if first&0x1f == 0x1f {
		for {
			c, err := readByte()
			if err != nil {
				return nil, 0, err
			}
			hdr = append(hdr, c)
			if len(hdr) > 6 {
				return nil, 0, ErrBadTag
			}
			if c&0x80 == 0 {
				break
			}
		}
	}
	lenOctet, err := readByte()
	if err != nil {
		return nil, 0, err
	}
	hdr = append(hdr, lenOctet)
	length := 0
	switch {
	case lenOctet < 0x80:
		length = int(lenOctet)
	case lenOctet == 0x80:
		return nil, 0, ErrIndefinite
	default:
		n := int(lenOctet & 0x7f)
		if n > 4 {
			return nil, 0, ErrTooLarge
		}
		for i := 0; i < n; i++ {
			c, err := readByte()
			if err != nil {
				return nil, 0, err
			}
			hdr = append(hdr, c)
			length = length<<8 | int(c)
		}
	}
	if length > MaxElementSize {
		return nil, 0, ErrTooLarge
	}
	return hdr, length, nil
}

// ReadPacket reads exactly one BER element from r, as required to frame
// LDAP messages on a stream connection. It tolerates long-form lengths but
// rejects indefinite ones. The frame buffer is allocated once at its exact
// size and owned by the returned Packet, so Str may hand out zero-copy
// views into it.
func ReadPacket(r io.Reader) (*Packet, error) {
	var hdrArr [12]byte
	hdr, length, err := readFrameHeader(r, hdrArr[:0])
	if err != nil {
		return nil, err
	}
	buf := make([]byte, len(hdr)+length)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[len(hdr):]); err != nil {
		return nil, err
	}
	d := decoder{viewOK: true}
	return d.decodeFull(buf)
}

// ReadPacketBuf is ReadPacket with a caller-reused frame buffer: the
// element is framed into buf (grown as needed) and the possibly-grown
// buffer is returned for the next call. The returned Packet and everything
// reachable from it alias buf, so the caller must be completely done with
// the previous Packet — including copying out any []byte or Str values it
// intends to keep — before calling again. Server read loops use this to
// decode a long request stream with no per-message frame allocation.
func ReadPacketBuf(r io.Reader, buf []byte) (*Packet, []byte, error) {
	var hdrArr [12]byte
	hdr, length, err := readFrameHeader(r, hdrArr[:0])
	if err != nil {
		return nil, buf, err
	}
	total := len(hdr) + length
	if cap(buf) < total {
		buf = make([]byte, total)
	} else {
		buf = buf[:total]
	}
	san := sanRecycle(buf)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[len(hdr):]); err != nil {
		return nil, buf, err
	}
	d := decoder{san: san}
	p, err := d.decodeFull(buf)
	return p, buf, err
}
