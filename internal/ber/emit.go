package ber

// This file is the encode fast path: a Builder that emits BER elements
// directly into a byte slice, without constructing the intermediate Packet
// tree that Marshal/Append serialize. Output is byte-for-byte identical to
// the tree encoder (minimal definite lengths, identical tag forms) — the
// tree path is kept as the reference implementation and the differential
// test in internal/ldap pins the equivalence.

// Builder appends BER elements to a buffer. Constructed elements are opened
// with Begin and closed with End; because BER uses length-prefixed framing
// and the length isn't known until the body is built, Begin reserves a
// single length octet and End back-patches it, shifting the body right only
// in the rare case a long-form length is needed (body ≥ 128 bytes).
//
// The zero value is ready to use; Reset rearms it around a caller-supplied
// (typically pooled) buffer.
type Builder struct {
	buf []byte
	// stack holds the offsets of the reserved length octet for each open
	// constructed element, innermost last.
	stack []int
	arr   [16]int
}

// Reset discards state and arms the builder to append onto buf (which may
// be nil or a pooled slice with spare capacity).
func (b *Builder) Reset(buf []byte) {
	b.buf = buf
	b.stack = b.arr[:0]
}

// Bytes returns the encoded buffer. All Begin calls must have been matched
// by End, otherwise lengths are still placeholders.
func (b *Builder) Bytes() []byte { return b.buf }

// Len returns the current encoded size.
func (b *Builder) Len() int { return len(b.buf) }

// Begin opens a constructed element with the given class and tag.
func (b *Builder) Begin(class Class, tag uint32) {
	b.buf = appendTag(b.buf, class, true, tag)
	b.stack = append(b.stack, len(b.buf))
	b.buf = append(b.buf, 0) // length placeholder, patched by End
}

// End closes the innermost open constructed element, back-patching its
// length octet(s).
func (b *Builder) End() {
	pos := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	n := len(b.buf) - pos - 1
	if n < 0x80 {
		b.buf[pos] = byte(n)
		return
	}
	// Long form: the length needs 1+k octets, so shift the body right by k
	// and write 0x80|k followed by the big-endian length.
	k := 0
	for m := n; m > 0; m >>= 8 {
		k++
	}
	b.buf = append(b.buf, make([]byte, k)...)
	copy(b.buf[pos+1+k:], b.buf[pos+1:len(b.buf)-k])
	b.buf[pos] = 0x80 | byte(k)
	for i := 0; i < k; i++ {
		b.buf[pos+1+i] = byte(n >> (uint(k-1-i) * 8))
	}
}

// BeginPrimitive opens a primitive element whose contents are appended
// incrementally with RawString/RawBytes; close with End. It uses the same
// length back-patching as Begin, letting callers emit composite string
// values (e.g. a rendered DN) without first assembling them elsewhere.
func (b *Builder) BeginPrimitive(class Class, tag uint32) {
	b.buf = appendTag(b.buf, class, false, tag)
	b.stack = append(b.stack, len(b.buf))
	b.buf = append(b.buf, 0) // length placeholder, patched by End
}

// RawString appends raw contents bytes inside the innermost open element.
func (b *Builder) RawString(s string) { b.buf = append(b.buf, s...) }

// RawBytes appends raw contents bytes inside the innermost open element.
func (b *Builder) RawBytes(v []byte) { b.buf = append(b.buf, v...) }

// Primitive emits a primitive element with raw contents.
func (b *Builder) Primitive(class Class, tag uint32, contents []byte) {
	b.buf = appendTag(b.buf, class, false, tag)
	b.buf = appendLength(b.buf, len(contents))
	b.buf = append(b.buf, contents...)
}

// PrimitiveString emits a primitive element with string contents.
func (b *Builder) PrimitiveString(class Class, tag uint32, s string) {
	b.buf = appendTag(b.buf, class, false, tag)
	b.buf = appendLength(b.buf, len(s))
	b.buf = append(b.buf, s...)
}

// PrimitiveInt emits a primitive element whose contents are the minimal
// two's-complement encoding of v (IMPLICIT INTEGER fields such as
// AbandonRequest's message ID).
func (b *Builder) PrimitiveInt(class Class, tag uint32, v int64) {
	n := 1
	for m := v; m > 127 || m < -128; m >>= 8 {
		n++
	}
	b.buf = appendTag(b.buf, class, false, tag)
	b.buf = append(b.buf, byte(n))
	for i := n - 1; i >= 0; i-- {
		b.buf = append(b.buf, byte(v>>(uint(i)*8)))
	}
}

// OctetString emits a universal OCTET STRING.
func (b *Builder) OctetString(s string) {
	b.PrimitiveString(ClassUniversal, TagOctetString, s)
}

// OctetStringBytes emits a universal OCTET STRING from a byte slice.
func (b *Builder) OctetStringBytes(v []byte) {
	b.Primitive(ClassUniversal, TagOctetString, v)
}

// ContextString emits a context-tagged primitive holding s (the LDAP idiom
// for IMPLICIT OCTET STRING fields).
func (b *Builder) ContextString(tag uint32, s string) {
	b.PrimitiveString(ClassContext, tag, s)
}

// Int emits a universal INTEGER in minimal two's-complement form.
func (b *Builder) Int(v int64) { b.PrimitiveInt(ClassUniversal, TagInteger, v) }

// Enum emits a universal ENUMERATED.
func (b *Builder) Enum(v int64) { b.PrimitiveInt(ClassUniversal, TagEnumerated, v) }

// Bool emits a universal BOOLEAN.
func (b *Builder) Bool(v bool) {
	c := byte(0x00)
	if v {
		c = 0xff
	}
	b.buf = appendTag(b.buf, ClassUniversal, false, TagBoolean)
	b.buf = append(b.buf, 1, c)
}

// Null emits a universal NULL.
func (b *Builder) Null() {
	b.buf = appendTag(b.buf, ClassUniversal, false, TagNull)
	b.buf = append(b.buf, 0)
}

// Packet emits a pre-built element tree, bridging code that still
// constructs Packets (e.g. opaque control values) into a Builder stream.
func (b *Builder) Packet(p *Packet) {
	b.buf = appendPacket(b.buf, p)
}
