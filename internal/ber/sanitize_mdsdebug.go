//go:build mdsdebug

package ber

// Use-after-recycle sanitizer, debug flavor. ReadPacketBuf hands out
// Packets that alias a caller-reused frame buffer; the contract is that the
// previous Packet (and every []byte/view derived from it) is dead the
// moment the next frame is read into the same buffer. Violations are
// normally silent data corruption — the old Packet's Value slices suddenly
// contain the new message's bytes. Under -tags mdsdebug every recycle
//
//   - retires the previous frame's generation, so accessors on a stale
//     Packet panic deterministically at the use site, and
//   - scribbles 0xDB over the buffer before the new frame lands, so even
//     raw slice aliasing that bypasses the accessors shows up as garbage
//     instead of plausible stale data.
//
// The release twin (sanitize_release.go) compiles all of this to nothing:
// packetSan is zero-sized and the hooks are empty leaf calls.

import (
	"sync"
	"sync/atomic"
)

// frameState is one reuse generation of one frame buffer.
type frameState struct {
	retired atomic.Bool
}

// packetSan rides on every decoded Packet and points at the generation of
// the frame it aliases; nil for packets that own their memory (ReadPacket,
// Decode into fresh buffers, builder-made packets).
type packetSan struct {
	f *frameState
}

// frameReg maps a frame buffer's backing array (by address of its first
// byte) to its live generation. Buffers are long-lived per connection, so
// the registry stays small; debug builds don't reclaim entries.
var frameReg sync.Map // *byte → *frameState

// sanRecycle marks the previous generation of buf dead, poisons the bytes,
// and arms a new generation. Called by ReadPacketBuf after sizing the
// buffer and before framing the new element into it.
func sanRecycle(buf []byte) packetSan {
	if cap(buf) == 0 {
		return packetSan{}
	}
	full := buf[:cap(buf)]
	key := &full[0]
	if old, ok := frameReg.Load(key); ok {
		old.(*frameState).retired.Store(true)
		for i := range full {
			full[i] = 0xDB
		}
	}
	f := &frameState{}
	frameReg.Store(key, f)
	return packetSan{f: f}
}

// check panics if the packet's frame has been recycled since it was decoded.
func (s packetSan) check() {
	if s.f != nil && s.f.retired.Load() {
		panic("ber: use of Packet after its frame buffer was recycled (mdsdebug); clone values before the next ReadPacketBuf")
	}
}
