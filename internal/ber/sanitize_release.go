//go:build !mdsdebug

package ber

// Release twin of the use-after-recycle sanitizer (sanitize_mdsdebug.go):
// zero-sized state, empty hooks, no registry. Everything here inlines to
// nothing, keeping the hot decode path untouched.

type packetSan struct{}

func sanRecycle([]byte) packetSan { return packetSan{} }

func (packetSan) check() {}
