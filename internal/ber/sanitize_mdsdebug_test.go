//go:build mdsdebug

package ber

import (
	"bytes"
	"testing"
)

// Two OCTET STRING elements back to back: "foo", then "x". The second is
// shorter so part of the first frame survives only as poison.
var recycleStream = []byte{0x04, 3, 'f', 'o', 'o', 0x04, 1, 'x'}

func TestSanitizerCatchesUseAfterRecycle(t *testing.T) {
	r := bytes.NewReader(recycleStream)
	p1, buf, err := ReadPacketBuf(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.Str(); got != "foo" {
		t.Fatalf("first frame: got %q", got)
	}

	// Recycle the frame: p1 is now dead.
	stale := p1.Value
	if _, _, err := ReadPacketBuf(r, buf); err != nil {
		t.Fatal(err)
	}

	// Raw aliasing past the accessors sees the 0xDB scribble, not stale
	// plausible data (the second frame occupies only the first 3 bytes).
	if stale[1] != 0xDB || stale[2] != 0xDB {
		t.Fatalf("expected poisoned tail, got % x", stale)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Str on a recycled packet did not panic")
		}
	}()
	_ = p1.Str()
}

func TestSanitizerAllowsLivePackets(t *testing.T) {
	// Distinct buffers never interfere, and the current generation of a
	// reused buffer stays valid until the next read.
	r := bytes.NewReader(recycleStream)
	p1, buf, err := ReadPacketBuf(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.Str(); got != "foo" {
		t.Fatalf("got %q", got)
	}
	p2, _, err := ReadPacketBuf(r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Str(); got != "x" {
		t.Fatalf("got %q", got)
	}

	// ReadPacket owns its buffer outright; it is never recycled.
	p3, err := ReadPacket(bytes.NewReader(recycleStream[:5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPacketBuf(bytes.NewReader(recycleStream), nil); err != nil {
		t.Fatal(err)
	}
	if got := p3.Str(); got != "foo" {
		t.Fatalf("got %q", got)
	}
}
