// Package services implements the specialized higher-level services of
// §5.2 and §6 as library components over GRIP/GRRP: a directory "designed
// to locate idle multicomputers" that keeps careful track of changing load
// to maximize accuracy while minimizing query traffic, and a troubleshooter
// that watches resources for anomalous behaviour.
package services

import (
	"context"
	"sort"
	"sync"
	"time"

	"mds2/internal/grip"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// IdleHost is one machine the tracker currently classifies as idle.
type IdleHost struct {
	DN       ldap.DN
	Name     string
	CPUCount int64
	FreeCPUs int64
	Load5    float64
	// ObservedAt is when the classification was last confirmed.
	ObservedAt time.Time
}

// IdleTrackerConfig assembles an IdleTracker.
type IdleTrackerConfig struct {
	// Directory connects to the VO aggregate directory used for
	// membership discovery.
	Directory *grip.Client
	// Base is the VO namespace root to search.
	Base ldap.DN
	// ConnectProvider opens a GRIP client to a provider URL for direct
	// enquiry (the specialized directory pulls detail straight from
	// authoritative sources).
	ConnectProvider func(url ldap.URL) (*grip.Client, error)
	// Clock paces refresh; nil means wall clock.
	Clock softstate.Clock
	// IdleBelow classifies a machine idle when its utilization
	// (load5 / cpucount) is below this fraction (default 0.5).
	IdleBelow float64
	// MinCPUs ignores machines smaller than this (default 8 — it tracks
	// *multicomputers*).
	MinCPUs int64
	// BusyRefresh and IdleRefresh set the adaptive polling cadence: hosts
	// near the idle boundary are sampled faster than comfortably idle or
	// hopelessly busy ones (§5.2's "careful track of changing patterns of
	// multicomputer load ... while minimizing query traffic").
	BusyRefresh time.Duration
	IdleRefresh time.Duration
}

// IdleTracker is the §5.2 specialized aggregate directory: it discovers VO
// members through the standard hierarchy, then maintains its own
// load-indexed view with an adaptive update strategy.
type IdleTracker struct {
	cfg IdleTrackerConfig

	mu    sync.Mutex
	hosts map[string]*trackedHost // normalized DN -> state

	// Queries counts provider enquiries issued (the cost being minimized).
	Queries obs.Counter
}

type trackedHost struct {
	dn       ldap.DN
	name     string
	url      ldap.URL
	cpuCount int64

	freeCPUs  int64
	load5     float64
	idle      bool
	checkedAt time.Time
	nextCheck time.Time
}

// NewIdleTracker builds a tracker.
func NewIdleTracker(cfg IdleTrackerConfig) *IdleTracker {
	if cfg.Clock == nil {
		cfg.Clock = softstate.RealClock{}
	}
	if cfg.IdleBelow == 0 {
		cfg.IdleBelow = 0.5
	}
	if cfg.MinCPUs == 0 {
		cfg.MinCPUs = 8
	}
	if cfg.BusyRefresh == 0 {
		cfg.BusyRefresh = 30 * time.Second
	}
	if cfg.IdleRefresh == 0 {
		cfg.IdleRefresh = 5 * time.Minute
	}
	return &IdleTracker{cfg: cfg, hosts: map[string]*trackedHost{}}
}

// Discover refreshes VO membership from the aggregate directory: it reads
// the name index (no data chaining) and records candidate multicomputers.
func (t *IdleTracker) Discover() error {
	// The name index lists each registered provider with its namespace.
	services, err := t.cfg.Directory.Search(t.cfg.Base, "(&(objectclass=mdsservice)(mdstype=gris))")
	if err != nil {
		return err
	}
	now := t.cfg.Clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range services {
		urlStr := s.First("url")
		// The provider's own namespace (not the directory's grafted view)
		// is what direct enquiries must be rooted at.
		suffixStr := s.First("providersuffix")
		if suffixStr == "" {
			suffixStr = s.First("suffix")
		}
		if urlStr == "" || suffixStr == "" {
			continue
		}
		url, err := ldap.ParseURL(urlStr)
		if err != nil {
			continue
		}
		suffix, err := ldap.ParseDN(suffixStr)
		if err != nil {
			continue
		}
		key := suffix.Normalize()
		if _, known := t.hosts[key]; !known {
			t.hosts[key] = &trackedHost{dn: suffix, url: url, nextCheck: now}
		}
	}
	return nil
}

// Refresh polls the providers whose adaptive deadline has arrived,
// reclassifying them. It returns how many providers were queried.
func (t *IdleTracker) Refresh() int {
	now := t.cfg.Clock.Now()
	t.mu.Lock()
	var due []*trackedHost
	for _, h := range t.hosts {
		if !h.nextCheck.After(now) {
			due = append(due, h)
		}
	}
	t.mu.Unlock()

	for _, h := range due {
		t.refreshHost(h, now)
	}
	return len(due)
}

func (t *IdleTracker) refreshHost(h *trackedHost, now time.Time) {
	c, err := t.cfg.ConnectProvider(h.url)
	if err != nil {
		t.mu.Lock()
		h.idle = false
		h.nextCheck = now.Add(t.cfg.BusyRefresh)
		t.mu.Unlock()
		return
	}
	defer c.Close()
	t.Queries.Inc()
	entries, err := c.Search(h.dn, "(|(objectclass=computer)(objectclass=loadaverage))")
	if err != nil {
		t.mu.Lock()
		h.idle = false
		h.nextCheck = now.Add(t.cfg.BusyRefresh)
		t.mu.Unlock()
		return
	}
	var load float64
	var free, cpus int64
	var name string
	for _, e := range entries {
		if e.IsA("computer") {
			cpus, _ = e.Int("cpucount")
			name = e.First("hn")
		}
		if e.IsA("loadaverage") {
			load, _ = e.Float("load5")
			free, _ = e.Int("freecpus")
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h.name = name
	h.cpuCount = cpus
	h.load5 = load
	h.freeCPUs = free
	h.checkedAt = now
	utilization := load
	if cpus > 0 {
		utilization = load / float64(cpus)
	}
	h.idle = cpus >= t.cfg.MinCPUs && utilization < t.cfg.IdleBelow
	// Adaptive cadence: comfortably idle machines are re-confirmed lazily;
	// busy or boundary machines are watched closely so the index stays
	// accurate exactly where it changes.
	if h.idle && utilization < t.cfg.IdleBelow/2 {
		h.nextCheck = now.Add(t.cfg.IdleRefresh)
	} else {
		h.nextCheck = now.Add(t.cfg.BusyRefresh)
	}
}

// Idle returns the current idle multicomputer index, largest first.
func (t *IdleTracker) Idle() []IdleHost {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []IdleHost
	for _, h := range t.hosts {
		if !h.idle {
			continue
		}
		out = append(out, IdleHost{
			DN: h.dn, Name: h.name, CPUCount: h.cpuCount,
			FreeCPUs: h.freeCPUs, Load5: h.load5, ObservedAt: h.checkedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FreeCPUs != out[j].FreeCPUs {
			return out[i].FreeCPUs > out[j].FreeCPUs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Tracked returns how many providers the tracker watches.
func (t *IdleTracker) Tracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.hosts)
}

// Run drives Discover/Refresh until ctx is cancelled, pacing on the clock.
func (t *IdleTracker) Run(ctx context.Context, discoverEvery time.Duration) {
	lastDiscover := time.Time{}
	for {
		now := t.cfg.Clock.Now()
		if now.Sub(lastDiscover) >= discoverEvery {
			_ = t.Discover() // transient directory failures retry next round
			lastDiscover = now
		}
		t.Refresh()
		select {
		case <-ctx.Done():
			return
		case <-t.cfg.Clock.After(t.cfg.BusyRefresh):
		}
	}
}
