package services

import (
	"fmt"
	"sync"
	"time"

	"mds2/internal/detect"
	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

// AlertKind classifies troubleshooter findings.
type AlertKind int

// Alert kinds (§1: "looking for anomalous behaviors such as excessive load
// or extended failure of critical services").
const (
	// AlertOverload: sustained load above the configured threshold.
	AlertOverload AlertKind = iota
	// AlertSilent: a provider's registration stream went quiet.
	AlertSilent
	// AlertRecovered: a previously alerted condition cleared.
	AlertRecovered
	// AlertDiskFull: free space under the configured floor.
	AlertDiskFull
)

func (k AlertKind) String() string {
	switch k {
	case AlertOverload:
		return "overload"
	case AlertSilent:
		return "silent"
	case AlertRecovered:
		return "recovered"
	case AlertDiskFull:
		return "disk-full"
	}
	return "unknown"
}

// Alert is one finding.
type Alert struct {
	Kind    AlertKind
	Subject string // host or provider identifier
	Detail  string
	At      time.Time
}

// TroubleshooterConfig tunes thresholds.
type TroubleshooterConfig struct {
	Clock softstate.Clock
	// OverloadFactor: load5 > factor × cpucount raises AlertOverload
	// (default 1.5).
	OverloadFactor float64
	// SilenceTimeout feeds the failure detector (default 60s).
	SilenceTimeout time.Duration
	// DiskFloorMB raises AlertDiskFull below this free space (default 256).
	DiskFloorMB int64
}

// Troubleshooter ingests monitoring updates (from GRIP subscriptions or
// polls) and registration observations (from GRRP streams), emitting alerts
// on state transitions only — a flapping host does not spam.
type Troubleshooter struct {
	cfg      TroubleshooterConfig
	detector *detect.Detector

	mu        sync.Mutex
	active    map[string]AlertKind // subject -> outstanding alert
	alerts    []Alert
	cpuCounts map[string]int64
}

// NewTroubleshooter builds a troubleshooter.
func NewTroubleshooter(cfg TroubleshooterConfig) *Troubleshooter {
	if cfg.Clock == nil {
		cfg.Clock = softstate.RealClock{}
	}
	if cfg.OverloadFactor == 0 {
		cfg.OverloadFactor = 1.5
	}
	if cfg.SilenceTimeout == 0 {
		cfg.SilenceTimeout = time.Minute
	}
	if cfg.DiskFloorMB == 0 {
		cfg.DiskFloorMB = 256
	}
	return &Troubleshooter{
		cfg:       cfg,
		detector:  detect.New(cfg.SilenceTimeout, cfg.Clock),
		active:    map[string]AlertKind{},
		cpuCounts: map[string]int64{},
	}
}

// ObserveRegistration records a life sign from a provider's GRRP stream.
func (t *Troubleshooter) ObserveRegistration(provider string) {
	if tr := t.detector.Observe(provider); tr != nil && tr.To == detect.StatusAlive {
		t.clear(provider, AlertSilent)
	}
}

// ObserveEntry ingests one monitoring entry (computer, loadaverage, or
// filesystem object) attributed to a host.
func (t *Troubleshooter) ObserveEntry(host string, e *ldap.Entry) {
	switch {
	case e.IsA("computer"):
		if cpus, ok := e.Int("cpucount"); ok {
			t.mu.Lock()
			t.cpuCounts[host] = cpus
			t.mu.Unlock()
		}
	case e.IsA("loadaverage"):
		load, ok := e.Float("load5")
		if !ok {
			return
		}
		t.mu.Lock()
		cpus := t.cpuCounts[host]
		t.mu.Unlock()
		if cpus == 0 {
			cpus = 1
		}
		if load > t.cfg.OverloadFactor*float64(cpus) {
			t.raise(host, AlertOverload, fmt.Sprintf("load5=%.2f on %d cpus", load, cpus))
		} else {
			t.clear(host, AlertOverload)
		}
	case e.IsA("filesystem"):
		free, ok := e.Int("free")
		if !ok {
			return
		}
		subject := host + ":" + e.First("store")
		if free < t.cfg.DiskFloorMB {
			t.raise(subject, AlertDiskFull, fmt.Sprintf("free=%dMB", free))
		} else {
			t.clear(subject, AlertDiskFull)
		}
	}
}

// Check sweeps the failure detector, raising silence alerts.
func (t *Troubleshooter) Check() {
	for _, tr := range t.detector.Check() {
		if tr.To == detect.StatusSuspected {
			t.raise(tr.Key, AlertSilent, fmt.Sprintf("no registration for %v", tr.SilentFor))
		}
	}
}

func (t *Troubleshooter) raise(subject string, kind AlertKind, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := subject + "/" + kind.String()
	if _, outstanding := t.active[key]; outstanding {
		return
	}
	t.active[key] = kind
	t.alerts = append(t.alerts, Alert{Kind: kind, Subject: subject, Detail: detail,
		At: t.cfg.Clock.Now()})
}

func (t *Troubleshooter) clear(subject string, kind AlertKind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := subject + "/" + kind.String()
	if _, outstanding := t.active[key]; !outstanding {
		return
	}
	delete(t.active, key)
	t.alerts = append(t.alerts, Alert{Kind: AlertRecovered, Subject: subject,
		Detail: "cleared " + kind.String(), At: t.cfg.Clock.Now()})
}

// Alerts drains the alert log.
func (t *Troubleshooter) Alerts() []Alert {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.alerts
	t.alerts = nil
	return out
}

// Outstanding returns the number of currently active conditions.
func (t *Troubleshooter) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}
