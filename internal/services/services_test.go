package services

import (
	"fmt"
	"testing"
	"time"

	"mds2/internal/core"
	"mds2/internal/grip"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

func TestIdleTrackerEndToEnd(t *testing.T) {
	g, err := core.NewSimGrid(60)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	// Two multicomputers (one idle, one loaded) and one small desktop.
	mk := func(name string, cpus int, seed int64) *core.HostNode {
		h, err := g.AddHost(name, core.HostOptions{
			Seed: seed,
			Spec: hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
				CPUCount: cpus, MemoryMB: 256 * cpus},
			DynamicTTL: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
		return h
	}
	idle := mk("idlebox", 64, 1)
	busy := mk("busybox", 32, 2)
	mk("desktop", 2, 3)
	// Make busybox actually busy: step it a lot and pick worst case by
	// forcing the load directly via many steps — instead we rely on the
	// tracker thresholds: verify classification against actual loads below.
	waitFor(t, func() bool { return len(dir.GIIS.Children()) == 3 })

	dirClient, err := dir.Client("tracker")
	if err != nil {
		t.Fatal(err)
	}
	defer dirClient.Close()
	tracker := NewIdleTracker(IdleTrackerConfig{
		Directory: dirClient,
		Base:      ldap.MustParseDN("vo=v"),
		ConnectProvider: func(url ldap.URL) (*grip.Client, error) {
			return g.Connect("tracker", url)
		},
		Clock:     g.Clock,
		IdleBelow: 1e9, // everything counts as idle: classification by size only
		MinCPUs:   8,
	})
	if err := tracker.Discover(); err != nil {
		t.Fatal(err)
	}
	if tracker.Tracked() != 3 {
		t.Fatalf("tracked = %d", tracker.Tracked())
	}
	if n := tracker.Refresh(); n != 3 {
		t.Fatalf("refreshed = %d", n)
	}
	idleHosts := tracker.Idle()
	if len(idleHosts) != 2 {
		t.Fatalf("idle = %+v (desktop must be excluded by MinCPUs)", idleHosts)
	}
	names := map[string]bool{}
	for _, h := range idleHosts {
		names[h.Name] = true
	}
	if !names["idlebox"] || !names["busybox"] || names["desktop"] {
		t.Fatalf("idle set = %v", names)
	}
	_ = idle
	_ = busy
}

func TestIdleTrackerThreshold(t *testing.T) {
	g, err := core.NewSimGrid(61)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.AddHost("box", core.HostOptions{
		Spec: hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
			CPUCount: 16, MemoryMB: 4096},
		DynamicTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
	waitFor(t, func() bool { return len(dir.GIIS.Children()) == 1 })

	dirClient, err := dir.Client("tracker")
	if err != nil {
		t.Fatal(err)
	}
	defer dirClient.Close()
	// A threshold no host can beat classifies nothing as idle.
	tracker := NewIdleTracker(IdleTrackerConfig{
		Directory: dirClient,
		Base:      ldap.MustParseDN("vo=v"),
		ConnectProvider: func(url ldap.URL) (*grip.Client, error) {
			return g.Connect("tracker", url)
		},
		Clock:     g.Clock,
		IdleBelow: -1, // impossible: load is never negative
		MinCPUs:   1,
	})
	tracker.Discover()
	tracker.Refresh()
	if got := tracker.Idle(); len(got) != 0 {
		t.Fatalf("idle = %+v", got)
	}
}

func TestIdleTrackerAdaptiveCadence(t *testing.T) {
	g, err := core.NewSimGrid(62)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	clock := g.SimClock()
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.AddHost("calm", core.HostOptions{
		Spec: hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
			CPUCount: 64, MemoryMB: 8192},
		DynamicTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
	waitFor(t, func() bool { return len(dir.GIIS.Children()) == 1 })

	dirClient, err := dir.Client("tracker")
	if err != nil {
		t.Fatal(err)
	}
	defer dirClient.Close()
	tracker := NewIdleTracker(IdleTrackerConfig{
		Directory: dirClient,
		Base:      ldap.MustParseDN("vo=v"),
		ConnectProvider: func(url ldap.URL) (*grip.Client, error) {
			return g.Connect("tracker", url)
		},
		Clock:       g.Clock,
		IdleBelow:   1e9, // comfortably idle → lazy cadence
		MinCPUs:     1,
		BusyRefresh: 30 * time.Second,
		IdleRefresh: 5 * time.Minute,
	})
	tracker.Discover()
	if n := tracker.Refresh(); n != 1 {
		t.Fatalf("first refresh = %d", n)
	}
	// Within the idle refresh window nothing is due.
	clock.Advance(time.Minute)
	if n := tracker.Refresh(); n != 0 {
		t.Fatalf("idle host re-polled too early (%d)", n)
	}
	clock.Advance(5 * time.Minute)
	if n := tracker.Refresh(); n != 1 {
		t.Fatalf("idle host not re-polled after window (%d)", n)
	}
	if tracker.Queries.Value() != 2 {
		t.Fatalf("queries = %d", tracker.Queries.Value())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never settled")
}

func TestTroubleshooterOverload(t *testing.T) {
	clock := softstate.NewFakeClock()
	ts := NewTroubleshooter(TroubleshooterConfig{Clock: clock, OverloadFactor: 1.5})

	host := "hostX"
	ts.ObserveEntry(host, ldap.NewEntry(ldap.MustParseDN("hn=hostX")).
		Add("objectclass", "computer").Add("hn", host).Add("cpucount", "4"))
	load := func(v string) *ldap.Entry {
		return ldap.NewEntry(ldap.MustParseDN("perf=load, hn=hostX")).
			Add("objectclass", "loadaverage").Add("perf", "load").Add("load5", v)
	}
	ts.ObserveEntry(host, load("2.0")) // fine: 2.0 < 1.5*4
	if got := ts.Alerts(); len(got) != 0 {
		t.Fatalf("unexpected alerts %+v", got)
	}
	ts.ObserveEntry(host, load("9.0")) // overload
	got := ts.Alerts()
	if len(got) != 1 || got[0].Kind != AlertOverload || got[0].Subject != host {
		t.Fatalf("alerts = %+v", got)
	}
	// Repeated overload does not re-alert.
	ts.ObserveEntry(host, load("10.0"))
	if got := ts.Alerts(); len(got) != 0 {
		t.Fatalf("flapping alerts %+v", got)
	}
	if ts.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", ts.Outstanding())
	}
	// Recovery clears.
	ts.ObserveEntry(host, load("1.0"))
	got = ts.Alerts()
	if len(got) != 1 || got[0].Kind != AlertRecovered {
		t.Fatalf("recovery alerts = %+v", got)
	}
	if ts.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", ts.Outstanding())
	}
}

func TestTroubleshooterSilence(t *testing.T) {
	clock := softstate.NewFakeClock()
	ts := NewTroubleshooter(TroubleshooterConfig{Clock: clock, SilenceTimeout: 30 * time.Second})
	ts.ObserveRegistration("gris://a")
	ts.ObserveRegistration("gris://b")
	clock.Advance(10 * time.Second)
	ts.ObserveRegistration("gris://b") // b stays chatty
	clock.Advance(25 * time.Second)    // a silent 35s, b silent 25s
	ts.Check()
	got := ts.Alerts()
	if len(got) != 1 || got[0].Kind != AlertSilent || got[0].Subject != "gris://a" {
		t.Fatalf("alerts = %+v", got)
	}
	// a comes back.
	ts.ObserveRegistration("gris://a")
	got = ts.Alerts()
	if len(got) != 1 || got[0].Kind != AlertRecovered {
		t.Fatalf("recovery = %+v", got)
	}
}

func TestTroubleshooterDisk(t *testing.T) {
	ts := NewTroubleshooter(TroubleshooterConfig{Clock: softstate.NewFakeClock(), DiskFloorMB: 512})
	fs := func(free int) *ldap.Entry {
		return ldap.NewEntry(ldap.MustParseDN("store=scratch, hn=h")).
			Add("objectclass", "filesystem").Add("store", "scratch").
			Add("path", "/scratch").Add("free", fmt.Sprintf("%d", free))
	}
	ts.ObserveEntry("h", fs(100))
	got := ts.Alerts()
	if len(got) != 1 || got[0].Kind != AlertDiskFull || got[0].Subject != "h:scratch" {
		t.Fatalf("alerts = %+v", got)
	}
	ts.ObserveEntry("h", fs(4096))
	if got := ts.Alerts(); len(got) != 1 || got[0].Kind != AlertRecovered {
		t.Fatalf("recovery = %+v", got)
	}
}

func TestTroubleshooterIgnoresMalformed(t *testing.T) {
	ts := NewTroubleshooter(TroubleshooterConfig{Clock: softstate.NewFakeClock()})
	// Entries without parsable numbers are skipped, not alerted.
	ts.ObserveEntry("h", ldap.NewEntry(ldap.MustParseDN("perf=l, hn=h")).
		Add("objectclass", "loadaverage").Add("load5", "not-a-number"))
	ts.ObserveEntry("h", ldap.NewEntry(ldap.MustParseDN("store=s, hn=h")).
		Add("objectclass", "filesystem").Add("store", "s").Add("free", "???"))
	if got := ts.Alerts(); len(got) != 0 {
		t.Fatalf("alerts = %+v", got)
	}
}

func TestAlertKindStrings(t *testing.T) {
	for k := AlertOverload; k <= AlertDiskFull; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
