package load

import (
	"context"
	"testing"
	"time"

	"mds2/internal/softstate"
)

func TestParsePacing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Pacing
		ok   bool
	}{
		{"", PacePoisson, true},
		{"poisson", PacePoisson, true},
		{"uniform", PaceUniform, true},
		{"exponential", 0, false},
	} {
		got, err := ParsePacing(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParsePacing(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestPacerUniformFakeClock pins the uniform schedule exactly: rate 10/s
// yields arrivals every 100ms, intended times included. The clock starts
// past the deadline, so the schedule is behind from the first arrival —
// exactly the lagging-pacer case coordinated-omission correction exists
// for — and the intended times must still be the ideal ones.
func TestPacerUniformFakeClock(t *testing.T) {
	clock := softstate.NewFakeClock()
	start := clock.Now()
	clock.Advance(time.Second)
	p := NewPacer(PaceUniform, 10, 1)

	var got []time.Time
	n := p.Run(context.Background(), clock, start, start.Add(time.Second),
		func(intended time.Time) { got = append(got, intended) })

	// Arrivals at 0, 100ms, ..., 1000ms inclusive.
	if n != 11 || int64(len(got)) != n {
		t.Fatalf("emitted %d arrivals (collected %d), want 11", n, len(got))
	}
	for i, at := range got {
		want := start.Add(time.Duration(i) * 100 * time.Millisecond)
		if !at.Equal(want) {
			t.Fatalf("arrival %d intended at %v, want %v", i, at, want)
		}
	}
}

// TestPacerPoissonDeterministic: same seed, same schedule; and the mean gap
// honors the offered rate.
func TestPacerPoissonDeterministic(t *testing.T) {
	const rate = 100.0
	a := NewPacer(PacePoisson, rate, 42)
	b := NewPacer(PacePoisson, rate, 42)
	var sum time.Duration
	const n = 10_000
	for i := 0; i < n; i++ {
		ga, gb := a.Gap(), b.Gap()
		if ga != gb {
			t.Fatalf("gap %d diverged: %v vs %v", i, ga, gb)
		}
		sum += ga
	}
	mean := sum / n
	want := time.Duration(float64(time.Second) / rate)
	if mean < want*8/10 || mean > want*12/10 {
		t.Fatalf("mean gap %v, want within 20%% of %v", mean, want)
	}
}

// TestPacerCancel: a cancelled context stops the schedule mid-sleep.
func TestPacerCancel(t *testing.T) {
	clock := softstate.NewFakeClock()
	start := clock.Now()
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPacer(PaceUniform, 1, 1) // 1/s: after the first emit it sleeps 1s

	done := make(chan int64, 1)
	go func() {
		done <- p.Run(ctx, clock, start, start.Add(time.Hour), func(time.Time) {})
	}()
	cancel()
	select {
	case n := <-done:
		if n > 1 {
			t.Fatalf("emitted %d arrivals after cancel, want <=1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pacer did not stop on cancel")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("search=8,bind=1,register=2,churn=1")
	if err != nil || m != (Mix{Search: 8, Bind: 1, Register: 2, Churn: 1}) {
		t.Fatalf("ParseMix = %+v, %v", m, err)
	}
	if m.String() != "search=8,bind=1,register=2,churn=1" {
		t.Fatalf("String = %q", m.String())
	}
	if m, err := ParseMix(""); err != nil || m != (Mix{Search: 1}) {
		t.Fatalf("empty mix = %+v, %v", m, err)
	}
	for _, bad := range []string{"search", "search=x", "warp=1", "search=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestSLOCheck(t *testing.T) {
	res := &Result{
		Offered: 1000, Completed: 900, ShedBusy: 50, Errors: 50,
		P50Ms: 2, P99Ms: 40, Goodput: 450, ElapsedSec: 2,
	}
	// Zero-valued SLO checks nothing.
	if v := (SLO{}).Check(res); len(v) != 0 {
		t.Fatalf("empty SLO violations: %v", v)
	}
	pass := SLO{MaxP50Ms: 5, MaxP99Ms: 50, MaxErrorRate: 0.1, MaxShedRate: 0.1,
		MinGoodput: 400, MinCompleted: 800}
	if v := pass.Check(res); len(v) != 0 {
		t.Fatalf("passing SLO violations: %v", v)
	}
	fail := SLO{MaxP50Ms: 1, MaxP99Ms: 10, MaxErrorRate: 0.01, MaxShedRate: 0.01,
		MinGoodput: 500, MinCompleted: 1000}
	if v := fail.Check(res); len(v) != 6 {
		t.Fatalf("failing SLO violations = %d (%v), want 6", len(v), v)
	}
}
