package load

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"mds2/internal/giis"
	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

// A Scenario stands up a named loopback-TCP topology, drives it with a
// canned workload, and tears it down — the reproducible configurations
// behind `mdsload -scenario` and the CI SLO gate. The overload pair
// reproduces the MDS2 performance-study saturation curves: identical
// backend and 2× offered rate, differing only in whether the server's
// overload control is on.
type Scenario struct {
	Name        string
	Description string

	// Default offered rate and window; ScenarioOpts override them.
	DefaultRate     float64
	DefaultDuration time.Duration

	run func(ctx context.Context, cfg Config) (*Result, error)
}

// ScenarioOpts overrides a scenario's defaults. Zero values keep them.
type ScenarioOpts struct {
	Rate        float64
	RateScale   float64 // multiplies the default rate when Rate is 0
	Duration    time.Duration
	Seed        int64
	ReportEvery time.Duration
	ReportW     io.Writer
	FailureW    io.Writer
}

// Run executes the scenario to completion.
func (s Scenario) Run(ctx context.Context, opts ScenarioOpts) (*Result, error) {
	cfg := Config{
		Rate:     s.DefaultRate,
		Duration: s.DefaultDuration,
		Seed:     1,
		Clock:    softstate.RealClock{},
	}
	if opts.Rate > 0 {
		cfg.Rate = opts.Rate
	} else if opts.RateScale > 0 {
		cfg.Rate *= opts.RateScale
	}
	if opts.Duration > 0 {
		cfg.Duration = opts.Duration
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	cfg.ReportEvery = opts.ReportEvery
	cfg.ReportW = opts.ReportW
	cfg.FailureW = opts.FailureW
	return s.run(ctx, cfg)
}

// The backend cost model for saturation scenarios: CacheTTL 0 disables both
// the GRIS result cache and singleflight coalescing, so every query invokes
// the provider; the provider holds one of `slots` tokens for `cost`, giving
// the server a true capacity ceiling of slots/cost queries per second that
// extra client concurrency cannot raise. That honest ceiling is what makes
// the 2×-saturation overload comparison meaningful.
type costBackend struct {
	suffix  ldap.DN
	entries []*ldap.Entry
	clock   softstate.Clock
	cost    time.Duration
	slots   chan struct{}
	ttl     time.Duration
}

func (b *costBackend) Name() string            { return "cost" }
func (b *costBackend) Suffix() ldap.DN         { return b.suffix }
func (b *costBackend) Attributes() []string    { return nil }
func (b *costBackend) CacheTTL() time.Duration { return b.ttl }

func (b *costBackend) Entries(*gris.Query) ([]*ldap.Entry, error) {
	b.slots <- struct{}{}
	<-b.clock.After(b.cost)
	<-b.slots
	return b.entries, nil
}

// loadEntries builds n host-shaped entries under suffix.
func loadEntries(suffix ldap.DN, n int) []*ldap.Entry {
	out := make([]*ldap.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ldap.NewEntry(suffix.ChildAVA("hn", fmt.Sprintf("h%d", i))).
			Add("objectclass", "computer").
			Add("hn", fmt.Sprintf("h%d", i)).
			Add("system", "linux redhat").
			Add("cpucount", "4").
			Add("load5", fmt.Sprintf("%d.%d", i%4, i%10)))
	}
	return out
}

// startGRIS serves a GRIS over loopback TCP, overload per ov.
func startGRIS(suffix ldap.DN, backend gris.Backend, ov ldap.OverloadConfig) (string, func(), error) {
	g := gris.New(gris.Config{Suffix: suffix})
	g.Register(backend)
	srv := ldap.NewServer(g)
	srv.Overload = ov
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close() }, nil
}

// saturation parameters shared by the overload pair so the only difference
// between the two scenarios is the control itself. Capacity = slots/cost =
// 1600 queries/s; both scenarios offer 2× that.
const (
	satSlots = 4
	satCost  = 2500 * time.Microsecond
)

const satCapacity = float64(satSlots) * float64(time.Second) / float64(satCost)

// overloadControl is the OverloadConfig the shedding scenario (and the
// docs) use as the reference tuning for a saturated GRIS.
func overloadControl() ldap.OverloadConfig {
	// MaxQueue and QueueBudget are deliberately both near the operating
	// point: a steady overload trips the budget projection (busy) while
	// arrival bursts overflow the queue itself (unavailable).
	return ldap.OverloadConfig{
		MaxWorkers:  2 * satSlots,
		MaxQueue:    4 * satSlots,
		QueueBudget: 8 * time.Millisecond,
		MaxConns:    256,
	}
}

// runGRISScenario drives a single GRIS built on backend with cfg's offered
// schedule.
func runGRISScenario(ctx context.Context, cfg Config, backend gris.Backend,
	suffix ldap.DN, ov ldap.OverloadConfig, mix Mix, subscribers int) (*Result, error) {

	addr, stop, err := startGRIS(suffix, backend, ov)
	if err != nil {
		return nil, err
	}
	defer stop()
	cfg.Addr = addr
	cfg.BaseDN = suffix.String()
	cfg.Filter = "(objectclass=computer)"
	cfg.Mix = mix
	cfg.Subscribers = subscribers
	return Run(ctx, cfg)
}

// Scenarios returns the named scenarios, sorted by name.
func Scenarios() []Scenario {
	suffix := ldap.MustParseDN("ou=s0, o=grid")
	clock := softstate.RealClock{}
	newCost := func(ttl time.Duration) *costBackend {
		return &costBackend{
			suffix:  suffix,
			entries: loadEntries(suffix, 10),
			clock:   clock,
			cost:    satCost,
			slots:   make(chan struct{}, satSlots),
			ttl:     ttl,
		}
	}
	list := []Scenario{
		{
			Name: "gris-cached",
			Description: "single GRIS, costly provider behind the result cache " +
				"(the with-caching curve: provider cost amortized, latency is wire+dispatch)",
			DefaultRate:     1000,
			DefaultDuration: 2 * time.Second,
			run: func(ctx context.Context, cfg Config) (*Result, error) {
				return runGRISScenario(ctx, cfg, newCost(time.Hour), suffix,
					ldap.OverloadConfig{}, Mix{Search: 1}, 0)
			},
		},
		{
			Name: "gris-nocache",
			Description: "single GRIS, same provider with caching off — every query pays " +
				"the provider invocation (the without-caching curve); offered at half capacity",
			DefaultRate:     satCapacity / 2,
			DefaultDuration: 2 * time.Second,
			run: func(ctx context.Context, cfg Config) (*Result, error) {
				return runGRISScenario(ctx, cfg, newCost(0), suffix,
					ldap.OverloadConfig{}, Mix{Search: 1}, 0)
			},
		},
		{
			Name: "overload-shed",
			Description: fmt.Sprintf("uncached GRIS offered 2x its %0.f q/s capacity WITH overload "+
				"control: excess is shed busy/unavailable, survivor p99 stays bounded", satCapacity),
			DefaultRate:     2 * satCapacity,
			DefaultDuration: 3 * time.Second,
			run: func(ctx context.Context, cfg Config) (*Result, error) {
				return runGRISScenario(ctx, cfg, newCost(0), suffix,
					overloadControl(), Mix{Search: 1}, 0)
			},
		},
		{
			Name: "overload-noshed",
			Description: fmt.Sprintf("uncached GRIS offered 2x its %0.f q/s capacity WITHOUT overload "+
				"control: the queue grows for the whole run and corrected p99 collapses", satCapacity),
			DefaultRate:     2 * satCapacity,
			DefaultDuration: 3 * time.Second,
			run: func(ctx context.Context, cfg Config) (*Result, error) {
				return runGRISScenario(ctx, cfg, newCost(0), suffix,
					ldap.OverloadConfig{}, Mix{Search: 1}, 0)
			},
		},
		{
			Name: "chain",
			Description: "GIIS chaining to 2 GRIS children, mixed workload " +
				"(search/bind/register/churn) plus persistent-search subscribers",
			DefaultRate:     400,
			DefaultDuration: 2 * time.Second,
			run:             runChainScenario,
		},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// FindScenario looks a scenario up by name.
func FindScenario(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// runChainScenario: a root GIIS chaining to two cached GRIS leaves, driven
// with the full operation mix. Register ops land as real GRRP refreshes on
// the GIIS; subscribers hold persistent searches on the root.
func runChainScenario(ctx context.Context, cfg Config) (*Result, error) {
	clock := softstate.RealClock{}
	base := ldap.MustParseDN("o=grid")
	var stops []func()
	defer func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}()

	leafAddrs := make([]string, 2)
	leafSuffixes := make([]ldap.DN, 2)
	for i := range leafAddrs {
		suffix := ldap.MustParseDN(fmt.Sprintf("ou=s%d, o=grid", i))
		backend := &costBackend{
			suffix:  suffix,
			entries: loadEntries(suffix, 20),
			clock:   clock,
			cost:    time.Millisecond,
			slots:   make(chan struct{}, 8),
			ttl:     time.Hour,
		}
		addr, stop, err := startGRIS(suffix, backend, ldap.OverloadConfig{})
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
		leafAddrs[i] = addr
		leafSuffixes[i] = suffix
	}

	d := giis.New(giis.Config{Name: "giis.load", Suffix: base})
	now := clock.Now()
	for i, addr := range leafAddrs {
		msg := &grrp.Message{
			Type:       grrp.TypeRegister,
			ServiceURL: "ldap://" + addr,
			MDSType:    "gris",
			SuffixDN:   leafSuffixes[i].String(),
			IssuedAt:   now,
			ValidUntil: now.Add(time.Hour),
		}
		if !d.Ingest(msg) {
			d.Close()
			return nil, fmt.Errorf("load: giis refused registration of %s", addr)
		}
	}
	srv := ldap.NewServer(d)
	// Chained searches run ~10x longer than leaf queries, so the root's
	// control gets a budget matched to that service time; at the default
	// offered rate it should engage only on bursts.
	srv.Overload = ldap.OverloadConfig{
		MaxWorkers:  16,
		MaxQueue:    64,
		QueueBudget: 150 * time.Millisecond,
		MaxConns:    256,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Close()
		return nil, err
	}
	go srv.Serve(l)
	stops = append(stops, func() { srv.Close(); d.Close() })

	cfg.Addr = l.Addr().String()
	cfg.BaseDN = base.String()
	cfg.Filter = "(objectclass=computer)"
	cfg.Mix = Mix{Search: 8, Bind: 1, Register: 2, Churn: 1}
	cfg.Subscribers = 4
	return Run(ctx, cfg)
}
