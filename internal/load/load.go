package load

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// Mix weights the operation types in the offered schedule. Zero weights
// exclude the op; the zero Mix means search-only.
type Mix struct {
	Search   int // whole-subtree GRIP search
	Bind     int // anonymous bind on a pooled connection
	Register int // GRRP register/refresh carried as LDAP add
	Churn    int // dial + bind + base search + close on a fresh connection
}

// ParseMix parses "search=8,bind=1,register=2,churn=1" (any subset).
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return Mix{Search: 1}, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("load: bad mix term %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return m, fmt.Errorf("load: bad mix weight %q", part)
		}
		switch kv[0] {
		case "search":
			m.Search = w
		case "bind":
			m.Bind = w
		case "register":
			m.Register = w
		case "churn":
			m.Churn = w
		default:
			return m, fmt.Errorf("load: unknown mix op %q", kv[0])
		}
	}
	if m.total() == 0 {
		return m, errors.New("load: mix has no positive weights")
	}
	return m, nil
}

func (m Mix) total() int { return m.Search + m.Bind + m.Register + m.Churn }

func (m Mix) String() string {
	var parts []string
	for _, t := range []struct {
		name string
		w    int
	}{{"search", m.Search}, {"bind", m.Bind}, {"register", m.Register}, {"churn", m.Churn}} {
		if t.w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", t.name, t.w))
		}
	}
	return strings.Join(parts, ",")
}

// opNames indexes per-op accounting.
var opNames = []string{"search", "bind", "register", "churn"}

const (
	opSearch = iota
	opBind
	opRegister
	opChurn
	numOps
)

// Config assembles one load run.
type Config struct {
	// Addr is the LDAP target. Dial overrides the transport (simnet
	// tests); nil dials tcp Addr.
	Addr string
	Dial func() (net.Conn, error)

	// BaseDN and Filter define the search workload.
	BaseDN string
	Filter string

	// Rate is the offered rate in ops/second; Duration the offered
	// window. Operations offered before the deadline still run to
	// completion and are counted.
	Rate     float64
	Duration time.Duration

	// Conns is the connection-pool size (default 8); operations
	// multiplex over the pool round-robin. Workers bounds in-flight
	// operations client-side (default 16×Conns).
	Conns   int
	Workers int
	// MaxPending bounds the client-side backlog of offered-but-not-sent
	// operations (default 65536). Overflow is counted as dropped — the
	// *client* saturated — never silently blocks the schedule (that
	// would reintroduce coordinated omission).
	MaxPending int

	Pacing Pacing
	Seed   int64
	Mix    Mix

	// Subscribers holds this many persistent-search subscriptions open on
	// dedicated connections for the run's duration.
	Subscribers int

	// RegisterTTL is the soft-state TTL carried by register ops
	// (default 60s); RegisterTargets is the number of distinct service
	// URLs cycled through, so repeats are GRRP refreshes (default 64).
	RegisterTTL     time.Duration
	RegisterTargets int

	// Timeout bounds each operation (default 30s).
	Timeout time.Duration

	// Clock paces the schedule and stamps every measurement; nil means
	// the wall clock.
	Clock softstate.Clock

	// ReportEvery emits periodic progress summaries to ReportW (0
	// disables). FailureW, when non-nil, receives one CSV row per failed
	// or shed operation.
	ReportEvery time.Duration
	ReportW     io.Writer
	FailureW    io.Writer
}

// OpStats is the per-operation-type slice of a Result.
type OpStats struct {
	Offered   int64   `json:"offered"`
	Completed int64   `json:"completed"`
	Shed      int64   `json:"shed"`
	Errors    int64   `json:"errors"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// Result is the final accounting of one run. All latencies are
// coordinated-omission-corrected: measured from the operation's intended
// send time on the offered schedule.
type Result struct {
	OfferedRate float64 `json:"offered_rate"`
	ElapsedSec  float64 `json:"elapsed_sec"`

	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	// ShedBusy/ShedUnavailable are explicit server rejections (LDAP
	// busy/unavailable) — the overload control working as designed.
	ShedBusy        int64 `json:"shed_busy"`
	ShedUnavailable int64 `json:"shed_unavailable"`
	// Errors are hard failures: timeouts, I/O errors, unexpected codes.
	Errors int64 `json:"errors"`
	// Dropped counts offered ops the client backlog could not hold.
	Dropped int64 `json:"dropped"`

	Goodput float64 `json:"goodput_qps"` // completed ops/sec
	P50Ms   float64 `json:"p50_ms"`
	P90Ms   float64 `json:"p90_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`

	PerOp map[string]*OpStats `json:"per_op,omitempty"`
}

// Shed is the total explicit-rejection count.
func (r *Result) Shed() int64 { return r.ShedBusy + r.ShedUnavailable }

// ErrorRate is hard errors (plus client drops) per offered op.
func (r *Result) ErrorRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Errors+r.Dropped) / float64(r.Offered)
}

// ShedRate is explicit rejections per offered op.
func (r *Result) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed()) / float64(r.Offered)
}

// ticket is one scheduled operation.
type ticket struct {
	intended time.Time
	op       int
}

// runner is the per-run state shared by the pacer, workers, and reporter.
type runner struct {
	cfg   Config
	clock softstate.Clock
	pool  []*ldap.Client
	next  int // round-robin pool cursor (atomic not needed: assigned per ticket by pacer goroutine)

	filter *ldap.Filter

	hist   obs.Histogram // corrected latency, successful ops only
	opHist [numOps]obs.Histogram

	offered         obs.Counter
	completed       obs.Counter
	shedBusy        obs.Counter
	shedUnavailable obs.Counter
	errors          obs.Counter
	dropped         obs.Counter
	opOffered       [numOps]obs.Counter
	opCompleted     [numOps]obs.Counter
	opShed          [numOps]obs.Counter
	opErrors        [numOps]obs.Counter

	failMu sync.Mutex
	start  time.Time
}

// Run executes one open-loop load run to completion and returns the final
// accounting. It is synchronous; cancel ctx to stop early.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Rate <= 0 {
		return nil, errors.New("load: Rate must be > 0")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("load: Duration must be > 0")
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = Mix{Search: 1}
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16 * cfg.Conns
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 65536
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.RegisterTTL <= 0 {
		cfg.RegisterTTL = time.Minute
	}
	if cfg.RegisterTargets <= 0 {
		cfg.RegisterTargets = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = softstate.RealClock{}
	}
	if cfg.Dial == nil {
		addr := cfg.Addr
		cfg.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	filter, err := ldap.ParseFilter(cfg.Filter)
	if err != nil {
		return nil, fmt.Errorf("load: filter: %w", err)
	}

	r := &runner{cfg: cfg, clock: cfg.Clock, filter: filter}
	if cfg.FailureW != nil {
		fmt.Fprintln(cfg.FailureW, "elapsed_ms,op,kind,detail")
	}

	// Connection pool.
	for i := 0; i < cfg.Conns; i++ {
		c, err := r.dialClient()
		if err != nil {
			r.closePool()
			return nil, fmt.Errorf("load: pool conn %d: %w", i, err)
		}
		r.pool = append(r.pool, c)
	}
	defer r.closePool()

	// Persistent-search subscribers on dedicated connections.
	subCtx, cancelSubs := context.WithCancel(ctx)
	defer cancelSubs()
	var subWG sync.WaitGroup
	var subConns []*ldap.Client
	for i := 0; i < cfg.Subscribers; i++ {
		c, err := r.dialClient()
		if err != nil {
			return nil, fmt.Errorf("load: subscriber conn %d: %w", i, err)
		}
		subConns = append(subConns, c)
		subWG.Add(1)
		go func(c *ldap.Client) {
			defer subWG.Done()
			r.subscribe(subCtx, c)
		}(c)
	}
	defer func() {
		cancelSubs()
		for _, c := range subConns {
			c.Close()
		}
		subWG.Wait()
	}()

	// Workers drain the offered schedule.
	tickets := make(chan ticket, cfg.MaxPending)
	var workWG sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		workWG.Add(1)
		go func(conn *ldap.Client, rng *rand.Rand) {
			defer workWG.Done()
			for t := range tickets {
				r.execute(ctx, conn, rng, t)
			}
		}(r.pool[i%len(r.pool)], rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
	}

	// Periodic reporter.
	repCtx, cancelRep := context.WithCancel(ctx)
	var repWG sync.WaitGroup
	if cfg.ReportEvery > 0 && cfg.ReportW != nil {
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			r.reportLoop(repCtx)
		}()
	}

	// The offered schedule: ticket ops are chosen here (one rng, one
	// goroutine — deterministic for a seed) and dropped, never delayed,
	// when the backlog is full.
	r.start = r.clock.Now()
	pacer := NewPacer(cfg.Pacing, cfg.Rate, cfg.Seed)
	mixRng := rand.New(rand.NewSource(cfg.Seed ^ 0x6c6f6164))
	pacer.Run(ctx, r.clock, r.start, r.start.Add(cfg.Duration), func(intended time.Time) {
		op := r.pickOp(mixRng)
		r.offered.Inc()
		r.opOffered[op].Inc()
		select {
		case tickets <- ticket{intended: intended, op: op}:
		default:
			r.dropped.Inc()
			r.fail(intended, op, "dropped", "client backlog full")
		}
	})
	close(tickets)
	workWG.Wait()
	cancelRep()
	repWG.Wait()
	elapsed := r.clock.Now().Sub(r.start)

	res := r.result(elapsed)
	if cfg.ReportW != nil {
		fmt.Fprintf(cfg.ReportW, "final: %s\n", summaryLine(res))
	}
	return res, nil
}

// pickOp selects an operation type by mix weight.
func (r *runner) pickOp(rng *rand.Rand) int {
	m := r.cfg.Mix
	n := rng.Intn(m.total())
	switch {
	case n < m.Search:
		return opSearch
	case n < m.Search+m.Bind:
		return opBind
	case n < m.Search+m.Bind+m.Register:
		return opRegister
	default:
		return opChurn
	}
}

func (r *runner) dialClient() (*ldap.Client, error) {
	conn, err := r.cfg.Dial()
	if err != nil {
		return nil, err
	}
	c := ldap.NewClient(conn)
	c.Timeout = r.cfg.Timeout
	c.Clock = r.clock
	return c, nil
}

func (r *runner) closePool() {
	for _, c := range r.pool {
		c.Close()
	}
	r.pool = nil
}

// outcome classification for one executed op.
func (r *runner) record(t ticket, err error) {
	now := r.clock.Now()
	switch {
	case err == nil:
		lat := now.Sub(t.intended)
		r.hist.Observe(lat)
		r.opHist[t.op].Observe(lat)
		r.completed.Inc()
		r.opCompleted[t.op].Inc()
	case ldap.IsCode(err, ldap.ResultBusy):
		r.shedBusy.Inc()
		r.opShed[t.op].Inc()
		r.fail(t.intended, t.op, "shed", "busy")
	case ldap.IsCode(err, ldap.ResultUnavailable):
		r.shedUnavailable.Inc()
		r.opShed[t.op].Inc()
		r.fail(t.intended, t.op, "shed", "unavailable")
	default:
		r.errors.Inc()
		r.opErrors[t.op].Inc()
		r.fail(t.intended, t.op, "error", err.Error())
	}
}

// fail writes one failure-CSV row.
func (r *runner) fail(intended time.Time, op int, kind, detail string) {
	if r.cfg.FailureW == nil {
		return
	}
	elapsed := intended.Sub(r.start).Milliseconds()
	detail = strings.ReplaceAll(detail, ",", ";")
	detail = strings.ReplaceAll(detail, "\n", " ")
	r.failMu.Lock()
	fmt.Fprintf(r.cfg.FailureW, "%d,%s,%s,%s\n", elapsed, opNames[op], kind, detail)
	r.failMu.Unlock()
}

func (r *runner) reportLoop(ctx context.Context) {
	var lastOffered, lastCompleted, lastShed int64
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.clock.After(r.cfg.ReportEvery):
		}
		off, done := r.offered.Value(), r.completed.Value()
		shed := r.shedBusy.Value() + r.shedUnavailable.Value()
		p50, _ := r.hist.Quantile(0.50)
		p99, _ := r.hist.Quantile(0.99)
		secs := r.cfg.ReportEvery.Seconds()
		fmt.Fprintf(r.cfg.ReportW,
			"t=%-6s offered %6.0f/s  goodput %6.0f/s  shed %6.0f/s  errors %d  p50 %s  p99 %s (cumulative)\n",
			r.clock.Now().Sub(r.start).Round(time.Second),
			float64(off-lastOffered)/secs,
			float64(done-lastCompleted)/secs,
			float64(shed-lastShed)/secs,
			r.errors.Value(),
			p50.Round(10*time.Microsecond), p99.Round(10*time.Microsecond))
		lastOffered, lastCompleted, lastShed = off, done, shed
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (r *runner) result(elapsed time.Duration) *Result {
	p50, _ := r.hist.Quantile(0.50)
	p90, _ := r.hist.Quantile(0.90)
	p99, _ := r.hist.Quantile(0.99)
	max, _ := r.hist.Quantile(1)
	res := &Result{
		OfferedRate:     r.cfg.Rate,
		ElapsedSec:      elapsed.Seconds(),
		Offered:         r.offered.Value(),
		Completed:       r.completed.Value(),
		ShedBusy:        r.shedBusy.Value(),
		ShedUnavailable: r.shedUnavailable.Value(),
		Errors:          r.errors.Value(),
		Dropped:         r.dropped.Value(),
		P50Ms:           ms(p50),
		P90Ms:           ms(p90),
		P99Ms:           ms(p99),
		MaxMs:           ms(max),
		PerOp:           map[string]*OpStats{},
	}
	if res.ElapsedSec > 0 {
		res.Goodput = float64(res.Completed) / res.ElapsedSec
	}
	for op := 0; op < numOps; op++ {
		if r.opOffered[op].Value() == 0 {
			continue
		}
		p50, _ := r.opHist[op].Quantile(0.50)
		p99, _ := r.opHist[op].Quantile(0.99)
		res.PerOp[opNames[op]] = &OpStats{
			Offered:   r.opOffered[op].Value(),
			Completed: r.opCompleted[op].Value(),
			Shed:      r.opShed[op].Value(),
			Errors:    r.opErrors[op].Value(),
			P50Ms:     ms(p50),
			P99Ms:     ms(p99),
		}
	}
	return res
}

// summaryLine renders the one-line human summary of a Result.
func summaryLine(res *Result) string {
	var ops []string
	for _, name := range sortedOpNames(res.PerOp) {
		s := res.PerOp[name]
		ops = append(ops, fmt.Sprintf("%s %d/%d", name, s.Completed, s.Offered))
	}
	line := fmt.Sprintf(
		"offered %d (%.0f/s) completed %d (%.0f/s goodput) shed %d (busy %d, unavailable %d) errors %d dropped %d | p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms",
		res.Offered, float64(res.Offered)/res.ElapsedSec,
		res.Completed, res.Goodput,
		res.Shed(), res.ShedBusy, res.ShedUnavailable,
		res.Errors, res.Dropped,
		res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs)
	if len(ops) > 0 {
		line += " | " + strings.Join(ops, " ")
	}
	return line
}

func sortedOpNames(m map[string]*OpStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
