// Package load is the open-loop load-generation engine behind cmd/mdsload.
//
// Closed-loop benchmarks (a fixed set of clients, each issuing the next
// query when the previous returns) cannot show saturation collapse: when
// the server slows down, a closed loop politely slows its offered rate to
// match, hiding the queue growth real deployments see. The MDS2
// performance studies measured fixed *offered* rates from thousands of
// independent clients — an open loop. This package reproduces that: a
// pacer emits operations on a fixed schedule regardless of how the server
// is doing, and every latency is measured from the operation's *intended*
// start time, not its actual send time, so client-side queueing counts
// against the server (coordinated-omission correction).
//
// All timing flows through softstate.Clock: pacing and accounting are
// deterministic under FakeClock, wall-clock under RealClock.
package load

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mds2/internal/softstate"
)

// Pacing selects the inter-arrival distribution of the offered schedule.
type Pacing int

const (
	// PacePoisson draws exponential inter-arrival gaps: the memoryless
	// arrival process of many independent clients, and the default.
	PacePoisson Pacing = iota
	// PaceUniform spaces arrivals exactly 1/rate apart.
	PaceUniform
)

// ParsePacing maps flag spellings to a Pacing.
func ParsePacing(s string) (Pacing, error) {
	switch s {
	case "poisson", "":
		return PacePoisson, nil
	case "uniform":
		return PaceUniform, nil
	}
	return 0, fmt.Errorf("load: unknown pacing %q (want poisson|uniform)", s)
}

func (p Pacing) String() string {
	if p == PaceUniform {
		return "uniform"
	}
	return "poisson"
}

// Pacer generates an open-loop arrival schedule at a fixed offered rate.
// It is deterministic for a given (pacing, rate, seed).
type Pacer struct {
	pacing Pacing
	rate   float64
	rng    *rand.Rand
}

// NewPacer builds a pacer offering rate operations per second.
func NewPacer(pacing Pacing, rate float64, seed int64) *Pacer {
	return &Pacer{pacing: pacing, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Gap returns the next inter-arrival gap.
func (p *Pacer) Gap() time.Duration {
	switch p.pacing {
	case PaceUniform:
		return time.Duration(float64(time.Second) / p.rate)
	default:
		return time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
	}
}

// Run emits intended arrival times on clock from start until the `until`
// deadline, sleeping on the clock between arrivals. The emitted time is
// the *intended* send time — it can lag the clock when the previous emit
// callback was slow, and the receiver must measure latency from it to stay
// coordination-free. Returns the number of arrivals emitted. Run stops
// early when ctx is cancelled.
func (p *Pacer) Run(ctx context.Context, clock softstate.Clock, start, until time.Time,
	emit func(intended time.Time)) int64 {

	var n int64
	next := start
	for !next.After(until) {
		if wait := next.Sub(clock.Now()); wait > 0 {
			select {
			case <-clock.After(wait):
			case <-ctx.Done():
				return n
			}
		}
		select {
		case <-ctx.Done():
			return n
		default:
		}
		emit(next)
		n++
		next = next.Add(p.Gap())
	}
	return n
}
