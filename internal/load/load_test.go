package load

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"mds2/internal/gris"
	"mds2/internal/ldap"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

// simnetTarget serves handler at srv:2135 on an in-process network and
// returns a Dial for Config.
func simnetTarget(t *testing.T, h ldap.Handler, ov ldap.OverloadConfig) func() (net.Conn, error) {
	t.Helper()
	nw := simnet.New(1)
	l, err := nw.Listen("srv", "2135")
	if err != nil {
		t.Fatal(err)
	}
	srv := ldap.NewServer(h)
	srv.Overload = ov
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return func() (net.Conn, error) { return nw.Dial("client", "srv:2135") }
}

// TestRunAccountingSimnet drives a mixed workload against an in-process
// store and checks that every offered operation is accounted exactly once.
func TestRunAccountingSimnet(t *testing.T) {
	store := ldap.NewStore()
	suffix := ldap.MustParseDN("o=grid")
	for _, e := range loadEntries(suffix, 10) {
		if err := store.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	dial := simnetTarget(t, store, ldap.OverloadConfig{})

	var report, failures bytes.Buffer
	res, err := Run(context.Background(), Config{
		Dial:        dial,
		BaseDN:      "o=grid",
		Filter:      "(objectclass=computer)",
		Rate:        400,
		Duration:    250 * time.Millisecond,
		Pacing:      PaceUniform,
		Seed:        7,
		Conns:       4,
		Workers:     32,
		Mix:         Mix{Search: 3, Bind: 1, Churn: 1},
		Subscribers: 2,
		ReportW:     &report,
		FailureW:    &failures,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Completed == 0 {
		t.Fatalf("no work done: %+v", res)
	}
	if got := res.Completed + res.Shed() + res.Errors + res.Dropped; got != res.Offered {
		t.Fatalf("accounting leak: offered %d, accounted %d", res.Offered, got)
	}
	if res.Errors != 0 || res.Dropped != 0 {
		t.Fatalf("unexpected failures: %+v\nfailures:\n%s", res, failures.String())
	}
	for _, op := range []string{"search", "bind", "churn"} {
		s := res.PerOp[op]
		if s == nil || s.Offered == 0 {
			t.Fatalf("per-op stats missing for %s: %+v", op, res.PerOp)
		}
		if s.Completed != s.Offered {
			t.Fatalf("%s: completed %d of %d", op, s.Completed, s.Offered)
		}
	}
	if res.PerOp["register"] != nil {
		t.Fatalf("register stats present for a mix without register")
	}
	if !strings.Contains(report.String(), "final:") {
		t.Fatalf("missing final summary in report:\n%s", report.String())
	}
	// Failure CSV holds only its header on a clean run.
	if got := strings.TrimSpace(failures.String()); got != "elapsed_ms,op,kind,detail" {
		t.Fatalf("failure CSV = %q", got)
	}
}

// TestRunOverloadStormSheds saturates a slot-bounded GRIS at ~5x capacity
// with overload control on: the excess is shed as busy/unavailable, nothing
// is silently lost, and no hard errors occur. Run under -race this is the
// storm test for the client engine + server admission path together.
func TestRunOverloadStormSheds(t *testing.T) {
	suffix := ldap.MustParseDN("ou=s0, o=grid")
	backend := &costBackend{
		suffix:  suffix,
		entries: loadEntries(suffix, 5),
		clock:   softstate.RealClock{},
		cost:    5 * time.Millisecond,
		slots:   make(chan struct{}, 2), // capacity = 2/5ms = 400 q/s
		ttl:     0,                      // no cache, no coalescing
	}
	g := gris.New(gris.Config{Suffix: suffix})
	g.Register(backend)
	dial := simnetTarget(t, g, ldap.OverloadConfig{
		MaxWorkers:  4,
		MaxQueue:    4,
		QueueBudget: 25 * time.Millisecond,
	})

	res, err := Run(context.Background(), Config{
		Dial:     dial,
		BaseDN:   suffix.String(),
		Filter:   "(objectclass=computer)",
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Seed:     11,
		Conns:    8,
		Mix:      Mix{Search: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed + res.Shed() + res.Errors + res.Dropped; got != res.Offered {
		t.Fatalf("accounting leak: offered %d, accounted %d", res.Offered, got)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed: %+v", res)
	}
	if res.Shed() == 0 {
		t.Fatalf("5x overload shed nothing: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("hard errors under shed-only overload: %+v", res)
	}
}

// TestScenarioSmoke runs the canned scenarios briefly over real loopback
// TCP — the same code path as `mdsload -scenario` and the CI gate.
func TestScenarioSmoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"gris-cached", 300},
		{"chain", 150},
	} {
		s, ok := FindScenario(tc.name)
		if !ok {
			t.Fatalf("scenario %q missing", tc.name)
		}
		res, err := s.Run(context.Background(), ScenarioOpts{
			Rate:     tc.rate,
			Duration: 300 * time.Millisecond,
			Seed:     3,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Offered == 0 || res.Completed == 0 {
			t.Fatalf("%s: no work done: %+v", tc.name, res)
		}
		if got := res.Completed + res.Shed() + res.Errors + res.Dropped; got != res.Offered {
			t.Fatalf("%s: accounting leak: offered %d, accounted %d", tc.name, res.Offered, got)
		}
	}
}

// TestScenariosWellFormed: names are unique and resolvable, defaults sane.
func TestScenariosWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Scenarios() {
		if seen[s.Name] {
			t.Fatalf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if s.DefaultRate <= 0 || s.DefaultDuration <= 0 || s.Description == "" {
			t.Fatalf("scenario %q has incomplete defaults: %+v", s.Name, s)
		}
		if got, ok := FindScenario(s.Name); !ok || got.Name != s.Name {
			t.Fatalf("FindScenario(%q) failed", s.Name)
		}
	}
	for _, want := range []string{"gris-cached", "gris-nocache", "overload-shed", "overload-noshed", "chain"} {
		if !seen[want] {
			t.Fatalf("scenario %q missing (have %v)", want, seen)
		}
	}
}
