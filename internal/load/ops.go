package load

import (
	"context"
	"fmt"
	"math/rand"

	"mds2/internal/grrp"
	"mds2/internal/ldap"
)

// execute runs one scheduled operation and records its outcome against the
// intended send time.
func (r *runner) execute(ctx context.Context, conn *ldap.Client, rng *rand.Rand, t ticket) {
	if err := ctx.Err(); err != nil {
		r.record(t, err)
		return
	}
	var err error
	switch t.op {
	case opSearch:
		err = r.doSearch(conn)
	case opBind:
		err = conn.Bind("", "")
	case opRegister:
		err = r.doRegister(conn, rng)
	case opChurn:
		err = r.doChurn()
	}
	r.record(t, err)
}

func (r *runner) doSearch(conn *ldap.Client) error {
	_, err := conn.Search(&ldap.SearchRequest{
		BaseDN: r.cfg.BaseDN,
		Scope:  ldap.ScopeWholeSubtree,
		Filter: r.filter,
	})
	return err
}

// doRegister sends one GRRP register/refresh carried as an LDAP add. Service
// URLs rotate through a bounded set so repeats are soft-state refreshes of
// live registrations, not unbounded growth.
func (r *runner) doRegister(conn *ldap.Client, rng *rand.Rand) error {
	now := r.clock.Now()
	n := rng.Intn(r.cfg.RegisterTargets)
	m := &grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: fmt.Sprintf("ldap://gris-load-%d:2135/hn=load%d", n, n),
		MDSType:    "gris",
		SuffixDN:   fmt.Sprintf("hn=load%d", n),
		IssuedAt:   now,
		ValidUntil: now.Add(r.cfg.RegisterTTL),
	}
	return conn.Add(m.ToEntry())
}

// doChurn exercises the accept path: a fresh connection, anonymous bind,
// RootDSE read, teardown — the cost real short-lived clients impose.
func (r *runner) doChurn() error {
	c, err := r.dialClient()
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Bind("", ""); err != nil {
		return err
	}
	_, err = c.Search(&ldap.SearchRequest{
		BaseDN: "",
		Scope:  ldap.ScopeBaseObject,
		Filter: ldap.MustParseFilter("(objectclass=*)"),
	})
	return err
}

// subscribe holds a persistent search open on a dedicated connection until
// ctx is cancelled, discarding delivered change entries. Subscribers model
// the long-lived GIIS/notification clients that coexist with query load.
func (r *runner) subscribe(ctx context.Context, c *ldap.Client) {
	// Errors are expected at shutdown (connection closed under the
	// subscription) and uninteresting during the run: a failed subscriber
	// is background load that went away, not a measured op.
	_ = c.SearchFunc(ctx, &ldap.SearchRequest{
		BaseDN: r.cfg.BaseDN,
		Scope:  ldap.ScopeWholeSubtree,
		Filter: r.filter,
	}, []ldap.Control{ldap.NewPersistentSearchControl(ldap.PersistentSearch{
		ChangeTypes: ldap.ChangeAll, ChangesOnly: true,
	})}, func(*ldap.Entry, []ldap.Control) error { return nil }, nil, nil)
}
