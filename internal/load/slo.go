package load

import (
	"encoding/json"
	"fmt"
	"os"
)

// SLO is one scenario's checked-in service-level thresholds. The zero value
// of any field means "unchecked" — a gate file only constrains what it
// names, so adding a new metric never retroactively fails old gates.
type SLO struct {
	// MaxP50Ms / MaxP99Ms bound the corrected latency quantiles in
	// milliseconds.
	MaxP50Ms float64 `json:"max_p50_ms,omitempty"`
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// MaxErrorRate bounds hard failures (errors + client drops) per
	// offered op.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MaxShedRate bounds explicit server rejections per offered op.
	// Shedding is the overload control working, so gates usually bound it
	// only for scenarios offered below saturation.
	MaxShedRate float64 `json:"max_shed_rate,omitempty"`
	// MinGoodput floors completed ops/second.
	MinGoodput float64 `json:"min_goodput_qps,omitempty"`
	// MinCompleted floors the absolute completed-op count (guards against
	// a run that trivially passes rates by doing nothing).
	MinCompleted int64 `json:"min_completed,omitempty"`
}

// SLOFile maps scenario name → thresholds.
type SLOFile map[string]SLO

// LoadSLOFile reads a JSON gate file.
func LoadSLOFile(path string) (SLOFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f SLOFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("load: parse SLO file %s: %w", path, err)
	}
	return f, nil
}

// Check compares a result against the thresholds and returns one violation
// string per breached bound (empty means the gate passes).
func (s SLO) Check(res *Result) []string {
	var v []string
	if s.MaxP50Ms > 0 && res.P50Ms > s.MaxP50Ms {
		v = append(v, fmt.Sprintf("p50 %.2fms > max %.2fms", res.P50Ms, s.MaxP50Ms))
	}
	if s.MaxP99Ms > 0 && res.P99Ms > s.MaxP99Ms {
		v = append(v, fmt.Sprintf("p99 %.2fms > max %.2fms", res.P99Ms, s.MaxP99Ms))
	}
	if s.MaxErrorRate > 0 && res.ErrorRate() > s.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f > max %.4f", res.ErrorRate(), s.MaxErrorRate))
	}
	if s.MaxShedRate > 0 && res.ShedRate() > s.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.4f > max %.4f", res.ShedRate(), s.MaxShedRate))
	}
	if s.MinGoodput > 0 && res.Goodput < s.MinGoodput {
		v = append(v, fmt.Sprintf("goodput %.1f/s < min %.1f/s", res.Goodput, s.MinGoodput))
	}
	if s.MinCompleted > 0 && res.Completed < s.MinCompleted {
		v = append(v, fmt.Sprintf("completed %d < min %d", res.Completed, s.MinCompleted))
	}
	return v
}
