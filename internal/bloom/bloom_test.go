package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(4096, 4)
	items := make([]string, 500)
	for i := range items {
		items[i] = fmt.Sprintf("attr=value-%d", i)
		f.Add(items[i])
	}
	for _, s := range items {
		if !f.Test(s) {
			t.Fatalf("false negative for %q", s)
		}
	}
	if f.Count() != 500 {
		t.Errorf("count = %d", f.Count())
	}
}

func TestNoFalseNegativesQuick(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	check := func(s string) bool {
		f.Add(s)
		return f.Test(s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 2000
	const target = 0.01
	f := NewForCapacity(n, target)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Test(fmt.Sprintf("nonmember-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*3 {
		t.Errorf("observed FPR %f greatly exceeds target %f", rate, target)
	}
	if est := f.EstimatedFPR(); est > target*3 {
		t.Errorf("estimated FPR %f exceeds target", est)
	}
}

func TestEmptyFilterMatchesNothing(t *testing.T) {
	f := New(1024, 3)
	for i := 0; i < 100; i++ {
		if f.Test(fmt.Sprintf("x%d", i)) {
			t.Fatalf("empty filter matched x%d", i)
		}
	}
	if f.FillRatio() != 0 {
		t.Error("empty filter should have zero fill")
	}
}

func TestUnion(t *testing.T) {
	a, b := New(2048, 4), New(2048, 4)
	a.Add("only-a")
	b.Add("only-b")
	if !a.Union(b) {
		t.Fatal("union of same-geometry filters failed")
	}
	if !a.Test("only-a") || !a.Test("only-b") {
		t.Error("union lost members")
	}
	c := New(4096, 4)
	if a.Union(c) {
		t.Error("union of mismatched geometry should fail")
	}
	if a.Union(New(2048, 3)) {
		t.Error("union of mismatched k should fail")
	}
}

func TestGeometryClamping(t *testing.T) {
	f := New(1, 0)
	if f.Bits() < 64 {
		t.Errorf("bits = %d", f.Bits())
	}
	f.Add("x")
	if !f.Test("x") {
		t.Error("clamped filter broken")
	}
	g := NewForCapacity(0, 2.0) // both inputs out of range
	g.Add("y")
	if !g.Test("y") {
		t.Error("defaulted capacity filter broken")
	}
}

func TestSizeAccuracyTradeoff(t *testing.T) {
	// Smaller summaries must produce more false positives — the E5 curve.
	const n = 1000
	rates := make([]float64, 0, 3)
	for _, mbits := range []uint64{2048, 8192, 65536} {
		f := New(mbits, 4)
		for i := 0; i < n; i++ {
			f.Add(fmt.Sprintf("m%d", i))
		}
		fp := 0
		for i := 0; i < 5000; i++ {
			if f.Test(fmt.Sprintf("probe%d", i)) {
				fp++
			}
		}
		rates = append(rates, float64(fp)/5000)
	}
	if !(rates[0] > rates[1] && rates[1] >= rates[2]) {
		t.Errorf("FPR should fall with size: %v", rates)
	}
}

func TestFillRatioMonotone(t *testing.T) {
	f := New(1024, 3)
	prev := 0.0
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		f.Add(fmt.Sprintf("k%d", r.Int63()))
		fill := f.FillRatio()
		if fill < prev {
			t.Fatal("fill ratio decreased")
		}
		prev = fill
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("fill = %f", prev)
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(1024, 3).SizeBytes(); got != 128 {
		t.Errorf("SizeBytes = %d", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewForCapacity(100000, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add("objectclass=computer")
	}
}

func BenchmarkTest(b *testing.B) {
	f := NewForCapacity(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add(fmt.Sprintf("m%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test("m5000")
	}
}
