package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format for summaries exchanged between shards: a fixed header
// followed by the bit words, all big-endian. Versioned by magic so future
// geometry changes stay decodable.
const marshalMagic = 0x4d425331 // "MBS1"

// ErrBadSummary reports a malformed marshaled filter.
var ErrBadSummary = errors.New("bloom: malformed summary")

// MarshalBinary encodes the filter for transfer (shard summary exchange).
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 20+len(f.bits)*8)
	var hdr [20]byte
	binary.BigEndian.PutUint32(hdr[0:], marshalMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(f.k))
	binary.BigEndian.PutUint64(hdr[8:], f.m)
	binary.BigEndian.PutUint32(hdr[16:], uint32(f.n))
	out = append(out, hdr[:]...)
	var w [8]byte
	for _, word := range f.bits {
		binary.BigEndian.PutUint64(w[:], word)
		out = append(out, w[:]...)
	}
	return out, nil
}

// UnmarshalBinary decodes a filter produced by MarshalBinary.
func UnmarshalBinary(b []byte) (*Filter, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrBadSummary, len(b))
	}
	if binary.BigEndian.Uint32(b[0:]) != marshalMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSummary)
	}
	k := int(binary.BigEndian.Uint32(b[4:]))
	m := binary.BigEndian.Uint64(b[8:])
	n := int(binary.BigEndian.Uint32(b[16:]))
	if k < 1 || m < 64 || m%64 != 0 {
		return nil, fmt.Errorf("%w: geometry k=%d m=%d", ErrBadSummary, k, m)
	}
	words := int(m / 64)
	if len(b) != 20+words*8 {
		return nil, fmt.Errorf("%w: want %d payload bytes, have %d", ErrBadSummary, words*8, len(b)-20)
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, n: n}
	for i := 0; i < words; i++ {
		f.bits[i] = binary.BigEndian.Uint64(b[20+i*8:])
	}
	return f, nil
}
