package bloom

import (
	"fmt"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("hn=h%04d", i))
	}
	b, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Count() != f.Count() {
		t.Fatalf("geometry changed: bits %d->%d count %d->%d", f.Bits(), g.Bits(), f.Count(), g.Count())
	}
	for i := 0; i < 1000; i++ {
		if !g.Test(fmt.Sprintf("hn=h%04d", i)) {
			t.Fatalf("decoded filter lost term %d", i)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if g.Test(fmt.Sprintf("hn=x%04d", i)) {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("decoded filter false-positive rate implausible: %d/1000", fp)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	good, _ := NewForCapacity(10, 0.01).MarshalBinary()
	bad := [][]byte{
		nil,
		{1, 2, 3},
		append([]byte{0xff}, good[1:]...),       // wrong magic
		good[:len(good)-4],                      // truncated payload
		append(append([]byte(nil), good...), 0), // trailing bytes
	}
	for i, b := range bad {
		if _, err := UnmarshalBinary(b); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}
