// Package bloom implements the Bloom filter used to reproduce the lossy
// aggregation alternative the paper cites from the Service Discovery
// Service (§5.1: directories "could also use lossy aggregation techniques,
// as in the Service Discovery Service, which hashes descriptions and
// summarizes hashes via Bloom filtering"). A GIIS index plugin summarizes
// each child's searchable terms into a filter and routes queries only to
// children whose summaries match.
package bloom

import (
	"hash/fnv"
	"math"
	"math/bits"
)

// Filter is a fixed-size Bloom filter using double hashing (Kirsch &
// Mitzenmacher) over FNV-64. The zero value is unusable; call New.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // elements added
}

// New creates a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64; m and k are clamped to sane minimums.
func New(m uint64, k int) *Filter {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewForCapacity sizes a filter for n expected elements at target false
// positive rate p, using the standard m = -n·lnp/ln²2, k = (m/n)·ln2.
func NewForCapacity(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

func hashPair(s string) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write([]byte(s))
	a := h1.Sum64()
	h2 := fnv.New64()
	h2.Write([]byte(s))
	h2.Write([]byte{0x9e})
	b := h2.Sum64() | 1 // odd, so strides cover the table
	return a, b
}

// Add inserts a term.
func (f *Filter) Add(s string) {
	a, b := hashPair(s)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// Test reports whether s may have been added (false positives possible,
// false negatives impossible).
func (f *Filter) Test(s string) bool {
	a, b := hashPair(s)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Union merges other into f; both must have identical geometry.
func (f *Filter) Union(other *Filter) bool {
	if f.m != other.m || f.k != other.k {
		return false
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return true
}

// Count returns the number of Add calls.
func (f *Filter) Count() int { return f.n }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFPR returns the expected false positive rate given the current
// fill: (fill)^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// SizeBytes returns the summary's transfer size, the quantity experiment E5
// trades against accuracy.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }
