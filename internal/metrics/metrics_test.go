package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, ok := h.Quantile(0.5)
	if !ok || p50 != 50*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	p99, _ := h.Quantile(0.99)
	if p99 != 99*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if min, _ := h.Quantile(0); min != time.Millisecond {
		t.Errorf("min = %v", min)
	}
	if max, _ := h.Quantile(1); max != 100*time.Millisecond {
		t.Errorf("max = %v", max)
	}
	if mean := h.Mean(); mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if _, ok := h.Quantile(0.5); ok {
		t.Error("empty quantile should report !ok")
	}
	if h.Mean() != 0 {
		t.Error("empty mean should be zero")
	}
	if !strings.Contains(h.Summary(), "n=0") {
		t.Error("summary should render empty histograms")
	}
}

func TestHistogramInterleavedObserveQuantile(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Quantile(0.5) // forces sort
	h.Observe(time.Millisecond)
	if p0, _ := h.Quantile(0); p0 != time.Millisecond {
		t.Errorf("min after resort = %v", p0)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Observe(time.Duration(i))
				h.Quantile(0.9)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1000 {
		t.Errorf("value = %d", c.Value())
	}
	c.Add(-1000)
	if c.Value() != 0 {
		t.Errorf("value = %d", c.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("E2: cache TTL sweep", "ttl", "hit-rate", "latency")
	tab.AddRow("10s", 0.91234, 1500*time.Microsecond)
	tab.AddRow("longer-ttl-value", 1.0, time.Millisecond)
	out := tab.String()
	if !strings.Contains(out, "E2: cache TTL sweep") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "0.912") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "1.5ms") {
		t.Errorf("duration formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, ===, header, ---, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: every data line at least as wide as the header line.
	if tab.Rows() != 2 {
		t.Errorf("rows = %d", tab.Rows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1, 2)
	out := tab.String()
	if strings.HasPrefix(out, "\n") || strings.Contains(out, "=") {
		t.Errorf("unexpected title decoration:\n%s", out)
	}
}
