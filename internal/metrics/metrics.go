// Package metrics provides the measurement primitives the experiment
// harness uses: latency histograms with quantiles, monotonic counters, and
// fixed-width table rendering for reproducing the paper's figures as text.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram accumulates duration samples and reports quantiles. It stores
// raw samples (experiments here are at most millions of points), keeping
// quantiles exact.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Quantile returns the q'th quantile (0 ≤ q ≤ 1) by nearest-rank, or zero
// with ok=false when empty.
func (h *Histogram) Quantile(q float64) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0, false
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx], true
}

// Mean returns the arithmetic mean, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Summary renders count/mean/p50/p95/p99 compactly.
func (h *Histogram) Summary() string {
	p50, _ := h.Quantile(0.50)
	p95, _ := h.Quantile(0.95)
	p99, _ := h.Quantile(0.99)
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v", h.Count(), h.Mean(), p50, p95, p99)
}

// Counter is a threadsafe monotonic counter. It sits on every chained
// operation, cache hit, and registration, so it is lock-free: Inc is a
// single atomic add and never contends the way a mutex does under fan-out.
type Counter struct {
	n atomic.Int64
}

// Add increments by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Inc increments by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Table renders experiment results as fixed-width text, the output format
// of cmd/mdsbench. Cells are stringified with %v; floats get 3 decimals.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted immediately.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted row count.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(width) && len(cell) < width[i] {
				b.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
