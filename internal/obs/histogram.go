package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: exponential bounds growing 25% per bucket from
// 1, spanning ~1ns to ~45min when samples are nanoseconds. Fixed geometry
// keeps Observe a binary search plus one atomic add — no locks, no
// allocation — at the cost of ≤25% relative quantile error, which is ample
// for latency telemetry.
const (
	numBuckets = 128
	growth     = 1.25
)

// bounds[i] is the inclusive upper bound of bucket i.
var bounds = func() [numBuckets]int64 {
	var b [numBuckets]int64
	f := 1.0
	for i := range b {
		f *= growth
		v := int64(math.Ceil(f))
		if i > 0 && v <= b[i-1] {
			v = b[i-1] + 1
		}
		b[i] = v
	}
	return b
}()

// bucketFor returns the index of the bucket holding v (numBuckets for
// overflow past the last bound).
func bucketFor(v int64) int {
	if v <= bounds[0] {
		return 0
	}
	if v > bounds[numBuckets-1] {
		return numBuckets
	}
	lo, hi := 1, numBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Histogram is a lock-free fixed-bucket histogram over int64 values
// (conventionally nanoseconds; also used for widths and byte counts). The
// zero value is ready to use; a nil *Histogram discards observations.
// A Histogram must not be copied after first use.
type Histogram struct {
	counts [numBuckets + 1]atomic.Int64 // last bucket holds overflow
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records a duration sample as nanoseconds.
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(int64(d)) }

// ObserveValue records one raw sample. Negative values clamp to zero.
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketFor(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the running sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the exact arithmetic mean as a duration, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// snapshot copies the bucket counts; total is their sum (consistent with the
// copied buckets even while concurrent Observes land).
func (h *Histogram) snapshot() (counts [numBuckets + 1]int64, total int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// QuantileValue returns the q'th quantile (0 ≤ q ≤ 1) of the raw samples by
// linear interpolation within the holding bucket, or ok=false when empty.
func (h *Histogram) QuantileValue(q float64) (int64, bool) {
	if h == nil {
		return 0, false
	}
	counts, total := h.snapshot()
	if total == 0 {
		return 0, false
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		if i == numBuckets {
			// Overflow bucket: the tracked max is the best upper estimate.
			return h.max.Load(), true
		}
		lo := int64(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if m := h.max.Load(); m < hi {
			hi = m // no sample exceeds the observed max
		}
		frac := float64(rank-cum) / float64(c)
		v := lo + int64(frac*float64(hi-lo)+0.5)
		if v > hi {
			v = hi
		}
		return v, true
	}
	return h.max.Load(), true
}

// Quantile returns the q'th quantile as a duration (for histograms recording
// nanoseconds), or ok=false when empty.
func (h *Histogram) Quantile(q float64) (time.Duration, bool) {
	v, ok := h.QuantileValue(q)
	return time.Duration(v), ok
}

// Summary renders count/mean/p50/p95/p99 compactly, interpreting samples as
// durations.
func (h *Histogram) Summary() string {
	p50, _ := h.Quantile(0.50)
	p95, _ := h.Quantile(0.95)
	p99, _ := h.Quantile(0.99)
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v", h.Count(), h.Mean(), p50, p95, p99)
}
