package obs

import (
	"sync"
	"testing"
	"time"
)

// mutexCounter is the pre-obs Counter design kept as a benchmark baseline:
// one mutex acquisition per Inc, which serializes every chained op and cache
// hit that shares the counter.
type mutexCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *mutexCounter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// BenchmarkCounterContention measures Inc under full parallelism: the
// atomic Counter against the mutex design it replaced.
func BenchmarkCounterContention(b *testing.B) {
	b.Run("atomic", func(b *testing.B) {
		var c Counter
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
		if c.Value() != int64(b.N) {
			b.Fatalf("count = %d, want %d", c.Value(), b.N)
		}
	})
	b.Run("mutex-baseline", func(b *testing.B) {
		var c mutexCounter
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}

// BenchmarkHistogramObserve measures the sample-recording path: a binary
// search over fixed bounds plus four atomic ops, no locks.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(time.Millisecond)
		}
	})
}
