package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mds2/internal/softstate"
)

// maxSpanChildren bounds the fan-out recorded under one span so a
// pathological query (or a long-lived persistent search) cannot grow a
// trace without bound; excess children are counted, not stored.
const maxSpanChildren = 256

// Span is one timed region of a traced request. Spans form a tree: child
// spans for sub-operations, grafted remote nodes for work a downstream hop
// reported back via the trace control. A nil *Span is a no-op, so
// instrumented code never checks whether tracing is active.
type Span struct {
	clock softstate.Clock
	start time.Time

	mu       sync.Mutex
	name     string
	note     string
	dur      time.Duration
	ended    bool
	children []*Span
	remote   []*SpanNode
	dropped  int
}

func newSpan(clock softstate.Clock, name string) *Span {
	return &Span{clock: clock, name: name, start: clock.Now()}
}

// Child opens a sub-span. The child is returned even when the parent's
// child list is full (the caller still times against it; it just is not
// retained in the tree).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.clock, name)
	s.mu.Lock()
	if len(s.children) < maxSpanChildren {
		s.children = append(s.children, c)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Subsequent Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.clock.Now()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = end.Sub(s.start)
	}
	s.mu.Unlock()
}

// SetNote attaches a short annotation (e.g. "hit", "miss,coalesced").
func (s *Span) SetNote(note string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.note = note
	s.mu.Unlock()
}

// AddTimed records an already-measured sub-operation as a closed child span
// (used where the duration is accumulated out-of-band, e.g. encode+write
// time summed across streamed entries).
func (s *Span) AddTimed(name string, d time.Duration, note string) {
	if s == nil {
		return
	}
	now := s.clock.Now()
	c := &Span{clock: s.clock, name: name, start: now.Add(-d), dur: d, ended: true, note: note}
	s.mu.Lock()
	if len(s.children) < maxSpanChildren {
		s.children = append(s.children, c)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
}

// Graft attaches a span tree reported by a remote hop.
func (s *Span) Graft(node *SpanNode) {
	if s == nil || node == nil {
		return
	}
	node.Remote = true
	s.mu.Lock()
	if len(s.remote) < maxSpanChildren {
		s.remote = append(s.remote, node)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
}

// export renders the span subtree with start offsets relative to base.
func (s *Span) export(base time.Time) *SpanNode {
	s.mu.Lock()
	node := &SpanNode{
		Name:    s.name,
		StartNs: s.start.Sub(base).Nanoseconds(),
		Note:    s.note,
		Dropped: s.dropped,
	}
	if s.ended {
		node.DurNs = s.dur.Nanoseconds()
	} else {
		node.DurNs = s.clock.Now().Sub(s.start).Nanoseconds()
		node.Open = true
	}
	children := s.children
	remote := s.remote
	s.mu.Unlock()
	for _, c := range children {
		node.Children = append(node.Children, c.export(base))
	}
	node.Children = append(node.Children, remote...)
	return node
}

// SpanNode is the serialized form of a span tree — what /debug/traces emits
// and what the trace-spans LDAP control carries between hops.
type SpanNode struct {
	Name     string      `json:"name"`
	StartNs  int64       `json:"start_ns"` // offset from the trace root's start
	DurNs    int64       `json:"dur_ns"`
	Note     string      `json:"note,omitempty"`
	Remote   bool        `json:"remote,omitempty"` // reported by a downstream hop
	Open     bool        `json:"open,omitempty"`   // span had not ended at export
	Dropped  int         `json:"dropped,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Trace is one traced request: an ID (minted at the first hop, carried to
// children via the trace control), the hop depth, and a root span.
type Trace struct {
	ID    string
	Op    string
	Peer  string
	Depth int
	Start time.Time

	root   *Span
	tracer *Tracer
	dur    atomic.Int64 // set by Finish
	done   atomic.Bool
}

// traceSeed randomizes trace IDs across processes; the per-process sequence
// number keeps them unique (and deterministic in order) within one.
var traceSeed = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15 // fixed fallback: IDs stay unique per process
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var traceSeq atomic.Uint64

// Begin starts a trace. id == "" mints a fresh ID (the caller is the first
// hop); a non-empty id joins a trace started upstream at the given depth.
// A nil tracer with an empty id returns nil — tracing fully off.
func Begin(clock softstate.Clock, tracer *Tracer, op, peer, id string, depth int) *Trace {
	if tracer == nil && id == "" {
		return nil
	}
	if clock == nil {
		clock = softstate.RealClock{}
	}
	if id == "" {
		id = fmt.Sprintf("%08x-%06x", uint32(traceSeed), traceSeq.Add(1))
	}
	root := newSpan(clock, op)
	return &Trace{ID: id, Op: op, Peer: peer, Depth: depth, Start: root.start,
		root: root, tracer: tracer}
}

// Root returns the trace's root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span and records the trace in the tracer's rings
// (recent, and slow when over threshold). Idempotent.
func (t *Trace) Finish() {
	if t == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	t.root.End()
	t.dur.Store(int64(t.root.dur))
	if t.tracer != nil {
		t.tracer.record(t)
	}
}

// Duration returns the root span's duration once finished.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.dur.Load())
}

// Export renders the whole trace, span offsets relative to the root start.
func (t *Trace) Export() *TraceExport {
	if t == nil {
		return nil
	}
	return &TraceExport{
		ID:    t.ID,
		Op:    t.Op,
		Peer:  t.Peer,
		Depth: t.Depth,
		Start: t.Start.UTC().Format(time.RFC3339Nano),
		DurNs: int64(t.Duration()),
		Spans: t.root.export(t.Start),
	}
}

// TraceExport is the JSON form of a finished trace (also the payload of the
// trace-spans response control).
type TraceExport struct {
	ID    string    `json:"id"`
	Op    string    `json:"op"`
	Peer  string    `json:"peer,omitempty"`
	Depth int       `json:"depth"`
	Start string    `json:"start"`
	DurNs int64     `json:"dur_ns"`
	Spans *SpanNode `json:"spans"`
}

// Tracer retains finished traces: a bounded ring of the most recent, and a
// second ring of those slower than SlowThreshold. Recording is O(1) and
// holds only the tracer's own lock.
type Tracer struct {
	clock softstate.Clock
	// SlowThreshold promotes traces at least this slow into the slow ring
	// and the slow counter. Zero disables the slow log.
	SlowThreshold time.Duration
	// SlowLog, when non-nil, receives a one-line record per slow trace.
	SlowLog func(t *TraceExport)

	mu     sync.Mutex
	recent ring
	slow   ring

	// Recorded/Slow count all finished traces / slow traces (exposed so a
	// Registry can surface them without reaching into the rings).
	Recorded Counter
	SlowSeen Counter
}

const (
	recentRingCap = 128
	slowRingCap   = 64
)

type ring struct {
	buf  []*Trace
	next int
	n    int
}

func (r *ring) add(t *Trace, cap int) {
	if r.buf == nil {
		r.buf = make([]*Trace, cap)
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// newestFirst returns the ring contents, most recent first.
func (r *ring) newestFirst() []*Trace {
	out := make([]*Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// NewTracer returns a tracer using the given clock for trace timing. slow
// is the slow-query threshold (0 disables the slow log).
func NewTracer(clock softstate.Clock, slow time.Duration) *Tracer {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Tracer{clock: clock, SlowThreshold: slow}
}

// Clock returns the tracer's clock (RealClock for a nil tracer), so callers
// minting traces share its time source.
func (t *Tracer) Clock() softstate.Clock {
	if t == nil || t.clock == nil {
		return softstate.RealClock{}
	}
	return t.clock
}

func (t *Tracer) record(tr *Trace) {
	t.Recorded.Inc()
	isSlow := t.SlowThreshold > 0 && tr.Duration() >= t.SlowThreshold
	t.mu.Lock()
	t.recent.add(tr, recentRingCap)
	if isSlow {
		t.slow.add(tr, slowRingCap)
	}
	t.mu.Unlock()
	if isSlow {
		t.SlowSeen.Inc()
		if t.SlowLog != nil {
			t.SlowLog(tr.Export())
		}
	}
}

// Recent exports the most recent finished traces, newest first.
func (t *Tracer) Recent() []*TraceExport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := t.recent.newestFirst()
	t.mu.Unlock()
	return exportAll(traces)
}

// Slow exports the retained slow traces, newest first.
func (t *Tracer) Slow() []*TraceExport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := t.slow.newestFirst()
	t.mu.Unlock()
	return exportAll(traces)
}

func exportAll(traces []*Trace) []*TraceExport {
	out := make([]*TraceExport, len(traces))
	for i, tr := range traces {
		out[i] = tr.Export()
	}
	return out
}

// FormatSpanTree pretty-prints a span tree, one span per line:
//
//	search 12.4ms
//	├─ queue 18µs
//	├─ backend 2.1ms (hit)
//	└─ chain:ldap://10.0.0.7:389 9.9ms
//	   └─ ▸ search 9.1ms        (▸ marks spans reported by a remote hop)
func FormatSpanTree(node *SpanNode) string {
	if node == nil {
		return ""
	}
	var b strings.Builder
	formatNode(&b, node, "", "", "")
	return b.String()
}

func formatNode(b *strings.Builder, n *SpanNode, prefix, branch, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(branch)
	if n.Remote {
		b.WriteString("▸ ")
	}
	b.WriteString(n.Name)
	fmt.Fprintf(b, " %v", time.Duration(n.DurNs).Round(time.Microsecond))
	if n.Open {
		b.WriteString(" (open)")
	}
	if n.Note != "" {
		fmt.Fprintf(b, " (%s)", n.Note)
	}
	if n.Dropped > 0 {
		fmt.Fprintf(b, " [+%d dropped]", n.Dropped)
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			formatNode(b, c, prefix+childPrefix, "└─ ", "   ")
		} else {
			formatNode(b, c, prefix+childPrefix, "├─ ", "│  ")
		}
	}
}
