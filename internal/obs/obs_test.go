package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1000 {
		t.Errorf("value = %d", c.Value())
	}
	c.Add(-1000)
	if c.Value() != 0 {
		t.Errorf("value = %d", c.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter should read zero")
	}
	var g *Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 0 {
		t.Error("nil gauge should read zero")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveValue(42)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil histogram should read zero")
	}
	if _, ok := h.Quantile(0.5); ok {
		t.Error("nil histogram quantile should report !ok")
	}
	var sp *Span
	sp.Child("x").End()
	sp.SetNote("note")
	sp.AddTimed("y", time.Second, "")
	sp.Graft(&SpanNode{Name: "z"})
	sp.End()
	var tr *Trace
	tr.Finish()
	if tr.Root() != nil || tr.Duration() != 0 || tr.Export() != nil {
		t.Error("nil trace should be inert")
	}
	var tc *Tracer
	if tc.Recent() != nil || tc.Slow() != nil {
		t.Error("nil tracer should export nothing")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(5)
	if g.Value() != 15 {
		t.Errorf("value = %d", g.Value())
	}
}

func TestBucketBoundsMonotonic(t *testing.T) {
	for i := 1; i < numBuckets; i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds[%d]=%d <= bounds[%d]=%d", i, bounds[i], i-1, bounds[i-1])
		}
	}
	// Geometry must cover realistic latencies: the last bound is > 30min in ns.
	if bounds[numBuckets-1] < int64(30*time.Minute) {
		t.Errorf("last bound %d covers too little", bounds[numBuckets-1])
	}
}

func TestBucketFor(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		if got := bucketFor(bounds[i]); got != i {
			t.Errorf("bucketFor(bounds[%d]=%d) = %d", i, bounds[i], got)
		}
	}
	if got := bucketFor(0); got != 0 {
		t.Errorf("bucketFor(0) = %d", got)
	}
	if got := bucketFor(bounds[numBuckets-1] + 1); got != numBuckets {
		t.Errorf("overflow bucket = %d", got)
	}
}

// TestHistogramQuantiles checks quantiles against the bucket geometry's
// documented ≤25% relative error (plus interpolation slack near bucket
// edges), unlike the exact-sample histogram this package replaced.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != int64(5050*time.Millisecond) {
		t.Fatalf("sum = %d", h.Sum())
	}
	if mean := h.Mean(); mean != 50500*time.Microsecond {
		t.Errorf("mean = %v (mean is exact, not bucketed)", mean)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("q%.2f: !ok", q)
		}
		lo := want - want/3
		hi := want + want/3
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
	check(0.50, 50*time.Millisecond)
	check(0.95, 95*time.Millisecond)
	check(0.99, 99*time.Millisecond)
	// The top quantile clamps to the tracked max exactly.
	if max, _ := h.Quantile(1); max > 100*time.Millisecond {
		t.Errorf("q1 = %v exceeds max sample", max)
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Hour) // beyond the last bound
	h.ObserveValue(-5)       // clamps to zero
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q, _ := h.Quantile(1); q != 2*time.Hour {
		t.Errorf("overflow quantile = %v, want the tracked max", q)
	}
	if q, _ := h.Quantile(0.01); q > time.Duration(bounds[0]) {
		t.Errorf("low quantile = %v, want within the first bucket", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if _, ok := h.Quantile(0.5); ok {
		t.Error("empty quantile should report !ok")
	}
	if h.Mean() != 0 {
		t.Error("empty mean should be zero")
	}
	if !strings.Contains(h.Summary(), "n=0") {
		t.Error("summary should render empty histograms")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// quantiles are read; run under -race this is the storm test.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i))
				if i%100 == 0 {
					h.Quantile(0.9)
					h.Summary()
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
}
