package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a name-keyed collection of instruments. Instruments are
// created on first lookup and shared thereafter; components may also
// register externally allocated instruments or read-only sampling
// functions. A nil *Registry hands out nil instruments, which are no-op
// recorders — so a component wired with an optional registry needs no
// conditionals at observation sites.
//
// Metric names follow Prometheus conventions: counters end in _total,
// histograms carry a unit suffix (_ns for nanoseconds, _bytes for sizes,
// none for dimensionless widths).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	counterFns map[string]func() int64
	gaugeFns   map[string]func() float64
	labeledFns map[string]labeledGaugeFn
}

// LabeledValue is one sample of a labeled gauge family: the label value and
// the gauge reading.
type LabeledValue struct {
	Label string
	Value float64
}

type labeledGaugeFn struct {
	label string
	fn    func() []LabeledValue
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		hists:      map[string]*Histogram{},
		counterFns: map[string]func() int64{},
		gaugeFns:   map[string]func() float64{},
		labeledFns: map[string]labeledGaugeFn{},
	}
}

// sanitizeName maps arbitrary strings onto the Prometheus metric-name
// alphabet ([a-zA-Z_:][a-zA-Z0-9_:]*).
func sanitizeName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		ok = false
		break
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// Counter returns the named counter, creating it if absent. Nil registry →
// nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter adopts an externally allocated counter under name, so a
// component's existing counter field and the registry share one value.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[sanitizeName(name)] = c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a read-only sampling function rendered as a counter
// (for values maintained elsewhere, e.g. softstate expiry totals).
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFns[sanitizeName(name)] = fn
}

// GaugeFunc registers a read-only sampling function rendered as a gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[sanitizeName(name)] = fn
}

// LabeledGaugeFunc registers a sampling function rendered as a gauge family
// with one label dimension: one `name{label="value"} v` line per returned
// sample. The function is sampled outside the registry lock, like GaugeFunc,
// so it may take component locks of its own.
func (r *Registry) LabeledGaugeFunc(name, label string, fn func() []LabeledValue) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.labeledFns[sanitizeName(name)] = labeledGaugeFn{label: sanitizeName(label), fn: fn}
}

// escapeLabelValue escapes a Prometheus label value (backslash, quote,
// newline).
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// WritePrometheus renders every instrument in Prometheus text exposition
// format, families sorted by name. Histogram buckets are emitted sparsely
// (only boundaries whose cumulative count changed, plus +Inf) — valid input
// for histogram_quantile, a fraction of the lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters)+len(r.counterFns))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	fns := make(map[string]func() int64, len(r.counterFns))
	for name, fn := range r.counterFns {
		fns[name] = fn
	}
	gauges := make(map[string]float64, len(r.gauges)+len(r.gaugeFns))
	for name, g := range r.gauges {
		gauges[name] = float64(g.Value())
	}
	gfns := make(map[string]func() float64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		gfns[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	lfns := make(map[string]labeledGaugeFn, len(r.labeledFns))
	for name, lf := range r.labeledFns {
		lfns[name] = lf
	}
	r.mu.Unlock()
	// Sampling functions run outside the registry lock: they may take other
	// locks (softstate.Registry.mu) that must never nest under ours.
	for name, fn := range fns {
		counters[name] = fn()
	}
	for name, fn := range gfns {
		gauges[name] = fn()
	}
	type labeledFamily struct {
		label   string
		samples []LabeledValue
	}
	labeled := make(map[string]labeledFamily, len(lfns))
	for name, lf := range lfns {
		labeled[name] = labeledFamily{label: lf.label, samples: lf.fn()}
	}

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name,
			strconv.FormatFloat(gauges[name], 'g', -1, 64))
	}
	for _, name := range sortedKeys(labeled) {
		fam := labeled[name]
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		samples := append([]LabeledValue(nil), fam.samples...)
		sort.Slice(samples, func(i, j int) bool { return samples[i].Label < samples[j].Label })
		for _, s := range samples {
			fmt.Fprintf(&b, "%s{%s=\"%s\"} %s\n", name, fam.label, escapeLabelValue(s.Label),
				strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
	}
	for _, name := range sortedKeys(hists) {
		writeHistogram(&b, name, hists[name])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	counts, total := h.snapshot()
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		if i == numBuckets {
			break // overflow renders as +Inf below
		}
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, bounds[i], cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(b, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", name, total)
}
