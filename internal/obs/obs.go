// Package obs is the observability subsystem: named counters, gauges, and
// fixed-bucket latency histograms collected in a Registry (rendered as
// Prometheus text), plus per-query request tracing with spans that follow a
// GRIP search across GIIS→GRIS chain hops via an LDAP control.
//
// Two properties shape every type here:
//
//   - Disabled means free. Every instrument method is nil-safe: a nil
//     *Counter, *Gauge, *Histogram, *Span, *Trace, or *Tracer is a no-op
//     recorder, so instrumented hot paths pay one predictable branch and
//     zero allocations when observability is off (verified by
//     BenchmarkObsDisabledOverhead in internal/ldap).
//
//   - Time is injected. All timing flows through softstate.Clock, never raw
//     time.Now, so mdslint's clockcheck stays exemption-free and traces are
//     deterministic under FakeClock.
package obs

import "sync/atomic"

// Counter is a lock-free monotonic counter. The zero value is ready to use;
// a nil *Counter discards increments and reads as zero.
type Counter struct {
	n atomic.Int64
}

// Add increments by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Inc increments by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a lock-free instantaneous value (in-flight operations, pool
// sizes). The zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	n atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.n.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.n.Add(delta)
}

// Inc increments by one.
func (g *Gauge) Inc() {
	if g == nil {
		return
	}
	g.n.Add(1)
}

// Dec decrements by one.
func (g *Gauge) Dec() {
	if g == nil {
		return
	}
	g.n.Add(-1)
}

// Value returns the current value (zero for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}
