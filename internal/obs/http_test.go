package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mds2/internal/softstate"
)

var errDown = errors.New("backend down")

func newTestHandler(t *testing.T) (*Handler, *softstate.FakeClock) {
	t.Helper()
	clock := softstate.NewFakeClock()
	reg := NewRegistry()
	reg.Counter("reqs_total").Add(4)
	reg.Histogram("lat_ns").Observe(time.Millisecond)
	tracer := NewTracer(clock, 10*time.Millisecond)
	tr := Begin(clock, tracer, "search", "peer:1", "", 0)
	clock.Advance(20 * time.Millisecond)
	tr.Finish()

	ss := softstate.NewRegistry(clock)
	ss.Refresh("ldap://child:389", nil, time.Minute)
	clock.Advance(10 * time.Second)

	h := NewHandler(reg, tracer, clock)
	h.AddTable("children", ss)
	return h, clock
}

func TestHandlerMetrics(t *testing.T) {
	h, _ := newTestHandler(t)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	types, samples := parseProm(t, rr.Body.String())
	if types["reqs_total"] != "counter" || types["lat_ns"] != "histogram" {
		t.Errorf("families missing: %v", types)
	}
	found := map[string]bool{}
	for _, s := range samples {
		found[s.name] = true
	}
	for _, want := range []string{"reqs_total", "lat_ns_bucket", "lat_ns_sum", "lat_ns_count"} {
		if !found[want] {
			t.Errorf("missing series %s in:\n%s", want, rr.Body.String())
		}
	}
}

func TestHandlerTraces(t *testing.T) {
	h, _ := newTestHandler(t)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	var body struct {
		SlowThresholdNs int64          `json:"slow_threshold_ns"`
		Recent          []*TraceExport `json:"recent"`
		Slow            []*TraceExport `json:"slow"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if body.SlowThresholdNs != int64(10*time.Millisecond) {
		t.Errorf("threshold = %d", body.SlowThresholdNs)
	}
	if len(body.Recent) != 1 || body.Recent[0].Op != "search" || body.Recent[0].Peer != "peer:1" {
		t.Errorf("recent = %+v", body.Recent)
	}
	if len(body.Slow) != 1 { // 20ms > 10ms threshold
		t.Errorf("slow = %+v", body.Slow)
	}
}

func TestHandlerRegistry(t *testing.T) {
	h, _ := newTestHandler(t)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/registry", nil))
	var tables []RegistryTable
	if err := json.Unmarshal(rr.Body.Bytes(), &tables); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(tables) != 1 || tables[0].Table != "children" || tables[0].Live != 1 {
		t.Fatalf("tables = %+v", tables)
	}
	e := tables[0].Entries[0]
	if e.Key != "ldap://child:389" {
		t.Errorf("key = %q", e.Key)
	}
	if e.ExpiresInMs != 50_000 { // 60s TTL minus the 10s the clock advanced
		t.Errorf("expires_in_ms = %d", e.ExpiresInMs)
	}
	if e.Refreshes != 1 { // the joining Refresh counts
		t.Errorf("refreshes = %d", e.Refreshes)
	}
}

func TestHandlerIndexAnd404(t *testing.T) {
	h, _ := newTestHandler(t)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "/metrics") {
		t.Errorf("index: %d %q", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))
	if rr.Code != 404 {
		t.Errorf("unknown path status = %d", rr.Code)
	}
}

func TestHandlerHealthz(t *testing.T) {
	h, _ := newTestHandler(t)
	// No probes registered: trivially healthy (the process answered).
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("no-probe /healthz = %d", rr.Code)
	}

	h.AddHealthCheck("ldap", func() (time.Duration, error) {
		return 2 * time.Millisecond, nil
	})
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("healthy /healthz = %d, body %s", rr.Code, rr.Body.String())
	}
	var body struct {
		Healthy bool           `json:"healthy"`
		Checks  []HealthResult `json:"checks"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Healthy || len(body.Checks) != 1 || body.Checks[0].Check != "ldap" ||
		!body.Checks[0].Healthy || body.Checks[0].LatencyMs != 2 {
		t.Fatalf("healthy body = %+v", body)
	}

	// One failing probe flips the status to 503 and names the failure.
	h.AddHealthCheck("backend", func() (time.Duration, error) {
		return time.Millisecond, errDown
	})
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 503 {
		t.Fatalf("unhealthy /healthz = %d", rr.Code)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Healthy || len(body.Checks) != 2 {
		t.Fatalf("unhealthy body = %+v", body)
	}
	// Sorted by name: backend first, carrying its error.
	if body.Checks[0].Check != "backend" || body.Checks[0].Healthy ||
		!strings.Contains(body.Checks[0].Error, "backend down") {
		t.Fatalf("failing check = %+v", body.Checks[0])
	}
}
