package obs

import (
	"encoding/json"
	"fmt"
	"strings"

	"mds2/internal/ber"
)

// LDAP control OIDs for trace propagation (private-enterprise arc). The
// request control rides on a chained search to a child hop; the spans
// control rides back on the final response of a traced operation.
const (
	// OIDTraceRequest's value is BER: SEQUENCE { traceID OCTET STRING,
	// depth INTEGER }. Non-critical: servers without obs ignore it.
	OIDTraceRequest = "1.3.6.1.4.1.57846.1.1"
	// OIDTraceSpans's value is the JSON TraceExport of the hop's span tree.
	OIDTraceSpans = "1.3.6.1.4.1.57846.1.2"
)

// EncodeTraceRequest encodes a trace-request control value.
func EncodeTraceRequest(id string, depth int) []byte {
	return ber.Marshal(ber.NewSequence().Append(
		ber.NewOctetString(id),
		ber.NewInteger(int64(depth)),
	))
}

// DecodeTraceRequest decodes a trace-request control value.
func DecodeTraceRequest(value []byte) (id string, depth int, err error) {
	p, err := ber.DecodeFull(value)
	if err != nil {
		return "", 0, err
	}
	if len(p.Children) != 2 {
		return "", 0, fmt.Errorf("obs: bad trace request control")
	}
	// Clone: Str may view the caller's frame buffer, and the trace ID
	// outlives the request frame.
	id = strings.Clone(p.Child(0).Str())
	d, err := p.Child(1).Int64()
	if err != nil {
		return "", 0, err
	}
	return id, int(d), nil
}

// EncodeSpans encodes a trace-spans control value.
func EncodeSpans(t *TraceExport) []byte {
	b, err := json.Marshal(t)
	if err != nil {
		return nil
	}
	return b
}

// DecodeSpans decodes a trace-spans control value.
func DecodeSpans(value []byte) (*TraceExport, error) {
	var t TraceExport
	if err := json.Unmarshal(value, &t); err != nil {
		return nil, err
	}
	return &t, nil
}
