package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"mds2/internal/softstate"
)

// Handler is the live introspection endpoint mounted behind -obs-addr:
//
//	/metrics         Prometheus text exposition of the Registry
//	/debug/traces    recent + slow traces as JSON
//	/debug/registry  soft-state tables: key, TTL remaining, last refresh
//	/debug/qcache    query-result cache snapshots: config, stats, keys
//	/healthz         registered liveness probes; 200 all-pass, 503 otherwise
//
// Handler starts no goroutines and owns no listener; callers (cmd/gris,
// cmd/giis, the wire experiment) pair it with http.Serve.
type Handler struct {
	reg    *Registry
	tracer *Tracer
	clock  softstate.Clock

	mu     sync.Mutex
	tables []namedTable
	caches []namedCache
	probes []namedProbe
}

type namedTable struct {
	name string
	reg  *softstate.Registry
}

type namedCache struct {
	name string
	fn   func() any
}

type namedProbe struct {
	name string
	fn   func() (time.Duration, error)
}

// NewHandler serves reg and tracer (either may be nil).
func NewHandler(reg *Registry, tracer *Tracer, clock softstate.Clock) *Handler {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Handler{reg: reg, tracer: tracer, clock: clock}
}

// AddTable exposes a soft-state registry under /debug/registry.
func (h *Handler) AddTable(name string, r *softstate.Registry) {
	if h == nil || r == nil {
		return
	}
	h.mu.Lock()
	h.tables = append(h.tables, namedTable{name: name, reg: r})
	h.mu.Unlock()
}

// AddCache exposes a query-cache debug snapshot under /debug/qcache. fn is
// called per request (typically qcache.Cache.Debug) so the page always
// reflects live state.
func (h *Handler) AddCache(name string, fn func() any) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.caches = append(h.caches, namedCache{name: name, fn: fn})
	h.mu.Unlock()
}

// AddHealthCheck registers a liveness probe run on every /healthz request
// (e.g. ldap.HealthCheck.Probe: dial + anonymous bind + RootDSE search
// against the server's own listener).
func (h *Handler) AddHealthCheck(name string, fn func() (time.Duration, error)) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.probes = append(h.probes, namedProbe{name: name, fn: fn})
	h.mu.Unlock()
}

// HealthResult is one probe's outcome in the /healthz body.
type HealthResult struct {
	Check     string  `json:"check"`
	Healthy   bool    `json:"healthy"`
	LatencyMs float64 `json:"latency_ms"`
	Error     string  `json:"error,omitempty"`
}

// healthz runs every registered probe; the status code carries the verdict
// so orchestrators need not parse the body.
func (h *Handler) healthz(w http.ResponseWriter) {
	h.mu.Lock()
	probes := make([]namedProbe, len(h.probes))
	copy(probes, h.probes)
	h.mu.Unlock()
	healthy := true
	results := make([]HealthResult, 0, len(probes))
	for _, p := range probes {
		d, err := p.fn()
		r := HealthResult{Check: p.name, Healthy: err == nil,
			LatencyMs: float64(d) / float64(time.Millisecond)}
		if err != nil {
			r.Error = err.Error()
			healthy = false
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Check < results[j].Check })
	if !healthy {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"healthy": false, "checks": results})
		return
	}
	writeJSON(w, map[string]any{"healthy": true, "checks": results})
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.reg.WritePrometheus(w); err != nil {
			return // client went away mid-write; nothing else to do
		}
	case "/debug/traces":
		writeJSON(w, map[string]any{
			"slow_threshold_ns": int64(h.slowThreshold()),
			"recent":            orEmpty(h.tracer.Recent()),
			"slow":              orEmpty(h.tracer.Slow()),
		})
	case "/debug/registry":
		writeJSON(w, h.registrySnapshot())
	case "/debug/qcache":
		writeJSON(w, h.cacheSnapshot())
	case "/healthz":
		h.healthz(w)
	case "/":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("mds2 obs endpoints: /metrics /debug/traces /debug/registry /debug/qcache /healthz\n"))
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) slowThreshold() time.Duration {
	if h.tracer == nil {
		return 0
	}
	return h.tracer.SlowThreshold
}

func orEmpty(t []*TraceExport) []*TraceExport {
	if t == nil {
		return []*TraceExport{}
	}
	return t
}

// RegistryEntry is one row of a /debug/registry table.
type RegistryEntry struct {
	Key         string `json:"key"`
	ExpiresInMs int64  `json:"expires_in_ms"`
	LastRefresh string `json:"last_refresh"`
	JoinedAt    string `json:"joined_at"`
	Refreshes   int    `json:"refreshes"`
}

// RegistryTable is one named soft-state table snapshot.
type RegistryTable struct {
	Table   string          `json:"table"`
	Live    int             `json:"live"`
	Expired uint64          `json:"expired_total"`
	Entries []RegistryEntry `json:"entries"`
}

func (h *Handler) registrySnapshot() []RegistryTable {
	h.mu.Lock()
	tables := make([]namedTable, len(h.tables))
	copy(tables, h.tables)
	h.mu.Unlock()
	now := h.clock.Now()
	out := make([]RegistryTable, 0, len(tables))
	for _, t := range tables {
		live := t.reg.Live()
		rt := RegistryTable{
			Table:   t.name,
			Live:    len(live),
			Expired: t.reg.ExpiredTotal(),
			Entries: make([]RegistryEntry, 0, len(live)),
		}
		for _, it := range live {
			rt.Entries = append(rt.Entries, RegistryEntry{
				Key:         it.Key,
				ExpiresInMs: it.ExpiresAt.Sub(now).Milliseconds(),
				LastRefresh: it.LastRefresh.UTC().Format(time.RFC3339Nano),
				JoinedAt:    it.JoinedAt.UTC().Format(time.RFC3339Nano),
				Refreshes:   it.Refreshes,
			})
		}
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// CacheSnapshot is one named query-cache debug dump.
type CacheSnapshot struct {
	Cache string `json:"cache"`
	State any    `json:"state"`
}

func (h *Handler) cacheSnapshot() []CacheSnapshot {
	h.mu.Lock()
	caches := make([]namedCache, len(h.caches))
	copy(caches, h.caches)
	h.mu.Unlock()
	out := make([]CacheSnapshot, 0, len(caches))
	for _, c := range caches {
		out = append(out, CacheSnapshot{Cache: c.name, State: c.fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cache < out[j].Cache })
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // best-effort: client may disconnect mid-body
}
