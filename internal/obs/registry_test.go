package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Error("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name must return the same gauge")
	}
	if r.Histogram("h_ns") != r.Histogram("h_ns") {
		t.Error("same name must return the same histogram")
	}
}

func TestNilRegistryHandsOutNilInstruments(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	r.RegisterCounter("x", &Counter{})
	r.CounterFunc("x", func() int64 { return 1 })
	r.GaugeFunc("x", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name:v2":       "ok_name:v2",
		"chain.ldap://x:1": "chain_ldap:__x:1", // ':' is legal in the Prometheus alphabet
		"9lead":            "_lead",
		"":                 "_",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisterCounterAdoption(t *testing.T) {
	r := NewRegistry()
	var own Counter
	own.Add(7)
	r.RegisterCounter("adopted_total", &own)
	if r.Counter("adopted_total").Value() != 7 {
		t.Error("adopted counter must share the external value")
	}
}

// promSample is one parsed line of Prometheus text exposition.
type promSample struct {
	name   string
	labels string
	value  float64
}

// parseProm parses the subset of the text format the registry emits.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := line[:sp]
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels = name[i:]
			name = name[:i]
		}
		samples = append(samples, promSample{name: name, labels: labels, value: v})
	}
	return types, samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(3)
	r.Gauge("inflight").Set(2)
	r.CounterFunc("sampled_total", func() int64 { return 9 })
	r.GaugeFunc("ratio", func() float64 { return 0.5 })
	h := r.Histogram("lat_ns")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Hour) // overflow bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, b.String())
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.name+s.labels] = s.value
	}
	if types["reqs_total"] != "counter" || byName["reqs_total"] != 3 {
		t.Errorf("counter family wrong: %v %v", types["reqs_total"], byName["reqs_total"])
	}
	if types["inflight"] != "gauge" || byName["inflight"] != 2 {
		t.Errorf("gauge family wrong")
	}
	if byName["sampled_total"] != 9 || byName["ratio"] != 0.5 {
		t.Errorf("sampling funcs wrong: %v %v", byName["sampled_total"], byName["ratio"])
	}
	if types["lat_ns"] != "histogram" {
		t.Fatalf("lat_ns type = %q", types["lat_ns"])
	}
	if byName["lat_ns_count"] != 3 {
		t.Errorf("histogram count = %v", byName["lat_ns_count"])
	}
	if byName[`lat_ns_bucket{le="+Inf"}`] != 3 {
		t.Errorf("+Inf bucket = %v", byName[`lat_ns_bucket{le="+Inf"}`])
	}
	// Buckets are cumulative and non-decreasing in bound order.
	var prevBound, prevCum float64 = -1, -1
	for _, s := range samples {
		if s.name != "lat_ns_bucket" || s.labels == `{le="+Inf"}` {
			continue
		}
		bound, err := strconv.ParseFloat(strings.Trim(strings.TrimPrefix(s.labels, `{le="`), `"}`), 64)
		if err != nil {
			t.Fatalf("bad bucket label %q", s.labels)
		}
		if bound <= prevBound || s.value < prevCum {
			t.Errorf("bucket %q=%v not cumulative after %v=%v", s.labels, s.value, prevBound, prevCum)
		}
		prevBound, prevCum = bound, s.value
	}
	if prevCum > byName[`lat_ns_bucket{le="+Inf"}`] {
		t.Error("finite buckets exceed +Inf")
	}
}

// TestRegistryConcurrentStorm races creation, observation, and rendering;
// meaningful under -race.
func TestRegistryConcurrentStorm(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("c%d_total", i%5)).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_ns").ObserveValue(int64(i))
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for i := 0; i < 5; i++ {
		total += r.Counter(fmt.Sprintf("c%d_total", i)).Value()
	}
	if total != 8*200 {
		t.Errorf("counter total = %d", total)
	}
	if r.Histogram("h_ns").Count() != 8*200 {
		t.Errorf("histogram count = %d", r.Histogram("h_ns").Count())
	}
}

// TestLabeledGaugeFunc: labeled gauge families render one sample line per
// label value, sorted by label, with Prometheus label-value escaping; a nil
// registry swallows the registration.
func TestLabeledGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.LabeledGaugeFunc("giis_child_up", "child", func() []LabeledValue {
		return []LabeledValue{
			{Label: "zeta", Value: 0},
			{Label: "alpha", Value: 1},
			{Label: `we"ird\lab` + "\nel", Value: 1},
		}
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE giis_child_up gauge") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	wantInOrder := []string{
		`giis_child_up{child="alpha"} 1`,
		`giis_child_up{child="we\"ird\\lab\nel"} 1`,
		`giis_child_up{child="zeta"} 0`,
	}
	last := -1
	for _, want := range wantInOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("missing sample %q in:\n%s", want, out)
		}
		if i < last {
			t.Errorf("sample %q out of label order", want)
		}
		last = i
	}

	var nilReg *Registry
	nilReg.LabeledGaugeFunc("x", "l", func() []LabeledValue { return nil }) // must not panic
}
