package obs

import (
	"strings"
	"testing"
	"time"

	"mds2/internal/softstate"
)

func TestTraceSpansUnderFakeClock(t *testing.T) {
	clock := softstate.NewFakeClock()
	tr := Begin(clock, NewTracer(clock, 0), "search", "127.0.0.1:9", "", 0)
	if tr == nil {
		t.Fatal("Begin returned nil with a tracer")
	}
	if tr.ID == "" {
		t.Error("trace must mint an ID when none is supplied")
	}
	queue := tr.Root().Child("queue")
	clock.Advance(3 * time.Millisecond)
	queue.End()
	backend := tr.Root().Child("backend:corpus")
	backend.SetNote("hit")
	clock.Advance(10 * time.Millisecond)
	backend.End()
	backend.End() // idempotent
	tr.Root().AddTimed("encode+write", 2*time.Millisecond, "5 entries")
	tr.Root().Child("open-span") // never ended: exports as open
	clock.Advance(time.Millisecond)
	tr.Finish()
	tr.Finish() // idempotent

	if tr.Duration() != 14*time.Millisecond {
		t.Errorf("duration = %v", tr.Duration())
	}
	ex := tr.Export()
	if ex.DurNs != int64(14*time.Millisecond) || ex.Op != "search" {
		t.Errorf("export root wrong: %+v", ex)
	}
	if len(ex.Spans.Children) != 4 {
		t.Fatalf("children = %d", len(ex.Spans.Children))
	}
	q := ex.Spans.Children[0]
	if q.Name != "queue" || q.DurNs != int64(3*time.Millisecond) || q.StartNs != 0 {
		t.Errorf("queue span wrong: %+v", q)
	}
	b := ex.Spans.Children[1]
	if b.Note != "hit" || b.DurNs != int64(10*time.Millisecond) || b.StartNs != int64(3*time.Millisecond) {
		t.Errorf("backend span wrong: %+v", b)
	}
	if e := ex.Spans.Children[2]; e.Name != "encode+write" || e.DurNs != int64(2*time.Millisecond) {
		t.Errorf("timed span wrong: %+v", e)
	}
	if o := ex.Spans.Children[3]; !o.Open {
		t.Errorf("unended span must export as open: %+v", o)
	}
}

func TestTraceJoinsUpstreamID(t *testing.T) {
	clock := softstate.NewFakeClock()
	// No tracer, but an upstream ID: the hop still traces (it must report
	// spans back to the parent) without recording anything locally.
	tr := Begin(clock, nil, "search", "", "abc-123", 2)
	if tr == nil {
		t.Fatal("Begin must trace when an upstream ID is present")
	}
	if tr.ID != "abc-123" || tr.Depth != 2 {
		t.Errorf("trace = %+v", tr)
	}
	tr.Finish()
	// Fully off: no tracer, no upstream ID.
	if Begin(clock, nil, "search", "", "", 0) != nil {
		t.Error("Begin must return nil with no tracer and no ID")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	clock := softstate.NewFakeClock()
	tc := NewTracer(clock, 0)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tr := Begin(clock, tc, "op", "", "", 0)
		if seen[tr.ID] {
			t.Fatalf("duplicate trace ID %q", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestTracerRingsAndSlowLog(t *testing.T) {
	clock := softstate.NewFakeClock()
	tc := NewTracer(clock, 10*time.Millisecond)
	var slowLogged []string
	tc.SlowLog = func(t *TraceExport) { slowLogged = append(slowLogged, t.ID) }

	mk := func(d time.Duration) *Trace {
		tr := Begin(clock, tc, "search", "", "", 0)
		clock.Advance(d)
		tr.Finish()
		return tr
	}
	fast := mk(time.Millisecond)
	slow := mk(25 * time.Millisecond)
	edge := mk(10 * time.Millisecond) // >= threshold is slow

	recent := tc.Recent()
	if len(recent) != 3 || recent[0].ID != edge.ID || recent[2].ID != fast.ID {
		t.Fatalf("recent order wrong: %+v", ids(recent))
	}
	slowTraces := tc.Slow()
	if len(slowTraces) != 2 || slowTraces[0].ID != edge.ID || slowTraces[1].ID != slow.ID {
		t.Fatalf("slow ring wrong: %+v", ids(slowTraces))
	}
	if len(slowLogged) != 2 {
		t.Fatalf("slow log called %d times", len(slowLogged))
	}
	if tc.Recorded.Value() != 3 || tc.SlowSeen.Value() != 2 {
		t.Errorf("counters: recorded=%d slow=%d", tc.Recorded.Value(), tc.SlowSeen.Value())
	}

	// The recent ring is bounded: oldest entries fall off.
	for i := 0; i < recentRingCap+10; i++ {
		mk(time.Microsecond)
	}
	if n := len(tc.Recent()); n != recentRingCap {
		t.Errorf("recent ring length = %d, want %d", n, recentRingCap)
	}
}

func TestSpanChildCap(t *testing.T) {
	clock := softstate.NewFakeClock()
	tr := Begin(clock, NewTracer(clock, 0), "search", "", "", 0)
	for i := 0; i < maxSpanChildren+7; i++ {
		tr.Root().Child("c").End()
	}
	tr.Finish()
	ex := tr.Export()
	if len(ex.Spans.Children) != maxSpanChildren {
		t.Errorf("children = %d", len(ex.Spans.Children))
	}
	if ex.Spans.Dropped != 7 {
		t.Errorf("dropped = %d", ex.Spans.Dropped)
	}
}

func TestGraftAndFormat(t *testing.T) {
	clock := softstate.NewFakeClock()
	tr := Begin(clock, NewTracer(clock, 0), "search", "", "", 0)
	chain := tr.Root().Child("chain:ldap://child:389")
	chain.Graft(&SpanNode{Name: "search", DurNs: int64(time.Millisecond),
		Children: []*SpanNode{{Name: "queue", DurNs: 1000}}})
	clock.Advance(2 * time.Millisecond)
	chain.End()
	tr.Finish()
	ex := tr.Export()

	remote := ex.Spans.Children[0].Children[0]
	if !remote.Remote {
		t.Error("grafted node must be marked remote")
	}
	out := FormatSpanTree(ex.Spans)
	for _, want := range []string{"search 2ms", "└─ chain:ldap://child:389 2ms", "▸ search 1ms", "└─ queue 1µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestControlRoundTrip(t *testing.T) {
	val := EncodeTraceRequest("abc-42", 3)
	id, depth, err := DecodeTraceRequest(val)
	if err != nil || id != "abc-42" || depth != 3 {
		t.Fatalf("round trip: id=%q depth=%d err=%v", id, depth, err)
	}
	if _, _, err := DecodeTraceRequest([]byte{0xff, 0x00}); err == nil {
		t.Error("garbage must not decode")
	}

	ex := &TraceExport{ID: "abc-42", Op: "search", DurNs: 5,
		Spans: &SpanNode{Name: "search", DurNs: 5}}
	got, err := DecodeSpans(EncodeSpans(ex))
	if err != nil || got.ID != "abc-42" || got.Spans.Name != "search" {
		t.Fatalf("spans round trip: %+v err=%v", got, err)
	}
}

func ids(t []*TraceExport) []string {
	out := make([]string, len(t))
	for i, tr := range t {
		out[i] = tr.ID
	}
	return out
}
