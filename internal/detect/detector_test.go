package detect

import (
	"fmt"
	"testing"
	"time"

	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

func TestBasicSuspicionAndRecovery(t *testing.T) {
	clock := softstate.NewFakeClock()
	d := New(30*time.Second, clock)

	tr := d.Observe("p1")
	if tr == nil || tr.To != StatusAlive {
		t.Fatalf("first observe transition = %+v", tr)
	}
	if d.Status("p1") != StatusAlive {
		t.Fatal("should be alive")
	}
	clock.Advance(29 * time.Second)
	if got := d.Check(); len(got) != 0 {
		t.Fatalf("premature suspicion: %+v", got)
	}
	clock.Advance(2 * time.Second)
	got := d.Check()
	if len(got) != 1 || got[0].Key != "p1" || got[0].To != StatusSuspected {
		t.Fatalf("transitions = %+v", got)
	}
	if got[0].SilentFor < 30*time.Second {
		t.Errorf("silentFor = %v", got[0].SilentFor)
	}
	// A late message recovers the key and counts as a premature suspicion.
	tr = d.Observe("p1")
	if tr == nil || tr.To != StatusAlive {
		t.Fatalf("recovery transition = %+v", tr)
	}
	s := d.Stats()
	if s.Suspicions != 1 || s.Recoveries != 1 || s.Observations != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSteadyStreamNeverSuspected(t *testing.T) {
	clock := softstate.NewFakeClock()
	d := New(30*time.Second, clock)
	for i := 0; i < 100; i++ {
		d.Observe("p")
		clock.Advance(10 * time.Second)
		if trs := d.Check(); len(trs) != 0 {
			t.Fatalf("iteration %d: %+v", i, trs)
		}
	}
}

func TestUnknownKeySuspected(t *testing.T) {
	d := New(time.Second, softstate.NewFakeClock())
	if d.Status("ghost") != StatusSuspected {
		t.Error("unknown keys must be treated as suspected")
	}
	if _, ok := d.LastSeen("ghost"); ok {
		t.Error("no lastSeen for unknown key")
	}
}

func TestAliveListing(t *testing.T) {
	clock := softstate.NewFakeClock()
	d := New(10*time.Second, clock)
	d.Observe("b")
	d.Observe("a")
	clock.Advance(5 * time.Second)
	d.Observe("c")
	clock.Advance(6 * time.Second) // a,b silent 11s; c silent 6s
	d.Check()
	alive := d.Alive()
	if len(alive) != 1 || alive[0] != "c" {
		t.Fatalf("alive = %v", alive)
	}
	d.Forget("c")
	if len(d.Alive()) != 0 {
		t.Error("forget failed")
	}
}

func TestObserveNoTransitionWhileAlive(t *testing.T) {
	d := New(time.Minute, softstate.NewFakeClock())
	d.Observe("p")
	if tr := d.Observe("p"); tr != nil {
		t.Errorf("redundant observe produced transition %+v", tr)
	}
}

// TestDetectorTradeoffUnderLoss reproduces the §4.3 tradeoff in miniature:
// with a lossy link, a short timeout yields false suspicions of a live
// producer, while a longer timeout (several refresh intervals) does not.
func TestDetectorTradeoffUnderLoss(t *testing.T) {
	const (
		interval = 10 * time.Second
		loss     = 0.5
		steps    = 400
	)
	run := func(timeout time.Duration, seed int64) int {
		clock := softstate.NewFakeClock()
		net := simnet.New(seed)
		d := New(timeout, clock)
		net.HandleDatagrams("dir", func(string, []byte) { d.Observe("p") })
		net.SetLoss(loss)
		d.Observe("p") // initial registration delivered
		for i := 0; i < steps; i++ {
			clock.Advance(interval)
			net.SendDatagram("p", "dir", []byte("refresh"))
			d.Check()
		}
		return d.Stats().Recoveries // premature suspicions of a live producer
	}
	shortFP := run(15*time.Second, 42) // 1.5 intervals: one lost message suffices
	longFP := run(65*time.Second, 42)  // 6.5 intervals: needs 6 consecutive losses
	if shortFP <= longFP {
		t.Errorf("expected short timeout to produce more false positives: short=%d long=%d", shortFP, longFP)
	}
	if longFP > 5 {
		t.Errorf("long timeout false positives = %d, want near zero", longFP)
	}
}

// TestDetectionLatencyBoundedByTimeout: once a producer truly stops, it is
// suspected within Timeout plus one check period.
func TestDetectionLatencyBoundedByTimeout(t *testing.T) {
	clock := softstate.NewFakeClock()
	timeout := 30 * time.Second
	d := New(timeout, clock)
	d.Observe("p")
	stopAt := clock.Now()
	var detectedAt time.Time
	for i := 0; i < 100; i++ {
		clock.Advance(time.Second)
		for _, tr := range d.Check() {
			if tr.Key == "p" && tr.To == StatusSuspected {
				detectedAt = tr.At
			}
		}
		if !detectedAt.IsZero() {
			break
		}
	}
	if detectedAt.IsZero() {
		t.Fatal("never detected")
	}
	latency := detectedAt.Sub(stopAt)
	if latency < timeout || latency > timeout+2*time.Second {
		t.Errorf("detection latency %v outside [%v, %v]", latency, timeout, timeout+2*time.Second)
	}
}

func TestManyKeysConcurrentSafe(t *testing.T) {
	d := New(time.Minute, softstate.RealClock{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			d.Observe(fmt.Sprintf("p%d", i%50))
		}
	}()
	for i := 0; i < 100; i++ {
		d.Check()
		d.Alive()
	}
	<-done
}

func BenchmarkObserveCheck(b *testing.B) {
	clock := softstate.NewFakeClock()
	d := New(30*time.Second, clock)
	for i := 0; i < 1000; i++ {
		d.Observe(fmt.Sprintf("p%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(fmt.Sprintf("p%d", i%1000))
		if i%100 == 0 {
			d.Check()
		}
	}
}
