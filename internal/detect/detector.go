// Package detect implements the unreliable failure detector that GRRP
// provides to discoverers (§4.3 of the paper, after Chandra & Toueg): a
// consumer of a registration stream decides, after a chosen interval
// without messages, that the producer has failed or become inaccessible.
// Any such decision can be erroneous — missing messages may merely have
// been lost — so the detector exposes the accuracy/timeliness trade
// directly through its Timeout parameter, which experiment E1 sweeps.
package detect

import (
	"sort"
	"sync"
	"time"

	"mds2/internal/softstate"
)

// Status is a monitored producer's current classification.
type Status int

// Statuses.
const (
	// StatusAlive: messages have arrived within Timeout.
	StatusAlive Status = iota
	// StatusSuspected: no message for at least Timeout.
	StatusSuspected
)

func (s Status) String() string {
	if s == StatusSuspected {
		return "suspected"
	}
	return "alive"
}

// Transition records one status change of a monitored key.
type Transition struct {
	Key string
	To  Status
	At  time.Time
	// SilentFor is the observed message gap that triggered a suspicion
	// (zero for recoveries).
	SilentFor time.Duration
}

// Detector classifies producers by message recency. It is driven by
// Observe calls (one per received registration) and Check sweeps.
type Detector struct {
	// Timeout is the silence interval after which a producer is suspected.
	Timeout time.Duration

	clock softstate.Clock

	mu    sync.Mutex
	keys  map[string]*keyState
	stats Stats
}

type keyState struct {
	lastSeen  time.Time
	status    Status
	suspected time.Time
}

// Stats aggregates detector behaviour for experiments.
type Stats struct {
	// Observations counts Observe calls.
	Observations int
	// Suspicions counts alive→suspected transitions.
	Suspicions int
	// Recoveries counts suspected→alive transitions, i.e. suspicions that
	// were (from the detector's own later evidence) premature.
	Recoveries int
}

// New returns a detector with the given suspicion timeout.
func New(timeout time.Duration, clock softstate.Clock) *Detector {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Detector{Timeout: timeout, clock: clock, keys: map[string]*keyState{}}
}

// Observe records a message arrival from key. If the key was suspected,
// it recovers to alive and the premature suspicion is counted; the
// returned transition (non-nil only on status change) reports it.
func (d *Detector) Observe(key string) *Transition {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Observations++
	ks, ok := d.keys[key]
	if !ok {
		ks = &keyState{status: StatusAlive}
		d.keys[key] = ks
		ks.lastSeen = now
		return &Transition{Key: key, To: StatusAlive, At: now}
	}
	ks.lastSeen = now
	if ks.status == StatusSuspected {
		ks.status = StatusAlive
		d.stats.Recoveries++
		return &Transition{Key: key, To: StatusAlive, At: now}
	}
	return nil
}

// Check sweeps all monitored keys, transitioning silent ones to suspected,
// and returns the transitions in key order. Call it periodically (or after
// advancing a fake clock).
func (d *Detector) Check() []Transition {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Transition
	for key, ks := range d.keys {
		if ks.status == StatusAlive {
			silent := now.Sub(ks.lastSeen)
			if silent >= d.Timeout {
				ks.status = StatusSuspected
				ks.suspected = now
				d.stats.Suspicions++
				out = append(out, Transition{Key: key, To: StatusSuspected, At: now, SilentFor: silent})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Status returns the current classification of key; unknown keys are
// suspected (a discoverer omits unknown providers from results).
func (d *Detector) Status(key string) Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	ks, ok := d.keys[key]
	if !ok {
		return StatusSuspected
	}
	return ks.status
}

// LastSeen returns the most recent observation time for key.
func (d *Detector) LastSeen(key string) (time.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ks, ok := d.keys[key]
	if !ok {
		return time.Time{}, false
	}
	return ks.lastSeen, true
}

// Alive returns the keys currently classified alive, sorted.
func (d *Detector) Alive() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for key, ks := range d.keys {
		if ks.status == StatusAlive {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Forget drops a key from monitoring.
func (d *Detector) Forget(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.keys, key)
}

// Stats returns a snapshot of cumulative counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
