package ldap

import (
	"strconv"
	"strings"
)

// Compiled is a pre-normalized evaluation plan for a Filter. Compiling once
// per query (not per entry) hoists every per-evaluation allocation out of
// the hot path: attribute names and values are case-folded up front for
// index lookups, ordering constants are parsed numerically once, and the
// match itself runs through the allocation-free fold helpers. A Compiled
// filter is immutable and safe for concurrent use.
//
// A nil *Compiled, like a nil *Filter, matches every entry.
type Compiled struct {
	kind FilterKind
	subs []*Compiled

	attrFold  string // folded attribute name: equality/presence index key
	valueFold string // folded assertion value: equality index key

	valueNum   float64 // pre-parsed ordering constant for GE/LE
	valueIsNum bool

	src *Filter
}

// Compile builds the evaluation plan for f. Compiling a nil filter returns
// nil, which Matches treats as match-all, so callers can compile
// unconditionally. The source filter must not be mutated afterwards.
func (f *Filter) Compile() *Compiled {
	if f == nil {
		return nil
	}
	c := &Compiled{kind: f.Kind, src: f}
	switch f.Kind {
	case FilterAnd, FilterOr, FilterNot:
		c.subs = make([]*Compiled, len(f.Subs))
		for i, sub := range f.Subs {
			c.subs[i] = sub.Compile()
		}
	case FilterGE, FilterLE:
		c.attrFold = foldKey(f.Attr)
		c.valueFold = foldKey(f.Value)
		if looksNumeric(f.Value) {
			if v, err := strconv.ParseFloat(strings.TrimSpace(f.Value), 64); err == nil {
				c.valueNum, c.valueIsNum = v, true
			}
		}
	default:
		c.attrFold = foldKey(f.Attr)
		c.valueFold = foldKey(f.Value)
	}
	return c
}

// Source returns the filter this plan was compiled from (nil for nil).
func (c *Compiled) Source() *Filter {
	if c == nil {
		return nil
	}
	return c.src
}

// Matches evaluates the compiled filter against an entry without
// allocating. A nil receiver matches everything.
func (c *Compiled) Matches(e *Entry) bool {
	if c == nil {
		return true
	}
	switch c.kind {
	case FilterAnd:
		for _, sub := range c.subs {
			if !sub.Matches(e) {
				return false
			}
		}
		return true
	case FilterOr:
		for _, sub := range c.subs {
			if sub.Matches(e) {
				return true
			}
		}
		return false
	case FilterNot:
		return !c.subs[0].Matches(e)
	case FilterPresent:
		return e.Has(c.src.Attr)
	case FilterEquality:
		return e.HasValue(c.src.Attr, c.src.Value)
	case FilterApprox:
		for _, v := range e.Values(c.src.Attr) {
			if squashFoldEqual(v, c.src.Value) {
				return true
			}
		}
		return false
	case FilterGE:
		for _, v := range e.Values(c.src.Attr) {
			if c.orderCompare(v) >= 0 {
				return true
			}
		}
		return false
	case FilterLE:
		for _, v := range e.Values(c.src.Attr) {
			if c.orderCompare(v) <= 0 {
				return true
			}
		}
		return false
	case FilterSubstrings:
		for _, v := range e.Values(c.src.Attr) {
			if matchSubstringFold(v, c.src.Initial, c.src.Any, c.src.Final) {
				return true
			}
		}
		return false
	}
	return false
}

// orderCompare compares an entry value against the compiled ordering
// constant: numerically when both sides parse, fold-lexicographically
// otherwise — the same relation as the uncompiled orderCompare, with the
// constant's parse hoisted to compile time.
func (c *Compiled) orderCompare(v string) int {
	if c.valueIsNum && looksNumeric(v) {
		if fv, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			switch {
			case fv < c.valueNum:
				return -1
			case fv > c.valueNum:
				return 1
			}
			return 0
		}
	}
	return foldCompare(v, c.src.Value)
}
