package ldap

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Case-insensitive string primitives for the filter hot path. Every helper
// here is allocation-free: instead of lowering whole strings with
// strings.ToLower per evaluation (the pre-index behaviour), comparisons fold
// rune pairs on the fly. Filter evaluation runs once per candidate entry per
// query, so these run millions of times per second on a loaded directory.

// foldRune maps a rune to its canonical comparison form. ToUpper∘ToLower
// round-trips the handful of case-mapping oddities (Kelvin sign, long s)
// onto their plain lowercase partners, which keeps index keys consistent
// with EqualFold matching for all practical directory data.
func foldRune(r rune) rune { return unicode.ToLower(unicode.ToUpper(r)) }

// foldKey returns the case-folded form of s used as an attribute-index key.
// ASCII strings that are already lowercase are returned unchanged (no
// allocation), which is the overwhelmingly common case for attribute names
// and objectclass values.
func foldKey(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf || (c >= 'A' && c <= 'Z') {
			return foldKeySlow(s)
		}
	}
	return s
}

func foldKeySlow(s string) string {
	isASCII := true
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			isASCII = false
			break
		}
	}
	if isASCII {
		b := []byte(s)
		for i, c := range b {
			if c >= 'A' && c <= 'Z' {
				b[i] = c + 'a' - 'A'
			}
		}
		return string(b)
	}
	return strings.Map(foldRune, s)
}

// foldConsume reports how many leading bytes of s case-insensitively match
// needle in full, or -1 when they do not.
func foldConsume(s, needle string) int {
	i := 0
	for _, nr := range needle {
		if i >= len(s) {
			return -1
		}
		sr, size := utf8.DecodeRuneInString(s[i:])
		if foldRune(sr) != foldRune(nr) {
			return -1
		}
		i += size
	}
	return i
}

// foldSkipPast finds the first case-insensitive occurrence of needle in s
// and returns the byte offset just past it, or -1 when absent. An empty
// needle matches at offset 0.
func foldSkipPast(s, needle string) int {
	if needle == "" {
		return 0
	}
	for i := 0; i < len(s); {
		if n := foldConsume(s[i:], needle); n >= 0 {
			return i + n
		}
		_, size := utf8.DecodeRuneInString(s[i:])
		i += size
	}
	return -1
}

// foldHasSuffix reports whether s ends with needle under case folding.
func foldHasSuffix(s, needle string) bool {
	i := len(s)
	for {
		if foldConsume(s[i:], needle) == len(s)-i {
			return true
		}
		if i == 0 {
			return false
		}
		_, size := utf8.DecodeLastRuneInString(s[:i])
		i -= size
	}
}

// foldCompare orders a and b as strings.Compare would order their lowered
// forms (UTF-8 byte order equals code-point order, so rune-wise comparison
// of folded runes is equivalent) without materializing either.
func foldCompare(a, b string) int {
	for len(a) > 0 && len(b) > 0 {
		ra, na := utf8.DecodeRuneInString(a)
		rb, nb := utf8.DecodeRuneInString(b)
		fa, fb := foldRune(ra), foldRune(rb)
		if fa != fb {
			if fa < fb {
				return -1
			}
			return 1
		}
		a, b = a[na:], b[nb:]
	}
	switch {
	case len(a) > 0:
		return 1
	case len(b) > 0:
		return -1
	}
	return 0
}

// squashFoldEqual reports whether a and b are equal after dropping all
// Unicode whitespace and folding case — the approximate-match relation,
// equivalent to squash(a) == squash(b) without building either string.
func squashFoldEqual(a, b string) bool {
	i, j := 0, 0
	for {
		for i < len(a) {
			r, size := utf8.DecodeRuneInString(a[i:])
			if !unicode.IsSpace(r) {
				break
			}
			i += size
		}
		for j < len(b) {
			r, size := utf8.DecodeRuneInString(b[j:])
			if !unicode.IsSpace(r) {
				break
			}
			j += size
		}
		if i >= len(a) || j >= len(b) {
			return i >= len(a) && j >= len(b)
		}
		ra, na := utf8.DecodeRuneInString(a[i:])
		rb, nb := utf8.DecodeRuneInString(b[j:])
		if foldRune(ra) != foldRune(rb) {
			return false
		}
		i += na
		j += nb
	}
}

// looksNumeric is a cheap pre-filter before strconv.ParseFloat: ordering
// comparisons fall back to string order for non-numeric values, and calling
// ParseFloat on obvious non-numbers would allocate an error per entry.
func looksNumeric(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	c := s[0]
	return c == '+' || c == '-' || c == '.' || (c >= '0' && c <= '9')
}
