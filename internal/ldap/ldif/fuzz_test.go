package ldif

import (
	"testing"
)

// FuzzLDIF feeds arbitrary text to the LDIF reader. Accepted input must
// survive a Marshal/Parse round trip with entry count and DNs intact —
// LDIF is the bulk load/dump format, so a lossy round trip silently
// corrupts a directory restore.
func FuzzLDIF(f *testing.F) {
	for _, seed := range []string{
		"",
		"dn: hn=hostX\nobjectclass: computer\ncpucount: 4\n",
		"dn: hn=hostX\nhn: hostX\n\ndn: perf=load5, hn=hostX\nload5: 0.5\n",
		"# comment\n\ndn: o=grid\no: grid\n",
		"dn: cn=b64\ncn:: aGVsbG8=\n",
		"dn: cn=cont\ndescription: first\n  continued line\n",
		"dn: o=g\nattr without colon\n",
		"no dn first\nattr: v\n",
		"dn: o=g\nattr:\n",
		"dn:: b z1n\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		entries, err := ParseString(s)
		if err != nil {
			return
		}
		text := Marshal(entries)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("Marshal of parsed input does not re-parse: %v\ninput: %q\nmarshalled: %q", err, s, text)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip changed entry count %d -> %d\ninput: %q", len(entries), len(back), s)
		}
		for i := range entries {
			if !entries[i].DN.Equal(back[i].DN) {
				t.Fatalf("round trip changed DN %q -> %q", entries[i].DN, back[i].DN)
			}
		}
	})
}
