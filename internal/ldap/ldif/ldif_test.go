package ldif

import (
	"strings"
	"testing"

	"mds2/internal/ldap"
)

func sample() []*ldap.Entry {
	return []*ldap.Entry{
		ldap.NewEntry(ldap.MustParseDN("hn=hostX")).
			Add("objectclass", "computer").
			Add("system", "mips irix"),
		ldap.NewEntry(ldap.MustParseDN("perf=load5, hn=hostX")).
			Add("objectclass", "perf", "loadaverage").
			Add("load5", "3.2"),
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	text := Marshal(sample())
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("entries = %d\n%s", len(back), text)
	}
	if !back[0].DN.Equal(ldap.MustParseDN("hn=hostX")) {
		t.Errorf("dn[0] = %q", back[0].DN)
	}
	if back[1].First("load5") != "3.2" {
		t.Errorf("load5 = %q", back[1].First("load5"))
	}
	if got := back[1].Values("objectclass"); len(got) != 2 {
		t.Errorf("objectclass values = %v", got)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	text := "# a provider script emitted this\n\ndn: hn=a\nobjectclass: computer\nhn: a\n\n\n# trailing comment\ndn: hn=b\nobjectclass: computer\nhn: b\n"
	entries, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].First("hn") != "b" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestParseContinuation(t *testing.T) {
	text := "dn: hn=a\nobjectclass: computer\ndescription: a very long\n  description line\n"
	entries, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[0].First("description"); got != "a very long description line" {
		t.Errorf("description = %q", got)
	}
}

func TestBase64Values(t *testing.T) {
	e := ldap.NewEntry(ldap.MustParseDN("x=1")).
		Add("objectclass", "top").
		Add("note", " leading space and\nnewline")
	text := Marshal([]*ldap.Entry{e})
	if !strings.Contains(text, "note:: ") {
		t.Fatalf("expected base64 form:\n%s", text)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].First("note") != " leading space and\nnewline" {
		t.Errorf("value = %q", back[0].First("note"))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"attr before dn": "objectclass: computer\n",
		"no colon":       "dn: x=1\ngarbage line\n",
		"bad dn":         "dn: ===\n",
		"bad base64":     "dn: x=1\nnote:: !!!\n",
	}
	for name, text := range cases {
		if _, err := ParseString(text); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	entries, err := ParseString("")
	if err != nil || len(entries) != 0 {
		t.Errorf("empty input: %v %v", entries, err)
	}
	if Marshal(nil) != "" {
		t.Error("empty marshal should be empty")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a := Marshal(sample())
	b := Marshal(sample())
	if a != b {
		t.Error("marshal not deterministic")
	}
}
