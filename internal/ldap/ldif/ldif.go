// Package ldif implements a pragmatic subset of the LDIF text format
// (RFC 2849) for entry interchange: it is how script-style GRIS providers
// (§10.3: "implemented via a set of scripts") hand results to the server,
// and how command-line tools print search results.
//
// Supported: dn: lines, attr: value lines, line continuations (leading
// space), '#' comments, and blank-line entry separation. Base64 values
// (attr:: b64) are supported for values carrying newlines or leading
// spaces.
package ldif

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"strings"

	"mds2/internal/ldap"
)

// Marshal renders entries as LDIF text with deterministic attribute order.
func Marshal(entries []*ldap.Entry) string {
	var b strings.Builder
	for i, e := range entries {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeLine(&b, "dn", e.DN.String())
		cp := e.Clone()
		cp.SortAttrs()
		for _, a := range cp.Attrs {
			for _, v := range a.Values {
				writeLine(&b, a.Name, v)
			}
		}
	}
	return b.String()
}

func writeLine(b *strings.Builder, attr, value string) {
	if needsBase64(value) {
		b.WriteString(attr)
		b.WriteString(":: ")
		b.WriteString(base64.StdEncoding.EncodeToString([]byte(value)))
	} else {
		b.WriteString(attr)
		b.WriteString(": ")
		b.WriteString(value)
	}
	b.WriteByte('\n')
}

func needsBase64(v string) bool {
	if v == "" {
		return false
	}
	if v[0] == ' ' || v[0] == ':' || v[0] == '<' {
		return true
	}
	for i := 0; i < len(v); i++ {
		if v[i] == '\n' || v[i] == '\r' || v[i] >= 0x80 {
			return true
		}
	}
	return strings.HasSuffix(v, " ")
}

// Parse reads LDIF text into entries.
func Parse(r io.Reader) ([]*ldap.Entry, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 8<<20)

	// First unfold continuations and drop comments.
	var lines []string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, " ") && len(lines) > 0 && lines[len(lines)-1] != "":
			lines[len(lines)-1] += line[1:]
		default:
			lines = append(lines, line)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}

	var entries []*ldap.Entry
	var cur *ldap.Entry
	flush := func() {
		if cur != nil {
			entries = append(entries, cur)
			cur = nil
		}
	}
	for lineNo, line := range lines {
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		attr, value, err := splitLine(line)
		if err != nil {
			return nil, fmt.Errorf("ldif: line %d: %w", lineNo+1, err)
		}
		if strings.EqualFold(attr, "dn") {
			flush()
			dn, err := ldap.ParseDN(value)
			if err != nil {
				return nil, fmt.Errorf("ldif: line %d: %w", lineNo+1, err)
			}
			cur = ldap.NewEntry(dn)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("ldif: line %d: attribute before dn", lineNo+1)
		}
		cur.Add(attr, value)
	}
	flush()
	return entries, nil
}

// ParseString is Parse over a string.
func ParseString(s string) ([]*ldap.Entry, error) { return Parse(strings.NewReader(s)) }

func splitLine(line string) (attr, value string, err error) {
	idx := strings.Index(line, ":")
	if idx <= 0 {
		return "", "", fmt.Errorf("missing ':' in %q", line)
	}
	attr = strings.TrimSpace(line[:idx])
	rest := line[idx+1:]
	if strings.HasPrefix(rest, ":") {
		// Base64 form.
		enc := strings.TrimSpace(rest[1:])
		raw, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return "", "", fmt.Errorf("bad base64 value: %v", err)
		}
		return attr, string(raw), nil
	}
	return attr, strings.TrimPrefix(rest, " "), nil
}
