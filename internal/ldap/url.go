package ldap

import (
	"errors"
	"fmt"
	"net"
	"strings"
)

// URL is an LDAP URL (RFC 4516 subset): scheme, host:port, and base DN.
// The paper uses such URLs both as globally unique names (§4.1: provider
// name + name within provider) and as GRRP service references and GIIS
// referrals.
type URL struct {
	Scheme string // "ldap" (or "sim" for the simulated transport)
	Host   string
	Port   string
	DN     DN
}

// ErrBadURL reports a malformed LDAP URL.
var ErrBadURL = errors.New("ldap: malformed URL")

// ParseURL parses "ldap://host:port/dn" (DN optional, unescaped commas and
// spaces tolerated since DNs are the path's only content).
func ParseURL(s string) (URL, error) {
	var u URL
	i := strings.Index(s, "://")
	if i <= 0 {
		return u, fmt.Errorf("%w: %q", ErrBadURL, s)
	}
	u.Scheme = s[:i]
	rest := s[i+3:]
	hostport := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		hostport = rest[:j]
		dnStr := rest[j+1:]
		if dnStr != "" {
			dn, err := ParseDN(dnStr)
			if err != nil {
				return u, fmt.Errorf("%w: %v", ErrBadURL, err)
			}
			u.DN = dn
		}
	}
	if hostport == "" {
		return u, fmt.Errorf("%w: missing host in %q", ErrBadURL, s)
	}
	if host, port, err := net.SplitHostPort(hostport); err == nil {
		u.Host, u.Port = host, port
	} else {
		u.Host = hostport
	}
	if u.Host == "" {
		return u, fmt.Errorf("%w: missing host in %q", ErrBadURL, s)
	}
	return u, nil
}

// MustParseURL parses s and panics on error.
func MustParseURL(s string) URL {
	u, err := ParseURL(s)
	if err != nil {
		panic(err)
	}
	return u
}

// String renders the URL.
func (u URL) String() string {
	var b strings.Builder
	b.WriteString(u.Scheme)
	b.WriteString("://")
	b.WriteString(u.Address())
	if !u.DN.IsZero() {
		b.WriteByte('/')
		b.WriteString(u.DN.String())
	}
	return b.String()
}

// Address returns host:port (or just host when no port is set).
func (u URL) Address() string {
	if u.Port == "" {
		return u.Host
	}
	return net.JoinHostPort(u.Host, u.Port)
}

// WithDN returns a copy of the URL naming dn at the same service.
func (u URL) WithDN(dn DN) URL {
	u.DN = dn
	return u
}

// ServiceKey returns the comparison key identifying the service endpoint
// (scheme + address, ignoring the DN).
func (u URL) ServiceKey() string {
	return u.Scheme + "://" + strings.ToLower(u.Address())
}
