package ldap

import (
	"testing"
)

// Native fuzz targets for the three text parsers a server feeds hostile
// input to: DNs (every request names a base object), filters (discovery
// queries), and URLs (referrals and GRRP service references). Each target
// checks the totality property the ber fuzzers established for the binary
// layer — parse or error, never panic — plus round-trip stability: any
// accepted input must re-render and re-parse to the same normal form.

func FuzzParseDN(f *testing.F) {
	for _, seed := range []string{
		"",
		"queue=default, hn=hostX",
		"hn=hostX,o=grid",
		"  hn = hostX ,  o = grid ",
		"cn=alice+uid=42, o=grid",
		`cn=with\,comma, o=g`,
		`cn=tr\+plus+uid=1, o=g`,
		"cn=", "=v", "cn==v", ",", "+", `cn=a\`,
		"vo=demo",
		"perf=load5, hn=hostX, o=grid",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		dn, err := ParseDN(s)
		if err != nil {
			return
		}
		// The printed form must parse back to the same normal form:
		// String/Normalize are the on-wire names GIIS indices key by.
		back, err := ParseDN(dn.String())
		if err != nil {
			t.Fatalf("ParseDN(%q) ok but re-parse of %q failed: %v", s, dn.String(), err)
		}
		if !dn.Equal(back) {
			t.Fatalf("round trip changed DN: %q -> %q -> %q", s, dn.String(), back.String())
		}
	})
}

func FuzzParseFilter(f *testing.F) {
	for _, seed := range []string{
		"(objectclass=computer)",
		"hn=hostX",
		"(&(objectclass=computer)(|(system=mips irix)(system=linux))(!(cpucount<=8)))",
		"(load5=*)",
		"(cn=ho*st*X)",
		"(cn>=a)", "(cn<=z)",
		`(cn=paren\29)`,
		"(&)", "(|)", "(!)", "(", ")", "(&(a=b)", "(a=b)(c=d)",
		"(objectclass=*)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		flt, err := ParseFilter(s)
		if err != nil {
			return
		}
		rendered := flt.String()
		back, err := ParseFilter(rendered)
		if err != nil {
			t.Fatalf("ParseFilter(%q) ok but re-parse of %q failed: %v", s, rendered, err)
		}
		if got := back.String(); got != rendered {
			t.Fatalf("round trip unstable: %q -> %q -> %q", s, rendered, got)
		}
	})
}

func FuzzParseURL(f *testing.F) {
	for _, seed := range []string{
		"ldap://gris.example.org:2135/hn=hostX, o=grid",
		"sim://node7/o=vo",
		"ldap://Host:389/o=g",
		"ldap://127.0.0.1:2136",
		"ldap://h/", "://x", "ldap://", "ldap:///o=g",
		"ldap://[::1]:2135/o=g",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u, err := ParseURL(s)
		if err != nil {
			return
		}
		back, err := ParseURL(u.String())
		if err != nil {
			t.Fatalf("ParseURL(%q) ok but re-parse of %q failed: %v", s, u.String(), err)
		}
		if back.String() != u.String() {
			t.Fatalf("round trip unstable: %q -> %q -> %q", s, u.String(), back.String())
		}
	})
}
