package ldap

import (
	"fmt"
	"net"
	"time"

	"mds2/internal/softstate"
)

// HealthCheck probes an LDAP server the way a client would: dial, anonymous
// bind, RootDSE base search. Passing all three means the accept loop,
// the bind path, and the search dispatch are all live — not just that the
// process exists. It is the probe cmd/gris and cmd/giis mount at /healthz.
type HealthCheck struct {
	// Addr is the server to probe; Dial overrides the transport (tests).
	Addr string
	Dial func() (net.Conn, error)
	// Timeout bounds the whole probe (default 5s).
	Timeout time.Duration
	// Clock stamps the probe; nil means wall clock.
	Clock softstate.Clock
}

// Probe runs the check once. The returned duration is the full
// dial+bind+search round trip, reported even on failure.
func (hc HealthCheck) Probe() (time.Duration, error) {
	clock := hc.Clock
	if clock == nil {
		clock = softstate.RealClock{}
	}
	timeout := hc.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	dial := hc.Dial
	if dial == nil {
		addr := hc.Addr
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	start := clock.Now()
	elapsed := func() time.Duration { return clock.Now().Sub(start) }

	conn, err := dial()
	if err != nil {
		return elapsed(), fmt.Errorf("dial: %w", err)
	}
	c := NewClient(conn)
	defer c.Close()
	c.Timeout = timeout
	c.Clock = clock

	if err := c.Bind("", ""); err != nil {
		return elapsed(), fmt.Errorf("anonymous bind: %w", err)
	}
	if _, err := c.Search(&SearchRequest{
		BaseDN: "",
		Scope:  ScopeBaseObject,
		Filter: MustParseFilter("(objectclass=*)"),
	}); err != nil {
		return elapsed(), fmt.Errorf("rootdse search: %w", err)
	}
	return elapsed(), nil
}
