package ldap

import (
	"fmt"
	"net"
	"strings"
	"time"

	"mds2/internal/softstate"
)

// ProbeMode selects how deep a HealthCheck exercises the server.
type ProbeMode int

// Probe modes.
const (
	// ProbeAnonymous is the default: dial, anonymous bind, RootDSE base
	// search — proves the accept loop, bind path, and search dispatch.
	ProbeAnonymous ProbeMode = iota
	// ProbeSimpleBind performs a credentialed simple bind (BindDN /
	// BindPassword) instead of an anonymous one, exercising the credential
	// path. Note that GRIS and GIIS servers refuse credentialed simple
	// binds by design (anonymous or SASL/GSI only), so this mode targets
	// deployments fronted by an authenticating proxy or future password
	// backends — its failure against a stock server is itself a signal the
	// policy is still enforced.
	ProbeSimpleBind
	// ProbeScopedSearch follows the bind with a real data search (Base /
	// Scope / Filter) and, when MinEntries > 0, requires that many entries
	// back — proving not just liveness but that the server actually holds
	// answerable content (e.g. a GIIS with at least one registered child).
	ProbeScopedSearch
)

func (m ProbeMode) String() string {
	switch m {
	case ProbeAnonymous:
		return "anonymous"
	case ProbeSimpleBind:
		return "simple-bind"
	case ProbeScopedSearch:
		return "scoped-search"
	}
	return fmt.Sprintf("probemode(%d)", int(m))
}

// ParseProbeMode maps the flag vocabulary onto a ProbeMode.
func ParseProbeMode(s string) (ProbeMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "anonymous", "anon":
		return ProbeAnonymous, nil
	case "simple-bind", "simple", "bind":
		return ProbeSimpleBind, nil
	case "scoped-search", "search", "scoped":
		return ProbeScopedSearch, nil
	}
	return 0, fmt.Errorf("ldap: unknown probe mode %q (anonymous, simple-bind, scoped-search)", s)
}

// HealthCheck probes an LDAP server the way a client would: dial, bind,
// search. Passing means the accept loop, the bind path, and the search
// dispatch are all live — not just that the process exists. It is the probe
// cmd/gris and cmd/giis mount at /healthz; Mode selects how deep it goes.
type HealthCheck struct {
	// Addr is the server to probe; Dial overrides the transport (tests).
	Addr string
	Dial func() (net.Conn, error)
	// Timeout bounds the whole probe (default 5s).
	Timeout time.Duration
	// Clock stamps the probe; nil means wall clock.
	Clock softstate.Clock

	// Mode selects the probe depth (default ProbeAnonymous).
	Mode ProbeMode
	// BindDN and BindPassword are the ProbeSimpleBind credentials.
	BindDN       string
	BindPassword string
	// Base, Scope, and Filter define the ProbeScopedSearch region; an empty
	// Filter means (objectclass=*).
	Base   string
	Scope  Scope
	Filter string
	// MinEntries, when > 0, is the least number of entries the scoped
	// search must return for the probe to pass.
	MinEntries int
}

// Probe runs the check once. The returned duration is the full
// dial+bind+search round trip, reported even on failure.
func (hc HealthCheck) Probe() (time.Duration, error) {
	clock := hc.Clock
	if clock == nil {
		clock = softstate.RealClock{}
	}
	timeout := hc.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	dial := hc.Dial
	if dial == nil {
		addr := hc.Addr
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	start := clock.Now()
	elapsed := func() time.Duration { return clock.Now().Sub(start) }

	conn, err := dial()
	if err != nil {
		return elapsed(), fmt.Errorf("dial: %w", err)
	}
	c := NewClient(conn)
	defer c.Close()
	c.Timeout = timeout
	c.Clock = clock

	if hc.Mode == ProbeSimpleBind {
		if err := c.Bind(hc.BindDN, hc.BindPassword); err != nil {
			return elapsed(), fmt.Errorf("simple bind as %q: %w", hc.BindDN, err)
		}
	} else {
		if err := c.Bind("", ""); err != nil {
			return elapsed(), fmt.Errorf("anonymous bind: %w", err)
		}
	}

	if hc.Mode == ProbeScopedSearch {
		filter := hc.Filter
		if filter == "" {
			filter = "(objectclass=*)"
		}
		f, err := ParseFilter(filter)
		if err != nil {
			return elapsed(), fmt.Errorf("probe filter: %w", err)
		}
		res, err := c.Search(&SearchRequest{
			BaseDN: hc.Base,
			Scope:  hc.Scope,
			Filter: f,
		})
		if err != nil {
			return elapsed(), fmt.Errorf("scoped search %q: %w", hc.Base, err)
		}
		if hc.MinEntries > 0 && len(res.Entries) < hc.MinEntries {
			return elapsed(), fmt.Errorf("scoped search %q: %d entries, want >= %d",
				hc.Base, len(res.Entries), hc.MinEntries)
		}
		return elapsed(), nil
	}

	if _, err := c.Search(&SearchRequest{
		BaseDN: "",
		Scope:  ScopeBaseObject,
		Filter: MustParseFilter("(objectclass=*)"),
	}); err != nil {
		return elapsed(), fmt.Errorf("rootdse search: %w", err)
	}
	return elapsed(), nil
}
