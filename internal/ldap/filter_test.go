package ldap

import (
	"math/rand"
	"strings"
	"testing"
)

func testEntry() *Entry {
	return NewEntry(MustParseDN("hn=hostX, o=grid")).
		Add("objectclass", "top", "computer").
		Add("hn", "hostX").
		Add("system", "mips irix").
		Add("cpucount", "64").
		Add("freecpus", "12").
		Add("load5", "3.2").
		Add("osversion", "6.5.12")
}

func TestParseFilterSimple(t *testing.T) {
	f := MustParseFilter("(objectclass=computer)")
	if f.Kind != FilterEquality || f.Attr != "objectclass" || f.Value != "computer" {
		t.Fatalf("parsed %+v", f)
	}
	if !f.Matches(testEntry()) {
		t.Error("should match")
	}
}

func TestParseFilterUnparenthesized(t *testing.T) {
	f := MustParseFilter("hn=hostX")
	if f.Kind != FilterEquality || !f.Matches(testEntry()) {
		t.Errorf("parsed %+v", f)
	}
}

func TestParseFilterComposite(t *testing.T) {
	f := MustParseFilter("(&(objectclass=computer)(|(system=mips irix)(system=linux))(!(cpucount<=8)))")
	if !f.Matches(testEntry()) {
		t.Error("composite should match")
	}
	f2 := MustParseFilter("(&(objectclass=computer)(system=linux))")
	if f2.Matches(testEntry()) {
		t.Error("should not match linux")
	}
}

func TestFilterPresence(t *testing.T) {
	if !MustParseFilter("(load5=*)").Matches(testEntry()) {
		t.Error("presence should match")
	}
	if MustParseFilter("(gpu=*)").Matches(testEntry()) {
		t.Error("absent attr should not match")
	}
}

func TestFilterOrdering(t *testing.T) {
	e := testEntry()
	cases := []struct {
		f    string
		want bool
	}{
		{"(freecpus>=8)", true},
		{"(freecpus>=12)", true},
		{"(freecpus>=13)", false},
		{"(load5<=3.2)", true},
		{"(load5<=1.0)", false},
		{"(load5>=1)", true},
		// String fallback for non-numeric values.
		{"(system>=mips)", true},
		{"(system<=aaa)", false},
	}
	for _, tc := range cases {
		if got := MustParseFilter(tc.f).Matches(e); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestFilterSubstrings(t *testing.T) {
	e := testEntry()
	cases := []struct {
		f    string
		want bool
	}{
		{"(system=mips*)", true},
		{"(system=*irix)", true},
		{"(system=*ps ir*)", true},
		{"(system=mips*irix)", true},
		{"(system=m*s*x)", true},
		{"(system=linux*)", false},
		{"(system=*bsd)", false},
		{"(osversion=6.5.*)", true},
	}
	for _, tc := range cases {
		if got := MustParseFilter(tc.f).Matches(e); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestFilterSubstringOrderMatters(t *testing.T) {
	e := NewEntry(MustParseDN("x=1")).Add("v", "abc")
	if MustParseFilter("(v=*c*a*)").Matches(e) {
		t.Error("components must match in order")
	}
	if !MustParseFilter("(v=*a*c*)").Matches(e) {
		t.Error("in-order components should match")
	}
}

func TestFilterCaseInsensitivity(t *testing.T) {
	e := testEntry()
	for _, f := range []string{"(OBJECTCLASS=Computer)", "(hn=HOSTX)", "(system=MIPS*)"} {
		if !MustParseFilter(f).Matches(e) {
			t.Errorf("%s should match case-insensitively", f)
		}
	}
}

func TestFilterApprox(t *testing.T) {
	e := testEntry()
	if !MustParseFilter("(system~=mipsirix)").Matches(e) {
		t.Error("approx should ignore whitespace")
	}
	if MustParseFilter("(system~=sunos)").Matches(e) {
		t.Error("approx should not match different value")
	}
}

func TestFilterEscapedValues(t *testing.T) {
	e := NewEntry(MustParseDN("x=1")).Add("desc", "a*b(c)")
	f := MustParseFilter(`(desc=a\*b\(c\))`)
	if f.Kind != FilterEquality {
		t.Fatalf("kind %v (escaped star must not create substrings)", f.Kind)
	}
	if !f.Matches(e) {
		t.Error("escaped literal should match")
	}
	// RFC 4515 hex escapes.
	f2 := MustParseFilter(`(desc=a\2ab\28c\29)`)
	if !f2.Matches(e) {
		t.Error("hex escapes should match")
	}
}

func TestFilterParseErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "()", "(&)", "(|)", "(!)", "(a=b", "(a=b))", "(=v)", "((a=b))"} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q): expected error", bad)
		}
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	cases := []string{
		"(objectclass=computer)",
		"(&(a=1)(b=2))",
		"(|(a=1)(!(b=2)))",
		"(load5>=2.5)",
		"(load5<=2.5)",
		"(cn~=karl)",
		"(hn=*)",
		"(system=mips*ir*ix)",
		"(system=*middle*)",
	}
	for _, s := range cases {
		f := MustParseFilter(s)
		if got := f.String(); got != s {
			t.Errorf("String(%s) = %s", s, got)
		}
		// Parse(String(f)) is identical again.
		if got := MustParseFilter(f.String()).String(); got != s {
			t.Errorf("double round trip %s = %s", s, got)
		}
	}
}

func TestFilterBERRoundTrip(t *testing.T) {
	cases := []string{
		"(objectclass=computer)",
		"(&(objectclass=computer)(freecpus>=8))",
		"(|(a=1)(b=2)(!(c=3)))",
		"(hn=*)",
		"(system=mips*ir*ix)",
		"(system=initial*)",
		"(system=*final)",
		"(cn~=karl)",
		"(x<=9)",
	}
	for _, s := range cases {
		f := MustParseFilter(s)
		back, err := FilterFromBER(f.ToBER())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if back.String() != f.String() {
			t.Errorf("BER round trip %s = %s", f, back)
		}
	}
}

func TestFilterAttributes(t *testing.T) {
	f := MustParseFilter("(&(objectclass=computer)(|(load5<=2)(LOAD5>=0))(freecpus>=1))")
	attrs := f.Attributes()
	want := map[string]bool{"objectclass": true, "load5": true, "freecpus": true}
	if len(attrs) != len(want) {
		t.Fatalf("attrs = %v", attrs)
	}
	for _, a := range attrs {
		if !want[a] {
			t.Errorf("unexpected attribute %q", a)
		}
	}
}

// randomFilter generates a random filter tree over a small attribute space.
func randomFilter(r *rand.Rand, depth int) *Filter {
	attrs := []string{"a", "b", "load", "class"}
	vals := []string{"1", "2", "x", "computer", "3.5"}
	if depth <= 0 || r.Intn(3) == 0 {
		attr := attrs[r.Intn(len(attrs))]
		val := vals[r.Intn(len(vals))]
		switch r.Intn(5) {
		case 0:
			return Eq(attr, val)
		case 1:
			return Present(attr)
		case 2:
			return GE(attr, val)
		case 3:
			return LE(attr, val)
		default:
			return &Filter{Kind: FilterSubstrings, Attr: attr, Initial: val}
		}
	}
	switch r.Intn(3) {
	case 0:
		return Not(randomFilter(r, depth-1))
	case 1:
		return And(randomFilter(r, depth-1), randomFilter(r, depth-1))
	default:
		return Or(randomFilter(r, depth-1), randomFilter(r, depth-1))
	}
}

func randomFilterEntry(r *rand.Rand) *Entry {
	e := NewEntry(MustParseDN("x=1"))
	attrs := []string{"a", "b", "load", "class"}
	vals := []string{"1", "2", "x", "computer", "3.5"}
	for _, a := range attrs {
		if r.Intn(2) == 0 {
			e.Add(a, vals[r.Intn(len(vals))])
		}
	}
	return e
}

// TestFilterTripleEquivalence checks that the three filter representations
// (AST, RFC 4515 string, BER) all evaluate identically on random entries.
func TestFilterTripleEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		f := randomFilter(r, 3)
		viaString, err := ParseFilter(f.String())
		if err != nil {
			t.Fatalf("parse %s: %v", f, err)
		}
		viaBER, err := FilterFromBER(f.ToBER())
		if err != nil {
			t.Fatalf("ber %s: %v", f, err)
		}
		for j := 0; j < 10; j++ {
			e := randomFilterEntry(r)
			m0, m1, m2 := f.Matches(e), viaString.Matches(e), viaBER.Matches(e)
			if m0 != m1 || m0 != m2 {
				t.Fatalf("filter %s on %s: ast=%v str=%v ber=%v", f, e, m0, m1, m2)
			}
		}
	}
}

func TestFilterDeMorganProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a, b := randomFilter(r, 2), randomFilter(r, 2)
		lhs := Not(And(a, b))
		rhs := Or(Not(a), Not(b))
		e := randomFilterEntry(r)
		if lhs.Matches(e) != rhs.Matches(e) {
			t.Fatalf("De Morgan violated for %s vs %s on %s", lhs, rhs, e)
		}
	}
}

func BenchmarkFilterEval(b *testing.B) {
	f := MustParseFilter("(&(objectclass=computer)(system=mips*)(freecpus>=8)(!(load5>=5.0)))")
	e := testEntry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !f.Matches(e) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkFilterParse(b *testing.B) {
	s := "(&(objectclass=computer)(|(system=linux)(system=mips*))(freecpus>=8))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFilter(s); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEntrySelect(t *testing.T) {
	e := testEntry()
	sel := e.Select([]string{"hn", "load5", "missing"})
	if len(sel.Attrs) != 2 {
		t.Fatalf("selected %v", sel.Attrs)
	}
	if sel.First("hn") != "hostX" || sel.First("load5") != "3.2" {
		t.Error("wrong selection")
	}
	if all := e.Select(nil); len(all.Attrs) != len(e.Attrs) {
		t.Error("nil selection should copy all")
	}
	if all := e.Select([]string{"*"}); len(all.Attrs) != len(e.Attrs) {
		t.Error("star selection should copy all")
	}
}

func TestEntryMutators(t *testing.T) {
	e := NewEntry(MustParseDN("x=1"))
	e.Add("a", "1").Add("A", "2") // case-insensitive merge
	if len(e.Attrs) != 1 || len(e.Values("a")) != 2 {
		t.Fatalf("attrs %v", e.Attrs)
	}
	e.Set("a", "only")
	if got := e.Values("a"); len(got) != 1 || got[0] != "only" {
		t.Errorf("set: %v", got)
	}
	e.Delete("A")
	if e.Has("a") {
		t.Error("delete failed")
	}
	e.Delete("nonexistent") // no-op
}

func TestEntryNumericAccessors(t *testing.T) {
	e := testEntry()
	if v, ok := e.Int("cpucount"); !ok || v != 64 {
		t.Errorf("Int = %d, %v", v, ok)
	}
	if v, ok := e.Float("load5"); !ok || v != 3.2 {
		t.Errorf("Float = %f, %v", v, ok)
	}
	if _, ok := e.Int("system"); ok {
		t.Error("non-numeric Int should fail")
	}
	if _, ok := e.Float("missing"); ok {
		t.Error("missing Float should fail")
	}
}

func TestEntryCloneIndependence(t *testing.T) {
	e := testEntry()
	c := e.Clone()
	c.Set("hn", "changed")
	c.DN = MustParseDN("hn=other")
	if e.First("hn") != "hostX" || e.DN.String() != "hn=hostX, o=grid" {
		t.Error("clone mutated original")
	}
}

func TestSortEntriesDeterministic(t *testing.T) {
	entries := []*Entry{
		NewEntry(MustParseDN("b=2, o=g")),
		NewEntry(MustParseDN("o=g")),
		NewEntry(MustParseDN("a=1, o=g")),
	}
	SortEntries(entries)
	want := []string{"o=g", "a=1, o=g", "b=2, o=g"}
	for i, e := range entries {
		if e.DN.String() != want[i] {
			t.Errorf("pos %d: %q, want %q", i, e.DN, want[i])
		}
	}
}

func TestEntryStringContainsValues(t *testing.T) {
	s := testEntry().String()
	if !strings.Contains(s, "hn=hostX") || !strings.Contains(s, "dn: ") {
		t.Errorf("diagnostic = %q", s)
	}
}
