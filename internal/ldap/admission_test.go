package ldap

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"mds2/internal/obs"
	"mds2/internal/softstate"
)

func testAdmission(cfg OverloadConfig, clock softstate.Clock) *admission {
	return newAdmission(cfg, clock, nil)
}

func TestAdmissionImmediateThenQueueThenShed(t *testing.T) {
	a := testAdmission(OverloadConfig{MaxWorkers: 2, MaxQueue: 1}, softstate.NewFakeClock())

	for i := 0; i < 2; i++ {
		ticket, err := a.tryAcquire()
		if ticket != nil || err != nil {
			t.Fatalf("acquire %d: ticket=%v err=%v, want immediate admit", i, ticket, err)
		}
	}
	ticket, err := a.tryAcquire()
	if ticket == nil || err != nil {
		t.Fatalf("third acquire: ticket=%v err=%v, want queued", ticket, err)
	}
	if _, err := a.tryAcquire(); err != ErrShedQueueFull {
		t.Fatalf("fourth acquire err = %v, want ErrShedQueueFull", err)
	}
}

func TestAdmissionShedOnProjectedBudget(t *testing.T) {
	a := testAdmission(OverloadConfig{
		MaxWorkers: 2, MaxQueue: 100, QueueBudget: 10 * time.Millisecond,
	}, softstate.NewFakeClock())
	a.seedEWMA(8 * time.Millisecond)

	// Fill the worker slots.
	for i := 0; i < 2; i++ {
		if ticket, err := a.tryAcquire(); ticket != nil || err != nil {
			t.Fatalf("worker fill %d: %v %v", i, ticket, err)
		}
	}
	// Arrivals at queue depth 0 and 1 project (0+1)*8ms/2 = 4ms and
	// (1+1)*8ms/2 = 8ms, both within the 10ms budget: queued.
	for i := 0; i < 2; i++ {
		if ticket, err := a.tryAcquire(); ticket == nil || err != nil {
			t.Fatalf("queued op %d: ticket=%v err=%v", i, ticket, err)
		}
	}
	// Depth 2: projected (2+1)*8ms/2 = 12ms > 10ms: shed busy.
	if _, err := a.tryAcquire(); err != ErrShedBudget {
		t.Fatalf("over-budget acquire err = %v, want ErrShedBudget", err)
	}
	if got := shedResult(ErrShedBudget).Code; got != ResultBusy {
		t.Fatalf("budget shed code = %v, want busy", got)
	}
	if got := shedResult(ErrShedQueueFull).Code; got != ResultUnavailable {
		t.Fatalf("queue-full shed code = %v, want unavailable", got)
	}
}

func TestAdmissionFIFOFairness(t *testing.T) {
	a := testAdmission(OverloadConfig{MaxWorkers: 1, MaxQueue: 8}, softstate.NewFakeClock())
	if ticket, err := a.tryAcquire(); ticket != nil || err != nil {
		t.Fatalf("worker fill: %v %v", ticket, err)
	}
	var tickets []*admitTicket
	for i := 0; i < 3; i++ {
		ticket, err := a.tryAcquire()
		if ticket == nil || err != nil {
			t.Fatalf("queue %d: %v %v", i, ticket, err)
		}
		tickets = append(tickets, ticket)
	}
	// Each release must grant exactly the head of the line.
	for i := range tickets {
		a.release(time.Millisecond)
		select {
		case err := <-tickets[i].granted:
			if err != nil {
				t.Fatalf("ticket %d granted err: %v", i, err)
			}
		default:
			t.Fatalf("release %d did not grant ticket %d", i, i)
		}
		for j := i + 1; j < len(tickets); j++ {
			select {
			case <-tickets[j].granted:
				t.Fatalf("release %d granted ticket %d out of order", i, j)
			default:
			}
		}
	}
}

func TestAdmissionDrainOnClose(t *testing.T) {
	a := testAdmission(OverloadConfig{MaxWorkers: 1, MaxQueue: 8}, softstate.NewFakeClock())
	if ticket, err := a.tryAcquire(); ticket != nil || err != nil {
		t.Fatalf("worker fill: %v %v", ticket, err)
	}
	var waitErrs []error
	var mu sync.Mutex
	var wg sync.WaitGroup
	never := make(chan struct{})
	for i := 0; i < 3; i++ {
		ticket, err := a.tryAcquire()
		if ticket == nil || err != nil {
			t.Fatalf("queue %d: %v %v", i, ticket, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := ticket.wait(a, never)
			mu.Lock()
			waitErrs = append(waitErrs, err)
			mu.Unlock()
		}()
	}
	a.close()
	wg.Wait()
	if len(waitErrs) != 3 {
		t.Fatalf("drained %d waiters, want 3", len(waitErrs))
	}
	for _, err := range waitErrs {
		if err != ErrAdmissionClosed {
			t.Fatalf("drained waiter err = %v, want ErrAdmissionClosed", err)
		}
	}
	if _, err := a.tryAcquire(); err != ErrAdmissionClosed {
		t.Fatalf("post-close acquire err = %v, want ErrAdmissionClosed", err)
	}
}

func TestAdmissionCancelWhileQueuedReleasesNothing(t *testing.T) {
	a := testAdmission(OverloadConfig{MaxWorkers: 1, MaxQueue: 8}, softstate.NewFakeClock())
	if ticket, err := a.tryAcquire(); ticket != nil || err != nil {
		t.Fatalf("worker fill: %v %v", ticket, err)
	}
	ticket, err := a.tryAcquire()
	if ticket == nil || err != nil {
		t.Fatalf("queue: %v %v", ticket, err)
	}
	cancelled := make(chan struct{})
	close(cancelled)
	if err := ticket.wait(a, cancelled); err == nil {
		t.Fatal("cancelled wait returned nil")
	}
	// The cancelled ticket must not absorb the slot: releasing the running
	// op must leave a free worker for the next arrival.
	a.release(time.Millisecond)
	if ticket, err := a.tryAcquire(); ticket != nil || err != nil {
		t.Fatalf("post-cancel acquire: ticket=%v err=%v, want immediate admit", ticket, err)
	}
}

func TestAdmissionEWMATracksService(t *testing.T) {
	a := testAdmission(OverloadConfig{MaxWorkers: 1, MaxQueue: 1}, softstate.NewFakeClock())
	if ticket, err := a.tryAcquire(); ticket != nil || err != nil {
		t.Fatalf("fill: %v %v", ticket, err)
	}
	a.release(10 * time.Millisecond) // first observation seeds directly
	if got := a.ewma(); got != 10*time.Millisecond {
		t.Fatalf("ewma after seed = %v, want 10ms", got)
	}
	if ticket, err := a.tryAcquire(); ticket != nil || err != nil {
		t.Fatalf("refill: %v %v", ticket, err)
	}
	a.release(90 * time.Millisecond) // 10ms + (90ms-10ms)/8 = 20ms
	if got := a.ewma(); got != 20*time.Millisecond {
		t.Fatalf("ewma after update = %v, want 20ms", got)
	}
}

func TestTokenBucketThrottle(t *testing.T) {
	clock := softstate.NewFakeClock()
	a := testAdmission(OverloadConfig{ClientRate: 2, ClientBurst: 2}, clock)

	for i := 0; i < 2; i++ {
		if a.throttled("10.0.0.1") {
			t.Fatalf("op %d throttled within burst", i)
		}
	}
	if !a.throttled("10.0.0.1") {
		t.Fatal("op over burst not throttled")
	}
	if a.throttled("10.0.0.2") {
		t.Fatal("distinct client shares a bucket")
	}
	clock.Advance(time.Second) // refills 2 tokens
	for i := 0; i < 2; i++ {
		if a.throttled("10.0.0.1") {
			t.Fatalf("op %d throttled after refill", i)
		}
	}
	if !a.throttled("10.0.0.1") {
		t.Fatal("bucket did not re-empty")
	}
}

func TestClientHost(t *testing.T) {
	for _, tc := range []struct{ addr, want string }{
		{"10.1.2.3:4567", "10.1.2.3"},
		{"[::1]:4567", "[::1]"},
		{"[::1]", "[::1]"},
		{"pipe", "pipe"},
		{"", ""},
	} {
		if got := clientHost(tc.addr); got != tc.want {
			t.Errorf("clientHost(%q) = %q, want %q", tc.addr, got, tc.want)
		}
	}
}

// gateHandler parks every search until released, so tests control exactly
// how many operations are in flight.
type gateHandler struct {
	BaseHandler
	gate chan struct{}
}

func (h *gateHandler) Search(req *Request, _ *SearchRequest, _ SearchWriter) Result {
	select {
	case <-h.gate:
		return Result{Code: ResultSuccess}
	case <-req.Ctx.Done():
		return Result{Code: ResultUnavailable, Message: "cancelled"}
	}
}

// TestServerShedsUnderOverload drives more concurrent searches than
// MaxWorkers+MaxQueue at a server with overload control and verifies the
// excess is shed with busy/unavailable while admitted ops complete, with
// the shed accounting visible in the registry.
func TestServerShedsUnderOverload(t *testing.T) {
	reg := obs.NewRegistry()
	h := &gateHandler{gate: make(chan struct{})}
	srv := NewServer(h)
	srv.Obs = reg
	srv.Overload = OverloadConfig{MaxWorkers: 2, MaxQueue: 2}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const total = 10
	results := make(chan error, total)
	for i := 0; i < total; i++ {
		go func() {
			_, err := c.Search(&SearchRequest{BaseDN: "o=grid", Scope: ScopeWholeSubtree,
				Filter: MustParseFilter("(objectclass=*)")})
			results <- err
		}()
	}
	// 2 admitted + 2 queued; the other 6 must shed promptly.
	shed := 0
	for shed < total-4 {
		err := <-results
		if !IsCode(err, ResultUnavailable) && !IsCode(err, ResultBusy) {
			t.Fatalf("expected shed result, got %v", err)
		}
		shed++
	}
	close(h.gate) // let the admitted + queued ops finish
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted op failed: %v", err)
		}
	}
	if got := reg.Counter("ldap_shed_unavailable_total").Value(); got != int64(shed) {
		t.Errorf("shed_unavailable = %d, want %d", got, shed)
	}
	if got := reg.Gauge("ldap_admission_queue_depth").Value(); got != 0 {
		t.Errorf("queue depth after drain = %d, want 0", got)
	}
}

// TestServerThrottlesPerClient verifies the token bucket sheds over-rate
// operations with busy.
func TestServerThrottlesPerClient(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	srv.Overload = OverloadConfig{ClientRate: 0.001, ClientBurst: 2}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	search := func() error {
		_, err := c.Search(&SearchRequest{BaseDN: "", Scope: ScopeBaseObject,
			Filter: MustParseFilter("(objectclass=*)")})
		return err
	}
	for i := 0; i < 2; i++ {
		if err := search(); err != nil {
			t.Fatalf("in-burst search %d: %v", i, err)
		}
	}
	if err := search(); !IsCode(err, ResultBusy) {
		t.Fatalf("over-rate search err = %v, want busy", err)
	}
	// Binds are throttled too.
	if err := c.Bind("", ""); !IsCode(err, ResultBusy) {
		t.Fatalf("over-rate bind err = %v, want busy", err)
	}
}

// TestPersistentSearchBypassesAdmission pins the subscription exemption: a
// parked persistent search must not consume a worker slot.
func TestPersistentSearchBypassesAdmission(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	srv.Overload = OverloadConfig{MaxWorkers: 1, MaxQueue: 0}
	a, b := net.Pipe()
	go srv.ServeConn(a)
	defer srv.Close()
	c := NewClient(b)
	defer c.Close()

	if err := store.Put(NewEntry(MustParseDN("o=grid")).Add("objectclass", "top")); err != nil {
		t.Fatal(err)
	}
	// Park a persistent search.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	go func() {
		close(started)
		_ = c.SearchFunc(ctx, &SearchRequest{BaseDN: "o=grid", Scope: ScopeWholeSubtree,
			Filter: MustParseFilter("(objectclass=*)")},
			[]Control{NewPersistentSearchControl(PersistentSearch{
				ChangeTypes: ChangeAll, ChangesOnly: true})},
			func(*Entry, []Control) error { return nil }, nil, nil)
	}()
	<-started
	// The lone worker slot must still be free: a plain search completes.
	done := make(chan error, 1)
	go func() {
		_, err := c.Search(&SearchRequest{BaseDN: "o=grid", Scope: ScopeWholeSubtree,
			Filter: MustParseFilter("(objectclass=*)")})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("plain search alongside subscription: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("plain search starved by persistent search")
	}
}
