package ldap

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is a thread-safe in-memory directory information tree with change
// notification, usable directly as a server Handler. It backs the MDS-1
// style centralized baseline and the test suites; GRIS and GIIS implement
// their own Handlers with provider dispatch and soft-state indices.
//
// The data plane is indexed and copy-on-write:
//
//   - A DN tree (parent→children) makes scoped reads walk only the
//     relevant subtree instead of testing every entry in the store.
//   - Equality and presence indexes over folded attribute names and values
//     let Find derive a candidate set from indexable filter shapes
//     (equality and presence leaves, intersected through AND, unioned
//     through OR) instead of scanning.
//   - Stored entries are immutable snapshots: every mutation installs a
//     fresh entry (Put and Modify copy), so Find, Get-free paths, and
//     change notification hand out the stored pointer without cloning.
//     Callers MUST NOT mutate entries returned by Find or delivered in
//     ChangeEvents; use Clone first. Get still returns a private copy.
type Store struct {
	// Schema, when non-nil, validates entries on Add.
	Schema *Schema

	mu    sync.RWMutex
	root  *node            // DN-tree root (the empty DN)
	nodes map[string]*node // normalized DN -> node (incl. phantom interiors)
	count int              // nodes holding an entry

	// eq indexes folded attr -> folded value -> nodes carrying that value;
	// pres indexes folded attr -> nodes carrying the attribute. Both are
	// maintained incrementally by every mutation.
	eq   map[string]map[string]nodeSet
	pres map[string]nodeSet

	watches map[*watch]struct{}

	// persister, when set, receives every mutation for durability. Hook
	// calls happen under mu (enqueue only); their acks run after unlock.
	persister Persister
}

// node is one position in the DN tree. Interior positions whose DN has no
// entry of its own (a "phantom" node, e.g. the parent of the only entry)
// carry entry == nil and exist purely to connect the tree.
type node struct {
	key      string // normalized DN
	depth    int    // number of RDN components
	parent   *node
	children map[string]*node // child normalized DN -> node
	entry    *Entry           // immutable snapshot; nil for phantom nodes
}

type nodeSet map[*node]struct{}

// inScope reports whether n falls inside the search region rooted at base,
// using tree pointers only — no DN normalization on the read path.
func (n *node) inScope(base *node, scope Scope) bool {
	switch scope {
	case ScopeBaseObject:
		return n == base
	case ScopeSingleLevel:
		return n.parent == base
	case ScopeWholeSubtree:
		p := n
		for p != nil && p.depth > base.depth {
			p = p.parent
		}
		return p == base
	}
	return false
}

type watch struct {
	base   DN
	scope  Scope
	filter *Filter
	cf     *Compiled
	ch     chan ChangeEvent
}

// ChangeEvent describes one mutation, delivered to subscribers. The Entry
// is the store's immutable snapshot — for deletes, the entry exactly as it
// stood before removal — shared with the store; treat it as read-only.
type ChangeEvent struct {
	Type  int64 // ChangeAdd, ChangeDelete, ChangeModify
	Entry *Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	root := &node{key: ""}
	return &Store{
		root:    root,
		nodes:   map[string]*node{"": root},
		eq:      map[string]map[string]nodeSet{},
		pres:    map[string]nodeSet{},
		watches: map[*watch]struct{}{},
	}
}

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Get returns a copy of the entry with the given DN.
func (s *Store) Get(dn DN) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.nodes[dn.Normalize()]
	if n == nil || n.entry == nil {
		return nil, false
	}
	return n.entry.Clone(), true
}

// ensureNodeLocked returns the tree node for dn, creating it and any
// missing ancestors on the way down from the root.
func (s *Store) ensureNodeLocked(dn DN) *node {
	n := s.root
	for i := len(dn) - 1; i >= 0; i-- {
		key := DN(dn[i:]).Normalize()
		child := n.children[key]
		if child == nil {
			child = &node{key: key, depth: len(dn) - i, parent: n}
			if n.children == nil {
				n.children = map[string]*node{}
			}
			n.children[key] = child
			s.nodes[key] = child
		}
		n = child
	}
	return n
}

// pruneLocked removes n and any newly childless ancestors that hold no
// entry, so the tree never accumulates dead phantom chains.
func (s *Store) pruneLocked(n *node) {
	for n != s.root && n.entry == nil && len(n.children) == 0 {
		p := n.parent
		delete(p.children, n.key)
		delete(s.nodes, n.key)
		n = p
	}
}

func (s *Store) indexLocked(n *node) {
	for _, a := range n.entry.Attrs {
		af := foldKey(a.Name)
		ps := s.pres[af]
		if ps == nil {
			ps = nodeSet{}
			s.pres[af] = ps
		}
		ps[n] = struct{}{}
		vm := s.eq[af]
		if vm == nil {
			vm = map[string]nodeSet{}
			s.eq[af] = vm
		}
		for _, v := range a.Values {
			vf := foldKey(v)
			vs := vm[vf]
			if vs == nil {
				vs = nodeSet{}
				vm[vf] = vs
			}
			vs[n] = struct{}{}
		}
	}
}

func (s *Store) unindexLocked(n *node) {
	for _, a := range n.entry.Attrs {
		af := foldKey(a.Name)
		if ps := s.pres[af]; ps != nil {
			delete(ps, n)
			if len(ps) == 0 {
				delete(s.pres, af)
			}
		}
		vm := s.eq[af]
		if vm == nil {
			continue
		}
		for _, v := range a.Values {
			vf := foldKey(v)
			if vs := vm[vf]; vs != nil {
				delete(vs, n)
				if len(vs) == 0 {
					delete(vm, vf)
				}
			}
		}
		if len(vm) == 0 {
			delete(s.eq, af)
		}
	}
}

// putLocked installs cp (already cloned, never mutated afterwards) at its
// node, maintaining the indexes, and reports whether a prior entry existed.
func (s *Store) putLocked(cp *Entry) bool {
	cp.seal()
	n := s.ensureNodeLocked(cp.DN)
	existed := n.entry != nil
	if existed {
		s.unindexLocked(n)
	} else {
		s.count++
	}
	n.entry = cp
	s.indexLocked(n)
	return existed
}

// Put inserts or replaces an entry, notifying subscribers. The entry is
// copied; the caller keeps ownership of e.
func (s *Store) Put(e *Entry) error {
	if s.Schema != nil {
		if err := s.Schema.Validate(e); err != nil {
			return err
		}
	}
	cp := e.Clone()
	s.mu.Lock()
	existed := s.putLocked(cp)
	s.notifyLocked(existed, cp)
	ack := s.persistPutLocked([]*Entry{cp})
	s.mu.Unlock()
	return await(ack)
}

// PutAll inserts or replaces a batch of entries under a single lock
// acquisition — the bulk path used by MDS-1 style pushers, which re-upload
// a resource's complete description every interval. Schema validation
// happens up front; on error nothing is applied.
func (s *Store) PutAll(entries []*Entry) error {
	if s.Schema != nil {
		for _, e := range entries {
			if err := s.Schema.Validate(e); err != nil {
				return err
			}
		}
	}
	cps := make([]*Entry, len(entries))
	for i, e := range entries {
		cps[i] = e.Clone()
	}
	s.mu.Lock()
	for _, cp := range cps {
		existed := s.putLocked(cp)
		s.notifyLocked(existed, cp)
	}
	ack := s.persistPutLocked(cps)
	s.mu.Unlock()
	return await(ack)
}

func (s *Store) notifyLocked(existed bool, e *Entry) {
	typ := ChangeAdd
	if existed {
		typ = ChangeModify
	}
	for w := range s.watches {
		s.deliverLocked(w, ChangeEvent{Type: typ, Entry: e})
	}
}

// deliverLocked forwards one change event to a subscriber. Scope applies to
// every change type; the filter applies to adds and modifies but not
// deletes (a delete is observable even when the final state no longer
// matches — soft-state subscribers need to unlearn the entry). The entry is
// the store's immutable snapshot, delivered without cloning; for deletes it
// is the pre-delete state.
func (s *Store) deliverLocked(w *watch, ev ChangeEvent) {
	ev.Entry.verifySeal()
	if !ev.Entry.DN.WithinScope(w.base, w.scope) {
		return
	}
	if ev.Type != ChangeDelete && !w.cf.Matches(ev.Entry) {
		return
	}
	select {
	case w.ch <- ev:
	default:
		// Subscriber too slow: drop rather than block the mutator. Soft
		// state means a subsequent refresh re-delivers current truth.
	}
}

// removeLocked detaches n's entry, maintaining indexes and pruning the
// tree, and returns the removed snapshot.
func (s *Store) removeLocked(n *node) *Entry {
	e := n.entry
	s.unindexLocked(n)
	n.entry = nil
	s.count--
	s.pruneLocked(n)
	return e
}

// Remove deletes the entry with the given DN, reporting whether it existed.
func (s *Store) Remove(dn DN) bool {
	s.mu.Lock()
	n := s.nodes[dn.Normalize()]
	if n == nil || n.entry == nil {
		s.mu.Unlock()
		return false
	}
	e := s.removeLocked(n)
	for w := range s.watches {
		s.deliverLocked(w, ChangeEvent{Type: ChangeDelete, Entry: e})
	}
	ack := s.persistRemoveLocked(dn, false)
	s.mu.Unlock()
	// The boolean contract predates persistence; a WAL failure surfaces as
	// the sticky error on the next Put and on Close.
	_ = await(ack)
	return true
}

// RemoveSubtree deletes an entry and all its descendants, returning the
// number removed. Deletions are delivered parents-first in DN order.
func (s *Store) RemoveSubtree(dn DN) int {
	s.mu.Lock()
	bn := s.nodes[dn.Normalize()]
	if bn == nil {
		s.mu.Unlock()
		return 0
	}
	var doomed []*node
	var walk func(*node)
	walk = func(n *node) {
		if n.entry != nil {
			doomed = append(doomed, n)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(bn)
	sortNodes(doomed)
	for _, n := range doomed {
		e := s.removeLocked(n)
		for w := range s.watches {
			s.deliverLocked(w, ChangeEvent{Type: ChangeDelete, Entry: e})
		}
	}
	var ack func() error
	if len(doomed) > 0 {
		ack = s.persistRemoveLocked(dn, true)
	}
	s.mu.Unlock()
	_ = await(ack)
	return len(doomed)
}

// Find returns the entries within scope of base matching filter, in
// (depth, DN) order. A nil filter matches everything. The returned entries
// are the store's immutable snapshots — do not mutate them.
func (s *Store) Find(base DN, scope Scope, filter *Filter) []*Entry {
	out, _ := s.FindLimit(base, scope, filter, 0)
	return out
}

// FindLimit is Find with an early-terminating size limit: once limit
// matches (in result order) have been collected the walk stops, and the
// second result reports whether at least one further match was cut off —
// the Search handler's SizeLimitExceeded signal. A limit <= 0 means
// unlimited.
func (s *Store) FindLimit(base DN, scope Scope, filter *Filter, limit int64) ([]*Entry, bool) {
	cf := filter.Compile()
	s.mu.RLock()
	defer s.mu.RUnlock()
	bn := s.nodes[base.Normalize()]
	if bn == nil {
		return nil, false
	}
	if cands, ok := s.candidatesLocked(cf); ok {
		out, more := collectCandidates(cands, bn, scope, cf, limit)
		return verifyEntries(out), more
	}
	out, more := walkScope(bn, scope, cf, limit)
	return verifyEntries(out), more
}

// candidatesLocked derives a candidate node set from the indexable shape
// of the filter: equality and presence leaves read their index bucket
// directly, AND picks the smallest candidate set among its indexable
// conjuncts (a superset of the conjunction), OR unions its children when
// all of them are indexable. ok=false means the filter has no indexable
// handle and the caller must fall back to the scoped tree walk. Candidates
// are always re-verified against the full filter.
func (s *Store) candidatesLocked(c *Compiled) (nodeSet, bool) {
	if c == nil {
		return nil, false
	}
	switch c.kind {
	case FilterEquality:
		return s.eq[c.attrFold][c.valueFold], true
	case FilterPresent:
		return s.pres[c.attrFold], true
	case FilterAnd:
		var best nodeSet
		found := false
		for _, sub := range c.subs {
			if set, ok := s.candidatesLocked(sub); ok {
				if !found || len(set) < len(best) {
					best, found = set, true
				}
			}
		}
		return best, found
	case FilterOr:
		union := nodeSet{}
		for _, sub := range c.subs {
			set, ok := s.candidatesLocked(sub)
			if !ok {
				return nil, false
			}
			for n := range set {
				union[n] = struct{}{}
			}
		}
		return union, true
	}
	return nil, false
}

// collectCandidates verifies an index-derived candidate set against scope
// and the full filter, then orders and truncates it. Candidate sets are
// small by construction, so sort-then-truncate here is cheap.
func collectCandidates(cands nodeSet, bn *node, scope Scope, cf *Compiled, limit int64) ([]*Entry, bool) {
	matched := make([]*node, 0, len(cands))
	for n := range cands {
		if n.entry == nil || !n.inScope(bn, scope) || !cf.Matches(n.entry) {
			continue
		}
		matched = append(matched, n)
	}
	sortNodes(matched)
	truncated := false
	if limit > 0 && int64(len(matched)) > limit {
		matched, truncated = matched[:limit], true
	}
	out := make([]*Entry, len(matched))
	for i, n := range matched {
		out[i] = n.entry
	}
	return out, truncated
}

// walkScope answers a non-indexable query by walking only the tree region
// the scope can reach, level by level with each level in key order — which
// emits matches in exactly SortEntries order, so an early size-limit cut
// returns the same prefix a full sort would have.
func walkScope(bn *node, scope Scope, cf *Compiled, limit int64) ([]*Entry, bool) {
	var out []*Entry
	add := func(n *node) bool { // false: the limit cut the walk
		if n.entry == nil || !cf.Matches(n.entry) {
			return true
		}
		if limit > 0 && int64(len(out)) >= limit {
			return false
		}
		out = append(out, n.entry)
		return true
	}
	switch scope {
	case ScopeBaseObject:
		return out, !add(bn)
	case ScopeSingleLevel:
		for _, c := range sortedChildren(bn) {
			if !add(c) {
				return out, true
			}
		}
	case ScopeWholeSubtree:
		level := []*node{bn}
		for len(level) > 0 {
			for _, n := range level {
				if !add(n) {
					return out, true
				}
			}
			var next []*node
			for _, n := range level {
				for _, c := range n.children {
					next = append(next, c)
				}
			}
			sortNodes(next) // one level deep: orders by key
			level = next
		}
	}
	return out, false
}

func sortedChildren(n *node) []*node {
	out := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sortNodes(out)
	return out
}

// sortNodes orders nodes by (depth, normalized DN) — the SortEntries
// ordering, computed from precomputed node keys without re-normalizing.
func sortNodes(ns []*node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].depth != ns[j].depth {
			return ns[i].depth < ns[j].depth
		}
		return ns[i].key < ns[j].key
	})
}

// findScan is the pre-index linear scan over every entry, kept in-tree as
// the differential reference: the property tests assert Find ≡ findScan on
// randomized stores, and BenchmarkStoreFind measures the scan→index win
// against it.
func (s *Store) findScan(base DN, scope Scope, filter *Filter) []*Entry {
	s.mu.RLock()
	var out []*Entry
	for _, n := range s.nodes {
		e := n.entry
		if e == nil || !e.DN.WithinScope(base, scope) {
			continue
		}
		if filter != nil && !filter.Matches(e) {
			continue
		}
		out = append(out, e)
	}
	s.mu.RUnlock()
	verifyEntries(out)
	SortEntries(out)
	return out
}

// All returns a snapshot of every entry.
func (s *Store) All() []*Entry { return s.Find(DN{}, ScopeWholeSubtree, nil) }

// Subscribe registers for change events within scope of base matching
// filter until ctx is cancelled. Events are delivered best-effort: a slow
// consumer loses events rather than blocking writers. Delivered entries
// are shared immutable snapshots; clone before mutating.
func (s *Store) Subscribe(ctx context.Context, base DN, scope Scope, filter *Filter) <-chan ChangeEvent {
	w := &watch{base: base, scope: scope, filter: filter, cf: filter.Compile(),
		ch: make(chan ChangeEvent, 128)}
	s.mu.Lock()
	s.watches[w] = struct{}{}
	s.mu.Unlock()
	go func() {
		<-ctx.Done()
		s.mu.Lock()
		delete(s.watches, w)
		s.mu.Unlock()
		close(w.ch)
	}()
	return w.ch
}

// Store implements the server Handler interface so it can be mounted
// directly behind the protocol engine.

// Bind accepts any simple bind (the store itself enforces no policy).
func (s *Store) Bind(_ *Request, op *BindRequest) *BindResponse {
	if op.SASLMech != "" {
		return &BindResponse{Result: Result{Code: ResultAuthMethodNotSupported,
			Message: "store supports simple bind only"}}
	}
	return &BindResponse{Result: Result{Code: ResultSuccess}}
}

// Search implements Handler, including persistent-search subscription:
// with the persistent-search control attached the call blocks streaming
// change notifications until the operation is abandoned. The size limit is
// plumbed into FindLimit so the walk terminates as soon as the limit is
// reached instead of materializing the full result set.
func (s *Store) Search(req *Request, op *SearchRequest, w SearchWriter) Result {
	base, err := ParseDN(op.BaseDN)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	psCtl, isPS := FindControl(req.Controls, OIDPersistentSearch)
	if !isPS {
		entries, truncated := s.FindLimit(base, op.Scope, op.Filter, op.SizeLimit)
		for _, e := range entries {
			if err := w.SendEntry(e.Select(op.Attributes)); err != nil {
				return Result{Code: ResultUnavailable, Message: err.Error()}
			}
		}
		if truncated {
			return Result{Code: ResultSizeLimitExceeded}
		}
		return Result{Code: ResultSuccess}
	}
	ps, err := ParsePersistentSearch(psCtl)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	// Subscribe before the initial sweep so no change is lost in between;
	// duplicates are possible and harmless under soft-state semantics.
	events := s.Subscribe(req.Ctx, base, op.Scope, op.Filter)
	if !ps.ChangesOnly {
		for _, e := range s.Find(base, op.Scope, op.Filter) {
			if err := w.SendEntry(e.Select(op.Attributes)); err != nil {
				return Result{Code: ResultUnavailable, Message: err.Error()}
			}
		}
	}
	for {
		select {
		case <-req.Ctx.Done():
			return Result{Code: ResultSuccess, Message: "persistent search abandoned"}
		case ev, ok := <-events:
			if !ok {
				return Result{Code: ResultSuccess}
			}
			if ev.Type&ps.ChangeTypes == 0 {
				continue
			}
			var controls []Control
			if ps.ReturnECs {
				controls = append(controls, NewEntryChangeControl(ev.Type))
			}
			if err := w.SendEntry(ev.Entry.Select(op.Attributes), controls...); err != nil {
				return Result{Code: ResultUnavailable, Message: err.Error()}
			}
		}
	}
}

// Add implements Handler.
func (s *Store) Add(_ *Request, op *AddRequest) Result {
	s.mu.RLock()
	n := s.nodes[op.Entry.DN.Normalize()]
	exists := n != nil && n.entry != nil
	s.mu.RUnlock()
	if exists {
		return Result{Code: ResultEntryAlreadyExists, MatchedDN: op.Entry.DN.String()}
	}
	if err := s.Put(op.Entry); err != nil {
		return Result{Code: ResultUnwillingToPerform, Message: err.Error()}
	}
	return Result{Code: ResultSuccess}
}

// Delete implements Handler.
func (s *Store) Delete(_ *Request, op *DelRequest) Result {
	dn, err := ParseDN(op.DN)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	if !s.Remove(dn) {
		return Result{Code: ResultNoSuchObject, MatchedDN: op.DN}
	}
	return Result{Code: ResultSuccess}
}

// Modify implements Handler. Under copy-on-write the stored entry is never
// edited in place: the changes apply to a private copy that then replaces
// the snapshot (and its index postings) atomically.
func (s *Store) Modify(_ *Request, op *ModifyRequest) Result {
	dn, err := ParseDN(op.DN)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	s.mu.Lock()
	n := s.nodes[dn.Normalize()]
	if n == nil || n.entry == nil {
		s.mu.Unlock()
		return Result{Code: ResultNoSuchObject, MatchedDN: op.DN}
	}
	e := n.entry.Clone()
	for _, ch := range op.Changes {
		switch ch.Op {
		case ModAdd:
			e.Add(ch.Attr.Name, ch.Attr.Values...)
		case ModReplace:
			e.Set(ch.Attr.Name, ch.Attr.Values...)
		case ModDelete:
			if len(ch.Attr.Values) == 0 {
				e.Delete(ch.Attr.Name)
			} else {
				kept := e.Values(ch.Attr.Name)[:0:0]
				for _, v := range e.Values(ch.Attr.Name) {
					drop := false
					for _, dv := range ch.Attr.Values {
						if strings.EqualFold(v, dv) {
							drop = true
							break
						}
					}
					if !drop {
						kept = append(kept, v)
					}
				}
				if len(kept) == 0 {
					e.Delete(ch.Attr.Name)
				} else {
					e.Set(ch.Attr.Name, kept...)
				}
			}
		default:
			s.mu.Unlock()
			return Result{Code: ResultProtocolError, Message: fmt.Sprintf("bad modify op %d", ch.Op)}
		}
	}
	e.seal()
	s.unindexLocked(n)
	n.entry = e
	s.indexLocked(n)
	for w := range s.watches {
		s.deliverLocked(w, ChangeEvent{Type: ChangeModify, Entry: e})
	}
	// The modified entry persists as a full upsert — absolute state, so
	// replay over any snapshot converges.
	ack := s.persistPutLocked([]*Entry{e})
	s.mu.Unlock()
	if err := await(ack); err != nil {
		return Result{Code: ResultUnavailable, Message: err.Error()}
	}
	return Result{Code: ResultSuccess}
}

// Extended implements Handler (refusing everything).
func (s *Store) Extended(_ *Request, op *ExtendedRequest) *ExtendedResponse {
	return &ExtendedResponse{Result: Result{Code: ResultProtocolError,
		Message: "unsupported extended operation " + op.OID}}
}
