package ldap

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Store is a thread-safe in-memory directory information tree with change
// notification, usable directly as a server Handler. It backs the MDS-1
// style centralized baseline and the test suites; GRIS and GIIS implement
// their own Handlers with provider dispatch and soft-state indices.
type Store struct {
	// Schema, when non-nil, validates entries on Add.
	Schema *Schema

	mu      sync.RWMutex
	entries map[string]*Entry // normalized DN -> entry
	watches map[*watch]struct{}
}

type watch struct {
	base   DN
	scope  Scope
	filter *Filter
	ch     chan ChangeEvent
}

// ChangeEvent describes one mutation, delivered to subscribers.
type ChangeEvent struct {
	Type  int64 // ChangeAdd, ChangeDelete, ChangeModify
	Entry *Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: map[string]*Entry{}, watches: map[*watch]struct{}{}}
}

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Get returns a copy of the entry with the given DN.
func (s *Store) Get(dn DN) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[dn.Normalize()]
	if !ok {
		return nil, false
	}
	return e.Clone(), true
}

// Put inserts or replaces an entry, notifying subscribers.
func (s *Store) Put(e *Entry) error {
	if s.Schema != nil {
		if err := s.Schema.Validate(e); err != nil {
			return err
		}
	}
	cp := e.Clone()
	key := cp.DN.Normalize()
	s.mu.Lock()
	_, existed := s.entries[key]
	s.entries[key] = cp
	s.notifyLocked(existed, cp)
	s.mu.Unlock()
	return nil
}

func (s *Store) notifyLocked(existed bool, e *Entry) {
	typ := ChangeAdd
	if existed {
		typ = ChangeModify
	}
	for w := range s.watches {
		s.deliverLocked(w, ChangeEvent{Type: typ, Entry: e})
	}
}

func (s *Store) deliverLocked(w *watch, ev ChangeEvent) {
	if !ev.Entry.DN.WithinScope(w.base, w.scope) {
		return
	}
	if w.filter != nil && ev.Type != ChangeDelete && !w.filter.Matches(ev.Entry) {
		return
	}
	select {
	case w.ch <- ChangeEvent{Type: ev.Type, Entry: ev.Entry.Clone()}:
	default:
		// Subscriber too slow: drop rather than block the mutator. Soft
		// state means a subsequent refresh re-delivers current truth.
	}
}

// Remove deletes the entry with the given DN, reporting whether it existed.
func (s *Store) Remove(dn DN) bool {
	key := dn.Normalize()
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		delete(s.entries, key)
		for w := range s.watches {
			s.deliverLocked(w, ChangeEvent{Type: ChangeDelete, Entry: e})
		}
	}
	s.mu.Unlock()
	return ok
}

// RemoveSubtree deletes an entry and all its descendants, returning the
// number removed.
func (s *Store) RemoveSubtree(dn DN) int {
	s.mu.Lock()
	var doomed []*Entry
	for _, e := range s.entries {
		if e.DN.Equal(dn) || e.DN.IsDescendantOf(dn) {
			doomed = append(doomed, e)
		}
	}
	for _, e := range doomed {
		delete(s.entries, e.DN.Normalize())
		for w := range s.watches {
			s.deliverLocked(w, ChangeEvent{Type: ChangeDelete, Entry: e})
		}
	}
	s.mu.Unlock()
	return len(doomed)
}

// Find returns copies of entries within scope of base matching filter.
// A nil filter matches everything.
func (s *Store) Find(base DN, scope Scope, filter *Filter) []*Entry {
	s.mu.RLock()
	var out []*Entry
	for _, e := range s.entries {
		if !e.DN.WithinScope(base, scope) {
			continue
		}
		if filter != nil && !filter.Matches(e) {
			continue
		}
		out = append(out, e.Clone())
	}
	s.mu.RUnlock()
	SortEntries(out)
	return out
}

// All returns a snapshot of every entry.
func (s *Store) All() []*Entry { return s.Find(DN{}, ScopeWholeSubtree, nil) }

// Subscribe registers for change events within scope of base matching
// filter until ctx is cancelled. Events are delivered best-effort: a slow
// consumer loses events rather than blocking writers.
func (s *Store) Subscribe(ctx context.Context, base DN, scope Scope, filter *Filter) <-chan ChangeEvent {
	w := &watch{base: base, scope: scope, filter: filter, ch: make(chan ChangeEvent, 128)}
	s.mu.Lock()
	s.watches[w] = struct{}{}
	s.mu.Unlock()
	go func() {
		<-ctx.Done()
		s.mu.Lock()
		delete(s.watches, w)
		s.mu.Unlock()
		close(w.ch)
	}()
	return w.ch
}

// Store implements the server Handler interface so it can be mounted
// directly behind the protocol engine.

// Bind accepts any simple bind (the store itself enforces no policy).
func (s *Store) Bind(_ *Request, op *BindRequest) *BindResponse {
	if op.SASLMech != "" {
		return &BindResponse{Result: Result{Code: ResultAuthMethodNotSupported,
			Message: "store supports simple bind only"}}
	}
	return &BindResponse{Result: Result{Code: ResultSuccess}}
}

// Search implements Handler, including persistent-search subscription:
// with the persistent-search control attached the call blocks streaming
// change notifications until the operation is abandoned.
func (s *Store) Search(req *Request, op *SearchRequest, w SearchWriter) Result {
	base, err := ParseDN(op.BaseDN)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	psCtl, isPS := FindControl(req.Controls, OIDPersistentSearch)
	if !isPS {
		entries := s.Find(base, op.Scope, op.Filter)
		for i, e := range entries {
			if op.SizeLimit > 0 && int64(i) >= op.SizeLimit {
				return Result{Code: ResultSizeLimitExceeded}
			}
			if err := w.SendEntry(e.Select(op.Attributes)); err != nil {
				return Result{Code: ResultUnavailable, Message: err.Error()}
			}
		}
		return Result{Code: ResultSuccess}
	}
	ps, err := ParsePersistentSearch(psCtl)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	// Subscribe before the initial sweep so no change is lost in between;
	// duplicates are possible and harmless under soft-state semantics.
	events := s.Subscribe(req.Ctx, base, op.Scope, op.Filter)
	if !ps.ChangesOnly {
		for _, e := range s.Find(base, op.Scope, op.Filter) {
			if err := w.SendEntry(e.Select(op.Attributes)); err != nil {
				return Result{Code: ResultUnavailable, Message: err.Error()}
			}
		}
	}
	for {
		select {
		case <-req.Ctx.Done():
			return Result{Code: ResultSuccess, Message: "persistent search abandoned"}
		case ev, ok := <-events:
			if !ok {
				return Result{Code: ResultSuccess}
			}
			if ev.Type&ps.ChangeTypes == 0 {
				continue
			}
			var controls []Control
			if ps.ReturnECs {
				controls = append(controls, NewEntryChangeControl(ev.Type))
			}
			if err := w.SendEntry(ev.Entry.Select(op.Attributes), controls...); err != nil {
				return Result{Code: ResultUnavailable, Message: err.Error()}
			}
		}
	}
}

// Add implements Handler.
func (s *Store) Add(_ *Request, op *AddRequest) Result {
	key := op.Entry.DN.Normalize()
	s.mu.RLock()
	_, exists := s.entries[key]
	s.mu.RUnlock()
	if exists {
		return Result{Code: ResultEntryAlreadyExists, MatchedDN: op.Entry.DN.String()}
	}
	if err := s.Put(op.Entry); err != nil {
		return Result{Code: ResultUnwillingToPerform, Message: err.Error()}
	}
	return Result{Code: ResultSuccess}
}

// Delete implements Handler.
func (s *Store) Delete(_ *Request, op *DelRequest) Result {
	dn, err := ParseDN(op.DN)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	if !s.Remove(dn) {
		return Result{Code: ResultNoSuchObject, MatchedDN: op.DN}
	}
	return Result{Code: ResultSuccess}
}

// Modify implements Handler.
func (s *Store) Modify(_ *Request, op *ModifyRequest) Result {
	dn, err := ParseDN(op.DN)
	if err != nil {
		return Result{Code: ResultProtocolError, Message: err.Error()}
	}
	s.mu.Lock()
	e, ok := s.entries[dn.Normalize()]
	if !ok {
		s.mu.Unlock()
		return Result{Code: ResultNoSuchObject, MatchedDN: op.DN}
	}
	for _, ch := range op.Changes {
		switch ch.Op {
		case ModAdd:
			e.Add(ch.Attr.Name, ch.Attr.Values...)
		case ModReplace:
			e.Set(ch.Attr.Name, ch.Attr.Values...)
		case ModDelete:
			if len(ch.Attr.Values) == 0 {
				e.Delete(ch.Attr.Name)
			} else {
				kept := e.Values(ch.Attr.Name)[:0:0]
				for _, v := range e.Values(ch.Attr.Name) {
					drop := false
					for _, dv := range ch.Attr.Values {
						if strings.EqualFold(v, dv) {
							drop = true
							break
						}
					}
					if !drop {
						kept = append(kept, v)
					}
				}
				if len(kept) == 0 {
					e.Delete(ch.Attr.Name)
				} else {
					e.Set(ch.Attr.Name, kept...)
				}
			}
		default:
			s.mu.Unlock()
			return Result{Code: ResultProtocolError, Message: fmt.Sprintf("bad modify op %d", ch.Op)}
		}
	}
	for w := range s.watches {
		s.deliverLocked(w, ChangeEvent{Type: ChangeModify, Entry: e})
	}
	s.mu.Unlock()
	return Result{Code: ResultSuccess}
}

// Extended implements Handler (refusing everything).
func (s *Store) Extended(_ *Request, op *ExtendedRequest) *ExtendedResponse {
	return &ExtendedResponse{Result: Result{Code: ResultProtocolError,
		Message: "unsupported extended operation " + op.OID}}
}
