package ldap

import "testing"

// figure3Entries reconstructs the exact example namespace of Figure 3 of the
// paper: hostX described by a computer object with service, performance, and
// storage children.
func figure3Entries() []*Entry {
	host := NewEntry(MustParseDN("hn=hostX")).
		Add("objectclass", "computer").
		Add("hn", "hostX").
		Add("system", "mips irix")
	queue := NewEntry(MustParseDN("queue=default, hn=hostX")).
		Add("objectclass", "service", "queue").
		Add("queue", "default").
		Add("url", "gram://hostX/default").
		Add("dispatchtype", "immediate")
	perf := NewEntry(MustParseDN("perf=load5, hn=hostX")).
		Add("objectclass", "perf", "loadaverage").
		Add("perf", "load5").
		Add("period", "10").
		Add("load5", "3.2")
	store := NewEntry(MustParseDN("store=scratch, hn=hostX")).
		Add("objectclass", "storage", "filesystem").
		Add("store", "scratch").
		Add("free", "33515 MB").
		Add("path", "/disks/scratch1")
	return []*Entry{host, queue, perf, store}
}

func TestFigure3SchemaValidates(t *testing.T) {
	schema := NewGridSchema()
	for _, e := range figure3Entries() {
		if err := schema.Validate(e); err != nil {
			t.Errorf("entry %q: %v", e.DN, err)
		}
	}
}

func TestFigure3Hierarchy(t *testing.T) {
	entries := figure3Entries()
	host := entries[0]
	for _, child := range entries[1:] {
		if !child.DN.IsDescendantOf(host.DN) {
			t.Errorf("%q should sit under %q", child.DN, host.DN)
		}
		if !child.DN.Parent().Equal(host.DN) {
			t.Errorf("%q parent = %q", child.DN, child.DN.Parent())
		}
	}
}

func TestFigure3StoreAndSearch(t *testing.T) {
	s := NewStore()
	s.Schema = NewGridSchema()
	for _, e := range figure3Entries() {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	// Subtree search from the host finds all four objects.
	all := s.Find(MustParseDN("hn=hostX"), ScopeWholeSubtree, nil)
	if len(all) != 4 {
		t.Fatalf("subtree = %d entries", len(all))
	}
	// The paper's example discovery: find the load average object.
	load := s.Find(MustParseDN("hn=hostX"), ScopeWholeSubtree, MustParseFilter("(objectclass=loadaverage)"))
	if len(load) != 1 || load[0].First("load5") != "3.2" {
		t.Fatalf("loadaverage search = %v", load)
	}
	// One-level search finds the three children but not the host itself.
	kids := s.Find(MustParseDN("hn=hostX"), ScopeSingleLevel, nil)
	if len(kids) != 3 {
		t.Fatalf("one-level = %d entries", len(kids))
	}
	// Base search returns exactly the host object.
	base := s.Find(MustParseDN("hn=hostX"), ScopeBaseObject, nil)
	if len(base) != 1 || base[0].First("system") != "mips irix" {
		t.Fatalf("base search = %v", base)
	}
}

func TestFigure3WireRoundTrip(t *testing.T) {
	// Every Figure 3 entry survives the SearchResultEntry wire encoding.
	for _, e := range figure3Entries() {
		m := &Message{ID: 1, Op: &SearchResultEntry{Entry: e}}
		back, err := ParseMessageBytes(m.Encode())
		if err != nil {
			t.Fatalf("%q: %v", e.DN, err)
		}
		got := back.Op.(*SearchResultEntry).Entry
		if !got.DN.Equal(e.DN) {
			t.Errorf("dn: %q != %q", got.DN, e.DN)
		}
		for _, a := range e.Attrs {
			for _, v := range a.Values {
				if !got.HasValue(a.Name, v) {
					t.Errorf("%q lost %s=%s", e.DN, a.Name, v)
				}
			}
		}
	}
}

func TestSchemaMandatoryEnforced(t *testing.T) {
	schema := NewGridSchema()
	// computer without hn violates MUST.
	bad := NewEntry(MustParseDN("hn=y")).Add("objectclass", "computer")
	if err := schema.Validate(bad); err == nil {
		t.Error("missing mandatory attribute should fail")
	}
	// queue inherits url MUST from service.
	q := NewEntry(MustParseDN("queue=q, hn=y")).Add("objectclass", "queue").Add("queue", "q")
	if err := schema.Validate(q); err == nil {
		t.Error("queue without inherited url should fail")
	}
}

func TestSchemaClosedWorld(t *testing.T) {
	schema := NewGridSchema()
	e := NewEntry(MustParseDN("hn=z")).
		Add("objectclass", "computer").
		Add("hn", "z").
		Add("bogusattr", "1")
	if err := schema.Validate(e); err == nil {
		t.Error("attribute outside may/must should fail for known classes")
	}
}

func TestSchemaLenientUnknownClass(t *testing.T) {
	schema := NewGridSchema()
	e := NewEntry(MustParseDN("x=1")).
		Add("objectclass", "experimentalthing").
		Add("whatever", "v")
	if err := schema.Validate(e); err != nil {
		t.Errorf("lenient schema should pass unknown classes: %v", err)
	}
	schema.Strict = true
	if err := schema.Validate(e); err == nil {
		t.Error("strict schema should reject unknown classes")
	}
}

func TestSchemaNoObjectClass(t *testing.T) {
	if err := NewGridSchema().Validate(NewEntry(MustParseDN("x=1")).Add("a", "b")); err == nil {
		t.Error("entries must carry objectclass")
	}
}

func TestSchemaInheritanceCycle(t *testing.T) {
	s := NewSchema()
	s.Define(ObjectClass{Name: "a", Super: "b"})
	s.Define(ObjectClass{Name: "b", Super: "a"})
	e := NewEntry(MustParseDN("x=1")).Add("objectclass", "a")
	if err := s.Validate(e); err == nil {
		t.Error("inheritance cycle should be detected")
	}
}

func TestSchemaClassListing(t *testing.T) {
	s := NewGridSchema()
	classes := s.Classes()
	if len(classes) < 10 {
		t.Fatalf("classes = %v", classes)
	}
	if _, ok := s.Lookup("LOADAVERAGE"); !ok {
		t.Error("lookup should be case-insensitive")
	}
}
