//go:build mdsdebug

package ldap

import (
	"strings"
	"testing"
)

func sealTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	e := NewEntry(MustParseDN("hn=hostA, o=grid")).
		Add("objectclass", "MdsHost").
		Add("hn", "hostA")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	return s
}

func findOne(t *testing.T, s *Store) *Entry {
	t.Helper()
	es := s.Find(MustParseDN("o=grid"), ScopeWholeSubtree, nil)
	if len(es) != 1 {
		t.Fatalf("got %d entries", len(es))
	}
	return es[0]
}

func TestSealPanicsOnMutatingMethod(t *testing.T) {
	s := sealTestStore(t)
	e := findOne(t, s)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Add on a sealed snapshot did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "sealed") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.Add("seen", "1")
}

func TestSealCatchesRawSnapshotMutation(t *testing.T) {
	s := sealTestStore(t)
	e := findOne(t, s)
	// Bypass the mutating methods entirely: scribble on the shared
	// attribute slice. The next hand-out re-verifies the checksum.
	e.Attrs[1].Values[0] = "evil"
	defer func() {
		if recover() == nil {
			t.Fatal("redelivery of a scribbled snapshot did not panic")
		}
	}()
	findOne(t, s)
}

func TestSealClonedEntriesStayMutable(t *testing.T) {
	s := sealTestStore(t)
	e := findOne(t, s)
	c := e.Clone()
	c.Add("seen", "1")
	c.Set("hn", "hostB")
	c.Delete("seen")
	c.SortAttrs()
	sel := e.Select([]string{"hn"})
	sel.Add("seen", "1")
	// And the caller's own pre-Put entry is never sealed: Put clones.
	mine := NewEntry(MustParseDN("hn=hostC, o=grid")).Add("objectclass", "MdsHost")
	if err := s.Put(mine); err != nil {
		t.Fatal(err)
	}
	mine.Add("hn", "hostC")
}
