package ldap

import (
	"fmt"
	"testing"
)

// benchStore builds a directory of n hosts spread across 16 groups, the
// shape of a mid-size GRIS/GIIS deployment.
func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	s := NewStore()
	if err := s.Put(NewEntry(MustParseDN("o=grid")).Add("objectclass", "organization")); err != nil {
		b.Fatal(err)
	}
	classes := []string{"computer", "storage", "network"}
	entries := make([]*Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, NewEntry(
			MustParseDN(fmt.Sprintf("hn=h%d, ou=g%d, o=grid", i, i%16))).
			Add("objectclass", classes[i%len(classes)]).
			Add("hn", fmt.Sprintf("h%d", i)).
			Add("load", fmt.Sprintf("%d", i%20)))
	}
	if err := s.PutAll(entries); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreFind measures an equality query against directories of
// increasing size, comparing the indexed Find with the pre-change linear
// scan (findScan, kept in-tree as the reference implementation). The
// indexed path answers from the equality index bucket, so its cost is
// O(matches) while the scan is O(store).
func BenchmarkStoreFind(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		s := benchStore(b, n)
		base := MustParseDN("o=grid")
		filter := MustParseFilter(fmt.Sprintf("(hn=h%d)", n/2))
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := s.Find(base, ScopeWholeSubtree, filter); len(got) != 1 {
					b.Fatalf("got %d entries", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := s.findScan(base, ScopeWholeSubtree, filter); len(got) != 1 {
					b.Fatalf("got %d entries", len(got))
				}
			}
		})
	}
}

// BenchmarkStoreFindScoped measures a single-level scoped listing, where
// the DN tree lets the walk touch only the base's children instead of
// scope-testing the whole store.
func BenchmarkStoreFindScoped(b *testing.B) {
	for _, n := range []int{10_000} {
		s := benchStore(b, n)
		base := MustParseDN("ou=g3, o=grid")
		b.Run(fmt.Sprintf("tree/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := s.Find(base, ScopeSingleLevel, nil); len(got) != n/16 {
					b.Fatalf("got %d entries", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := s.findScan(base, ScopeSingleLevel, nil); len(got) != n/16 {
					b.Fatalf("got %d entries", len(got))
				}
			}
		})
	}
}

// BenchmarkFilterMatch measures per-entry filter evaluation, compiled vs
// interpreted. Compiled equality/presence/AND must run at 0 allocs/op —
// that is the hot loop GRIS cache revalidation and GIIS index matching sit
// in.
func BenchmarkFilterMatch(b *testing.B) {
	e := NewEntry(MustParseDN("hn=h7, ou=g1, o=grid")).
		Add("objectclass", "computer").
		Add("hn", "h7").
		Add("load", "12").
		Add("tag", "Deep Red")
	cases := []struct{ name, filter string }{
		{"equality", "(objectclass=Computer)"},
		{"presence", "(tag=*)"},
		{"and", "(&(objectclass=computer)(hn=h7))"},
		{"substrings", "(tag=*red)"},
		{"ordering", "(load>=10)"},
	}
	for _, tc := range cases {
		f := MustParseFilter(tc.filter)
		cf := f.Compile()
		if !cf.Matches(e) || !f.Matches(e) {
			b.Fatalf("%s: filter must match the benchmark entry", tc.name)
		}
		b.Run("compiled/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !cf.Matches(e) {
					b.Fatal("no match")
				}
			}
		})
		b.Run("interpreted/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !f.Matches(e) {
					b.Fatal("no match")
				}
			}
		})
	}
}
